/**
 * @file
 * Fig. 12(a-c): impact of layer packing density on IC (+QAIM) for a
 * 36-qubit 6x6 grid.
 *
 * 36-node ER(0.5) and 15-regular graphs compiled with packing limits
 * 3..18 (max allowed CPHASEs per formed layer).  The paper scales depth
 * by 283, gate count by 1428 and compile time by 9.48 s; we print raw
 * means plus means normalized by the packing-limit-3 row so the shape is
 * directly comparable.  Paper shape: depth falls with packing limit then
 * degrades past ~11; gate count rises slowly then sharply; compile time
 * falls monotonically.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "hardware/devices.hpp"
#include "metrics/harness.hpp"

namespace {

using namespace qaoa;

void
runSweep(const bench::BenchConfig &config, bool regular, int count)
{
    hw::CouplingMap grid = hw::gridDevice(6, 6);
    std::vector<graph::Graph> instances =
        regular ? metrics::regularInstances(36, 15, count, 1212)
                : metrics::erdosRenyiInstances(36, 0.5, count, 1313);

    Table table({"packing limit", "mean depth", "mean gates",
                 "mean time s", "depth (norm)", "gates (norm)",
                 "time (norm)"});
    double depth0 = 0.0, gates0 = 0.0, time0 = 0.0;
    for (int limit : {3, 5, 7, 9, 11, 13, 15, 18}) {
        core::QaoaCompileOptions opts;
        opts.method = core::Method::Ic;
        opts.packing_limit = limit;
        opts.seed = 33;
        metrics::MetricSeries s =
            metrics::compileSeries(instances, grid, opts);
        double d = mean(s.depth), g = mean(s.gate_count),
               t = mean(s.compile_seconds);
        if (depth0 == 0.0) {
            depth0 = d;
            gates0 = g;
            time0 = t;
        }
        table.addRow({Table::num(static_cast<long long>(limit)),
                      Table::num(d, 1), Table::num(g, 1),
                      Table::num(t, 3), Table::num(d / depth0),
                      Table::num(g / gates0), Table::num(t / time0)});
    }
    bench::emit(config,
                std::string("Fig. 12 — 36-node ") +
                    (regular ? "15-regular" : "erdos-renyi p=0.5") +
                    " graphs, 6x6 grid, IC(+QAIM) (" +
                    std::to_string(count) + " instances/point)",
                table);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchConfig config = bench::parseArgs(argc, argv);
    const int count = config.instances(3, 20);
    runSweep(config, /*regular=*/false, count);
    runSweep(config, /*regular=*/true, count);
    std::cout << "expected shape: normalized depth falls as the limit\n"
                 "grows (possibly flattening/degrading at the densest\n"
                 "packings), normalized gates creep up, compile time\n"
                 "drops with packing limit.\n";
    return 0;
}
