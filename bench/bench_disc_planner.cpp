/**
 * @file
 * §VI comparative analysis: IC (+QAIM) on the 8-qubit cyclic
 * architecture used by the temporal-planner work [46] (Venturelli et
 * al.).
 *
 * Workload: 8-node Erdős–Rényi graphs with exactly 8 edges, p = 1.  The
 * planner itself is a closed stack we do not re-implement (see
 * DESIGN.md); this bench regenerates our side of the comparison —
 * absolute depth, gate count and compile time of IC — next to the
 * paper's cited planner context (70 s compile time for 8-qubit circuits;
 * IC reported 8.51% smaller depth and 12.99% smaller gate count).
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "graph/generators.hpp"
#include "hardware/devices.hpp"
#include "metrics/harness.hpp"

int
main(int argc, char **argv)
{
    using namespace qaoa;
    bench::BenchConfig config = bench::parseArgs(argc, argv);
    const int count = config.instances(20, 50);

    hw::CouplingMap ring = hw::ringDevice(8);

    // 8-node graphs with exactly 8 edges (G(n, m) model), connected.
    Rng rng(3030);
    std::vector<graph::Graph> instances;
    while (static_cast<int>(instances.size()) < count) {
        graph::Graph g = graph::randomGnm(8, 8, rng);
        if (g.isConnected())
            instances.push_back(std::move(g));
    }

    core::QaoaCompileOptions opts;
    opts.method = core::Method::Ic;
    opts.seed = 17;
    metrics::MetricSeries ic = metrics::compileSeries(instances, ring,
                                                      opts);
    opts.method = core::Method::Naive;
    metrics::MetricSeries naive = metrics::compileSeries(instances, ring,
                                                         opts);

    Table table({"metric", "IC (+QAIM)", "NAIVE"});
    table.addRow({"mean depth", Table::num(mean(ic.depth), 1),
                  Table::num(mean(naive.depth), 1)});
    table.addRow({"mean gate count", Table::num(mean(ic.gate_count), 1),
                  Table::num(mean(naive.gate_count), 1)});
    table.addRow({"mean compile time s",
                  Table::num(mean(ic.compile_seconds), 4),
                  Table::num(mean(naive.compile_seconds), 4)});
    bench::emit(config,
                "Discussion (§VI) — 8-node, 8-edge erdos-renyi graphs "
                "on an 8-qubit cyclic device (" +
                    std::to_string(count) + " instances)",
                table);
    std::cout
        << "context from the paper: the temporal planner [46] needed\n"
           "~70 s per 8-qubit circuit; IC compiled 36-qubit problems in\n"
           "<10 s and beat [46] by 8.51% depth / 12.99% gates on this\n"
           "workload.  Our IC compile times above are far below 70 s,\n"
           "reproducing the scalability claim.\n";
    return 0;
}
