/**
 * @file
 * Extension: SWAP network vs routed compilation across graph density.
 *
 * §V-C shows all placement heuristics tie on dense graphs; the
 * structured odd-even SWAP network is the known answer there.  This
 * bench sweeps edge probability on 16-node instances (ibmq_20_tokyo has
 * a 16-qubit simple path) and locates the density crossover where the
 * network overtakes IC (+QAIM).
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "hardware/devices.hpp"
#include "metrics/harness.hpp"
#include "qaoa/swap_network.hpp"

int
main(int argc, char **argv)
{
    using namespace qaoa;
    bench::BenchConfig config = bench::parseArgs(argc, argv);
    const int count = config.instances(8, 30);

    hw::CouplingMap tokyo = hw::ibmqTokyo20();
    const int n = 16;
    std::vector<int> path = core::findLinearPath(tokyo, n);

    Table table({"edge prob", "IC depth", "network depth", "IC gates",
                 "network gates"});
    for (double p : {0.2, 0.4, 0.6, 0.8, 1.0}) {
        auto instances = metrics::erdosRenyiInstances(
            n, p, count, static_cast<std::uint64_t>(p * 4049));
        Accumulator ic_d, net_d, ic_g, net_g;
        Rng seeder(17);
        for (const graph::Graph &g : instances) {
            core::QaoaCompileOptions opts;
            opts.method = core::Method::Ic;
            opts.seed = seeder.fork();
            transpiler::CompileResult ic =
                core::compileQaoaMaxcut(g, tokyo, opts);
            ic_d.add(ic.report.depth);
            ic_g.add(ic.report.gate_count);
            transpiler::CompileResult net = core::swapNetworkCompile(
                g, tokyo, {0.7}, {0.35}, true, path);
            net_d.add(net.report.depth);
            net_g.add(net.report.gate_count);
        }
        table.addRow({Table::num(p, 1), Table::num(ic_d.mean(), 1),
                      Table::num(net_d.mean(), 1),
                      Table::num(ic_g.mean(), 1),
                      Table::num(net_g.mean(), 1)});
    }
    bench::emit(config,
                "Extension — odd-even SWAP network vs IC(+QAIM), "
                "16-node ER graphs on ibmq_20_tokyo (" +
                    std::to_string(count) + " instances/row)",
                table);
    std::cout << "expected shape: the network's cost is density-\n"
                 "independent; IC wins on sparse graphs and the network\n"
                 "overtakes it as density approaches complete.\n";
    return 0;
}
