/**
 * @file
 * Ablation: peephole optimization on top of each methodology.
 *
 * Measures how much gate count / depth the local rewrite pass recovers
 * from each methodology's output — if a method leaves lots of
 * cancellable structure behind, peephole gains are large; a tight
 * compilation leaves little on the table.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "hardware/devices.hpp"
#include "metrics/harness.hpp"

int
main(int argc, char **argv)
{
    using namespace qaoa;
    bench::BenchConfig config = bench::parseArgs(argc, argv);
    const int count = config.instances(10, 40);

    hw::CouplingMap tokyo = hw::ibmqTokyo20();
    Rng calib_rng(7);
    hw::CalibrationData calib = hw::randomCalibration(tokyo, calib_rng);
    auto instances = metrics::regularInstances(16, 4, count, 777);

    const core::Method methods[] = {core::Method::Naive,
                                    core::Method::Qaim, core::Method::Ip,
                                    core::Method::Ic, core::Method::Vic};
    Table table({"method", "gates plain", "gates peephole",
                 "gate reduction %", "depth plain", "depth peephole"});
    for (core::Method m : methods) {
        Accumulator g_plain, g_opt, d_plain, d_opt;
        Rng seeder(31);
        for (const graph::Graph &g : instances) {
            core::QaoaCompileOptions opts;
            opts.method = m;
            opts.calibration = &calib;
            opts.seed = seeder.fork();
            transpiler::CompileResult plain =
                core::compileQaoaMaxcut(g, tokyo, opts);
            opts.peephole = true;
            transpiler::CompileResult tight =
                core::compileQaoaMaxcut(g, tokyo, opts);
            g_plain.add(plain.report.gate_count);
            g_opt.add(tight.report.gate_count);
            d_plain.add(plain.report.depth);
            d_opt.add(tight.report.depth);
        }
        double reduction =
            100.0 * (g_plain.mean() - g_opt.mean()) / g_plain.mean();
        table.addRow({core::methodName(m),
                      Table::num(g_plain.mean(), 1),
                      Table::num(g_opt.mean(), 1),
                      Table::num(reduction, 2),
                      Table::num(d_plain.mean(), 1),
                      Table::num(d_opt.mean(), 1)});
    }
    bench::emit(config,
                "Ablation — peephole pass on compiled circuits, 16-node "
                "4-regular on ibmq_20_tokyo (" +
                    std::to_string(count) + " instances)",
                table);
    return 0;
}
