/**
 * @file
 * Failpoint poll overhead: the tax every durable syscall pays for
 * being injectable.
 *
 * Failpoint sites are compiled into release builds permanently (the
 * crash-consistency harness drives the production binary, not a test
 * build), so the disarmed fast path must be genuinely free: one
 * relaxed atomic load of a never-written global plus one predictable
 * branch.  This bench measures that path, the armed-but-not-firing
 * slow path (registry lookup under the mutex — paid only while an
 * operator has faults armed), and a baseline loop for scale.
 *
 * The disarmed bar is deliberately generous (it only exists to catch
 * a regression to "always take the registry mutex"): a cache-hot
 * relaxed load + branch measures well under 2 ns on anything modern,
 * so 25 ns/op signals a structural regression, not noise.
 */

#include <cstdio>

#include "common/failpoint.hpp"
#include "common/stopwatch.hpp"

namespace {

constexpr int kIterations = 2'000'000;
constexpr double kDisarmedBarNs = 25.0;

/** Runs @p body kIterations times and returns ns per iteration. */
template <typename F>
double
nsPerOp(F &&body)
{
    // One warm-up pass faults in code and data.
    for (int i = 0; i < 1'000; ++i)
        body();
    qaoa::Stopwatch clock;
    for (int i = 0; i < kIterations; ++i)
        body();
    return clock.seconds() * 1e9 / kIterations;
}

} // namespace

int
main()
{
    using namespace qaoa;

    // The sink keeps the compiler from hoisting the poll out of the
    // loop; summing the action enum defeats dead-code elimination.
    volatile int sink = 0;

    const double baseline = nsPerOp([&] { sink = sink + 1; });

    const double disarmed = nsPerOp([&] {
        const auto fp = failpoint::poll("fs.write");
        sink = sink + static_cast<int>(fp.action);
    });

    // Armed on a DIFFERENT site: every poll of fs.write now takes the
    // slow path (g_armed is global), misses in the registry map and
    // returns no-fire — the cost of operating with faults armed.
    if (!failpoint::armFromSpec("fs.read=errno:EIO@hit=1000000000").ok()) {
        std::fprintf(stderr, "failed to arm the slow-path spec\n");
        return 1;
    }
    const double armed_miss = nsPerOp([&] {
        const auto fp = failpoint::poll("fs.write");
        sink = sink + static_cast<int>(fp.action);
    });
    failpoint::disarmAll();

    std::printf("failpoint poll overhead (%d iterations)\n", kIterations);
    std::printf("  %-28s %8.2f ns/op\n", "empty loop baseline", baseline);
    std::printf("  %-28s %8.2f ns/op\n", "poll, disarmed", disarmed);
    std::printf("  %-28s %8.2f ns/op\n", "poll, armed elsewhere",
                armed_miss);

    if (disarmed > kDisarmedBarNs) {
        std::fprintf(stderr,
                     "FAIL: disarmed poll costs %.2f ns/op (bar %.0f) — "
                     "the fast path regressed to the registry mutex\n",
                     disarmed, kDisarmedBarNs);
        return 1;
    }
    std::printf("PASS: disarmed poll under the %.0f ns/op bar\n",
                kDisarmedBarNs);
    return 0;
}
