/**
 * @file
 * Throughput of the static quality analyzer (src/analysis/).
 *
 * The analyzer runs inside every compile (checkQuality) and inside the
 * quality-budget CI job, so its cost must stay a small fraction of the
 * compile itself.  This bench compiles the Fig. 11 regular workload on
 * ibmq_20_tokyo once per method, then times analyzeCircuit() in
 * isolation and reports per-circuit analysis cost next to the compile
 * cost it rides on.
 */

#include <chrono>
#include <iostream>

#include "analysis/quality.hpp"
#include "bench_util.hpp"
#include "hardware/devices.hpp"
#include "metrics/harness.hpp"
#include "qaoa/api.hpp"

int
main(int argc, char **argv)
{
    using namespace qaoa;
    using Clock = std::chrono::steady_clock;
    bench::BenchConfig config = bench::parseArgs(argc, argv);
    const int count = config.instances(6, 30);
    const int repeats = config.instances(20, 100);

    hw::CouplingMap tokyo = hw::ibmqTokyo20();
    Rng crng(2020);
    hw::CalibrationData calib = hw::randomCalibration(tokyo, crng);
    auto instances = metrics::regularInstances(20, 4, count, 4711);

    const core::Method methods[] = {core::Method::Naive, core::Method::Ip,
                                    core::Method::Ic, core::Method::Vic};

    Table t({"method", "instances", "compile_ms", "analyze_us", "gates",
             "findings"});
    for (core::Method m : methods) {
        double compile_s = 0.0;
        double analyze_s = 0.0;
        double gates = 0.0;
        double findings = 0.0;
        for (const graph::Graph &g : instances) {
            core::QaoaCompileOptions opts;
            opts.method = m;
            opts.calibration = &calib;
            opts.decompose_to_basis = false;
            opts.analyze_quality = false; // time the analyzer separately
            transpiler::CompileResult r =
                core::compileQaoaMaxcut(g, tokyo, opts);
            if (!r.ok())
                continue;
            compile_s += r.report.compile_seconds;

            analysis::QualityOptions qopts;
            qopts.lint.map = &tokyo;
            qopts.lint.calibration = &calib;
            const auto start = Clock::now();
            analysis::QualityReport q;
            for (int rep = 0; rep < repeats; ++rep)
                q = analysis::analyzeCircuit(r.physical, qopts);
            const std::chrono::duration<double> dt = Clock::now() - start;
            analyze_s += dt.count() / repeats;
            gates += q.summary.gate_count;
            findings += static_cast<double>(q.lint.findings().size());
        }
        const double n = static_cast<double>(instances.size());
        t.addRow({core::methodName(m), std::to_string(instances.size()),
                  Table::num(1e3 * compile_s / n, 3),
                  Table::num(1e6 * analyze_s / n, 1),
                  Table::num(gates / n, 1), Table::num(findings / n, 1)});
    }
    if (config.csv)
        t.printCsv(std::cout);
    else
        t.print(std::cout);
    return 0;
}
