/**
 * @file
 * google-benchmark microbenchmarks for the core primitives: graph
 * generation, all-pairs shortest paths, layout passes, routing, the full
 * compile pipeline per methodology, and statevector simulation.
 */

#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "graph/shortest_paths.hpp"
#include "hardware/devices.hpp"
#include "metrics/harness.hpp"
#include "qaoa/api.hpp"
#include "qaoa/ip.hpp"
#include "qaoa/qaim.hpp"
#include "sim/statevector.hpp"

namespace {

using namespace qaoa;

void
BM_RandomRegularGraph(benchmark::State &state)
{
    Rng rng(1);
    for (auto _ : state) {
        graph::Graph g = graph::randomRegular(
            static_cast<int>(state.range(0)), 3, rng);
        benchmark::DoNotOptimize(g.numEdges());
    }
}
BENCHMARK(BM_RandomRegularGraph)->Arg(12)->Arg(20)->Arg(36);

void
BM_FloydWarshall(benchmark::State &state)
{
    int side = static_cast<int>(state.range(0));
    graph::Graph g = graph::gridGraph(side, side);
    for (auto _ : state) {
        graph::DistanceMatrix d = graph::floydWarshall(g);
        benchmark::DoNotOptimize(d[0].back());
    }
}
BENCHMARK(BM_FloydWarshall)->Arg(4)->Arg(6)->Arg(8);

void
BM_QaimLayout(benchmark::State &state)
{
    hw::CouplingMap tokyo = hw::ibmqTokyo20();
    Rng inst_rng(2);
    graph::Graph g = graph::randomRegular(
        static_cast<int>(state.range(0)), 3, inst_rng);
    std::vector<core::ZZOp> ops = core::costOperations(g);
    std::uint64_t seed = 0;
    for (auto _ : state) {
        Rng rng(seed++);
        transpiler::Layout l =
            core::qaimLayout(ops, g.numNodes(), tokyo, rng);
        benchmark::DoNotOptimize(l.physicalOf(0));
    }
}
BENCHMARK(BM_QaimLayout)->Arg(12)->Arg(20);

void
BM_IpOrdering(benchmark::State &state)
{
    Rng inst_rng(3);
    graph::Graph g = graph::randomRegular(20,
                                          static_cast<int>(state.range(0)),
                                          inst_rng);
    std::vector<core::ZZOp> ops = core::costOperations(g);
    std::uint64_t seed = 0;
    for (auto _ : state) {
        Rng rng(seed++);
        core::IpResult r = core::ipOrder(ops, 20, rng);
        benchmark::DoNotOptimize(r.layers.size());
    }
}
BENCHMARK(BM_IpOrdering)->Arg(3)->Arg(8);

void
BM_CompileMethod(benchmark::State &state)
{
    hw::CouplingMap tokyo = hw::ibmqTokyo20();
    Rng calib_rng(4);
    hw::CalibrationData calib = hw::randomCalibration(tokyo, calib_rng);
    Rng inst_rng(5);
    graph::Graph g = graph::randomRegular(16, 4, inst_rng);
    core::QaoaCompileOptions opts;
    opts.method = static_cast<core::Method>(state.range(0));
    opts.calibration = &calib;
    std::uint64_t seed = 0;
    for (auto _ : state) {
        opts.seed = seed++;
        transpiler::CompileResult r =
            core::compileQaoaMaxcut(g, tokyo, opts);
        benchmark::DoNotOptimize(r.report.depth);
    }
}
BENCHMARK(BM_CompileMethod)
    ->Arg(static_cast<int>(core::Method::Naive))
    ->Arg(static_cast<int>(core::Method::Qaim))
    ->Arg(static_cast<int>(core::Method::Ip))
    ->Arg(static_cast<int>(core::Method::Ic))
    ->Arg(static_cast<int>(core::Method::Vic));

void
BM_StatevectorQaoa(benchmark::State &state)
{
    int n = static_cast<int>(state.range(0));
    Rng inst_rng(6);
    graph::Graph g = graph::randomRegular(n, 3, inst_rng);
    for (auto _ : state) {
        double e = metrics::exactExpectedCut(g, {0.7}, {0.35});
        benchmark::DoNotOptimize(e);
    }
}
BENCHMARK(BM_StatevectorQaoa)->Arg(8)->Arg(12)->Arg(16);

} // namespace

BENCHMARK_MAIN();
