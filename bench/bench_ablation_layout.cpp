/**
 * @file
 * Ablation: initial-mapping stage in isolation.
 *
 * Compares every layout policy discussed in the paper — NAIVE random,
 * GreedyV [59], VQA [50], reverse traversal [57], and QAIM — by routing
 * identical QAOA circuits (random CPHASE order) from each policy's
 * layout.  Shows why QAIM is the right default: near-reverse-traversal
 * quality at a tiny fraction of the mapping cost (reverse traversal
 * re-compiles the circuit 2x per traversal).
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/stopwatch.hpp"
#include "hardware/devices.hpp"
#include "metrics/harness.hpp"
#include "qaoa/profile_stats.hpp"
#include "qaoa/qaim.hpp"
#include "transpiler/layout_passes.hpp"
#include "transpiler/reverse_traversal.hpp"

int
main(int argc, char **argv)
{
    using namespace qaoa;
    bench::BenchConfig config = bench::parseArgs(argc, argv);
    const int count = config.instances(10, 40);

    hw::CouplingMap tokyo = hw::ibmqTokyo20();
    Rng calib_rng(1);
    hw::CalibrationData calib = hw::randomCalibration(tokyo, calib_rng);
    auto instances = metrics::regularInstances(14, 3, count, 9090);

    struct Row
    {
        std::string name;
        Accumulator swaps, depth, map_ms;
    };
    Row rows[] = {{"NAIVE (random)", {}, {}, {}},
                  {"GreedyV", {}, {}, {}},
                  {"VQA", {}, {}, {}},
                  {"reverse traversal x3", {}, {}, {}},
                  {"QAIM", {}, {}, {}}};

    Rng seeder(11);
    for (const graph::Graph &g : instances) {
        std::uint64_t seed = seeder.fork();
        std::vector<core::ZZOp> ops = core::costOperations(g);
        std::vector<int> per_qubit = core::opsPerQubit(ops, g.numNodes());
        circuit::Circuit logical =
            core::buildQaoaCircuit(g, {0.7}, {0.35}, false);

        for (Row &row : rows) {
            Rng rng(seed);
            Stopwatch map_clock;
            transpiler::Layout layout;
            if (row.name == "NAIVE (random)") {
                layout = transpiler::randomLayout(g.numNodes(), tokyo,
                                                  rng);
            } else if (row.name == "GreedyV") {
                layout = transpiler::greedyVLayout(per_qubit, tokyo);
            } else if (row.name == "VQA") {
                layout = transpiler::vqaLayout(per_qubit, tokyo, calib);
            } else if (row.name == "reverse traversal x3") {
                transpiler::Layout seed_layout =
                    transpiler::randomLayout(g.numNodes(), tokyo, rng);
                layout = transpiler::reverseTraversalLayout(
                    logical, tokyo, seed_layout, 3);
            } else {
                layout = core::qaimLayout(ops, g.numNodes(), tokyo, rng);
            }
            row.map_ms.add(map_clock.milliseconds());

            transpiler::RoutedCircuit routed =
                transpiler::routeCircuit(logical, tokyo, layout);
            row.swaps.add(routed.swap_count);
            row.depth.add(routed.physical.depth());
        }
    }

    Table table({"layout policy", "mean SWAPs", "mean depth",
                 "mapping ms"});
    for (const Row &row : rows)
        table.addRow({row.name, Table::num(row.swaps.mean(), 2),
                      Table::num(row.depth.mean(), 1),
                      Table::num(row.map_ms.mean(), 3)});
    bench::emit(config,
                "Ablation — initial-mapping policies, 14-node 3-regular "
                "graphs on ibmq_20_tokyo (" +
                    std::to_string(count) + " instances)",
                table);
    std::cout << "expected shape: QAIM ~ reverse-traversal quality at\n"
                 "orders-of-magnitude lower mapping time; NAIVE worst.\n";
    return 0;
}
