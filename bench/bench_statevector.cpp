/**
 * @file
 * Statevector engine throughput: serial vs parallel gate application.
 *
 * Reports, per qubit count:
 *  - single-gate-sweep time (one kernel pass over every amplitude) for
 *    the diagonal fast path (CPHASE), a dedicated pair kernel (H/RX)
 *    and the generic dense-matrix fallback (U3), serial vs parallel,
 *    with the resulting speedup;
 *  - end-to-end optimizeP1 latency (grid + Nelder–Mead over exact
 *    expected cut) on a ring MaxCut instance.
 *
 * "Serial" pins par::setThreadCount(1); "parallel" restores automatic
 * resolution (QAOA_THREADS or hardware_concurrency), so QAOA_THREADS=8
 * ./bench_statevector compares 1 vs 8 threads.  Amplitudes are
 * bit-identical on both paths — the bench checks a probe amplitude to
 * prove it.
 *
 * Default sizes: 16/20 qubits (and optimizeP1 at 16); --full adds the
 * 24-qubit sweeps and optimizeP1 at 20.
 */

#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "circuit/gate.hpp"
#include "common/parallel.hpp"
#include "common/stopwatch.hpp"
#include "graph/generators.hpp"
#include "metrics/harness.hpp"
#include "sim/statevector.hpp"

namespace {

using namespace qaoa;

/** One full sweep: the gate applied to every qubit in turn. */
double
sweepSeconds(sim::Statevector &state, const circuit::Gate &proto,
             int repeats)
{
    Stopwatch sw;
    for (int r = 0; r < repeats; ++r) {
        for (int q = 0; q < state.numQubits(); ++q) {
            circuit::Gate g = proto;
            g.q0 = q;
            if (g.arity() == 2)
                g.q1 = (q + 1) % state.numQubits();
            if (g.q1 == g.q0)
                g.q1 = (g.q0 + 1) % state.numQubits();
            state.apply(g);
        }
    }
    return sw.seconds() / repeats;
}

struct SweepRow
{
    const char *label;
    circuit::Gate proto;
};

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchConfig config = bench::parseArgs(argc, argv);

    std::vector<int> sweep_sizes = {16, 20};
    std::vector<int> opt_sizes = {16};
    if (config.full) {
        sweep_sizes.push_back(24);
        opt_sizes.push_back(20);
    }

    std::cout << "# Statevector engine: serial vs parallel\n"
              << "# parallel threads: " << [] {
                     par::setThreadCount(0);
                     return par::threadCount();
                 }() << " (override with QAOA_THREADS)\n\n";

    const std::vector<SweepRow> kernels = {
        {"cphase (diag)", circuit::Gate::cphase(0, 1, 0.7)},
        {"h (pair)", circuit::Gate::h(0)},
        {"rx (pair)", circuit::Gate::rx(0, 1.3)},
        {"u3 (generic)", circuit::Gate::u3(0, 0.4, 0.2, 0.9)},
    };

    Table sweeps({"qubits", "kernel", "serial ms/sweep",
                  "parallel ms/sweep", "speedup"});
    for (int n : sweep_sizes) {
        const int repeats = n >= 24 ? 2 : (n >= 20 ? 4 : 16);
        for (const SweepRow &row : kernels) {
            sim::Statevector state(n);
            for (int q = 0; q < n; ++q)
                state.apply(circuit::Gate::h(q));

            par::setThreadCount(1);
            double serial = sweepSeconds(state, row.proto, repeats);

            par::setThreadCount(0);
            double parallel = sweepSeconds(state, row.proto, repeats);

            sweeps.addRow({Table::num(static_cast<long long>(n)),
                           row.label, Table::num(serial * 1e3),
                           Table::num(parallel * 1e3),
                           Table::num(parallel > 0.0 ? serial / parallel
                                                     : 0.0, 2)});
        }
    }
    bench::emit(config, "single-gate sweep throughput", sweeps);

    Table opt({"qubits", "serial s", "parallel s", "speedup",
               "expected cut (serial)", "expected cut (parallel)"});
    for (int n : opt_sizes) {
        graph::Graph ring = graph::cycleGraph(n);

        par::setThreadCount(1);
        Stopwatch sw_serial;
        metrics::P1Parameters serial = metrics::optimizeP1(ring);
        double serial_s = sw_serial.seconds();

        par::setThreadCount(0);
        Stopwatch sw_parallel;
        metrics::P1Parameters parallel = metrics::optimizeP1(ring);
        double parallel_s = sw_parallel.seconds();

        opt.addRow({Table::num(static_cast<long long>(n)),
                    Table::num(serial_s), Table::num(parallel_s),
                    Table::num(parallel_s > 0.0 ? serial_s / parallel_s
                                                : 0.0, 2),
                    Table::num(serial.expected_cut, 6),
                    Table::num(parallel.expected_cut, 6)});
    }
    bench::emit(config, "optimizeP1 end-to-end latency", opt);

    par::setThreadCount(0);
    return 0;
}
