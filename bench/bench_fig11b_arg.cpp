/**
 * @file
 * Fig. 11(b): Approximation Ratio Gap validation on (the stand-in for)
 * ibmq_16_melbourne.
 *
 * Workflow per §V-G: optimize (γ, β) noiselessly per instance, compile
 * with QAIM / IP / IC / VIC, sample the compiled circuit noiselessly
 * (-> r0) and under the calibrated depolarizing noise model (-> rh), and
 * report the mean ARG = 100 (r0 - rh) / r0 per method.  Paper shape
 * (negative of their plotted values): |ARG| shrinks from QAIM (-20.9%)
 * through IP (-18.3%) and IC (-16.7%) to VIC (-15.5%).
 *
 * Substitution: real-device runs are replaced by Monte-Carlo trajectory
 * simulation with the Fig. 10(a) calibration (see DESIGN.md).
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "graph/maxcut.hpp"
#include "hardware/devices.hpp"
#include "metrics/approx_ratio.hpp"
#include "metrics/harness.hpp"
#include "sim/noise.hpp"
#include "sim/statevector.hpp"

namespace {

using namespace qaoa;

struct ArgAccumulators
{
    std::vector<double> qaim, ip, ic, vic;

    std::vector<double> &
    of(core::Method m)
    {
        switch (m) {
          case core::Method::Qaim: return qaim;
          case core::Method::Ip: return ip;
          case core::Method::Ic: return ic;
          default: return vic;
        }
    }
};

void
runInstances(const std::vector<graph::Graph> &instances,
             const hw::CouplingMap &melbourne,
             const hw::CalibrationData &calib, std::uint64_t shots,
             int trajectories, ArgAccumulators &acc)
{
    const core::Method methods[] = {core::Method::Qaim, core::Method::Ip,
                                    core::Method::Ic, core::Method::Vic};
    Rng seeder(8080);
    for (const graph::Graph &g : instances) {
        metrics::P1Parameters params = metrics::optimizeP1(g);
        double optimum = graph::maxCutBruteForce(g).value;
        std::uint64_t seed = seeder.fork();
        for (core::Method m : methods) {
            core::QaoaCompileOptions opts;
            opts.method = m;
            opts.calibration = &calib;
            opts.gammas = {params.gamma};
            opts.betas = {params.beta};
            opts.seed = seed;
            transpiler::CompileResult r =
                core::compileQaoaMaxcut(g, melbourne, opts);

            Rng sample_rng(seed ^ 0x5a5a5a5a);
            sim::Counts ideal =
                sim::runAndSample(r.compiled, shots, sample_rng);
            double r0 =
                metrics::approximationRatio(g, ideal, optimum);

            sim::NoiseOptions nopts;
            nopts.trajectories = trajectories;
            sim::Counts noisy = sim::noisySample(r.compiled, calib,
                                                 shots, sample_rng,
                                                 nopts);
            double rh = metrics::approximationRatio(g, noisy, optimum);
            acc.of(m).push_back(
                metrics::approximationRatioGap(r0, rh));
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchConfig config = bench::parseArgs(argc, argv);
    // Per-instance ARG noise is ~1% while the method gaps are a few
    // tenths; the default sample shows the proposed-methods < QAIM
    // direction, and --full resolves the full QAIM > IP > IC > VIC
    // ordering.
    const int count = config.instances(8, 20);
    const std::uint64_t shots = config.full ? 40960 : 8192;
    const int trajectories = config.full ? 64 : 32;

    hw::CouplingMap melbourne = hw::ibmqMelbourne15();
    hw::CalibrationData calib = hw::melbourneCalibration(melbourne);

    ArgAccumulators acc;
    runInstances(metrics::erdosRenyiInstances(12, 0.5, count, 606),
                 melbourne, calib, shots, trajectories, acc);
    runInstances(metrics::regularInstances(12, 6, count, 707), melbourne,
                 calib, shots, trajectories, acc);

    Table table({"method", "mean ARG %", "stddev"});
    table.addRow({"QAIM", Table::num(mean(acc.qaim), 2),
                  Table::num(stddev(acc.qaim), 2)});
    table.addRow({"IP", Table::num(mean(acc.ip), 2),
                  Table::num(stddev(acc.ip), 2)});
    table.addRow({"IC", Table::num(mean(acc.ic), 2),
                  Table::num(stddev(acc.ic), 2)});
    table.addRow({"VIC", Table::num(mean(acc.vic), 2),
                  Table::num(stddev(acc.vic), 2)});
    bench::emit(config,
                "Fig. 11(b) — mean ARG, 12-node ER(0.5) + 6-regular "
                "graphs (" +
                    std::to_string(2 * count) +
                    " instances total), melbourne noise stand-in",
                table);
    std::cout << "paper golden values (hardware): QAIM 20.89, IP 18.29,\n"
                 "IC 16.73, VIC 15.50 (percent; lower = closer to "
                 "noiseless).\n";
    return 0;
}
