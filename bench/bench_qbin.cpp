/**
 * @file
 * qbin codec harness: load speed and artifact size of the binary
 * circuit format versus text QASM, on the fig. 11 workload (20-node
 * ER 0.1..0.6 + regular 3..8 graphs compiled with IC on ibmq_20_tokyo).
 *
 * Every compiled circuit is serialized both ways, then each corpus is
 * deserialized in a timed loop (repeated until the total run is long
 * enough to measure).  Reported per format: total artifact bytes, mean
 * decode time per circuit, and the qbin-vs-QASM speedup/size ratios.
 * The serve cache stores qbin artifacts, so "decode" here is exactly
 * the warm-hit load path.  Acceptance target: qbin loads at least 5x
 * faster than parsing the equivalent QASM text and the artifacts are
 * smaller.
 */

#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "circuit/qasm.hpp"
#include "circuit/qasm_parser.hpp"
#include "circuit/qbin.hpp"
#include "hardware/devices.hpp"
#include "metrics/harness.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace qaoa;
    bench::BenchConfig config = bench::parseArgs(argc, argv);
    const int per_config = config.instances(3, 50);

    hw::CouplingMap tokyo = hw::ibmqTokyo20();
    std::vector<graph::Graph> pool;
    for (double p : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6})
        for (auto &g : metrics::erdosRenyiInstances(
                 20, p, per_config, static_cast<std::uint64_t>(p * 571)))
            pool.push_back(std::move(g));
    for (int k = 3; k <= 8; ++k)
        for (auto &g : metrics::regularInstances(
                 20, k, per_config, static_cast<std::uint64_t>(k) * 29))
            pool.push_back(std::move(g));

    core::QaoaCompileOptions opts;
    opts.method = core::Method::Ic;
    opts.seed = 99;

    // Build both corpora from the same compiles.
    std::vector<std::string> qasm_docs, qbin_docs;
    std::size_t qasm_bytes = 0, qbin_bytes = 0, total_gates = 0;
    for (const graph::Graph &g : pool) {
        transpiler::CompileResult r =
            core::compileQaoaMaxcut(g, tokyo, opts);
        if (!r.ok())
            continue;
        qasm_docs.push_back(circuit::toQasm(r.compiled));
        qbin_docs.push_back(circuit::qbin::encodeCircuit(r.compiled));
        qasm_bytes += qasm_docs.back().size();
        qbin_bytes += qbin_docs.back().size();
        total_gates += r.compiled.gates().size();
    }

    // Timed decode loops.  Repeat each corpus enough times that the
    // faster path still accumulates a measurable total.
    const int reps = config.full ? 20 : 50;
    circuit::QasmParseOptions parse_options;
    parse_options.max_qubits = tokyo.numQubits();

    std::size_t sink = 0; // Defeats dead-code elimination.
    const Clock::time_point qasm_start = Clock::now();
    for (int rep = 0; rep < reps; ++rep)
        for (const std::string &doc : qasm_docs)
            sink += circuit::parseQasm(doc, parse_options).gates().size();
    const double qasm_seconds = secondsSince(qasm_start);

    const Clock::time_point qbin_start = Clock::now();
    for (int rep = 0; rep < reps; ++rep)
        for (const std::string &doc : qbin_docs)
            sink += circuit::qbin::decodeCircuit(doc).gates().size();
    const double qbin_seconds = secondsSince(qbin_start);

    const std::size_t loads = qasm_docs.size() * std::size_t(reps);
    const double qasm_us = qasm_seconds * 1e6 / double(loads);
    const double qbin_us = qbin_seconds * 1e6 / double(loads);

    Table table({"format", "artifact bytes", "bytes/circuit",
                 "decode us/circuit", "vs qasm"});
    table.addRow({"qasm text", std::to_string(qasm_bytes),
                  std::to_string(qasm_bytes / qasm_docs.size()),
                  Table::num(qasm_us), "1.000"});
    table.addRow({"qbin", std::to_string(qbin_bytes),
                  std::to_string(qbin_bytes / qbin_docs.size()),
                  Table::num(qbin_us),
                  Table::num(qbin_seconds / qasm_seconds)});
    bench::emit(config,
                "qbin vs text QASM — " + std::to_string(qasm_docs.size()) +
                    " IC-compiled 20-node circuits (" +
                    std::to_string(total_gates) +
                    " gates), ibmq_20_tokyo, " + std::to_string(reps) +
                    " decode reps",
                table);

    const double speedup = qasm_seconds / qbin_seconds;
    const double size_ratio = double(qbin_bytes) / double(qasm_bytes);
    std::cout << "load speedup (qasm/qbin): " << Table::num(speedup)
              << "x\nartifact size (qbin/qasm): "
              << Table::num(size_ratio) << "\n(checksum " << sink % 977
              << ")\n"
              << (speedup >= 5.0 && size_ratio < 1.0
                      ? "PASS: qbin >=5x faster to load and smaller\n"
                      : "FAIL: acceptance target not met\n");
    return speedup >= 5.0 && size_ratio < 1.0 ? 0 : 1;
}
