/**
 * @file
 * Extension: multi-level QAOA scaling.
 *
 * §II notes QAOA performance improves with the level count p while each
 * level repeats the full cost Hamiltonian; this bench quantifies how the
 * compiled depth and gate count of each methodology scale with p
 * (p = 1..3, 14-node 3-regular graphs on ibmq_20_tokyo).  The paper's
 * methodologies apply per level, so the relative wins should persist at
 * higher p.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "hardware/devices.hpp"
#include "metrics/harness.hpp"

int
main(int argc, char **argv)
{
    using namespace qaoa;
    bench::BenchConfig config = bench::parseArgs(argc, argv);
    const int count = config.instances(8, 30);

    hw::CouplingMap tokyo = hw::ibmqTokyo20();
    Rng calib_rng(4);
    hw::CalibrationData calib = hw::randomCalibration(tokyo, calib_rng);
    auto instances = metrics::regularInstances(14, 3, count, 2468);

    const core::Method methods[] = {core::Method::Naive, core::Method::Ip,
                                    core::Method::Ic};
    Table table({"p", "method", "mean depth", "mean gates",
                 "depth/NAIVE", "gates/NAIVE"});
    for (int p = 1; p <= 3; ++p) {
        metrics::MetricSeries naive;
        for (core::Method m : methods) {
            core::QaoaCompileOptions opts;
            opts.method = m;
            opts.calibration = &calib;
            opts.seed = 13;
            opts.gammas.assign(static_cast<std::size_t>(p), 0.7);
            opts.betas.assign(static_cast<std::size_t>(p), 0.35);
            metrics::MetricSeries s =
                metrics::compileSeries(instances, tokyo, opts);
            if (m == core::Method::Naive)
                naive = s;
            table.addRow(
                {Table::num(static_cast<long long>(p)),
                 core::methodName(m), Table::num(mean(s.depth), 1),
                 Table::num(mean(s.gate_count), 1),
                 Table::num(ratioOfMeans(s.depth, naive.depth)),
                 Table::num(ratioOfMeans(s.gate_count,
                                         naive.gate_count))});
        }
    }
    bench::emit(config,
                "Extension — depth/gate scaling with QAOA level p, "
                "14-node 3-regular graphs on ibmq_20_tokyo (" +
                    std::to_string(count) + " instances)",
                table);
    std::cout << "expected shape: IC's depth ratio vs NAIVE stays well\n"
                 "below 1 at every p; absolute metrics grow ~linearly "
                 "in p.\n";
    return 0;
}
