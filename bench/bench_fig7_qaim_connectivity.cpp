/**
 * @file
 * Fig. 7(a-d): QAIM vs GreedyV vs NAIVE on ibmq_20_tokyo while varying
 * problem-graph connectivity.
 *
 * 20-node Erdős–Rényi graphs with edge probability 0.1..0.6 and k-regular
 * graphs with k = 3..8; p = 1 QAOA-MaxCut, random CPHASE order.  Bars are
 * mean depth / gate-count ratios versus NAIVE (lower is better).  Paper
 * shape: QAIM wins clearly on sparse graphs (e.g. ~12% depth, ~20% gates
 * at p = 0.1 or k = 3) and all three converge on dense graphs.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "hardware/devices.hpp"
#include "metrics/harness.hpp"

namespace {

using namespace qaoa;

struct RatioRow
{
    double greedy_depth, qaim_depth;
    double greedy_gates, qaim_gates;
};

RatioRow
sweepOne(const std::vector<graph::Graph> &instances,
         const hw::CouplingMap &map)
{
    auto run = [&](core::Method method) {
        core::QaoaCompileOptions opts;
        opts.method = method;
        opts.seed = 1234;
        return metrics::compileSeries(instances, map, opts);
    };
    metrics::MetricSeries naive = run(core::Method::Naive);
    metrics::MetricSeries greedy = run(core::Method::GreedyV);
    metrics::MetricSeries qaim = run(core::Method::Qaim);
    return {ratioOfMeans(greedy.depth, naive.depth),
            ratioOfMeans(qaim.depth, naive.depth),
            ratioOfMeans(greedy.gate_count, naive.gate_count),
            ratioOfMeans(qaim.gate_count, naive.gate_count)};
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchConfig config = bench::parseArgs(argc, argv);
    const int count = config.instances(10, 50);
    hw::CouplingMap tokyo = hw::ibmqTokyo20();

    // (a, b): Erdős–Rényi, edge probability 0.1..0.6.
    Table er({"edge prob", "depth GreedyV/NAIVE", "depth QAIM/NAIVE",
              "gates GreedyV/NAIVE", "gates QAIM/NAIVE"});
    for (double p : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6}) {
        auto instances = metrics::erdosRenyiInstances(
            20, p, count, static_cast<std::uint64_t>(p * 1000));
        RatioRow r = sweepOne(instances, tokyo);
        er.addRow({Table::num(p, 1), Table::num(r.greedy_depth),
                   Table::num(r.qaim_depth), Table::num(r.greedy_gates),
                   Table::num(r.qaim_gates)});
    }
    bench::emit(config,
                "Fig. 7(a,b) — 20-node erdos-renyi graphs, "
                "ibmq_20_tokyo (" +
                    std::to_string(count) + " instances/bar)",
                er);

    // (c, d): regular graphs, 3..8 edges/node.
    Table reg({"edges/node", "depth GreedyV/NAIVE", "depth QAIM/NAIVE",
               "gates GreedyV/NAIVE", "gates QAIM/NAIVE"});
    for (int k = 3; k <= 8; ++k) {
        auto instances = metrics::regularInstances(
            20, k, count, static_cast<std::uint64_t>(k));
        RatioRow r = sweepOne(instances, tokyo);
        reg.addRow({Table::num(static_cast<long long>(k)),
                    Table::num(r.greedy_depth), Table::num(r.qaim_depth),
                    Table::num(r.greedy_gates), Table::num(r.qaim_gates)});
    }
    bench::emit(config,
                "Fig. 7(c,d) — 20-node regular graphs, ibmq_20_tokyo (" +
                    std::to_string(count) + " instances/bar)",
                reg);

    std::cout << "expected shape: QAIM < GreedyV < NAIVE (ratios < 1) on\n"
                 "sparse graphs; all ratios -> ~1 as density grows.\n";
    return 0;
}
