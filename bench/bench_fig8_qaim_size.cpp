/**
 * @file
 * Fig. 8(a,b): QAIM vs GreedyV vs NAIVE while varying problem size.
 *
 * 3-regular graphs with 12..20 nodes compiled for ibmq_20_tokyo.  Paper
 * shape: the advantage of intelligent placement is largest for small
 * problems (device has spare qubits to avoid weakly-connected corners —
 * ~22% depth / ~27% gates at n = 12) and shrinks as the problem fills
 * the device.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "hardware/devices.hpp"
#include "metrics/harness.hpp"

int
main(int argc, char **argv)
{
    using namespace qaoa;
    bench::BenchConfig config = bench::parseArgs(argc, argv);
    const int count = config.instances(8, 20);
    hw::CouplingMap tokyo = hw::ibmqTokyo20();

    Table table({"nodes", "depth GreedyV/NAIVE", "depth QAIM/NAIVE",
                 "gates GreedyV/NAIVE", "gates QAIM/NAIVE"});
    for (int n = 12; n <= 20; n += 2) {
        auto instances = metrics::regularInstances(
            n, 3, count, static_cast<std::uint64_t>(n) * 7);
        auto run = [&](core::Method method) {
            core::QaoaCompileOptions opts;
            opts.method = method;
            opts.seed = 777;
            return metrics::compileSeries(instances, tokyo, opts);
        };
        metrics::MetricSeries naive = run(core::Method::Naive);
        metrics::MetricSeries greedy = run(core::Method::GreedyV);
        metrics::MetricSeries qaim = run(core::Method::Qaim);
        table.addRow({Table::num(static_cast<long long>(n)),
                      Table::num(ratioOfMeans(greedy.depth, naive.depth)),
                      Table::num(ratioOfMeans(qaim.depth, naive.depth)),
                      Table::num(ratioOfMeans(greedy.gate_count,
                                              naive.gate_count)),
                      Table::num(ratioOfMeans(qaim.gate_count,
                                              naive.gate_count))});
    }
    bench::emit(config,
                "Fig. 8 — 3-regular graphs of 12..20 nodes, "
                "ibmq_20_tokyo (" +
                    std::to_string(count) + " instances/point)",
                table);
    std::cout << "expected shape: ratios < 1 everywhere, smallest (best)\n"
                 "for the smallest problems, approaching 1 near n = 20.\n";
    return 0;
}
