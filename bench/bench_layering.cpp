/**
 * @file
 * Ablation: CPHASE layer-formation strategies against the MOQ lower
 * bound.
 *
 * Layer formation is edge coloring (§IV-B formulates it as bin
 * packing): MOQ = Δ is the information-theoretic lower bound, IP is the
 * paper's first-fit-decreasing greedy, Misra–Gries certifies Δ+1, and
 * commutation-aware ASAP recovers parallelism from *any* input order
 * without an explicit packing pass.  This bench compares achieved layer
 * counts and formation time across density.
 */

#include <iostream>

#include "bench_util.hpp"
#include "circuit/commutation.hpp"
#include "circuit/layers.hpp"
#include "common/stats.hpp"
#include "common/stopwatch.hpp"
#include "metrics/harness.hpp"
#include "qaoa/edge_coloring.hpp"
#include "qaoa/ip.hpp"
#include "qaoa/problem.hpp"
#include "qaoa/profile_stats.hpp"

int
main(int argc, char **argv)
{
    using namespace qaoa;
    bench::BenchConfig config = bench::parseArgs(argc, argv);
    const int count = config.instances(10, 40);

    Table table({"edges/node", "MOQ (lower bound)", "IP layers",
                 "Misra-Gries layers", "commutation-aware ASAP",
                 "random-order ASAP"});
    for (int k : {3, 4, 6, 8}) {
        auto instances = metrics::regularInstances(
            20, k, count, static_cast<std::uint64_t>(k) * 71);
        Accumulator moq, ip_layers, mg_layers, ca_layers, plain_layers;
        Rng seeder(5);
        for (const graph::Graph &g : instances) {
            std::vector<core::ZZOp> ops = core::costOperations(g);
            Rng rng(seeder.fork());
            rng.shuffle(ops); // random input order throughout

            moq.add(core::maxOpsPerQubit(ops, 20));
            Rng ip_rng(rng.fork());
            ip_layers.add(static_cast<double>(
                core::ipOrder(ops, 20, ip_rng).layers.size()));
            mg_layers.add(static_cast<double>(
                core::edgeColoringLayers(ops, 20).size()));

            circuit::Circuit c(20);
            for (const auto &op : ops)
                c.add(circuit::Gate::cphase(op.a, op.b, 0.5));
            ca_layers.add(circuit::commutationAwareLayerCount(c));
            plain_layers.add(circuit::layerCount(c));
        }
        table.addRow({Table::num(static_cast<long long>(k)),
                      Table::num(moq.mean(), 2),
                      Table::num(ip_layers.mean(), 2),
                      Table::num(mg_layers.mean(), 2),
                      Table::num(ca_layers.mean(), 2),
                      Table::num(plain_layers.mean(), 2)});
    }
    bench::emit(config,
                "Ablation — CPHASE layer formation, 20-node k-regular "
                "graphs (" +
                    std::to_string(count) + " instances/row)",
                table);
    std::cout << "expected shape: Misra-Gries <= MOQ+1 always; IP and\n"
                 "commutation-aware ASAP land within ~1-2 layers of the\n"
                 "bound; plain ASAP on a random order is far worse.\n";
    return 0;
}
