/**
 * @file
 * Ablation: backend-router heuristics.
 *
 * (a) Lookahead weight sweep — how much of the compiled quality comes
 *     from the router's extended-set term vs the paper's methodologies.
 * (b) QAIM connectivity-strength radius — first+second neighbors
 *     (paper default) vs degree-only vs third neighbors (§IV-A notes
 *     deeper neighborhoods may help larger architectures).
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "hardware/devices.hpp"
#include "metrics/harness.hpp"
#include "qaoa/qaim.hpp"
#include "transpiler/router.hpp"

int
main(int argc, char **argv)
{
    using namespace qaoa;
    bench::BenchConfig config = bench::parseArgs(argc, argv);
    const int count = config.instances(10, 40);

    hw::CouplingMap tokyo = hw::ibmqTokyo20();
    auto instances = metrics::regularInstances(16, 4, count, 555);

    // (a) Lookahead weight sweep on the one-shot QAIM path.  (IC routes
    // one commuting layer at a time, so the extended set is empty there
    // by construction — the knob only matters for whole-circuit
    // routing.)
    Table lookahead({"lookahead weight", "mean depth", "mean gates",
                     "mean SWAPs"});
    for (double w : {0.0, 0.25, 0.5, 1.0, 2.0}) {
        core::QaoaCompileOptions opts;
        opts.method = core::Method::Qaim;
        opts.router.lookahead_weight = w;
        opts.seed = 606;
        metrics::MetricSeries s =
            metrics::compileSeries(instances, tokyo, opts);
        lookahead.addRow({Table::num(w, 2), Table::num(mean(s.depth), 1),
                          Table::num(mean(s.gate_count), 1),
                          Table::num(mean(s.swap_count), 2)});
    }
    bench::emit(config,
                "Ablation — router lookahead weight, QAIM one-shot, "
                "16-node 4-regular on ibmq_20_tokyo (" +
                    std::to_string(count) + " instances)",
                lookahead);

    // (b) QAIM strength radius.
    Table radius({"strength radius", "mean SWAPs", "mean depth"});
    Rng seeder(77);
    for (int r : {1, 2, 3}) {
        Accumulator swaps, depth;
        Rng rng_base(seeder.fork());
        for (const graph::Graph &g : instances) {
            std::vector<core::ZZOp> ops = core::costOperations(g);
            core::QaimOptions qopts;
            qopts.strength_radius = r;
            Rng rng(rng_base.fork());
            transpiler::Layout layout =
                core::qaimLayout(ops, g.numNodes(), tokyo, rng, qopts);
            circuit::Circuit logical =
                core::buildQaoaCircuit(g, {0.7}, {0.35}, false);
            transpiler::RoutedCircuit routed =
                transpiler::routeCircuit(logical, tokyo, layout);
            swaps.add(routed.swap_count);
            depth.add(routed.physical.depth());
        }
        radius.addRow({Table::num(static_cast<long long>(r)),
                       Table::num(swaps.mean(), 2),
                       Table::num(depth.mean(), 1)});
    }
    bench::emit(config,
                "Ablation — QAIM connectivity-strength radius (paper "
                "default 2)",
                radius);
    return 0;
}
