/**
 * @file
 * Fault-tolerance sweep: compile quality and service availability as the
 * coupling fault rate grows from 0% to 30% on the three paper
 * topologies (ibmq_20_tokyo, ibmq_16_melbourne, hypothetical 6x6 grid).
 *
 * For each (device, fault rate) cell, several random fault draws degrade
 * the device (hardware/faults.hpp) and a pool of MaxCut instances is
 * compiled with the IC methodology against the largest surviving
 * component.  Reported per cell: how many compiles ended ok / degraded /
 * failed, and the mean depth, gate count and estimated success
 * probability of the circuits that did compile.  `--csv` emits the same
 * rows as comma-separated values.
 */

#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "hardware/devices.hpp"
#include "hardware/faults.hpp"
#include "metrics/harness.hpp"
#include "qaoa/api.hpp"
#include "sim/success.hpp"

namespace {

using namespace qaoa;

struct Workload
{
    std::string label;
    hw::CouplingMap map;
    int problem_nodes;
};

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchConfig config = bench::parseArgs(argc, argv);
    const int per_cell = config.instances(3, 10);  // instances per draw
    const int draws = config.instances(3, 8);      // fault draws per rate

    std::vector<Workload> workloads;
    workloads.push_back({"ibmq_20_tokyo", hw::ibmqTokyo20(), 12});
    workloads.push_back({"ibmq_16_melbourne", hw::ibmqMelbourne15(), 10});
    workloads.push_back({"grid_6x6", hw::gridDevice(6, 6), 16});

    const double rates[] = {0.0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30};

    Table table({"device", "fault rate", "ok", "degraded", "failed",
                 "mean depth", "mean gates", "mean succ. prob"});
    for (const Workload &w : workloads) {
        std::vector<graph::Graph> pool = metrics::erdosRenyiInstances(
            w.problem_nodes, 0.3, per_cell, 733);
        for (double rate : rates) {
            int ok = 0, degraded = 0, failed = 0;
            double depth_sum = 0.0, gates_sum = 0.0, prob_sum = 0.0;
            for (int draw = 0; draw < draws; ++draw) {
                hw::FaultSpec spec;
                spec.edge_fault_rate = rate;
                spec.seed = 1000 + static_cast<std::uint64_t>(draw);
                hw::FaultInjector inj(w.map, spec);

                core::QaoaCompileOptions opts;
                opts.method = core::Method::Ic;
                opts.seed = 99;
                opts.calibration = &inj.calibration();
                opts.allowed_qubits = &inj.usable();
                opts.device_degraded = !inj.disabledEdges().empty();
                for (const graph::Graph &g : pool) {
                    transpiler::CompileResult r =
                        core::compileQaoaMaxcut(g, inj.map(), opts);
                    switch (r.status) {
                      case transpiler::CompileStatus::Ok: ++ok; break;
                      case transpiler::CompileStatus::Degraded:
                        ++degraded;
                        break;
                      case transpiler::CompileStatus::Failed:
                      case transpiler::CompileStatus::TimedOut:
                      case transpiler::CompileStatus::Cancelled:
                      case transpiler::CompileStatus::ResourceExceeded:
                        ++failed;
                        continue; // no circuit to measure
                    }
                    depth_sum += r.report.depth;
                    gates_sum += r.report.gate_count;
                    prob_sum += sim::successProbability(
                        r.compiled, inj.calibration());
                }
            }
            const int compiled = ok + degraded;
            table.addRow(
                {w.label, Table::num(rate, 2),
                 Table::num(static_cast<long long>(ok)),
                 Table::num(static_cast<long long>(degraded)),
                 Table::num(static_cast<long long>(failed)),
                 compiled ? Table::num(depth_sum / compiled) : "-",
                 compiled ? Table::num(gates_sum / compiled) : "-",
                 compiled ? Table::num(prob_sum / compiled, 4) : "-"});
        }
    }
    bench::emit(config,
                "fault sweep — IC compiles per (device, coupling fault "
                "rate) cell: " +
                    std::to_string(draws) + " fault draw(s) x " +
                    std::to_string(per_cell) + " instance(s)",
                table);
    std::cout << "degraded = compiled on a faulty device or via a "
                 "retry-ladder fallback; failed = no usable region "
                 "large enough / unroutable\n";
    return 0;
}
