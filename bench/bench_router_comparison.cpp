/**
 * @file
 * Ablation: the two conventional-backend families of §III head to head.
 *
 * Greedy front-layer routing (qiskit-style, transpiler/router.hpp) vs
 * per-layer A* search (Zulehner-style [47], transpiler/astar_router.hpp)
 * on identical QAOA workloads and identical QAIM layouts — SWAPs, depth
 * and routing time.  The trade-off the paper's backend choice rests on:
 * the greedy router is faster and can interleave layers; the A* router
 * enforces layer-simultaneous compliance with backtracking.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/stopwatch.hpp"
#include "hardware/devices.hpp"
#include "metrics/harness.hpp"
#include "qaoa/qaim.hpp"
#include "transpiler/astar_router.hpp"

int
main(int argc, char **argv)
{
    using namespace qaoa;
    bench::BenchConfig config = bench::parseArgs(argc, argv);
    const int count = config.instances(10, 40);

    hw::CouplingMap tokyo = hw::ibmqTokyo20();

    Table table({"workload", "router", "mean SWAPs", "mean depth",
                 "mean route ms"});
    for (int k : {3, 6}) {
        auto instances = metrics::regularInstances(
            16, k, count, static_cast<std::uint64_t>(k) * 111);
        Accumulator g_swaps, g_depth, g_ms;
        Accumulator a_swaps, a_depth, a_ms;
        Rng seeder(21);
        for (const graph::Graph &g : instances) {
            std::vector<core::ZZOp> ops = core::costOperations(g);
            Rng rng(seeder.fork());
            transpiler::Layout layout =
                core::qaimLayout(ops, g.numNodes(), tokyo, rng);
            circuit::Circuit logical =
                core::buildQaoaCircuit(g, {0.7}, {0.35}, false);

            Stopwatch greedy_clock;
            transpiler::RoutedCircuit greedy =
                transpiler::routeCircuit(logical, tokyo, layout);
            g_ms.add(greedy_clock.milliseconds());
            g_swaps.add(greedy.swap_count);
            g_depth.add(greedy.physical.depth());

            Stopwatch astar_clock;
            transpiler::RoutedCircuit astar =
                transpiler::routeCircuitAStar(logical, tokyo, layout);
            a_ms.add(astar_clock.milliseconds());
            a_swaps.add(astar.swap_count);
            a_depth.add(astar.physical.depth());
        }
        std::string workload = std::to_string(k) + "-regular n=16";
        table.addRow({workload, "greedy front-layer",
                      Table::num(g_swaps.mean(), 2),
                      Table::num(g_depth.mean(), 1),
                      Table::num(g_ms.mean(), 3)});
        table.addRow({workload, "A* layered [47]",
                      Table::num(a_swaps.mean(), 2),
                      Table::num(a_depth.mean(), 1),
                      Table::num(a_ms.mean(), 3)});
    }
    bench::emit(config,
                "Ablation — backend router families on ibmq_20_tokyo "
                "(QAIM layouts, " +
                    std::to_string(count) + " instances/row)",
                table);
    std::cout << "expected shape: greedy routes faster with fewer SWAPs\n"
                 "(it may interleave layers); A* pays search time and\n"
                 "extra SWAPs for simultaneous layer compliance but its\n"
                 "SWAPs parallelize, giving lower depth (cf. §III).\n";
    return 0;
}
