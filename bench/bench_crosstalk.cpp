/**
 * @file
 * Extension (§VI "Crosstalk"): cost of crosstalk-aware
 * sequentialization after IC (+QAOA) compilation.
 *
 * Marks an increasing number of coupling pairs on ibmq_20_tokyo as
 * crosstalk-prone (Murali et al. found only ~2% of couplings prone on
 * IBM Poughkeepsie), runs the post-compilation sequentialization pass,
 * and reports violations removed and the depth overhead paid.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "hardware/devices.hpp"
#include "metrics/harness.hpp"
#include "transpiler/crosstalk.hpp"

int
main(int argc, char **argv)
{
    using namespace qaoa;
    bench::BenchConfig config = bench::parseArgs(argc, argv);
    const int count = config.instances(8, 30);

    hw::CouplingMap tokyo = hw::ibmqTokyo20();
    auto instances = metrics::regularInstances(16, 4, count, 3690);

    // Conflicting pairs: spectator couplings — qubit-disjoint edges at
    // hop distance 1 (two CNOTs on them *can* run in parallel, and on
    // real hardware their spectator coupling makes that parallelism
    // crosstalk-prone).
    std::vector<transpiler::CrosstalkPair> all_pairs;
    const auto &edges = tokyo.graph().edges();
    for (std::size_t i = 0; i < edges.size() && all_pairs.size() < 8;
         ++i) {
        for (std::size_t j = i + 1; j < edges.size(); ++j) {
            bool disjoint = edges[i].u != edges[j].u &&
                            edges[i].u != edges[j].v &&
                            edges[i].v != edges[j].u &&
                            edges[i].v != edges[j].v;
            if (!disjoint)
                continue;
            int gap = std::min(
                std::min(tokyo.distance(edges[i].u, edges[j].u),
                         tokyo.distance(edges[i].u, edges[j].v)),
                std::min(tokyo.distance(edges[i].v, edges[j].u),
                         tokyo.distance(edges[i].v, edges[j].v)));
            if (gap == 1) {
                all_pairs.push_back({{edges[i].u, edges[i].v},
                                     {edges[j].u, edges[j].v}});
                break;
            }
        }
    }

    Table table({"prone pairs", "mean violations before", "after",
                 "mean depth before", "after", "depth overhead %"});
    for (std::size_t k : {std::size_t{0}, std::size_t{2}, std::size_t{4},
                          std::size_t{8}}) {
        std::vector<transpiler::CrosstalkPair> pairs(
            all_pairs.begin(),
            all_pairs.begin() + std::min(k, all_pairs.size()));
        Accumulator before_v, after_v, before_d, after_d;
        Rng seeder(42);
        for (const graph::Graph &g : instances) {
            core::QaoaCompileOptions opts;
            opts.method = core::Method::Ic;
            opts.seed = seeder.fork();
            transpiler::CompileResult r =
                core::compileQaoaMaxcut(g, tokyo, opts);
            before_v.add(
                transpiler::countCrosstalkViolations(r.compiled, pairs));
            before_d.add(r.compiled.depth());
            circuit::Circuit fixed =
                transpiler::sequentializeCrosstalk(r.compiled, pairs);
            after_v.add(
                transpiler::countCrosstalkViolations(fixed, pairs));
            after_d.add(fixed.depth());
        }
        double overhead =
            before_d.mean() > 0.0
                ? 100.0 * (after_d.mean() - before_d.mean()) /
                      before_d.mean()
                : 0.0;
        table.addRow({Table::num(static_cast<long long>(pairs.size())),
                      Table::num(before_v.mean(), 2),
                      Table::num(after_v.mean(), 2),
                      Table::num(before_d.mean(), 1),
                      Table::num(after_d.mean(), 1),
                      Table::num(overhead, 2)});
    }
    bench::emit(config,
                "Extension — crosstalk sequentialization on IC(+QAIM) "
                "circuits, ibmq_20_tokyo (" +
                    std::to_string(count) + " instances)",
                table);
    std::cout << "expected shape: violations drop to 0; depth overhead\n"
                 "stays small because only a few couplings are prone.\n";
    return 0;
}
