/**
 * @file
 * Fig. 11(a): performance summary — mean depth, gate-count and compile
 * time of NAIVE, QAIM, IP, IC and VIC, normalized by NAIVE, over a mixed
 * pool of 20-node graphs (ER 0.1..0.6 + regular 3..8) on ibmq_20_tokyo.
 *
 * Paper golden table: QAIM 0.95/0.94/~1, IP 0.54/0.92/0.55,
 * IC 0.47/0.77/0.85, VIC 0.48/0.77/0.86.  VIC uses synthetic CNOT error
 * rates from N(1.0e-2, 0.5e-2) as in §V-F.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "hardware/devices.hpp"
#include "metrics/harness.hpp"

int
main(int argc, char **argv)
{
    using namespace qaoa;
    bench::BenchConfig config = bench::parseArgs(argc, argv);
    // Paper: 600 instances (50 per configuration).  Default: 5 per
    // configuration = 60 total.
    const int per_config = config.instances(5, 50);

    hw::CouplingMap tokyo = hw::ibmqTokyo20();
    Rng calib_rng(2020);
    hw::CalibrationData calib =
        hw::randomCalibration(tokyo, calib_rng, 1.0e-2, 0.5e-2);

    // Mixed instance pool.
    std::vector<graph::Graph> pool;
    for (double p : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6})
        for (auto &g : metrics::erdosRenyiInstances(
                 20, p, per_config, static_cast<std::uint64_t>(p * 571)))
            pool.push_back(std::move(g));
    for (int k = 3; k <= 8; ++k)
        for (auto &g : metrics::regularInstances(
                 20, k, per_config, static_cast<std::uint64_t>(k) * 29))
            pool.push_back(std::move(g));

    const core::Method methods[] = {core::Method::Naive,
                                    core::Method::Qaim, core::Method::Ip,
                                    core::Method::Ic, core::Method::Vic};
    metrics::MetricSeries naive;
    Table table({"method", "circuit depth", "gate-count", "comp. time"});
    for (core::Method m : methods) {
        core::QaoaCompileOptions opts;
        opts.method = m;
        opts.calibration = &calib;
        opts.seed = 99;
        metrics::MetricSeries s = metrics::compileSeries(pool, tokyo,
                                                         opts);
        if (m == core::Method::Naive) {
            naive = s;
            table.addRow({"NAIVE", "1.000", "1.000", "1.000"});
            continue;
        }
        table.addRow({core::methodName(m),
                      Table::num(ratioOfMeans(s.depth, naive.depth)),
                      Table::num(ratioOfMeans(s.gate_count,
                                              naive.gate_count)),
                      Table::num(ratioOfMeans(s.compile_seconds,
                                              naive.compile_seconds))});
    }
    bench::emit(config,
                "Fig. 11(a) — average over " +
                    std::to_string(pool.size()) +
                    " 20-node graphs (erdos-renyi + regular), "
                    "ibmq_20_tokyo, normalized by NAIVE",
                table);
    std::cout << "paper golden values: QAIM 0.95/0.94/~1, IP "
                 "0.54/0.92/0.55, IC 0.47/0.77/0.85, VIC 0.48/0.77/0.86\n";
    return 0;
}
