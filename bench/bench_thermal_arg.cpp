/**
 * @file
 * Extension: ARG under thermal relaxation (T1/T2) instead of the
 * depolarizing gate-error channel.
 *
 * §II's decoherence argument says the *depth* reductions of IP/IC should
 * pay off under pure relaxation noise even with identical gate counts —
 * this bench isolates that mechanism: compile 10-node MaxCut instances
 * with QAIM / IP / IC, sample under thermalSample() with aggressive
 * T1/T2, and report mean ARG per method.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "graph/maxcut.hpp"
#include "hardware/devices.hpp"
#include "metrics/approx_ratio.hpp"
#include "metrics/harness.hpp"
#include "sim/thermal.hpp"

int
main(int argc, char **argv)
{
    using namespace qaoa;
    bench::BenchConfig config = bench::parseArgs(argc, argv);
    // Per-instance ARG noise is ~1%, so the method gaps (~0.5%) need a
    // dozen instances and >= 32 trajectories to resolve.
    const int count = config.instances(12, 20);
    const std::uint64_t shots = config.full ? 16384 : 8192;
    const int trajectories = config.full ? 48 : 32;

    hw::CouplingMap melbourne = hw::ibmqMelbourne15();
    auto instances = metrics::erdosRenyiInstances(10, 0.5, count, 515);

    sim::ThermalParams params;
    params.t1_ns = 40000.0; // aggressive relaxation to expose depth
    params.t2_ns = 30000.0;

    const core::Method methods[] = {core::Method::Qaim, core::Method::Ip,
                                    core::Method::Ic};
    std::vector<std::vector<double>> args(3);
    Rng seeder(616);
    for (const graph::Graph &g : instances) {
        metrics::P1Parameters p = metrics::optimizeP1(g);
        double optimum = graph::maxCutBruteForce(g).value;
        std::uint64_t seed = seeder.fork();
        for (std::size_t mi = 0; mi < 3; ++mi) {
            core::QaoaCompileOptions opts;
            opts.method = methods[mi];
            opts.gammas = {p.gamma};
            opts.betas = {p.beta};
            opts.seed = seed;
            transpiler::CompileResult r =
                core::compileQaoaMaxcut(g, melbourne, opts);

            Rng rng(seed ^ 0xabcdef);
            sim::Counts ideal = sim::runAndSample(r.compiled, shots, rng);
            double r0 = metrics::approximationRatio(g, ideal, optimum);
            sim::Counts noisy = sim::thermalSample(r.compiled, params,
                                                   shots, rng,
                                                   trajectories);
            double rh = metrics::approximationRatio(g, noisy, optimum);
            args[mi].push_back(metrics::approximationRatioGap(r0, rh));
        }
    }

    Table table({"method", "mean ARG %", "stddev"});
    for (std::size_t mi = 0; mi < 3; ++mi)
        table.addRow({core::methodName(methods[mi]),
                      Table::num(mean(args[mi]), 2),
                      Table::num(stddev(args[mi]), 2)});
    bench::emit(config,
                "Extension — ARG under T1/T2 thermal relaxation, "
                "10-node ER(0.5) on melbourne (" +
                    std::to_string(count) + " instances)",
                table);
    std::cout << "expected shape: ARG shrinks with compiled depth —\n"
                 "IC <= IP <= QAIM.\n";
    return 0;
}
