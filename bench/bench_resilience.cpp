/**
 * @file
 * Resilience-runtime overhead and latency bench.
 *
 * Two questions the deadline-aware runtime must answer with numbers:
 *
 *  1. Watchdog overhead — how much slower is the Fig. 11 workload
 *     (ibmq_20_tokyo, IC/VIC) when every hot loop polls a RunGuard with
 *     a generous deadline, versus compiling unguarded?  The poll
 *     decimation in run::RunGuard targets < 2%; the table reports the
 *     measured percentage per method.
 *
 *  2. Cancellation latency — once requestCancel() fires mid-batch, how
 *     long until compileSeries() actually returns?  Cooperative
 *     cancellation bounds this by one poll interval of the innermost
 *     loop; the table reports the observed wall-clock latency over
 *     several cancel points.
 *
 * `--full` widens the instance pool and repetition counts; `--csv`
 * emits comma-separated rows.
 */

#include <algorithm>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/guard.hpp"
#include "common/stopwatch.hpp"
#include "hardware/devices.hpp"
#include "metrics/harness.hpp"
#include "qaoa/api.hpp"

namespace {

using namespace qaoa;

/** Scaled Fig. 11 pool: ER p = 0.1..0.6 plus 3..8-regular instances. */
std::vector<graph::Graph>
fig11Pool(int n, int count, std::uint64_t seed)
{
    std::vector<graph::Graph> pool;
    for (int i = 0; i < 6; ++i) {
        double p = 0.1 + 0.1 * i;
        for (auto &g : metrics::erdosRenyiInstances(
                 n, p, count, seed + static_cast<std::uint64_t>(i)))
            pool.push_back(std::move(g));
    }
    for (int k = 3; k <= 8; ++k) {
        for (auto &g : metrics::regularInstances(
                 n, k, count, seed + 100 + static_cast<std::uint64_t>(k)))
            pool.push_back(std::move(g));
    }
    return pool;
}

double
median(std::vector<double> v)
{
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchConfig config = bench::parseArgs(argc, argv);
    const int per_class = config.instances(2, 6);
    const int reps = config.instances(3, 7);

    const hw::CouplingMap map = hw::ibmqTokyo20();
    const hw::CalibrationData calib(map);
    const std::vector<graph::Graph> pool = fig11Pool(16, per_class, 7);

    Table overhead_table({"method", "unguarded ms", "guarded ms",
                          "overhead %", "within 2% bar"});
    for (core::Method method : {core::Method::Ic, core::Method::Vic}) {
        core::QaoaCompileOptions opts;
        opts.method = method;
        opts.calibration = &calib;
        opts.seed = 99;

        std::vector<double> plain_ms, guarded_ms;
        for (int rep = 0; rep < reps; ++rep) {
            Stopwatch plain_clock;
            metrics::compileSeries(pool, map, opts);
            plain_ms.push_back(plain_clock.milliseconds());

            // Generous deadline + stage budget: every guard branch is
            // exercised, nothing ever trips.
            const run::CancelToken token;
            const run::RunGuard guard(token,
                                      run::Deadline::afterMs(600000.0));
            core::QaoaCompileOptions guarded = opts;
            guarded.guard = &guard;
            guarded.stage_budget_ms = 600000.0;
            Stopwatch guarded_clock;
            metrics::compileSeries(pool, map, guarded);
            guarded_ms.push_back(guarded_clock.milliseconds());
        }
        const double plain = median(plain_ms);
        const double guarded = median(guarded_ms);
        const double overhead = (guarded - plain) / plain * 100.0;
        overhead_table.addRow({core::methodName(method),
                               Table::num(plain, 2),
                               Table::num(guarded, 2),
                               Table::num(overhead, 2),
                               overhead < 2.0 ? "yes" : "NO"});
    }
    bench::emit(config,
                "watchdog overhead — Fig. 11 workload on ibmq_20_tokyo, "
                "guarded vs unguarded (median of " +
                    std::to_string(reps) + " reps)",
                overhead_table);

    // Cancellation latency: fire requestCancel() from a helper thread at
    // staggered points inside the batch and time how long compileSeries
    // takes to unwind afterwards.
    Table latency_table(
        {"cancel after ms", "observed latency ms", "statuses"});
    core::QaoaCompileOptions opts;
    opts.method = core::Method::Ic;
    opts.calibration = &calib;
    opts.seed = 99;
    Stopwatch whole_clock;
    metrics::compileSeries(pool, map, opts);
    const double batch_ms = whole_clock.milliseconds();
    for (double fraction : {0.1, 0.3, 0.6}) {
        const double cancel_at_ms = batch_ms * fraction;
        const run::CancelToken token;
        const run::RunGuard guard(token, run::Deadline::never());
        core::QaoaCompileOptions guarded = opts;
        guarded.guard = &guard;
        double latency_ms = 0.0;
        std::thread killer([&] {
            Stopwatch arm;
            while (arm.milliseconds() < cancel_at_ms)
                std::this_thread::yield();
            token.requestCancel();
        });
        Stopwatch clock;
        const metrics::MetricSeries series =
            metrics::compileSeries(pool, map, guarded);
        const double total = clock.milliseconds();
        killer.join();
        latency_ms = total - cancel_at_ms;
        int ok = 0, cancelled = 0;
        for (transpiler::CompileStatus s : series.status) {
            if (s == transpiler::CompileStatus::Cancelled)
                ++cancelled;
            else
                ++ok;
        }
        latency_table.addRow(
            {Table::num(cancel_at_ms, 2), Table::num(latency_ms, 2),
             std::to_string(ok) + " done / " + std::to_string(cancelled) +
                 " cancelled"});
    }
    bench::emit(config,
                "cancellation latency — requestCancel() mid-batch, time "
                "until compileSeries unwinds (batch ~" +
                    std::to_string(static_cast<int>(batch_ms)) + " ms)",
                latency_table);
    std::cout << "latency is bounded by one poll interval of the "
                 "innermost guarded loop; a negative value means the "
                 "batch finished before the cancel point\n";
    return 0;
}
