/**
 * @file
 * §VII comparator: iterative re-compilation ([70], [71]) vs the paper's
 * single-pass methodologies.
 *
 * Those works re-compile with updated gate orders until quality stops
 * improving, reporting ~10x-600x compile-time penalties over a single
 * qiskit pass.  This bench reproduces the trade-off: quality (depth)
 * gained by the search vs the compile-time multiple paid, next to IP
 * and IC which get most of the quality in one pass.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "hardware/devices.hpp"
#include "metrics/harness.hpp"
#include "qaoa/iterative.hpp"

int
main(int argc, char **argv)
{
    using namespace qaoa;
    bench::BenchConfig config = bench::parseArgs(argc, argv);
    const int count = config.instances(8, 25);

    hw::CouplingMap tokyo = hw::ibmqTokyo20();
    auto instances = metrics::regularInstances(14, 3, count, 888);

    Accumulator naive_d, naive_t, ip_d, ip_t, ic_d, ic_t;
    Accumulator iter_d, iter_t, iter_rounds;

    Rng seeder(99);
    for (const graph::Graph &g : instances) {
        std::uint64_t seed = seeder.fork();
        auto run = [&](core::Method m, Accumulator &d, Accumulator &t) {
            core::QaoaCompileOptions opts;
            opts.method = m;
            opts.seed = seed;
            transpiler::CompileResult r =
                core::compileQaoaMaxcut(g, tokyo, opts);
            d.add(r.report.depth);
            t.add(r.report.compile_seconds);
        };
        run(core::Method::Naive, naive_d, naive_t);
        run(core::Method::Ip, ip_d, ip_t);
        run(core::Method::Ic, ic_d, ic_t);

        core::IterativeOptions iopts;
        iopts.compile.method = core::Method::Qaim;
        iopts.compile.seed = seed;
        iopts.patience = config.full ? 16 : 8;
        core::IterativeResult it = core::iterativeCompile(g, tokyo,
                                                          iopts);
        iter_d.add(it.best.report.depth);
        iter_t.add(it.total_compile_seconds);
        iter_rounds.add(it.rounds);
    }

    Table table({"approach", "mean depth", "depth vs NAIVE",
                 "compile time vs NAIVE", "rounds"});
    auto row = [&](const std::string &name, const Accumulator &d,
                   const Accumulator &t, double rounds) {
        table.addRow({name, Table::num(d.mean(), 1),
                      Table::num(d.mean() / naive_d.mean()),
                      Table::num(t.mean() / naive_t.mean(), 2),
                      Table::num(rounds, 1)});
    };
    row("NAIVE single pass", naive_d, naive_t, 1.0);
    row("IP single pass", ip_d, ip_t, 1.0);
    row("IC single pass", ic_d, ic_t, 1.0);
    row("iterative recompile [70]", iter_d, iter_t, iter_rounds.mean());
    bench::emit(config,
                "§VII — iterative re-compilation vs single-pass "
                "methodologies, 14-node 3-regular on ibmq_20_tokyo (" +
                    std::to_string(count) + " instances)",
                table);
    std::cout << "expected shape: the iterative search matches or beats\n"
                 "IC's depth but pays a ~10x+ compile-time multiple —\n"
                 "the paper's argument for single-pass heuristics.\n";
    return 0;
}
