/**
 * @file
 * Fig. 3(b): connectivity-strength profile of ibmq_20_tokyo.
 *
 * Regenerates the hardware-profiling table QAIM consumes — the number of
 * first+second neighbors of every physical qubit.  Golden values from the
 * paper's text: qubit-0 -> 7, qubit-7 and qubit-12 -> 18.
 */

#include <iostream>

#include "bench_util.hpp"
#include "hardware/devices.hpp"
#include "hardware/profile.hpp"

int
main(int argc, char **argv)
{
    using namespace qaoa;
    bench::BenchConfig config = bench::parseArgs(argc, argv);

    hw::CouplingMap tokyo = hw::ibmqTokyo20();
    std::vector<int> strength = hw::connectivityProfile(tokyo);

    Table table({"qubit", "degree", "connectivity strength"});
    for (int q = 0; q < tokyo.numQubits(); ++q)
        table.addRow({Table::num(static_cast<long long>(q)),
                      Table::num(static_cast<long long>(
                          tokyo.graph().degree(q))),
                      Table::num(static_cast<long long>(
                          strength[static_cast<std::size_t>(q)]))});
    bench::emit(config,
                "Fig. 3(b) — ibmq_20_tokyo connectivity strengths", table);

    std::cout << "paper golden checks: qubit-0 = 7 (got " << strength[0]
              << "), qubit-7 = 18 (got " << strength[7]
              << "), qubit-12 = 18 (got " << strength[12] << ")\n";
    return (strength[0] == 7 && strength[7] == 18 && strength[12] == 18)
               ? 0
               : 1;
}
