/**
 * @file
 * Fig. 9(a-f): IP (+QAIM) and IC (+QAIM) versus QAIM-only compilation.
 *
 * Same workloads as Fig. 7 (20-node ER 0.1..0.6 and k-regular 3..8 on
 * ibmq_20_tokyo); bars are mean depth / gate-count / compile-time ratios
 * versus QAIM with random CPHASE order.  Paper shape: both IP and IC cut
 * depth sharply (more on dense graphs, e.g. IC -39% at k=3 down to -68%
 * at k=8); IC also cuts gate count (~17%) while IP's gate count matches
 * QAIM; IP compiles fastest (~37% faster than IC).
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "hardware/devices.hpp"
#include "metrics/harness.hpp"

namespace {

using namespace qaoa;

void
runSweep(const bench::BenchConfig &config, const hw::CouplingMap &tokyo,
         bool regular, int count)
{
    Table table({regular ? "edges/node" : "edge prob", "depth IP/QAIM",
                 "depth IC/QAIM", "gates IP/QAIM", "gates IC/QAIM",
                 "time IP/QAIM", "time IC/QAIM"});
    auto sweep_points = regular
                            ? std::vector<double>{3, 4, 5, 6, 7, 8}
                            : std::vector<double>{0.1, 0.2, 0.3,
                                                  0.4, 0.5, 0.6};
    for (double point : sweep_points) {
        std::vector<graph::Graph> instances =
            regular ? metrics::regularInstances(
                          20, static_cast<int>(point), count,
                          static_cast<std::uint64_t>(point) * 13)
                    : metrics::erdosRenyiInstances(
                          20, point, count,
                          static_cast<std::uint64_t>(point * 997));
        auto run = [&](core::Method method) {
            core::QaoaCompileOptions opts;
            opts.method = method;
            opts.seed = 4242;
            return metrics::compileSeries(instances, tokyo, opts);
        };
        metrics::MetricSeries qaim = run(core::Method::Qaim);
        metrics::MetricSeries ip = run(core::Method::Ip);
        metrics::MetricSeries ic = run(core::Method::Ic);
        table.addRow(
            {regular ? Table::num(static_cast<long long>(point))
                     : Table::num(point, 1),
             Table::num(ratioOfMeans(ip.depth, qaim.depth)),
             Table::num(ratioOfMeans(ic.depth, qaim.depth)),
             Table::num(ratioOfMeans(ip.gate_count, qaim.gate_count)),
             Table::num(ratioOfMeans(ic.gate_count, qaim.gate_count)),
             Table::num(ratioOfMeans(ip.compile_seconds,
                                     qaim.compile_seconds)),
             Table::num(ratioOfMeans(ic.compile_seconds,
                                     qaim.compile_seconds))});
    }
    bench::emit(config,
                std::string("Fig. 9 — 20-node ") +
                    (regular ? "regular" : "erdos-renyi") +
                    " graphs, ibmq_20_tokyo (" + std::to_string(count) +
                    " instances/bar)",
                table);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchConfig config = bench::parseArgs(argc, argv);
    const int count = config.instances(10, 50);
    hw::CouplingMap tokyo = hw::ibmqTokyo20();

    runSweep(config, tokyo, /*regular=*/false, count); // Fig. 9(a-c)
    runSweep(config, tokyo, /*regular=*/true, count);  // Fig. 9(d-f)

    std::cout << "expected shape: depth ratios well below 1 for both IP\n"
                 "and IC (IC lowest, gap widening with density); IC gate\n"
                 "ratio < IP gate ratio ~ 1.\n";
    return 0;
}
