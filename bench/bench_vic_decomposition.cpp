/**
 * @file
 * Ablation: decomposing VIC's success-probability gain.
 *
 * VIC changes two things relative to IC (§IV-D): (a) reliable CPHASEs
 * are *ordered* into earlier layers, and (b) SWAP *routing* is scored
 * against reliability-weighted distances (the VQM idea of [50]).  This
 * bench runs the four combinations on melbourne with the Fig. 10(a)
 * calibration and reports mean success probability of each, attributing
 * the gain to its source.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "hardware/devices.hpp"
#include "metrics/harness.hpp"
#include "qaoa/incremental.hpp"
#include "qaoa/qaim.hpp"
#include "sim/success.hpp"

namespace {

using namespace qaoa;

/** IC cost-layer compile with independently selectable matrices. */
double
meanSuccess(const std::vector<graph::Graph> &instances,
            const hw::CouplingMap &melbourne,
            const hw::CalibrationData &calib,
            const graph::DistanceMatrix &weighted, bool weighted_order,
            bool weighted_routing)
{
    Accumulator acc;
    Rng seeder(4242);
    for (const graph::Graph &g : instances) {
        std::vector<core::ZZOp> ops = core::costOperations(g);
        Rng rng(seeder.fork());
        transpiler::Layout layout =
            core::qaimLayout(ops, g.numNodes(), melbourne, rng);

        core::IncrementalOptions iopts;
        iopts.seed = rng.fork();
        iopts.distances = weighted_order ? &weighted : nullptr;
        iopts.router_distances =
            weighted_routing ? &weighted : &melbourne.distances();

        core::IncrementalResult inc = core::icCompileCostLayer(
            ops, melbourne, layout, 0.7, iopts);

        // Score the cost layer itself (H/mixer are method-independent).
        acc.add(sim::successProbability(inc.physical, calib));
    }
    return acc.mean();
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchConfig config = bench::parseArgs(argc, argv);
    const int count = config.instances(16, 40);

    hw::CouplingMap melbourne = hw::ibmqMelbourne15();
    hw::CalibrationData calib = hw::melbourneCalibration(melbourne);
    graph::DistanceMatrix weighted =
        hw::weightedDistances(melbourne, calib);
    auto instances = metrics::erdosRenyiInstances(13, 0.5, count, 1331);

    double base =
        meanSuccess(instances, melbourne, calib, weighted, false, false);
    Table table({"configuration", "mean success prob", "vs IC"});
    auto row = [&](const std::string &name, double sp) {
        table.addRow({name, Table::num(sp, 5), Table::num(sp / base, 2)});
    };
    row("IC (hop order, hop routing)", base);
    row("weighted ordering only",
        meanSuccess(instances, melbourne, calib, weighted, true, false));
    row("weighted routing only (VQM [50])",
        meanSuccess(instances, melbourne, calib, weighted, false, true));
    row("both = VIC",
        meanSuccess(instances, melbourne, calib, weighted, true, true));
    bench::emit(config,
                "Ablation — decomposing VIC's gain, 13-node ER(0.5) "
                "cost layers on ibmq_16_melbourne (" +
                    std::to_string(count) + " instances)",
                table);
    std::cout << "expected shape: every configuration with weighting\n"
                 "beats plain IC; the ordering/routing mix is instance-\n"
                 "dependent (success products are heavy-tailed).\n";
    return 0;
}
