/**
 * @file
 * Fig. 10(b,c): VIC (+QAIM) vs IC (+QAIM) compiled-circuit success
 * probability on ibmq_16_melbourne with the Fig. 10(a) calibration.
 *
 * Problem sizes 13, 14, 15 nodes; ER(0.5) and 6-regular graphs.  Bars are
 * mean success-probability ratios VIC/IC (higher is better).  Paper
 * shape: VIC clearly wins, with a much larger margin on the
 * irregularly-packed ER graphs than on the heavily-packed regular ones.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "hardware/devices.hpp"
#include "metrics/harness.hpp"
#include "sim/success.hpp"

namespace {

using namespace qaoa;

double
meanSuccessRatio(const std::vector<graph::Graph> &instances,
                 const hw::CouplingMap &melbourne,
                 const hw::CalibrationData &calib)
{
    std::vector<double> vic_sp, ic_sp;
    Rng seeder(321);
    for (const graph::Graph &g : instances) {
        std::uint64_t seed = seeder.fork();
        for (core::Method m : {core::Method::Ic, core::Method::Vic}) {
            core::QaoaCompileOptions opts;
            opts.method = m;
            opts.calibration = &calib;
            opts.seed = seed;
            transpiler::CompileResult r =
                core::compileQaoaMaxcut(g, melbourne, opts);
            double sp = sim::successProbability(r.compiled, calib);
            (m == core::Method::Vic ? vic_sp : ic_sp).push_back(sp);
        }
    }
    return ratioOfMeans(vic_sp, ic_sp);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchConfig config = bench::parseArgs(argc, argv);
    // Success probabilities span orders of magnitude, so the mean ratio
    // is outlier-dominated — keep the default sample larger than the
    // other benches for a stable sign.
    const int count = config.instances(16, 20);
    hw::CouplingMap melbourne = hw::ibmqMelbourne15();
    hw::CalibrationData calib = hw::melbourneCalibration(melbourne);

    Table er({"nodes", "success prob ratio VIC/IC"});
    Table reg({"nodes", "success prob ratio VIC/IC"});
    for (int n : {13, 14, 15}) {
        auto er_instances = metrics::erdosRenyiInstances(
            n, 0.5, count, static_cast<std::uint64_t>(n) * 3 + 1);
        er.addRow({Table::num(static_cast<long long>(n)),
                   Table::num(meanSuccessRatio(er_instances, melbourne,
                                               calib))});
        auto reg_instances = metrics::regularInstances(
            n, 6, count, static_cast<std::uint64_t>(n) * 5 + 2);
        reg.addRow({Table::num(static_cast<long long>(n)),
                    Table::num(meanSuccessRatio(reg_instances, melbourne,
                                                calib))});
    }
    bench::emit(config,
                "Fig. 10(b) — erdos-renyi p=0.5, ibmq_16_melbourne (" +
                    std::to_string(count) + " instances/bar)",
                er);
    bench::emit(config,
                "Fig. 10(c) — 6-regular graphs, ibmq_16_melbourne (" +
                    std::to_string(count) + " instances/bar)",
                reg);
    std::cout << "expected shape: ratios > 1 everywhere (VIC wins); the\n"
                 "margin is larger for the erdos-renyi instances than for\n"
                 "the densely-packed regular ones.\n";
    return 0;
}
