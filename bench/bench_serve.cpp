/**
 * @file
 * bench_serve — seeded request-storm harness for the compile daemon.
 *
 * Two experiments against an in-process CompileServer (default compile
 * pipeline, no wire overhead):
 *
 *  1. Cold vs warm: compile a pool of distinct requests, then replay
 *     them against the warm cache.  The warm path must be >= 10x
 *     faster — it skips admission and compilation entirely.
 *
 *  2. Rate sweep: a seeded storm (multiple tenants, a mix of repeated
 *     and fresh problems) at 0.5x / 1x / 2x the measured saturation
 *     rate.  Reports served/shed/hit counts and p50/p99 latency of
 *     served requests.  At 2x saturation the p99 stays bounded because
 *     the admission queue sheds the overload instead of queuing it.
 *
 * Usage: bench_serve [--full] [--csv] (bench_util.hpp conventions).
 */

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "graph/generators.hpp"
#include "serve/server.hpp"

namespace {

using namespace qaoa;
using serve::CompileRequest;
using serve::CompileServer;
using serve::ServeResponse;
using serve::ServerConfig;

double
percentile(std::vector<double> xs, double p)
{
    if (xs.empty())
        return 0.0;
    std::sort(xs.begin(), xs.end());
    const double rank = p * static_cast<double>(xs.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = lo + 1 < xs.size() ? lo + 1 : lo;
    const double frac = rank - static_cast<double>(lo);
    return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

/** A pool of distinct cacheable problems (seeded, reproducible). */
std::vector<CompileRequest>
requestPool(int size, Rng &rng)
{
    std::vector<CompileRequest> pool;
    for (int i = 0; i < size; ++i) {
        CompileRequest request;
        request.problem = graph::randomRegular(8, 3, rng);
        request.device = "melbourne";
        request.method = "ic";
        request.seed = static_cast<std::uint64_t>(1000 + i);
        pool.push_back(request);
    }
    return pool;
}

/** Awaitable response collector (latency per request id). */
struct StormSink
{
    std::mutex mutex;
    std::condition_variable cv;
    std::size_t answered = 0;
    std::size_t served = 0;
    std::size_t shed = 0;
    std::size_t hits = 0;
    std::size_t failed = 0;
    std::vector<double> latencies_ms;

    CompileServer::ResponseFn
    fn(const Stopwatch &clock, double submitted_ms)
    {
        return [this, &clock, submitted_ms](const ServeResponse &r) {
            std::lock_guard<std::mutex> lock(mutex);
            ++answered;
            if (r.type == "result") {
                ++served;
                if (r.cache_hit)
                    ++hits;
                latencies_ms.push_back(clock.milliseconds() -
                                       submitted_ms);
            } else if (r.type == "shed") {
                ++shed;
            } else {
                ++failed;
            }
            cv.notify_all();
        };
    }

    void
    await(std::size_t count)
    {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [&] { return answered >= count; });
    }
};

} // namespace

int
main(int argc, char **argv)
{
    const bench::BenchConfig config = bench::parseArgs(argc, argv);
    const int pool_size = config.instances(6, 16);
    const int storm_requests = config.instances(120, 600);
    const int tenants = 4;

    Rng rng(2020);
    const std::vector<CompileRequest> pool = requestPool(pool_size, rng);

    // ---- Experiment 1: cold vs warm ------------------------------
    ServerConfig server_config;
    server_config.workers = 2;
    server_config.queue_capacity = 64;

    double cold_ms = 0.0;
    double warm_ms = 0.0;
    {
        CompileServer server(server_config);
        server.start();
        const Stopwatch clock;
        for (int round = 0; round < 2; ++round) {
            StormSink sink;
            std::size_t submitted = 0;
            const double round_start = clock.milliseconds();
            for (const CompileRequest &base : pool) {
                CompileRequest request = base;
                request.id = "warmup" + std::to_string(submitted);
                server.submit(std::move(request),
                              sink.fn(clock, clock.milliseconds()));
                ++submitted;
            }
            sink.await(submitted);
            const double elapsed =
                clock.milliseconds() - round_start;
            (round == 0 ? cold_ms : warm_ms) =
                elapsed / static_cast<double>(submitted);
            if (round == 1 && sink.hits != submitted)
                std::cerr << "warning: warm round had "
                          << (submitted - sink.hits)
                          << " unexpected misses\n";
        }
        server.stop();
    }

    Table warmth({"phase", "mean ms/request", "speedup"});
    warmth.addRow({"cold", Table::num(cold_ms), Table::num(1.0)});
    warmth.addRow({"warm (cache)", Table::num(warm_ms),
                   Table::num(warm_ms > 0.0 ? cold_ms / warm_ms : 0.0)});
    bench::emit(config, "cold vs warm cache", warmth);

    // ---- Experiment 2: rate sweep around saturation --------------
    // A quarter of the storm is fresh content that must compile; the
    // rest replays cached problems (hits bypass the queue).  The
    // saturation rate is thus the total rate at which the *fresh*
    // fraction alone saturates the workers.
    const double fresh_fraction = 0.25;
    const double saturation_rps =
        cold_ms > 0.0
            ? 1000.0 * server_config.workers /
                  (cold_ms * fresh_fraction)
            : 100.0;
    // A short backlog bound makes the shed behaviour visible within
    // the storm instead of needing minutes of sustained overload.
    ServerConfig sweep_config = server_config;
    sweep_config.queue_capacity = 8;

    Table sweep({"load", "target r/s", "served", "hit rate", "shed rate",
                 "p50 ms", "p99 ms"});
    for (const double factor : {0.5, 1.0, 2.0}) {
        const double rate = saturation_rps * factor;
        const double gap_ms = 1000.0 / rate;

        CompileServer server(sweep_config);
        server.start();
        StormSink sink;
        const Stopwatch clock;
        Rng storm_rng(7 + static_cast<std::uint64_t>(factor * 10));
        for (int i = 0; i < storm_requests; ++i) {
            CompileRequest request =
                pool[storm_rng.index(pool.size())];
            if (storm_rng.uniformReal(0.0, 1.0) < fresh_fraction)
                request.seed = static_cast<std::uint64_t>(
                    50'000 + i);
            request.id = "storm" + std::to_string(i);
            request.tenant =
                "tenant" +
                std::to_string(storm_rng.uniformInt(0, tenants - 1));
            server.submit(std::move(request),
                          sink.fn(clock, clock.milliseconds()));
            // Busy-wait pacing: sleep_for cannot honour sub-ms gaps,
            // which would silently cap the offered rate.
            const double next_ms = gap_ms * static_cast<double>(i + 1);
            while (clock.milliseconds() < next_ms)
                std::this_thread::yield();
        }
        sink.await(static_cast<std::size_t>(storm_requests));
        server.stop();

        std::vector<double> latencies;
        std::size_t served, shed, hits;
        {
            std::lock_guard<std::mutex> lock(sink.mutex);
            latencies = sink.latencies_ms;
            served = sink.served;
            shed = sink.shed;
            hits = sink.hits;
        }
        const double denom = static_cast<double>(storm_requests);
        sweep.addRow(
            {Table::num(factor) + "x saturation", Table::num(rate),
             std::to_string(served),
             Table::num(served ? static_cast<double>(hits) /
                                     static_cast<double>(served)
                               : 0.0),
             Table::num(static_cast<double>(shed) / denom),
             Table::num(percentile(latencies, 0.50)),
             Table::num(percentile(latencies, 0.99))});
    }
    bench::emit(config, "request storm rate sweep", sweep);

    std::cout << "saturation estimate: " << Table::num(saturation_rps)
              << " requests/s (" << server_config.workers
              << " workers, cold " << Table::num(cold_ms)
              << " ms/compile)\n";
    return 0;
}
