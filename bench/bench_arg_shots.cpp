/**
 * @file
 * Metric validation: statistical behaviour of the proposed ARG metric
 * versus shot count.
 *
 * The paper samples 40960 shots per circuit (§V-G) — this bench shows
 * why: it repeats the ARG measurement of one fixed compiled circuit at
 * increasing shot counts and reports the spread across repetitions.
 * ARG's own sampling noise must be well below the method gaps it is
 * used to rank (a few percent), which pins down the required shots.
 */

#include <algorithm>
#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "graph/maxcut.hpp"
#include "hardware/devices.hpp"
#include "metrics/approx_ratio.hpp"
#include "metrics/harness.hpp"
#include "sim/noise.hpp"

int
main(int argc, char **argv)
{
    using namespace qaoa;
    bench::BenchConfig config = bench::parseArgs(argc, argv);
    const int repetitions = config.instances(10, 25);

    hw::CouplingMap melbourne = hw::ibmqMelbourne15();
    hw::CalibrationData calib = hw::melbourneCalibration(melbourne);

    // One fixed instance and compiled circuit.
    auto instances = metrics::erdosRenyiInstances(10, 0.5, 1, 2626);
    const graph::Graph &g = instances.front();
    metrics::P1Parameters params = metrics::optimizeP1(g);
    double optimum = graph::maxCutBruteForce(g).value;
    core::QaoaCompileOptions opts;
    opts.method = core::Method::Ic;
    opts.gammas = {params.gamma};
    opts.betas = {params.beta};
    transpiler::CompileResult r =
        core::compileQaoaMaxcut(g, melbourne, opts);

    Table table({"shots", "mean ARG %", "stddev across runs"});
    for (std::uint64_t shots : {512ULL, 2048ULL, 8192ULL, 32768ULL}) {
        std::vector<double> args;
        for (int rep = 0; rep < repetitions; ++rep) {
            Rng rng(static_cast<std::uint64_t>(rep) * 91 + shots);
            sim::Counts ideal = sim::runAndSample(r.compiled, shots,
                                                  rng);
            double r0 = metrics::approximationRatio(g, ideal, optimum);
            sim::NoiseOptions nopts;
            // Scale trajectories with shots so the error-injection
            // ensemble does not floor the shot-noise trend.
            nopts.trajectories = static_cast<int>(
                std::min<std::uint64_t>(64, std::max<std::uint64_t>(
                                                8, shots / 256)));
            sim::Counts noisy = sim::noisySample(r.compiled, calib,
                                                 shots, rng, nopts);
            double rh = metrics::approximationRatio(g, noisy, optimum);
            args.push_back(metrics::approximationRatioGap(r0, rh));
        }
        table.addRow({Table::num(static_cast<long long>(shots)),
                      Table::num(mean(args), 2),
                      Table::num(stddev(args), 2)});
    }
    bench::emit(config,
                "Metric validation — ARG repeatability vs shot count, "
                "one 10-node ER(0.5) instance on melbourne (" +
                    std::to_string(repetitions) + " repetitions/row)",
                table);
    std::cout << "expected shape: the ARG mean is stable across shot\n"
                 "counts while its spread shrinks with shots (and with\n"
                 "the trajectory ensemble that scales alongside); by\n"
                 "tens of thousands of shots — the paper's 40960 — it\n"
                 "resolves method gaps of a few percent.\n";
    return 0;
}
