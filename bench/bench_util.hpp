/**
 * @file
 * Shared plumbing for the figure/table benches.
 *
 * Every bench accepts `--full` to run at paper-scale instance counts
 * (50 instances per bar etc.); the default is a scaled-down sweep that
 * keeps the whole suite fast while preserving the reported trends.
 * `--csv` switches the output to comma-separated values.
 */

#ifndef QAOA_BENCH_BENCH_UTIL_HPP
#define QAOA_BENCH_BENCH_UTIL_HPP

#include <cstring>
#include <iostream>
#include <string>

#include "common/table.hpp"

namespace qaoa::bench {

/** Command-line configuration common to all figure benches. */
struct BenchConfig
{
    bool full = false; ///< Paper-scale instance counts.
    bool csv = false;  ///< CSV output instead of aligned tables.

    /** Instance count: @p small_count by default, @p paper_count with
     *  --full. */
    int
    instances(int small_count, int paper_count) const
    {
        return full ? paper_count : small_count;
    }
};

/** Parses --full / --csv; ignores unknown flags. */
inline BenchConfig
parseArgs(int argc, char **argv)
{
    BenchConfig config;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--full") == 0)
            config.full = true;
        else if (std::strcmp(argv[i], "--csv") == 0)
            config.csv = true;
    }
    return config;
}

/** Prints a table in the configured format with a section header. */
inline void
emit(const BenchConfig &config, const std::string &title, const Table &t)
{
    std::cout << "## " << title << "\n";
    if (config.csv)
        t.printCsv(std::cout);
    else
        t.print(std::cout);
    std::cout << "\n";
}

} // namespace qaoa::bench

#endif // QAOA_BENCH_BENCH_UTIL_HPP
