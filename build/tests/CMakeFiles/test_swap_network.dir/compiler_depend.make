# Empty compiler generated dependencies file for test_swap_network.
# This may be replaced when dependencies are built.
