file(REMOVE_RECURSE
  "CMakeFiles/test_swap_network.dir/test_swap_network.cpp.o"
  "CMakeFiles/test_swap_network.dir/test_swap_network.cpp.o.d"
  "test_swap_network"
  "test_swap_network.pdb"
  "test_swap_network[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_swap_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
