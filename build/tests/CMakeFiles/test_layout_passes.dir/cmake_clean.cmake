file(REMOVE_RECURSE
  "CMakeFiles/test_layout_passes.dir/test_layout_passes.cpp.o"
  "CMakeFiles/test_layout_passes.dir/test_layout_passes.cpp.o.d"
  "test_layout_passes"
  "test_layout_passes.pdb"
  "test_layout_passes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_layout_passes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
