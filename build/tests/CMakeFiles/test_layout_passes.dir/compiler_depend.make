# Empty compiler generated dependencies file for test_layout_passes.
# This may be replaced when dependencies are built.
