file(REMOVE_RECURSE
  "CMakeFiles/test_commutation.dir/test_commutation.cpp.o"
  "CMakeFiles/test_commutation.dir/test_commutation.cpp.o.d"
  "test_commutation"
  "test_commutation.pdb"
  "test_commutation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_commutation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
