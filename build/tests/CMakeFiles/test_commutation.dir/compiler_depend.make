# Empty compiler generated dependencies file for test_commutation.
# This may be replaced when dependencies are built.
