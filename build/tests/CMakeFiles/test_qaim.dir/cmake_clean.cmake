file(REMOVE_RECURSE
  "CMakeFiles/test_qaim.dir/test_qaim.cpp.o"
  "CMakeFiles/test_qaim.dir/test_qaim.cpp.o.d"
  "test_qaim"
  "test_qaim.pdb"
  "test_qaim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qaim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
