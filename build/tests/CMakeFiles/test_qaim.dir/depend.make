# Empty dependencies file for test_qaim.
# This may be replaced when dependencies are built.
