
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_iterative.cpp" "tests/CMakeFiles/test_iterative.dir/test_iterative.cpp.o" "gcc" "tests/CMakeFiles/test_iterative.dir/test_iterative.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qaoa_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qaoa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qaoa_transpiler.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qaoa_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qaoa_hardware.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qaoa_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qaoa_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qaoa_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qaoa_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qaoa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
