# Empty compiler generated dependencies file for test_reverse_traversal.
# This may be replaced when dependencies are built.
