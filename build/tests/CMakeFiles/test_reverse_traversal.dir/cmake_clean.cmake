file(REMOVE_RECURSE
  "CMakeFiles/test_reverse_traversal.dir/test_reverse_traversal.cpp.o"
  "CMakeFiles/test_reverse_traversal.dir/test_reverse_traversal.cpp.o.d"
  "test_reverse_traversal"
  "test_reverse_traversal.pdb"
  "test_reverse_traversal[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reverse_traversal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
