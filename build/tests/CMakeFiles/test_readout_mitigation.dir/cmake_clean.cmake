file(REMOVE_RECURSE
  "CMakeFiles/test_readout_mitigation.dir/test_readout_mitigation.cpp.o"
  "CMakeFiles/test_readout_mitigation.dir/test_readout_mitigation.cpp.o.d"
  "test_readout_mitigation"
  "test_readout_mitigation.pdb"
  "test_readout_mitigation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_readout_mitigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
