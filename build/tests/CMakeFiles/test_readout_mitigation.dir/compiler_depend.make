# Empty compiler generated dependencies file for test_readout_mitigation.
# This may be replaced when dependencies are built.
