# Empty dependencies file for test_qasm_parser.
# This may be replaced when dependencies are built.
