file(REMOVE_RECURSE
  "CMakeFiles/test_astar_router.dir/test_astar_router.cpp.o"
  "CMakeFiles/test_astar_router.dir/test_astar_router.cpp.o.d"
  "test_astar_router"
  "test_astar_router.pdb"
  "test_astar_router[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_astar_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
