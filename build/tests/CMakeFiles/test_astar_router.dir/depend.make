# Empty dependencies file for test_astar_router.
# This may be replaced when dependencies are built.
