# Empty compiler generated dependencies file for test_ising.
# This may be replaced when dependencies are built.
