file(REMOVE_RECURSE
  "CMakeFiles/test_e2e_distribution.dir/test_e2e_distribution.cpp.o"
  "CMakeFiles/test_e2e_distribution.dir/test_e2e_distribution.cpp.o.d"
  "test_e2e_distribution"
  "test_e2e_distribution.pdb"
  "test_e2e_distribution[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_e2e_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
