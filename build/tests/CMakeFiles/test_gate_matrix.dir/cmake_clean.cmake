file(REMOVE_RECURSE
  "CMakeFiles/test_gate_matrix.dir/test_gate_matrix.cpp.o"
  "CMakeFiles/test_gate_matrix.dir/test_gate_matrix.cpp.o.d"
  "test_gate_matrix"
  "test_gate_matrix.pdb"
  "test_gate_matrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gate_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
