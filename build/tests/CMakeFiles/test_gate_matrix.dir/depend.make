# Empty dependencies file for test_gate_matrix.
# This may be replaced when dependencies are built.
