file(REMOVE_RECURSE
  "CMakeFiles/test_edge_coloring.dir/test_edge_coloring.cpp.o"
  "CMakeFiles/test_edge_coloring.dir/test_edge_coloring.cpp.o.d"
  "test_edge_coloring"
  "test_edge_coloring.pdb"
  "test_edge_coloring[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_edge_coloring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
