# Empty dependencies file for test_success.
# This may be replaced when dependencies are built.
