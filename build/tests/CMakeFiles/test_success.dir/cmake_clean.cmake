file(REMOVE_RECURSE
  "CMakeFiles/test_success.dir/test_success.cpp.o"
  "CMakeFiles/test_success.dir/test_success.cpp.o.d"
  "test_success"
  "test_success.pdb"
  "test_success[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_success.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
