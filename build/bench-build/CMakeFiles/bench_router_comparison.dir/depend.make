# Empty dependencies file for bench_router_comparison.
# This may be replaced when dependencies are built.
