file(REMOVE_RECURSE
  "../bench/bench_router_comparison"
  "../bench/bench_router_comparison.pdb"
  "CMakeFiles/bench_router_comparison.dir/bench_router_comparison.cpp.o"
  "CMakeFiles/bench_router_comparison.dir/bench_router_comparison.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_router_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
