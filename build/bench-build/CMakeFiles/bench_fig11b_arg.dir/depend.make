# Empty dependencies file for bench_fig11b_arg.
# This may be replaced when dependencies are built.
