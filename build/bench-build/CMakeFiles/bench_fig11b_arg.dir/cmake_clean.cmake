file(REMOVE_RECURSE
  "../bench/bench_fig11b_arg"
  "../bench/bench_fig11b_arg.pdb"
  "CMakeFiles/bench_fig11b_arg.dir/bench_fig11b_arg.cpp.o"
  "CMakeFiles/bench_fig11b_arg.dir/bench_fig11b_arg.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11b_arg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
