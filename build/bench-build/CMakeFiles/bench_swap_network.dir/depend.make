# Empty dependencies file for bench_swap_network.
# This may be replaced when dependencies are built.
