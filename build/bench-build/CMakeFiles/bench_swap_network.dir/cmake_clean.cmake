file(REMOVE_RECURSE
  "../bench/bench_swap_network"
  "../bench/bench_swap_network.pdb"
  "CMakeFiles/bench_swap_network.dir/bench_swap_network.cpp.o"
  "CMakeFiles/bench_swap_network.dir/bench_swap_network.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_swap_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
