# Empty dependencies file for bench_fig12_packing.
# This may be replaced when dependencies are built.
