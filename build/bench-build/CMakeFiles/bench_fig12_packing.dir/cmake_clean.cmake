file(REMOVE_RECURSE
  "../bench/bench_fig12_packing"
  "../bench/bench_fig12_packing.pdb"
  "CMakeFiles/bench_fig12_packing.dir/bench_fig12_packing.cpp.o"
  "CMakeFiles/bench_fig12_packing.dir/bench_fig12_packing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_packing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
