# Empty compiler generated dependencies file for bench_fig8_qaim_size.
# This may be replaced when dependencies are built.
