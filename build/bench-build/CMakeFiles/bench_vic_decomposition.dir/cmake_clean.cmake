file(REMOVE_RECURSE
  "../bench/bench_vic_decomposition"
  "../bench/bench_vic_decomposition.pdb"
  "CMakeFiles/bench_vic_decomposition.dir/bench_vic_decomposition.cpp.o"
  "CMakeFiles/bench_vic_decomposition.dir/bench_vic_decomposition.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vic_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
