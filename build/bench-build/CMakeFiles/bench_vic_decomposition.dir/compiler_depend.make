# Empty compiler generated dependencies file for bench_vic_decomposition.
# This may be replaced when dependencies are built.
