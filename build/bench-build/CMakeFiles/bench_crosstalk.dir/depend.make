# Empty dependencies file for bench_crosstalk.
# This may be replaced when dependencies are built.
