file(REMOVE_RECURSE
  "../bench/bench_crosstalk"
  "../bench/bench_crosstalk.pdb"
  "CMakeFiles/bench_crosstalk.dir/bench_crosstalk.cpp.o"
  "CMakeFiles/bench_crosstalk.dir/bench_crosstalk.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_crosstalk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
