file(REMOVE_RECURSE
  "../bench/bench_fig11a_summary"
  "../bench/bench_fig11a_summary.pdb"
  "CMakeFiles/bench_fig11a_summary.dir/bench_fig11a_summary.cpp.o"
  "CMakeFiles/bench_fig11a_summary.dir/bench_fig11a_summary.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11a_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
