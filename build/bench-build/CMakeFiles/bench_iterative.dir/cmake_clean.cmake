file(REMOVE_RECURSE
  "../bench/bench_iterative"
  "../bench/bench_iterative.pdb"
  "CMakeFiles/bench_iterative.dir/bench_iterative.cpp.o"
  "CMakeFiles/bench_iterative.dir/bench_iterative.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_iterative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
