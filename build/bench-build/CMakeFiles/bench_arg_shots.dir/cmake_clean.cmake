file(REMOVE_RECURSE
  "../bench/bench_arg_shots"
  "../bench/bench_arg_shots.pdb"
  "CMakeFiles/bench_arg_shots.dir/bench_arg_shots.cpp.o"
  "CMakeFiles/bench_arg_shots.dir/bench_arg_shots.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_arg_shots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
