# Empty dependencies file for bench_arg_shots.
# This may be replaced when dependencies are built.
