# Empty dependencies file for bench_fig7_qaim_connectivity.
# This may be replaced when dependencies are built.
