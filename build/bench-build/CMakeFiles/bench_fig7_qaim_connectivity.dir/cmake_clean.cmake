file(REMOVE_RECURSE
  "../bench/bench_fig7_qaim_connectivity"
  "../bench/bench_fig7_qaim_connectivity.pdb"
  "CMakeFiles/bench_fig7_qaim_connectivity.dir/bench_fig7_qaim_connectivity.cpp.o"
  "CMakeFiles/bench_fig7_qaim_connectivity.dir/bench_fig7_qaim_connectivity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_qaim_connectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
