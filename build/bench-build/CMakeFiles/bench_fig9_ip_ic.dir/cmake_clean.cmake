file(REMOVE_RECURSE
  "../bench/bench_fig9_ip_ic"
  "../bench/bench_fig9_ip_ic.pdb"
  "CMakeFiles/bench_fig9_ip_ic.dir/bench_fig9_ip_ic.cpp.o"
  "CMakeFiles/bench_fig9_ip_ic.dir/bench_fig9_ip_ic.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_ip_ic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
