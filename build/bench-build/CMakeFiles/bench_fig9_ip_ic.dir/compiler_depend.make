# Empty compiler generated dependencies file for bench_fig9_ip_ic.
# This may be replaced when dependencies are built.
