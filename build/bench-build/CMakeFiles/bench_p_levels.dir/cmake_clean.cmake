file(REMOVE_RECURSE
  "../bench/bench_p_levels"
  "../bench/bench_p_levels.pdb"
  "CMakeFiles/bench_p_levels.dir/bench_p_levels.cpp.o"
  "CMakeFiles/bench_p_levels.dir/bench_p_levels.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_p_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
