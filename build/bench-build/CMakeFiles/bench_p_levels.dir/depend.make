# Empty dependencies file for bench_p_levels.
# This may be replaced when dependencies are built.
