# Empty compiler generated dependencies file for bench_thermal_arg.
# This may be replaced when dependencies are built.
