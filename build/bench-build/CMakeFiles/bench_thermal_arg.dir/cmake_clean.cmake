file(REMOVE_RECURSE
  "../bench/bench_thermal_arg"
  "../bench/bench_thermal_arg.pdb"
  "CMakeFiles/bench_thermal_arg.dir/bench_thermal_arg.cpp.o"
  "CMakeFiles/bench_thermal_arg.dir/bench_thermal_arg.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thermal_arg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
