file(REMOVE_RECURSE
  "../bench/bench_ablation_router"
  "../bench/bench_ablation_router.pdb"
  "CMakeFiles/bench_ablation_router.dir/bench_ablation_router.cpp.o"
  "CMakeFiles/bench_ablation_router.dir/bench_ablation_router.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
