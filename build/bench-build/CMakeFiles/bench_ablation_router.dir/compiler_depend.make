# Empty compiler generated dependencies file for bench_ablation_router.
# This may be replaced when dependencies are built.
