# Empty dependencies file for bench_disc_planner.
# This may be replaced when dependencies are built.
