file(REMOVE_RECURSE
  "../bench/bench_disc_planner"
  "../bench/bench_disc_planner.pdb"
  "CMakeFiles/bench_disc_planner.dir/bench_disc_planner.cpp.o"
  "CMakeFiles/bench_disc_planner.dir/bench_disc_planner.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_disc_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
