file(REMOVE_RECURSE
  "../bench/bench_peephole"
  "../bench/bench_peephole.pdb"
  "CMakeFiles/bench_peephole.dir/bench_peephole.cpp.o"
  "CMakeFiles/bench_peephole.dir/bench_peephole.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_peephole.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
