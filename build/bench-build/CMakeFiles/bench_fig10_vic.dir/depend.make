# Empty dependencies file for bench_fig10_vic.
# This may be replaced when dependencies are built.
