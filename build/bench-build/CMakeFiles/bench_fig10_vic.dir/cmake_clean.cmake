file(REMOVE_RECURSE
  "../bench/bench_fig10_vic"
  "../bench/bench_fig10_vic.pdb"
  "CMakeFiles/bench_fig10_vic.dir/bench_fig10_vic.cpp.o"
  "CMakeFiles/bench_fig10_vic.dir/bench_fig10_vic.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_vic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
