file(REMOVE_RECURSE
  "libqaoa_opt.a"
)
