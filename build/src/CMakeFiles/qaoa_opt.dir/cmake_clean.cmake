file(REMOVE_RECURSE
  "CMakeFiles/qaoa_opt.dir/opt/grid_search.cpp.o"
  "CMakeFiles/qaoa_opt.dir/opt/grid_search.cpp.o.d"
  "CMakeFiles/qaoa_opt.dir/opt/nelder_mead.cpp.o"
  "CMakeFiles/qaoa_opt.dir/opt/nelder_mead.cpp.o.d"
  "libqaoa_opt.a"
  "libqaoa_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qaoa_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
