
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/grid_search.cpp" "src/CMakeFiles/qaoa_opt.dir/opt/grid_search.cpp.o" "gcc" "src/CMakeFiles/qaoa_opt.dir/opt/grid_search.cpp.o.d"
  "/root/repo/src/opt/nelder_mead.cpp" "src/CMakeFiles/qaoa_opt.dir/opt/nelder_mead.cpp.o" "gcc" "src/CMakeFiles/qaoa_opt.dir/opt/nelder_mead.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qaoa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
