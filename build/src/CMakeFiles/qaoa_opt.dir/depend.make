# Empty dependencies file for qaoa_opt.
# This may be replaced when dependencies are built.
