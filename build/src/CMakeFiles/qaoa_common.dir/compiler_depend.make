# Empty compiler generated dependencies file for qaoa_common.
# This may be replaced when dependencies are built.
