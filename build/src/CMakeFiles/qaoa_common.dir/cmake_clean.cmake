file(REMOVE_RECURSE
  "CMakeFiles/qaoa_common.dir/common/rng.cpp.o"
  "CMakeFiles/qaoa_common.dir/common/rng.cpp.o.d"
  "CMakeFiles/qaoa_common.dir/common/stats.cpp.o"
  "CMakeFiles/qaoa_common.dir/common/stats.cpp.o.d"
  "CMakeFiles/qaoa_common.dir/common/table.cpp.o"
  "CMakeFiles/qaoa_common.dir/common/table.cpp.o.d"
  "libqaoa_common.a"
  "libqaoa_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qaoa_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
