file(REMOVE_RECURSE
  "libqaoa_common.a"
)
