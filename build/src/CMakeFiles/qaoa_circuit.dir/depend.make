# Empty dependencies file for qaoa_circuit.
# This may be replaced when dependencies are built.
