
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/circuit.cpp" "src/CMakeFiles/qaoa_circuit.dir/circuit/circuit.cpp.o" "gcc" "src/CMakeFiles/qaoa_circuit.dir/circuit/circuit.cpp.o.d"
  "/root/repo/src/circuit/decompose.cpp" "src/CMakeFiles/qaoa_circuit.dir/circuit/decompose.cpp.o" "gcc" "src/CMakeFiles/qaoa_circuit.dir/circuit/decompose.cpp.o.d"
  "/root/repo/src/circuit/draw.cpp" "src/CMakeFiles/qaoa_circuit.dir/circuit/draw.cpp.o" "gcc" "src/CMakeFiles/qaoa_circuit.dir/circuit/draw.cpp.o.d"
  "/root/repo/src/circuit/gate.cpp" "src/CMakeFiles/qaoa_circuit.dir/circuit/gate.cpp.o" "gcc" "src/CMakeFiles/qaoa_circuit.dir/circuit/gate.cpp.o.d"
  "/root/repo/src/circuit/layers.cpp" "src/CMakeFiles/qaoa_circuit.dir/circuit/layers.cpp.o" "gcc" "src/CMakeFiles/qaoa_circuit.dir/circuit/layers.cpp.o.d"
  "/root/repo/src/circuit/qasm.cpp" "src/CMakeFiles/qaoa_circuit.dir/circuit/qasm.cpp.o" "gcc" "src/CMakeFiles/qaoa_circuit.dir/circuit/qasm.cpp.o.d"
  "/root/repo/src/circuit/qasm_parser.cpp" "src/CMakeFiles/qaoa_circuit.dir/circuit/qasm_parser.cpp.o" "gcc" "src/CMakeFiles/qaoa_circuit.dir/circuit/qasm_parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qaoa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
