file(REMOVE_RECURSE
  "CMakeFiles/qaoa_circuit.dir/circuit/circuit.cpp.o"
  "CMakeFiles/qaoa_circuit.dir/circuit/circuit.cpp.o.d"
  "CMakeFiles/qaoa_circuit.dir/circuit/decompose.cpp.o"
  "CMakeFiles/qaoa_circuit.dir/circuit/decompose.cpp.o.d"
  "CMakeFiles/qaoa_circuit.dir/circuit/draw.cpp.o"
  "CMakeFiles/qaoa_circuit.dir/circuit/draw.cpp.o.d"
  "CMakeFiles/qaoa_circuit.dir/circuit/gate.cpp.o"
  "CMakeFiles/qaoa_circuit.dir/circuit/gate.cpp.o.d"
  "CMakeFiles/qaoa_circuit.dir/circuit/layers.cpp.o"
  "CMakeFiles/qaoa_circuit.dir/circuit/layers.cpp.o.d"
  "CMakeFiles/qaoa_circuit.dir/circuit/qasm.cpp.o"
  "CMakeFiles/qaoa_circuit.dir/circuit/qasm.cpp.o.d"
  "CMakeFiles/qaoa_circuit.dir/circuit/qasm_parser.cpp.o"
  "CMakeFiles/qaoa_circuit.dir/circuit/qasm_parser.cpp.o.d"
  "libqaoa_circuit.a"
  "libqaoa_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qaoa_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
