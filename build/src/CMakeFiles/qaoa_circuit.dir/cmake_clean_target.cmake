file(REMOVE_RECURSE
  "libqaoa_circuit.a"
)
