# Empty dependencies file for qaoa_timing.
# This may be replaced when dependencies are built.
