file(REMOVE_RECURSE
  "CMakeFiles/qaoa_timing.dir/metrics/timing.cpp.o"
  "CMakeFiles/qaoa_timing.dir/metrics/timing.cpp.o.d"
  "libqaoa_timing.a"
  "libqaoa_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qaoa_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
