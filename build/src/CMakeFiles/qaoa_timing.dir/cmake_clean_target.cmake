file(REMOVE_RECURSE
  "libqaoa_timing.a"
)
