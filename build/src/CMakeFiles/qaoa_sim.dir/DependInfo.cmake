
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/commutation.cpp" "src/CMakeFiles/qaoa_sim.dir/circuit/commutation.cpp.o" "gcc" "src/CMakeFiles/qaoa_sim.dir/circuit/commutation.cpp.o.d"
  "/root/repo/src/sim/gate_matrix.cpp" "src/CMakeFiles/qaoa_sim.dir/sim/gate_matrix.cpp.o" "gcc" "src/CMakeFiles/qaoa_sim.dir/sim/gate_matrix.cpp.o.d"
  "/root/repo/src/sim/noise.cpp" "src/CMakeFiles/qaoa_sim.dir/sim/noise.cpp.o" "gcc" "src/CMakeFiles/qaoa_sim.dir/sim/noise.cpp.o.d"
  "/root/repo/src/sim/readout_mitigation.cpp" "src/CMakeFiles/qaoa_sim.dir/sim/readout_mitigation.cpp.o" "gcc" "src/CMakeFiles/qaoa_sim.dir/sim/readout_mitigation.cpp.o.d"
  "/root/repo/src/sim/statevector.cpp" "src/CMakeFiles/qaoa_sim.dir/sim/statevector.cpp.o" "gcc" "src/CMakeFiles/qaoa_sim.dir/sim/statevector.cpp.o.d"
  "/root/repo/src/sim/success.cpp" "src/CMakeFiles/qaoa_sim.dir/sim/success.cpp.o" "gcc" "src/CMakeFiles/qaoa_sim.dir/sim/success.cpp.o.d"
  "/root/repo/src/sim/thermal.cpp" "src/CMakeFiles/qaoa_sim.dir/sim/thermal.cpp.o" "gcc" "src/CMakeFiles/qaoa_sim.dir/sim/thermal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qaoa_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qaoa_hardware.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qaoa_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qaoa_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qaoa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
