file(REMOVE_RECURSE
  "libqaoa_sim.a"
)
