file(REMOVE_RECURSE
  "CMakeFiles/qaoa_sim.dir/circuit/commutation.cpp.o"
  "CMakeFiles/qaoa_sim.dir/circuit/commutation.cpp.o.d"
  "CMakeFiles/qaoa_sim.dir/sim/gate_matrix.cpp.o"
  "CMakeFiles/qaoa_sim.dir/sim/gate_matrix.cpp.o.d"
  "CMakeFiles/qaoa_sim.dir/sim/noise.cpp.o"
  "CMakeFiles/qaoa_sim.dir/sim/noise.cpp.o.d"
  "CMakeFiles/qaoa_sim.dir/sim/readout_mitigation.cpp.o"
  "CMakeFiles/qaoa_sim.dir/sim/readout_mitigation.cpp.o.d"
  "CMakeFiles/qaoa_sim.dir/sim/statevector.cpp.o"
  "CMakeFiles/qaoa_sim.dir/sim/statevector.cpp.o.d"
  "CMakeFiles/qaoa_sim.dir/sim/success.cpp.o"
  "CMakeFiles/qaoa_sim.dir/sim/success.cpp.o.d"
  "CMakeFiles/qaoa_sim.dir/sim/thermal.cpp.o"
  "CMakeFiles/qaoa_sim.dir/sim/thermal.cpp.o.d"
  "libqaoa_sim.a"
  "libqaoa_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qaoa_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
