# Empty compiler generated dependencies file for qaoa_sim.
# This may be replaced when dependencies are built.
