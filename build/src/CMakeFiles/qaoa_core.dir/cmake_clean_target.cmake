file(REMOVE_RECURSE
  "libqaoa_core.a"
)
