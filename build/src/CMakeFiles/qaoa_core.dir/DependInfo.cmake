
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qaoa/api.cpp" "src/CMakeFiles/qaoa_core.dir/qaoa/api.cpp.o" "gcc" "src/CMakeFiles/qaoa_core.dir/qaoa/api.cpp.o.d"
  "/root/repo/src/qaoa/edge_coloring.cpp" "src/CMakeFiles/qaoa_core.dir/qaoa/edge_coloring.cpp.o" "gcc" "src/CMakeFiles/qaoa_core.dir/qaoa/edge_coloring.cpp.o.d"
  "/root/repo/src/qaoa/incremental.cpp" "src/CMakeFiles/qaoa_core.dir/qaoa/incremental.cpp.o" "gcc" "src/CMakeFiles/qaoa_core.dir/qaoa/incremental.cpp.o.d"
  "/root/repo/src/qaoa/ip.cpp" "src/CMakeFiles/qaoa_core.dir/qaoa/ip.cpp.o" "gcc" "src/CMakeFiles/qaoa_core.dir/qaoa/ip.cpp.o.d"
  "/root/repo/src/qaoa/ising.cpp" "src/CMakeFiles/qaoa_core.dir/qaoa/ising.cpp.o" "gcc" "src/CMakeFiles/qaoa_core.dir/qaoa/ising.cpp.o.d"
  "/root/repo/src/qaoa/iterative.cpp" "src/CMakeFiles/qaoa_core.dir/qaoa/iterative.cpp.o" "gcc" "src/CMakeFiles/qaoa_core.dir/qaoa/iterative.cpp.o.d"
  "/root/repo/src/qaoa/presets.cpp" "src/CMakeFiles/qaoa_core.dir/qaoa/presets.cpp.o" "gcc" "src/CMakeFiles/qaoa_core.dir/qaoa/presets.cpp.o.d"
  "/root/repo/src/qaoa/problem.cpp" "src/CMakeFiles/qaoa_core.dir/qaoa/problem.cpp.o" "gcc" "src/CMakeFiles/qaoa_core.dir/qaoa/problem.cpp.o.d"
  "/root/repo/src/qaoa/profile_stats.cpp" "src/CMakeFiles/qaoa_core.dir/qaoa/profile_stats.cpp.o" "gcc" "src/CMakeFiles/qaoa_core.dir/qaoa/profile_stats.cpp.o.d"
  "/root/repo/src/qaoa/qaim.cpp" "src/CMakeFiles/qaoa_core.dir/qaoa/qaim.cpp.o" "gcc" "src/CMakeFiles/qaoa_core.dir/qaoa/qaim.cpp.o.d"
  "/root/repo/src/qaoa/swap_network.cpp" "src/CMakeFiles/qaoa_core.dir/qaoa/swap_network.cpp.o" "gcc" "src/CMakeFiles/qaoa_core.dir/qaoa/swap_network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qaoa_transpiler.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qaoa_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qaoa_hardware.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qaoa_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qaoa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
