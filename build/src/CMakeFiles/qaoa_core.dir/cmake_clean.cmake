file(REMOVE_RECURSE
  "CMakeFiles/qaoa_core.dir/qaoa/api.cpp.o"
  "CMakeFiles/qaoa_core.dir/qaoa/api.cpp.o.d"
  "CMakeFiles/qaoa_core.dir/qaoa/edge_coloring.cpp.o"
  "CMakeFiles/qaoa_core.dir/qaoa/edge_coloring.cpp.o.d"
  "CMakeFiles/qaoa_core.dir/qaoa/incremental.cpp.o"
  "CMakeFiles/qaoa_core.dir/qaoa/incremental.cpp.o.d"
  "CMakeFiles/qaoa_core.dir/qaoa/ip.cpp.o"
  "CMakeFiles/qaoa_core.dir/qaoa/ip.cpp.o.d"
  "CMakeFiles/qaoa_core.dir/qaoa/ising.cpp.o"
  "CMakeFiles/qaoa_core.dir/qaoa/ising.cpp.o.d"
  "CMakeFiles/qaoa_core.dir/qaoa/iterative.cpp.o"
  "CMakeFiles/qaoa_core.dir/qaoa/iterative.cpp.o.d"
  "CMakeFiles/qaoa_core.dir/qaoa/presets.cpp.o"
  "CMakeFiles/qaoa_core.dir/qaoa/presets.cpp.o.d"
  "CMakeFiles/qaoa_core.dir/qaoa/problem.cpp.o"
  "CMakeFiles/qaoa_core.dir/qaoa/problem.cpp.o.d"
  "CMakeFiles/qaoa_core.dir/qaoa/profile_stats.cpp.o"
  "CMakeFiles/qaoa_core.dir/qaoa/profile_stats.cpp.o.d"
  "CMakeFiles/qaoa_core.dir/qaoa/qaim.cpp.o"
  "CMakeFiles/qaoa_core.dir/qaoa/qaim.cpp.o.d"
  "CMakeFiles/qaoa_core.dir/qaoa/swap_network.cpp.o"
  "CMakeFiles/qaoa_core.dir/qaoa/swap_network.cpp.o.d"
  "libqaoa_core.a"
  "libqaoa_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qaoa_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
