# Empty compiler generated dependencies file for qaoa_core.
# This may be replaced when dependencies are built.
