# Empty dependencies file for qaoa_graph.
# This may be replaced when dependencies are built.
