file(REMOVE_RECURSE
  "CMakeFiles/qaoa_graph.dir/graph/generators.cpp.o"
  "CMakeFiles/qaoa_graph.dir/graph/generators.cpp.o.d"
  "CMakeFiles/qaoa_graph.dir/graph/graph.cpp.o"
  "CMakeFiles/qaoa_graph.dir/graph/graph.cpp.o.d"
  "CMakeFiles/qaoa_graph.dir/graph/io.cpp.o"
  "CMakeFiles/qaoa_graph.dir/graph/io.cpp.o.d"
  "CMakeFiles/qaoa_graph.dir/graph/maxcut.cpp.o"
  "CMakeFiles/qaoa_graph.dir/graph/maxcut.cpp.o.d"
  "CMakeFiles/qaoa_graph.dir/graph/shortest_paths.cpp.o"
  "CMakeFiles/qaoa_graph.dir/graph/shortest_paths.cpp.o.d"
  "libqaoa_graph.a"
  "libqaoa_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qaoa_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
