file(REMOVE_RECURSE
  "libqaoa_graph.a"
)
