# Empty compiler generated dependencies file for qaoa_transpiler.
# This may be replaced when dependencies are built.
