file(REMOVE_RECURSE
  "CMakeFiles/qaoa_transpiler.dir/transpiler/astar_router.cpp.o"
  "CMakeFiles/qaoa_transpiler.dir/transpiler/astar_router.cpp.o.d"
  "CMakeFiles/qaoa_transpiler.dir/transpiler/compiler.cpp.o"
  "CMakeFiles/qaoa_transpiler.dir/transpiler/compiler.cpp.o.d"
  "CMakeFiles/qaoa_transpiler.dir/transpiler/crosstalk.cpp.o"
  "CMakeFiles/qaoa_transpiler.dir/transpiler/crosstalk.cpp.o.d"
  "CMakeFiles/qaoa_transpiler.dir/transpiler/layout.cpp.o"
  "CMakeFiles/qaoa_transpiler.dir/transpiler/layout.cpp.o.d"
  "CMakeFiles/qaoa_transpiler.dir/transpiler/layout_passes.cpp.o"
  "CMakeFiles/qaoa_transpiler.dir/transpiler/layout_passes.cpp.o.d"
  "CMakeFiles/qaoa_transpiler.dir/transpiler/peephole.cpp.o"
  "CMakeFiles/qaoa_transpiler.dir/transpiler/peephole.cpp.o.d"
  "CMakeFiles/qaoa_transpiler.dir/transpiler/reverse_traversal.cpp.o"
  "CMakeFiles/qaoa_transpiler.dir/transpiler/reverse_traversal.cpp.o.d"
  "CMakeFiles/qaoa_transpiler.dir/transpiler/router.cpp.o"
  "CMakeFiles/qaoa_transpiler.dir/transpiler/router.cpp.o.d"
  "libqaoa_transpiler.a"
  "libqaoa_transpiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qaoa_transpiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
