file(REMOVE_RECURSE
  "libqaoa_transpiler.a"
)
