
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transpiler/astar_router.cpp" "src/CMakeFiles/qaoa_transpiler.dir/transpiler/astar_router.cpp.o" "gcc" "src/CMakeFiles/qaoa_transpiler.dir/transpiler/astar_router.cpp.o.d"
  "/root/repo/src/transpiler/compiler.cpp" "src/CMakeFiles/qaoa_transpiler.dir/transpiler/compiler.cpp.o" "gcc" "src/CMakeFiles/qaoa_transpiler.dir/transpiler/compiler.cpp.o.d"
  "/root/repo/src/transpiler/crosstalk.cpp" "src/CMakeFiles/qaoa_transpiler.dir/transpiler/crosstalk.cpp.o" "gcc" "src/CMakeFiles/qaoa_transpiler.dir/transpiler/crosstalk.cpp.o.d"
  "/root/repo/src/transpiler/layout.cpp" "src/CMakeFiles/qaoa_transpiler.dir/transpiler/layout.cpp.o" "gcc" "src/CMakeFiles/qaoa_transpiler.dir/transpiler/layout.cpp.o.d"
  "/root/repo/src/transpiler/layout_passes.cpp" "src/CMakeFiles/qaoa_transpiler.dir/transpiler/layout_passes.cpp.o" "gcc" "src/CMakeFiles/qaoa_transpiler.dir/transpiler/layout_passes.cpp.o.d"
  "/root/repo/src/transpiler/peephole.cpp" "src/CMakeFiles/qaoa_transpiler.dir/transpiler/peephole.cpp.o" "gcc" "src/CMakeFiles/qaoa_transpiler.dir/transpiler/peephole.cpp.o.d"
  "/root/repo/src/transpiler/reverse_traversal.cpp" "src/CMakeFiles/qaoa_transpiler.dir/transpiler/reverse_traversal.cpp.o" "gcc" "src/CMakeFiles/qaoa_transpiler.dir/transpiler/reverse_traversal.cpp.o.d"
  "/root/repo/src/transpiler/router.cpp" "src/CMakeFiles/qaoa_transpiler.dir/transpiler/router.cpp.o" "gcc" "src/CMakeFiles/qaoa_transpiler.dir/transpiler/router.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qaoa_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qaoa_hardware.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qaoa_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qaoa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
