file(REMOVE_RECURSE
  "libqaoa_hardware.a"
)
