file(REMOVE_RECURSE
  "CMakeFiles/qaoa_hardware.dir/hardware/calibration.cpp.o"
  "CMakeFiles/qaoa_hardware.dir/hardware/calibration.cpp.o.d"
  "CMakeFiles/qaoa_hardware.dir/hardware/coupling_map.cpp.o"
  "CMakeFiles/qaoa_hardware.dir/hardware/coupling_map.cpp.o.d"
  "CMakeFiles/qaoa_hardware.dir/hardware/devices.cpp.o"
  "CMakeFiles/qaoa_hardware.dir/hardware/devices.cpp.o.d"
  "CMakeFiles/qaoa_hardware.dir/hardware/profile.cpp.o"
  "CMakeFiles/qaoa_hardware.dir/hardware/profile.cpp.o.d"
  "libqaoa_hardware.a"
  "libqaoa_hardware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qaoa_hardware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
