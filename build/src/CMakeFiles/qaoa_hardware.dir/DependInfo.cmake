
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hardware/calibration.cpp" "src/CMakeFiles/qaoa_hardware.dir/hardware/calibration.cpp.o" "gcc" "src/CMakeFiles/qaoa_hardware.dir/hardware/calibration.cpp.o.d"
  "/root/repo/src/hardware/coupling_map.cpp" "src/CMakeFiles/qaoa_hardware.dir/hardware/coupling_map.cpp.o" "gcc" "src/CMakeFiles/qaoa_hardware.dir/hardware/coupling_map.cpp.o.d"
  "/root/repo/src/hardware/devices.cpp" "src/CMakeFiles/qaoa_hardware.dir/hardware/devices.cpp.o" "gcc" "src/CMakeFiles/qaoa_hardware.dir/hardware/devices.cpp.o.d"
  "/root/repo/src/hardware/profile.cpp" "src/CMakeFiles/qaoa_hardware.dir/hardware/profile.cpp.o" "gcc" "src/CMakeFiles/qaoa_hardware.dir/hardware/profile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qaoa_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qaoa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
