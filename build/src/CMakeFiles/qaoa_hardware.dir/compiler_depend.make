# Empty compiler generated dependencies file for qaoa_hardware.
# This may be replaced when dependencies are built.
