# Empty dependencies file for qaoa_compile.
# This may be replaced when dependencies are built.
