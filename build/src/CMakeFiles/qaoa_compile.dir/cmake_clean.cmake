file(REMOVE_RECURSE
  "CMakeFiles/qaoa_compile.dir/__/tools/qaoa_compile.cpp.o"
  "CMakeFiles/qaoa_compile.dir/__/tools/qaoa_compile.cpp.o.d"
  "qaoa_compile"
  "qaoa_compile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qaoa_compile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
