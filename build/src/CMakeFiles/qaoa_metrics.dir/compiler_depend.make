# Empty compiler generated dependencies file for qaoa_metrics.
# This may be replaced when dependencies are built.
