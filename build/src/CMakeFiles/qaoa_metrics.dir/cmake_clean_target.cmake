file(REMOVE_RECURSE
  "libqaoa_metrics.a"
)
