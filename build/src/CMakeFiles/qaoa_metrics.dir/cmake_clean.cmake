file(REMOVE_RECURSE
  "CMakeFiles/qaoa_metrics.dir/metrics/approx_ratio.cpp.o"
  "CMakeFiles/qaoa_metrics.dir/metrics/approx_ratio.cpp.o.d"
  "CMakeFiles/qaoa_metrics.dir/metrics/distributions.cpp.o"
  "CMakeFiles/qaoa_metrics.dir/metrics/distributions.cpp.o.d"
  "CMakeFiles/qaoa_metrics.dir/metrics/harness.cpp.o"
  "CMakeFiles/qaoa_metrics.dir/metrics/harness.cpp.o.d"
  "libqaoa_metrics.a"
  "libqaoa_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qaoa_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
