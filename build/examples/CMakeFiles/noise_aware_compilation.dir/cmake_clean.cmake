file(REMOVE_RECURSE
  "CMakeFiles/noise_aware_compilation.dir/noise_aware_compilation.cpp.o"
  "CMakeFiles/noise_aware_compilation.dir/noise_aware_compilation.cpp.o.d"
  "noise_aware_compilation"
  "noise_aware_compilation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noise_aware_compilation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
