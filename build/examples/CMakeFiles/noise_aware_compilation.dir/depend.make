# Empty dependencies file for noise_aware_compilation.
# This may be replaced when dependencies are built.
