file(REMOVE_RECURSE
  "CMakeFiles/ising_problems.dir/ising_problems.cpp.o"
  "CMakeFiles/ising_problems.dir/ising_problems.cpp.o.d"
  "ising_problems"
  "ising_problems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ising_problems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
