# Empty compiler generated dependencies file for ising_problems.
# This may be replaced when dependencies are built.
