file(REMOVE_RECURSE
  "CMakeFiles/maxcut_optimization.dir/maxcut_optimization.cpp.o"
  "CMakeFiles/maxcut_optimization.dir/maxcut_optimization.cpp.o.d"
  "maxcut_optimization"
  "maxcut_optimization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maxcut_optimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
