# Empty compiler generated dependencies file for maxcut_optimization.
# This may be replaced when dependencies are built.
