/**
 * @file
 * qaoa_lint — static circuit-quality analyzer front end.
 *
 * Usage:
 *   qaoa_lint (--graph FILE | --workload fig11)
 *             [--method naive|greedyv|qaim|ip|ic|vic|all]
 *             [--device tokyo|melbourne|poughkeepsie|heavyhex|
 *              grid6x6|linearN|ringN]
 *             [--calib default|melbourne|random] [--calib-seed S]
 *             [--instances N] [--gamma G] [--beta B] [--levels P]
 *             [--packing N] [--seed S]
 *             [--format text|csv|json]
 *             [--budget FILE] [--fail-on info|warning|error]
 *             [--check-ordering] [--crosstalk-pairs LIST]
 *             [--fault-edge-rate R] [--fault-qubit-rate R]
 *             [--fault-seed S] [--dead-qubits a,b,c]
 *             [--disable-edges a-b,c-d]
 *
 * Compiles the problem (or the built-in Fig. 11 workload pool) with the
 * selected method(s) and runs the analysis/ passes over each physical
 * circuit: depth/gate metrics, timing makespan, decoherence-exposure
 * factor, ESP with attribution, and the QL101-QL115 lint rules.  With
 * --budget the scalar metrics are additionally checked against the bars
 * of a JSON budget file (QL115 errors on misses); --check-ordering
 * verifies the paper's Fig. 11 ESP ranking VIC >= IC >= IP >= NAIVE on
 * the workload geomeans.
 *
 * Exit codes: 0 clean, 1 findings at/above --fail-on (or a violated
 * budget/ordering), 2 usage error, 3 compile failure.
 */

#include <algorithm>
#include <cmath>
#include <cstring>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/quality.hpp"
#include "common/error.hpp"
#include "common/table.hpp"
#include "graph/io.hpp"
#include "hardware/devices.hpp"
#include "hardware/faults.hpp"
#include "metrics/harness.hpp"
#include "qaoa/api.hpp"

namespace {

using namespace qaoa;

void
usage()
{
    std::cerr
        << "usage: qaoa_lint (--graph FILE | --workload fig11) [options]\n"
           "  --method M    naive|greedyv|qaim|ip|ic|vic|all (default "
           "all)\n"
           "  --device D    tokyo|melbourne|poughkeepsie|heavyhex|"
           "grid6x6|linearN|ringN (default tokyo)\n"
           "  --calib C     default|melbourne|random (default default)\n"
           "  --calib-seed S  seed of the random calibration (default "
           "2020)\n"
           "  --instances N   instances per workload class (default 3)\n"
           "  --gamma G     cost angle per level (default 0.7)\n"
           "  --beta B      mixer angle per level (default 0.35)\n"
           "  --levels P    QAOA levels (default 1)\n"
           "  --packing N   max CPHASEs per layer (default unlimited)\n"
           "  --seed S      master seed (default 7)\n"
           "  --format F    text|csv|json (default text)\n"
           "  --budget FILE JSON bars (tests/budgets/*.json); misses are "
           "QL115 errors\n"
           "  --fail-on S   info|warning|error (default warning)\n"
           "  --check-ordering  enforce ESP geomean VIC >= IC >= IP >= "
           "NAIVE\n"
           "  --crosstalk-pairs LIST  e.g. 0-1x2-3,5-6x7-8 (QL111)\n"
           "fault injection (hardware/faults.hpp):\n"
           "  --fault-edge-rate R / --fault-qubit-rate R / --fault-seed "
           "S\n"
           "  --dead-qubits LIST / --disable-edges LIST\n";
}

analysis::Severity
parseSeverity(const std::string &name)
{
    if (name == "info")
        return analysis::Severity::Info;
    if (name == "warning")
        return analysis::Severity::Warning;
    if (name == "error")
        return analysis::Severity::Error;
    throw std::runtime_error("unknown severity: " + name);
}

std::vector<int>
parseQubitList(const std::string &text)
{
    std::vector<int> qubits;
    std::stringstream ss(text);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            qubits.push_back(std::stoi(item));
    if (qubits.empty())
        throw std::runtime_error("empty qubit list: " + text);
    return qubits;
}

analysis::Coupling
parseCoupling(const std::string &item)
{
    std::size_t dash = item.find('-');
    if (dash == std::string::npos || dash == 0 || dash + 1 >= item.size())
        throw std::runtime_error("bad edge (want a-b): " + item);
    return {std::stoi(item.substr(0, dash)),
            std::stoi(item.substr(dash + 1))};
}

std::vector<std::pair<int, int>>
parseEdgeList(const std::string &text)
{
    std::vector<std::pair<int, int>> edges;
    std::stringstream ss(text);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            edges.push_back(parseCoupling(item));
    if (edges.empty())
        throw std::runtime_error("empty edge list: " + text);
    return edges;
}

/** Parses "0-1x2-3,5-6x7-8" into crosstalk coupling pairs. */
std::vector<analysis::CrosstalkPair>
parseCrosstalkPairs(const std::string &text)
{
    std::vector<analysis::CrosstalkPair> pairs;
    std::stringstream ss(text);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (item.empty())
            continue;
        std::size_t x = item.find('x');
        if (x == std::string::npos || x == 0 || x + 1 >= item.size())
            throw std::runtime_error(
                "bad crosstalk pair (want a-bxc-d): " + item);
        pairs.push_back({parseCoupling(item.substr(0, x)),
                         parseCoupling(item.substr(x + 1))});
    }
    if (pairs.empty())
        throw std::runtime_error("empty crosstalk pair list: " + text);
    return pairs;
}

/** The Fig. 11 instance pool: @p n node ER p in {.1...6} and k-regular
 *  k in {3..8}, @p count instances each.  The paper uses n = 20; smaller
 *  (or degraded) devices scale n down, keeping it even so every
 *  k-regular family exists. */
std::vector<graph::Graph>
fig11Workload(int n, int count, std::uint64_t seed)
{
    std::vector<graph::Graph> pool;
    for (int i = 0; i < 6; ++i) {
        double p = 0.1 + 0.1 * i;
        for (auto &g : metrics::erdosRenyiInstances(
                 n, p, count, seed + static_cast<std::uint64_t>(i)))
            pool.push_back(std::move(g));
    }
    for (int k = 3; k <= 8; ++k) {
        for (auto &g : metrics::regularInstances(
                 n, k, count, seed + 100 + static_cast<std::uint64_t>(k)))
            pool.push_back(std::move(g));
    }
    return pool;
}

/** Aggregated lint outcome of one method over the instance pool. */
struct MethodRow
{
    std::string method;
    int instances = 0;
    double depth = 0.0;    ///< Mean physical depth.
    double gates = 0.0;    ///< Mean gate count.
    double two_q = 0.0;    ///< Mean 2q gate count.
    double swaps = 0.0;    ///< Mean SWAP count.
    double exec_ns = 0.0;  ///< Mean makespan.
    double esp = 0.0;      ///< Geomean ESP.
    double coherence = 0.0; ///< Geomean decoherence-exposure factor.
    analysis::LintReport findings; ///< Merged across instances.
};

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs)
        log_sum += std::log(x);
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

std::string
fmt(double v, int precision = 4)
{
    std::ostringstream os;
    os.precision(precision);
    os << std::fixed << v;
    return os.str();
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

int
runLint(int argc, char **argv)
{
    std::string graph_path, workload, method = "all", device = "tokyo",
                calib_kind = "default", format = "text", budget_path;
    double gamma = 0.7, beta = 0.35;
    int levels = 1, packing = 1 << 30, instances = 3;
    std::uint64_t seed = 7, calib_seed = 2020;
    analysis::Severity fail_on = analysis::Severity::Warning;
    bool check_ordering = false;
    std::vector<analysis::CrosstalkPair> crosstalk_pairs;
    hw::FaultSpec faults;

    for (int i = 1; i < argc; ++i) {
        auto next = [&](const char *flag) -> std::string {
            if (i + 1 >= argc)
                throw std::runtime_error(std::string(flag) +
                                         " needs a value");
            return argv[++i];
        };
        try {
            if (!std::strcmp(argv[i], "--graph"))
                graph_path = next("--graph");
            else if (!std::strcmp(argv[i], "--workload"))
                workload = next("--workload");
            else if (!std::strcmp(argv[i], "--method"))
                method = next("--method");
            else if (!std::strcmp(argv[i], "--device"))
                device = next("--device");
            else if (!std::strcmp(argv[i], "--calib"))
                calib_kind = next("--calib");
            else if (!std::strcmp(argv[i], "--calib-seed"))
                calib_seed = std::stoull(next("--calib-seed"));
            else if (!std::strcmp(argv[i], "--instances"))
                instances = std::stoi(next("--instances"));
            else if (!std::strcmp(argv[i], "--gamma"))
                gamma = std::stod(next("--gamma"));
            else if (!std::strcmp(argv[i], "--beta"))
                beta = std::stod(next("--beta"));
            else if (!std::strcmp(argv[i], "--levels"))
                levels = std::stoi(next("--levels"));
            else if (!std::strcmp(argv[i], "--packing"))
                packing = std::stoi(next("--packing"));
            else if (!std::strcmp(argv[i], "--seed"))
                seed = std::stoull(next("--seed"));
            else if (!std::strcmp(argv[i], "--format"))
                format = next("--format");
            else if (!std::strcmp(argv[i], "--budget"))
                budget_path = next("--budget");
            else if (!std::strcmp(argv[i], "--fail-on"))
                fail_on = parseSeverity(next("--fail-on"));
            else if (!std::strcmp(argv[i], "--check-ordering"))
                check_ordering = true;
            else if (!std::strcmp(argv[i], "--crosstalk-pairs"))
                crosstalk_pairs =
                    parseCrosstalkPairs(next("--crosstalk-pairs"));
            else if (!std::strcmp(argv[i], "--fault-edge-rate"))
                faults.edge_fault_rate =
                    std::stod(next("--fault-edge-rate"));
            else if (!std::strcmp(argv[i], "--fault-qubit-rate"))
                faults.qubit_fault_rate =
                    std::stod(next("--fault-qubit-rate"));
            else if (!std::strcmp(argv[i], "--fault-seed"))
                faults.seed = std::stoull(next("--fault-seed"));
            else if (!std::strcmp(argv[i], "--dead-qubits"))
                faults.dead_qubits = parseQubitList(next("--dead-qubits"));
            else if (!std::strcmp(argv[i], "--disable-edges"))
                faults.disabled_edges =
                    parseEdgeList(next("--disable-edges"));
            else if (!std::strcmp(argv[i], "--help")) {
                usage();
                return 0;
            } else {
                std::cerr << "unknown flag: " << argv[i] << "\n";
                usage();
                return 2;
            }
        } catch (const std::exception &e) {
            std::cerr << "error: " << e.what() << "\n";
            return 2;
        }
    }
    if (graph_path.empty() == workload.empty()) {
        std::cerr << "error: need exactly one of --graph / --workload\n";
        usage();
        return 2;
    }
    if (format != "text" && format != "csv" && format != "json") {
        std::cerr << "error: unknown format: " << format << "\n";
        return 2;
    }

    try {
        // Device + calibration (possibly degraded by fault injection).
        hw::CouplingMap base_map = hw::deviceByName(device);
        hw::CalibrationData base_calib(base_map);
        if (calib_kind == "melbourne") {
            base_calib = hw::melbourneCalibration(base_map);
        } else if (calib_kind == "random") {
            Rng calib_rng(calib_seed);
            base_calib = hw::randomCalibration(base_map, calib_rng);
        } else if (calib_kind != "default") {
            std::cerr << "error: unknown calibration: " << calib_kind
                      << "\n";
            return 2;
        }
        std::optional<hw::FaultInjector> injector;
        if (!faults.empty())
            injector.emplace(base_map, faults, &base_calib);
        const hw::CouplingMap &map = injector ? injector->map() : base_map;
        const hw::CalibrationData &calib =
            injector ? injector->calibration() : base_calib;

        // Problem pool (the workload scales to the usable device size).
        std::vector<graph::Graph> pool;
        if (!graph_path.empty()) {
            pool.push_back(graph::loadGraphFile(graph_path));
        } else if (workload == "fig11") {
            int usable = map.numQubits();
            if (injector) {
                usable = 0;
                for (char c : injector->usable())
                    usable += c ? 1 : 0;
            }
            int n = std::min(20, usable);
            n -= n % 2; // every k-regular family in k=3..8 needs n*k even
            if (n < 10) {
                std::cerr << "error: fig11 workload needs >= 10 usable "
                             "qubits, device has "
                          << usable << "\n";
                return 2;
            }
            pool = fig11Workload(n, instances, calib_seed);
        } else {
            std::cerr << "error: unknown workload: " << workload << "\n";
            return 2;
        }

        std::optional<analysis::QualityBudget> budget;
        if (!budget_path.empty())
            budget = analysis::loadBudgetFile(budget_path);

        std::vector<core::Method> methods;
        if (method == "all")
            methods = {core::Method::Naive, core::Method::GreedyV,
                       core::Method::Qaim,  core::Method::Ip,
                       core::Method::Ic,    core::Method::Vic};
        else
            methods = {core::methodFromName(method)};

        std::vector<MethodRow> rows;
        std::map<std::string, double> esp_by_method;
        for (core::Method m : methods) {
            MethodRow row;
            row.method = core::methodName(m);
            std::vector<double> esps, cohs;
            for (std::size_t pi = 0; pi < pool.size(); ++pi) {
                core::QaoaCompileOptions opts;
                opts.method = m;
                opts.gammas.assign(static_cast<std::size_t>(levels),
                                   gamma);
                opts.betas.assign(static_cast<std::size_t>(levels), beta);
                opts.packing_limit = packing;
                opts.seed = seed + 1000 * pi;
                opts.calibration = &calib;
                opts.decompose_to_basis = false; // lint the physical IR
                opts.crosstalk_pairs = crosstalk_pairs;
                if (injector) {
                    opts.allowed_qubits = &injector->usable();
                    opts.device_degraded =
                        !injector->deadQubits().empty() ||
                        !injector->disabledEdges().empty();
                }
                transpiler::CompileResult r =
                    core::compileQaoaMaxcut(pool[pi], map, opts);
                if (!r.ok()) {
                    std::cerr << "error: " << row.method
                              << " failed on instance " << pi << ": "
                              << r.failure_reason << "\n";
                    return 3;
                }
                if (budget)
                    r.quality.lint.merge(analysis::checkBudget(
                        r.quality.summary, *budget));
                const analysis::QualitySummary &s = r.quality.summary;
                row.instances += 1;
                row.depth += s.depth;
                row.gates += s.gate_count;
                row.two_q += s.two_qubit_gates;
                row.swaps += s.swap_count;
                row.exec_ns += s.execution_ns;
                esps.push_back(s.esp);
                cohs.push_back(s.coherence);
                row.findings.merge(std::move(r.quality.lint));
            }
            const double n = static_cast<double>(row.instances);
            row.depth /= n;
            row.gates /= n;
            row.two_q /= n;
            row.swaps /= n;
            row.exec_ns /= n;
            row.esp = geomean(esps);
            row.coherence = geomean(cohs);
            esp_by_method[row.method] = row.esp;
            rows.push_back(std::move(row));
        }

        // Render.
        bool dirty = false;
        if (format == "json") {
            std::cout << "[\n";
            for (std::size_t i = 0; i < rows.size(); ++i) {
                const MethodRow &r = rows[i];
                std::cout
                    << "  {\"method\": \"" << jsonEscape(r.method)
                    << "\", \"device\": \"" << jsonEscape(map.name())
                    << "\", \"instances\": " << r.instances
                    << ", \"depth\": " << fmt(r.depth, 2)
                    << ", \"gates\": " << fmt(r.gates, 2)
                    << ", \"two_qubit\": " << fmt(r.two_q, 2)
                    << ", \"swaps\": " << fmt(r.swaps, 2)
                    << ", \"execution_ns\": " << fmt(r.exec_ns, 1)
                    << ", \"esp\": " << fmt(r.esp, 6)
                    << ", \"coherence\": " << fmt(r.coherence, 6)
                    << ", \"errors\": "
                    << r.findings.countSeverity(analysis::Severity::Error)
                    << ", \"warnings\": "
                    << r.findings.countSeverity(
                           analysis::Severity::Warning)
                    << ", \"infos\": "
                    << r.findings.countSeverity(analysis::Severity::Info)
                    << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
            }
            std::cout << "]\n";
        } else {
            Table t({"method", "instances", "depth", "gates", "2q",
                     "swaps", "exec_ns", "esp", "coherence", "errors",
                     "warnings", "infos"});
            for (const MethodRow &r : rows)
                t.addRow({r.method, std::to_string(r.instances),
                          fmt(r.depth, 2), fmt(r.gates, 2),
                          fmt(r.two_q, 2), fmt(r.swaps, 2),
                          fmt(r.exec_ns, 1), fmt(r.esp, 6),
                          fmt(r.coherence, 6),
                          std::to_string(r.findings.countSeverity(
                              analysis::Severity::Error)),
                          std::to_string(r.findings.countSeverity(
                              analysis::Severity::Warning)),
                          std::to_string(r.findings.countSeverity(
                              analysis::Severity::Info))});
            if (format == "csv")
                t.printCsv(std::cout);
            else
                t.print(std::cout);
        }
        for (const MethodRow &r : rows) {
            if (!r.findings.clean(fail_on))
                dirty = true;
            if (format == "text" && !r.findings.clean(fail_on)) {
                std::cout << "\n" << r.method << " findings:\n";
                r.findings.print(std::cout, false);
            } else if (format == "text") {
                std::cout << r.method << " lint: "
                          << r.findings.summary() << "\n";
            }
        }

        if (check_ordering) {
            const char *want[] = {"NAIVE", "IP", "IC", "VIC"};
            bool have_all = true;
            for (const char *m : want)
                if (esp_by_method.find(m) == esp_by_method.end())
                    have_all = false;
            if (!have_all) {
                std::cerr << "error: --check-ordering needs methods "
                             "naive, ip, ic and vic\n";
                return 2;
            }
            const double tol = 1.0e-12;
            bool ordered =
                esp_by_method["VIC"] + tol >= esp_by_method["IC"] &&
                esp_by_method["IC"] + tol >= esp_by_method["IP"] &&
                esp_by_method["IP"] + tol >= esp_by_method["NAIVE"];
            std::cout << "esp ordering: VIC " << fmt(esp_by_method["VIC"], 6)
                      << " >= IC " << fmt(esp_by_method["IC"], 6)
                      << " >= IP " << fmt(esp_by_method["IP"], 6)
                      << " >= NAIVE " << fmt(esp_by_method["NAIVE"], 6)
                      << (ordered ? " : ok" : " : VIOLATED") << "\n";
            if (!ordered)
                dirty = true;
        }

        return dirty ? 1 : 0;
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    // QE105: the process crash domain — anything the typed handler
    // above misses exits kExitFatal with a classified report.
    return qaoa::toolMain("qaoa_lint", [&] { return runLint(argc, argv); });
}
