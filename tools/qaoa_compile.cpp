/**
 * @file
 * qaoa_compile — command-line front end for the compilation pipeline.
 *
 * Usage:
 *   qaoa_compile --graph FILE [--method naive|greedyv|qaim|ip|ic|vic]
 *                [--preset o0|o1|o2|o3]
 *                [--device tokyo|melbourne|poughkeepsie|heavyhex|
 *                 grid6x6|linearN|ringN]
 *                [--gamma G] [--beta B] [--levels P] [--packing N]
 *                [--seed S] [--peephole] [--qasm OUT.qasm]
 *                [--no-decompose]
 *                [--fault-edge-rate R] [--fault-qubit-rate R]
 *                [--fault-seed S] [--dead-qubits a,b,c]
 *                [--disable-edges a-b,c-d] [--drift M]
 *                [--verify] [--verify-strict] [--verify-csv]
 *
 * Reads a MaxCut problem graph in the edge-list format (see
 * graph/io.hpp), compiles it with the chosen methodology and prints the
 * §V-A quality metrics; optionally writes the compiled OpenQASM.
 *
 * The fault flags degrade the device before compiling (see
 * hardware/faults.hpp); the compile then reports a structured status
 * (ok / degraded / failed) with the fallbacks taken.
 *
 * --verify runs the verify/ translation validator on the compiled
 * circuit (coupling conformance against the possibly-degraded device,
 * SWAP-replay of the reported mapping, ZZ-interaction equivalence with
 * the problem graph) and prints the findings table; --verify-strict also
 * fails on warnings.  --verify-csv renders the findings as CSV.
 *
 * Exit codes: 0 success (ok or degraded), 1 compile failure,
 * 2 usage error, 3 verification failure.
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "circuit/qasm.hpp"
#include "graph/io.hpp"
#include "hardware/devices.hpp"
#include "hardware/faults.hpp"
#include "qaoa/api.hpp"
#include "qaoa/presets.hpp"
#include "qaoa/problem.hpp"
#include "sim/success.hpp"
#include "verify/verifier.hpp"

namespace {

using namespace qaoa;

void
usage()
{
    std::cerr
        << "usage: qaoa_compile --graph FILE [options]\n"
           "  --method M    naive|greedyv|qaim|ip|ic|vic (default ic)\n"
           "  --preset L    o0|o1|o2|o3 (overrides --method/--peephole)\n"
           "  --device D    tokyo|melbourne|poughkeepsie|heavyhex|"
           "grid6x6|linearN|ringN (default melbourne)\n"
           "  --gamma G     cost angle per level (default 0.7)\n"
           "  --beta B      mixer angle per level (default 0.35)\n"
           "  --levels P    QAOA levels (default 1)\n"
           "  --packing N   max CPHASEs per layer (default unlimited)\n"
           "  --seed S      master seed (default 7)\n"
           "  --peephole    run the peephole optimizer\n"
           "  --qasm FILE   write compiled OpenQASM\n"
           "  --no-decompose  keep high-level gates\n"
           "fault injection (hardware/faults.hpp):\n"
           "  --fault-edge-rate R   disable each coupling with prob R\n"
           "  --fault-qubit-rate R  kill each qubit with prob R\n"
           "  --fault-seed S        seed of the fault stream (default "
           "2020)\n"
           "  --dead-qubits LIST    explicit dead qubits, e.g. 3,7,12\n"
           "  --disable-edges LIST  explicit couplings, e.g. 0-1,4-5\n"
           "  --drift M             multiply CNOT error rates by M\n"
           "  --no-fallbacks        fail instead of retrying/falling "
           "back\n"
           "verification (verify/):\n"
           "  --verify        print the translation-validation report; "
           "exit 3 on errors\n"
           "  --verify-strict exit 3 on any finding, warnings included\n"
           "  --verify-csv    render the findings table as CSV\n";
}

core::Method
parseMethod(const std::string &name)
{
    if (name == "naive")
        return core::Method::Naive;
    if (name == "greedyv")
        return core::Method::GreedyV;
    if (name == "qaim")
        return core::Method::Qaim;
    if (name == "ip")
        return core::Method::Ip;
    if (name == "ic")
        return core::Method::Ic;
    if (name == "vic")
        return core::Method::Vic;
    throw std::runtime_error("unknown method: " + name);
}

hw::CouplingMap
parseDevice(const std::string &name)
{
    if (name == "tokyo")
        return hw::ibmqTokyo20();
    if (name == "melbourne")
        return hw::ibmqMelbourne15();
    if (name == "poughkeepsie")
        return hw::ibmqPoughkeepsie20();
    if (name == "heavyhex")
        return hw::heavyHexFalcon27();
    if (name == "grid6x6")
        return hw::gridDevice(6, 6);
    if (name.rfind("linear", 0) == 0)
        return hw::linearDevice(std::stoi(name.substr(6)));
    if (name.rfind("ring", 0) == 0)
        return hw::ringDevice(std::stoi(name.substr(4)));
    throw std::runtime_error("unknown device: " + name);
}

/** Parses "3,7,12" into a list of qubit indices. */
std::vector<int>
parseQubitList(const std::string &text)
{
    std::vector<int> qubits;
    std::stringstream ss(text);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            qubits.push_back(std::stoi(item));
    if (qubits.empty())
        throw std::runtime_error("empty qubit list: " + text);
    return qubits;
}

/** Parses "0-1,4-5" into a list of couplings. */
std::vector<std::pair<int, int>>
parseEdgeList(const std::string &text)
{
    std::vector<std::pair<int, int>> edges;
    std::stringstream ss(text);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (item.empty())
            continue;
        std::size_t dash = item.find('-');
        if (dash == std::string::npos || dash == 0 ||
            dash + 1 >= item.size())
            throw std::runtime_error("bad edge (want a-b): " + item);
        edges.emplace_back(std::stoi(item.substr(0, dash)),
                           std::stoi(item.substr(dash + 1)));
    }
    if (edges.empty())
        throw std::runtime_error("empty edge list: " + text);
    return edges;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string graph_path, method = "ic", device = "melbourne",
                qasm_path, preset;
    double gamma = 0.7, beta = 0.35;
    int levels = 1, packing = 1 << 30;
    std::uint64_t seed = 7;
    bool decompose = true;
    bool peephole = false;
    bool fallbacks = true;
    bool run_verify = false;
    bool verify_strict = false;
    bool verify_csv = false;
    hw::FaultSpec faults;

    for (int i = 1; i < argc; ++i) {
        auto next = [&](const char *flag) -> std::string {
            if (i + 1 >= argc)
                throw std::runtime_error(std::string(flag) +
                                         " needs a value");
            return argv[++i];
        };
        try {
            if (!std::strcmp(argv[i], "--graph"))
                graph_path = next("--graph");
            else if (!std::strcmp(argv[i], "--method"))
                method = next("--method");
            else if (!std::strcmp(argv[i], "--device"))
                device = next("--device");
            else if (!std::strcmp(argv[i], "--gamma"))
                gamma = std::stod(next("--gamma"));
            else if (!std::strcmp(argv[i], "--beta"))
                beta = std::stod(next("--beta"));
            else if (!std::strcmp(argv[i], "--levels"))
                levels = std::stoi(next("--levels"));
            else if (!std::strcmp(argv[i], "--packing"))
                packing = std::stoi(next("--packing"));
            else if (!std::strcmp(argv[i], "--seed"))
                seed = std::stoull(next("--seed"));
            else if (!std::strcmp(argv[i], "--qasm"))
                qasm_path = next("--qasm");
            else if (!std::strcmp(argv[i], "--no-decompose"))
                decompose = false;
            else if (!std::strcmp(argv[i], "--peephole"))
                peephole = true;
            else if (!std::strcmp(argv[i], "--preset"))
                preset = next("--preset");
            else if (!std::strcmp(argv[i], "--fault-edge-rate"))
                faults.edge_fault_rate =
                    std::stod(next("--fault-edge-rate"));
            else if (!std::strcmp(argv[i], "--fault-qubit-rate"))
                faults.qubit_fault_rate =
                    std::stod(next("--fault-qubit-rate"));
            else if (!std::strcmp(argv[i], "--fault-seed"))
                faults.seed = std::stoull(next("--fault-seed"));
            else if (!std::strcmp(argv[i], "--dead-qubits"))
                faults.dead_qubits =
                    parseQubitList(next("--dead-qubits"));
            else if (!std::strcmp(argv[i], "--disable-edges"))
                faults.disabled_edges =
                    parseEdgeList(next("--disable-edges"));
            else if (!std::strcmp(argv[i], "--drift"))
                faults.drift_multiplier = std::stod(next("--drift"));
            else if (!std::strcmp(argv[i], "--no-fallbacks"))
                fallbacks = false;
            else if (!std::strcmp(argv[i], "--verify"))
                run_verify = true;
            else if (!std::strcmp(argv[i], "--verify-strict"))
                run_verify = verify_strict = true;
            else if (!std::strcmp(argv[i], "--verify-csv"))
                run_verify = verify_csv = true;
            else if (!std::strcmp(argv[i], "--help")) {
                usage();
                return 0;
            } else {
                std::cerr << "unknown flag: " << argv[i] << "\n";
                usage();
                return 2;
            }
        } catch (const std::exception &e) {
            std::cerr << "error: " << e.what() << "\n";
            return 2;
        }
    }
    if (graph_path.empty()) {
        usage();
        return 2;
    }

    try {
        graph::Graph problem = graph::loadGraphFile(graph_path);
        hw::CouplingMap base_map = parseDevice(device);
        hw::CalibrationData base_calib =
            base_map.name() == "ibmq_16_melbourne"
                ? hw::melbourneCalibration(base_map)
                : hw::CalibrationData(base_map);

        // With faults, compile against the degraded view: the injector
        // owns the degraded map and its calibration, and usable() keeps
        // placement inside the largest surviving component.
        std::optional<hw::FaultInjector> injector;
        if (!faults.empty())
            injector.emplace(base_map, faults, &base_calib);
        const hw::CouplingMap &map =
            injector ? injector->map() : base_map;
        const hw::CalibrationData &calib =
            injector ? injector->calibration() : base_calib;

        core::QaoaCompileOptions opts;
        opts.method = parseMethod(method);
        if (!preset.empty()) {
            core::OptimizationLevel level;
            if (preset == "o0")
                level = core::OptimizationLevel::O0;
            else if (preset == "o1")
                level = core::OptimizationLevel::O1;
            else if (preset == "o2")
                level = core::OptimizationLevel::O2;
            else if (preset == "o3")
                level = core::OptimizationLevel::O3;
            else
                throw std::runtime_error("unknown preset: " + preset);
            opts.method = core::presetMethod(level, true);
            peephole = level == core::OptimizationLevel::O3;
        }
        opts.gammas.assign(static_cast<std::size_t>(levels), gamma);
        opts.betas.assign(static_cast<std::size_t>(levels), beta);
        opts.packing_limit = packing;
        opts.seed = seed;
        opts.calibration = &calib;
        opts.decompose_to_basis = decompose;
        opts.peephole = peephole;
        opts.allow_fallbacks = fallbacks;
        if (injector) {
            opts.allowed_qubits = &injector->usable();
            opts.device_degraded = !injector->deadQubits().empty() ||
                                   !injector->disabledEdges().empty();
        }

        transpiler::CompileResult r =
            core::compileQaoaMaxcut(problem, map, opts);

        std::cout << "graph:        " << graph_path << " ("
                  << problem.numNodes() << " nodes, "
                  << problem.numEdges() << " edges)\n"
                  << "device:       " << map.name() << "\n"
                  << "method:       " << core::methodName(opts.method)
                  << "\n"
                  << "status:       " << transpiler::statusName(r.status)
                  << "\n";
        if (injector)
            for (const std::string &note : injector->notes())
                std::cout << "fault:        " << note << "\n";
        for (const std::string &d : r.diagnostics)
            std::cout << "note:         " << d << "\n";

        if (!r.ok()) {
            std::cerr << "error: compile failed: " << r.failure_reason
                      << "\n";
            return 1;
        }

        std::cout << "depth:        " << r.report.depth << "\n"
                  << "gate count:   " << r.report.gate_count << "\n"
                  << "CNOTs:        " << r.report.cx_count << "\n"
                  << "SWAPs:        " << r.report.swap_count << "\n"
                  << "compile time: " << r.report.compile_seconds * 1e3
                  << " ms\n"
                  << "success prob: "
                  << sim::successProbability(r.compiled, calib) << "\n";

        if (!qasm_path.empty()) {
            std::ofstream out(qasm_path);
            if (!out.good()) {
                std::cerr << "cannot write " << qasm_path << "\n";
                return 1;
            }
            out << circuit::toQasm(r.compiled);
            std::cout << "wrote " << qasm_path << "\n";
        }

        if (run_verify) {
            std::vector<verify::ZZTerm> expected;
            for (double g : opts.gammas)
                for (const core::ZZOp &op : core::costOperations(problem))
                    expected.push_back({op.a, op.b, g * op.weight});

            verify::VerifySpec spec;
            spec.map = &map;
            spec.allowed_qubits = opts.allowed_qubits;
            spec.initial_log_to_phys = r.initial_layout.logToPhys();
            spec.expected_final = r.final_layout.logToPhys();
            spec.expected_interactions = &expected;
            spec.lift_basis = false; // r.physical holds high-level gates
            spec.ignore_zero_interactions = peephole;
            verify::VerifyReport report =
                verify::verifyCircuit(r.physical, spec);
            report.print(std::cout, verify_csv);
            const bool pass =
                verify_strict ? report.spotless() : report.clean();
            if (!pass) {
                std::cerr << "error: verification failed ("
                          << report.summary() << ")\n";
                return 3;
            }
        }
        return 0;
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}
