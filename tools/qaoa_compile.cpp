/**
 * @file
 * qaoa_compile — command-line front end for the compilation pipeline.
 *
 * Usage:
 *   qaoa_compile --graph FILE [--method naive|greedyv|qaim|ip|ic|vic]
 *                [--preset o0|o1|o2|o3]
 *                [--device tokyo|melbourne|poughkeepsie|heavyhex|
 *                 grid6x6|linearN|ringN]
 *                [--gamma G] [--beta B] [--levels P] [--packing N]
 *                [--seed S] [--peephole] [--qasm OUT.qasm]
 *                [--qbin OUT.qbin] [--no-decompose]
 *                [--fault-edge-rate R] [--fault-qubit-rate R]
 *                [--fault-seed S] [--dead-qubits a,b,c]
 *                [--disable-edges a-b,c-d] [--drift M]
 *                [--verify] [--verify-strict] [--verify-csv]
 *                [--timeout-ms MS] [--stage-budget MS]
 *                [--workload fig11] [--instances N]
 *                [--optimize-p1] [--checkpoint FILE] [--resume]
 *
 * Reads a MaxCut problem graph in the edge-list format (see
 * graph/io.hpp), compiles it with the chosen methodology and prints the
 * §V-A quality metrics; optionally writes the compiled circuit as
 * OpenQASM text (--qasm) and/or a bit-exact qbin artifact (--qbin,
 * inspectable with qaoa_qbin).
 *
 * The fault flags degrade the device before compiling (see
 * hardware/faults.hpp); the compile then reports a structured status
 * (ok / degraded / failed) with the fallbacks taken.
 *
 * --verify runs the verify/ translation validator on the compiled
 * circuit (coupling conformance against the possibly-degraded device,
 * SWAP-replay of the reported mapping, ZZ-interaction equivalence with
 * the problem graph) and prints the findings table; --verify-strict also
 * fails on warnings.  --verify-csv renders the findings as CSV.
 *
 * Resilience (common/guard.hpp): --timeout-ms puts the whole run under
 * a monotonic deadline and --stage-budget caps each retry-ladder rung;
 * an expired compile reports a structured timed-out status with its
 * per-stage trace and exits 4 — no partial circuit is ever emitted.
 * --workload fig11 compiles the scaled Fig. 11 instance pool under one
 * shared deadline instead of a single graph.  --optimize-p1 runs the
 * checkpointable p=1 (γ, β) search (metrics/harness.hpp); with
 * --checkpoint the optimizer state is saved after every committed step
 * and --resume continues a killed run bit-identically.
 *
 * Exit codes: 0 success (ok or degraded), 1 compile failure,
 * 2 usage error, 3 verification failure, 4 timeout.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "circuit/qasm.hpp"
#include "circuit/qbin.hpp"
#include "common/error.hpp"
#include "common/guard.hpp"
#include "opt/checkpoint.hpp"
#include "graph/io.hpp"
#include "hardware/devices.hpp"
#include "hardware/faults.hpp"
#include "metrics/harness.hpp"
#include "qaoa/api.hpp"
#include "qaoa/presets.hpp"
#include "qaoa/problem.hpp"
#include "sim/success.hpp"
#include "verify/verifier.hpp"

namespace {

using namespace qaoa;

void
usage()
{
    std::cerr
        << "usage: qaoa_compile --graph FILE [options]\n"
           "  --method M    naive|greedyv|qaim|ip|ic|vic (default ic)\n"
           "  --preset L    o0|o1|o2|o3 (overrides --method/--peephole)\n"
           "  --device D    tokyo|melbourne|poughkeepsie|heavyhex|"
           "grid6x6|linearN|ringN (default melbourne)\n"
           "  --gamma G     cost angle per level (default 0.7)\n"
           "  --beta B      mixer angle per level (default 0.35)\n"
           "  --levels P    QAOA levels (default 1)\n"
           "  --packing N   max CPHASEs per layer (default unlimited)\n"
           "  --seed S      master seed (default 7)\n"
           "  --peephole    run the peephole optimizer\n"
           "  --qasm FILE   write compiled OpenQASM\n"
           "  --qbin FILE   write a bit-exact qbin artifact "
           "(circuit + metadata)\n"
           "  --no-decompose  keep high-level gates\n"
           "fault injection (hardware/faults.hpp):\n"
           "  --fault-edge-rate R   disable each coupling with prob R\n"
           "  --fault-qubit-rate R  kill each qubit with prob R\n"
           "  --fault-seed S        seed of the fault stream (default "
           "2020)\n"
           "  --dead-qubits LIST    explicit dead qubits, e.g. 3,7,12\n"
           "  --disable-edges LIST  explicit couplings, e.g. 0-1,4-5\n"
           "  --drift M             multiply CNOT error rates by M\n"
           "  --no-fallbacks        fail instead of retrying/falling "
           "back\n"
           "verification (verify/):\n"
           "  --verify        print the translation-validation report; "
           "exit 3 on errors\n"
           "  --verify-strict exit 3 on any finding, warnings included\n"
           "  --verify-csv    render the findings table as CSV\n"
           "resilience (common/guard.hpp):\n"
           "  --timeout-ms MS   total compile deadline; exit 4 when it "
           "expires\n"
           "  --stage-budget MS watchdog budget per retry-ladder rung\n"
           "  --workload fig11  compile the scaled Fig. 11 pool under "
           "one deadline\n"
           "  --instances N     instances per workload class (default "
           "3)\n"
           "  --optimize-p1     run the p=1 (gamma, beta) search instead "
           "of compiling\n"
           "  --checkpoint FILE save optimizer state after every "
           "committed step\n"
           "  --resume          continue from --checkpoint if it "
           "exists\n";
}

/** Parses "3,7,12" into a list of qubit indices. */
std::vector<int>
parseQubitList(const std::string &text)
{
    std::vector<int> qubits;
    std::stringstream ss(text);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            qubits.push_back(std::stoi(item));
    if (qubits.empty())
        throw std::runtime_error("empty qubit list: " + text);
    return qubits;
}

/** Parses "0-1,4-5" into a list of couplings. */
std::vector<std::pair<int, int>>
parseEdgeList(const std::string &text)
{
    std::vector<std::pair<int, int>> edges;
    std::stringstream ss(text);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (item.empty())
            continue;
        std::size_t dash = item.find('-');
        if (dash == std::string::npos || dash == 0 ||
            dash + 1 >= item.size())
            throw std::runtime_error("bad edge (want a-b): " + item);
        edges.emplace_back(std::stoi(item.substr(0, dash)),
                           std::stoi(item.substr(dash + 1)));
    }
    if (edges.empty())
        throw std::runtime_error("empty edge list: " + text);
    return edges;
}

/** Scaled Fig. 11 instance pool (same classes as qaoa_lint). */
std::vector<graph::Graph>
fig11Workload(int n, int count, std::uint64_t seed)
{
    std::vector<graph::Graph> pool;
    for (int i = 0; i < 6; ++i) {
        double p = 0.1 + 0.1 * i;
        for (auto &g : metrics::erdosRenyiInstances(
                 n, p, count, seed + static_cast<std::uint64_t>(i)))
            pool.push_back(std::move(g));
    }
    for (int k = 3; k <= 8; ++k) {
        for (auto &g : metrics::regularInstances(
                 n, k, count, seed + 100 + static_cast<std::uint64_t>(k)))
            pool.push_back(std::move(g));
    }
    return pool;
}

/** Prints the retry-ladder flight record of one compile. */
void
printStages(const transpiler::CompileResult &r)
{
    for (const run::StageTrace &t : r.stages) {
        std::cout << "stage:        " << t.stage << " ["
                  << run::stageOutcomeName(t.outcome) << ", "
                  << t.elapsed_ms << " ms, retry " << t.retries << "]";
        if (!t.detail.empty())
            std::cout << " — " << t.detail;
        std::cout << "\n";
    }
}

int
runCompile(int argc, char **argv)
{
    std::string graph_path, method = "ic", device = "melbourne",
                qasm_path, qbin_path, preset, workload, checkpoint_path;
    double gamma = 0.7, beta = 0.35;
    double timeout_ms = -1.0, stage_budget_ms = -1.0;
    int levels = 1, packing = 1 << 30, instances = 3;
    std::uint64_t seed = 7;
    bool decompose = true;
    bool peephole = false;
    bool fallbacks = true;
    bool run_verify = false;
    bool verify_strict = false;
    bool verify_csv = false;
    bool optimize_p1 = false;
    bool resume = false;
    hw::FaultSpec faults;

    for (int i = 1; i < argc; ++i) {
        auto next = [&](const char *flag) -> std::string {
            if (i + 1 >= argc)
                throw std::runtime_error(std::string(flag) +
                                         " needs a value");
            return argv[++i];
        };
        try {
            if (!std::strcmp(argv[i], "--graph"))
                graph_path = next("--graph");
            else if (!std::strcmp(argv[i], "--method"))
                method = next("--method");
            else if (!std::strcmp(argv[i], "--device"))
                device = next("--device");
            else if (!std::strcmp(argv[i], "--gamma"))
                gamma = std::stod(next("--gamma"));
            else if (!std::strcmp(argv[i], "--beta"))
                beta = std::stod(next("--beta"));
            else if (!std::strcmp(argv[i], "--levels"))
                levels = std::stoi(next("--levels"));
            else if (!std::strcmp(argv[i], "--packing"))
                packing = std::stoi(next("--packing"));
            else if (!std::strcmp(argv[i], "--seed"))
                seed = std::stoull(next("--seed"));
            else if (!std::strcmp(argv[i], "--qasm"))
                qasm_path = next("--qasm");
            else if (!std::strcmp(argv[i], "--qbin"))
                qbin_path = next("--qbin");
            else if (!std::strcmp(argv[i], "--no-decompose"))
                decompose = false;
            else if (!std::strcmp(argv[i], "--peephole"))
                peephole = true;
            else if (!std::strcmp(argv[i], "--preset"))
                preset = next("--preset");
            else if (!std::strcmp(argv[i], "--fault-edge-rate"))
                faults.edge_fault_rate =
                    std::stod(next("--fault-edge-rate"));
            else if (!std::strcmp(argv[i], "--fault-qubit-rate"))
                faults.qubit_fault_rate =
                    std::stod(next("--fault-qubit-rate"));
            else if (!std::strcmp(argv[i], "--fault-seed"))
                faults.seed = std::stoull(next("--fault-seed"));
            else if (!std::strcmp(argv[i], "--dead-qubits"))
                faults.dead_qubits =
                    parseQubitList(next("--dead-qubits"));
            else if (!std::strcmp(argv[i], "--disable-edges"))
                faults.disabled_edges =
                    parseEdgeList(next("--disable-edges"));
            else if (!std::strcmp(argv[i], "--drift"))
                faults.drift_multiplier = std::stod(next("--drift"));
            else if (!std::strcmp(argv[i], "--no-fallbacks"))
                fallbacks = false;
            else if (!std::strcmp(argv[i], "--timeout-ms"))
                timeout_ms = std::stod(next("--timeout-ms"));
            else if (!std::strcmp(argv[i], "--stage-budget"))
                stage_budget_ms = std::stod(next("--stage-budget"));
            else if (!std::strcmp(argv[i], "--workload"))
                workload = next("--workload");
            else if (!std::strcmp(argv[i], "--instances"))
                instances = std::stoi(next("--instances"));
            else if (!std::strcmp(argv[i], "--optimize-p1"))
                optimize_p1 = true;
            else if (!std::strcmp(argv[i], "--checkpoint"))
                checkpoint_path = next("--checkpoint");
            else if (!std::strcmp(argv[i], "--resume"))
                resume = true;
            else if (!std::strcmp(argv[i], "--verify"))
                run_verify = true;
            else if (!std::strcmp(argv[i], "--verify-strict"))
                run_verify = verify_strict = true;
            else if (!std::strcmp(argv[i], "--verify-csv"))
                run_verify = verify_csv = true;
            else if (!std::strcmp(argv[i], "--help")) {
                usage();
                return 0;
            } else {
                std::cerr << "unknown flag: " << argv[i] << "\n";
                usage();
                return 2;
            }
        } catch (const std::exception &e) {
            std::cerr << "error: " << e.what() << "\n";
            return 2;
        }
    }
    if (graph_path.empty() == workload.empty()) {
        std::cerr << "error: need exactly one of --graph / --workload\n";
        usage();
        return 2;
    }
    if (!workload.empty() && workload != "fig11") {
        std::cerr << "error: unknown workload: " << workload << "\n";
        return 2;
    }
    if (optimize_p1 && graph_path.empty()) {
        std::cerr << "error: --optimize-p1 needs --graph\n";
        return 2;
    }

    try {
        // One guard for everything this invocation runs: a single
        // monotonic deadline shared by every compile/optimizer step.
        const run::CancelToken token;
        const run::Deadline deadline =
            timeout_ms >= 0.0 ? run::Deadline::afterMs(timeout_ms)
                              : run::Deadline::never();
        const run::RunGuard guard(token, deadline);

        if (optimize_p1) {
            graph::Graph problem = graph::loadGraphFile(graph_path);
            metrics::OptimizeP1Options popts;
            popts.guard = &guard;
            popts.checkpoint_path = checkpoint_path;
            popts.resume = resume;
            try {
                metrics::P1Run run =
                    metrics::optimizeP1Checkpointed(problem, popts);
                char line[256];
                std::snprintf(line, sizeof line,
                              "p1 optimum:   gamma=%.17g beta=%.17g "
                              "cut=%.17g evals=%d%s\n",
                              run.params.gamma, run.params.beta,
                              run.params.expected_cut, run.evaluations,
                              run.resumed ? " (resumed)" : "");
                std::cout << line;
                return 0;
            } catch (const run::TimedOutError &e) {
                std::cerr << "error: timed out: " << e.what() << "\n";
                return 4;
            }
        }

        hw::CouplingMap base_map = hw::deviceByName(device);
        hw::CalibrationData base_calib =
            base_map.name() == "ibmq_16_melbourne"
                ? hw::melbourneCalibration(base_map)
                : hw::CalibrationData(base_map);

        // With faults, compile against the degraded view: the injector
        // owns the degraded map and its calibration, and usable() keeps
        // placement inside the largest surviving component.
        std::optional<hw::FaultInjector> injector;
        if (!faults.empty())
            injector.emplace(base_map, faults, &base_calib);
        const hw::CouplingMap &map =
            injector ? injector->map() : base_map;
        const hw::CalibrationData &calib =
            injector ? injector->calibration() : base_calib;

        core::QaoaCompileOptions opts;
        opts.method = core::methodFromName(method);
        if (!preset.empty()) {
            core::OptimizationLevel level;
            if (preset == "o0")
                level = core::OptimizationLevel::O0;
            else if (preset == "o1")
                level = core::OptimizationLevel::O1;
            else if (preset == "o2")
                level = core::OptimizationLevel::O2;
            else if (preset == "o3")
                level = core::OptimizationLevel::O3;
            else
                throw std::runtime_error("unknown preset: " + preset);
            opts.method = core::presetMethod(level, true);
            peephole = level == core::OptimizationLevel::O3;
        }
        opts.gammas.assign(static_cast<std::size_t>(levels), gamma);
        opts.betas.assign(static_cast<std::size_t>(levels), beta);
        opts.packing_limit = packing;
        opts.seed = seed;
        opts.calibration = &calib;
        opts.decompose_to_basis = decompose;
        opts.peephole = peephole;
        opts.allow_fallbacks = fallbacks;
        if (injector) {
            opts.allowed_qubits = &injector->usable();
            opts.device_degraded = !injector->deadQubits().empty() ||
                                   !injector->disabledEdges().empty();
        }
        opts.guard = &guard;
        opts.stage_budget_ms = stage_budget_ms;

        if (!workload.empty()) {
            int usable = map.numQubits();
            if (injector) {
                usable = 0;
                for (char c : injector->usable())
                    usable += c ? 1 : 0;
            }
            int n = std::min(20, usable);
            n -= n % 2; // k-regular families in k=3..8 need n*k even
            if (n < 10) {
                std::cerr << "error: fig11 workload needs >= 10 usable "
                             "qubits, device has "
                          << usable << "\n";
                return 2;
            }
            std::vector<graph::Graph> pool =
                fig11Workload(n, instances, seed);
            metrics::MetricSeries series =
                metrics::compileSeries(pool, map, opts);
            int ok = 0, timed_out = 0, other = 0;
            for (transpiler::CompileStatus s : series.status) {
                if (s == transpiler::CompileStatus::Ok ||
                    s == transpiler::CompileStatus::Degraded)
                    ++ok;
                else if (s == transpiler::CompileStatus::TimedOut)
                    ++timed_out;
                else
                    ++other;
            }
            std::cout << "workload:     fig11 (" << pool.size()
                      << " instances, n=" << n << ")\n"
                      << "device:       " << map.name() << "\n"
                      << "method:       "
                      << core::methodName(opts.method) << "\n"
                      << "compiled:     " << ok << "\n"
                      << "timed out:    " << timed_out << "\n"
                      << "failed:       " << other << "\n";
            if (timed_out > 0) {
                std::cerr << "error: workload timed out (" << timed_out
                          << "/" << series.status.size()
                          << " instances hit the deadline)\n";
                return 4;
            }
            return other > 0 ? 1 : 0;
        }

        graph::Graph problem = graph::loadGraphFile(graph_path);
        transpiler::CompileResult r =
            core::compileQaoaMaxcut(problem, map, opts);

        std::cout << "graph:        " << graph_path << " ("
                  << problem.numNodes() << " nodes, "
                  << problem.numEdges() << " edges)\n"
                  << "device:       " << map.name() << "\n"
                  << "method:       " << core::methodName(opts.method)
                  << "\n"
                  << "status:       " << transpiler::statusName(r.status)
                  << "\n";
        if (injector)
            for (const std::string &note : injector->notes())
                std::cout << "fault:        " << note << "\n";
        for (const std::string &d : r.diagnostics)
            std::cout << "note:         " << d << "\n";
        printStages(r);

        if (!r.ok()) {
            std::cerr << "error: compile "
                      << transpiler::statusName(r.status) << ": "
                      << r.failure_reason << "\n";
            return r.status == transpiler::CompileStatus::TimedOut ? 4
                                                                   : 1;
        }

        std::cout << "depth:        " << r.report.depth << "\n"
                  << "gate count:   " << r.report.gate_count << "\n"
                  << "CNOTs:        " << r.report.cx_count << "\n"
                  << "SWAPs:        " << r.report.swap_count << "\n"
                  << "compile time: " << r.report.compile_seconds * 1e3
                  << " ms\n"
                  << "success prob: "
                  << sim::successProbability(r.compiled, calib) << "\n";

        if (!qasm_path.empty()) {
            std::ofstream out(qasm_path);
            if (!out.good()) {
                std::cerr << "cannot write " << qasm_path << "\n";
                return 1;
            }
            out << circuit::toQasm(r.compiled);
            std::cout << "wrote " << qasm_path << "\n";
        }

        if (!qbin_path.empty()) {
            circuit::qbin::Artifact artifact;
            artifact.circuit = circuit::qbin::encodeCircuit(r.compiled);
            artifact.meta.set("producer", "qaoa_compile");
            artifact.meta.set("status",
                              transpiler::statusName(r.status));
            artifact.meta.set("method", core::methodName(opts.method));
            artifact.meta.set("device", map.name());
            artifact.meta.set("depth", std::to_string(r.report.depth));
            artifact.meta.set("gate_count",
                              std::to_string(r.report.gate_count));
            artifact.meta.set("cx_count",
                              std::to_string(r.report.cx_count));
            artifact.meta.set("swap_count",
                              std::to_string(r.report.swap_count));
            artifact.meta.set(
                "compile_ms",
                opt::formatHexDouble(r.report.compile_seconds * 1e3));
            opt::saveArtifactFile(qbin_path,
                                  circuit::qbin::encodeArtifact(artifact));
            std::cout << "wrote " << qbin_path << "\n";
        }

        if (run_verify) {
            std::vector<verify::ZZTerm> expected;
            for (double g : opts.gammas)
                for (const core::ZZOp &op : core::costOperations(problem))
                    expected.push_back({op.a, op.b, g * op.weight});

            verify::VerifySpec spec;
            spec.map = &map;
            spec.allowed_qubits = opts.allowed_qubits;
            spec.initial_log_to_phys = r.initial_layout.logToPhys();
            spec.expected_final = r.final_layout.logToPhys();
            spec.expected_interactions = &expected;
            spec.lift_basis = false; // r.physical holds high-level gates
            spec.ignore_zero_interactions = peephole;
            verify::VerifyReport report =
                verify::verifyCircuit(r.physical, spec);
            report.print(std::cout, verify_csv);
            const bool pass =
                verify_strict ? report.spotless() : report.clean();
            if (!pass) {
                std::cerr << "error: verification failed ("
                          << report.summary() << ")\n";
                return 3;
            }
        }
        return 0;
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    // QE105: the process crash domain — anything the typed handlers
    // above miss exits kExitFatal with a classified report, never aborts.
    return toolMain("qaoa_compile", [&] { return runCompile(argc, argv); });
}
