/**
 * @file
 * qaoa_qbin — round-trip tool for the qbin binary circuit format.
 *
 * Usage:
 *   qaoa_qbin encode IN.qasm OUT.qbin [--max-qubits N]
 *   qaoa_qbin decode IN.qbin OUT.qasm
 *   qaoa_qbin inspect IN.qbin
 *   qaoa_qbin roundtrip IN.qasm [--max-qubits N]
 *
 * encode parses OpenQASM 2.0 (the toQasm() dialect) and writes a qbin
 * circuit document; decode accepts either a circuit document or an
 * artifact container (qaoa_compile --qbin / a serve cache .cce file)
 * and writes the circuit back out as QASM text.  inspect prints the
 * header, sizes, op histogram and — for artifacts — the metadata
 * record without converting anything.  roundtrip encodes, decodes and
 * verifies the result is bit-identical to the parse (exit 1 when not),
 * reporting both byte sizes.
 *
 * Exit codes: 0 success, 1 failure (I/O, malformed input, or a
 * roundtrip mismatch), 2 usage error.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "circuit/qasm.hpp"
#include "circuit/qasm_parser.hpp"
#include "circuit/qbin.hpp"
#include "common/error.hpp"

namespace {

using namespace qaoa;

void
usage()
{
    std::cerr
        << "usage: qaoa_qbin COMMAND ...\n"
           "  encode IN.qasm OUT.qbin [--max-qubits N]   QASM -> qbin\n"
           "  decode IN.qbin OUT.qasm                    qbin -> QASM "
           "(circuit or artifact)\n"
           "  inspect IN.qbin                            header, sizes, "
           "ops, metadata\n"
           "  roundtrip IN.qasm [--max-qubits N]         verify encode/"
           "decode is bit-exact\n";
}

std::string
readWholeFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in.good())
        throw std::runtime_error("cannot read " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

void
writeWholeFile(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary);
    if (!out.good())
        throw std::runtime_error("cannot write " + path);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out.good())
        throw std::runtime_error("short write to " + path);
}

/** The circuit document inside @p bytes (itself for kind=circuit,
 *  the embedded one for kind=artifact). */
std::string
circuitDocOf(const std::string &bytes)
{
    if (bytes.size() > 4 &&
        static_cast<unsigned char>(bytes[4]) == circuit::qbin::kKindArtifact)
        return circuit::qbin::decodeArtifact(bytes).circuit;
    return bytes;
}

void
printCircuitSummary(const circuit::Circuit &c, std::size_t doc_bytes)
{
    std::cout << "qubits:       " << c.numQubits() << "\n"
              << "gates:        " << c.gates().size() << "\n"
              << "depth:        " << c.depth() << "\n"
              << "doc bytes:    " << doc_bytes << "\n";
    for (const auto &[name, count] : c.opCounts())
        std::cout << "  op " << name << ": " << count << "\n";
}

int
run(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 2;
    }
    const std::string command = argv[1];
    std::vector<std::string> paths;
    circuit::QasmParseOptions parse_options;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--max-qubits") {
            if (i + 1 >= argc) {
                std::cerr << "--max-qubits needs a value\n";
                return 2;
            }
            parse_options.max_qubits = std::stoi(argv[++i]);
        } else {
            paths.push_back(arg);
        }
    }

    if (command == "encode") {
        if (paths.size() != 2) {
            usage();
            return 2;
        }
        const circuit::Circuit parsed =
            circuit::parseQasm(readWholeFile(paths[0]), parse_options);
        const std::string doc = circuit::qbin::encodeCircuit(parsed);
        writeWholeFile(paths[1], doc);
        std::cout << "wrote " << paths[1] << " (" << doc.size()
                  << " bytes, " << parsed.gates().size() << " gates)\n";
        return 0;
    }

    if (command == "decode") {
        if (paths.size() != 2) {
            usage();
            return 2;
        }
        const circuit::Circuit decoded = circuit::qbin::decodeCircuit(
            circuitDocOf(readWholeFile(paths[0])));
        writeWholeFile(paths[1], circuit::toQasm(decoded));
        std::cout << "wrote " << paths[1] << " ("
                  << decoded.gates().size() << " gates)\n";
        return 0;
    }

    if (command == "inspect") {
        if (paths.size() != 1) {
            usage();
            return 2;
        }
        const std::string bytes = readWholeFile(paths[0]);
        if (!circuit::qbin::looksLikeQbin(bytes))
            throw std::runtime_error(paths[0] + ": not a qbin document");
        const bool artifact =
            static_cast<unsigned char>(bytes[4]) ==
            circuit::qbin::kKindArtifact;
        std::cout << "kind:         "
                  << (artifact ? "artifact" : "circuit") << "\n"
                  << "version:      " << int(bytes[5]) << "\n"
                  << "file bytes:   " << bytes.size() << "\n";
        if (artifact) {
            const circuit::qbin::Artifact art =
                circuit::qbin::decodeArtifact(bytes);
            printCircuitSummary(
                circuit::qbin::decodeCircuit(art.circuit),
                art.circuit.size());
            for (const auto &[key, value] : art.meta.fields())
                std::cout << "  meta " << key << ": " << value << "\n";
        } else {
            printCircuitSummary(circuit::qbin::decodeCircuit(bytes),
                                bytes.size());
        }
        return 0;
    }

    if (command == "roundtrip") {
        if (paths.size() != 1) {
            usage();
            return 2;
        }
        const std::string qasm = readWholeFile(paths[0]);
        const circuit::Circuit parsed =
            circuit::parseQasm(qasm, parse_options);
        const std::string doc = circuit::qbin::encodeCircuit(parsed);
        const circuit::Circuit decoded = circuit::qbin::decodeCircuit(doc);
        if (!circuit::qbin::bitIdentical(parsed, decoded)) {
            std::cerr << "roundtrip MISMATCH: decoded circuit is not "
                         "bit-identical\n";
            return 1;
        }
        std::cout << "roundtrip ok: " << parsed.gates().size()
                  << " gates bit-identical\n"
                  << "qasm bytes:   " << qasm.size() << "\n"
                  << "qbin bytes:   " << doc.size() << "\n";
        return 0;
    }

    usage();
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    // QE105: classify decode/I-O failures as a structured one-line
    // report and the documented exit code 1 — never an abort.
    return qaoa::toolMain("qaoa_qbin", [&] { return run(argc, argv); });
}
