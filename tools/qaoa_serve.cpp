/**
 * @file
 * qaoa_serve — compile-as-a-service daemon.
 *
 * Speaks the length-prefixed frame protocol of serve/protocol.hpp on
 * stdin/stdout: clients send "compile" / "cancel" / "stats" / "health"
 * / "shutdown" records, the daemon answers "result" / "shed" / "error"
 * / "stats" / "health" frames (responses are asynchronous and may
 * interleave; match them by id).  Cancels are fire-and-forget.  Log
 * lines go to stderr.
 *
 * Operational lifecycle:
 *   - SIGTERM / SIGINT start a graceful drain: admissions close, every
 *     in-flight and queued request is answered at full fidelity, final
 *     stats go to stderr, exit 0.  (Handlers are installed without
 *     SA_RESTART so a blocked stdin read returns EINTR and the main
 *     loop notices the flag promptly.)
 *   - SIGPIPE is ignored: a client closing its pipe mid-response
 *     surfaces as an IoError on the write, which is logged and
 *     survived — the daemon keeps serving the remaining clients and
 *     exits 0 at stdin EOF.
 *   - Failpoints (common/failpoint.hpp) arm from QAOA_FAILPOINTS /
 *     QAOA_FAILPOINT_SEED or --failpoints, for crash-consistency and
 *     fault-injection harnesses.
 *
 * Exit codes (see the README exit-code table):
 *   0  clean shutdown (EOF at a frame boundary, a "shutdown" frame, or
 *      a SIGTERM/SIGINT drain)
 *   1  fatal I/O or framing error (truncated frame, oversized frame,
 *      or an exception escaping to the toolMain boundary)
 *   2  bad command line (including a malformed --failpoints spec)
 *   86 an armed abort failpoint fired (power-cut simulation)
 */

#include <cstdint>
#include <cstdio>
#include <csignal>
#include <cstring>
#include <iostream>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/sync.hpp"
#include "common/kv.hpp"
#include "opt/checkpoint.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace {

using namespace qaoa;

/** Set by the SIGTERM/SIGINT handler; the main loop polls it. */
volatile std::sig_atomic_t g_drain_signal = 0;

extern "C" void
handleDrainSignal(int sig)
{
    g_drain_signal = sig;
}

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "  --workers N                compile worker threads (default 2)\n"
        "  --queue-capacity N         backlog bound before shedding (default 64)\n"
        "  --cache-dir PATH           persist the compile cache here\n"
        "  --cache-entries N          cache entry cap (default 256)\n"
        "  --cache-bytes N            cache byte cap (default 64 MiB)\n"
        "  --cache-policy lru|fifo    eviction policy (default lru)\n"
        "  --max-nodes N              largest admissible problem (default 64)\n"
        "  --stage-budget-ms X        default per-stage watchdog budget\n"
        "  --scrub-interval-ms X      periodic cache scrub cadence (default off)\n"
        "  --no-scrub-on-start        skip the startup cache scrub\n"
        "  --failpoints SPEC          arm failpoints (also: QAOA_FAILPOINTS)\n"
        "  --help\n",
        argv0);
}

/** Serializes ServerStats into a "stats" response payload. */
std::string
statsPayload(const serve::ServerStats &stats,
             const std::string &policy)
{
    kv::Record rec;
    rec.set("type", "stats");
    rec.set("received", std::to_string(stats.received));
    rec.set("cache_hits", std::to_string(stats.cache_hits));
    rec.set("compiled", std::to_string(stats.compiled));
    rec.set("shed", std::to_string(stats.shed));
    rec.set("cancelled", std::to_string(stats.cancelled));
    rec.set("errors", std::to_string(stats.errors));
    rec.set("pressure_downgrades",
            std::to_string(stats.pressure_downgrades));
    rec.set("pressure", stats.pressure);
    rec.set("draining", stats.draining ? "1" : "0");
    rec.set("queue_depth", std::to_string(stats.queue.depth));
    rec.set("queue_admitted", std::to_string(stats.queue.admitted));
    rec.set("queue_shed", std::to_string(stats.queue.shed));
    rec.set("ema_service_ms",
            opt::formatHexDouble(stats.queue.ema_service_ms));
    rec.set("cache_entries", std::to_string(stats.cache.entries));
    rec.set("cache_bytes", std::to_string(stats.cache.bytes));
    rec.set("cache_lookup_hits", std::to_string(stats.cache.hits));
    rec.set("cache_lookup_misses", std::to_string(stats.cache.misses));
    rec.set("cache_evictions", std::to_string(stats.cache.evictions));
    rec.set("cache_emergency_evictions",
            std::to_string(stats.cache.emergency_evictions));
    rec.set("cache_loaded", std::to_string(stats.cache.loaded));
    rec.set("cache_quarantined",
            std::to_string(stats.cache.quarantined));
    rec.set("cache_read_errors",
            std::to_string(stats.cache.read_errors));
    rec.set("cache_retired", std::to_string(stats.cache.retired));
    rec.set("cache_scrub_runs", std::to_string(stats.cache.scrub_runs));
    rec.set("cache_scrub_checked",
            std::to_string(stats.cache.scrub_checked));
    rec.set("cache_scrub_healed",
            std::to_string(stats.cache.scrub_healed));
    rec.set("cache_scrub_dropped",
            std::to_string(stats.cache.scrub_dropped));
    rec.set("cache_hit_rate",
            opt::formatHexDouble(stats.cache.hitRate()));
    rec.set("cache_policy", policy);
    return kv::serialize(rec);
}

/** Serializes the operational-health snapshot (queue, cache, scrub,
 *  failpoint arm-state) into a "health" response payload. */
std::string
healthPayload(const serve::ServerStats &stats, const std::string &id)
{
    kv::Record rec;
    rec.set("type", "health");
    if (!id.empty())
        rec.set("id", id);
    rec.set("status", stats.draining ? "draining" : "serving");
    rec.set("pressure", stats.pressure);
    rec.set("queue_depth", std::to_string(stats.queue.depth));
    rec.set("queue_tenants", std::to_string(stats.queue.tenants));
    rec.set("received", std::to_string(stats.received));
    rec.set("compiled", std::to_string(stats.compiled));
    rec.set("errors", std::to_string(stats.errors));
    rec.set("cache_entries", std::to_string(stats.cache.entries));
    rec.set("cache_bytes", std::to_string(stats.cache.bytes));
    rec.set("cache_hit_rate",
            opt::formatHexDouble(stats.cache.hitRate()));
    rec.set("cache_quarantined",
            std::to_string(stats.cache.quarantined));
    rec.set("cache_read_errors",
            std::to_string(stats.cache.read_errors));
    rec.set("cache_emergency_evictions",
            std::to_string(stats.cache.emergency_evictions));
    rec.set("scrub_runs", std::to_string(stats.cache.scrub_runs));
    rec.set("scrub_checked", std::to_string(stats.cache.scrub_checked));
    rec.set("scrub_healed", std::to_string(stats.cache.scrub_healed));
    rec.set("scrub_dropped", std::to_string(stats.cache.scrub_dropped));
    std::string armed;
    for (const std::string &line : failpoint::armedList()) {
        if (!armed.empty())
            armed += "; ";
        armed += line;
    }
    rec.set("failpoints", armed);
    return kv::serialize(rec);
}

int
runDaemon(int argc, char **argv)
{
    serve::ServerConfig config;
    std::string failpoint_spec;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool has_value = i + 1 < argc;
        try {
            if (arg == "--help") {
                usage(argv[0]);
                return 0;
            }
            if (arg == "--workers" && has_value)
                config.workers = std::stoi(argv[++i]);
            else if (arg == "--queue-capacity" && has_value)
                config.queue_capacity =
                    static_cast<std::size_t>(std::stoul(argv[++i]));
            else if (arg == "--cache-dir" && has_value)
                config.cache_dir = argv[++i];
            else if (arg == "--cache-entries" && has_value)
                config.cache_limits.max_entries =
                    static_cast<std::size_t>(std::stoul(argv[++i]));
            else if (arg == "--cache-bytes" && has_value)
                config.cache_limits.max_bytes = std::stoull(argv[++i]);
            else if (arg == "--cache-policy" && has_value)
                config.cache_policy = argv[++i];
            else if (arg == "--max-nodes" && has_value)
                config.max_nodes = std::stoi(argv[++i]);
            else if (arg == "--stage-budget-ms" && has_value)
                config.default_stage_budget_ms = std::stod(argv[++i]);
            else if (arg == "--scrub-interval-ms" && has_value)
                config.scrub_interval_ms = std::stod(argv[++i]);
            else if (arg == "--no-scrub-on-start")
                config.scrub_on_start = false;
            else if (arg == "--failpoints" && has_value)
                failpoint_spec = argv[++i];
            else {
                usage(argv[0]);
                return 2;
            }
        } catch (const std::exception &) {
            usage(argv[0]);
            return 2;
        }
    }

    // Fault injection arms before anything touches the disk, so even
    // the cache reload at start() runs under the schedule.
    if (Status armed = failpoint::armFromEnv(); !armed.ok()) {
        std::fprintf(stderr, "qaoa_serve: %s\n",
                     armed.toString().c_str());
        return 2;
    }
    if (!failpoint_spec.empty()) {
        if (Status armed = failpoint::armFromSpec(failpoint_spec);
            !armed.ok()) {
            std::fprintf(stderr, "qaoa_serve: %s\n",
                         armed.toString().c_str());
            return 2;
        }
    }
    if (failpoint::anyArmed())
        for (const std::string &line : failpoint::armedList())
            std::fprintf(stderr, "qaoa_serve: failpoint armed: %s\n",
                         line.c_str());

#ifndef _WIN32
    // A client that closes its pipe mid-response must surface as an
    // IoError on the write, never as a process-killing SIGPIPE.
    std::signal(SIGPIPE, SIG_IGN);
    // Drain signals: deliberately no SA_RESTART, so a blocked stdin
    // read returns EINTR and the loop below sees the flag promptly
    // instead of waiting for the next client frame.
    struct sigaction drain_action = {};
    drain_action.sa_handler = handleDrainSignal;
    sigemptyset(&drain_action.sa_mask);
    drain_action.sa_flags = 0;
    ::sigaction(SIGTERM, &drain_action, nullptr);
    ::sigaction(SIGINT, &drain_action, nullptr);
#endif

    // Worker callbacks interleave with main-loop responses, so
    // every frame write goes through one mutex + flush.  Declared
    // before the server: if the read loop exits, unwinding runs
    // CompileServer's destructor (stop() drains queued requests
    // through their response callbacks) while these still exist.
    // Writes are firewalled: with SIGPIPE ignored, a vanished client
    // turns into an IoError here, which is logged once and survived.
    sync::Mutex out_mutex;
    std::uint64_t write_failures = 0; // under out_mutex
    const auto write_payload = [&](const std::string &bytes) {
        sync::MutexLock lock(out_mutex);
        const Status wrote = exceptionBoundary("frame write", [&] {
            serve::writeFrame(std::cout, bytes);
            std::cout.flush();
        });
        if (!wrote.ok() && write_failures++ == 0)
            std::fprintf(stderr,
                         "qaoa_serve: response write failed (%s); "
                         "client gone? continuing\n",
                         wrote.toString().c_str());
    };
    const auto write_response = [&](const serve::ServeResponse &r) {
        write_payload(serve::encodeResponse(r));
    };

    // Malformed-payload answer: the diagnostic code and (for framing /
    // decode failures) the byte offset travel with the message, so a
    // client can pinpoint the broken byte without grepping prose.
    const auto answer_error = [&](const std::string &id,
                                  const Status &status) {
        serve::ServeResponse err;
        err.type = "error";
        err.id = id;
        err.error = status.message();
        err.error_code = errorCodeName(status.code());
        err.error_offset = status.offset();
        write_response(err);
    };

    serve::CompileServer server(config);
    server.start();
    const auto loaded = server.stats().cache;
    std::fprintf(stderr,
                 "qaoa_serve: %d workers, queue %zu, cache %s "
                 "(%zu entries loaded, %llu quarantined, %llu scrub-"
                 "healed)\n",
                 config.workers, config.queue_capacity,
                 config.cache_dir.empty() ? "memory-only"
                                          : config.cache_dir.c_str(),
                 loaded.entries,
                 static_cast<unsigned long long>(loaded.quarantined),
                 static_cast<unsigned long long>(loaded.scrub_healed));

    std::string payload;
    bool shutdown = false;
    bool drain = false;
    while (!shutdown) {
        if (g_drain_signal != 0) {
            drain = true;
            break;
        }
        const Status frame = serve::readFrame(std::cin, payload);
        if (g_drain_signal != 0) {
            // The signal interrupted the blocked read (EINTR, no
            // SA_RESTART); whatever Status came back, drain wins.
            drain = true;
            break;
        }
        if (frame.code() == ErrorCode::EndOfStream)
            break; // Clean client disconnect.
        if (!frame.ok()) {
            // A torn or oversized frame means the byte stream itself
            // is unusable; there is no client left to answer.
            std::fprintf(stderr, "qaoa_serve: fatal: %s\n",
                         frame.toString().c_str());
            return 1;
        }
        const StatusOr<kv::Record> parsed = kv::tryParse(payload);
        if (!parsed.ok()) {
            answer_error("", parsed.status());
            continue;
        }
        const kv::Record &rec = parsed.value();
        const std::string type = rec.get("type", "");
        const std::string id = rec.get("id", "");
        if (type == "compile") {
            StatusOr<serve::CompileRequest> request =
                serve::tryRequestFromRecord(rec, config.max_nodes);
            if (!request.ok()) {
                answer_error(id, request.status());
                continue;
            }
            // Submission runs cache lookups and response callbacks
            // inline; an escapee here is answered, not fatal — the
            // daemon must outlive any single request.
            const Status submitted =
                exceptionBoundary("submit", [&] {
                    server.submit(std::move(request).value(),
                                  write_response);
                });
            if (!submitted.ok())
                answer_error(id, submitted);
        } else if (type == "cancel") {
            server.cancel(id); // Fire-and-forget.
        } else if (type == "stats") {
            write_payload(statsPayload(server.stats(),
                                       server.cacheRef().policyName()));
        } else if (type == "health") {
            write_payload(healthPayload(server.stats(), id));
        } else if (type == "shutdown") {
            shutdown = true;
        } else {
            answer_error(id, Status(ErrorCode::InvalidArgument,
                                    "unknown message type: " + type));
        }
    }

    if (drain) {
        std::fprintf(stderr,
                     "qaoa_serve: signal %d: draining (admissions "
                     "closed, answering in-flight requests)\n",
                     static_cast<int>(g_drain_signal));
        server.drain();
    } else {
        server.stop();
    }
    const serve::ServerStats final_stats = server.stats();
    std::fprintf(
        stderr,
        "qaoa_serve: served %llu (hits %llu, compiled %llu, shed "
        "%llu, cancelled %llu, errors %llu), cache hit rate %.2f%s\n",
        static_cast<unsigned long long>(final_stats.received),
        static_cast<unsigned long long>(final_stats.cache_hits),
        static_cast<unsigned long long>(final_stats.compiled),
        static_cast<unsigned long long>(final_stats.shed),
        static_cast<unsigned long long>(final_stats.cancelled),
        static_cast<unsigned long long>(final_stats.errors),
        final_stats.cache.hitRate(), drain ? " (drained)" : "");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return toolMain("qaoa_serve", [&] { return runDaemon(argc, argv); });
}
