/** @file Tests for the OpenQASM parser and export round-trips. */

#include <gtest/gtest.h>

#include <numbers>

#include "circuit/qasm.hpp"
#include "circuit/qasm_parser.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "hardware/devices.hpp"
#include "qaoa/api.hpp"
#include "test_util.hpp"

namespace qaoa::circuit {
namespace {

const char *kHeader = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n";

TEST(QasmParser, MinimalProgram)
{
    Circuit c = parseQasm(std::string(kHeader) +
                          "qreg q[2];\ncreg c[2];\nh q[0];\n"
                          "cx q[0],q[1];\nmeasure q[1] -> c[1];\n");
    EXPECT_EQ(c.numQubits(), 2);
    ASSERT_EQ(c.gateCount(), 3);
    EXPECT_EQ(c.gates()[0], Gate::h(0));
    EXPECT_EQ(c.gates()[1], Gate::cnot(0, 1));
    EXPECT_EQ(c.gates()[2], Gate::measure(1, 1));
}

TEST(QasmParser, ParsesAngleExpressions)
{
    Circuit c = parseQasm(std::string(kHeader) +
                          "qreg q[1];\n"
                          "rz(0.5) q[0];\n"
                          "rz(pi) q[0];\n"
                          "rz(-pi/2) q[0];\n"
                          "rz(3*pi/4) q[0];\n"
                          "u2(0,pi) q[0];\n");
    ASSERT_EQ(c.gateCount(), 5);
    EXPECT_DOUBLE_EQ(c.gates()[0].params[0], 0.5);
    EXPECT_DOUBLE_EQ(c.gates()[1].params[0], std::numbers::pi);
    EXPECT_DOUBLE_EQ(c.gates()[2].params[0], -std::numbers::pi / 2.0);
    EXPECT_DOUBLE_EQ(c.gates()[3].params[0],
                     3.0 * std::numbers::pi / 4.0);
    EXPECT_DOUBLE_EQ(c.gates()[4].params[1], std::numbers::pi);
}

TEST(QasmParser, CommentsAndBarriers)
{
    Circuit c = parseQasm(std::string(kHeader) +
                          "// a comment line\n"
                          "qreg q[1];\n"
                          "h q[0]; // trailing comment\n"
                          "barrier q;\n"
                          "h q[0];\n");
    EXPECT_EQ(c.gateCount(), 2);
    EXPECT_EQ(c.countType(GateType::BARRIER), 1);
    EXPECT_EQ(c.depth(), 2); // barrier kept them sequential
}

TEST(QasmParser, RejectsMalformedInput)
{
    EXPECT_THROW(parseQasm("qreg q[2];\n"), std::runtime_error); // no hdr
    EXPECT_THROW(parseQasm("OPENQASM 3.0;\nqreg q[1];\n"),
                 std::runtime_error);
    EXPECT_THROW(parseQasm(std::string(kHeader) + "h q[0];\n"),
                 std::runtime_error); // gate before qreg
    EXPECT_THROW(parseQasm(std::string(kHeader) +
                           "qreg q[1];\nh q[0]\n"),
                 std::runtime_error); // missing semicolon
    EXPECT_THROW(parseQasm(std::string(kHeader) +
                           "qreg q[1];\nfoo q[0];\n"),
                 std::runtime_error); // unknown gate
    EXPECT_THROW(parseQasm(std::string(kHeader) +
                           "qreg q[1];\nrz(0.2 q[0];\n"),
                 std::runtime_error); // unbalanced paren
    EXPECT_THROW(parseQasm(std::string(kHeader) +
                           "qreg q[1];\ncx q[0];\n"),
                 std::runtime_error); // wrong arity
}

TEST(QasmParser, RejectsMalformedNumbers)
{
    // Every numeric conversion is checked: malformed indices, sizes and
    // angles must surface as parser diagnostics (std::runtime_error
    // with the line number), never as an escaped std::invalid_argument.
    auto expect_diag = [](const std::string &body, const char *line_tag) {
        try {
            (void)parseQasm(std::string(kHeader) + body);
            FAIL() << "accepted malformed input: " << body;
        } catch (const std::runtime_error &e) {
            EXPECT_NE(std::string(e.what()).find(line_tag),
                      std::string::npos)
                << "diagnostic '" << e.what()
                << "' lacks line tag for: " << body;
        } catch (...) {
            FAIL() << "non-diagnostic exception escaped for: " << body;
        }
    };
    expect_diag("qreg q[abc];\n", "line 3");            // bad qreg size
    expect_diag("qreg q[1x];\n", "line 3");             // trailing junk
    expect_diag("qreg q[2];\nh q[abc];\n", "line 4");   // bad operand
    expect_diag("qreg q[2];\nh q[0x];\n", "line 4");    // stoi truncation
    expect_diag("qreg q[2];\nh q[-1];\n", "line 4");    // negative index
    expect_diag("qreg q[2];\nrx(bogus) q[0];\n", "line 4"); // bad angle
    expect_diag("qreg q[2];\nrx(1.5e) q[0];\n", "line 4");
    expect_diag("qreg q[2];\ncreg c[2];\nmeasure q[0] -> c[xyz];\n",
                "line 5"); // bad classical index
    expect_diag("qreg q[99999999999999999999];\n", "line 3"); // overflow
}

TEST(QasmParser, RejectsOversizedRegisters)
{
    // Default cap: 30 qubits covers every device in hardware/devices.hpp
    // with headroom; a (possibly hostile) QASM file declaring more is
    // rejected up front with the offending line, instead of attempting
    // a multi-gigabyte register allocation downstream.
    EXPECT_NO_THROW(parseQasm(std::string(kHeader) + "qreg q[30];\n"));
    try {
        (void)parseQasm(std::string(kHeader) + "qreg q[31];\n");
        FAIL() << "accepted a 31-qubit qreg under the default cap";
    } catch (const std::runtime_error &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("line 3"), std::string::npos) << what;
        EXPECT_NE(what.find("31"), std::string::npos) << what;
        EXPECT_NE(what.find("max_qubits"), std::string::npos) << what;
    }
}

TEST(QasmParser, QubitCapIsConfigurable)
{
    QasmParseOptions wide;
    wide.max_qubits = 40;
    EXPECT_NO_THROW(
        parseQasm(std::string(kHeader) + "qreg q[36];\n", wide));

    QasmParseOptions narrow;
    narrow.max_qubits = 4;
    EXPECT_THROW(parseQasm(std::string(kHeader) + "qreg q[5];\n", narrow),
                 std::runtime_error);
    EXPECT_NO_THROW(
        parseQasm(std::string(kHeader) + "qreg q[4];\n", narrow));

    QasmParseOptions invalid;
    invalid.max_qubits = 0;
    EXPECT_THROW(parseQasm(std::string(kHeader) + "qreg q[1];\n", invalid),
                 std::runtime_error);
}

TEST(QasmParser, RejectsOutOfRangeOperands)
{
    auto expect_diag = [](const std::string &body, const char *line_tag) {
        try {
            (void)parseQasm(std::string(kHeader) + body);
            FAIL() << "accepted out-of-range operand: " << body;
        } catch (const std::runtime_error &e) {
            const std::string what = e.what();
            EXPECT_NE(what.find(line_tag), std::string::npos) << what;
            EXPECT_NE(what.find("outside qreg"), std::string::npos)
                << what;
        }
    };
    expect_diag("qreg q[2];\nh q[2];\n", "line 4");
    expect_diag("qreg q[2];\ncx q[0],q[5];\n", "line 4");
    expect_diag("qreg q[2];\ncreg c[2];\nmeasure q[3] -> c[0];\n",
                "line 5");
}

TEST(QasmParser, RoundTripPreservesGateList)
{
    Rng rng(5);
    Circuit c(4);
    c.add(Gate::h(0));
    c.add(Gate::u3(1, 0.1, 0.2, 0.3));
    c.add(Gate::cnot(0, 2));
    c.add(Gate::cz(1, 3));
    c.add(Gate::swap(2, 3));
    c.add(Gate::rx(0, 1.5));
    c.add(Gate::barrier());
    c.add(Gate::measure(0, 0));
    Circuit back = parseQasm(toQasm(c));
    EXPECT_EQ(back.numQubits(), c.numQubits());
    ASSERT_EQ(back.gates().size(), c.gates().size());
    for (std::size_t i = 0; i < c.gates().size(); ++i)
        EXPECT_EQ(back.gates()[i].type, c.gates()[i].type) << i;
}

TEST(QasmParser, RoundTripPreservesSemantics)
{
    // CPHASE is exported as cx-rz-cx, so compare distributions, not
    // gate lists.
    Rng rng(6);
    for (int trial = 0; trial < 5; ++trial) {
        Circuit c(4);
        for (int i = 0; i < 25; ++i) {
            int a = rng.uniformInt(0, 3), b = rng.uniformInt(0, 3);
            if (a == b)
                c.add(Gate::u3(a, rng.uniformReal(0, 3),
                               rng.uniformReal(0, 3),
                               rng.uniformReal(0, 3)));
            else
                c.add(Gate::cphase(a, b, rng.uniformReal(0, 3)));
        }
        Circuit back = parseQasm(toQasm(c));
        EXPECT_TRUE(testutil::equivalentUpToGlobalPhase(c, back))
            << "trial " << trial;
    }
}

TEST(QasmParser, RoundTripCompiledQaoaCircuit)
{
    // Full pipeline round trip: compile, export, parse, same output
    // distribution.
    Rng rng(7);
    graph::Graph g = graph::erdosRenyi(6, 0.5, rng);
    if (g.numEdges() == 0)
        g.addEdge(0, 1);
    hw::CouplingMap melbourne = hw::ibmqMelbourne15();
    core::QaoaCompileOptions opts;
    opts.method = core::Method::Ic;
    transpiler::CompileResult r =
        core::compileQaoaMaxcut(g, melbourne, opts);
    Circuit back = parseQasm(toQasm(r.compiled));
    auto expected = testutil::exactClassicalDistribution(r.compiled);
    auto actual = testutil::exactClassicalDistribution(back);
    EXPECT_LT(testutil::totalVariation(expected, actual), 1e-9);
}

} // namespace
} // namespace qaoa::circuit
