/** @file Tests for the NAIVE (random) and GreedyV baseline layouts. */

#include <gtest/gtest.h>

#include <set>

#include "hardware/devices.hpp"
#include "transpiler/layout_passes.hpp"

namespace qaoa::transpiler {
namespace {

TEST(RandomLayout, ValidAndDistinct)
{
    hw::CouplingMap tokyo = hw::ibmqTokyo20();
    Rng rng(8);
    for (int trial = 0; trial < 20; ++trial) {
        Layout l = randomLayout(12, tokyo, rng);
        EXPECT_EQ(l.numLogical(), 12);
        std::set<int> used;
        for (int i = 0; i < 12; ++i) {
            int p = l.physicalOf(i);
            EXPECT_GE(p, 0);
            EXPECT_LT(p, 20);
            EXPECT_TRUE(used.insert(p).second);
        }
    }
}

TEST(RandomLayout, CoversDifferentPlacements)
{
    hw::CouplingMap tokyo = hw::ibmqTokyo20();
    Rng rng(8);
    std::set<int> first_placements;
    for (int trial = 0; trial < 40; ++trial)
        first_placements.insert(randomLayout(5, tokyo, rng).physicalOf(0));
    EXPECT_GT(first_placements.size(), 5u);
}

TEST(RandomLayout, RejectsOversizedProgram)
{
    hw::CouplingMap lin = hw::linearDevice(4);
    Rng rng(8);
    EXPECT_THROW(randomLayout(5, lin, rng), std::runtime_error);
}

TEST(GreedyV, HeaviestQubitGetsHighestDegree)
{
    hw::CouplingMap tokyo = hw::ibmqTokyo20();
    // Logical qubit 2 is heaviest, then 0, then 1.
    std::vector<int> ops{3, 1, 5};
    Layout l = greedyVLayout(ops, tokyo);
    int deg2 = tokyo.graph().degree(l.physicalOf(2));
    int deg0 = tokyo.graph().degree(l.physicalOf(0));
    int deg1 = tokyo.graph().degree(l.physicalOf(1));
    EXPECT_GE(deg2, deg0);
    EXPECT_GE(deg0, deg1);
    // The heaviest logical qubit sits on a maximum-degree qubit (6 on
    // tokyo).
    EXPECT_EQ(deg2, tokyo.graph().maxDegree());
}

TEST(GreedyV, DeterministicForFixedInput)
{
    hw::CouplingMap melbourne = hw::ibmqMelbourne15();
    std::vector<int> ops{2, 2, 4, 1};
    Layout a = greedyVLayout(ops, melbourne);
    Layout b = greedyVLayout(ops, melbourne);
    EXPECT_EQ(a, b);
}

TEST(GreedyV, ValidLayout)
{
    hw::CouplingMap melbourne = hw::ibmqMelbourne15();
    std::vector<int> ops(10, 1);
    Layout l = greedyVLayout(ops, melbourne);
    std::set<int> used;
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(used.insert(l.physicalOf(i)).second);
}

TEST(GreedyV, RejectsOversizedProgram)
{
    hw::CouplingMap lin = hw::linearDevice(3);
    EXPECT_THROW(greedyVLayout(std::vector<int>(4, 1), lin),
                 std::runtime_error);
}

} // namespace
} // namespace qaoa::transpiler
