/** @file Tests for the compile pipeline driver. */

#include <gtest/gtest.h>

#include "circuit/decompose.hpp"
#include "hardware/devices.hpp"
#include "transpiler/compiler.hpp"
#include "verify/verifier.hpp"

namespace qaoa::transpiler {
namespace {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateType;

Circuit
bellWithMeasures()
{
    Circuit c(2);
    c.add(Gate::h(0));
    c.add(Gate::cnot(0, 1));
    c.add(Gate::measure(0, 0));
    c.add(Gate::measure(1, 1));
    return c;
}

TEST(Compiler, ProducesBasisCircuitByDefault)
{
    hw::CouplingMap lin = hw::linearDevice(3);
    const Circuit logical = bellWithMeasures();
    CompileResult r = compileCircuit(logical, lin, Layout::identity(2, 3));
    EXPECT_TRUE(circuit::isBasisCircuit(r.compiled));
    // verifyRouted subsumes the old satisfiesCoupling() spot-check: gate
    // preservation, coupling conformance and mapping replay in one pass.
    verify::VerifyReport report = verify::verifyRouted(
        logical, r.physical, lin, Layout::identity(2, 3).logToPhys(),
        r.final_layout.logToPhys());
    EXPECT_TRUE(report.clean()) << report.summary();
    EXPECT_EQ(r.compiled.countType(GateType::MEASURE), 2);
}

TEST(Compiler, NoDecomposeKeepsHighLevelGates)
{
    hw::CouplingMap lin = hw::linearDevice(3);
    CompileOptions opts;
    opts.decompose_to_basis = false;
    CompileResult r = compileCircuit(bellWithMeasures(), lin,
                                     Layout::identity(2, 3), opts);
    EXPECT_EQ(r.compiled.countType(GateType::H), 1);
    EXPECT_EQ(r.compiled.countType(GateType::CNOT), 1);
}

TEST(Compiler, MeasuresMappedThroughFinalLayout)
{
    // Force routing: CNOT between the ends of a 3-qubit chain.
    hw::CouplingMap lin = hw::linearDevice(3);
    Circuit c(2);
    c.add(Gate::cnot(0, 1));
    c.add(Gate::measure(0, 0));
    c.add(Gate::measure(1, 1));
    Layout init({0, 2}, 3); // logical 0 -> phys 0, logical 1 -> phys 2
    CompileOptions opts;
    opts.decompose_to_basis = false;
    CompileResult r = compileCircuit(c, lin, init, opts);
    // Each measure's classical bit keeps the logical index and its qubit
    // is the final physical home of that logical qubit.
    int found = 0;
    for (const Gate &g : r.compiled.gates()) {
        if (g.type != GateType::MEASURE)
            continue;
        ++found;
        EXPECT_EQ(g.q0, r.final_layout.physicalOf(g.cbit));
    }
    EXPECT_EQ(found, 2);
}

TEST(Compiler, ReportMetricsConsistent)
{
    hw::CouplingMap grid = hw::gridDevice(2, 3);
    CompileResult r = compileCircuit(bellWithMeasures(), grid,
                                     Layout::identity(2, 6));
    EXPECT_EQ(r.report.depth, r.compiled.depth());
    EXPECT_EQ(r.report.gate_count, r.compiled.gateCount());
    EXPECT_EQ(r.report.cx_count, r.compiled.countType(GateType::CNOT));
    EXPECT_GE(r.report.compile_seconds, 0.0);
}

TEST(Compiler, RejectsGateAfterMeasurement)
{
    hw::CouplingMap lin = hw::linearDevice(2);
    Circuit c(2);
    c.add(Gate::measure(0, 0));
    c.add(Gate::h(0));
    EXPECT_THROW(compileCircuit(c, lin, Layout::identity(2, 2)),
                 std::runtime_error);
}

TEST(Compiler, GateAfterMeasureOnOtherQubitIsFine)
{
    hw::CouplingMap lin = hw::linearDevice(2);
    Circuit c(2);
    c.add(Gate::measure(0, 0));
    c.add(Gate::h(1));
    c.add(Gate::measure(1, 1));
    EXPECT_NO_THROW(compileCircuit(c, lin, Layout::identity(2, 2)));
}

TEST(Compiler, SwapCountReflectsRouting)
{
    hw::CouplingMap lin = hw::linearDevice(5);
    Circuit c(2);
    c.add(Gate::cnot(0, 1));
    Layout far({0, 4}, 5);
    CompileResult r = compileCircuit(c, lin, far);
    EXPECT_GE(r.report.swap_count, 3);
    // Each SWAP contributes 3 CNOTs after decomposition, plus the gate's
    // own CNOT.
    EXPECT_EQ(r.report.cx_count, 3 * r.report.swap_count + 1);
    // The routing that produced those SWAPs must certify: same gates on
    // legal edges, replayed mapping equal to the reported one.
    verify::VerifyReport report = verify::verifyRouted(
        c, r.physical, lin, far.logToPhys(), r.final_layout.logToPhys());
    EXPECT_TRUE(report.clean()) << report.summary();
}

} // namespace
} // namespace qaoa::transpiler
