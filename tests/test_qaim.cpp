/** @file
 * Tests for QAIM (§IV-A), including the Fig. 3 worked example on
 * ibmq_20_tokyo and placement-quality properties against random layouts.
 */

#include <gtest/gtest.h>

#include <set>

#include "graph/generators.hpp"
#include "hardware/devices.hpp"
#include "qaoa/qaim.hpp"
#include "transpiler/layout_passes.hpp"

namespace qaoa::core {
namespace {

/** The Fig. 3(c) toy cost Hamiltonian (also used in Fig. 5). */
std::vector<ZZOp>
figure3Program()
{
    return {{0, 2}, {1, 4}, {0, 1}, {0, 3}, {0, 4}, {1, 2}, {3, 4}};
}

TEST(Qaim, Figure3Example)
{
    hw::CouplingMap tokyo = hw::ibmqTokyo20();
    Rng rng(3);
    transpiler::Layout l = qaimLayout(figure3Program(), 5, tokyo, rng);

    // Example 1: q0 goes to one of the two strength-18 qubits (7 or 12),
    // and q1 — q0's logical neighbor — takes the other one (the highest
    // strength/distance candidate adjacent to q0).
    std::set<int> heavy{l.physicalOf(0), l.physicalOf(1)};
    EXPECT_EQ(heavy, (std::set<int>{7, 12}));

    // q4 neighbors both q0 and q1, so it lands on a common physical
    // neighbor of 7 and 12 — qubit 8 or 13 (Example 1 picks 8).
    int p4 = l.physicalOf(4);
    EXPECT_TRUE(p4 == 8 || p4 == 13) << "q4 placed at " << p4;
    EXPECT_EQ(tokyo.distance(p4, 7), 1);
    EXPECT_EQ(tokyo.distance(p4, 12), 1);
}

TEST(Qaim, LayoutIsValid)
{
    hw::CouplingMap melbourne = hw::ibmqMelbourne15();
    Rng inst_rng(12);
    for (int trial = 0; trial < 10; ++trial) {
        graph::Graph g = graph::erdosRenyi(10, 0.4, inst_rng);
        Rng rng(static_cast<std::uint64_t>(trial));
        transpiler::Layout l =
            qaimLayout(costOperations(g), 10, melbourne, rng);
        EXPECT_EQ(l.numLogical(), 10);
        std::set<int> used;
        for (int i = 0; i < 10; ++i)
            EXPECT_TRUE(used.insert(l.physicalOf(i)).second);
    }
}

TEST(Qaim, HeaviestQubitGetsStrongestSite)
{
    hw::CouplingMap tokyo = hw::ibmqTokyo20();
    // Star graph: node 0 touches everything.
    graph::Graph star(6);
    for (int v = 1; v < 6; ++v)
        star.addEdge(0, v);
    Rng rng(4);
    transpiler::Layout l =
        qaimLayout(costOperations(star), 6, tokyo, rng);
    EXPECT_TRUE(l.physicalOf(0) == 7 || l.physicalOf(0) == 12);
}

TEST(Qaim, PlacesLogicalNeighborsCloserThanRandom)
{
    // Mean physical distance between logically-coupled qubits: QAIM
    // should beat random placement on sparse graphs (the §V-C setting).
    hw::CouplingMap tokyo = hw::ibmqTokyo20();
    Rng inst_rng(900);
    double qaim_total = 0.0, random_total = 0.0;
    int pairs = 0;
    for (int trial = 0; trial < 15; ++trial) {
        graph::Graph g = graph::randomRegular(14, 3, inst_rng);
        std::vector<ZZOp> ops = costOperations(g);
        Rng rng_q(static_cast<std::uint64_t>(trial) + 1);
        Rng rng_r(static_cast<std::uint64_t>(trial) + 1000);
        transpiler::Layout lq = qaimLayout(ops, 14, tokyo, rng_q);
        transpiler::Layout lr =
            transpiler::randomLayout(14, tokyo, rng_r);
        for (const ZZOp &op : ops) {
            qaim_total += tokyo.distance(lq.physicalOf(op.a),
                                         lq.physicalOf(op.b));
            random_total += tokyo.distance(lr.physicalOf(op.a),
                                           lr.physicalOf(op.b));
            ++pairs;
        }
    }
    ASSERT_GT(pairs, 0);
    EXPECT_LT(qaim_total / pairs, random_total / pairs);
}

TEST(Qaim, WorksWhenProgramFillsDevice)
{
    hw::CouplingMap grid = hw::gridDevice(3, 3);
    Rng inst_rng(31);
    graph::Graph g = graph::erdosRenyi(9, 0.5, inst_rng);
    Rng rng(6);
    transpiler::Layout l = qaimLayout(costOperations(g), 9, grid, rng);
    std::set<int> used;
    for (int i = 0; i < 9; ++i)
        used.insert(l.physicalOf(i));
    EXPECT_EQ(used.size(), 9u);
}

TEST(Qaim, HandlesEdgelessProgram)
{
    hw::CouplingMap lin = hw::linearDevice(5);
    Rng rng(7);
    transpiler::Layout l = qaimLayout({}, 3, lin, rng);
    EXPECT_EQ(l.numLogical(), 3);
}

TEST(Qaim, RejectsOversizedProgram)
{
    hw::CouplingMap lin = hw::linearDevice(3);
    Rng rng(8);
    EXPECT_THROW(qaimLayout({{0, 1}}, 4, lin, rng), std::runtime_error);
}

TEST(Qaim, DeterministicForFixedSeed)
{
    hw::CouplingMap tokyo = hw::ibmqTokyo20();
    Rng a(42), b(42);
    transpiler::Layout la = qaimLayout(figure3Program(), 5, tokyo, a);
    transpiler::Layout lb = qaimLayout(figure3Program(), 5, tokyo, b);
    EXPECT_EQ(la, lb);
}

} // namespace
} // namespace qaoa::core
