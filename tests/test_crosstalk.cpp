/** @file Tests for the crosstalk sequentialization pass (§VI). */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "hardware/devices.hpp"
#include "test_util.hpp"
#include "transpiler/crosstalk.hpp"

namespace qaoa::transpiler {
namespace {

using circuit::Circuit;
using circuit::Gate;

TEST(Crosstalk, CountsParallelConflicts)
{
    // Two CNOTs on couplings {0,1} and {2,3} in the same ASAP layer.
    Circuit c(4);
    c.add(Gate::cnot(0, 1));
    c.add(Gate::cnot(2, 3));
    std::vector<CrosstalkPair> pairs{{{0, 1}, {2, 3}}};
    EXPECT_EQ(countCrosstalkViolations(c, pairs), 1);
    // Reversed operand order still matches (couplings are undirected).
    std::vector<CrosstalkPair> rev{{{1, 0}, {3, 2}}};
    EXPECT_EQ(countCrosstalkViolations(c, rev), 1);
}

TEST(Crosstalk, SequentialGatesDoNotConflict)
{
    Circuit c(4);
    c.add(Gate::cnot(0, 1));
    c.add(Gate::barrier());
    c.add(Gate::cnot(2, 3));
    std::vector<CrosstalkPair> pairs{{{0, 1}, {2, 3}}};
    EXPECT_EQ(countCrosstalkViolations(c, pairs), 0);
}

TEST(Crosstalk, UnrelatedCouplingsIgnored)
{
    Circuit c(6);
    c.add(Gate::cnot(0, 1));
    c.add(Gate::cnot(4, 5));
    std::vector<CrosstalkPair> pairs{{{0, 1}, {2, 3}}};
    EXPECT_EQ(countCrosstalkViolations(c, pairs), 0);
}

TEST(Crosstalk, SequentializeRemovesViolations)
{
    Circuit c(4);
    c.add(Gate::cnot(0, 1));
    c.add(Gate::cnot(2, 3));
    std::vector<CrosstalkPair> pairs{{{0, 1}, {2, 3}}};
    Circuit fixed = sequentializeCrosstalk(c, pairs);
    EXPECT_EQ(countCrosstalkViolations(fixed, pairs), 0);
    // Both gates survive; the schedule got one layer deeper.
    EXPECT_EQ(fixed.countType(circuit::GateType::CNOT), 2);
    EXPECT_EQ(fixed.depth(), 2);
}

TEST(Crosstalk, NoPairsMeansNoChangeInDepth)
{
    Rng rng(12);
    Circuit c(6);
    for (int i = 0; i < 40; ++i) {
        int a = rng.uniformInt(0, 5), b = rng.uniformInt(0, 5);
        if (a != b)
            c.add(Gate::cnot(a, b));
        else
            c.add(Gate::h(a));
    }
    Circuit fixed = sequentializeCrosstalk(c, {});
    EXPECT_EQ(fixed.depth(), c.depth());
    EXPECT_EQ(fixed.gateCount(), c.gateCount());
}

TEST(Crosstalk, SemanticsPreserved)
{
    Rng rng(13);
    for (int trial = 0; trial < 5; ++trial) {
        Circuit c(5);
        for (int i = 0; i < 30; ++i) {
            int a = rng.uniformInt(0, 4), b = rng.uniformInt(0, 4);
            if (a != b)
                c.add(Gate::cphase(a, b, rng.uniformReal(0, 3)));
            else
                c.add(Gate::h(a));
        }
        std::vector<CrosstalkPair> pairs{{{0, 1}, {2, 3}},
                                         {{1, 2}, {3, 4}}};
        Circuit fixed = sequentializeCrosstalk(c, pairs);
        EXPECT_EQ(countCrosstalkViolations(fixed, pairs), 0);
        EXPECT_TRUE(testutil::equivalentUpToGlobalPhase(c, fixed));
    }
}

TEST(Crosstalk, OnlyAFewCouplingsAreProne)
{
    // The Murali et al. observation baked into a test: marking a small
    // subset of a real device's couplings leaves most parallelism
    // intact — depth grows by far less than full serialization.
    hw::CouplingMap melbourne = hw::ibmqMelbourne15();
    Rng rng(14);
    Circuit c(15);
    for (int i = 0; i < 60; ++i) {
        const auto &edges = melbourne.graph().edges();
        const auto &e = edges[rng.index(edges.size())];
        c.add(Gate::cnot(e.u, e.v));
    }
    std::vector<CrosstalkPair> pairs{{{0, 1}, {1, 2}},
                                     {{13, 12}, {12, 11}}};
    Circuit fixed = sequentializeCrosstalk(c, pairs);
    EXPECT_EQ(countCrosstalkViolations(fixed, pairs), 0);
    EXPECT_LE(fixed.depth(), c.depth() * 2);
    EXPECT_LT(fixed.depth(), c.gateCount()); // not fully serialized
}

TEST(Crosstalk, CountAgreesWithAnalysisFindingsSeeded)
{
    // countCrosstalkViolations() delegates to the analysis rule engine;
    // each counted violation must surface as one located QL111 finding.
    Rng rng(15);
    for (int trial = 0; trial < 10; ++trial) {
        Circuit c(6);
        for (int i = 0; i < 40; ++i) {
            int a = rng.uniformInt(0, 5), b = rng.uniformInt(0, 5);
            if (a != b)
                c.add(Gate::cnot(a, b));
            else if (i % 9 == 0)
                c.add(Gate::barrier());
        }
        std::vector<CrosstalkPair> pairs{{{0, 1}, {2, 3}},
                                         {{1, 2}, {4, 5}}};
        auto findings = analysis::findCrosstalkClashes(c, pairs);
        EXPECT_EQ(countCrosstalkViolations(c, pairs),
                  static_cast<int>(findings.size()));
        for (const analysis::Finding &f : findings) {
            EXPECT_EQ(f.rule, analysis::Rule::CrosstalkClash);
            EXPECT_GE(f.layer, 0);
            EXPECT_GE(f.gate_index, 0);
        }
    }
}

TEST(Crosstalk, SequentializeFixesRandomCircuitsSeeded)
{
    Rng rng(16);
    for (int trial = 0; trial < 10; ++trial) {
        Circuit c(6);
        for (int i = 0; i < 50; ++i) {
            int a = rng.uniformInt(0, 5), b = rng.uniformInt(0, 5);
            if (a != b)
                c.add(Gate::cnot(a, b));
        }
        std::vector<CrosstalkPair> pairs{{{0, 1}, {2, 3}},
                                         {{2, 3}, {4, 5}},
                                         {{0, 1}, {4, 5}}};
        Circuit fixed = sequentializeCrosstalk(c, pairs);
        EXPECT_EQ(countCrosstalkViolations(fixed, pairs), 0);
        // The fix reschedules; it never drops or adds gates.
        EXPECT_EQ(fixed.countType(circuit::GateType::CNOT),
                  c.countType(circuit::GateType::CNOT));
    }
}

TEST(Crosstalk, MeasurementsAndBarriersSurvive)
{
    Circuit c(4);
    c.add(Gate::cnot(0, 1));
    c.add(Gate::cnot(2, 3));
    c.add(Gate::measure(0, 0));
    std::vector<CrosstalkPair> pairs{{{0, 1}, {2, 3}}};
    Circuit fixed = sequentializeCrosstalk(c, pairs);
    EXPECT_EQ(fixed.countType(circuit::GateType::MEASURE), 1);
}

} // namespace
} // namespace qaoa::transpiler
