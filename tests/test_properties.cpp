/** @file
 * Cross-cutting randomized property tests: invariants that tie several
 * modules together and must hold for every methodology, device and
 * instance.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "circuit/decompose.hpp"
#include "circuit/layers.hpp"
#include "graph/generators.hpp"
#include "graph/maxcut.hpp"
#include "hardware/devices.hpp"
#include "metrics/approx_ratio.hpp"
#include "metrics/harness.hpp"
#include "qaoa/api.hpp"
#include "qaoa/ip.hpp"
#include "sim/statevector.hpp"
#include "sim/success.hpp"

namespace qaoa {
namespace {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateType;

TEST(Properties, DepthNeverExceedsGateCount)
{
    Rng rng(1);
    for (int trial = 0; trial < 20; ++trial) {
        Circuit c(6);
        int gates = rng.uniformInt(1, 80);
        for (int i = 0; i < gates; ++i) {
            int a = rng.uniformInt(0, 5), b = rng.uniformInt(0, 5);
            if (a == b)
                c.add(Gate::h(a));
            else
                c.add(Gate::cnot(a, b));
        }
        EXPECT_LE(c.depth(), c.gateCount());
        EXPECT_GE(c.depth(), 1);
    }
}

TEST(Properties, DecomposeGateArithmetic)
{
    // After basis translation: cx = cnot + 2*cphase + 2*cz + 3*swap.
    Rng rng(2);
    for (int trial = 0; trial < 10; ++trial) {
        Circuit c(5);
        int counts[4] = {0, 0, 0, 0};
        for (int i = 0; i < 40; ++i) {
            int a = rng.uniformInt(0, 4), b = rng.uniformInt(0, 4);
            if (a == b)
                continue;
            switch (rng.uniformInt(0, 3)) {
              case 0:
                c.add(Gate::cnot(a, b));
                ++counts[0];
                break;
              case 1:
                c.add(Gate::cphase(a, b, 0.4));
                ++counts[1];
                break;
              case 2:
                c.add(Gate::cz(a, b));
                ++counts[2];
                break;
              default:
                c.add(Gate::swap(a, b));
                ++counts[3];
                break;
            }
        }
        Circuit basis = circuit::decomposeToBasis(c);
        EXPECT_EQ(basis.countType(GateType::CNOT),
                  counts[0] + 2 * counts[1] + counts[2] + 3 * counts[3]);
    }
}

TEST(Properties, CompiledCnotAccounting)
{
    // For a p-level MaxCut compile (peephole off): every CPHASE costs
    // exactly 2 CNOTs and every routing SWAP exactly 3, so
    //   cx_count == 2 * |E| * p + 3 * swap_count.
    hw::CouplingMap tokyo = hw::ibmqTokyo20();
    hw::CalibrationData calib(tokyo, 0.02);
    Rng rng(3);
    for (int trial = 0; trial < 4; ++trial) {
        graph::Graph g = graph::erdosRenyi(12, 0.35, rng);
        if (g.numEdges() == 0)
            continue;
        for (core::Method m :
             {core::Method::Naive, core::Method::GreedyV,
              core::Method::Qaim, core::Method::Ip, core::Method::Ic,
              core::Method::Vic}) {
            for (int p : {1, 2}) {
                core::QaoaCompileOptions opts;
                opts.method = m;
                opts.calibration = &calib;
                opts.seed = static_cast<std::uint64_t>(trial);
                opts.gammas.assign(static_cast<std::size_t>(p), 0.7);
                opts.betas.assign(static_cast<std::size_t>(p), 0.35);
                transpiler::CompileResult r =
                    core::compileQaoaMaxcut(g, tokyo, opts);
                EXPECT_EQ(r.report.cx_count,
                          2 * g.numEdges() * p +
                              3 * r.report.swap_count)
                    << core::methodName(m) << " p=" << p;
            }
        }
    }
}

TEST(Properties, SuccessProbabilityMonotoneInGates)
{
    hw::CouplingMap lin = hw::linearDevice(4);
    hw::CalibrationData calib(lin, 0.05, 0.01, 0.02);
    Circuit c(4);
    double last = 1.0;
    Rng rng(4);
    for (int i = 0; i < 30; ++i) {
        int a = rng.uniformInt(0, 2); // coupled neighbor is a+1
        c.add(i % 3 == 0 ? Gate::h(a) : Gate::cnot(a, a + 1));
        double sp = sim::successProbability(c, calib);
        EXPECT_LT(sp, last);
        last = sp;
    }
}

TEST(Properties, IpPreservesWeights)
{
    Rng inst_rng(5);
    graph::Graph g(8);
    Rng wrng(6);
    for (int u = 0; u < 8; ++u)
        for (int v = u + 1; v < 8; ++v)
            if (wrng.bernoulli(0.4))
                g.addEdge(u, v, wrng.uniformReal(0.5, 2.0));
    std::vector<core::ZZOp> ops = core::costOperations(g);
    Rng rng(7);
    core::IpResult r = core::ipOrder(ops, 8, rng);
    // Multiset of weights survives the re-ordering.
    std::multiset<double> before, after;
    for (const auto &op : ops)
        before.insert(op.weight);
    for (const auto &op : r.order)
        after.insert(op.weight);
    EXPECT_EQ(before, after);
}

TEST(Properties, CompiledAnglesMatchProblemWeights)
{
    // CPHASE angles in the physical circuit are exactly gamma * w(e),
    // one per edge, for every method (peephole off, no decompose).
    graph::Graph g(5);
    g.addEdge(0, 1, 1.0);
    g.addEdge(1, 2, 2.0);
    g.addEdge(2, 3, 0.5);
    g.addEdge(3, 4, 1.5);
    g.addEdge(0, 4, 0.25);
    hw::CouplingMap grid = hw::gridDevice(2, 3);
    hw::CalibrationData calib(grid, 0.02);
    const double gamma = 0.8;
    std::multiset<double> expected;
    for (const auto &e : g.edges())
        expected.insert(gamma * e.weight);
    for (core::Method m : {core::Method::Qaim, core::Method::Ip,
                           core::Method::Ic, core::Method::Vic}) {
        core::QaoaCompileOptions opts;
        opts.method = m;
        opts.calibration = &calib;
        opts.gammas = {gamma};
        opts.betas = {0.4};
        opts.decompose_to_basis = false;
        transpiler::CompileResult r =
            core::compileQaoaMaxcut(g, grid, opts);
        std::multiset<double> got;
        for (const auto &gate : r.compiled.gates())
            if (gate.type == GateType::CPHASE)
                got.insert(gate.params[0]);
        EXPECT_EQ(got, expected) << core::methodName(m);
    }
}

TEST(Properties, ShotsConservedEverywhere)
{
    Circuit c(3);
    c.add(Gate::h(0));
    c.add(Gate::cnot(0, 1));
    c.add(Gate::measure(0, 0));
    c.add(Gate::measure(1, 1));
    Rng rng(8);
    for (std::uint64_t shots : {1ULL, 17ULL, 1000ULL}) {
        sim::Counts counts = sim::runAndSample(c, shots, rng);
        std::uint64_t total = 0;
        for (const auto &[bits, n] : counts)
            total += n;
        EXPECT_EQ(total, shots);
    }
}

TEST(Properties, LayerBarriersPreserveSemanticsAndLayering)
{
    Rng rng(9);
    for (int trial = 0; trial < 8; ++trial) {
        Circuit c(5);
        for (int i = 0; i < 30; ++i) {
            int a = rng.uniformInt(0, 4), b = rng.uniformInt(0, 4);
            if (a == b)
                c.add(Gate::rx(a, 0.3));
            else
                c.add(Gate::cphase(a, b, 0.5));
        }
        Circuit layered = circuit::withLayerBarriers(c);
        EXPECT_EQ(layered.gateCount(), c.gateCount());
        EXPECT_EQ(layered.depth(), c.depth());
        EXPECT_EQ(circuit::layerCount(layered), circuit::layerCount(c));
        sim::Statevector sa(5), sb(5);
        sa.apply(c);
        sb.apply(layered);
        EXPECT_NEAR(sa.overlap(sb), 1.0, 1e-9);
    }
}

TEST(Properties, DeterministicCompilationAcrossDevices)
{
    Rng inst_rng(10);
    graph::Graph g = graph::randomRegular(10, 3, inst_rng);
    for (int kind = 0; kind < 3; ++kind) {
        hw::CouplingMap map = kind == 0   ? hw::ibmqPoughkeepsie20()
                              : kind == 1 ? hw::heavyHexFalcon27()
                                          : hw::gridDevice(4, 4);
        core::QaoaCompileOptions opts;
        opts.method = core::Method::Ic;
        opts.seed = 77;
        transpiler::CompileResult a = core::compileQaoaMaxcut(g, map,
                                                              opts);
        transpiler::CompileResult b = core::compileQaoaMaxcut(g, map,
                                                              opts);
        EXPECT_EQ(a.report.depth, b.report.depth) << map.name();
        EXPECT_EQ(a.report.gate_count, b.report.gate_count);
        EXPECT_EQ(a.final_layout, b.final_layout);
    }
}

TEST(Properties, ApproximationRatioOfOptimalSamplesIsOne)
{
    Rng rng(11);
    graph::Graph g = graph::erdosRenyi(8, 0.5, rng);
    graph::MaxCutResult best = graph::maxCutBruteForce(g);
    if (best.value == 0.0)
        return;
    sim::Counts counts;
    counts[best.assignment] = 100;
    EXPECT_NEAR(metrics::approximationRatio(g, counts, best.value), 1.0,
                1e-12);
    EXPECT_NEAR(metrics::approximationRatioGap(1.0, 1.0), 0.0, 1e-12);
}

TEST(Properties, ExpectedCutBoundedByOptimum)
{
    Rng rng(12);
    for (int trial = 0; trial < 5; ++trial) {
        graph::Graph g = graph::erdosRenyi(8, 0.5, rng);
        if (g.numEdges() == 0)
            continue;
        double optimum = graph::maxCutBruteForce(g).value;
        double e = metrics::exactExpectedCut(
            g, {rng.uniformReal(0, 3)}, {rng.uniformReal(0, 1.5)});
        EXPECT_GE(e, 0.0);
        EXPECT_LE(e, optimum + 1e-9);
    }
}

} // namespace
} // namespace qaoa
