/** @file
 * Unit and negative tests for the verify/ translation validator.
 *
 * The negative suite seeds one corruption class per test (dropped
 * interaction, illegal edge, wrong mapping, non-commuting reorder, ...)
 * and asserts the checker flags it with the expected QV rule — proving
 * the verifier is not vacuous.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <numbers>
#include <sstream>

#include "circuit/decompose.hpp"
#include "hardware/devices.hpp"
#include "verify/verifier.hpp"

namespace qaoa::verify {
namespace {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateType;

/**
 * Reference physical circuit on linearDevice(4): three logical qubits
 * {0,1,2} start on physical {0,1,2}; interactions ZZ(0,1), ZZ(1,2) run
 * in place, then SWAP(p0,p1) brings logical 0 next to logical 2 for
 * ZZ(0,2).  Final mapping: l0->p1, l1->p0, l2->p2.
 */
Circuit
referenceCircuit()
{
    Circuit c(4);
    c.add(Gate::h(0));
    c.add(Gate::h(1));
    c.add(Gate::h(2));
    c.add(Gate::cphase(0, 1, 0.7));
    c.add(Gate::cphase(1, 2, 0.7));
    c.add(Gate::swap(0, 1));
    c.add(Gate::cphase(1, 2, 0.7));
    c.add(Gate::rx(1, 0.9));
    c.add(Gate::rx(0, 0.9));
    c.add(Gate::rx(2, 0.9));
    c.add(Gate::measure(1, 0));
    c.add(Gate::measure(0, 1));
    c.add(Gate::measure(2, 2));
    return c;
}

std::vector<ZZTerm>
referenceTerms()
{
    return {{0, 1, 0.7}, {1, 2, 0.7}, {0, 2, 0.7}};
}

/** Spec matching referenceCircuit() on the 4-qubit line. */
struct Fixture
{
    hw::CouplingMap map = hw::linearDevice(4);
    std::vector<ZZTerm> terms = referenceTerms();
    VerifySpec spec;

    Fixture()
    {
        spec.map = &map;
        spec.initial_log_to_phys = {0, 1, 2};
        spec.expected_final = {1, 0, 2};
        spec.expected_interactions = &terms;
        spec.lift_basis = false;
    }
};

TEST(VerifyReport, CountsAndSummary)
{
    VerifyReport r;
    EXPECT_TRUE(r.clean());
    EXPECT_TRUE(r.spotless());
    EXPECT_EQ(r.summary(), "clean");

    r.add(Rule::IllegalCoupling, 3, 1, 0, 5, "bad edge");
    r.add(Rule::IllegalCoupling, "another");
    r.add(Rule::UnusedQubit, "idle");
    EXPECT_FALSE(r.clean());
    EXPECT_EQ(r.errorCount(), 2);
    EXPECT_EQ(r.warningCount(), 1);
    EXPECT_EQ(r.count(Rule::IllegalCoupling), 2);
    EXPECT_EQ(r.summary(), "2 errors, 1 warning (QV001 x2, QV009)");
}

TEST(VerifyReport, WarningsOnlyIsCleanButNotSpotless)
{
    VerifyReport r;
    r.add(Rule::UnusedQubit, "idle");
    EXPECT_TRUE(r.clean());
    EXPECT_FALSE(r.spotless());
}

TEST(VerifyReport, TableAndCsvRenderRuleIds)
{
    VerifyReport r;
    r.add(Rule::MappingMismatch, -1, -1, 4, 2, "detail text");
    std::ostringstream text, csv;
    r.print(text);
    r.print(csv, /*csv=*/true);
    EXPECT_NE(text.str().find("QV003"), std::string::npos);
    EXPECT_NE(text.str().find("mapping-mismatch"), std::string::npos);
    EXPECT_NE(csv.str().find("QV003"), std::string::npos);
    EXPECT_NE(text.str().find("1 error"), std::string::npos);
}

TEST(GateLayers, AsapLayersMatchDepthSemantics)
{
    Circuit c(3);
    c.add(Gate::h(0));          // layer 0
    c.add(Gate::h(1));          // layer 0
    c.add(Gate::cnot(0, 1));    // layer 1
    c.add(Gate::h(2));          // layer 0
    c.add(Gate::cnot(1, 2));    // layer 2
    std::vector<int> layers = gateLayers(c);
    ASSERT_EQ(layers.size(), 5u);
    EXPECT_EQ(layers[0], 0);
    EXPECT_EQ(layers[1], 0);
    EXPECT_EQ(layers[2], 1);
    EXPECT_EQ(layers[3], 0);
    EXPECT_EQ(layers[4], 2);
}

TEST(Replay, TracksSwapsAndInteractions)
{
    VerifyReport report;
    ReplayResult r = replayToLogical(referenceCircuit(), {0, 1, 2},
                                     /*lift_basis=*/false, report);
    EXPECT_TRUE(report.spotless());
    ASSERT_EQ(r.final_log_to_phys.size(), 3u);
    EXPECT_EQ(r.final_log_to_phys[0], 1);
    EXPECT_EQ(r.final_log_to_phys[1], 0);
    EXPECT_EQ(r.final_log_to_phys[2], 2);
    ASSERT_EQ(r.interactions.size(), 3u);
    // Third CPHASE acts on physical (1,2) after the SWAP -> logical (0,2).
    EXPECT_EQ(std::min(r.interactions[2].a, r.interactions[2].b), 0);
    EXPECT_EQ(std::max(r.interactions[2].a, r.interactions[2].b), 2);
    // SWAPs are consumed, not emitted.
    EXPECT_EQ(r.logical.countType(GateType::SWAP), 0);
}

TEST(Replay, LiftsDecomposedBasisPatterns)
{
    // decomposeToBasis turns CPHASE into CX·U1·CX and SWAP into CX·CX·CX;
    // the replay must see through both.
    Circuit basis = circuit::decomposeToBasis(referenceCircuit());
    EXPECT_EQ(basis.countType(GateType::CPHASE), 0);
    VerifyReport report;
    ReplayResult r =
        replayToLogical(basis, {0, 1, 2}, /*lift_basis=*/true, report);
    EXPECT_TRUE(report.spotless());
    EXPECT_EQ(r.interactions.size(), 3u);
    EXPECT_EQ(r.final_log_to_phys, (std::vector<int>{1, 0, 2}));
    // Nothing left unlifted: no raw CNOTs in the logical view.
    EXPECT_EQ(r.logical.countType(GateType::CNOT), 0);
}

TEST(Verify, ReferenceCircuitIsSpotless)
{
    Fixture f;
    EXPECT_TRUE(verifyCircuit(referenceCircuit(), f.spec).spotless());
}

TEST(Verify, DecomposedReferenceIsSpotlessWithLifting)
{
    Fixture f;
    f.spec.lift_basis = true;
    Circuit basis = circuit::decomposeToBasis(referenceCircuit());
    EXPECT_TRUE(verifyCircuit(basis, f.spec).spotless());
}

// ---- negative suite: one corruption class per test --------------------

TEST(VerifyNegative, DroppedInteractionIsQV004)
{
    Fixture f;
    const Circuit ref = referenceCircuit();
    Circuit c(4);
    for (const Gate &g : ref.gates())
        if (!(g.type == GateType::CPHASE && g.q0 == 1 && g.q1 == 2))
            c.add(g); // drops both CPHASEs on physical (1,2)
    VerifyReport r = verifyCircuit(c, f.spec);
    EXPECT_FALSE(r.clean());
    EXPECT_EQ(r.count(Rule::MissingInteraction), 2);
}

TEST(VerifyNegative, ExtraInteractionIsQV005)
{
    Fixture f;
    Circuit c = referenceCircuit();
    c.add(Gate::cphase(1, 2, 0.7));
    VerifyReport r = verifyCircuit(c, f.spec);
    EXPECT_GE(r.count(Rule::SpuriousInteraction), 1);
}

TEST(VerifyNegative, WrongAngleIsQV006)
{
    Fixture f;
    const Circuit ref = referenceCircuit();
    Circuit c(4);
    for (const Gate &g : ref.gates()) {
        Gate copy = g;
        if (g.type == GateType::CPHASE && g.q0 == 0)
            copy.params[0] = 0.9; // ZZ(0,1) angle corrupted
        c.add(copy);
    }
    VerifyReport r = verifyCircuit(c, f.spec);
    EXPECT_EQ(r.count(Rule::WrongAngle), 1);
    EXPECT_EQ(r.count(Rule::MissingInteraction), 0);
}

TEST(VerifyNegative, AngleEquivalentMod2PiIsAccepted)
{
    Fixture f;
    const Circuit ref = referenceCircuit();
    Circuit c(4);
    for (const Gate &g : ref.gates()) {
        Gate copy = g;
        if (g.type == GateType::CPHASE && g.q0 == 0)
            copy.params[0] += 2.0 * std::numbers::pi;
        c.add(copy);
    }
    EXPECT_TRUE(verifyCircuit(c, f.spec).spotless());
}

TEST(VerifyNegative, IllegalCouplingIsQV001)
{
    Fixture f;
    const Circuit ref = referenceCircuit();
    Circuit bad(4);
    for (const Gate &g : ref.gates()) {
        Gate copy = g;
        // Rewrite the first CPHASE onto non-adjacent line qubits (0,2).
        if (g.type == GateType::CPHASE && g.q0 == 0 && g.q1 == 1)
            copy.q1 = 2;
        bad.add(copy);
    }
    VerifyReport r = verifyCircuit(bad, f.spec);
    EXPECT_GE(r.count(Rule::IllegalCoupling), 1);
}

TEST(VerifyNegative, MaskedQubitIsQV002)
{
    Fixture f;
    std::vector<char> allowed{1, 1, 0, 1}; // physical q2 is dead
    f.spec.allowed_qubits = &allowed;
    VerifyReport r = verifyCircuit(referenceCircuit(), f.spec);
    EXPECT_GE(r.count(Rule::MaskedQubit), 1);
}

TEST(VerifyNegative, StaleMappingIsQV003)
{
    Fixture f;
    f.spec.expected_final = {0, 1, 2}; // pre-SWAP (stale) mapping
    VerifyReport r = verifyCircuit(referenceCircuit(), f.spec);
    EXPECT_EQ(r.count(Rule::MappingMismatch), 2); // l0 and l1 disagree
}

TEST(VerifyNegative, WrongSwapTargetIsCaught)
{
    Fixture f;
    const Circuit ref = referenceCircuit();
    Circuit c(4);
    for (const Gate &g : ref.gates()) {
        Gate copy = g;
        if (g.type == GateType::SWAP)
            copy = Gate::swap(1, 2); // router "meant" swap(0,1)
        c.add(copy);
    }
    VerifyReport r = verifyCircuit(c, f.spec);
    EXPECT_FALSE(r.clean());
    // The replayed mapping no longer matches the reported one, and the
    // post-SWAP CPHASE binds the wrong logical pair.
    EXPECT_GE(r.count(Rule::MappingMismatch), 1);
    EXPECT_GE(r.count(Rule::MissingInteraction), 1);
}

TEST(VerifyNegative, GateAfterMeasureIsQV007)
{
    Fixture f;
    Circuit c = referenceCircuit();
    c.add(Gate::h(1));
    VerifyReport r = verifyCircuit(c, f.spec);
    EXPECT_EQ(r.count(Rule::GateAfterMeasure), 1);
}

TEST(VerifyNegative, NanAngleIsQV008)
{
    Fixture f;
    const Circuit ref = referenceCircuit();
    Circuit c(4);
    for (const Gate &g : ref.gates()) {
        Gate copy = g;
        if (g.type == GateType::RX && g.q0 == 1)
            copy.params[0] = std::numeric_limits<double>::quiet_NaN();
        c.add(copy);
    }
    VerifyReport r = verifyCircuit(c, f.spec);
    EXPECT_EQ(r.count(Rule::BadAngle), 1);
}

TEST(VerifyNegative, UnusedMappedQubitWarnsQV009)
{
    Fixture f;
    f.spec.initial_log_to_phys = {0, 1, 2, 3}; // logical 3 on idle p3
    f.spec.expected_final = {1, 0, 2, 3};
    VerifyReport r = verifyCircuit(referenceCircuit(), f.spec);
    EXPECT_TRUE(r.clean()); // warning only
    EXPECT_FALSE(r.spotless());
    EXPECT_EQ(r.count(Rule::UnusedQubit), 1);
}

TEST(VerifyNegative, MeasureConventionIsQV011)
{
    Fixture f;
    const Circuit ref = referenceCircuit();
    Circuit c(4);
    for (const Gate &g : ref.gates()) {
        Gate copy = g;
        if (g.type == GateType::MEASURE && g.cbit == 2)
            copy.cbit = 5;
        c.add(copy);
    }
    VerifyReport r = verifyCircuit(c, f.spec);
    EXPECT_EQ(r.count(Rule::MeasureMismatch), 1);
}

TEST(VerifyNegative, DegenerateOperandsAreQV012)
{
    Fixture f;
    Circuit c = referenceCircuit();
    Gate g = Gate::cnot(1, 2);
    g.q1 = 1; // corrupt post-construction: both operands on q1
    c.add(g);
    VerifyReport r = verifyCircuit(c, f.spec);
    EXPECT_GE(r.count(Rule::OperandRange), 1);
}

TEST(VerifyNegative, GateOnUnmappedQubitIsQV013)
{
    Fixture f;
    Circuit c = referenceCircuit();
    c.add(Gate::rx(3, 0.4)); // p3 holds no logical qubit
    VerifyReport r = verifyCircuit(c, f.spec);
    EXPECT_EQ(r.count(Rule::UnmappedQubit), 1);
}

// ---- reorder certification (QV010) ------------------------------------

TEST(CheckReorder, CommutingCphaseReorderIsClean)
{
    Circuit ref(3);
    ref.add(Gate::cphase(0, 1, 0.5));
    ref.add(Gate::cphase(1, 2, 0.5));
    ref.add(Gate::cphase(0, 2, 0.5));
    Circuit obs(3);
    obs.add(Gate::cphase(0, 2, 0.5)); // CPHASEs all commute
    obs.add(Gate::cphase(0, 1, 0.5));
    obs.add(Gate::cphase(1, 2, 0.5));
    VerifyReport r;
    checkReorder(ref, obs, r);
    EXPECT_TRUE(r.spotless());
}

TEST(CheckReorder, NonCommutingExchangeIsQV010)
{
    Circuit ref(2);
    ref.add(Gate::h(0));
    ref.add(Gate::cphase(0, 1, 0.5));
    Circuit obs(2);
    obs.add(Gate::cphase(0, 1, 0.5)); // H and CPHASE do not commute
    obs.add(Gate::h(0));
    VerifyReport r;
    checkReorder(ref, obs, r);
    EXPECT_EQ(r.count(Rule::NonCommutingReorder), 1);
}

TEST(CheckReorder, MultisetMismatchSurfaces)
{
    Circuit ref(2);
    ref.add(Gate::cphase(0, 1, 0.5));
    ref.add(Gate::h(0));
    Circuit obs(2);
    obs.add(Gate::cphase(0, 1, 0.5));
    obs.add(Gate::h(1)); // wrong qubit
    VerifyReport r;
    checkReorder(ref, obs, r);
    EXPECT_GE(r.count(Rule::SpuriousInteraction), 1);
    EXPECT_GE(r.count(Rule::MissingInteraction), 1);
}

TEST(CheckReorder, SymmetricOperandOrderDoesNotMatter)
{
    Circuit ref(2);
    ref.add(Gate::cphase(0, 1, 0.5));
    Circuit obs(2);
    obs.add(Gate::cphase(1, 0, 0.5));
    VerifyReport r;
    checkReorder(ref, obs, r);
    EXPECT_TRUE(r.spotless());
}

} // namespace
} // namespace qaoa::verify
