/** @file
 * Tests for the QL rule engine: every rule fires on a seeded corruption,
 * healthy compiles stay clean, and the analyzer ESP reproduces the
 * paper's Fig. 11 method ranking.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <numbers>
#include <string>
#include <vector>

#include "analysis/budget.hpp"
#include "analysis/lint.hpp"
#include "analysis/quality.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "hardware/devices.hpp"
#include "hardware/faults.hpp"
#include "metrics/harness.hpp"
#include "qaoa/api.hpp"

namespace qaoa::analysis {
namespace {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateType;

TEST(LintRules, Ql101MergeableRz)
{
    Circuit c(1);
    c.add(Gate::rz(0, 0.3));
    c.add(Gate::rz(0, 0.4));
    EXPECT_GE(lintCircuit(c).count(Rule::MergeableRz), 1);
}

TEST(LintRules, Ql102MergeableCphase)
{
    Circuit c(2);
    c.add(Gate::cphase(0, 1, 0.3));
    c.add(Gate::cphase(1, 0, 0.4)); // operand order is irrelevant
    EXPECT_GE(lintCircuit(c).count(Rule::MergeableCphase), 1);
}

TEST(LintRules, Ql103CancellingCnot)
{
    Circuit c(2);
    c.add(Gate::cnot(0, 1));
    c.add(Gate::cnot(0, 1));
    EXPECT_GE(lintCircuit(c).count(Rule::CancellingCnot), 1);
    // Reversed orientation does NOT cancel.
    Circuit d(2);
    d.add(Gate::cnot(0, 1));
    d.add(Gate::cnot(1, 0));
    EXPECT_EQ(lintCircuit(d).count(Rule::CancellingCnot), 0);
}

TEST(LintRules, Ql104CancellingSwapIsInfo)
{
    Circuit c(2);
    c.add(Gate::swap(0, 1));
    c.add(Gate::swap(1, 0));
    LintReport r = lintCircuit(c);
    EXPECT_GE(r.count(Rule::CancellingSwap), 1);
    // Advisory only: the stock router emits these on sparse devices.
    EXPECT_EQ(ruleSeverity(Rule::CancellingSwap), Severity::Info);
}

TEST(LintRules, Ql105TrailingSwap)
{
    Circuit c(2);
    c.add(Gate::cnot(0, 1));
    c.add(Gate::swap(0, 1));
    c.add(Gate::h(0));
    c.add(Gate::measure(0, 0));
    c.add(Gate::measure(1, 1));
    EXPECT_GE(lintCircuit(c).count(Rule::TrailingSwap), 1);
    // A later two-qubit gate justifies the swap.
    Circuit d(2);
    d.add(Gate::swap(0, 1));
    d.add(Gate::cnot(0, 1));
    EXPECT_EQ(lintCircuit(d).count(Rule::TrailingSwap), 0);
}

TEST(LintRules, Ql106RedundantHadamard)
{
    Circuit c(1);
    c.add(Gate::h(0));
    c.add(Gate::h(0));
    EXPECT_GE(lintCircuit(c).count(Rule::RedundantHadamard), 1);
}

TEST(LintRules, Ql107ZeroRotation)
{
    Circuit c(2);
    c.add(Gate::rz(0, 0.0));
    c.add(Gate::cphase(0, 1, 2.0 * std::numbers::pi)); // 0 mod 2pi
    EXPECT_GE(lintCircuit(c).count(Rule::ZeroRotation), 2);
    Circuit d(1);
    d.add(Gate::rz(0, 0.5));
    EXPECT_EQ(lintCircuit(d).count(Rule::ZeroRotation), 0);
}

TEST(LintRules, Ql108UnreliableEdge)
{
    // Find a triangle a-b-c in tokyo, make the direct edge terrible and
    // the detour excellent.
    hw::CouplingMap tokyo = hw::ibmqTokyo20();
    int a = -1, b = -1;
    for (int q = 0; q < tokyo.numQubits() && a < 0; ++q)
        for (int n1 : tokyo.neighbors(q))
            for (int n2 : tokyo.neighbors(n1))
                if (n2 != q && tokyo.coupled(n2, q)) {
                    a = q;
                    b = n1;
                    break;
                }
    ASSERT_GE(a, 0) << "tokyo has triangles";
    hw::CalibrationData calib(tokyo, 1.0e-3);
    calib.setCnotError(a, b, 0.4);

    Circuit c(tokyo.numQubits());
    c.add(Gate::cnot(a, b));
    LintOptions opts;
    opts.map = &tokyo;
    opts.calibration = &calib;
    EXPECT_GE(lintCircuit(c, opts).count(Rule::UnreliableEdge), 1);

    calib.setCnotError(a, b, 1.0e-3); // healthy edge: no finding
    EXPECT_EQ(lintCircuit(c, opts).count(Rule::UnreliableEdge), 0);
}

TEST(LintRules, Ql109LongIdleWindow)
{
    // Qubit 0 idles out three serial CNOT pairs; with a tiny T2 the gap
    // exceeds the 2% idle budget.
    Circuit c(3);
    c.add(Gate::h(0));
    c.add(Gate::cnot(1, 2));
    c.add(Gate::cnot(2, 1));
    c.add(Gate::barrier());
    c.add(Gate::h(0));
    LintOptions opts;
    opts.t2_ns = 5000.0; // budget = 100 ns < 550 ns gap
    EXPECT_GE(lintCircuit(c, opts).count(Rule::LongIdleWindow), 1);
}

TEST(LintRules, Ql110DecoherenceExposure)
{
    Circuit c(2);
    for (int i = 0; i < 4; ++i) {
        c.add(Gate::cnot(0, 1));
        c.add(Gate::h(0));
    }
    LintOptions opts;
    opts.t2_ns = 4000.0; // budget = 1000 ns < 1400 ns window
    EXPECT_GE(lintCircuit(c, opts).count(Rule::DecoherenceExposure), 1);
}

TEST(LintRules, Ql111CrosstalkClash)
{
    Circuit c(4);
    c.add(Gate::cnot(0, 1));
    c.add(Gate::cnot(2, 3));
    LintOptions opts;
    opts.crosstalk_pairs = {{{0, 1}, {2, 3}}};
    EXPECT_EQ(lintCircuit(c, opts).count(Rule::CrosstalkClash), 1);
}

TEST(LintRules, Ql112DepthHotspot)
{
    // One qubit carries a 12-gate chain; the rest barely act.
    Circuit c(4);
    for (int i = 0; i < 12; ++i)
        c.add(Gate::rx(0, 0.1 + 0.01 * i));
    c.add(Gate::h(1));
    c.add(Gate::h(2));
    c.add(Gate::h(3));
    EXPECT_GE(lintCircuit(c).count(Rule::DepthHotspot), 1);
}

TEST(LintRules, Ql113LowParallelism)
{
    // A strictly serial CNOT staircase: one gate per layer.
    Circuit c(9);
    for (int i = 0; i < 8; ++i)
        c.add(Gate::cnot(i, i + 1));
    EXPECT_GE(lintCircuit(c).count(Rule::LowParallelism), 1);
}

TEST(LintRules, Ql114SwapOverhead)
{
    Circuit c(4);
    c.add(Gate::swap(0, 1));
    c.add(Gate::swap(1, 2));
    c.add(Gate::swap(2, 3));
    c.add(Gate::cnot(3, 0));
    EXPECT_GE(lintCircuit(c).count(Rule::SwapOverhead), 1);
}

TEST(LintRules, Ql115BudgetViolation)
{
    QualityBudget budget;
    budget.max_swap_count = 0;
    QualitySummary s;
    s.swap_count = 3;
    LintReport r = checkBudget(s, budget);
    EXPECT_EQ(r.count(Rule::BudgetViolation), 1);
    EXPECT_EQ(r.countSeverity(Severity::Error), 1);
    EXPECT_FALSE(r.clean(Severity::Error));
}

TEST(Lint, SeededCorruptionIsCaught)
{
    // Corrupt a healthy compiled circuit with seeded edits; the linter
    // must flag every corruption class it claims to catch.
    hw::CouplingMap tokyo = hw::ibmqTokyo20();
    hw::CalibrationData calib(tokyo, 0.02);
    Rng grng(411);
    graph::Graph g = graph::erdosRenyi(12, 0.4, grng);
    core::QaoaCompileOptions opts;
    opts.method = core::Method::Ic;
    opts.calibration = &calib;
    opts.decompose_to_basis = false;
    transpiler::CompileResult r = core::compileQaoaMaxcut(g, tokyo, opts);
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r.quality.clean(Severity::Warning));

    Rng corrupt(412);
    Circuit bad(r.physical.numQubits());
    for (const Gate &gate : r.physical.gates()) {
        bad.add(gate);
        // Duplicate ~20% of the CNOT-class gates: CNOT pairs cancel,
        // CPHASE pairs merge.
        if ((gate.type == GateType::CNOT ||
             gate.type == GateType::CPHASE) &&
            corrupt.uniformInt(0, 4) == 0)
            bad.add(gate);
    }
    LintOptions lopts;
    lopts.map = &tokyo;
    lopts.calibration = &calib;
    LintReport report = lintCircuit(bad, lopts);
    EXPECT_FALSE(report.clean(Severity::Warning));
    EXPECT_GE(report.count(Rule::CancellingCnot) +
                  report.count(Rule::MergeableCphase),
              1);
}

const core::Method kAllMethods[] = {
    core::Method::Naive, core::Method::GreedyV, core::Method::Qaim,
    core::Method::Ip,    core::Method::Ic,      core::Method::Vic};

TEST(Lint, HealthyCompilesAreCleanAcrossMethods)
{
    // The acceptance bar: no QL finding at default (warning) severity on
    // circuits the stock pipeline emits.
    hw::CouplingMap tokyo = hw::ibmqTokyo20();
    Rng crng(2020);
    hw::CalibrationData calib = hw::randomCalibration(tokyo, crng);
    Rng grng(413);
    graph::Graph er = graph::erdosRenyi(14, 0.3, grng);
    graph::Graph reg = graph::randomRegular(16, 4, grng);

    for (core::Method m : kAllMethods) {
        for (const graph::Graph *g : {&er, &reg}) {
            core::QaoaCompileOptions opts;
            opts.method = m;
            opts.calibration = &calib;
            transpiler::CompileResult r =
                core::compileQaoaMaxcut(*g, tokyo, opts);
            ASSERT_TRUE(r.ok()) << core::methodName(m);
            EXPECT_TRUE(r.quality.clean(Severity::Warning))
                << core::methodName(m) << ": "
                << r.quality.lint.summary();
        }
    }
}

TEST(Lint, FaultMaskedCompilesAreClean)
{
    hw::CouplingMap tokyo = hw::ibmqTokyo20();
    hw::FaultSpec spec;
    spec.dead_qubits = {3};
    spec.disabled_edges = {{0, 1}};
    hw::FaultInjector injector(tokyo, spec);
    Rng grng(414);
    graph::Graph g = graph::erdosRenyi(12, 0.35, grng);

    for (core::Method m : kAllMethods) {
        core::QaoaCompileOptions opts;
        opts.method = m;
        opts.calibration = &injector.calibration();
        opts.allowed_qubits = &injector.usable();
        opts.device_degraded = true;
        transpiler::CompileResult r =
            core::compileQaoaMaxcut(g, injector.map(), opts);
        ASSERT_TRUE(r.ok()) << core::methodName(m);
        EXPECT_TRUE(r.quality.clean(Severity::Warning))
            << core::methodName(m) << ": " << r.quality.lint.summary();
    }
}

TEST(Lint, Fig11EspOrderingAcrossMethods)
{
    // The paper's Fig. 11 ranking on ibmq_20_tokyo with the §V-F random
    // calibration: VIC >= IC >= IP >= NAIVE on workload-geomean ESP.
    // Mirrors the qaoa_lint --check-ordering CI gate.
    hw::CouplingMap tokyo = hw::ibmqTokyo20();
    Rng crng(2020);
    hw::CalibrationData calib = hw::randomCalibration(tokyo, crng);

    std::vector<graph::Graph> pool;
    for (int i = 0; i < 6; ++i)
        for (auto &g : metrics::erdosRenyiInstances(
                 20, 0.1 + 0.1 * i, 1,
                 2020 + static_cast<std::uint64_t>(i)))
            pool.push_back(std::move(g));
    for (int k = 3; k <= 8; ++k)
        for (auto &g : metrics::regularInstances(
                 20, k, 1, 2120 + static_cast<std::uint64_t>(k)))
            pool.push_back(std::move(g));

    const core::Method ranked[] = {core::Method::Naive, core::Method::Ip,
                                   core::Method::Ic, core::Method::Vic};
    std::map<std::string, double> geomean;
    for (core::Method m : ranked) {
        double log_sum = 0.0;
        for (std::size_t pi = 0; pi < pool.size(); ++pi) {
            core::QaoaCompileOptions opts;
            opts.method = m;
            opts.calibration = &calib;
            opts.decompose_to_basis = false;
            opts.seed = 7 + 1000 * pi;
            transpiler::CompileResult r =
                core::compileQaoaMaxcut(pool[pi], tokyo, opts);
            ASSERT_TRUE(r.ok()) << core::methodName(m);
            ASSERT_GT(r.quality.summary.esp, 0.0);
            log_sum += std::log(r.quality.summary.esp);
        }
        geomean[core::methodName(m)] =
            std::exp(log_sum / static_cast<double>(pool.size()));
    }
    EXPECT_GE(geomean["VIC"], geomean["IC"]);
    EXPECT_GE(geomean["IC"], geomean["IP"]);
    EXPECT_GE(geomean["IP"], geomean["NAIVE"]);
}

} // namespace
} // namespace qaoa::analysis
