/** @file Tests for the T1/T2 thermal-relaxation trajectory channel. */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/thermal.hpp"

namespace qaoa::sim {
namespace {

using circuit::Circuit;
using circuit::Gate;

TEST(ThermalParams, ProbabilityFormulas)
{
    ThermalParams p;
    p.t1_ns = 1000.0;
    p.t2_ns = 1000.0;
    EXPECT_NEAR(p.relaxProbability(0.0), 0.0, 1e-12);
    EXPECT_NEAR(p.relaxProbability(1000.0), 1.0 - std::exp(-1.0), 1e-12);
    // Pure-dephasing rate 1/T2 - 1/(2 T1) = 1/2000.
    EXPECT_NEAR(p.dephaseProbability(2000.0),
                0.5 * (1.0 - std::exp(-1.0)), 1e-12);
}

TEST(ThermalParams, T2EqualTwiceT1HasNoPureDephasing)
{
    ThermalParams p;
    p.t1_ns = 500.0;
    p.t2_ns = 1000.0;
    EXPECT_DOUBLE_EQ(p.dephaseProbability(100.0), 0.0);
}

TEST(Thermal, NoNoiseAtInfiniteT1T2)
{
    ThermalParams p;
    p.t1_ns = 1e18;
    p.t2_ns = 1e18;
    Circuit c(2);
    c.add(Gate::x(0));
    c.add(Gate::measure(0, 0));
    c.add(Gate::measure(1, 1));
    Rng rng(3);
    Counts counts = thermalSample(c, p, 2000, rng);
    ASSERT_EQ(counts.size(), 1u);
    EXPECT_EQ(counts.begin()->first, 1ULL);
}

TEST(Thermal, ExcitedStateDecays)
{
    // |1> prepared, then a long train of timed identity-ish gates: the
    // excited population must decay towards |0>.
    ThermalParams p;
    p.t1_ns = 2000.0;
    p.t2_ns = 2000.0;
    Circuit c(1);
    c.add(Gate::x(0));
    for (int i = 0; i < 40; ++i)
        c.add(Gate::u3(0, 0.0, 0.0, 0.0)); // 50 ns each -> 2000 ns total
    c.add(Gate::measure(0, 0));
    Rng rng(4);
    Counts counts = thermalSample(c, p, 20000, rng, 64);
    double ones = counts.count(1) ? static_cast<double>(counts[1]) : 0.0;
    double frac = ones / 20000.0;
    // Roughly exp(-T/T1) with T ~ 2050 ns -> ~0.36 survival; generous
    // bounds for the trajectory approximation.
    EXPECT_LT(frac, 0.60);
    EXPECT_GT(frac, 0.15);
}

TEST(Thermal, LongerCircuitsDecayMore)
{
    ThermalParams p;
    p.t1_ns = 3000.0;
    p.t2_ns = 3000.0;
    auto survival = [&](int idles) {
        Circuit c(1);
        c.add(Gate::x(0));
        for (int i = 0; i < idles; ++i)
            c.add(Gate::u3(0, 0.0, 0.0, 0.0));
        c.add(Gate::measure(0, 0));
        Rng rng(5);
        Counts counts = thermalSample(c, p, 8000, rng, 32);
        return counts.count(1) ? static_cast<double>(counts[1]) / 8000.0
                               : 0.0;
    };
    EXPECT_GT(survival(5), survival(60));
}

TEST(Thermal, DephasingDestroysCoherence)
{
    // H . (idle) . H: without noise this returns |0> deterministically;
    // dephasing between the two Hadamards sends outcomes towards 50/50.
    ThermalParams p;
    p.t1_ns = 1e18;   // isolate pure dephasing
    p.t2_ns = 400.0;
    Circuit c(1);
    c.add(Gate::h(0));
    for (int i = 0; i < 20; ++i)
        c.add(Gate::u3(0, 0.0, 0.0, 0.0)); // 1000 ns of idling
    c.add(Gate::h(0));
    c.add(Gate::measure(0, 0));
    Rng rng(6);
    Counts counts = thermalSample(c, p, 20000, rng, 64);
    double ones = counts.count(1) ? static_cast<double>(counts[1]) : 0.0;
    EXPECT_GT(ones / 20000.0, 0.25); // far from the noiseless 0
}

TEST(Thermal, VirtualGatesCauseNoDecay)
{
    ThermalParams p;
    p.t1_ns = 100.0; // brutal T1 ...
    p.t2_ns = 100.0;
    Circuit c(1);
    c.add(Gate::x(0));
    for (int i = 0; i < 200; ++i)
        c.add(Gate::u1(0, 0.1)); // ... but U1s take zero time
    c.add(Gate::measure(0, 0));
    Rng rng(7);
    // The X itself takes 50 ns (p_relax ~ 0.39), so allow decay from
    // that single gate only.
    Counts counts = thermalSample(c, p, 4000, rng, 16);
    double ones = counts.count(1) ? static_cast<double>(counts[1]) : 0.0;
    EXPECT_GT(ones / 4000.0, 0.45);
}

TEST(Thermal, RejectsUnphysicalParameters)
{
    ThermalParams p;
    p.t1_ns = 100.0;
    p.t2_ns = 300.0; // > 2 T1
    Circuit c(1);
    c.add(Gate::measure(0, 0));
    Rng rng(8);
    EXPECT_THROW(thermalSample(c, p, 10, rng), std::runtime_error);
    ThermalParams ok;
    EXPECT_THROW(thermalSample(c, ok, 0, rng), std::runtime_error);
    EXPECT_THROW(thermalSample(c, ok, 10, rng, 0), std::runtime_error);
}

TEST(Thermal, ShotsConserved)
{
    ThermalParams p;
    Circuit c(2);
    c.add(Gate::h(0));
    c.add(Gate::measure(0, 0));
    Rng rng(9);
    Counts counts = thermalSample(c, p, 777, rng, 5);
    std::uint64_t total = 0;
    for (const auto &[bits, n] : counts)
        total += n;
    EXPECT_EQ(total, 777u);
}

TEST(StatevectorCollapse, ProjectsAndNormalizes)
{
    Statevector s(2);
    s.apply(Gate::h(0));
    s.apply(Gate::cnot(0, 1));
    s.collapse(0, true);
    EXPECT_NEAR(s.norm(), 1.0, 1e-12);
    EXPECT_NEAR(std::abs(s.amplitude(0b11)), 1.0, 1e-12);
    EXPECT_THROW(s.collapse(0, false), std::runtime_error);
}

} // namespace
} // namespace qaoa::sim
