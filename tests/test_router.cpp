/** @file
 * Tests for the SWAP-insertion router: coupling compliance (property
 * sweep), semantic preservation (statevector equivalence through the
 * final-layout permutation), and behaviour on the Fig. 1(d) example.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "hardware/devices.hpp"
#include "test_util.hpp"
#include "transpiler/layout_passes.hpp"
#include "transpiler/router.hpp"

namespace qaoa::transpiler {
namespace {

using circuit::Circuit;
using circuit::Gate;

/** Random circuit of 1q + 2q gates over @p n logical qubits. */
Circuit
randomLogicalCircuit(int n, int gates, Rng &rng)
{
    Circuit c(n);
    for (int i = 0; i < gates; ++i) {
        int a = rng.uniformInt(0, n - 1);
        int b = rng.uniformInt(0, n - 1);
        switch (rng.uniformInt(0, 3)) {
          case 0:
            c.add(Gate::h(a));
            break;
          case 1:
            c.add(Gate::rx(a, rng.uniformReal(0.0, 3.0)));
            break;
          default:
            if (a != b)
                c.add(Gate::cphase(a, b, rng.uniformReal(0.0, 3.0)));
            else
                c.add(Gate::rz(a, 0.5));
            break;
        }
    }
    return c;
}

TEST(Router, AdjacentGatesNeedNoSwaps)
{
    hw::CouplingMap lin = hw::linearDevice(4);
    Circuit c(4);
    c.add(Gate::cnot(0, 1));
    c.add(Gate::cnot(1, 2));
    c.add(Gate::cnot(2, 3));
    RoutedCircuit r = routeCircuit(c, lin, Layout::identity(4, 4));
    EXPECT_EQ(r.swap_count, 0);
    EXPECT_EQ(r.physical.gateCount(), 3);
    EXPECT_EQ(r.final_layout, Layout::identity(4, 4));
}

TEST(Router, DistantGateGetsRouted)
{
    hw::CouplingMap lin = hw::linearDevice(4);
    Circuit c(4);
    c.add(Gate::cnot(0, 3));
    RoutedCircuit r = routeCircuit(c, lin, Layout::identity(4, 4));
    EXPECT_GE(r.swap_count, 2); // distance 3 needs at least 2 swaps
    EXPECT_TRUE(satisfiesCoupling(r.physical, lin));
}

TEST(Router, SingleQubitGatesPassThrough)
{
    hw::CouplingMap lin = hw::linearDevice(3);
    Circuit c(3);
    c.add(Gate::h(0));
    c.add(Gate::rx(2, 0.7));
    Layout init({2, 1, 0}, 3); // reversed placement
    RoutedCircuit r = routeCircuit(c, lin, init);
    EXPECT_EQ(r.swap_count, 0);
    ASSERT_EQ(r.physical.gates().size(), 2u);
    EXPECT_EQ(r.physical.gates()[0].q0, 2); // logical 0 -> physical 2
    EXPECT_EQ(r.physical.gates()[1].q0, 0); // logical 2 -> physical 0
}

/** Property sweep: routed circuits always satisfy coupling constraints
 *  and preserve gate multiset semantics, across devices and densities. */
class RouterPropertySweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(RouterPropertySweep, CouplingAlwaysSatisfied)
{
    auto [device_kind, n_gates, seed] = GetParam();
    hw::CouplingMap map = device_kind == 0   ? hw::linearDevice(6)
                          : device_kind == 1 ? hw::ringDevice(8)
                          : device_kind == 2 ? hw::gridDevice(3, 3)
                                             : hw::ibmqTokyo20();
    Rng rng(static_cast<std::uint64_t>(seed));
    int n = std::min(6, map.numQubits());
    Circuit c = randomLogicalCircuit(n, n_gates, rng);
    Layout init = randomLayout(n, map, rng);

    RoutedCircuit r = routeCircuit(c, map, init);
    EXPECT_TRUE(satisfiesCoupling(r.physical, map));
    // Gate conservation: everything except SWAPs maps 1:1.
    EXPECT_EQ(r.physical.gateCount() - r.swap_count, c.gateCount());
    EXPECT_EQ(r.physical.countType(circuit::GateType::SWAP),
              r.swap_count);
}

INSTANTIATE_TEST_SUITE_P(
    DevicesAndSizes, RouterPropertySweep,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(5, 20, 60),
                       ::testing::Values(1, 2, 3)));

/** Applies SWAPs implied by initial->final layout to undo permutation and
 *  compares statevectors: routed circuit must implement the same unitary
 *  modulo the tracked qubit permutation. */
TEST(Router, PreservesSemantics)
{
    hw::CouplingMap lin = hw::linearDevice(5);
    Rng rng(55);
    for (int trial = 0; trial < 10; ++trial) {
        Circuit c = randomLogicalCircuit(5, 25, rng);
        Layout init = randomLayout(5, lin, rng);
        RoutedCircuit r = routeCircuit(c, lin, init);

        // Reference: logical circuit permuted by the *initial* layout.
        Circuit reference(5);
        for (const Gate &g : c.gates()) {
            Gate m = g;
            m.q0 = init.physicalOf(g.q0);
            if (g.arity() == 2)
                m.q1 = init.physicalOf(g.q1);
            reference.add(m);
        }
        // Undo the routing permutation: append SWAPs that map the final
        // layout back onto the initial one.
        Circuit undo = r.physical;
        Layout current = r.final_layout;
        for (int l = 0; l < 5; ++l) {
            int want = init.physicalOf(l);
            int have = current.physicalOf(l);
            if (want != have) {
                undo.add(Gate::swap(have, want));
                current.swapPhysical(have, want);
            }
        }
        EXPECT_TRUE(testutil::equivalentUpToGlobalPhase(reference, undo))
            << "trial " << trial;
    }
}

TEST(Router, WeightedDistancesSteerSwaps)
{
    // Ring of 6 with one terrible edge: scoring against weighted
    // distances should route around it when distances say so.
    hw::CouplingMap ring = hw::ringDevice(6);
    hw::CalibrationData calib(ring, 0.01);
    calib.setCnotError(2, 3, 0.40); // avoid this edge
    graph::DistanceMatrix weighted = hw::weightedDistances(ring, calib);

    Circuit c(6);
    c.add(Gate::cnot(0, 3));
    RouterOptions opts;
    opts.distances = &weighted;
    RoutedCircuit r =
        routeCircuit(c, ring, Layout::identity(6, 6), opts);
    EXPECT_TRUE(satisfiesCoupling(r.physical, ring));
    EXPECT_GE(r.swap_count, 2);
}

TEST(Router, BarriersSurviveRouting)
{
    hw::CouplingMap lin = hw::linearDevice(3);
    Circuit c(3);
    c.add(Gate::h(0));
    c.add(Gate::barrier());
    c.add(Gate::h(1));
    RoutedCircuit r = routeCircuit(c, lin, Layout::identity(3, 3));
    EXPECT_EQ(r.physical.countType(circuit::GateType::BARRIER), 1);
}

TEST(Router, DeterministicForFixedSeed)
{
    hw::CouplingMap grid = hw::gridDevice(3, 3);
    Rng rng(77);
    Circuit c = randomLogicalCircuit(6, 40, rng);
    Layout init = Layout::identity(6, 9);
    RouterOptions opts;
    opts.seed = 5;
    RoutedCircuit a = routeCircuit(c, grid, init, opts);
    RoutedCircuit b = routeCircuit(c, grid, init, opts);
    EXPECT_EQ(a.swap_count, b.swap_count);
    EXPECT_EQ(a.physical.gates().size(), b.physical.gates().size());
}

TEST(Router, RejectsUndersizedLayout)
{
    hw::CouplingMap lin = hw::linearDevice(4);
    Circuit c(4);
    c.add(Gate::cnot(0, 3));
    EXPECT_THROW(routeCircuit(c, lin, Layout::identity(2, 4)),
                 std::runtime_error);
}

} // namespace
} // namespace qaoa::transpiler
