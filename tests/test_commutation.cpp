/** @file
 * Tests for gate-commutation analysis — formalizing the paper's §I
 * premise that QAOA cost-layer CPHASEs mutually commute.
 */

#include <gtest/gtest.h>

#include "circuit/commutation.hpp"
#include "circuit/layers.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "qaoa/problem.hpp"
#include "qaoa/profile_stats.hpp"
#include "test_util.hpp"

namespace qaoa::circuit {
namespace {

TEST(Commutation, DisjointGatesAlwaysCommute)
{
    EXPECT_TRUE(gatesCommute(Gate::h(0), Gate::h(1)));
    EXPECT_TRUE(gatesCommute(Gate::cnot(0, 1), Gate::cnot(2, 3)));
    EXPECT_TRUE(gatesCommute(Gate::rx(0, 0.5), Gate::cphase(1, 2, 0.3)));
}

TEST(Commutation, CphasesSharingAQubitCommute)
{
    // The paper's core observation.
    EXPECT_TRUE(gatesCommute(Gate::cphase(0, 1, 0.4),
                             Gate::cphase(1, 2, 0.9)));
    EXPECT_TRUE(gatesCommute(Gate::cphase(0, 1, 0.4),
                             Gate::cphase(0, 1, 1.1)));
    EXPECT_TRUE(gatesCommute(Gate::cz(0, 1), Gate::cphase(1, 2, 0.9)));
    EXPECT_TRUE(gatesCommute(Gate::rz(1, 0.3), Gate::cphase(1, 2, 0.9)));
    EXPECT_TRUE(gatesCommute(Gate::u1(0, 0.2), Gate::z(0)));
}

TEST(Commutation, NonCommutingPairs)
{
    EXPECT_FALSE(gatesCommute(Gate::h(0), Gate::x(0)));
    EXPECT_FALSE(gatesCommute(Gate::rx(0, 0.7),
                              Gate::cphase(0, 1, 0.4)));
    EXPECT_FALSE(gatesCommute(Gate::cnot(0, 1), Gate::cnot(1, 0)));
    EXPECT_FALSE(gatesCommute(Gate::swap(0, 1), Gate::x(0)));
    EXPECT_FALSE(gatesCommute(Gate::h(0), Gate::cnot(0, 1)));
}

TEST(Commutation, NumericFallbackFindsSubtleCases)
{
    // X on the target commutes with CNOT; X on the control does not.
    EXPECT_TRUE(gatesCommute(Gate::cnot(0, 1), Gate::x(1)));
    EXPECT_FALSE(gatesCommute(Gate::cnot(0, 1), Gate::x(0)));
    // Z on the control commutes with CNOT; Z on the target does not.
    EXPECT_TRUE(gatesCommute(Gate::cnot(0, 1), Gate::z(0)));
    EXPECT_FALSE(gatesCommute(Gate::cnot(0, 1), Gate::z(1)));
    // Two CNOTs sharing only their control commute.
    EXPECT_TRUE(gatesCommute(Gate::cnot(0, 1), Gate::cnot(0, 2)));
    // Two CNOTs sharing only their target commute too.
    EXPECT_TRUE(gatesCommute(Gate::cnot(0, 2), Gate::cnot(1, 2)));
    // Control-of-one = target-of-other does not.
    EXPECT_FALSE(gatesCommute(Gate::cnot(0, 1), Gate::cnot(1, 2)));
}

TEST(Commutation, BarriersAndMeasuresPin)
{
    EXPECT_FALSE(gatesCommute(Gate::barrier(), Gate::h(0)));
    EXPECT_FALSE(gatesCommute(Gate::measure(0, 0), Gate::h(0)));
    EXPECT_TRUE(gatesCommute(Gate::measure(0, 0), Gate::h(1)));
}

TEST(Commutation, MatchesBruteForceOnRandomPairs)
{
    // Cross-check the rule-based fast paths against direct simulation.
    Rng rng(12);
    auto random_gate = [&]() {
        int a = rng.uniformInt(0, 2), b = rng.uniformInt(0, 2);
        switch (rng.uniformInt(0, 4)) {
          case 0: return Gate::h(a);
          case 1: return Gate::rz(a, 0.7);
          case 2: return Gate::cphase(a, a == b ? (b + 1) % 3 : b, 0.5);
          case 3: return Gate::cnot(a, a == b ? (b + 1) % 3 : b);
          default: return Gate::rx(a, 1.1);
        }
    };
    for (int trial = 0; trial < 30; ++trial) {
        Gate g1 = random_gate();
        Gate g2 = random_gate();
        Circuit ab(3), ba(3);
        ab.add(g1);
        ab.add(g2);
        ba.add(g2);
        ba.add(g1);
        // Exact operator equality check on a generic entangled input.
        Circuit prep(3);
        prep.add(Gate::u3(0, 0.3, 0.9, 1.7));
        prep.add(Gate::u3(1, 1.1, 0.2, 2.3));
        prep.add(Gate::u3(2, 2.0, 1.4, 0.6));
        prep.add(Gate::cnot(0, 1));
        prep.add(Gate::cnot(1, 2));
        Circuit full_ab = prep, full_ba = prep;
        full_ab.append(ab);
        full_ba.append(ba);
        sim::Statevector sa(3), sb(3);
        sa.apply(full_ab);
        sb.apply(full_ba);
        bool equal = true;
        for (std::uint64_t i = 0; i < 8; ++i) {
            if (std::abs(sa.amplitude(i) - sb.amplitude(i)) > 1e-9) {
                equal = false;
            }
        }
        // gatesCommute == true must imply state equality; the converse
        // may fail on a single state, so only check one direction.
        if (gatesCommute(g1, g2)) {
            EXPECT_TRUE(equal) << g1.toString() << " vs "
                               << g2.toString();
        }
    }
}

TEST(CommutationLayers, RecoversParallelismFromBadOrder)
{
    // Fig. 1(b)'s circ-1 order: plain ASAP needs 6 CPHASE layers, but
    // commutation-aware layering reaches the 3-layer optimum.
    Circuit c(4);
    for (auto [a, b] : {std::pair<int, int>{0, 1}, {1, 2}, {0, 2},
                        {2, 3}, {1, 3}, {0, 3}})
        c.add(Gate::cphase(a, b, 0.7));
    EXPECT_EQ(layerCount(c), 6);
    EXPECT_EQ(commutationAwareLayerCount(c), 3);
}

TEST(CommutationLayers, LayerOrderIsSemanticallyValid)
{
    Rng rng(14);
    for (int trial = 0; trial < 6; ++trial) {
        graph::Graph g = graph::erdosRenyi(5, 0.6, rng);
        if (g.numEdges() == 0)
            continue;
        Circuit c = core::buildQaoaCircuit(g, {0.8}, {0.4}, false);
        auto layers = commutationAwareLayers(c);
        Circuit reordered(c.numQubits());
        std::size_t total = 0;
        for (const auto &layer : layers)
            for (std::size_t gi : layer) {
                reordered.add(c.gates()[gi]);
                ++total;
            }
        ASSERT_EQ(total, c.gates().size());
        EXPECT_TRUE(testutil::equivalentUpToGlobalPhase(c, reordered));
    }
}

TEST(CommutationLayers, NeverWorseThanPlainAsap)
{
    Rng rng(15);
    for (int trial = 0; trial < 10; ++trial) {
        graph::Graph g = graph::randomRegular(10, 4, rng);
        Circuit c(10);
        std::vector<core::ZZOp> ops = core::costOperations(g);
        rng.shuffle(ops);
        for (const auto &op : ops)
            c.add(Gate::cphase(op.a, op.b, 0.5));
        int aware = commutationAwareLayerCount(c);
        EXPECT_LE(aware, layerCount(c));
        int moq = core::maxOpsPerQubit(ops, 10);
        EXPECT_GE(aware, moq);
        EXPECT_LE(aware, 2 * moq - 1); // greedy coloring bound
    }
}

TEST(CommutationLayers, BarriersRespected)
{
    Circuit c(2);
    c.add(Gate::cphase(0, 1, 0.2));
    c.add(Gate::barrier());
    c.add(Gate::cphase(0, 1, 0.3));
    // Barrier prevents merging the two commuting CPHASEs.
    EXPECT_EQ(commutationAwareLayerCount(c), 3);
}

} // namespace
} // namespace qaoa::circuit
