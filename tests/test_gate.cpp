/** @file Tests for the Gate value type and its factories. */

#include <gtest/gtest.h>

#include "circuit/gate.hpp"

namespace qaoa::circuit {
namespace {

TEST(Gate, FactoryOperands)
{
    Gate h = Gate::h(3);
    EXPECT_EQ(h.type, GateType::H);
    EXPECT_EQ(h.q0, 3);
    EXPECT_EQ(h.arity(), 1);

    Gate cx = Gate::cnot(1, 4);
    EXPECT_EQ(cx.type, GateType::CNOT);
    EXPECT_EQ(cx.q0, 1);
    EXPECT_EQ(cx.q1, 4);
    EXPECT_EQ(cx.arity(), 2);

    Gate cp = Gate::cphase(0, 2, 0.5);
    EXPECT_DOUBLE_EQ(cp.params[0], 0.5);

    Gate m = Gate::measure(5, 2);
    EXPECT_EQ(m.q0, 5);
    EXPECT_EQ(m.cbit, 2);
}

TEST(Gate, ParamsStored)
{
    Gate u3 = Gate::u3(0, 1.0, 2.0, 3.0);
    EXPECT_DOUBLE_EQ(u3.params[0], 1.0);
    EXPECT_DOUBLE_EQ(u3.params[1], 2.0);
    EXPECT_DOUBLE_EQ(u3.params[2], 3.0);

    Gate u2 = Gate::u2(0, 0.4, 0.8);
    EXPECT_DOUBLE_EQ(u2.params[0], 0.4);
    EXPECT_DOUBLE_EQ(u2.params[1], 0.8);
}

TEST(Gate, RejectsInvalidOperands)
{
    EXPECT_THROW(Gate::h(-1), std::runtime_error);
    EXPECT_THROW(Gate::cnot(2, 2), std::runtime_error);
    EXPECT_THROW(Gate::swap(-1, 0), std::runtime_error);
    EXPECT_THROW(Gate::measure(0, -1), std::runtime_error);
}

TEST(Gate, Names)
{
    EXPECT_EQ(gateName(GateType::H), "h");
    EXPECT_EQ(gateName(GateType::CNOT), "cx");
    EXPECT_EQ(gateName(GateType::CPHASE), "cphase");
    EXPECT_EQ(gateName(GateType::MEASURE), "measure");
}

TEST(Gate, ArityAndParamCount)
{
    EXPECT_EQ(gateArity(GateType::BARRIER), 0);
    EXPECT_EQ(gateArity(GateType::RX), 1);
    EXPECT_EQ(gateArity(GateType::SWAP), 2);
    EXPECT_EQ(gateParamCount(GateType::H), 0);
    EXPECT_EQ(gateParamCount(GateType::U1), 1);
    EXPECT_EQ(gateParamCount(GateType::U2), 2);
    EXPECT_EQ(gateParamCount(GateType::U3), 3);
    EXPECT_EQ(gateParamCount(GateType::CPHASE), 1);
}

TEST(Gate, TwoQubitClassification)
{
    EXPECT_TRUE(isTwoQubit(GateType::CNOT));
    EXPECT_TRUE(isTwoQubit(GateType::CPHASE));
    EXPECT_TRUE(isTwoQubit(GateType::SWAP));
    EXPECT_FALSE(isTwoQubit(GateType::H));
    EXPECT_FALSE(isTwoQubit(GateType::MEASURE));

    EXPECT_TRUE(isSymmetricTwoQubit(GateType::CPHASE));
    EXPECT_TRUE(isSymmetricTwoQubit(GateType::CZ));
    EXPECT_TRUE(isSymmetricTwoQubit(GateType::SWAP));
    EXPECT_FALSE(isSymmetricTwoQubit(GateType::CNOT));
}

TEST(Gate, ActsOn)
{
    Gate cx = Gate::cnot(1, 4);
    EXPECT_TRUE(cx.actsOn(1));
    EXPECT_TRUE(cx.actsOn(4));
    EXPECT_FALSE(cx.actsOn(2));
    EXPECT_TRUE(Gate::barrier().actsOn(0));
}

TEST(Gate, ToStringFormats)
{
    EXPECT_EQ(Gate::h(2).toString(), "h q2");
    EXPECT_EQ(Gate::cnot(0, 1).toString(), "cx q0, q1");
    EXPECT_EQ(Gate::measure(3, 3).toString(), "measure q3 -> c3");
    std::string cp = Gate::cphase(0, 1, 0.5).toString();
    EXPECT_NE(cp.find("cphase(0.5)"), std::string::npos);
}

TEST(Gate, Equality)
{
    EXPECT_EQ(Gate::h(1), Gate::h(1));
    EXPECT_FALSE(Gate::h(1) == Gate::h(2));
    EXPECT_FALSE(Gate::rx(0, 0.1) == Gate::rx(0, 0.2));
}

} // namespace
} // namespace qaoa::circuit
