/**
 * @file
 * Tests for the deadline-aware compile runtime: cancellation tokens,
 * deadlines, retry/backoff, resource guards, guarded compiles,
 * cancel-anywhere determinism, and optimizer checkpoint/resume.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.hpp"
#include "common/deadline.hpp"
#include "common/guard.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "circuit/circuit.hpp"
#include "hardware/devices.hpp"
#include "metrics/harness.hpp"
#include "opt/checkpoint.hpp"
#include "opt/grid_search.hpp"
#include "qaoa/api.hpp"
#include "sim/statevector.hpp"
#include "transpiler/astar_router.hpp"

namespace qaoa {
namespace {

using run::CancelledError;
using run::CancelToken;
using run::Deadline;
using run::ResourceExceededError;
using run::ResourceLimits;
using run::RunGuard;
using run::TimedOutError;
using transpiler::CompileResult;
using transpiler::CompileStatus;

/** Restores automatic thread resolution when a test exits. */
struct ThreadGuard
{
    ~ThreadGuard() { par::setThreadCount(0); }
};

/** Ring + chords on 12 nodes — needs routing work on every device. */
graph::Graph
testProblem(int n = 12)
{
    graph::Graph g(n);
    for (int i = 0; i < n; ++i)
        g.addEdge(i, (i + 1) % n);
    for (int i = 0; i + n / 2 < n; i += 2)
        g.addEdge(i, i + n / 2);
    return g;
}

// ---------------------------------------------------------------- tokens

TEST(CancelTokenTest, FreshTokenIsNotCancelled)
{
    CancelToken token;
    EXPECT_FALSE(token.cancelled());
    EXPECT_NO_THROW(token.throwIfCancelled("test"));
}

TEST(CancelTokenTest, RequestCancelTrips)
{
    CancelToken token;
    token.requestCancel();
    EXPECT_TRUE(token.cancelled());
    EXPECT_THROW(token.throwIfCancelled("test"), CancelledError);
}

TEST(CancelTokenTest, ChildSeesParentCancel)
{
    CancelToken parent;
    CancelToken child = parent.child();
    CancelToken grandchild = child.child();
    EXPECT_FALSE(grandchild.cancelled());
    parent.requestCancel();
    EXPECT_TRUE(child.cancelled());
    EXPECT_TRUE(grandchild.cancelled());
}

TEST(CancelTokenTest, ParentDoesNotSeeChildCancel)
{
    CancelToken parent;
    CancelToken child = parent.child();
    child.requestCancel();
    EXPECT_TRUE(child.cancelled());
    EXPECT_FALSE(parent.cancelled());
}

TEST(CancelTokenTest, CancelAfterCountsPolls)
{
    CancelToken token;
    token.cancelAfter(3);
    EXPECT_FALSE(token.cancelled()); // survives poll 1
    EXPECT_FALSE(token.cancelled()); // survives poll 2
    EXPECT_FALSE(token.cancelled()); // survives poll 3
    EXPECT_TRUE(token.cancelled());  // trips on poll 4
    EXPECT_TRUE(token.cancelled());  // and stays tripped
}

TEST(CancelTokenTest, CancelAfterZeroTripsNextPoll)
{
    CancelToken token;
    token.cancelAfter(0);
    EXPECT_TRUE(token.cancelled());
}

// -------------------------------------------------------------- deadlines

TEST(DeadlineTest, NeverDeadlineNeverExpires)
{
    Deadline d = Deadline::never();
    EXPECT_FALSE(d.finite());
    EXPECT_FALSE(d.expired());
    EXPECT_TRUE(d.remainingMs() > 1e18);
}

TEST(DeadlineTest, ZeroBudgetExpiresImmediately)
{
    Deadline d = Deadline::afterMs(0.0);
    EXPECT_TRUE(d.finite());
    EXPECT_TRUE(d.expired());
    EXPECT_LE(d.remainingMs(), 0.0);
}

TEST(DeadlineTest, TightenedNeverLoosens)
{
    Deadline total = Deadline::afterMs(0.0);
    Deadline stage = total.tightened(60000.0);
    EXPECT_TRUE(stage.expired()) << "stage budget must not outlive the "
                                    "total deadline";
    Deadline unbounded = Deadline::never().tightened(-1.0);
    EXPECT_FALSE(unbounded.finite());
    Deadline staged = Deadline::never().tightened(60000.0);
    EXPECT_TRUE(staged.finite());
    EXPECT_FALSE(staged.expired());
}

TEST(DeadlineTest, TightenedClampsExpiredParentToZeroRemaining)
{
    // An already-expired parent must yield a stage with zero budget —
    // not a deadline deep in the past whose remainingMs() reports a
    // large negative stage budget in the watchdog trace.
    Deadline total = Deadline::afterMs(0.0);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    Deadline stage = total.tightened(60000.0);
    EXPECT_TRUE(stage.expired());
    EXPECT_LE(stage.remainingMs(), 0.0);
    EXPECT_GE(stage.remainingMs(), -5.0)
        << "expired-parent stage budget should clamp to ~zero, not "
           "inherit the parent's point in the past";
}

// --------------------------------------------------------- retry/backoff

TEST(RetryTest, BackoffGrowsAndCaps)
{
    run::RetryOptions opts;
    opts.base_delay_ms = 1.0;
    opts.multiplier = 2.0;
    opts.max_delay_ms = 3.0;
    opts.jitter = 0.0;
    Rng rng(1);
    EXPECT_DOUBLE_EQ(run::backoffDelayMs(opts, 1, rng), 1.0);
    EXPECT_DOUBLE_EQ(run::backoffDelayMs(opts, 2, rng), 2.0);
    EXPECT_DOUBLE_EQ(run::backoffDelayMs(opts, 3, rng), 3.0); // capped
    EXPECT_DOUBLE_EQ(run::backoffDelayMs(opts, 9, rng), 3.0);
}

TEST(RetryTest, JitterIsDeterministicPerSeed)
{
    run::RetryOptions opts;
    Rng a(42), b(42);
    for (int attempt = 1; attempt <= 4; ++attempt)
        EXPECT_DOUBLE_EQ(run::backoffDelayMs(opts, attempt, a),
                         run::backoffDelayMs(opts, attempt, b));
}

TEST(RetryTest, RetriesTransientFailures)
{
    run::RetryOptions opts;
    opts.max_attempts = 5;
    opts.base_delay_ms = 0.1;
    int calls = 0, attempts = 0;
    const int result = run::retryWithBackoff(
        [&]() {
            if (++calls < 3)
                throw std::runtime_error("transient");
            return 77;
        },
        opts, Deadline::never(), CancelToken(), &attempts);
    EXPECT_EQ(result, 77);
    EXPECT_EQ(calls, 3);
    EXPECT_EQ(attempts, 3);
}

TEST(RetryTest, ExhaustsAttempts)
{
    run::RetryOptions opts;
    opts.max_attempts = 3;
    opts.base_delay_ms = 0.1;
    int calls = 0;
    EXPECT_THROW(run::retryWithBackoff(
                     [&]() -> int {
                         ++calls;
                         throw std::runtime_error("always");
                     },
                     opts),
                 std::runtime_error);
    EXPECT_EQ(calls, 3);
}

TEST(RetryTest, NeverRetriesCancellation)
{
    run::RetryOptions opts;
    opts.max_attempts = 5;
    int calls = 0;
    EXPECT_THROW(run::retryWithBackoff(
                     [&]() -> int {
                         ++calls;
                         throw CancelledError("stop");
                     },
                     opts),
                 CancelledError);
    EXPECT_EQ(calls, 1);
    calls = 0;
    EXPECT_THROW(run::retryWithBackoff(
                     [&]() -> int {
                         ++calls;
                         throw TimedOutError("late");
                     },
                     opts),
                 TimedOutError);
    EXPECT_EQ(calls, 1);
}

TEST(RetryTest, CancellableSleepAbortsPromptly)
{
    CancelToken token;
    token.requestCancel();
    EXPECT_THROW(run::cancellableSleepMs(10000.0, token), CancelledError);
}

// ------------------------------------------------------------- run guard

TEST(RunGuardTest, PollThrowsOnCancelledToken)
{
    CancelToken token;
    RunGuard guard(token, Deadline::never());
    EXPECT_NO_THROW(guard.poll("loop"));
    token.requestCancel();
    EXPECT_THROW(guard.poll("loop"), CancelledError);
}

TEST(RunGuardTest, StrictPollDetectsExpiredDeadline)
{
    RunGuard guard(CancelToken(), Deadline::afterMs(0.0));
    EXPECT_THROW(guard.pollStrict("stage entry"), TimedOutError);
}

TEST(RunGuardTest, DecimatedPollDetectsExpiryWithinStride)
{
    RunGuard guard(CancelToken(), Deadline::afterMs(0.0));
    bool threw = false;
    for (std::uint32_t i = 0; i <= RunGuard::kDeadlineStride; ++i) {
        try {
            guard.poll("loop");
        } catch (const TimedOutError &) {
            threw = true;
            break;
        }
    }
    EXPECT_TRUE(threw);
}

TEST(RunGuardTest, AllocationGuard)
{
    ResourceLimits limits;
    limits.max_statevector_bytes = 1024;
    RunGuard guard(CancelToken(), Deadline::never(), limits);
    EXPECT_NO_THROW(guard.checkAllocation("statevector", 1024));
    EXPECT_THROW(guard.checkAllocation("statevector", 1025),
                 ResourceExceededError);
}

TEST(RunGuardTest, StatevectorHonorsAllocationCap)
{
    ResourceLimits limits;
    limits.max_statevector_bytes = 1024; // 6 qubits * 16 B = 1024 B
    RunGuard guard(CancelToken(), Deadline::never(), limits);
    EXPECT_NO_THROW(sim::Statevector(6, &guard));
    EXPECT_THROW(sim::Statevector(7, &guard), ResourceExceededError);
}

// ------------------------------------------------------ guarded compiles

TEST(GuardedCompileTest, ExpiredDeadlineYieldsTimedOutStatus)
{
    const hw::CouplingMap map = hw::ibmqTokyo20();
    RunGuard guard(CancelToken(), Deadline::afterMs(0.0));
    core::QaoaCompileOptions opts;
    opts.method = core::Method::Ic;
    opts.guard = &guard;
    CompileResult r = core::compileQaoaMaxcut(testProblem(), map, opts);
    EXPECT_EQ(r.status, CompileStatus::TimedOut);
    EXPECT_FALSE(r.ok());
    EXPECT_FALSE(r.failure_reason.empty());
    EXPECT_EQ(r.compiled.gates().size(), 0u)
        << "a timed-out compile must not emit a partial circuit";
}

TEST(GuardedCompileTest, PreCancelledTokenYieldsCancelledStatus)
{
    const hw::CouplingMap map = hw::ibmqTokyo20();
    CancelToken token;
    token.requestCancel();
    RunGuard guard(token, Deadline::never());
    core::QaoaCompileOptions opts;
    opts.method = core::Method::Ic;
    opts.guard = &guard;
    CompileResult r = core::compileQaoaMaxcut(testProblem(), map, opts);
    EXPECT_EQ(r.status, CompileStatus::Cancelled);
    EXPECT_EQ(r.compiled.gates().size(), 0u);
}

TEST(GuardedCompileTest, StageBudgetTimeoutIsRecordedPerRung)
{
    const hw::CouplingMap map = hw::ibmqTokyo20();
    // No total deadline, but a zero per-stage budget: every rung times
    // out, the ladder keeps falling, and the exhausted ladder reports
    // the uniform resilience class instead of a generic failure.
    RunGuard guard(CancelToken(), Deadline::never());
    core::QaoaCompileOptions opts;
    opts.method = core::Method::Ic;
    opts.guard = &guard;
    opts.stage_budget_ms = 0.0;
    CompileResult r = core::compileQaoaMaxcut(testProblem(), map, opts);
    EXPECT_EQ(r.status, CompileStatus::TimedOut);
    ASSERT_GT(r.stages.size(), 1u)
        << "a stage-budget timeout is degradable: later rungs must run";
    for (const run::StageTrace &t : r.stages)
        EXPECT_EQ(t.outcome, run::StageOutcome::TimedOut) << t.stage;
}

TEST(GuardedCompileTest, SwapBreakerYieldsResourceExceeded)
{
    const hw::CouplingMap map = hw::linearDevice(6);
    graph::Graph clique(4);
    for (int a = 0; a < 4; ++a)
        for (int b = a + 1; b < 4; ++b)
            clique.addEdge(a, b);
    ResourceLimits limits;
    limits.max_router_swaps = 0; // K4 on a line cannot route swap-free
    RunGuard guard(CancelToken(), Deadline::never(), limits);
    core::QaoaCompileOptions opts;
    opts.method = core::Method::Ic;
    opts.guard = &guard;
    CompileResult r = core::compileQaoaMaxcut(clique, map, opts);
    EXPECT_EQ(r.status, CompileStatus::ResourceExceeded);
    EXPECT_EQ(r.compiled.gates().size(), 0u);
    ASSERT_FALSE(r.stages.empty());
    for (const run::StageTrace &t : r.stages)
        EXPECT_EQ(t.outcome, run::StageOutcome::GuardTripped) << t.stage;
}

TEST(GuardedCompileTest, AStarExpansionCapStillRoutes)
{
    // Exhausting the A* expansion budget falls back to the
    // shortest-path walk — a guard-tightened budget degrades quality,
    // never correctness.
    const hw::CouplingMap map = hw::linearDevice(6);
    circuit::Circuit logical(6);
    logical.add(circuit::Gate::cnot(0, 5));
    logical.add(circuit::Gate::cnot(1, 4));
    const transpiler::Layout initial = transpiler::Layout::identity(6, 6);

    ResourceLimits limits;
    limits.max_astar_expansions = 1;
    RunGuard guard(CancelToken(), Deadline::never(), limits);
    transpiler::AStarOptions astar;
    astar.guard = &guard;
    const transpiler::RoutedCircuit routed =
        transpiler::routeCircuitAStar(logical, map, initial, astar);
    EXPECT_GT(routed.swap_count, 0);

    transpiler::AStarOptions unbounded;
    const transpiler::RoutedCircuit reference =
        transpiler::routeCircuitAStar(logical, map, initial, unbounded);
    EXPECT_EQ(reference.physical.gates().size() > 0,
              routed.physical.gates().size() > 0);

    CancelToken token;
    token.requestCancel();
    RunGuard cancelled(token, Deadline::never());
    transpiler::AStarOptions doomed;
    doomed.guard = &cancelled;
    EXPECT_THROW(
        transpiler::routeCircuitAStar(logical, map, initial, doomed),
        CancelledError);
}

TEST(GuardedCompileTest, UnguardedResultsAreUnaffectedByGuard)
{
    const hw::CouplingMap map = hw::ibmqTokyo20();
    core::QaoaCompileOptions opts;
    opts.method = core::Method::Ic;
    opts.seed = 1234;
    CompileResult plain = core::compileQaoaMaxcut(testProblem(), map, opts);
    RunGuard guard(CancelToken(), Deadline::afterMs(60000.0));
    opts.guard = &guard;
    opts.stage_budget_ms = 60000.0;
    CompileResult guarded =
        core::compileQaoaMaxcut(testProblem(), map, opts);
    ASSERT_TRUE(plain.ok());
    ASSERT_TRUE(guarded.ok());
    EXPECT_EQ(plain.compiled.gates().size(),
              guarded.compiled.gates().size());
    EXPECT_EQ(plain.report.depth, guarded.report.depth);
    EXPECT_EQ(plain.report.swap_count, guarded.report.swap_count);
    ASSERT_EQ(guarded.stages.size(), 1u);
    EXPECT_EQ(guarded.stages[0].outcome, run::StageOutcome::Completed);
}

// ------------------------------------------- cancel-anywhere determinism

TEST(CancelAnywhereTest, RandomizedCancelPointsNeverCorruptState)
{
    ThreadGuard thread_guard;
    const hw::CouplingMap map = hw::ibmqTokyo20();
    const hw::CalibrationData calib(map);
    const std::vector<graph::Graph> pool = {testProblem(10),
                                            testProblem(12),
                                            testProblem(14)};

    for (core::Method method : {core::Method::Ic, core::Method::Vic}) {
        core::QaoaCompileOptions opts;
        opts.method = method;
        opts.calibration = &calib;
        opts.seed = 99;

        // Reference: never-cancelled series, single-threaded.
        par::setThreadCount(1);
        const metrics::MetricSeries reference =
            metrics::compileSeries(pool, map, opts);
        for (CompileStatus s : reference.status)
            ASSERT_TRUE(s == CompileStatus::Ok ||
                        s == CompileStatus::Degraded);

        Rng points(2026);
        for (int threads : {1, 2, 8}) {
            par::setThreadCount(threads);
            for (int trial = 0; trial < 4; ++trial) {
                // Cancel after a randomized number of polls somewhere
                // inside the compile pipeline.
                CancelToken token;
                token.cancelAfter(static_cast<std::uint64_t>(
                    points.uniformInt(0, 400)));
                RunGuard guard(token, Deadline::never());
                core::QaoaCompileOptions cancelled = opts;
                cancelled.guard = &guard;
                const metrics::MetricSeries series =
                    metrics::compileSeries(pool, map, cancelled);
                for (CompileStatus s : series.status)
                    ASSERT_TRUE(s == CompileStatus::Ok ||
                                s == CompileStatus::Degraded ||
                                s == CompileStatus::Cancelled)
                        << "unexpected status " << static_cast<int>(s);

                // A subsequent uncancelled run of the same seed must be
                // bit-identical to the never-cancelled reference.
                const metrics::MetricSeries redo =
                    metrics::compileSeries(pool, map, opts);
                ASSERT_EQ(redo.depth, reference.depth);
                ASSERT_EQ(redo.gate_count, reference.gate_count);
                ASSERT_EQ(redo.swap_count, reference.swap_count);
            }
        }
    }
}

// ------------------------------------------------- parallel cancel/fail

TEST(ParallelCancelTest, FirstErrorCancelsSiblings)
{
    ThreadGuard thread_guard;
    par::setThreadCount(1);
    CancelToken token;
    std::atomic<int> ran{0};
    EXPECT_THROW(
        par::parallelForTasks(100, token,
                              [&](std::uint64_t i) {
                                  if (i == 0)
                                      throw std::runtime_error("boom");
                                  ran.fetch_add(1,
                                                std::memory_order_relaxed);
                              }),
        std::runtime_error);
    EXPECT_TRUE(token.cancelled())
        << "a failing task must trip the shared token";
    EXPECT_EQ(ran.load(), 0) << "serial run must stop at the failure";
}

TEST(ParallelCancelTest, FirstErrorPropagatesAtManyThreads)
{
    ThreadGuard thread_guard;
    par::setThreadCount(8);
    CancelToken token;
    EXPECT_THROW(par::parallelForTasks(
                     1000, token,
                     [&](std::uint64_t i) {
                         if (i % 7 == 3)
                             throw std::runtime_error("boom");
                     }),
                 std::runtime_error);
    EXPECT_TRUE(token.cancelled());
}

TEST(ParallelCancelTest, ExternallyCancelledTokenSkipsWork)
{
    ThreadGuard thread_guard;
    par::setThreadCount(4);
    CancelToken token;
    token.requestCancel();
    std::atomic<int> ran{0};
    EXPECT_NO_THROW(par::parallelForTasks(
        100, token, [&](std::uint64_t) {
            ran.fetch_add(1, std::memory_order_relaxed);
        }));
    EXPECT_EQ(ran.load(), 0);
}

TEST(ParallelCancelTest, CompileSeriesFailsFastOnContractViolation)
{
    ThreadGuard thread_guard;
    par::setThreadCount(2);
    const hw::CouplingMap map = hw::linearDevice(8);
    // Second instance is larger than the device: a contract violation
    // that throws out of compileQaoaMaxcut and must abort the batch.
    std::vector<graph::Graph> pool = {testProblem(8), testProblem(12)};
    core::QaoaCompileOptions opts;
    opts.method = core::Method::Qaim;
    EXPECT_THROW(metrics::compileSeries(pool, map, opts),
                 std::runtime_error);
}

// ------------------------------------------------------------ rng state

TEST(RngStateTest, StateStringRoundTripsBitIdentically)
{
    Rng a(12345);
    for (int i = 0; i < 100; ++i)
        a.uniformInt(0, 1 << 20);
    const std::string state = a.stateString();
    Rng b(0);
    b.setStateString(state);
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(a.uniformInt(0, 1 << 20), b.uniformInt(0, 1 << 20));
}

TEST(RngStateTest, MalformedStateThrows)
{
    Rng rng(1);
    EXPECT_THROW(rng.setStateString("not a state"), std::runtime_error);
}

// --------------------------------------------------- checkpoint format

TEST(CheckpointTest, HexDoublesRoundTripExactly)
{
    for (double v : {0.0, -0.0, 1.0, -1.5, 3.141592653589793,
                     6.62607015e-34, 1.7976931348623157e308}) {
        const std::string text = opt::formatHexDouble(v);
        EXPECT_EQ(opt::parseHexDouble(text), v) << text;
    }
}

TEST(CheckpointTest, SerializeParseRoundTrip)
{
    opt::OptCheckpoint cp;
    cp.problem_hash = "deadbeef01234567";
    cp.phase = opt::OptPhase::Nm;
    cp.grid.cursor = {3, 7};
    cp.grid.best_x = {0.25, 1.75};
    cp.grid.best_value = -11.25;
    cp.grid.evaluations = 42;
    cp.grid.done = true;
    cp.nm.simplex = {{0.1, 0.2}, {0.3, 0.4}, {0.5, 0.6}};
    cp.nm.values = {-1.0, -2.0, -3.0};
    cp.nm.iterations = 17;
    cp.nm.evaluations = 23;
    cp.nm.initialized = true;
    cp.rng_state = "1 2 3 4 5";

    const opt::OptCheckpoint back =
        opt::parseCheckpoint(opt::serializeCheckpoint(cp));
    EXPECT_EQ(back.problem_hash, cp.problem_hash);
    EXPECT_EQ(back.phase, cp.phase);
    EXPECT_EQ(back.grid.cursor, cp.grid.cursor);
    EXPECT_EQ(back.grid.best_x, cp.grid.best_x);
    EXPECT_EQ(back.grid.best_value, cp.grid.best_value);
    EXPECT_EQ(back.grid.evaluations, cp.grid.evaluations);
    EXPECT_EQ(back.grid.done, cp.grid.done);
    EXPECT_EQ(back.nm.simplex, cp.nm.simplex);
    EXPECT_EQ(back.nm.values, cp.nm.values);
    EXPECT_EQ(back.nm.iterations, cp.nm.iterations);
    EXPECT_EQ(back.nm.evaluations, cp.nm.evaluations);
    EXPECT_EQ(back.nm.initialized, cp.nm.initialized);
    EXPECT_EQ(back.rng_state, cp.rng_state);
}

TEST(CheckpointTest, UnknownKeyAndBadFormatThrow)
{
    EXPECT_THROW(opt::parseCheckpoint("{\"format\": "
                                      "\"qaoa-opt-checkpoint-v1\", "
                                      "\"bogus\": \"1\"}"),
                 std::runtime_error);
    EXPECT_THROW(opt::parseCheckpoint("{\"format\": \"other-v9\"}"),
                 std::runtime_error);
    EXPECT_THROW(opt::parseCheckpoint("{}"), std::runtime_error);
}

TEST(CheckpointTest, SaveLoadFileRoundTrip)
{
    const std::string path =
        ::testing::TempDir() + "qaoa_checkpoint_roundtrip.json";
    std::remove(path.c_str());
    opt::OptCheckpoint missing;
    EXPECT_FALSE(opt::loadCheckpointFile(path, missing));

    opt::OptCheckpoint cp;
    cp.problem_hash = "cafe";
    cp.phase = opt::OptPhase::Done;
    cp.final_x = {0.5, 0.25};
    cp.final_value = -9.75;
    cp.final_evaluations = 150;
    opt::saveCheckpointFile(path, cp);

    opt::OptCheckpoint back;
    ASSERT_TRUE(opt::loadCheckpointFile(path, back));
    EXPECT_EQ(back.problem_hash, "cafe");
    EXPECT_EQ(back.phase, opt::OptPhase::Done);
    EXPECT_EQ(back.final_x, cp.final_x);
    EXPECT_EQ(back.final_value, cp.final_value);
    EXPECT_EQ(back.final_evaluations, cp.final_evaluations);
    std::remove(path.c_str());
}

// ------------------------------------------------- resumable optimizers

TEST(ResumableOptTest, GridResumeMatchesStraightRun)
{
    const opt::Objective f = [](const std::vector<double> &x) {
        return (x[0] - 0.3) * (x[0] - 0.3) + (x[1] + 0.2) * (x[1] + 0.2);
    };
    const std::vector<opt::GridAxis> axes{{-1.0, 1.0, 9},
                                          {-1.0, 1.0, 7}};
    const opt::OptResult straight = opt::gridSearch(f, axes);

    for (std::uint64_t cancel_at : {0ULL, 1ULL, 10ULL, 31ULL, 62ULL}) {
        CancelToken token;
        token.cancelAfter(cancel_at);
        RunGuard guard(token, Deadline::never());
        opt::OptHooks hooks;
        hooks.guard = &guard;
        opt::GridSearchState state;
        try {
            opt::gridSearchResume(f, axes, state, hooks);
        } catch (const CancelledError &) {
            // Cancellation is the expected outcome. qe-allow(QE101)
        }
        const opt::OptResult resumed =
            opt::gridSearchResume(f, axes, state);
        EXPECT_EQ(resumed.x, straight.x);
        EXPECT_EQ(resumed.value, straight.value);
        EXPECT_EQ(resumed.evaluations, straight.evaluations);
    }
}

TEST(ResumableOptTest, NelderMeadResumeMatchesStraightRun)
{
    const opt::Objective f = [](const std::vector<double> &x) {
        const double a = x[0] - 1.0, b = x[1] + 0.5;
        return a * a + 3.0 * b * b + 0.1 * a * b;
    };
    const std::vector<double> x0{0.0, 0.0};
    const opt::OptResult straight = opt::nelderMead(f, x0);

    for (std::uint64_t cancel_at : {0ULL, 3ULL, 20ULL, 100ULL}) {
        CancelToken token;
        token.cancelAfter(cancel_at);
        RunGuard guard(token, Deadline::never());
        opt::OptHooks hooks;
        hooks.guard = &guard;
        opt::NelderMeadState state;
        try {
            opt::nelderMeadResume(f, x0, {}, state, hooks);
        } catch (const CancelledError &) {
            // Cancellation is the expected outcome. qe-allow(QE101)
        }
        const opt::OptResult resumed =
            opt::nelderMeadResume(f, x0, {}, state);
        EXPECT_EQ(resumed.x, straight.x);
        EXPECT_EQ(resumed.value, straight.value);
        EXPECT_EQ(resumed.iterations, straight.iterations);
        EXPECT_EQ(resumed.evaluations, straight.evaluations);
    }
}

TEST(ResumableOptTest, KillAndResumeP1IsBitIdentical)
{
    const graph::Graph problem = testProblem(8);
    const metrics::P1Parameters straight = metrics::optimizeP1(problem);

    const std::string path =
        ::testing::TempDir() + "qaoa_p1_resume.json";
    for (std::uint64_t cancel_at : {0ULL, 7ULL, 40ULL, 150ULL, 400ULL}) {
        std::remove(path.c_str());
        // "Kill" the run by cancelling after a randomized poll count;
        // the checkpoint holds the last committed optimizer step.
        CancelToken token;
        token.cancelAfter(cancel_at);
        RunGuard guard(token, Deadline::never());
        metrics::OptimizeP1Options first;
        first.guard = &guard;
        first.checkpoint_path = path;
        bool finished_first_try = false;
        try {
            metrics::optimizeP1Checkpointed(problem, first);
            finished_first_try = true;
        } catch (const CancelledError &) {
            // Cancellation is the expected outcome. qe-allow(QE101)
        }

        // A very early kill may die before the first committed step —
        // then there is no checkpoint and the rerun starts fresh, which
        // must still match the straight run.
        const bool have_checkpoint =
            std::ifstream(path.c_str()).good();
        metrics::OptimizeP1Options second;
        second.checkpoint_path = path;
        second.resume = true;
        const metrics::P1Run resumed =
            metrics::optimizeP1Checkpointed(problem, second);
        EXPECT_EQ(resumed.params.gamma, straight.gamma)
            << "cancel_at=" << cancel_at;
        EXPECT_EQ(resumed.params.beta, straight.beta);
        EXPECT_EQ(resumed.params.expected_cut, straight.expected_cut);
        if (!finished_first_try && have_checkpoint) {
            EXPECT_TRUE(resumed.resumed);
        }
    }
    std::remove(path.c_str());
}

TEST(ResumableOptTest, CheckpointForDifferentProblemIsRejected)
{
    const std::string path =
        ::testing::TempDir() + "qaoa_p1_wrong_problem.json";
    std::remove(path.c_str());
    metrics::OptimizeP1Options save_opts;
    save_opts.checkpoint_path = path;
    metrics::optimizeP1Checkpointed(testProblem(8), save_opts);

    metrics::OptimizeP1Options resume_opts;
    resume_opts.checkpoint_path = path;
    resume_opts.resume = true;
    EXPECT_THROW(
        metrics::optimizeP1Checkpointed(testProblem(10), resume_opts),
        std::runtime_error);
    std::remove(path.c_str());
}

} // namespace
} // namespace qaoa
