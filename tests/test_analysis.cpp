/** @file
 * Tests for the static analysis core: dependency DAG, timing pass, ESP
 * cost model and quality budgets.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "analysis/budget.hpp"
#include "analysis/dag.hpp"
#include "analysis/esp.hpp"
#include "analysis/quality.hpp"
#include "analysis/timing.hpp"
#include "circuit/layers.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "hardware/devices.hpp"
#include "qaoa/api.hpp"
#include "sim/success.hpp"

namespace qaoa::analysis {
namespace {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateType;

/** Random hardware-shaped circuit on @p n qubits (1q + 2q + barriers). */
Circuit
randomCircuit(int n, int gates, Rng &rng)
{
    Circuit c(n);
    for (int i = 0; i < gates; ++i) {
        int a = rng.uniformInt(0, n - 1);
        int b = rng.uniformInt(0, n - 1);
        switch (rng.uniformInt(0, 4)) {
          case 0: c.add(Gate::h(a)); break;
          case 1: c.add(Gate::rz(a, 0.1 + 0.1 * a)); break;
          case 2:
            if (a != b)
                c.add(Gate::cnot(a, b));
            break;
          case 3:
            if (a != b)
                c.add(Gate::cphase(a, b, 0.4));
            break;
          case 4:
            if (i % 7 == 0)
                c.add(Gate::barrier());
            break;
        }
    }
    return c;
}

TEST(CircuitDag, ChainAccessorsSkipBarriers)
{
    Circuit c(2);
    c.add(Gate::h(0));       // 0
    c.add(Gate::barrier());  // 1
    c.add(Gate::cnot(0, 1)); // 2
    c.add(Gate::rz(1, 0.3)); // 3
    CircuitDag dag(c);

    EXPECT_EQ(dag.nextOnQubit(0, 0), 2);
    EXPECT_EQ(dag.prevOnQubit(2, 0), 0);
    EXPECT_EQ(dag.prevOnQubit(2, 1), -1);
    EXPECT_EQ(dag.nextOnQubit(2, 1), 3);
    EXPECT_EQ(dag.nextOnQubit(3, 1), -1);
}

TEST(CircuitDag, BarrierIsSynchronizationNode)
{
    Circuit c(2);
    c.add(Gate::h(0));      // 0
    c.add(Gate::h(1));      // 1
    c.add(Gate::barrier()); // 2
    c.add(Gate::h(0));      // 3
    CircuitDag dag(c);

    // The barrier depends on both earlier gates; gate 3 depends on the
    // barrier, not directly on gate 0.
    std::set<int> bpreds(dag.preds(2).begin(), dag.preds(2).end());
    EXPECT_EQ(bpreds, (std::set<int>{0, 1}));
    ASSERT_EQ(dag.preds(3).size(), 1u);
    EXPECT_EQ(dag.preds(3)[0], 2);
    EXPECT_EQ(dag.layerOf(2), -1);
    EXPECT_EQ(dag.layerOf(3), 1);
}

TEST(CircuitDag, LayersMatchAsapLayersSeeded)
{
    Rng rng(301);
    for (int trial = 0; trial < 10; ++trial) {
        Circuit c = randomCircuit(6, 50, rng);
        CircuitDag dag(c);
        auto layers = circuit::asapLayers(c);
        EXPECT_EQ(dag.layerCount(), static_cast<int>(layers.size()));
        for (std::size_t li = 0; li < layers.size(); ++li)
            for (std::size_t gi : layers[li])
                EXPECT_EQ(dag.layerOf(static_cast<int>(gi)),
                          static_cast<int>(li));
    }
}

TEST(CircuitDag, EdgesAreConsistentAndAcyclicSeeded)
{
    Rng rng(302);
    Circuit c = randomCircuit(5, 60, rng);
    CircuitDag dag(c);
    const int n = static_cast<int>(c.gates().size());
    for (int gi = 0; gi < n; ++gi) {
        for (int p : dag.preds(gi)) {
            EXPECT_LT(p, gi); // program order is a topological order
            const auto &succ = dag.succs(p);
            EXPECT_NE(std::find(succ.begin(), succ.end(), gi),
                      succ.end());
        }
    }
}

TEST(CircuitDag, GatesOnPartitionTheCircuit)
{
    Rng rng(303);
    Circuit c = randomCircuit(4, 40, rng);
    CircuitDag dag(c);
    int counted = 0;
    for (int q = 0; q < 4; ++q) {
        int prev = -1;
        for (int gi : dag.gatesOn(q)) {
            const Gate &g = c.gates()[static_cast<std::size_t>(gi)];
            EXPECT_TRUE(g.q0 == q || g.q1 == q);
            EXPECT_GT(gi, prev); // program order
            prev = gi;
            counted += 1;
        }
    }
    int expected = 0;
    for (const Gate &g : c.gates()) {
        if (g.type == GateType::BARRIER)
            continue;
        expected += g.q1 >= 0 ? 2 : 1;
    }
    EXPECT_EQ(counted, expected);
}

TEST(Timing, ExactScheduleOfSerialChain)
{
    Circuit c(2);
    c.add(Gate::h(0));          // 50 ns
    c.add(Gate::cnot(0, 1));    // 300 ns
    c.add(Gate::measure(1, 0)); // 1000 ns
    TimingAnalysis t = analyzeTiming(c);

    EXPECT_DOUBLE_EQ(t.makespan_ns, 1350.0);
    EXPECT_DOUBLE_EQ(t.start_ns[1], 50.0);
    EXPECT_DOUBLE_EQ(t.finish_ns[1], 350.0);
    ASSERT_EQ(t.critical_path.size(), 3u);
    EXPECT_EQ(t.critical_path[0], 0);
    EXPECT_EQ(t.critical_path[2], 2);

    // Qubit 1 waits 50 ns for the H on qubit 0 to finish, but the window
    // starts at its own first gate, so no internal idle gap exists.
    EXPECT_DOUBLE_EQ(t.qubits[1].first_busy_ns, 50.0);
    EXPECT_DOUBLE_EQ(t.qubits[1].busy_ns, 1300.0);
    EXPECT_DOUBLE_EQ(t.qubits[1].idle_ns, 0.0);
}

TEST(Timing, VirtualGatesAreFree)
{
    Circuit c(1);
    c.add(Gate::rz(0, 0.7));
    c.add(Gate::u1(0, 0.2));
    c.add(Gate::z(0));
    EXPECT_DOUBLE_EQ(analyzeTiming(c).makespan_ns, 0.0);
}

TEST(Timing, IdleWindowBetweenBursts)
{
    // Qubit 0 acts, waits out three serial CNOTs on {1, 2}, acts again.
    Circuit c(3);
    c.add(Gate::h(0));
    c.add(Gate::h(1));
    c.add(Gate::cnot(1, 2));
    c.add(Gate::cnot(2, 1));
    c.add(Gate::cnot(1, 2));
    c.add(Gate::barrier());
    c.add(Gate::h(0));
    TimingAnalysis t = analyzeTiming(c);

    bool found = false;
    for (const IdleWindow &w : t.idle_windows) {
        if (w.qubit != 0)
            continue;
        found = true;
        EXPECT_DOUBLE_EQ(w.start_ns, 50.0);
        EXPECT_DOUBLE_EQ(w.end_ns, 950.0); // barrier frontier
        EXPECT_EQ(w.before_gate, 6);
    }
    EXPECT_TRUE(found);
    EXPECT_DOUBLE_EQ(t.qubits[0].idle_ns, 900.0);
}

TEST(Timing, ExecutionTimeNsMatchesMakespanSeeded)
{
    Rng rng(304);
    for (int trial = 0; trial < 5; ++trial) {
        Circuit c = randomCircuit(5, 40, rng);
        EXPECT_DOUBLE_EQ(executionTimeNs(c), analyzeTiming(c).makespan_ns);
    }
}

TEST(Timing, LegacyDecoherenceFactorEquivalence)
{
    // decoherenceFactor == product over qubits of exp(-window / T2),
    // i.e. the analyzeTiming coherence with T1 = infinity.
    Rng rng(305);
    Circuit c = randomCircuit(5, 40, rng);
    const double t2 = 50000.0;
    TimingAnalysis t = analyzeTiming(c);
    double expected = 1.0;
    for (const QubitActivity &q : t.qubits)
        expected *= std::exp(-q.windowNs() / t2);
    EXPECT_NEAR(decoherenceFactor(c, t2), expected, 1e-12);
}

TEST(Timing, DecoherenceFactorRejectsNonPositiveT2)
{
    Circuit c(1);
    c.add(Gate::h(0));
    EXPECT_THROW(decoherenceFactor(c, 0.0), std::runtime_error);
}

TEST(Timing, CalibrationT1T2Used)
{
    hw::CouplingMap map = hw::linearDevice(2);
    hw::CalibrationData calib(map);
    calib.setT2Ns(0, 1000.0); // much shorter than the 70 us default
    Circuit c(2);
    c.add(Gate::h(0));
    c.add(Gate::h(1));

    TimingOptions with_calib;
    with_calib.calibration = &calib;
    TimingAnalysis t = analyzeTiming(c, with_calib);
    EXPECT_NEAR(t.coherence[0], std::exp(-50.0 / 1000.0), 1e-12);
    EXPECT_NEAR(t.coherence[1], std::exp(-50.0 / 70000.0), 1e-12);
}

TEST(Esp, MatchesSimSuccessProbabilityBitForBit)
{
    hw::CouplingMap tokyo = hw::ibmqTokyo20();
    Rng crng(2020);
    hw::CalibrationData calib = hw::randomCalibration(tokyo, crng);
    Rng grng(77);
    graph::Graph g = graph::erdosRenyi(12, 0.4, grng);

    core::QaoaCompileOptions opts;
    opts.method = core::Method::Vic;
    opts.calibration = &calib;
    transpiler::CompileResult r = core::compileQaoaMaxcut(g, tokyo, opts);
    ASSERT_TRUE(r.ok());

    EspBreakdown esp = estimateEsp(r.compiled, calib);
    EXPECT_EQ(esp.total, sim::successProbability(r.compiled, calib));
}

TEST(Esp, AttributionFactorsMultiplyBackToTotal)
{
    hw::CouplingMap tokyo = hw::ibmqTokyo20();
    Rng crng(2021);
    hw::CalibrationData calib = hw::randomCalibration(tokyo, crng);
    Rng grng(78);
    graph::Graph g = graph::randomRegular(14, 3, grng);

    core::QaoaCompileOptions opts;
    opts.method = core::Method::Ic;
    opts.calibration = &calib;
    transpiler::CompileResult r = core::compileQaoaMaxcut(g, tokyo, opts);
    ASSERT_TRUE(r.ok());
    EspBreakdown esp = estimateEsp(r.physical, calib);

    EXPECT_NEAR(esp.total, esp.one_qubit * esp.two_qubit * esp.readout,
                1e-12);
    double per_qubit = 1.0;
    for (double f : esp.per_qubit)
        per_qubit *= f;
    EXPECT_NEAR(esp.total, per_qubit, 1e-9);
    EXPECT_GT(esp.two_qubit_gates, 0);
    EXPECT_EQ(esp.measurements, 14);
}

TEST(Esp, VirtualGatesAreFree)
{
    hw::CouplingMap map = hw::linearDevice(2);
    hw::CalibrationData calib(map);
    Circuit c(2);
    c.add(Gate::u1(0, 0.3));
    c.add(Gate::rz(1, 0.2));
    c.add(Gate::barrier());
    EspBreakdown esp = estimateEsp(c, calib);
    // U1 and BARRIER carry no error; RZ costs the 1q rate.
    EXPECT_DOUBLE_EQ(esp.total, 1.0 - calib.oneQubitError(1));
    EXPECT_EQ(esp.one_qubit_gates, 1);
}

TEST(Budget, ParseAndCheck)
{
    QualityBudget b = parseBudget(
        "{\"name\": \"t\", \"max_depth\": 10, \"min_esp\": 0.5}");
    EXPECT_EQ(b.name, "t");
    EXPECT_DOUBLE_EQ(b.max_depth, 10.0);
    EXPECT_DOUBLE_EQ(b.min_esp, 0.5);
    EXPECT_DOUBLE_EQ(b.max_gate_count, -1.0); // no bar

    QualitySummary s;
    s.depth = 12;
    s.esp = 0.6;
    LintReport r = checkBudget(s, b);
    EXPECT_EQ(r.count(Rule::BudgetViolation), 1); // depth only
    s.depth = 9;
    EXPECT_TRUE(checkBudget(s, b).spotless());
}

TEST(Budget, UnknownKeyThrows)
{
    EXPECT_THROW(parseBudget("{\"max_depht\": 10}"), std::runtime_error);
}

TEST(Budget, MalformedJsonThrows)
{
    EXPECT_THROW(parseBudget(""), std::runtime_error);
    EXPECT_THROW(parseBudget("{\"max_depth\": }"), std::runtime_error);
    EXPECT_THROW(parseBudget("{\"max_depth\": 1} trailing"),
                 std::runtime_error);
}

TEST(Quality, AnalyzeCircuitFillsSummary)
{
    hw::CouplingMap tokyo = hw::ibmqTokyo20();
    hw::CalibrationData calib(tokyo, 0.02);
    Rng grng(79);
    graph::Graph g = graph::erdosRenyi(10, 0.4, grng);

    core::QaoaCompileOptions opts;
    opts.method = core::Method::Ip;
    opts.calibration = &calib;
    opts.decompose_to_basis = false;
    transpiler::CompileResult r = core::compileQaoaMaxcut(g, tokyo, opts);
    ASSERT_TRUE(r.ok());

    QualityOptions qopts;
    qopts.lint.map = &tokyo;
    qopts.lint.calibration = &calib;
    QualityReport q = analyzeCircuit(r.physical, qopts);
    EXPECT_EQ(q.summary.depth, r.physical.depth());
    EXPECT_EQ(q.summary.gate_count, r.physical.gateCount());
    EXPECT_EQ(q.summary.swap_count,
              r.physical.countType(GateType::SWAP));
    EXPECT_GT(q.summary.execution_ns, 0.0);
    EXPECT_GT(q.summary.esp, 0.0);
    EXPECT_LE(q.summary.esp, 1.0);
    EXPECT_NEAR(q.summary.esp, q.esp.total, 0.0);
    EXPECT_GT(q.summary.coherence, 0.0);
}

TEST(Quality, CompilePipelineRecordsReport)
{
    hw::CouplingMap tokyo = hw::ibmqTokyo20();
    hw::CalibrationData calib(tokyo, 0.02);
    Rng grng(80);
    graph::Graph g = graph::randomRegular(12, 3, grng);

    core::QaoaCompileOptions opts;
    opts.method = core::Method::Vic;
    opts.calibration = &calib;
    transpiler::CompileResult r = core::compileQaoaMaxcut(g, tokyo, opts);
    ASSERT_TRUE(r.ok());
    // checkQuality() ran inside the pipeline.
    EXPECT_GT(r.quality.summary.gate_count, 0);
    EXPECT_GT(r.quality.summary.esp, 0.0);
    EXPECT_TRUE(r.quality.clean(Severity::Warning));

    opts.analyze_quality = false;
    transpiler::CompileResult off = core::compileQaoaMaxcut(g, tokyo, opts);
    ASSERT_TRUE(off.ok());
    EXPECT_EQ(off.quality.summary.gate_count, 0);
    EXPECT_LT(off.quality.summary.esp, 0.0); // unset
}

} // namespace
} // namespace qaoa::analysis
