/** @file Tests for the linear SWAP-network QAOA compiler. */

#include <gtest/gtest.h>

#include <set>

#include "graph/generators.hpp"
#include "hardware/devices.hpp"
#include "qaoa/api.hpp"
#include "qaoa/swap_network.hpp"
#include "test_util.hpp"
#include "transpiler/router.hpp"

namespace qaoa::core {
namespace {

TEST(FindLinearPath, LineAndRing)
{
    hw::CouplingMap lin = hw::linearDevice(5);
    std::vector<int> p = findLinearPath(lin, 5);
    ASSERT_EQ(p.size(), 5u);
    for (std::size_t i = 0; i + 1 < p.size(); ++i)
        EXPECT_TRUE(lin.coupled(p[i], p[i + 1]));

    hw::CouplingMap ring = hw::ringDevice(6);
    EXPECT_EQ(findLinearPath(ring, 6).size(), 6u);
    EXPECT_EQ(findLinearPath(ring, 3).size(), 3u);
}

TEST(FindLinearPath, GridAndRealDevices)
{
    // Grids have serpentine Hamiltonian paths.
    hw::CouplingMap grid = hw::gridDevice(4, 4);
    std::vector<int> p = findLinearPath(grid, 16);
    ASSERT_EQ(p.size(), 16u);
    std::set<int> unique(p.begin(), p.end());
    EXPECT_EQ(unique.size(), 16u);
    for (std::size_t i = 0; i + 1 < p.size(); ++i)
        EXPECT_TRUE(grid.coupled(p[i], p[i + 1]));

    EXPECT_EQ(findLinearPath(hw::ibmqTokyo20(), 20).size(), 20u);
    EXPECT_EQ(findLinearPath(hw::ibmqMelbourne15(), 15).size(), 15u);
}

TEST(FindLinearPath, ImpossibleCases)
{
    // A star has no simple 3-path through the hub... actually it does
    // (leaf-hub-leaf); but no 4-path.
    graph::Graph star(5);
    for (int v = 1; v < 5; ++v)
        star.addEdge(0, v);
    hw::CouplingMap dev(std::move(star), "star");
    EXPECT_EQ(findLinearPath(dev, 3).size(), 3u);
    EXPECT_TRUE(findLinearPath(dev, 4).empty());
    EXPECT_THROW(findLinearPath(dev, 6), std::runtime_error);
}

TEST(SwapNetwork, CompleteGraphDistributionMatchesLogical)
{
    for (int n : {3, 4, 5}) {
        graph::Graph g = graph::completeGraph(n);
        hw::CouplingMap lin = hw::linearDevice(n);
        transpiler::CompileResult r =
            swapNetworkCompile(g, lin, {0.8}, {0.4});
        EXPECT_TRUE(transpiler::satisfiesCoupling(r.compiled, lin));
        circuit::Circuit logical = buildQaoaCircuit(g, {0.8}, {0.4});
        auto expected = testutil::exactClassicalDistribution(logical);
        auto actual = testutil::exactClassicalDistribution(r.compiled);
        EXPECT_LT(testutil::totalVariation(expected, actual), 1e-9)
            << "n = " << n;
    }
}

TEST(SwapNetwork, SparseGraphDistributionMatchesLogical)
{
    Rng rng(9);
    graph::Graph g = graph::erdosRenyi(5, 0.4, rng);
    if (g.numEdges() == 0)
        g.addEdge(0, 1);
    hw::CouplingMap grid = hw::gridDevice(2, 3);
    transpiler::CompileResult r =
        swapNetworkCompile(g, grid, {0.6}, {0.3});
    circuit::Circuit logical = buildQaoaCircuit(g, {0.6}, {0.3});
    EXPECT_LT(testutil::totalVariation(
                  testutil::exactClassicalDistribution(logical),
                  testutil::exactClassicalDistribution(r.compiled)),
              1e-9);
}

TEST(SwapNetwork, MultiLevelMatchesLogical)
{
    graph::Graph g = graph::completeGraph(4);
    hw::CouplingMap lin = hw::linearDevice(4);
    transpiler::CompileResult r =
        swapNetworkCompile(g, lin, {0.8, 0.3}, {0.4, 0.2});
    circuit::Circuit logical =
        buildQaoaCircuit(g, {0.8, 0.3}, {0.4, 0.2});
    EXPECT_LT(testutil::totalVariation(
                  testutil::exactClassicalDistribution(logical),
                  testutil::exactClassicalDistribution(r.compiled)),
              1e-9);
}

TEST(SwapNetwork, DepthScalesLinearly)
{
    // Complete-graph cost layers in depth O(n): doubling n should far
    // less than quadruple the depth (a routed compile scales worse).
    hw::CouplingMap lin8 = hw::linearDevice(8);
    hw::CouplingMap lin16 = hw::linearDevice(16);
    int d8 = swapNetworkCompile(graph::completeGraph(8), lin8, {0.7},
                                {0.35})
                 .report.depth;
    int d16 = swapNetworkCompile(graph::completeGraph(16), lin16, {0.7},
                                 {0.35})
                  .report.depth;
    EXPECT_LT(d16, 3 * d8);
}

TEST(SwapNetwork, BeatsRoutedCompileOnDenseGraphs)
{
    // The motivating case: complete graphs on a line, where routing
    // search can't help but the structured network is depth-optimal.
    graph::Graph g = graph::completeGraph(10);
    hw::CouplingMap lin = hw::linearDevice(10);
    transpiler::CompileResult network =
        swapNetworkCompile(g, lin, {0.7}, {0.35});
    QaoaCompileOptions opts;
    opts.method = Method::Ic;
    transpiler::CompileResult routed = compileQaoaMaxcut(g, lin, opts);
    EXPECT_LT(network.report.depth, routed.report.depth);
}

TEST(SwapNetwork, WeightedEdgesCarryAngles)
{
    graph::Graph g(3);
    g.addEdge(0, 1, 2.0);
    g.addEdge(1, 2, 1.0);
    g.addEdge(0, 2, 0.5);
    hw::CouplingMap lin = hw::linearDevice(3);
    transpiler::CompileResult r =
        swapNetworkCompile(g, lin, {0.4}, {0.2}, false);
    // Three CPHASEs with angles 0.4 * {2.0, 1.0, 0.5}.
    std::multiset<double> angles;
    for (const auto &gate : r.compiled.gates())
        if (gate.type == circuit::GateType::CPHASE)
            angles.insert(gate.params[0]);
    EXPECT_EQ(angles.size(), 3u);
    EXPECT_EQ(angles.count(0.8), 1u);
    EXPECT_EQ(angles.count(0.4), 1u);
    EXPECT_EQ(angles.count(0.2), 1u);
}

TEST(SwapNetwork, FinalLayoutConsistentWithMeasures)
{
    graph::Graph g = graph::completeGraph(5);
    hw::CouplingMap lin = hw::linearDevice(5);
    transpiler::CompileResult r =
        swapNetworkCompile(g, lin, {0.7}, {0.35}, false);
    for (const auto &gate : r.compiled.gates()) {
        if (gate.type == circuit::GateType::MEASURE) {
            EXPECT_EQ(gate.q0, r.final_layout.physicalOf(gate.cbit));
        }
    }
}

TEST(SwapNetwork, ExplicitPathValidation)
{
    graph::Graph g = graph::completeGraph(3);
    hw::CouplingMap lin = hw::linearDevice(4);
    // Non-chain path rejected.
    EXPECT_THROW(swapNetworkCompile(g, lin, {0.7}, {0.35}, true,
                                    {0, 2, 3}),
                 std::runtime_error);
    // Valid explicit path accepted.
    EXPECT_NO_THROW(swapNetworkCompile(g, lin, {0.7}, {0.35}, true,
                                       {1, 2, 3}));
}

TEST(SwapNetwork, RejectsDeviceWithoutPath)
{
    graph::Graph star(5);
    for (int v = 1; v < 5; ++v)
        star.addEdge(0, v);
    hw::CouplingMap dev(std::move(star), "star");
    graph::Graph g = graph::completeGraph(4);
    EXPECT_THROW(swapNetworkCompile(g, dev, {0.7}, {0.35}),
                 std::runtime_error);
}

} // namespace
} // namespace qaoa::core
