/** @file Tests for ASAP layer partitioning. */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "analysis/dag.hpp"
#include "circuit/layers.hpp"
#include "common/rng.hpp"

namespace qaoa::circuit {
namespace {

TEST(AsapLayers, EmptyCircuit)
{
    Circuit c(2);
    EXPECT_TRUE(asapLayers(c).empty());
    EXPECT_EQ(layerCount(c), 0);
}

TEST(AsapLayers, ParallelGatesShareLayer)
{
    Circuit c(4);
    c.add(Gate::cnot(0, 1));
    c.add(Gate::cnot(2, 3));
    auto layers = asapLayers(c);
    ASSERT_EQ(layers.size(), 1u);
    EXPECT_EQ(layers[0].size(), 2u);
}

TEST(AsapLayers, SharedQubitSeparatesLayers)
{
    Circuit c(3);
    c.add(Gate::cnot(0, 1));
    c.add(Gate::cnot(1, 2));
    auto layers = asapLayers(c);
    ASSERT_EQ(layers.size(), 2u);
}

TEST(AsapLayers, LayerCountMatchesDepth)
{
    // Without barriers, ASAP layer count equals the depth metric.
    Rng rng(21);
    for (int trial = 0; trial < 20; ++trial) {
        Circuit c(6);
        for (int i = 0; i < 30; ++i) {
            int a = rng.uniformInt(0, 5);
            int b = rng.uniformInt(0, 5);
            if (a == b)
                c.add(Gate::h(a));
            else
                c.add(Gate::cnot(a, b));
        }
        EXPECT_EQ(layerCount(c), c.depth());
    }
}

TEST(AsapLayers, QubitsDisjointWithinLayer)
{
    Rng rng(22);
    Circuit c(8);
    for (int i = 0; i < 60; ++i) {
        int a = rng.uniformInt(0, 7);
        int b = rng.uniformInt(0, 7);
        if (a != b)
            c.add(Gate::cphase(a, b, 0.3));
    }
    for (const auto &layer : asapLayers(c)) {
        std::set<int> used;
        for (std::size_t gi : layer) {
            const Gate &g = c.gates()[gi];
            EXPECT_TRUE(used.insert(g.q0).second);
            EXPECT_TRUE(used.insert(g.q1).second);
        }
    }
}

TEST(AsapLayers, EveryGateAssignedExactlyOnce)
{
    Rng rng(23);
    Circuit c(5);
    for (int i = 0; i < 25; ++i)
        c.add(Gate::h(rng.uniformInt(0, 4)));
    auto layers = asapLayers(c);
    std::set<std::size_t> seen;
    for (const auto &layer : layers)
        for (std::size_t gi : layer)
            EXPECT_TRUE(seen.insert(gi).second);
    EXPECT_EQ(seen.size(), c.gates().size());
}

TEST(AsapLayers, BarrierForcesNewLayer)
{
    Circuit c(2);
    c.add(Gate::h(0));
    c.add(Gate::barrier());
    c.add(Gate::h(1));
    auto layers = asapLayers(c);
    ASSERT_EQ(layers.size(), 2u);
    EXPECT_EQ(layers[0].size(), 1u);
    EXPECT_EQ(layers[1].size(), 1u);
}

TEST(AsapLayers, RespectsProgramOrderPerQubit)
{
    Circuit c(2);
    c.add(Gate::rx(0, 0.1));
    c.add(Gate::rx(0, 0.2));
    c.add(Gate::rx(0, 0.3));
    auto layers = asapLayers(c);
    ASSERT_EQ(layers.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(layers[i][0], i);
}

TEST(AsapLayers, GatesScheduleAfterTheirOperandsSeeded)
{
    // ASAP legality: every gate lands in a strictly later layer than the
    // previous gate on each of its qubits, and barriers act as a full
    // frontier (nothing after a barrier shares a layer with anything
    // before it).
    Rng rng(24);
    for (int trial = 0; trial < 10; ++trial) {
        Circuit c(6);
        for (int i = 0; i < 50; ++i) {
            int a = rng.uniformInt(0, 5), b = rng.uniformInt(0, 5);
            if (i % 11 == 10)
                c.add(Gate::barrier());
            else if (a != b)
                c.add(Gate::cnot(a, b));
            else
                c.add(Gate::rx(a, 0.2));
        }
        auto layers = asapLayers(c);
        std::vector<int> layer_of(c.gates().size(), -1);
        for (std::size_t li = 0; li < layers.size(); ++li)
            for (std::size_t gi : layers[li])
                layer_of[gi] = static_cast<int>(li);

        std::vector<int> last_layer(6, -1);
        int frontier = 0;
        for (std::size_t gi = 0; gi < c.gates().size(); ++gi) {
            const Gate &g = c.gates()[gi];
            if (g.type == GateType::BARRIER) {
                for (std::size_t gj = 0; gj < gi; ++gj)
                    if (layer_of[gj] >= 0)
                        frontier = std::max(frontier, layer_of[gj] + 1);
                continue;
            }
            ASSERT_GE(layer_of[gi], 0);
            EXPECT_GE(layer_of[gi], frontier);
            EXPECT_GT(layer_of[gi], last_layer[g.q0]);
            last_layer[g.q0] = layer_of[gi];
            if (g.q1 >= 0) {
                EXPECT_GT(layer_of[gi], last_layer[g.q1]);
                last_layer[g.q1] = layer_of[gi];
            }
        }
    }
}

TEST(AsapLayers, AgreesWithCircuitDagSeeded)
{
    // asapLayers() and the analysis CircuitDag compute layers with
    // independent sweeps; they must agree gate by gate.
    Rng rng(25);
    for (int trial = 0; trial < 10; ++trial) {
        Circuit c(5);
        for (int i = 0; i < 40; ++i) {
            int a = rng.uniformInt(0, 4), b = rng.uniformInt(0, 4);
            if (i % 13 == 12)
                c.add(Gate::barrier());
            else if (a != b)
                c.add(Gate::cphase(a, b, 0.3));
            else
                c.add(Gate::h(a));
        }
        analysis::CircuitDag dag(c);
        auto layers = asapLayers(c);
        EXPECT_EQ(dag.layerCount(), static_cast<int>(layers.size()));
        for (std::size_t li = 0; li < layers.size(); ++li)
            for (std::size_t gi : layers[li])
                EXPECT_EQ(dag.layerOf(static_cast<int>(gi)),
                          static_cast<int>(li));
    }
}

} // namespace
} // namespace qaoa::circuit
