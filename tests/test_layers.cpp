/** @file Tests for ASAP layer partitioning. */

#include <gtest/gtest.h>

#include <set>

#include "circuit/layers.hpp"
#include "common/rng.hpp"

namespace qaoa::circuit {
namespace {

TEST(AsapLayers, EmptyCircuit)
{
    Circuit c(2);
    EXPECT_TRUE(asapLayers(c).empty());
    EXPECT_EQ(layerCount(c), 0);
}

TEST(AsapLayers, ParallelGatesShareLayer)
{
    Circuit c(4);
    c.add(Gate::cnot(0, 1));
    c.add(Gate::cnot(2, 3));
    auto layers = asapLayers(c);
    ASSERT_EQ(layers.size(), 1u);
    EXPECT_EQ(layers[0].size(), 2u);
}

TEST(AsapLayers, SharedQubitSeparatesLayers)
{
    Circuit c(3);
    c.add(Gate::cnot(0, 1));
    c.add(Gate::cnot(1, 2));
    auto layers = asapLayers(c);
    ASSERT_EQ(layers.size(), 2u);
}

TEST(AsapLayers, LayerCountMatchesDepth)
{
    // Without barriers, ASAP layer count equals the depth metric.
    Rng rng(21);
    for (int trial = 0; trial < 20; ++trial) {
        Circuit c(6);
        for (int i = 0; i < 30; ++i) {
            int a = rng.uniformInt(0, 5);
            int b = rng.uniformInt(0, 5);
            if (a == b)
                c.add(Gate::h(a));
            else
                c.add(Gate::cnot(a, b));
        }
        EXPECT_EQ(layerCount(c), c.depth());
    }
}

TEST(AsapLayers, QubitsDisjointWithinLayer)
{
    Rng rng(22);
    Circuit c(8);
    for (int i = 0; i < 60; ++i) {
        int a = rng.uniformInt(0, 7);
        int b = rng.uniformInt(0, 7);
        if (a != b)
            c.add(Gate::cphase(a, b, 0.3));
    }
    for (const auto &layer : asapLayers(c)) {
        std::set<int> used;
        for (std::size_t gi : layer) {
            const Gate &g = c.gates()[gi];
            EXPECT_TRUE(used.insert(g.q0).second);
            EXPECT_TRUE(used.insert(g.q1).second);
        }
    }
}

TEST(AsapLayers, EveryGateAssignedExactlyOnce)
{
    Rng rng(23);
    Circuit c(5);
    for (int i = 0; i < 25; ++i)
        c.add(Gate::h(rng.uniformInt(0, 4)));
    auto layers = asapLayers(c);
    std::set<std::size_t> seen;
    for (const auto &layer : layers)
        for (std::size_t gi : layer)
            EXPECT_TRUE(seen.insert(gi).second);
    EXPECT_EQ(seen.size(), c.gates().size());
}

TEST(AsapLayers, BarrierForcesNewLayer)
{
    Circuit c(2);
    c.add(Gate::h(0));
    c.add(Gate::barrier());
    c.add(Gate::h(1));
    auto layers = asapLayers(c);
    ASSERT_EQ(layers.size(), 2u);
    EXPECT_EQ(layers[0].size(), 1u);
    EXPECT_EQ(layers[1].size(), 1u);
}

TEST(AsapLayers, RespectsProgramOrderPerQubit)
{
    Circuit c(2);
    c.add(Gate::rx(0, 0.1));
    c.add(Gate::rx(0, 0.2));
    c.add(Gate::rx(0, 0.3));
    auto layers = asapLayers(c);
    ASSERT_EQ(layers.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(layers[i][0], i);
}

} // namespace
} // namespace qaoa::circuit
