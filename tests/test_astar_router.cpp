/** @file
 * Tests for the A* layered router ([47]-family backend): compliance,
 * semantics, per-layer optimality on small cases, and comparison with
 * the greedy front-layer router.
 */

#include <gtest/gtest.h>

#include "circuit/layers.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "hardware/devices.hpp"
#include "qaoa/problem.hpp"
#include "test_util.hpp"
#include "transpiler/astar_router.hpp"
#include "transpiler/layout_passes.hpp"

namespace qaoa::transpiler {
namespace {

using circuit::Circuit;
using circuit::Gate;

TEST(AStarRouter, AdjacentGatesNeedNoSwaps)
{
    hw::CouplingMap lin = hw::linearDevice(4);
    Circuit c(4);
    c.add(Gate::cnot(0, 1));
    c.add(Gate::cnot(2, 3));
    RoutedCircuit r = routeCircuitAStar(c, lin, Layout::identity(4, 4));
    EXPECT_EQ(r.swap_count, 0);
    EXPECT_TRUE(satisfiesCoupling(r.physical, lin));
}

TEST(AStarRouter, SingleGateUsesMinimalSwaps)
{
    // Distance-d gate on a line needs exactly d-1 SWAPs; A* must find
    // that optimum for a single-gate layer.
    for (int n : {3, 4, 5, 6}) {
        hw::CouplingMap lin = hw::linearDevice(n);
        Circuit c(n);
        c.add(Gate::cnot(0, n - 1));
        RoutedCircuit r =
            routeCircuitAStar(c, lin, Layout::identity(n, n));
        EXPECT_EQ(r.swap_count, n - 2) << "line of " << n;
    }
}

TEST(AStarRouter, TwoGateLayerOptimal)
{
    // Layout 0,1,2,3 on a line; layer { (0,2), (1,3) }.  One SWAP of the
    // middle pair satisfies both gates at once — A* must find it.
    hw::CouplingMap lin = hw::linearDevice(4);
    Circuit c(4);
    c.add(Gate::cphase(0, 2, 0.5));
    c.add(Gate::cphase(1, 3, 0.5));
    RoutedCircuit r = routeCircuitAStar(c, lin, Layout::identity(4, 4));
    EXPECT_EQ(r.swap_count, 1);
    EXPECT_TRUE(satisfiesCoupling(r.physical, lin));
}

TEST(AStarRouter, PreservesSemantics)
{
    hw::CouplingMap grid = hw::gridDevice(2, 3);
    Rng rng(61);
    for (int trial = 0; trial < 8; ++trial) {
        Circuit c(5);
        for (int i = 0; i < 20; ++i) {
            int a = rng.uniformInt(0, 4), b = rng.uniformInt(0, 4);
            if (a == b)
                c.add(Gate::h(a));
            else
                c.add(Gate::cphase(a, b, rng.uniformReal(0, 3)));
        }
        Layout init = randomLayout(5, grid, rng);
        RoutedCircuit r = routeCircuitAStar(c, grid, init);
        EXPECT_TRUE(satisfiesCoupling(r.physical, grid));

        // Reference = initial-layout-permuted logical circuit; undo the
        // routing permutation with explicit SWAPs.
        Circuit reference(6);
        for (const Gate &g : c.gates()) {
            Gate m = g;
            m.q0 = init.physicalOf(g.q0);
            if (g.arity() == 2)
                m.q1 = init.physicalOf(g.q1);
            reference.add(m);
        }
        Circuit undo = r.physical;
        Layout current = r.final_layout;
        for (int l = 0; l < 5; ++l) {
            int want = init.physicalOf(l);
            int have = current.physicalOf(l);
            if (want != have) {
                undo.add(Gate::swap(have, want));
                current.swapPhysical(have, want);
            }
        }
        EXPECT_TRUE(testutil::equivalentUpToGlobalPhase(reference, undo))
            << "trial " << trial;
    }
}

TEST(AStarRouter, GateConservation)
{
    hw::CouplingMap tokyo = hw::ibmqTokyo20();
    Rng rng(62);
    graph::Graph g = graph::randomRegular(12, 3, rng);
    Circuit c = core::buildQaoaCircuit(g, {0.7}, {0.35}, false);
    Layout init = randomLayout(12, tokyo, rng);
    RoutedCircuit r = routeCircuitAStar(c, tokyo, init);
    EXPECT_EQ(r.physical.gateCount() - r.swap_count, c.gateCount());
}

TEST(AStarRouter, SearchBeatsDegenerateWalking)
{
    // The search must never lose to its own budget-exhausted fallback
    // (gate-at-a-time shortest-path walking), and should stay within a
    // sane envelope of the greedy front-layer router.  (It may use more
    // SWAPs than greedy: the [47] model requires each layer compliant
    // *simultaneously*, a strictly harder constraint.)
    hw::CouplingMap grid = hw::gridDevice(3, 3);
    Rng rng(63);
    int astar_swaps = 0, walk_swaps = 0, greedy_swaps = 0;
    for (int trial = 0; trial < 8; ++trial) {
        graph::Graph g = graph::randomRegular(8, 3, rng);
        Circuit c = core::buildQaoaCircuit(g, {0.7}, {0.35}, false);
        Layout init = randomLayout(8, grid, rng);
        astar_swaps += routeCircuitAStar(c, grid, init).swap_count;
        AStarOptions walk;
        walk.max_expansions = 1;
        greedy_swaps += routeCircuit(c, grid, init).swap_count;
        walk_swaps += routeCircuitAStar(c, grid, init, walk).swap_count;
    }
    EXPECT_LE(astar_swaps, walk_swaps);
    EXPECT_LE(astar_swaps, greedy_swaps * 2);
}

TEST(AStarRouter, TinyExpansionBudgetStillTerminates)
{
    hw::CouplingMap lin = hw::linearDevice(6);
    Circuit c(6);
    c.add(Gate::cnot(0, 5));
    c.add(Gate::cnot(1, 4));
    AStarOptions opts;
    opts.max_expansions = 1; // force the fallback path
    RoutedCircuit r =
        routeCircuitAStar(c, lin, Layout::identity(6, 6), opts);
    EXPECT_TRUE(satisfiesCoupling(r.physical, lin));
    EXPECT_GT(r.swap_count, 0);
}

TEST(AStarRouter, MeasurementsRouted)
{
    hw::CouplingMap lin = hw::linearDevice(3);
    Circuit c(3);
    c.add(Gate::h(0));
    c.add(Gate::measure(0, 0));
    Layout init({2, 1, 0}, 3);
    RoutedCircuit r = routeCircuitAStar(c, lin, init);
    bool found = false;
    for (const Gate &g : r.physical.gates())
        if (g.type == circuit::GateType::MEASURE) {
            found = true;
            EXPECT_EQ(g.q0, 2); // logical 0 lives on physical 2
            EXPECT_EQ(g.cbit, 0);
        }
    EXPECT_TRUE(found);
}

TEST(AStarRouter, RejectsBadInputs)
{
    hw::CouplingMap lin = hw::linearDevice(4);
    Circuit c(4);
    c.add(Gate::cnot(0, 3));
    EXPECT_THROW(routeCircuitAStar(c, lin, Layout::identity(2, 4)),
                 std::runtime_error);
    AStarOptions opts;
    opts.max_expansions = 0;
    EXPECT_THROW(routeCircuitAStar(c, lin, Layout::identity(4, 4), opts),
                 std::runtime_error);
}

} // namespace
} // namespace qaoa::transpiler
