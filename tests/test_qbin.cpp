/**
 * @file
 * Tests for the qbin binary circuit codec: property/fuzz round trips
 * against randomly generated circuits over every GateType (all angles
 * compared as raw u64 bits), strict rejection of damaged documents
 * (truncated / bit-flipped / bad magic / bad version), the artifact
 * container, and the base64 shuttle used by the wire protocol.
 *
 * The fuzz iteration count scales with the QBIN_FUZZ_ITERS environment
 * variable so CI's sanitize job can run a deeper sweep than the
 * default developer loop.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "circuit/qasm.hpp"
#include "circuit/qasm_parser.hpp"
#include "circuit/qbin.hpp"
#include "common/rng.hpp"

namespace qaoa::circuit {
namespace {

int
fuzzIterations(int fallback)
{
    if (const char *env = std::getenv("QBIN_FUZZ_ITERS"))
        if (const int n = std::atoi(env); n > 0)
            return n;
    return fallback;
}

/** Angles that stress the bit-exactness claim, plus random fills. */
double
trickyAngle(Rng &rng)
{
    switch (rng.uniformInt(0, 7)) {
    case 0: return 0.0;
    case 1: return -0.0;
    case 2: return 1.0 / 3.0;
    case 3: return std::nextafter(0.7853981633974483, 1.0);
    case 4: return 5e-324; // Smallest subnormal.
    case 5: return std::numeric_limits<double>::max();
    case 6: return -rng.uniformReal(0.0, 6.2832);
    default: return rng.uniformReal(-100.0, 100.0);
    }
}

/** Random circuit exercising every GateType. */
Circuit
randomCircuit(Rng &rng, int max_qubits = 8, int max_gates = 40)
{
    const int n = rng.uniformInt(2, max_qubits);
    Circuit c(n);
    const int gates = rng.uniformInt(0, max_gates);
    for (int i = 0; i < gates; ++i) {
        const int q0 = rng.uniformInt(0, n - 1);
        int q1 = rng.uniformInt(0, n - 1);
        if (q1 == q0)
            q1 = (q1 + 1) % n;
        switch (rng.uniformInt(0, 15)) {
        case 0: c.add(Gate::h(q0)); break;
        case 1: c.add(Gate::x(q0)); break;
        case 2: c.add(Gate::y(q0)); break;
        case 3: c.add(Gate::z(q0)); break;
        case 4: c.add(Gate::rx(q0, trickyAngle(rng))); break;
        case 5: c.add(Gate::ry(q0, trickyAngle(rng))); break;
        case 6: c.add(Gate::rz(q0, trickyAngle(rng))); break;
        case 7: c.add(Gate::u1(q0, trickyAngle(rng))); break;
        case 8:
            c.add(Gate::u2(q0, trickyAngle(rng), trickyAngle(rng)));
            break;
        case 9:
            c.add(Gate::u3(q0, trickyAngle(rng), trickyAngle(rng),
                           trickyAngle(rng)));
            break;
        case 10: c.add(Gate::cnot(q0, q1)); break;
        case 11: c.add(Gate::cz(q0, q1)); break;
        case 12: c.add(Gate::cphase(q0, q1, trickyAngle(rng))); break;
        case 13: c.add(Gate::swap(q0, q1)); break;
        case 14: c.add(Gate::measure(q0, q0)); break;
        default: c.add(Gate::barrier()); break;
        }
    }
    return c;
}

TEST(Qbin, RoundTripsRandomCircuitsBitExactly)
{
    Rng rng(20260809);
    const int iters = fuzzIterations(200);
    for (int i = 0; i < iters; ++i) {
        const Circuit original = randomCircuit(rng);
        const std::string doc = qbin::encodeCircuit(original);
        const Circuit decoded = qbin::decodeCircuit(doc);
        ASSERT_TRUE(qbin::bitIdentical(original, decoded))
            << "iteration " << i << ": decode(encode(c)) != c";
        // Gate-for-gate identity, spelled out (bitIdentical is itself
        // under test here).
        ASSERT_EQ(decoded.numQubits(), original.numQubits());
        ASSERT_EQ(decoded.gates().size(), original.gates().size());
        for (std::size_t g = 0; g < original.gates().size(); ++g) {
            const Gate &want = original.gates()[g];
            const Gate &got = decoded.gates()[g];
            ASSERT_EQ(got.type, want.type);
            ASSERT_EQ(got.q0, want.q0);
            ASSERT_EQ(got.q1, want.q1);
            ASSERT_EQ(got.cbit, want.cbit);
            for (int p = 0; p < 3; ++p)
                ASSERT_EQ(
                    std::bit_cast<std::uint64_t>(got.params[p]),
                    std::bit_cast<std::uint64_t>(want.params[p]))
                    << "gate " << g << " param " << p;
        }
        // Encoding is deterministic: same circuit, same bytes.
        ASSERT_EQ(qbin::encodeCircuit(decoded), doc);
    }
}

TEST(Qbin, RoundTripsTheQasmParserDialect)
{
    // Cross-check against the text path: parse QASM, encode to qbin,
    // decode, and compare bit-for-bit with the parse.  (CPHASE is
    // excluded — toQasm() legitimately lowers it to cx/rz/cx.)
    Rng rng(77);
    const int iters = fuzzIterations(50);
    for (int i = 0; i < iters; ++i) {
        Circuit original = randomCircuit(rng);
        Circuit no_cphase(original.numQubits());
        for (const Gate &g : original.gates())
            if (g.type != GateType::CPHASE)
                no_cphase.add(g);
        const Circuit parsed = parseQasm(toQasm(no_cphase));
        const Circuit decoded =
            qbin::decodeCircuit(qbin::encodeCircuit(parsed));
        ASSERT_TRUE(qbin::bitIdentical(parsed, decoded)) << "iter " << i;
    }
}

TEST(Qbin, EveryTruncationIsRejected)
{
    Rng rng(5);
    const Circuit c = randomCircuit(rng, 4, 12);
    const std::string doc = qbin::encodeCircuit(c);
    for (std::size_t len = 0; len < doc.size(); ++len)
        EXPECT_THROW(qbin::decodeCircuit(doc.substr(0, len)),
                     std::runtime_error)
            << "prefix of " << len << "/" << doc.size()
            << " bytes decoded";
}

TEST(Qbin, HeaderDamageIsRejected)
{
    Circuit c(2);
    c.add(Gate::rz(0, 0.5));
    const std::string doc = qbin::encodeCircuit(c);

    std::string bad_magic = doc;
    bad_magic[0] = 'X';
    EXPECT_THROW(qbin::decodeCircuit(bad_magic), std::runtime_error);
    EXPECT_FALSE(qbin::looksLikeQbin(bad_magic));

    std::string bad_kind = doc;
    bad_kind[4] = '\x7f';
    EXPECT_THROW(qbin::decodeCircuit(bad_kind), std::runtime_error);

    std::string artifact_kind = doc;
    artifact_kind[4] = static_cast<char>(qbin::kKindArtifact);
    EXPECT_THROW(qbin::decodeCircuit(artifact_kind), std::runtime_error)
        << "an artifact container is not a circuit document";

    std::string bad_version = doc;
    bad_version[5] = static_cast<char>(qbin::kVersion + 1);
    EXPECT_THROW(qbin::decodeCircuit(bad_version), std::runtime_error)
        << "future versions must be rejected, not misread";

    std::string bad_reserved = doc;
    bad_reserved[6] = 1;
    EXPECT_THROW(qbin::decodeCircuit(bad_reserved), std::runtime_error);
}

TEST(Qbin, BodyBitFlipsNeverDecodeOutOfRange)
{
    // Flip every byte of a small document through a few values: the
    // decoder must either throw or return a circuit whose operands are
    // all in range — never crash or hand back out-of-register gates.
    Circuit c(3);
    c.add(Gate::h(0));
    c.add(Gate::cphase(0, 2, 0.25));
    c.add(Gate::measure(1, 1));
    const std::string doc = qbin::encodeCircuit(c);
    for (std::size_t pos = 0; pos < doc.size(); ++pos) {
        for (const unsigned char flip : {0x01, 0x80, 0xff}) {
            std::string mutated = doc;
            mutated[pos] = static_cast<char>(
                static_cast<unsigned char>(mutated[pos]) ^ flip);
            try {
                const Circuit out = qbin::decodeCircuit(mutated);
                for (const Gate &g : out.gates()) {
                    if (g.type == GateType::BARRIER)
                        continue;
                    ASSERT_LT(g.q0, out.numQubits());
                    ASSERT_GE(g.q0, 0);
                    if (gateArity(g.type) == 2) {
                        ASSERT_LT(g.q1, out.numQubits());
                        ASSERT_GE(g.q1, 0);
                    }
                }
            } catch (const std::runtime_error &) {
                // Rejection is the expected outcome. qe-allow(QE101)
            }
        }
    }
}

TEST(Qbin, RejectsHostileGateAndQubitCounts)
{
    // Hand-build a header claiming 2^31 gates on an 8-byte tail: the
    // decoder must refuse before reserving anything.
    std::string doc("QBIN", 4);
    doc += '\x01'; // kind = circuit
    doc += '\x01'; // version
    doc += '\x00';
    doc += '\x00';
    const auto append_u32 = [&doc](std::uint32_t v) {
        for (int s = 0; s < 32; s += 8)
            doc += static_cast<char>((v >> s) & 0xFF);
    };
    append_u32(2);           // qubits
    append_u32(0x7FFFFFFFu); // gates
    doc += "\x01\x02";       // far fewer bytes than gates
    EXPECT_THROW(qbin::decodeCircuit(doc), std::runtime_error);

    std::string huge_reg("QBIN", 4);
    huge_reg += '\x01';
    huge_reg += '\x01';
    huge_reg += '\x00';
    huge_reg += '\x00';
    for (int s = 0; s < 32; s += 8)
        huge_reg += static_cast<char>((0xFFFFFFFFu >> s) & 0xFF);
    for (int s = 0; s < 32; s += 8)
        huge_reg += '\x00';
    EXPECT_THROW(qbin::decodeCircuit(huge_reg), std::runtime_error)
        << "implausible register sizes are rejected";
}

TEST(Qbin, RejectsTrailingBytesAndUnknownOpcodes)
{
    Circuit c(2);
    c.add(Gate::cnot(0, 1));
    std::string doc = qbin::encodeCircuit(c);
    EXPECT_THROW(qbin::decodeCircuit(doc + "x"), std::runtime_error);

    EXPECT_THROW((void)qbin::gateTypeOf(0x7F), std::runtime_error);
    for (int t = 0; t <= static_cast<int>(GateType::BARRIER); ++t) {
        const GateType type = static_cast<GateType>(t);
        EXPECT_EQ(qbin::gateTypeOf(qbin::opcodeOf(type)), type)
            << "opcode table must be a bijection";
    }
}

TEST(Qbin, ArtifactRoundTripsCircuitAndMetadata)
{
    Rng rng(11);
    qbin::Artifact artifact;
    artifact.circuit = qbin::encodeCircuit(randomCircuit(rng));
    artifact.meta.set("format", "test-artifact");
    artifact.meta.set("status", "ok");
    artifact.meta.set("note", "line1\nline2 \"quoted\"");
    const std::string bytes = qbin::encodeArtifact(artifact);
    const qbin::Artifact back = qbin::decodeArtifact(bytes);
    EXPECT_EQ(back.circuit, artifact.circuit);
    EXPECT_EQ(back.meta.get("format"), "test-artifact");
    EXPECT_EQ(back.meta.get("note"), "line1\nline2 \"quoted\"");

    // Truncations of the container are rejected at every byte.
    for (std::size_t len = 0; len < bytes.size(); ++len)
        EXPECT_THROW(qbin::decodeArtifact(bytes.substr(0, len)),
                     std::runtime_error);

    // An artifact whose embedded circuit is torn must fail on decode
    // even when the container framing is intact.
    qbin::Artifact torn = artifact;
    torn.circuit.resize(torn.circuit.size() - 1);
    EXPECT_THROW(qbin::encodeArtifact(torn), std::runtime_error);

    // Encoding a non-circuit payload is refused outright.
    qbin::Artifact nonsense;
    nonsense.circuit = "not a circuit";
    EXPECT_THROW(qbin::encodeArtifact(nonsense), std::runtime_error);
}

TEST(Qbin, Base64RoundTripsAllByteValues)
{
    std::string all;
    for (int i = 0; i < 256; ++i)
        all += static_cast<char>(i);
    for (std::size_t len : {0u, 1u, 2u, 3u, 4u, 255u, 256u}) {
        const std::string sample = all.substr(0, len);
        EXPECT_EQ(qbin::fromBase64(qbin::toBase64(sample)), sample)
            << "length " << len;
    }
    EXPECT_EQ(qbin::toBase64("QBIN"), "UUJJTg==");

    EXPECT_THROW(qbin::fromBase64("abc"), std::runtime_error)
        << "length not a multiple of 4";
    EXPECT_THROW(qbin::fromBase64("ab!cd==="), std::runtime_error)
        << "invalid alphabet character";
    EXPECT_THROW(qbin::fromBase64("=abc"), std::runtime_error)
        << "padding may only end the final group";
    EXPECT_THROW(qbin::fromBase64("a==="), std::runtime_error)
        << "at most two padding characters";
}

TEST(Qbin, DecodeErrorsCarryCodeAndByteOffset)
{
    // Structured rejection: every decode failure is a qaoa::Error whose
    // Status classifies the damage and anchors it to a byte offset, so
    // the serve daemon can answer "malformed at byte N" instead of an
    // opaque string.  The try* variants surface the same Status without
    // a throw (the untrusted-input entry points).
    using qaoa::ErrorCode;

    std::string bad_magic = "NOPE";
    bad_magic += std::string(8, '\0');
    try {
        (void)qbin::decodeCircuit(bad_magic);
        FAIL() << "bad magic accepted";
    } catch (const qaoa::Error &e) {
        EXPECT_EQ(e.status().code(), ErrorCode::Malformed);
        EXPECT_EQ(e.status().offset(), 0) << "magic lives at byte 0";
    }

    Circuit c(2);
    c.add(Gate::cnot(0, 1));
    const std::string doc = qbin::encodeCircuit(c);

    {
        // Truncation anchors at the start of the field the reader
        // could not complete (here: the qubit count after the 8-byte
        // header), not at the ragged end of the buffer.
        const auto result = qbin::tryDecodeCircuit(doc.substr(0, 10));
        ASSERT_FALSE(result.ok());
        EXPECT_EQ(result.status().code(), ErrorCode::Truncated);
        EXPECT_EQ(result.status().offset(), 8);
    }
    {
        // Trailing garbage is anchored at the first excess byte.
        const auto result = qbin::tryDecodeCircuit(doc + "x");
        ASSERT_FALSE(result.ok());
        EXPECT_EQ(result.status().code(), ErrorCode::Malformed);
        EXPECT_EQ(result.status().offset(),
                  static_cast<long long>(doc.size()));
    }
    {
        // An unknown opcode classifies as Unsupported (a newer writer,
        // not a torn file) at the opcode's own byte.
        std::string alien = doc;
        const std::size_t opcode_at = 8 + 4 + 4; // header + qubits + count
        alien[opcode_at] = '\x7F';
        const auto result = qbin::tryDecodeCircuit(alien);
        ASSERT_FALSE(result.ok());
        EXPECT_EQ(result.status().code(), ErrorCode::Unsupported);
        EXPECT_EQ(result.status().offset(),
                  static_cast<long long>(opcode_at));
    }

    // Success still round-trips through the try variant.
    const auto ok = qbin::tryDecodeCircuit(doc);
    ASSERT_TRUE(ok.ok());
    EXPECT_TRUE(qbin::bitIdentical(ok.value(), c));

    {
        // Base64 rejections point at the offending character.
        const auto result = qbin::tryFromBase64("ab!cd===");
        ASSERT_FALSE(result.ok());
        EXPECT_EQ(result.status().code(), ErrorCode::Malformed);
        EXPECT_EQ(result.status().offset(), 2);
    }
    EXPECT_TRUE(qbin::tryFromBase64("UUJJTg==").ok());
}

TEST(Qbin, EmptyAndBarrierOnlyCircuits)
{
    // Degenerate documents round-trip too: the empty register and a
    // gateless circuit (BARRIER carries no operands on the wire).
    const Circuit empty(0);
    EXPECT_TRUE(qbin::bitIdentical(
        empty, qbin::decodeCircuit(qbin::encodeCircuit(empty))));
    Circuit barriers(1);
    barriers.add(Gate::barrier());
    barriers.add(Gate::barrier());
    EXPECT_TRUE(qbin::bitIdentical(
        barriers,
        qbin::decodeCircuit(qbin::encodeCircuit(barriers))));
}

} // namespace
} // namespace qaoa::circuit
