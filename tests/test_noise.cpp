/** @file Tests for the Monte-Carlo depolarizing noise model. */

#include <gtest/gtest.h>

#include "circuit/decompose.hpp"
#include "hardware/devices.hpp"
#include "sim/noise.hpp"
#include "test_util.hpp"

namespace qaoa::sim {
namespace {

using circuit::Circuit;
using circuit::Gate;

Circuit
bellCircuit()
{
    Circuit c(2);
    c.add(Gate::h(0));
    c.add(Gate::cnot(0, 1));
    c.add(Gate::measure(0, 0));
    c.add(Gate::measure(1, 1));
    return c;
}

TEST(Noise, ZeroErrorMatchesNoiselessDistribution)
{
    hw::CouplingMap lin = hw::linearDevice(2);
    hw::CalibrationData perfect(lin, 0.0, 0.0, 0.0);
    Rng rng(9);
    Counts counts = noisySample(bellCircuit(), perfect, 20000, rng);
    // Only 00 and 11, about half each.
    EXPECT_EQ(counts.count(0b01) + counts.count(0b10), 0u);
    EXPECT_NEAR(static_cast<double>(counts[0b00]) / 20000.0, 0.5, 0.02);
}

TEST(Noise, GateErrorsLeakProbability)
{
    hw::CouplingMap lin = hw::linearDevice(2);
    hw::CalibrationData noisy(lin, 0.15, 0.02, 0.0);
    Rng rng(10);
    Counts counts = noisySample(bellCircuit(), noisy, 20000, rng);
    std::uint64_t bad = 0;
    if (counts.count(0b01))
        bad += counts[0b01];
    if (counts.count(0b10))
        bad += counts[0b10];
    EXPECT_GT(bad, 100u); // errors visibly corrupt the Bell correlation
}

TEST(Noise, MoreErrorMeansMoreCorruption)
{
    hw::CouplingMap lin = hw::linearDevice(2);
    auto bad_fraction = [&](double cx_err) {
        hw::CalibrationData calib(lin, cx_err, cx_err / 10.0, 0.0);
        Rng rng(11);
        Counts counts = noisySample(bellCircuit(), calib, 20000, rng);
        std::uint64_t bad = 0, total = 0;
        for (const auto &[bits, n] : counts) {
            total += n;
            if (bits == 0b01 || bits == 0b10)
                bad += n;
        }
        return static_cast<double>(bad) / static_cast<double>(total);
    };
    double low = bad_fraction(0.01);
    double high = bad_fraction(0.25);
    EXPECT_LT(low, high);
}

TEST(Noise, ReadoutErrorFlipsBits)
{
    hw::CouplingMap lin = hw::linearDevice(2);
    hw::CalibrationData calib(lin, 0.0, 0.0, 0.3);
    // Deterministic |00> circuit: only readout noise can produce 1s.
    Circuit c(2);
    c.add(Gate::measure(0, 0));
    c.add(Gate::measure(1, 1));
    Rng rng(12);
    Counts counts = noisySample(c, calib, 20000, rng);
    std::uint64_t flipped = 0, total = 0;
    for (const auto &[bits, n] : counts) {
        total += n;
        if (bits != 0)
            flipped += n;
    }
    // P(at least one flip) = 1 - 0.7^2 = 0.51.
    EXPECT_NEAR(static_cast<double>(flipped) / total, 0.51, 0.02);
}

TEST(Noise, ReadoutNoiseCanBeDisabled)
{
    hw::CouplingMap lin = hw::linearDevice(2);
    hw::CalibrationData calib(lin, 0.0, 0.0, 0.5);
    Circuit c(2);
    c.add(Gate::measure(0, 0));
    c.add(Gate::measure(1, 1));
    NoiseOptions opts;
    opts.readout_noise = false;
    Rng rng(13);
    Counts counts = noisySample(c, calib, 1000, rng, opts);
    ASSERT_EQ(counts.size(), 1u);
    EXPECT_EQ(counts.begin()->first, 0ULL);
}

TEST(Noise, ShotsConserved)
{
    hw::CouplingMap lin = hw::linearDevice(2);
    hw::CalibrationData calib(lin, 0.05);
    NoiseOptions opts;
    opts.trajectories = 7;
    Rng rng(14);
    Counts counts = noisySample(bellCircuit(), calib, 1003, rng, opts);
    std::uint64_t total = 0;
    for (const auto &[bits, n] : counts)
        total += n;
    EXPECT_EQ(total, 1003u);
}

TEST(Noise, RejectsBadOptions)
{
    hw::CouplingMap lin = hw::linearDevice(2);
    hw::CalibrationData calib(lin);
    Rng rng(15);
    NoiseOptions opts;
    opts.trajectories = 0;
    EXPECT_THROW(noisySample(bellCircuit(), calib, 10, rng, opts),
                 std::runtime_error);
    EXPECT_THROW(noisySample(bellCircuit(), calib, 0, rng),
                 std::runtime_error);
}

} // namespace
} // namespace qaoa::sim
