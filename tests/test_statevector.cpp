/** @file Tests for the dense statevector simulator. */

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "sim/statevector.hpp"

namespace qaoa::sim {
namespace {

using circuit::Circuit;
using circuit::Gate;

TEST(Statevector, InitialState)
{
    Statevector s(3);
    EXPECT_NEAR(std::abs(s.amplitude(0) - Complex{1.0, 0.0}), 0.0, 1e-15);
    for (std::uint64_t i = 1; i < 8; ++i)
        EXPECT_NEAR(std::abs(s.amplitude(i)), 0.0, 1e-15);
    EXPECT_NEAR(s.norm(), 1.0, 1e-15);
}

TEST(Statevector, HadamardSuperposition)
{
    Statevector s(1);
    s.apply(Gate::h(0));
    double inv = 1.0 / std::sqrt(2.0);
    EXPECT_NEAR(s.amplitude(0).real(), inv, 1e-12);
    EXPECT_NEAR(s.amplitude(1).real(), inv, 1e-12);
    EXPECT_NEAR(s.probabilityOfOne(0), 0.5, 1e-12);
}

TEST(Statevector, BellState)
{
    Statevector s(2);
    s.apply(Gate::h(0));
    s.apply(Gate::cnot(0, 1));
    std::vector<double> p = s.probabilities();
    EXPECT_NEAR(p[0b00], 0.5, 1e-12);
    EXPECT_NEAR(p[0b11], 0.5, 1e-12);
    EXPECT_NEAR(p[0b01], 0.0, 1e-12);
    EXPECT_NEAR(p[0b10], 0.0, 1e-12);
}

TEST(Statevector, GhzState)
{
    Statevector s(5);
    s.apply(Gate::h(0));
    for (int q = 0; q + 1 < 5; ++q)
        s.apply(Gate::cnot(q, q + 1));
    std::vector<double> p = s.probabilities();
    EXPECT_NEAR(p[0], 0.5, 1e-12);
    EXPECT_NEAR(p[31], 0.5, 1e-12);
    EXPECT_NEAR(s.norm(), 1.0, 1e-12);
}

TEST(Statevector, XFlipsBit)
{
    Statevector s(2);
    s.apply(Gate::x(1));
    EXPECT_NEAR(std::abs(s.amplitude(0b10)), 1.0, 1e-12);
}

TEST(Statevector, CnotControlDirectionMatters)
{
    // Control in |0>: target untouched.
    Statevector s(2);
    s.apply(Gate::x(1)); // target=1 set, control=0 clear
    s.apply(Gate::cnot(0, 1));
    EXPECT_NEAR(std::abs(s.amplitude(0b10)), 1.0, 1e-12);
    // Control set: target flips.
    Statevector t(2);
    t.apply(Gate::x(0));
    t.apply(Gate::cnot(0, 1));
    EXPECT_NEAR(std::abs(t.amplitude(0b11)), 1.0, 1e-12);
}

TEST(Statevector, SwapExchangesQubits)
{
    Statevector s(2);
    s.apply(Gate::x(0));
    s.apply(Gate::swap(0, 1));
    EXPECT_NEAR(std::abs(s.amplitude(0b10)), 1.0, 1e-12);
}

TEST(Statevector, CphaseAddsRelativePhase)
{
    constexpr double g = 0.9;
    Statevector s(2);
    s.apply(Gate::h(0));
    s.apply(Gate::h(1));
    s.apply(Gate::cphase(0, 1, g));
    // Amplitudes of |01> and |10> carry e^{ig}; |00> and |11> don't.
    Complex a00 = s.amplitude(0b00);
    Complex a01 = s.amplitude(0b01);
    EXPECT_NEAR(std::arg(a01 / a00), g, 1e-12);
    Complex a11 = s.amplitude(0b11);
    EXPECT_NEAR(std::arg(a11 / a00), 0.0, 1e-12);
}

TEST(Statevector, MeasureAndBarrierAreNoOps)
{
    Statevector s(1);
    s.apply(Gate::h(0));
    Complex before = s.amplitude(1);
    s.apply(Gate::measure(0, 0));
    s.apply(Gate::barrier());
    EXPECT_EQ(s.amplitude(1), before);
}

TEST(Statevector, NormPreservedByLongCircuits)
{
    Rng rng(3);
    Statevector s(6);
    for (int i = 0; i < 300; ++i) {
        int a = rng.uniformInt(0, 5), b = rng.uniformInt(0, 5);
        if (a == b)
            s.apply(Gate::u3(a, rng.uniformReal(0, 3), rng.uniformReal(0, 3),
                             rng.uniformReal(0, 3)));
        else
            s.apply(Gate::cphase(a, b, rng.uniformReal(0, 3)));
    }
    EXPECT_NEAR(s.norm(), 1.0, 1e-9);
}

TEST(Statevector, SamplingMatchesProbabilities)
{
    Statevector s(2);
    s.apply(Gate::h(0));
    s.apply(Gate::cnot(0, 1));
    Rng rng(17);
    Counts counts = s.sampleCounts(20000, rng);
    EXPECT_EQ(counts.count(0b01) + counts.count(0b10), 0u);
    double frac00 = static_cast<double>(counts[0b00]) / 20000.0;
    EXPECT_NEAR(frac00, 0.5, 0.02);
}

TEST(Statevector, OverlapDetectsEquality)
{
    Statevector a(2), b(2);
    a.apply(Gate::h(0));
    b.apply(Gate::h(0));
    EXPECT_NEAR(a.overlap(b), 1.0, 1e-12);
    b.apply(Gate::x(1));
    EXPECT_LT(a.overlap(b), 0.6);
}

TEST(Statevector, OverlapIgnoresGlobalPhase)
{
    Statevector a(1), b(1);
    a.apply(Gate::rz(0, 1.0)); // e^{-i/2} on |0>
    b.apply(Gate::u1(0, 1.0)); // identity on |0>
    EXPECT_NEAR(a.overlap(b), 1.0, 1e-12);
}

TEST(RunAndSample, MapsClassicalBits)
{
    // Prepare |1> on qubit 2, measure it into classical bit 0.
    Circuit c(3);
    c.add(Gate::x(2));
    c.add(Gate::measure(2, 0));
    Rng rng(5);
    Counts counts = runAndSample(c, 100, rng);
    ASSERT_EQ(counts.size(), 1u);
    EXPECT_EQ(counts.begin()->first, 1ULL);
    EXPECT_EQ(counts.begin()->second, 100ULL);
}

TEST(RunAndSample, UnmeasuredQubitsDropOut)
{
    Circuit c(2);
    c.add(Gate::x(0));
    c.add(Gate::x(1));
    c.add(Gate::measure(1, 0)); // only qubit 1 measured
    Rng rng(5);
    Counts counts = runAndSample(c, 10, rng);
    ASSERT_EQ(counts.size(), 1u);
    EXPECT_EQ(counts.begin()->first, 1ULL);
}

TEST(Statevector, SpecializedKernelsMatchGenericMatrices)
{
    // Every gate with a dedicated kernel must agree with the generic
    // dense-matrix path on a nontrivial state.
    auto prepared = [] {
        Statevector s(5);
        s.apply(Gate::h(0));
        s.apply(Gate::h(2));
        s.apply(Gate::cnot(0, 1));
        s.apply(Gate::u3(3, 0.7, 0.3, 1.1));
        s.apply(Gate::cphase(2, 4, 0.4));
        return s;
    };
    std::vector<Gate> specialized = {
        Gate::z(1),          Gate::rz(2, 0.77),   Gate::u1(0, -1.3),
        Gate::x(3),          Gate::h(4),          Gate::rx(0, 2.1),
        Gate::cnot(1, 3),    Gate::swap(0, 4),    Gate::cz(2, 3),
        Gate::cphase(1, 4, -0.9)};
    for (const Gate &g : specialized) {
        Statevector via_kernel = prepared();
        via_kernel.apply(g);
        Statevector via_matrix = prepared();
        if (g.arity() == 1)
            via_matrix.applyMatrix1q(gateMatrix1q(g), g.q0);
        else
            via_matrix.applyMatrix2q(gateMatrix2q(g), g.q0, g.q1);
        for (std::uint64_t i = 0; i < 32; ++i)
            ASSERT_NEAR(std::abs(via_kernel.amplitude(i) -
                                 via_matrix.amplitude(i)),
                        0.0, 1e-12)
                << g.toString() << " index " << i;
    }
}

TEST(Statevector, SampleCountsSkipsZeroProbabilityTail)
{
    // Superposition on qubit 0 only: basis states 2..7 have exactly
    // zero probability, so the CDF is flat at its end.  Regression for
    // the upper_bound miss clamp, which used to credit such shots to
    // the zero-probability last basis state.
    Statevector s(3);
    s.apply(Gate::h(0));
    Rng rng(123);
    Counts counts = s.sampleCounts(20000, rng);
    for (const auto &[basis, count] : counts) {
        EXPECT_LE(basis, 1ULL) << "shot landed on zero-probability state "
                               << basis;
        EXPECT_GT(count, 0ULL);
    }
    // And a tail that is zero without being structurally zero: collapse
    // qubit 2 of a GHZ-like state onto 0.
    Statevector t(3);
    t.apply(Gate::h(0));
    t.apply(Gate::cnot(0, 2));
    t.collapse(2, false);
    Counts tail = t.sampleCounts(5000, rng);
    ASSERT_EQ(tail.size(), 1u);
    EXPECT_EQ(tail.begin()->first, 0ULL);
}

TEST(RunAndSample, NoMeasureGatesReturnsRawBasisCounts)
{
    // Bell pair with no MEASURE gates: shots must split over |00> and
    // |11>, not collapse onto classical bitstring 0.
    Circuit c(2);
    c.add(Gate::h(0));
    c.add(Gate::cnot(0, 1));
    Rng rng(29);
    Counts counts = runAndSample(c, 4000, rng);
    ASSERT_EQ(counts.size(), 2u);
    EXPECT_GT(counts[0b00], 0u);
    EXPECT_GT(counts[0b11], 0u);
    EXPECT_EQ(counts[0b00] + counts[0b11], 4000u);
}

TEST(Statevector, RejectsBadSizes)
{
    EXPECT_THROW(Statevector(0), std::runtime_error);
    EXPECT_THROW(Statevector(27), std::runtime_error);
    Statevector s(2);
    EXPECT_THROW(s.applyMatrix1q(Matrix2{}, 2), std::runtime_error);
    EXPECT_THROW(s.applyMatrix2q(Matrix4{}, 0, 0), std::runtime_error);
}

} // namespace
} // namespace qaoa::sim
