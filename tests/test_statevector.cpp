/** @file Tests for the dense statevector simulator. */

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "sim/statevector.hpp"

namespace qaoa::sim {
namespace {

using circuit::Circuit;
using circuit::Gate;

TEST(Statevector, InitialState)
{
    Statevector s(3);
    EXPECT_NEAR(std::abs(s.amplitude(0) - Complex{1.0, 0.0}), 0.0, 1e-15);
    for (std::uint64_t i = 1; i < 8; ++i)
        EXPECT_NEAR(std::abs(s.amplitude(i)), 0.0, 1e-15);
    EXPECT_NEAR(s.norm(), 1.0, 1e-15);
}

TEST(Statevector, HadamardSuperposition)
{
    Statevector s(1);
    s.apply(Gate::h(0));
    double inv = 1.0 / std::sqrt(2.0);
    EXPECT_NEAR(s.amplitude(0).real(), inv, 1e-12);
    EXPECT_NEAR(s.amplitude(1).real(), inv, 1e-12);
    EXPECT_NEAR(s.probabilityOfOne(0), 0.5, 1e-12);
}

TEST(Statevector, BellState)
{
    Statevector s(2);
    s.apply(Gate::h(0));
    s.apply(Gate::cnot(0, 1));
    std::vector<double> p = s.probabilities();
    EXPECT_NEAR(p[0b00], 0.5, 1e-12);
    EXPECT_NEAR(p[0b11], 0.5, 1e-12);
    EXPECT_NEAR(p[0b01], 0.0, 1e-12);
    EXPECT_NEAR(p[0b10], 0.0, 1e-12);
}

TEST(Statevector, GhzState)
{
    Statevector s(5);
    s.apply(Gate::h(0));
    for (int q = 0; q + 1 < 5; ++q)
        s.apply(Gate::cnot(q, q + 1));
    std::vector<double> p = s.probabilities();
    EXPECT_NEAR(p[0], 0.5, 1e-12);
    EXPECT_NEAR(p[31], 0.5, 1e-12);
    EXPECT_NEAR(s.norm(), 1.0, 1e-12);
}

TEST(Statevector, XFlipsBit)
{
    Statevector s(2);
    s.apply(Gate::x(1));
    EXPECT_NEAR(std::abs(s.amplitude(0b10)), 1.0, 1e-12);
}

TEST(Statevector, CnotControlDirectionMatters)
{
    // Control in |0>: target untouched.
    Statevector s(2);
    s.apply(Gate::x(1)); // target=1 set, control=0 clear
    s.apply(Gate::cnot(0, 1));
    EXPECT_NEAR(std::abs(s.amplitude(0b10)), 1.0, 1e-12);
    // Control set: target flips.
    Statevector t(2);
    t.apply(Gate::x(0));
    t.apply(Gate::cnot(0, 1));
    EXPECT_NEAR(std::abs(t.amplitude(0b11)), 1.0, 1e-12);
}

TEST(Statevector, SwapExchangesQubits)
{
    Statevector s(2);
    s.apply(Gate::x(0));
    s.apply(Gate::swap(0, 1));
    EXPECT_NEAR(std::abs(s.amplitude(0b10)), 1.0, 1e-12);
}

TEST(Statevector, CphaseAddsRelativePhase)
{
    constexpr double g = 0.9;
    Statevector s(2);
    s.apply(Gate::h(0));
    s.apply(Gate::h(1));
    s.apply(Gate::cphase(0, 1, g));
    // Amplitudes of |01> and |10> carry e^{ig}; |00> and |11> don't.
    Complex a00 = s.amplitude(0b00);
    Complex a01 = s.amplitude(0b01);
    EXPECT_NEAR(std::arg(a01 / a00), g, 1e-12);
    Complex a11 = s.amplitude(0b11);
    EXPECT_NEAR(std::arg(a11 / a00), 0.0, 1e-12);
}

TEST(Statevector, MeasureAndBarrierAreNoOps)
{
    Statevector s(1);
    s.apply(Gate::h(0));
    Complex before = s.amplitude(1);
    s.apply(Gate::measure(0, 0));
    s.apply(Gate::barrier());
    EXPECT_EQ(s.amplitude(1), before);
}

TEST(Statevector, NormPreservedByLongCircuits)
{
    Rng rng(3);
    Statevector s(6);
    for (int i = 0; i < 300; ++i) {
        int a = rng.uniformInt(0, 5), b = rng.uniformInt(0, 5);
        if (a == b)
            s.apply(Gate::u3(a, rng.uniformReal(0, 3), rng.uniformReal(0, 3),
                             rng.uniformReal(0, 3)));
        else
            s.apply(Gate::cphase(a, b, rng.uniformReal(0, 3)));
    }
    EXPECT_NEAR(s.norm(), 1.0, 1e-9);
}

TEST(Statevector, SamplingMatchesProbabilities)
{
    Statevector s(2);
    s.apply(Gate::h(0));
    s.apply(Gate::cnot(0, 1));
    Rng rng(17);
    Counts counts = s.sampleCounts(20000, rng);
    EXPECT_EQ(counts.count(0b01) + counts.count(0b10), 0u);
    double frac00 = static_cast<double>(counts[0b00]) / 20000.0;
    EXPECT_NEAR(frac00, 0.5, 0.02);
}

TEST(Statevector, OverlapDetectsEquality)
{
    Statevector a(2), b(2);
    a.apply(Gate::h(0));
    b.apply(Gate::h(0));
    EXPECT_NEAR(a.overlap(b), 1.0, 1e-12);
    b.apply(Gate::x(1));
    EXPECT_LT(a.overlap(b), 0.6);
}

TEST(Statevector, OverlapIgnoresGlobalPhase)
{
    Statevector a(1), b(1);
    a.apply(Gate::rz(0, 1.0)); // e^{-i/2} on |0>
    b.apply(Gate::u1(0, 1.0)); // identity on |0>
    EXPECT_NEAR(a.overlap(b), 1.0, 1e-12);
}

TEST(RunAndSample, MapsClassicalBits)
{
    // Prepare |1> on qubit 2, measure it into classical bit 0.
    Circuit c(3);
    c.add(Gate::x(2));
    c.add(Gate::measure(2, 0));
    Rng rng(5);
    Counts counts = runAndSample(c, 100, rng);
    ASSERT_EQ(counts.size(), 1u);
    EXPECT_EQ(counts.begin()->first, 1ULL);
    EXPECT_EQ(counts.begin()->second, 100ULL);
}

TEST(RunAndSample, UnmeasuredQubitsDropOut)
{
    Circuit c(2);
    c.add(Gate::x(0));
    c.add(Gate::x(1));
    c.add(Gate::measure(1, 0)); // only qubit 1 measured
    Rng rng(5);
    Counts counts = runAndSample(c, 10, rng);
    ASSERT_EQ(counts.size(), 1u);
    EXPECT_EQ(counts.begin()->first, 1ULL);
}

TEST(Statevector, RejectsBadSizes)
{
    EXPECT_THROW(Statevector(0), std::runtime_error);
    EXPECT_THROW(Statevector(27), std::runtime_error);
    Statevector s(2);
    EXPECT_THROW(s.applyMatrix1q(Matrix2{}, 2), std::runtime_error);
    EXPECT_THROW(s.applyMatrix2q(Matrix4{}, 0, 0), std::runtime_error);
}

} // namespace
} // namespace qaoa::sim
