/** @file Tests for the OpenQASM exporter. */

#include <gtest/gtest.h>

#include "circuit/qasm.hpp"

namespace qaoa::circuit {
namespace {

TEST(Qasm, HeaderAndRegisters)
{
    Circuit c(3);
    std::string q = toQasm(c);
    EXPECT_NE(q.find("OPENQASM 2.0;"), std::string::npos);
    EXPECT_NE(q.find("qreg q[3];"), std::string::npos);
    EXPECT_NE(q.find("creg c[3];"), std::string::npos);
}

TEST(Qasm, EmitsEveryGateKind)
{
    Circuit c(3);
    c.add(Gate::h(0));
    c.add(Gate::x(1));
    c.add(Gate::rx(0, 0.5));
    c.add(Gate::u2(1, 0.1, 0.2));
    c.add(Gate::u3(2, 0.1, 0.2, 0.3));
    c.add(Gate::cnot(0, 1));
    c.add(Gate::cz(1, 2));
    c.add(Gate::swap(0, 2));
    c.add(Gate::barrier());
    c.add(Gate::measure(0, 0));
    std::string q = toQasm(c);
    for (const char *needle :
         {"h q[0];", "x q[1];", "rx(0.5) q[0];", "u2(0.1,0.2) q[1];",
          "u3(0.1,0.2,0.3) q[2];", "cx q[0],q[1];", "cz q[1],q[2];",
          "swap q[0],q[2];", "barrier q;", "measure q[0] -> c[0];"})
        EXPECT_NE(q.find(needle), std::string::npos) << needle;
}

TEST(Qasm, CphaseExportedAsCxRzCx)
{
    Circuit c(2);
    c.add(Gate::cphase(0, 1, 0.25));
    std::string q = toQasm(c);
    EXPECT_NE(q.find("cx q[0],q[1];\nrz(0.25) q[1];\ncx q[0],q[1];"),
              std::string::npos);
}

TEST(Qasm, LineCountMatchesGateExpansion)
{
    Circuit c(2);
    c.add(Gate::h(0));
    c.add(Gate::cnot(0, 1));
    c.add(Gate::measure(0, 0));
    c.add(Gate::measure(1, 1));
    std::string q = toQasm(c);
    // 5 header lines (incl. comment) + 4 gate lines.
    int lines = 0;
    for (char ch : q)
        if (ch == '\n')
            ++lines;
    EXPECT_EQ(lines, 9);
}

} // namespace
} // namespace qaoa::circuit
