/** @file Tests for the OpenQASM exporter. */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>

#include "circuit/qasm.hpp"
#include "circuit/qasm_parser.hpp"
#include "graph/generators.hpp"
#include "hardware/devices.hpp"
#include "qaoa/api.hpp"
#include "verify/verifier.hpp"

namespace qaoa::circuit {
namespace {

TEST(Qasm, HeaderAndRegisters)
{
    Circuit c(3);
    std::string q = toQasm(c);
    EXPECT_NE(q.find("OPENQASM 2.0;"), std::string::npos);
    EXPECT_NE(q.find("qreg q[3];"), std::string::npos);
    EXPECT_NE(q.find("creg c[3];"), std::string::npos);
}

TEST(Qasm, EmitsEveryGateKind)
{
    Circuit c(3);
    c.add(Gate::h(0));
    c.add(Gate::x(1));
    c.add(Gate::rx(0, 0.5));
    c.add(Gate::u2(1, 0.1, 0.2));
    c.add(Gate::u3(2, 0.1, 0.2, 0.3));
    c.add(Gate::cnot(0, 1));
    c.add(Gate::cz(1, 2));
    c.add(Gate::swap(0, 2));
    c.add(Gate::barrier());
    c.add(Gate::measure(0, 0));
    std::string q = toQasm(c);
    for (const char *needle :
         {"h q[0];", "x q[1];", "rx(0.5) q[0];", "u2(0.1,0.2) q[1];",
          "u3(0.1,0.2,0.3) q[2];", "cx q[0],q[1];", "cz q[1],q[2];",
          "swap q[0],q[2];", "barrier q;", "measure q[0] -> c[0];"})
        EXPECT_NE(q.find(needle), std::string::npos) << needle;
}

TEST(Qasm, AnglesRoundTripBitExactly)
{
    // Perturb an angle in its 15th significant digit and beyond: the
    // old 12-digit writer collapsed these onto the same text.  The
    // shortest-round-trip writer must keep every variant distinct and
    // bit-exact, and write -> parse -> write must be a fixed point.
    const double base = 0.7853981633974483; // ~pi/4
    const double variants[] = {
        base,
        base + 1e-15, // 15th significant digit
        base + 1e-16,
        std::nextafter(base, 1.0), // one ulp
        1.0 / 3.0,
        -0.0,
    };
    for (const double angle : variants) {
        Circuit c(1);
        c.add(Gate::rz(0, angle));
        const std::string first = toQasm(c);
        const Circuit parsed = parseQasm(first);
        ASSERT_EQ(parsed.gates().size(), 1u);
        EXPECT_EQ(std::bit_cast<std::uint64_t>(parsed.gates()[0].params[0]),
                  std::bit_cast<std::uint64_t>(angle))
            << "angle " << first << " lost bits in the text round trip";
        EXPECT_EQ(toQasm(parsed), first)
            << "write -> parse -> write must be a fixed point";
    }
    // The perturbed variants must not collapse onto the same text.
    Circuit a(1), b(1);
    a.add(Gate::rz(0, base));
    b.add(Gate::rz(0, base + 1e-15));
    EXPECT_NE(toQasm(a), toQasm(b));
}

TEST(Qasm, CphaseExportedAsCxRzCx)
{
    Circuit c(2);
    c.add(Gate::cphase(0, 1, 0.25));
    std::string q = toQasm(c);
    EXPECT_NE(q.find("cx q[0],q[1];\nrz(0.25) q[1];\ncx q[0],q[1];"),
              std::string::npos);
}

TEST(Qasm, LineCountMatchesGateExpansion)
{
    Circuit c(2);
    c.add(Gate::h(0));
    c.add(Gate::cnot(0, 1));
    c.add(Gate::measure(0, 0));
    c.add(Gate::measure(1, 1));
    std::string q = toQasm(c);
    // 5 header lines (incl. comment) + 4 gate lines.
    int lines = 0;
    for (char ch : q)
        if (ch == '\n')
            ++lines;
    EXPECT_EQ(lines, 9);
}

TEST(Qasm, RoundTripPreservesInteractionEquivalence)
{
    // Export -> parse -> verify: the round-tripped basis circuit must
    // still realize the problem's ZZ multiset under the replayed mapping.
    // toQasm writes CPHASE as cx/rz/cx, so this leans on the verifier's
    // basis-pattern lifting and catches exporter/parser drift in either
    // direction.
    Rng inst_rng(31);
    graph::Graph problem = graph::erdosRenyi(8, 0.45, inst_rng);
    hw::CouplingMap map = hw::ibmqMelbourne15();

    core::QaoaCompileOptions opts;
    opts.method = core::Method::Ic;
    opts.gammas = {0.7};
    opts.betas = {0.35};
    transpiler::CompileResult r =
        core::compileQaoaMaxcut(problem, map, opts);
    ASSERT_TRUE(r.ok());

    Circuit reparsed = parseQasm(toQasm(r.compiled));
    ASSERT_EQ(reparsed.numQubits(), r.compiled.numQubits());

    std::vector<verify::ZZTerm> terms;
    for (const graph::Edge &e : problem.edges())
        terms.push_back({e.u, e.v, opts.gammas[0] * e.weight});

    verify::VerifySpec spec;
    spec.map = &map;
    spec.initial_log_to_phys = r.initial_layout.logToPhys();
    spec.expected_final = r.final_layout.logToPhys();
    spec.expected_interactions = &terms;
    spec.lift_basis = true; // see through the exported cx/rz/cx triples
    verify::VerifyReport report = verify::verifyCircuit(reparsed, spec);
    EXPECT_TRUE(report.spotless()) << report.summary();
}

TEST(Qasm, RoundTripCatchesTamperedText)
{
    // Deleting one rz line from the exported text removes a ZZ
    // interaction; the verifier must flag the reparse as dirty.
    Circuit c(2);
    c.add(Gate::h(0));
    c.add(Gate::h(1));
    c.add(Gate::cphase(0, 1, 0.25));
    std::string text = toQasm(c);
    const std::string needle = "rz(0.25) q[1];\n";
    const std::size_t at = text.find(needle);
    ASSERT_NE(at, std::string::npos);
    text.erase(at, needle.size());

    std::vector<verify::ZZTerm> terms{{0, 1, 0.25}};
    verify::VerifySpec spec;
    spec.initial_log_to_phys = {0, 1};
    spec.expected_interactions = &terms;
    spec.lift_basis = true;
    verify::VerifyReport report =
        verify::verifyCircuit(parseQasm(text), spec);
    EXPECT_FALSE(report.clean());
    // Without the rz the cx/cx pair no longer lifts: the interaction is
    // missing and the bare CNOTs are spurious entanglers.
    EXPECT_EQ(report.count(verify::Rule::MissingInteraction), 1);
    EXPECT_GE(report.count(verify::Rule::SpuriousInteraction), 1);
}

} // namespace
} // namespace qaoa::circuit
