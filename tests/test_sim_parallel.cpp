/**
 * @file
 * Property test: the parallel statevector engine matches the serial
 * engine amplitude-for-amplitude on random circuits.
 *
 * Circuits span qubit counts straddling the serial/parallel crossover
 * (par::kSerialCutoff = 2^14 elements, i.e. pair kernels go parallel at
 * 15 qubits and diagonal kernels at 14), and each circuit is replayed
 * at 1, 2 and 8 threads.  The engine's determinism contract is actually
 * stronger than the 1e-12 tolerance asserted here: fixed chunking makes
 * results bit-identical for any thread count.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <numbers>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "sim/statevector.hpp"

namespace qaoa::sim {
namespace {

using circuit::Circuit;
using circuit::Gate;

/** Random circuit hitting every kernel family: diagonal (Z/RZ/U1,
 *  CZ/CPHASE), dedicated (X/H/RX, CNOT/SWAP) and the generic matrix
 *  fallback (Y/RY/U2/U3). */
Circuit
randomCircuit(int num_qubits, int num_gates, Rng &rng)
{
    constexpr double pi = std::numbers::pi;
    Circuit c(num_qubits);
    // Seed some superposition so diagonal gates act on nontrivial
    // amplitudes.
    for (int q = 0; q < num_qubits; ++q)
        c.add(Gate::h(q));
    for (int g = 0; g < num_gates; ++g) {
        int q0 = rng.uniformInt(0, num_qubits - 1);
        int q1 = rng.uniformInt(0, num_qubits - 2);
        if (q1 >= q0)
            ++q1;
        double a = rng.uniformReal(-2.0 * pi, 2.0 * pi);
        double b = rng.uniformReal(-pi, pi);
        double d = rng.uniformReal(-pi, pi);
        switch (rng.uniformInt(0, 13)) {
          case 0: c.add(Gate::h(q0)); break;
          case 1: c.add(Gate::x(q0)); break;
          case 2: c.add(Gate::y(q0)); break;
          case 3: c.add(Gate::z(q0)); break;
          case 4: c.add(Gate::rx(q0, a)); break;
          case 5: c.add(Gate::ry(q0, a)); break;
          case 6: c.add(Gate::rz(q0, a)); break;
          case 7: c.add(Gate::u1(q0, a)); break;
          case 8: c.add(Gate::u2(q0, a, b)); break;
          case 9: c.add(Gate::u3(q0, a, b, d)); break;
          case 10: c.add(Gate::cnot(q0, q1)); break;
          case 11: c.add(Gate::cz(q0, q1)); break;
          case 12: c.add(Gate::cphase(q0, q1, a)); break;
          default: c.add(Gate::swap(q0, q1)); break;
        }
    }
    return c;
}

std::vector<Complex>
amplitudesAt(const Circuit &c, int threads)
{
    par::setThreadCount(threads);
    Statevector state(c.numQubits());
    state.apply(c);
    std::vector<Complex> amps(1ULL << c.numQubits());
    for (std::uint64_t i = 0; i < amps.size(); ++i)
        amps[i] = state.amplitude(i);
    par::setThreadCount(0);
    return amps;
}

TEST(SimParallelProperty, SerialAndParallelEnginesAgree)
{
    Rng rng(20260807);
    // 10 circuits per size x 5 sizes = 50 random circuits.
    for (int num_qubits : {12, 13, 14, 15, 16}) {
        for (int rep = 0; rep < 10; ++rep) {
            Circuit c = randomCircuit(num_qubits, 3 * num_qubits, rng);
            std::vector<Complex> serial = amplitudesAt(c, 1);
            for (int threads : {2, 8}) {
                std::vector<Complex> parallel = amplitudesAt(c, threads);
                ASSERT_EQ(serial.size(), parallel.size());
                for (std::uint64_t i = 0; i < serial.size(); ++i) {
                    ASSERT_NEAR(std::abs(serial[i] - parallel[i]), 0.0,
                                1e-12)
                        << "n=" << num_qubits << " rep=" << rep
                        << " threads=" << threads << " index=" << i;
                }
            }
        }
    }
}

TEST(SimParallelProperty, ReductionsAgreeAcrossThreadCounts)
{
    Rng rng(7);
    Circuit c = randomCircuit(15, 40, rng);
    par::setThreadCount(1);
    Statevector serial(c.numQubits());
    serial.apply(c);
    double norm1 = serial.norm();
    double p1 = serial.probabilityOfOne(3);

    par::setThreadCount(8);
    Statevector parallel(c.numQubits());
    parallel.apply(c);
    // Bit-identical: fixed-chunk partials combined in chunk order.
    EXPECT_EQ(norm1, parallel.norm());
    EXPECT_EQ(p1, parallel.probabilityOfOne(3));
    par::setThreadCount(0);
}

TEST(SimParallelProperty, SamplingIsBitIdenticalAcrossThreadCounts)
{
    Rng rng(11);
    Circuit c = randomCircuit(14, 30, rng);
    par::setThreadCount(1);
    Statevector serial(c.numQubits());
    serial.apply(c);
    Rng sampler1(99);
    Counts counts1 = serial.sampleCounts(2000, sampler1);

    par::setThreadCount(8);
    Statevector parallel(c.numQubits());
    parallel.apply(c);
    Rng sampler2(99);
    Counts counts2 = parallel.sampleCounts(2000, sampler2);
    par::setThreadCount(0);

    EXPECT_EQ(counts1, counts2);
}

} // namespace
} // namespace qaoa::sim
