/** @file Tests for the peephole optimizer. */

#include <gtest/gtest.h>

#include <numbers>

#include "common/rng.hpp"
#include "transpiler/peephole.hpp"
#include "test_util.hpp"

namespace qaoa::transpiler {
namespace {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateType;

TEST(Peephole, DropsZeroRotations)
{
    Circuit c(2);
    c.add(Gate::u1(0, 0.0));
    c.add(Gate::rz(1, 0.0));
    c.add(Gate::rx(0, 0.0));
    c.add(Gate::cphase(0, 1, 0.0));
    c.add(Gate::u1(0, 2.0 * std::numbers::pi)); // identity mod 2 pi
    PeepholeStats stats;
    Circuit out = peepholeOptimize(c, &stats);
    EXPECT_EQ(out.gateCount(), 0);
    EXPECT_EQ(stats.removed_gates, 5);
}

TEST(Peephole, CancelsSelfInversePairs)
{
    Circuit c(3);
    c.add(Gate::h(0));
    c.add(Gate::h(0));
    c.add(Gate::x(1));
    c.add(Gate::x(1));
    c.add(Gate::cnot(1, 2));
    c.add(Gate::cnot(1, 2));
    c.add(Gate::swap(0, 2));
    c.add(Gate::swap(2, 0)); // operand order irrelevant for SWAP
    Circuit out = peepholeOptimize(c);
    EXPECT_EQ(out.gateCount(), 0);
}

TEST(Peephole, ReversedCnotDoesNotCancel)
{
    Circuit c(2);
    c.add(Gate::cnot(0, 1));
    c.add(Gate::cnot(1, 0));
    Circuit out = peepholeOptimize(c);
    EXPECT_EQ(out.gateCount(), 2);
}

TEST(Peephole, InterveningGateBlocksCancellation)
{
    Circuit c(2);
    c.add(Gate::h(0));
    c.add(Gate::x(0));
    c.add(Gate::h(0));
    Circuit out = peepholeOptimize(c);
    EXPECT_EQ(out.gateCount(), 3);
    // Intervening gate on *either* operand blocks a 2q cancel.
    Circuit d(3);
    d.add(Gate::cnot(0, 1));
    d.add(Gate::h(1));
    d.add(Gate::cnot(0, 1));
    EXPECT_EQ(peepholeOptimize(d).gateCount(), 3);
}

TEST(Peephole, BarrierBlocksRules)
{
    Circuit c(1);
    c.add(Gate::h(0));
    c.add(Gate::barrier());
    c.add(Gate::h(0));
    Circuit out = peepholeOptimize(c);
    EXPECT_EQ(out.gateCount(), 2);
}

TEST(Peephole, FusesPhaseRuns)
{
    Circuit c(1);
    c.add(Gate::u1(0, 0.3));
    c.add(Gate::rz(0, 0.4));
    c.add(Gate::u1(0, 0.5));
    PeepholeStats stats;
    Circuit out = peepholeOptimize(c, &stats);
    ASSERT_EQ(out.gateCount(), 1);
    EXPECT_EQ(out.gates()[0].type, GateType::U1);
    EXPECT_NEAR(out.gates()[0].params[0], 1.2, 1e-12);
    EXPECT_EQ(stats.fused_gates, 2);
}

TEST(Peephole, FusesCphasesAndCancelsFullAngle)
{
    Circuit c(2);
    c.add(Gate::cphase(0, 1, 1.0));
    c.add(Gate::cphase(1, 0, -1.0)); // symmetric operands, sums to zero
    Circuit out = peepholeOptimize(c);
    EXPECT_EQ(out.gateCount(), 0);
}

TEST(Peephole, CascadingCancellation)
{
    // Removing the inner pair exposes the outer pair.
    Circuit c(1);
    c.add(Gate::h(0));
    c.add(Gate::x(0));
    c.add(Gate::x(0));
    c.add(Gate::h(0));
    Circuit out = peepholeOptimize(c);
    EXPECT_EQ(out.gateCount(), 0);
}

TEST(Peephole, PreservesSemanticsOnRandomCircuits)
{
    Rng rng(99);
    for (int trial = 0; trial < 10; ++trial) {
        Circuit c(4);
        for (int i = 0; i < 60; ++i) {
            int a = rng.uniformInt(0, 3), b = rng.uniformInt(0, 3);
            switch (rng.uniformInt(0, 5)) {
              case 0: c.add(Gate::h(a)); break;
              case 1: c.add(Gate::x(a)); break;
              case 2: c.add(Gate::u1(a, rng.uniformReal(-1, 1))); break;
              case 3:
                if (a != b)
                    c.add(Gate::cnot(a, b));
                break;
              case 4:
                if (a != b)
                    c.add(Gate::cphase(a, b, rng.uniformReal(-2, 2)));
                break;
              default:
                c.add(Gate::rz(a, rng.uniformReal(-1, 1)));
                break;
            }
        }
        Circuit out = peepholeOptimize(c);
        EXPECT_LE(out.gateCount(), c.gateCount());
        EXPECT_TRUE(testutil::equivalentUpToGlobalPhase(c, out))
            << "trial " << trial;
    }
}

TEST(Peephole, MeasurementsUntouched)
{
    Circuit c(1);
    c.add(Gate::h(0));
    c.add(Gate::measure(0, 0));
    Circuit out = peepholeOptimize(c);
    EXPECT_EQ(out.countType(GateType::MEASURE), 1);
    EXPECT_EQ(out.gateCount(), 2);
}

TEST(Peephole, IdempotentAtFixedPoint)
{
    Circuit c(2);
    c.add(Gate::h(0));
    c.add(Gate::cnot(0, 1));
    Circuit once = peepholeOptimize(c);
    Circuit twice = peepholeOptimize(once);
    EXPECT_EQ(once.gateCount(), twice.gateCount());
}

} // namespace
} // namespace qaoa::transpiler
