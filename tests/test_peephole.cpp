/** @file Tests for the peephole optimizer. */

#include <gtest/gtest.h>

#include <numbers>

#include "common/rng.hpp"
#include "transpiler/peephole.hpp"
#include "verify/verifier.hpp"
#include "test_util.hpp"

namespace qaoa::transpiler {
namespace {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateType;

TEST(Peephole, DropsZeroRotations)
{
    Circuit c(2);
    c.add(Gate::u1(0, 0.0));
    c.add(Gate::rz(1, 0.0));
    c.add(Gate::rx(0, 0.0));
    c.add(Gate::cphase(0, 1, 0.0));
    c.add(Gate::u1(0, 2.0 * std::numbers::pi)); // identity mod 2 pi
    PeepholeStats stats;
    Circuit out = peepholeOptimize(c, &stats);
    EXPECT_EQ(out.gateCount(), 0);
    EXPECT_EQ(stats.removed_gates, 5);
}

TEST(Peephole, CancelsSelfInversePairs)
{
    Circuit c(3);
    c.add(Gate::h(0));
    c.add(Gate::h(0));
    c.add(Gate::x(1));
    c.add(Gate::x(1));
    c.add(Gate::cnot(1, 2));
    c.add(Gate::cnot(1, 2));
    c.add(Gate::swap(0, 2));
    c.add(Gate::swap(2, 0)); // operand order irrelevant for SWAP
    Circuit out = peepholeOptimize(c);
    EXPECT_EQ(out.gateCount(), 0);
}

TEST(Peephole, ReversedCnotDoesNotCancel)
{
    Circuit c(2);
    c.add(Gate::cnot(0, 1));
    c.add(Gate::cnot(1, 0));
    Circuit out = peepholeOptimize(c);
    EXPECT_EQ(out.gateCount(), 2);
}

TEST(Peephole, InterveningGateBlocksCancellation)
{
    Circuit c(2);
    c.add(Gate::h(0));
    c.add(Gate::x(0));
    c.add(Gate::h(0));
    Circuit out = peepholeOptimize(c);
    EXPECT_EQ(out.gateCount(), 3);
    // Intervening gate on *either* operand blocks a 2q cancel.
    Circuit d(3);
    d.add(Gate::cnot(0, 1));
    d.add(Gate::h(1));
    d.add(Gate::cnot(0, 1));
    EXPECT_EQ(peepholeOptimize(d).gateCount(), 3);
}

TEST(Peephole, BarrierBlocksRules)
{
    Circuit c(1);
    c.add(Gate::h(0));
    c.add(Gate::barrier());
    c.add(Gate::h(0));
    Circuit out = peepholeOptimize(c);
    EXPECT_EQ(out.gateCount(), 2);
}

TEST(Peephole, FusesPhaseRuns)
{
    Circuit c(1);
    c.add(Gate::u1(0, 0.3));
    c.add(Gate::rz(0, 0.4));
    c.add(Gate::u1(0, 0.5));
    PeepholeStats stats;
    Circuit out = peepholeOptimize(c, &stats);
    ASSERT_EQ(out.gateCount(), 1);
    EXPECT_EQ(out.gates()[0].type, GateType::U1);
    EXPECT_NEAR(out.gates()[0].params[0], 1.2, 1e-12);
    EXPECT_EQ(stats.fused_gates, 2);
}

TEST(Peephole, FusesCphasesAndCancelsFullAngle)
{
    Circuit c(2);
    c.add(Gate::cphase(0, 1, 1.0));
    c.add(Gate::cphase(1, 0, -1.0)); // symmetric operands, sums to zero
    Circuit out = peepholeOptimize(c);
    EXPECT_EQ(out.gateCount(), 0);
}

TEST(Peephole, CascadingCancellation)
{
    // Removing the inner pair exposes the outer pair.
    Circuit c(1);
    c.add(Gate::h(0));
    c.add(Gate::x(0));
    c.add(Gate::x(0));
    c.add(Gate::h(0));
    Circuit out = peepholeOptimize(c);
    EXPECT_EQ(out.gateCount(), 0);
}

TEST(Peephole, PreservesSemanticsOnRandomCircuits)
{
    Rng rng(99);
    for (int trial = 0; trial < 10; ++trial) {
        Circuit c(4);
        for (int i = 0; i < 60; ++i) {
            int a = rng.uniformInt(0, 3), b = rng.uniformInt(0, 3);
            switch (rng.uniformInt(0, 5)) {
              case 0: c.add(Gate::h(a)); break;
              case 1: c.add(Gate::x(a)); break;
              case 2: c.add(Gate::u1(a, rng.uniformReal(-1, 1))); break;
              case 3:
                if (a != b)
                    c.add(Gate::cnot(a, b));
                break;
              case 4:
                if (a != b)
                    c.add(Gate::cphase(a, b, rng.uniformReal(-2, 2)));
                break;
              default:
                c.add(Gate::rz(a, rng.uniformReal(-1, 1)));
                break;
            }
        }
        Circuit out = peepholeOptimize(c);
        EXPECT_LE(out.gateCount(), c.gateCount());
        EXPECT_TRUE(testutil::equivalentUpToGlobalPhase(c, out))
            << "trial " << trial;
    }
}

TEST(Peephole, MeasurementsUntouched)
{
    Circuit c(1);
    c.add(Gate::h(0));
    c.add(Gate::measure(0, 0));
    Circuit out = peepholeOptimize(c);
    EXPECT_EQ(out.countType(GateType::MEASURE), 1);
    EXPECT_EQ(out.gateCount(), 2);
}

TEST(Peephole, IdempotentAtFixedPoint)
{
    Circuit c(2);
    c.add(Gate::h(0));
    c.add(Gate::cnot(0, 1));
    Circuit once = peepholeOptimize(c);
    Circuit twice = peepholeOptimize(once);
    EXPECT_EQ(once.gateCount(), twice.gateCount());
}

// ---- verifier cross-checks --------------------------------------------
//
// The optimizer rewrites routed circuits right before they are declared
// done, so it is the natural place to prove the verify/ checker catches
// what a buggy rewrite would produce.  Each corruption below simulates
// one defect class and must be flagged with its specific rule ID.

/** Routed-style circuit: CPHASEs around a SWAP, measures at the end. */
Circuit
routedFixture()
{
    Circuit c(4);
    c.add(Gate::cphase(0, 1, 0.7));
    c.add(Gate::cphase(1, 2, 0.7));
    c.add(Gate::swap(0, 1));
    c.add(Gate::cphase(1, 2, 0.7)); // logical (0,2) after the SWAP
    c.add(Gate::measure(1, 0));
    c.add(Gate::measure(0, 1));
    c.add(Gate::measure(2, 2));
    return c;
}

verify::VerifySpec
fixtureSpec(const std::vector<verify::ZZTerm> &terms)
{
    verify::VerifySpec spec;
    spec.initial_log_to_phys = {0, 1, 2};
    spec.expected_final = {1, 0, 2};
    spec.expected_interactions = &terms;
    spec.lift_basis = false;
    spec.lints = false; // fixture skips the H wall on purpose
    return spec;
}

const std::vector<verify::ZZTerm> kTerms{
    {0, 1, 0.7}, {1, 2, 0.7}, {0, 2, 0.7}};

TEST(PeepholeVerify, OptimizedRoutedCircuitStaysClean)
{
    // Peephole output of a legal routed circuit must verify clean: the
    // optimizer only removes identities, never interactions.
    Circuit out = peepholeOptimize(routedFixture());
    verify::VerifyReport r =
        verify::verifyCircuit(out, fixtureSpec(kTerms));
    EXPECT_TRUE(r.clean()) << r.summary();
}

TEST(PeepholeVerify, DroppedCphaseIsFlaggedQV004)
{
    // Simulates an over-eager rewrite deleting a non-identity CPHASE.
    const Circuit src = routedFixture();
    Circuit c(4);
    bool dropped = false;
    for (const Gate &g : src.gates()) {
        if (!dropped && g.type == GateType::CPHASE) {
            dropped = true; // silently discard the first interaction
            continue;
        }
        c.add(g);
    }
    verify::VerifyReport r = verify::verifyCircuit(
        peepholeOptimize(c), fixtureSpec(kTerms));
    EXPECT_FALSE(r.clean());
    EXPECT_EQ(r.count(verify::Rule::MissingInteraction), 1);
}

TEST(PeepholeVerify, WrongSwapTargetIsFlagged)
{
    // Simulates a rewrite retargeting a SWAP: the replayed permutation
    // diverges from the reported mapping and the post-SWAP CPHASE binds
    // the wrong logical pair.
    const Circuit src = routedFixture();
    Circuit c(4);
    for (const Gate &g : src.gates())
        c.add(g.type == GateType::SWAP ? Gate::swap(2, 3) : g);
    verify::VerifyReport r = verify::verifyCircuit(
        peepholeOptimize(c), fixtureSpec(kTerms));
    EXPECT_FALSE(r.clean());
    EXPECT_GE(r.count(verify::Rule::MappingMismatch), 1);
    EXPECT_GE(r.count(verify::Rule::MissingInteraction), 1);
}

TEST(PeepholeVerify, StaleMappingIsFlaggedQV003)
{
    // Simulates a pass that rewrites gates but forgets to update the
    // reported final layout (a stale-mapping miscompile).
    std::vector<verify::ZZTerm> terms = kTerms;
    verify::VerifySpec spec = fixtureSpec(terms);
    spec.expected_final = {0, 1, 2}; // pre-SWAP mapping reported as final
    verify::VerifyReport r =
        verify::verifyCircuit(peepholeOptimize(routedFixture()), spec);
    EXPECT_FALSE(r.clean());
    EXPECT_EQ(r.count(verify::Rule::MappingMismatch), 2);
}

TEST(PeepholeVerify, ZeroAngleRemovalNeedsOptInTolerance)
{
    // Peephole deletes a CPHASE whose angle is an exact 2-pi multiple;
    // verification must account for that via ignore_zero_interactions.
    Circuit c(2);
    c.add(Gate::cphase(0, 1, 2.0 * std::numbers::pi));
    c.add(Gate::cphase(0, 1, 0.4));
    Circuit out = peepholeOptimize(c);

    std::vector<verify::ZZTerm> terms{
        {0, 1, 2.0 * std::numbers::pi}, {0, 1, 0.4}};
    verify::VerifySpec spec;
    spec.initial_log_to_phys = {0, 1};
    spec.expected_interactions = &terms;
    spec.lift_basis = false;
    spec.lints = false;
    verify::VerifyReport strict = verify::verifyCircuit(out, spec);
    EXPECT_FALSE(strict.clean()); // the identity CPHASE is gone

    spec.ignore_zero_interactions = true;
    verify::VerifyReport tolerant = verify::verifyCircuit(out, spec);
    EXPECT_TRUE(tolerant.clean()) << tolerant.summary();
}

} // namespace
} // namespace qaoa::transpiler
