/** @file Tests for the optimization-level presets. */

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "hardware/devices.hpp"
#include "qaoa/presets.hpp"
#include "test_util.hpp"
#include "transpiler/router.hpp"

namespace qaoa::core {
namespace {

TEST(Presets, MethodResolution)
{
    EXPECT_EQ(presetMethod(OptimizationLevel::O0, false), Method::Naive);
    EXPECT_EQ(presetMethod(OptimizationLevel::O1, false), Method::Qaim);
    EXPECT_EQ(presetMethod(OptimizationLevel::O2, false), Method::Ip);
    EXPECT_EQ(presetMethod(OptimizationLevel::O3, false), Method::Ic);
    EXPECT_EQ(presetMethod(OptimizationLevel::O3, true), Method::Vic);
}

TEST(Presets, AllLevelsProduceValidCircuits)
{
    hw::CouplingMap melbourne = hw::ibmqMelbourne15();
    hw::CalibrationData calib = hw::melbourneCalibration(melbourne);
    Rng rng(14);
    graph::Graph g = graph::randomRegular(10, 3, rng);
    for (OptimizationLevel level :
         {OptimizationLevel::O0, OptimizationLevel::O1,
          OptimizationLevel::O2, OptimizationLevel::O3}) {
        transpiler::CompileResult r = transpileQaoa(
            g, melbourne, level, {0.7}, {0.35}, 11, &calib);
        EXPECT_TRUE(transpiler::satisfiesCoupling(r.compiled, melbourne));
        EXPECT_EQ(r.compiled.countType(circuit::GateType::MEASURE), 10);
    }
}

TEST(Presets, HigherLevelsImproveDepthOnAverage)
{
    hw::CouplingMap tokyo = hw::ibmqTokyo20();
    Rng rng(15);
    double d0 = 0.0, d3 = 0.0;
    for (int trial = 0; trial < 5; ++trial) {
        graph::Graph g = graph::randomRegular(14, 4, rng);
        d0 += transpileQaoa(g, tokyo, OptimizationLevel::O0, {0.7},
                            {0.35}, static_cast<std::uint64_t>(trial))
                  .report.depth;
        d3 += transpileQaoa(g, tokyo, OptimizationLevel::O3, {0.7},
                            {0.35}, static_cast<std::uint64_t>(trial))
                  .report.depth;
    }
    EXPECT_LT(d3, d0);
}

TEST(Presets, O3PreservesSemantics)
{
    Rng rng(16);
    graph::Graph g = graph::erdosRenyi(5, 0.5, rng);
    if (g.numEdges() == 0)
        g.addEdge(0, 1);
    hw::CouplingMap grid = hw::gridDevice(2, 3);
    transpiler::CompileResult r =
        transpileQaoa(g, grid, OptimizationLevel::O3, {0.8}, {0.4});
    circuit::Circuit logical = buildQaoaCircuit(g, {0.8}, {0.4});
    EXPECT_LT(testutil::totalVariation(
                  testutil::exactClassicalDistribution(logical),
                  testutil::exactClassicalDistribution(r.compiled)),
              1e-9);
}

/** Compliance sweep across every device in the library. */
class PresetDeviceSweep : public ::testing::TestWithParam<int>
{
  public:
    static hw::CouplingMap
    device(int kind)
    {
        switch (kind) {
          case 0: return hw::ibmqTokyo20();
          case 1: return hw::ibmqMelbourne15();
          case 2: return hw::ibmqPoughkeepsie20();
          case 3: return hw::heavyHexFalcon27();
          case 4: return hw::gridDevice(6, 6);
          default: return hw::ringDevice(12);
        }
    }
};

TEST_P(PresetDeviceSweep, O3CompliantOnEveryDevice)
{
    hw::CouplingMap map = device(GetParam());
    Rng rng(static_cast<std::uint64_t>(GetParam()) + 40);
    graph::Graph g = graph::randomRegular(10, 3, rng);
    transpiler::CompileResult r =
        transpileQaoa(g, map, OptimizationLevel::O3);
    EXPECT_TRUE(transpiler::satisfiesCoupling(r.compiled, map))
        << map.name();
    EXPECT_GT(r.report.depth, 0);
}

INSTANTIATE_TEST_SUITE_P(AllDevices, PresetDeviceSweep,
                         ::testing::Values(0, 1, 2, 3, 4, 5));

} // namespace
} // namespace qaoa::core
