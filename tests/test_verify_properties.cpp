/** @file
 * Property test: every compile method on every built-in device produces
 * a verifier-spotless circuit — the in-process equivalent of the CLI's
 * --verify-strict bar.  This replaces the sampled coupling/count
 * spot-checks the compiler tests used to rely on: the verifier proves
 * coupling conformance, mapping replay and interaction equivalence in
 * one pass, on healthy and fault-degraded devices alike.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "hardware/devices.hpp"
#include "hardware/faults.hpp"
#include "qaoa/api.hpp"
#include "qaoa/ising.hpp"
#include "qaoa/problem.hpp"
#include "verify/verifier.hpp"

namespace qaoa::core {
namespace {

const std::vector<Method> kMethods{Method::Naive, Method::GreedyV,
                                   Method::Qaim,  Method::Ip,
                                   Method::Ic,    Method::Vic};

std::vector<hw::CouplingMap>
builtinDevices()
{
    std::vector<hw::CouplingMap> devices;
    devices.push_back(hw::ibmqTokyo20());
    devices.push_back(hw::ibmqMelbourne15());
    devices.push_back(hw::ibmqPoughkeepsie20());
    devices.push_back(hw::heavyHexFalcon27());
    devices.push_back(hw::gridDevice(4, 4));
    devices.push_back(hw::linearDevice(14));
    devices.push_back(hw::ringDevice(14));
    return devices;
}

/** The ZZ multiset compileQaoaMaxcut must realize (angle = gamma * w). */
std::vector<verify::ZZTerm>
maxcutTerms(const graph::Graph &problem, const std::vector<double> &gammas,
            double scale)
{
    std::vector<verify::ZZTerm> terms;
    for (double gamma : gammas)
        for (const ZZOp &op : costOperations(problem))
            terms.push_back({op.a, op.b, scale * gamma * op.weight});
    return terms;
}

/** Runs the verifier at the --verify-strict bar and reports findings. */
void
expectSpotless(const transpiler::CompileResult &r,
               const hw::CouplingMap &map,
               const std::vector<char> *allowed,
               const std::vector<verify::ZZTerm> &terms,
               const std::string &context)
{
    ASSERT_TRUE(r.ok()) << context << ": " << r.failure_reason;
    verify::VerifySpec spec;
    spec.map = &map;
    spec.allowed_qubits = allowed;
    spec.initial_log_to_phys = r.initial_layout.logToPhys();
    spec.expected_final = r.final_layout.logToPhys();
    spec.expected_interactions = &terms;
    spec.lift_basis = false;
    verify::VerifyReport report = verify::verifyCircuit(r.physical, spec);
    EXPECT_TRUE(report.spotless())
        << context << ": " << report.summary();
}

TEST(VerifyProperties, AllMethodsOnAllBuiltinDevicesAreSpotless)
{
    Rng inst_rng(91);
    for (const hw::CouplingMap &map : builtinDevices()) {
        const int n = std::min(10, map.numQubits());
        graph::Graph problem = graph::erdosRenyi(n, 0.45, inst_rng);
        if (problem.numEdges() == 0)
            problem.addEdge(0, 1);
        hw::CalibrationData calib(map);

        QaoaCompileOptions opts;
        opts.gammas = {0.7, 0.4};
        opts.betas = {0.35, 0.2};
        opts.seed = 123;
        opts.calibration = &calib;
        const std::vector<verify::ZZTerm> terms =
            maxcutTerms(problem, opts.gammas, 1.0);

        for (Method method : kMethods) {
            opts.method = method;
            transpiler::CompileResult r =
                compileQaoaMaxcut(problem, map, opts);
            expectSpotless(r, map, nullptr, terms,
                           map.name() + "/" + methodName(method));
        }
    }
}

TEST(VerifyProperties, FaultMaskedDeviceCompilesAreSpotless)
{
    // Degraded Tokyo: two dead qubits and a few lost couplings.  The
    // compile must stay inside the usable region and verify against the
    // *degraded* map.
    hw::CouplingMap base = hw::ibmqTokyo20();
    hw::CalibrationData base_calib(base);
    hw::FaultSpec faults;
    faults.dead_qubits = {3, 17};
    faults.disabled_edges = {{0, 1}, {6, 11}};
    hw::FaultInjector injector(base, faults, &base_calib);

    Rng inst_rng(7);
    graph::Graph problem = graph::erdosRenyi(8, 0.5, inst_rng);

    QaoaCompileOptions opts;
    opts.gammas = {0.6};
    opts.betas = {0.3};
    opts.seed = 5;
    opts.calibration = &injector.calibration();
    opts.allowed_qubits = &injector.usable();
    opts.device_degraded = true;
    const std::vector<verify::ZZTerm> terms =
        maxcutTerms(problem, opts.gammas, 1.0);

    for (Method method : kMethods) {
        opts.method = method;
        transpiler::CompileResult r =
            compileQaoaMaxcut(problem, injector.map(), opts);
        ASSERT_TRUE(r.ok()) << methodName(method);
        EXPECT_EQ(r.status, transpiler::CompileStatus::Degraded);
        expectSpotless(r, injector.map(), &injector.usable(), terms,
                       "faulty-tokyo/" + methodName(method));
    }
}

TEST(VerifyProperties, PeepholeCompilesStayClean)
{
    // The peephole optimizer must not break interaction equivalence.
    Rng inst_rng(13);
    graph::Graph problem = graph::erdosRenyi(9, 0.4, inst_rng);
    hw::CouplingMap map = hw::ibmqMelbourne15();
    hw::CalibrationData calib(map);

    QaoaCompileOptions opts;
    opts.gammas = {0.7};
    opts.betas = {0.35};
    opts.peephole = true;
    opts.calibration = &calib;
    std::vector<verify::ZZTerm> terms =
        maxcutTerms(problem, opts.gammas, 1.0);

    for (Method method : kMethods) {
        opts.method = method;
        transpiler::CompileResult r = compileQaoaMaxcut(problem, map, opts);
        ASSERT_TRUE(r.ok()) << methodName(method);
        verify::VerifySpec spec;
        spec.map = &map;
        spec.initial_log_to_phys = r.initial_layout.logToPhys();
        spec.expected_final = r.final_layout.logToPhys();
        spec.expected_interactions = &terms;
        spec.lift_basis = false;
        spec.ignore_zero_interactions = true;
        EXPECT_TRUE(verify::verifyCircuit(r.physical, spec).clean())
            << methodName(method);
    }
}

TEST(VerifyProperties, IsingCompilesAreSpotless)
{
    // Quadratic Ising terms carry angle 2*gamma*J.
    IsingModel model(6);
    model.addQuadratic(0, 1, 0.8);
    model.addQuadratic(1, 2, -0.5);
    model.addQuadratic(2, 3, 1.1);
    model.addQuadratic(3, 4, 0.9);
    model.addQuadratic(4, 5, -1.3);
    model.addQuadratic(0, 5, 0.4);
    model.addLinear(2, 0.7);

    hw::CouplingMap map = hw::ibmqMelbourne15();
    hw::CalibrationData calib(map);
    QaoaCompileOptions opts;
    opts.gammas = {0.45};
    opts.betas = {0.25};
    opts.calibration = &calib;

    std::vector<verify::ZZTerm> terms;
    for (const ZZOp &op : model.quadraticOps())
        terms.push_back({op.a, op.b, 2.0 * opts.gammas[0] * op.weight});

    for (Method method : kMethods) {
        opts.method = method;
        transpiler::CompileResult r = compileQaoaIsing(model, map, opts);
        expectSpotless(r, map, nullptr, terms,
                       "ising/" + methodName(method));
    }
}

} // namespace
} // namespace qaoa::core
