/** @file Tests for BFS / Floyd–Warshall / path reconstruction. */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "graph/shortest_paths.hpp"

namespace qaoa::graph {
namespace {

TEST(BfsDistances, PathGraph)
{
    Graph g = pathGraph(5);
    std::vector<double> d = bfsDistances(g, 0);
    for (int i = 0; i < 5; ++i)
        EXPECT_DOUBLE_EQ(d[static_cast<std::size_t>(i)], i);
}

TEST(BfsDistances, DisconnectedIsInfinite)
{
    Graph g(3);
    g.addEdge(0, 1);
    std::vector<double> d = bfsDistances(g, 0);
    EXPECT_DOUBLE_EQ(d[1], 1.0);
    EXPECT_EQ(d[2], kInfDistance);
}

TEST(FloydWarshall, MatchesBfsOnUnweightedGraphs)
{
    Rng rng(77);
    for (int trial = 0; trial < 10; ++trial) {
        Graph g = erdosRenyi(12, 0.3, rng);
        DistanceMatrix fw = floydWarshall(g);
        for (int s = 0; s < g.numNodes(); ++s) {
            std::vector<double> bfs = bfsDistances(g, s);
            for (int t = 0; t < g.numNodes(); ++t)
                EXPECT_DOUBLE_EQ(
                    fw[static_cast<std::size_t>(s)]
                      [static_cast<std::size_t>(t)],
                    bfs[static_cast<std::size_t>(t)])
                    << "pair (" << s << ", " << t << ")";
        }
    }
}

TEST(FloydWarshall, WeightedTriangleTakesCheaperDetour)
{
    // Direct edge 0-2 costs 10; the detour through 1 costs 2.
    Graph g(3);
    g.addEdge(0, 1, 1.0);
    g.addEdge(1, 2, 1.0);
    g.addEdge(0, 2, 10.0);
    DistanceMatrix d = floydWarshall(g, /*weighted=*/true);
    EXPECT_DOUBLE_EQ(d[0][2], 2.0);
    EXPECT_DOUBLE_EQ(d[2][0], 2.0);
    // Unweighted view ignores weights.
    DistanceMatrix h = floydWarshall(g, /*weighted=*/false);
    EXPECT_DOUBLE_EQ(h[0][2], 1.0);
}

TEST(FloydWarshall, DiagonalIsZeroAndSymmetric)
{
    Rng rng(5);
    Graph g = erdosRenyi(10, 0.4, rng);
    DistanceMatrix d = floydWarshall(g);
    for (int i = 0; i < 10; ++i) {
        EXPECT_DOUBLE_EQ(d[static_cast<std::size_t>(i)]
                          [static_cast<std::size_t>(i)], 0.0);
        for (int j = 0; j < 10; ++j)
            EXPECT_DOUBLE_EQ(d[static_cast<std::size_t>(i)]
                              [static_cast<std::size_t>(j)],
                             d[static_cast<std::size_t>(j)]
                              [static_cast<std::size_t>(i)]);
    }
}

TEST(FloydWarshall, TriangleInequalityHolds)
{
    Rng rng(31);
    Graph g = erdosRenyi(10, 0.5, rng);
    DistanceMatrix d = floydWarshall(g);
    for (int i = 0; i < 10; ++i) {
        for (int j = 0; j < 10; ++j) {
            for (int k = 0; k < 10; ++k) {
                if (d[i][k] != kInfDistance && d[k][j] != kInfDistance) {
                    EXPECT_LE(d[i][j], d[i][k] + d[k][j] + 1e-12);
                }
            }
        }
    }
}

TEST(PathReconstruction, RecoversShortestPaths)
{
    Graph g = gridGraph(3, 3);
    NextHopMatrix next;
    DistanceMatrix d = floydWarshall(g, false, &next);
    for (int s = 0; s < 9; ++s) {
        for (int t = 0; t < 9; ++t) {
            std::vector<int> path = reconstructPath(next, s, t);
            ASSERT_FALSE(path.empty());
            EXPECT_EQ(path.front(), s);
            EXPECT_EQ(path.back(), t);
            EXPECT_EQ(static_cast<double>(path.size() - 1),
                      d[static_cast<std::size_t>(s)]
                       [static_cast<std::size_t>(t)]);
            for (std::size_t i = 0; i + 1 < path.size(); ++i)
                EXPECT_TRUE(g.hasEdge(path[i], path[i + 1]));
        }
    }
}

TEST(PathReconstruction, UnreachableGivesEmptyPath)
{
    Graph g(4);
    g.addEdge(0, 1);
    g.addEdge(2, 3);
    NextHopMatrix next;
    floydWarshall(g, false, &next);
    EXPECT_TRUE(reconstructPath(next, 0, 3).empty());
    EXPECT_EQ(reconstructPath(next, 0, 1).size(), 2u);
}

TEST(BfsDistances, SourceOutOfRangeThrows)
{
    Graph g(3);
    EXPECT_THROW(bfsDistances(g, 3), std::runtime_error);
}

TEST(FloydWarshall, FragmentedGraphIsInfiniteAcrossFragments)
{
    // Two 3-node fragments, as left by fault injection on a degraded
    // device: finite within a fragment, kInfDistance and next = -1
    // across, and the diagonal stays 0 even for isolated nodes.
    Graph g(7);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(3, 4);
    g.addEdge(4, 5); // node 6 is isolated
    NextHopMatrix next;
    DistanceMatrix d = floydWarshall(g, false, &next);
    EXPECT_DOUBLE_EQ(d[0][2], 2.0);
    EXPECT_DOUBLE_EQ(d[3][5], 2.0);
    for (int a : {0, 1, 2}) {
        for (int b : {3, 4, 5, 6}) {
            EXPECT_EQ(d[static_cast<std::size_t>(a)]
                       [static_cast<std::size_t>(b)], kInfDistance)
                << "pair (" << a << ", " << b << ")";
            EXPECT_EQ(next[static_cast<std::size_t>(a)]
                          [static_cast<std::size_t>(b)], -1)
                << "pair (" << a << ", " << b << ")";
        }
    }
    EXPECT_DOUBLE_EQ(d[6][6], 0.0);
}

TEST(ConnectedComponents, FindsAndOrdersFragments)
{
    Graph g(7);
    g.addEdge(0, 1);
    g.addEdge(3, 4);
    g.addEdge(4, 5); // components: {3,4,5}, {0,1}, {2}, {6}
    std::vector<std::vector<int>> comps = connectedComponents(g);
    ASSERT_EQ(comps.size(), 4u);
    EXPECT_EQ(comps[0], (std::vector<int>{3, 4, 5})); // largest first
    EXPECT_EQ(comps[1], (std::vector<int>{0, 1}));
    EXPECT_EQ(largestComponent(g), (std::vector<int>{3, 4, 5}));
}

TEST(ConnectedComponents, SingleComponentCoversGraph)
{
    Graph g = gridGraph(3, 4);
    std::vector<std::vector<int>> comps = connectedComponents(g);
    ASSERT_EQ(comps.size(), 1u);
    EXPECT_EQ(static_cast<int>(comps[0].size()), g.numNodes());
}

} // namespace
} // namespace qaoa::graph
