/** @file Tests for the iterative re-compilation comparator (§VII). */

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "hardware/devices.hpp"
#include "qaoa/iterative.hpp"
#include "transpiler/router.hpp"

namespace qaoa::core {
namespace {

TEST(Iterative, FindsNoWorseCircuitThanSingleShot)
{
    hw::CouplingMap tokyo = hw::ibmqTokyo20();
    Rng rng(1);
    graph::Graph g = graph::randomRegular(12, 3, rng);

    QaoaCompileOptions base;
    base.method = Method::Qaim;
    base.seed = 5;
    transpiler::CompileResult single = compileQaoaMaxcut(g, tokyo, base);

    IterativeOptions opts;
    opts.compile = base;
    opts.patience = 6;
    IterativeResult it = iterativeCompile(g, tokyo, opts);
    EXPECT_LE(it.best.report.depth, single.report.depth);
    EXPECT_GE(it.rounds, opts.patience);
    EXPECT_TRUE(transpiler::satisfiesCoupling(it.best.compiled, tokyo));
}

TEST(Iterative, GateCountObjective)
{
    hw::CouplingMap melbourne = hw::ibmqMelbourne15();
    Rng rng(2);
    graph::Graph g = graph::randomRegular(10, 3, rng);
    IterativeOptions opts;
    opts.compile.method = Method::Qaim;
    opts.objective = IterativeObjective::GateCount;
    opts.patience = 4;
    IterativeResult it = iterativeCompile(g, melbourne, opts);

    // Exhaustively confirm: no single-shot compile with the search's
    // seed space... instead, sanity-check that the winner is not the
    // worst round by re-running a handful of fresh seeds.
    Rng seeder(opts.compile.seed);
    int worse_or_equal = 0;
    for (int i = 0; i < 5; ++i) {
        QaoaCompileOptions probe = opts.compile;
        probe.seed = seeder.fork();
        if (compileQaoaMaxcut(g, melbourne, probe).report.gate_count >=
            it.best.report.gate_count)
            ++worse_or_equal;
    }
    EXPECT_GE(worse_or_equal, 4);
}

TEST(Iterative, RespectsRoundCap)
{
    hw::CouplingMap lin = hw::linearDevice(6);
    Rng rng(3);
    graph::Graph g = graph::randomRegular(6, 3, rng);
    IterativeOptions opts;
    opts.compile.method = Method::Naive;
    opts.max_rounds = 3;
    opts.patience = 100;
    IterativeResult it = iterativeCompile(g, lin, opts);
    EXPECT_EQ(it.rounds, 3);
}

TEST(Iterative, AccumulatesCompileTime)
{
    hw::CouplingMap grid = hw::gridDevice(3, 3);
    Rng rng(4);
    graph::Graph g = graph::randomRegular(8, 3, rng);
    IterativeOptions opts;
    opts.compile.method = Method::Qaim;
    opts.patience = 3;
    IterativeResult it = iterativeCompile(g, grid, opts);
    // The §VII point: total compile time is a multiple of one round's.
    EXPECT_GE(it.total_compile_seconds,
              it.best.report.compile_seconds);
    EXPECT_GE(it.rounds, 3);
}

TEST(Iterative, RejectsBadOptions)
{
    hw::CouplingMap lin = hw::linearDevice(4);
    Rng rng(5);
    graph::Graph g = graph::cycleGraph(4);
    IterativeOptions opts;
    opts.patience = 0;
    EXPECT_THROW(iterativeCompile(g, lin, opts), std::runtime_error);
    opts.patience = 1;
    opts.max_rounds = 0;
    EXPECT_THROW(iterativeCompile(g, lin, opts), std::runtime_error);
}

} // namespace
} // namespace qaoa::core
