/**
 * @file
 * Shared helpers for the test suite: exact classical output
 * distributions and global-phase-insensitive circuit equivalence.
 */

#ifndef QAOA_TESTS_TEST_UTIL_HPP
#define QAOA_TESTS_TEST_UTIL_HPP

#include <cmath>
#include <cstdint>
#include <map>

#include "circuit/circuit.hpp"
#include "sim/statevector.hpp"

namespace qaoa::testutil {

/** Exact probability distribution over classical bits.
 *
 * Runs the unitary part of the circuit and folds the statevector
 * probabilities through the MEASURE (qubit -> cbit) map, giving the
 * infinite-shot limit of runAndSample().
 */
inline std::map<std::uint64_t, double>
exactClassicalDistribution(const circuit::Circuit &c)
{
    sim::Statevector state(c.numQubits());
    state.apply(c);
    std::vector<std::pair<int, int>> measures;
    for (const circuit::Gate &g : c.gates())
        if (g.type == circuit::GateType::MEASURE)
            measures.emplace_back(g.q0, g.cbit);

    std::map<std::uint64_t, double> dist;
    std::vector<double> probs = state.probabilities();
    for (std::size_t basis = 0; basis < probs.size(); ++basis) {
        if (probs[basis] <= 0.0)
            continue;
        std::uint64_t bits = 0;
        for (const auto &[q, cb] : measures)
            if ((basis >> q) & 1ULL)
                bits |= 1ULL << cb;
        dist[bits] += probs[basis];
    }
    return dist;
}

/** Total-variation distance between two classical distributions. */
inline double
totalVariation(const std::map<std::uint64_t, double> &a,
               const std::map<std::uint64_t, double> &b)
{
    double tv = 0.0;
    for (const auto &[k, p] : a) {
        auto it = b.find(k);
        tv += std::abs(p - (it == b.end() ? 0.0 : it->second));
    }
    for (const auto &[k, p] : b)
        if (!a.count(k))
            tv += p;
    return tv / 2.0;
}

/**
 * True when the two circuits produce the same state up to global phase
 * (|<a|b>|^2 within tolerance).  Registers must match.
 */
inline bool
equivalentUpToGlobalPhase(const circuit::Circuit &a,
                          const circuit::Circuit &b, double tol = 1e-9)
{
    sim::Statevector sa(a.numQubits());
    sa.apply(a);
    sim::Statevector sb(b.numQubits());
    sb.apply(b);
    return std::abs(sa.overlap(sb) - 1.0) < tol;
}

} // namespace qaoa::testutil

#endif // QAOA_TESTS_TEST_UTIL_HPP
