/** @file
 * Stress and termination tests: adversarial workloads that exercise the
 * routers' anti-livelock paths, full-device compiles, and scale limits.
 */

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "hardware/devices.hpp"
#include "metrics/harness.hpp"
#include "qaoa/api.hpp"
#include "transpiler/astar_router.hpp"
#include "transpiler/router.hpp"

namespace qaoa {
namespace {

using circuit::Circuit;
using circuit::Gate;

TEST(Stress, RingRoutingTerminatesAcrossSeeds)
{
    // Rings invite SWAP oscillation (two shortest paths everywhere);
    // the decay + forced-step logic must always terminate.
    hw::CouplingMap ring = hw::ringDevice(8);
    Rng inst_rng(1);
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        Circuit c(8);
        Rng rng(seed + 100);
        for (int i = 0; i < 40; ++i) {
            int a = rng.uniformInt(0, 7), b = rng.uniformInt(0, 7);
            if (a != b)
                c.add(Gate::cphase(a, b, 0.5));
        }
        transpiler::RouterOptions opts;
        opts.seed = seed;
        opts.lookahead_weight = 0.0; // greediest, most oscillation-prone
        transpiler::RoutedCircuit r = transpiler::routeCircuit(
            c, ring, transpiler::Layout::identity(8, 8), opts);
        EXPECT_TRUE(transpiler::satisfiesCoupling(r.physical, ring));
    }
}

TEST(Stress, AntipodalPairsOnRing)
{
    // Every gate spans the ring diameter — worst case for distance
    // heuristics.
    hw::CouplingMap ring = hw::ringDevice(10);
    Circuit c(10);
    for (int i = 0; i < 5; ++i)
        c.add(Gate::cnot(i, i + 5));
    transpiler::RoutedCircuit r = transpiler::routeCircuit(
        c, ring, transpiler::Layout::identity(10, 10));
    EXPECT_TRUE(transpiler::satisfiesCoupling(r.physical, ring));
    EXPECT_EQ(r.physical.gateCount() - r.swap_count, 5);
}

TEST(Stress, FullDeviceCompilesOnEveryTopology)
{
    // Problem size == device size: no spare qubits anywhere.
    struct Case
    {
        hw::CouplingMap map;
        int n;
    };
    Case cases[] = {
        {hw::ibmqMelbourne15(), 15},
        {hw::ibmqPoughkeepsie20(), 20},
        {hw::gridDevice(4, 4), 16},
        {hw::ringDevice(12), 12},
    };
    for (Case &cs : cases) {
        Rng rng(static_cast<std::uint64_t>(cs.n));
        // n*k must be even for a regular graph; odd n gets k = 4.
        graph::Graph g = graph::randomRegular(
            cs.n, cs.n % 2 == 0 ? 3 : 4, rng);
        for (core::Method m : {core::Method::Naive, core::Method::Ip,
                               core::Method::Ic}) {
            core::QaoaCompileOptions opts;
            opts.method = m;
            opts.seed = 9;
            transpiler::CompileResult r =
                core::compileQaoaMaxcut(g, cs.map, opts);
            EXPECT_TRUE(
                transpiler::satisfiesCoupling(r.compiled, cs.map))
                << cs.map.name() << " " << core::methodName(m);
        }
    }
}

TEST(Stress, DenseProblemOnSparseDevice)
{
    // Complete graph on a line: maximal routing pressure.
    graph::Graph g = graph::completeGraph(9);
    hw::CouplingMap lin = hw::linearDevice(9);
    core::QaoaCompileOptions opts;
    opts.method = core::Method::Ic;
    transpiler::CompileResult r = core::compileQaoaMaxcut(g, lin, opts);
    EXPECT_TRUE(transpiler::satisfiesCoupling(r.compiled, lin));
    EXPECT_EQ(r.report.cx_count,
              2 * g.numEdges() + 3 * r.report.swap_count);
}

TEST(Stress, ThirtySixNodeGridCompile)
{
    // The §V-H scale: 36-node dense instance on the 6x6 grid.
    Rng rng(3);
    graph::Graph g = graph::randomRegular(36, 15, rng);
    hw::CouplingMap grid = hw::gridDevice(6, 6);
    core::QaoaCompileOptions opts;
    opts.method = core::Method::Ic;
    transpiler::CompileResult r = core::compileQaoaMaxcut(g, grid, opts);
    EXPECT_TRUE(transpiler::satisfiesCoupling(r.compiled, grid));
    EXPECT_GT(r.report.swap_count, 0);
    // §VI claims ~10 s for this scale on a 2017 desktop; our router
    // should be far under that.
    EXPECT_LT(r.report.compile_seconds, 10.0);
}

TEST(Stress, AStarOnFullTokyo)
{
    Rng rng(4);
    graph::Graph g = graph::randomRegular(20, 4, rng);
    circuit::Circuit logical =
        core::buildQaoaCircuit(g, {0.7}, {0.35}, false);
    hw::CouplingMap tokyo = hw::ibmqTokyo20();
    transpiler::RoutedCircuit r = transpiler::routeCircuitAStar(
        logical, tokyo, transpiler::Layout::identity(20, 20));
    EXPECT_TRUE(transpiler::satisfiesCoupling(r.physical, tokyo));
}

TEST(Stress, ManySmallInstancesDeterministic)
{
    // Sweep of tiny instances: results are reproducible end to end.
    hw::CouplingMap grid = hw::gridDevice(3, 3);
    auto run = [&]() {
        std::vector<int> depths;
        auto instances = metrics::erdosRenyiInstances(6, 0.5, 20, 555);
        core::QaoaCompileOptions opts;
        opts.method = core::Method::Ic;
        for (const auto &g : instances) {
            transpiler::CompileResult r =
                core::compileQaoaMaxcut(g, grid, opts);
            depths.push_back(r.report.depth);
        }
        return depths;
    };
    EXPECT_EQ(run(), run());
}

TEST(Stress, DeepMultiLevelCompile)
{
    Rng rng(5);
    graph::Graph g = graph::randomRegular(10, 3, rng);
    hw::CouplingMap melbourne = hw::ibmqMelbourne15();
    core::QaoaCompileOptions opts;
    opts.method = core::Method::Ic;
    opts.gammas.assign(5, 0.5); // p = 5
    opts.betas.assign(5, 0.25);
    transpiler::CompileResult r =
        core::compileQaoaMaxcut(g, melbourne, opts);
    EXPECT_TRUE(transpiler::satisfiesCoupling(r.compiled, melbourne));
    EXPECT_EQ(r.report.cx_count,
              2 * g.numEdges() * 5 + 3 * r.report.swap_count);
}

} // namespace
} // namespace qaoa
