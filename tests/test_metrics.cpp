/** @file Tests for approximation ratio, ARG, and the evaluation harness. */

#include <gtest/gtest.h>

#include "common/parallel.hpp"
#include "graph/maxcut.hpp"
#include "hardware/devices.hpp"
#include "metrics/approx_ratio.hpp"
#include "metrics/harness.hpp"

namespace qaoa::metrics {
namespace {

TEST(ApproxRatio, ExpectedCutValue)
{
    graph::Graph g(2);
    g.addEdge(0, 1);
    sim::Counts counts;
    counts[0b01] = 30; // cut = 1
    counts[0b00] = 10; // cut = 0
    EXPECT_DOUBLE_EQ(expectedCutValue(g, counts), 0.75);
}

TEST(ApproxRatio, RatioAgainstOptimum)
{
    graph::Graph g = graph::cycleGraph(3);
    sim::Counts counts;
    counts[0b001] = 50; // cut = 2 (optimal for a triangle)
    counts[0b000] = 50; // cut = 0
    double opt = graph::maxCutBruteForce(g).value;
    EXPECT_DOUBLE_EQ(approximationRatio(g, counts, opt), 0.5);
}

TEST(ApproxRatio, EmptyCountsRejected)
{
    graph::Graph g(2);
    g.addEdge(0, 1);
    EXPECT_THROW(expectedCutValue(g, {}), std::runtime_error);
}

TEST(Arg, GapFormula)
{
    EXPECT_DOUBLE_EQ(approximationRatioGap(0.8, 0.6), 25.0);
    EXPECT_DOUBLE_EQ(approximationRatioGap(0.8, 0.8), 0.0);
    // Hardware better than sim gives a negative gap.
    EXPECT_LT(approximationRatioGap(0.8, 0.9), 0.0);
    EXPECT_THROW(approximationRatioGap(0.0, 0.5), std::runtime_error);
}

TEST(Harness, InstanceGeneratorsRespectShape)
{
    auto ers = erdosRenyiInstances(10, 0.5, 5, 3);
    ASSERT_EQ(ers.size(), 5u);
    for (const auto &g : ers) {
        EXPECT_EQ(g.numNodes(), 10);
        EXPECT_TRUE(g.isConnected());
        EXPECT_GE(g.numEdges(), 1);
    }
    auto regs = regularInstances(12, 3, 4, 3);
    ASSERT_EQ(regs.size(), 4u);
    for (const auto &g : regs)
        for (int u = 0; u < 12; ++u)
            EXPECT_EQ(g.degree(u), 3);
}

TEST(Harness, InstanceGeneratorsDeterministic)
{
    auto a = erdosRenyiInstances(8, 0.4, 3, 99);
    auto b = erdosRenyiInstances(8, 0.4, 3, 99);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(a[i].numEdges(), b[i].numEdges());
}

TEST(Harness, CompileSeriesShapes)
{
    hw::CouplingMap melbourne = hw::ibmqMelbourne15();
    auto instances = regularInstances(8, 3, 3, 7);
    core::QaoaCompileOptions opts;
    opts.method = core::Method::Ic;
    MetricSeries s = compileSeries(instances, melbourne, opts);
    EXPECT_EQ(s.depth.size(), 3u);
    EXPECT_EQ(s.gate_count.size(), 3u);
    EXPECT_EQ(s.compile_seconds.size(), 3u);
    for (double d : s.depth)
        EXPECT_GT(d, 0.0);
}

TEST(Harness, CompileSeriesIdenticalAcrossThreadCounts)
{
    // Per-instance seeds are forked in serial order before the fan-out,
    // so every deterministic metric must be bit-identical whether the
    // instances compile on 1 thread or 8.
    hw::CouplingMap melbourne = hw::ibmqMelbourne15();
    auto instances = regularInstances(8, 3, 6, 11);
    core::QaoaCompileOptions opts;
    opts.method = core::Method::Ic;

    par::setThreadCount(1);
    MetricSeries serial = compileSeries(instances, melbourne, opts);
    par::setThreadCount(8);
    MetricSeries parallel = compileSeries(instances, melbourne, opts);
    par::setThreadCount(0);

    ASSERT_EQ(serial.depth.size(), parallel.depth.size());
    for (std::size_t i = 0; i < serial.depth.size(); ++i) {
        EXPECT_EQ(serial.depth[i], parallel.depth[i]) << i;
        EXPECT_EQ(serial.gate_count[i], parallel.gate_count[i]) << i;
        EXPECT_EQ(serial.swap_count[i], parallel.swap_count[i]) << i;
    }
}

TEST(Harness, ExactExpectedCutMatchesUniformAtZeroAngles)
{
    // γ = β = 0: the circuit is H^n, a uniform superposition; the
    // expected cut of a uniform random assignment is |E| / 2.
    graph::Graph g = graph::cycleGraph(4);
    double e = exactExpectedCut(g, {0.0}, {0.0});
    EXPECT_NEAR(e, 2.0, 1e-9);
}

TEST(Harness, OptimizeP1BeatsRandomGuessing)
{
    graph::Graph g = graph::cycleGraph(3);
    P1Parameters p = optimizeP1(g);
    double optimum = graph::maxCutBruteForce(g).value;
    double ratio = p.expected_cut / optimum;
    // p=1 QAOA on a triangle must clearly beat the 0.5 uniform baseline;
    // Farhi's 3-regular bound is 0.6924.
    EXPECT_GT(ratio, 0.69);
    EXPECT_LE(ratio, 1.0 + 1e-9);
    // The reported value is consistent with re-evaluating the angles.
    EXPECT_NEAR(exactExpectedCut(g, {p.gamma}, {p.beta}),
                p.expected_cut, 1e-9);
}

TEST(Harness, OptimizeP1OnBipartiteGraphGetsHighRatio)
{
    // Even cycles are fully cuttable; p=1 QAOA reaches a decent ratio.
    graph::Graph g = graph::cycleGraph(4);
    P1Parameters p = optimizeP1(g);
    EXPECT_GT(p.expected_cut / 4.0, 0.70);
}

} // namespace
} // namespace qaoa::metrics
