/** @file
 * Tests for calibration data and variation-aware distances, including the
 * Fig. 6 worked example (hypothetical 6-qubit machine).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "hardware/calibration.hpp"
#include "hardware/devices.hpp"

namespace qaoa::hw {
namespace {

/** The Fig. 6(a) hypothetical 6-qubit ring-with-chord coupling graph. */
CouplingMap
figure6Device()
{
    graph::Graph g(6);
    g.addEdge(0, 1);
    g.addEdge(0, 5);
    g.addEdge(1, 2);
    g.addEdge(1, 4);
    g.addEdge(2, 3);
    g.addEdge(3, 4);
    g.addEdge(4, 5);
    return CouplingMap(std::move(g), "fig6");
}

/** Calibration matching the Fig. 6(b) CPHASE success rates.  The table
 *  gives CPHASE rates R directly, so the CNOT error is 1 - sqrt(R). */
CalibrationData
figure6Calibration(const CouplingMap &dev)
{
    CalibrationData calib(dev);
    auto set = [&](int a, int b, double cphase_rate) {
        calib.setCnotError(a, b, 1.0 - std::sqrt(cphase_rate));
    };
    set(0, 1, 0.90);
    set(0, 5, 0.82);
    set(1, 2, 0.85);
    set(1, 4, 0.81);
    set(2, 3, 0.89);
    set(3, 4, 0.88);
    set(4, 5, 0.84);
    return calib;
}

TEST(Calibration, DefaultsApplyEverywhere)
{
    CouplingMap dev = linearDevice(4);
    CalibrationData calib(dev, 0.02, 0.001, 0.03);
    EXPECT_DOUBLE_EQ(calib.cnotError(0, 1), 0.02);
    EXPECT_DOUBLE_EQ(calib.cnotError(1, 0), 0.02); // symmetric
    EXPECT_DOUBLE_EQ(calib.oneQubitError(2), 0.001);
    EXPECT_DOUBLE_EQ(calib.readoutError(3), 0.03);
}

TEST(Calibration, SettersRoundTrip)
{
    CouplingMap dev = linearDevice(3);
    CalibrationData calib(dev);
    calib.setCnotError(1, 2, 0.07);
    EXPECT_DOUBLE_EQ(calib.cnotError(2, 1), 0.07);
    calib.setOneQubitError(0, 0.004);
    EXPECT_DOUBLE_EQ(calib.oneQubitError(0), 0.004);
    calib.setReadoutError(1, 0.05);
    EXPECT_DOUBLE_EQ(calib.readoutError(1), 0.05);
}

TEST(Calibration, RejectsNonEdgesAndBadRates)
{
    CouplingMap dev = linearDevice(4);
    CalibrationData calib(dev);
    EXPECT_THROW(calib.cnotError(0, 2), std::runtime_error);
    EXPECT_THROW(calib.setCnotError(0, 1, 1.5), std::runtime_error);
    EXPECT_THROW(calib.setOneQubitError(9, 0.1), std::runtime_error);
}

TEST(Calibration, RejectsNonFiniteAndNegativeRates)
{
    CouplingMap dev = linearDevice(3);
    CalibrationData calib(dev);
    const double nan = std::nan("");
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_THROW(calib.setCnotError(0, 1, nan), std::runtime_error);
    EXPECT_THROW(calib.setCnotError(0, 1, inf), std::runtime_error);
    EXPECT_THROW(calib.setCnotError(0, 1, -0.01), std::runtime_error);
    EXPECT_THROW(calib.setOneQubitError(0, nan), std::runtime_error);
    EXPECT_THROW(calib.setReadoutError(2, inf), std::runtime_error);
    EXPECT_THROW(CalibrationData(dev, nan), std::runtime_error);
}

TEST(Calibration, RandomCalibrationRejectsBadParameters)
{
    CouplingMap dev = linearDevice(4);
    Rng rng(3);
    EXPECT_THROW(randomCalibration(dev, rng, std::nan(""), 0.5e-2),
                 std::runtime_error);
    EXPECT_THROW(randomCalibration(
                     dev, rng, 1.0e-2,
                     std::numeric_limits<double>::infinity()),
                 std::runtime_error);
    EXPECT_THROW(randomCalibration(dev, rng, 1.0e-2, -1.0e-3),
                 std::runtime_error);
}

TEST(Calibration, CphaseSuccessRateIsSquaredCnot)
{
    CouplingMap dev = linearDevice(3);
    CalibrationData calib(dev);
    calib.setCnotError(0, 1, 0.1);
    // §IV-D: CNOT rate 0.9 -> CPHASE rate ~ 0.81.
    EXPECT_NEAR(calib.cphaseSuccessRate(0, 1), 0.81, 1e-12);
}

TEST(Calibration, RandomCalibrationInDistribution)
{
    CouplingMap tokyo = ibmqTokyo20();
    Rng rng(99);
    CalibrationData calib = randomCalibration(tokyo, rng, 1.0e-2, 0.5e-2);
    double sum = 0.0;
    int count = 0;
    for (const auto &e : tokyo.graph().edges()) {
        double err = calib.cnotError(e.u, e.v);
        EXPECT_GE(err, 1.0e-4);
        EXPECT_LT(err, 0.5);
        sum += err;
        ++count;
    }
    EXPECT_NEAR(sum / count, 1.0e-2, 4e-3); // ~ N(1e-2, 0.5e-2) mean
}

TEST(WeightedDistances, Figure6GoldenTable)
{
    // Fig. 6(d): distances with edge weights 1/R.
    CouplingMap dev = figure6Device();
    CalibrationData calib = figure6Calibration(dev);
    graph::DistanceMatrix d = weightedDistances(dev, calib);

    auto expect = [&](int a, int b, double value) {
        EXPECT_NEAR(d[static_cast<std::size_t>(a)]
                     [static_cast<std::size_t>(b)], value, 0.01)
            << "pair (" << a << ", " << b << ")";
    };
    expect(0, 1, 1.11);
    expect(0, 2, 2.29);
    expect(0, 3, 3.41);
    expect(0, 4, 2.34);
    expect(0, 5, 1.22);
    expect(1, 2, 1.18);
    expect(1, 3, 2.30);
    expect(1, 4, 1.23);
    expect(1, 5, 2.33);
    expect(2, 3, 1.12);
    expect(2, 4, 2.26);
    expect(2, 5, 3.45);
    expect(3, 4, 1.14);
    expect(3, 5, 2.33);
    expect(4, 5, 1.19);
    for (int q = 0; q < 6; ++q)
        expect(q, q, 0.0);
}

TEST(WeightedDistances, HigherSuccessMeansShorterDistance)
{
    CouplingMap dev = figure6Device();
    CalibrationData calib = figure6Calibration(dev);
    graph::DistanceMatrix d = weightedDistances(dev, calib);
    // Fig. 6(e): Op1 (0,1) with rate 0.90 beats Op2 (0,5) with 0.82.
    EXPECT_LT(d[0][1], d[0][5]);
}

TEST(WeightedDistances, NextHopFollowsReliablePath)
{
    CouplingMap dev = figure6Device();
    CalibrationData calib = figure6Calibration(dev);
    graph::NextHopMatrix next;
    weightedDistances(dev, calib, &next);
    // From 2 to 5: the reliable route goes 2-3-4-5 (3.45) rather than
    // 2-1-0-5 (3.51).
    EXPECT_EQ(next[2][5], 3);
}

TEST(WeightedDistances, FragmentedDeviceYieldsInfiniteCrossDistances)
{
    // A degraded device split into two 2-qubit fragments: the
    // variation-aware matrix must stay finite inside a fragment and
    // kInfDistance across, so VIC never scores a cross-fragment pair.
    graph::Graph g(4);
    g.addEdge(0, 1);
    g.addEdge(2, 3);
    CouplingMap dev(std::move(g), "split4", /*require_connected=*/false);
    EXPECT_FALSE(dev.connected());
    CalibrationData calib(dev, 0.05);
    graph::DistanceMatrix d = weightedDistances(dev, calib);
    EXPECT_LT(d[0][1], graph::kInfDistance);
    EXPECT_LT(d[2][3], graph::kInfDistance);
    EXPECT_EQ(d[0][2], graph::kInfDistance);
    EXPECT_EQ(d[1][3], graph::kInfDistance);
    // Hop-distance accessor reports the sentinel, not a garbage cast.
    EXPECT_EQ(dev.distance(0, 2), CouplingMap::kUnreachable);
    EXPECT_EQ(dev.distance(0, 1), 1);
}

TEST(WeightedDistances, UniformCalibrationScalesHopDistances)
{
    CouplingMap lin = linearDevice(5);
    CalibrationData calib(lin, 0.05);
    graph::DistanceMatrix d = weightedDistances(lin, calib);
    double unit = 1.0 / (0.95 * 0.95);
    for (int a = 0; a < 5; ++a)
        for (int b = 0; b < 5; ++b)
            EXPECT_NEAR(d[static_cast<std::size_t>(a)]
                         [static_cast<std::size_t>(b)],
                        unit * std::abs(a - b), 1e-9);
}

} // namespace
} // namespace qaoa::hw
