/** @file Tests for the edge-list graph I/O. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"

namespace qaoa::graph {
namespace {

TEST(GraphIo, ParseBasic)
{
    Graph g = parseEdgeList("4\n0 1\n1 2\n2 3 2.5\n");
    EXPECT_EQ(g.numNodes(), 4);
    EXPECT_EQ(g.numEdges(), 3);
    EXPECT_DOUBLE_EQ(g.edgeWeight(2, 3), 2.5);
    EXPECT_DOUBLE_EQ(g.edgeWeight(0, 1), 1.0);
}

TEST(GraphIo, CommentsAndBlankLines)
{
    Graph g = parseEdgeList("# header comment\n\n3\n# edges\n0 1\n\n1 2\n");
    EXPECT_EQ(g.numNodes(), 3);
    EXPECT_EQ(g.numEdges(), 2);
}

TEST(GraphIo, TrailingCommentOnDataLine)
{
    Graph g = parseEdgeList("2\n0 1 # the only edge\n");
    EXPECT_EQ(g.numEdges(), 1);
}

TEST(GraphIo, RoundTrip)
{
    Rng rng(1);
    Graph original = erdosRenyi(12, 0.4, rng);
    Graph parsed = parseEdgeList(writeEdgeList(original));
    EXPECT_EQ(parsed.numNodes(), original.numNodes());
    ASSERT_EQ(parsed.numEdges(), original.numEdges());
    for (const Edge &e : original.edges()) {
        EXPECT_TRUE(parsed.hasEdge(e.u, e.v));
        EXPECT_DOUBLE_EQ(parsed.edgeWeight(e.u, e.v), e.weight);
    }
}

TEST(GraphIo, WeightedRoundTrip)
{
    Graph g(3);
    g.addEdge(0, 1, 0.25);
    g.addEdge(1, 2); // default weight omitted in the file
    std::string text = writeEdgeList(g);
    EXPECT_NE(text.find("0 1 0.25"), std::string::npos);
    Graph parsed = parseEdgeList(text);
    EXPECT_DOUBLE_EQ(parsed.edgeWeight(0, 1), 0.25);
    EXPECT_DOUBLE_EQ(parsed.edgeWeight(1, 2), 1.0);
}

TEST(GraphIo, RejectsMalformedInput)
{
    EXPECT_THROW(parseEdgeList(""), std::runtime_error);
    EXPECT_THROW(parseEdgeList("# only comments\n"), std::runtime_error);
    EXPECT_THROW(parseEdgeList("abc\n"), std::runtime_error);
    EXPECT_THROW(parseEdgeList("-3\n"), std::runtime_error);
    EXPECT_THROW(parseEdgeList("3\n0\n"), std::runtime_error);
    EXPECT_THROW(parseEdgeList("3\n0 9\n"), std::runtime_error);
    EXPECT_THROW(parseEdgeList("3\n0 1\n0 1\n"), std::runtime_error);
}

TEST(GraphIo, FileRoundTrip)
{
    const std::string path = "/tmp/qaoa_test_graph.txt";
    Rng rng(2);
    Graph original = randomRegular(8, 3, rng);
    saveGraphFile(original, path);
    Graph loaded = loadGraphFile(path);
    EXPECT_EQ(loaded.numNodes(), 8);
    EXPECT_EQ(loaded.numEdges(), original.numEdges());
    std::remove(path.c_str());
}

TEST(GraphIo, MissingFileThrows)
{
    EXPECT_THROW(loadGraphFile("/nonexistent/graph.txt"),
                 std::runtime_error);
}

TEST(GraphIo, EmptyGraphRoundTrips)
{
    Graph parsed = parseEdgeList(writeEdgeList(Graph(5)));
    EXPECT_EQ(parsed.numNodes(), 5);
    EXPECT_EQ(parsed.numEdges(), 0);
}

} // namespace
} // namespace qaoa::graph
