/** @file Tests for the undirected graph container. */

#include <gtest/gtest.h>

#include "graph/graph.hpp"

namespace qaoa::graph {
namespace {

TEST(Graph, EmptyGraph)
{
    Graph g;
    EXPECT_EQ(g.numNodes(), 0);
    EXPECT_EQ(g.numEdges(), 0);
    EXPECT_TRUE(g.isConnected());
}

TEST(Graph, AddEdgeBasics)
{
    Graph g(4);
    g.addEdge(0, 1);
    g.addEdge(2, 1);
    EXPECT_EQ(g.numEdges(), 2);
    EXPECT_TRUE(g.hasEdge(0, 1));
    EXPECT_TRUE(g.hasEdge(1, 0));
    EXPECT_TRUE(g.hasEdge(1, 2));
    EXPECT_FALSE(g.hasEdge(0, 2));
    EXPECT_EQ(g.degree(1), 2);
    EXPECT_EQ(g.degree(3), 0);
}

TEST(Graph, EdgesStoredCanonically)
{
    Graph g(3);
    g.addEdge(2, 0, 1.5);
    ASSERT_EQ(g.edges().size(), 1u);
    EXPECT_EQ(g.edges()[0].u, 0);
    EXPECT_EQ(g.edges()[0].v, 2);
    EXPECT_DOUBLE_EQ(g.edges()[0].weight, 1.5);
    EXPECT_DOUBLE_EQ(g.edgeWeight(2, 0), 1.5);
}

TEST(Graph, RejectsSelfLoop)
{
    Graph g(3);
    EXPECT_THROW(g.addEdge(1, 1), std::runtime_error);
}

TEST(Graph, RejectsDuplicateEdge)
{
    Graph g(3);
    g.addEdge(0, 1);
    EXPECT_THROW(g.addEdge(1, 0), std::runtime_error);
}

TEST(Graph, RejectsOutOfRange)
{
    Graph g(3);
    EXPECT_THROW(g.addEdge(0, 3), std::runtime_error);
    EXPECT_THROW(g.addEdge(-1, 0), std::runtime_error);
    EXPECT_THROW(g.degree(5), std::runtime_error);
    EXPECT_THROW(g.neighbors(-2), std::runtime_error);
}

TEST(Graph, EdgeWeightMissingEdgeThrows)
{
    Graph g(3);
    g.addEdge(0, 1);
    EXPECT_THROW(g.edgeWeight(0, 2), std::runtime_error);
}

TEST(Graph, NeighborsAreSymmetric)
{
    Graph g(5);
    g.addEdge(0, 1);
    g.addEdge(0, 2);
    g.addEdge(0, 3);
    const auto &n0 = g.neighbors(0);
    EXPECT_EQ(n0.size(), 3u);
    for (int v : {1, 2, 3}) {
        const auto &nv = g.neighbors(v);
        EXPECT_EQ(nv.size(), 1u);
        EXPECT_EQ(nv[0], 0);
    }
}

TEST(Graph, MaxDegree)
{
    Graph g(4);
    EXPECT_EQ(g.maxDegree(), 0);
    g.addEdge(0, 1);
    g.addEdge(0, 2);
    g.addEdge(0, 3);
    EXPECT_EQ(g.maxDegree(), 3);
}

TEST(Graph, Connectivity)
{
    Graph g(4);
    g.addEdge(0, 1);
    g.addEdge(2, 3);
    EXPECT_FALSE(g.isConnected());
    g.addEdge(1, 2);
    EXPECT_TRUE(g.isConnected());
}

TEST(Graph, SingleNodeIsConnected)
{
    Graph g(1);
    EXPECT_TRUE(g.isConnected());
}

TEST(Graph, NegativeNodeCountRejected)
{
    EXPECT_THROW(Graph(-1), std::runtime_error);
}

} // namespace
} // namespace qaoa::graph
