/** @file Property tests for the graph generators (§V-B workloads). */

#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hpp"
#include "graph/generators.hpp"

namespace qaoa::graph {
namespace {

TEST(ErdosRenyi, ExtremeProbabilities)
{
    Rng rng(1);
    Graph empty = erdosRenyi(10, 0.0, rng);
    EXPECT_EQ(empty.numEdges(), 0);
    Graph full = erdosRenyi(10, 1.0, rng);
    EXPECT_EQ(full.numEdges(), 45);
}

TEST(ErdosRenyi, EdgeCountNearExpectation)
{
    Rng rng(2);
    const int n = 30;
    const double p = 0.4;
    double total = 0.0;
    const int trials = 50;
    for (int t = 0; t < trials; ++t)
        total += erdosRenyi(n, p, rng).numEdges();
    double expected = p * n * (n - 1) / 2.0;
    EXPECT_NEAR(total / trials, expected, expected * 0.1);
}

TEST(ErdosRenyi, RejectsBadProbability)
{
    Rng rng(3);
    EXPECT_THROW(erdosRenyi(5, -0.1, rng), std::runtime_error);
    EXPECT_THROW(erdosRenyi(5, 1.1, rng), std::runtime_error);
}

TEST(RandomGnm, ExactEdgeCount)
{
    Rng rng(4);
    for (int m : {0, 1, 8, 28}) {
        Graph g = randomGnm(8, m, rng);
        EXPECT_EQ(g.numEdges(), m);
        EXPECT_EQ(g.numNodes(), 8);
    }
}

TEST(RandomGnm, RejectsTooManyEdges)
{
    Rng rng(4);
    EXPECT_THROW(randomGnm(4, 7, rng), std::runtime_error);
}

/** Parameterized sweep over the paper's regular-graph regimes. */
class RandomRegularSweep
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(RandomRegularSweep, EveryNodeHasExactDegree)
{
    auto [n, k] = GetParam();
    Rng rng(static_cast<std::uint64_t>(n * 100 + k));
    for (int trial = 0; trial < 5; ++trial) {
        Graph g = randomRegular(n, k, rng);
        EXPECT_EQ(g.numNodes(), n);
        EXPECT_EQ(g.numEdges(), n * k / 2);
        for (int u = 0; u < n; ++u)
            EXPECT_EQ(g.degree(u), k) << "node " << u;
    }
}

INSTANTIATE_TEST_SUITE_P(
    PaperRegimes, RandomRegularSweep,
    ::testing::Values(std::make_tuple(12, 3), std::make_tuple(16, 3),
                      std::make_tuple(20, 3), std::make_tuple(20, 4),
                      std::make_tuple(20, 5), std::make_tuple(20, 6),
                      std::make_tuple(20, 7), std::make_tuple(20, 8),
                      std::make_tuple(36, 15), std::make_tuple(14, 6)));

TEST(RandomRegular, RejectsOddProduct)
{
    Rng rng(6);
    EXPECT_THROW(randomRegular(5, 3, rng), std::runtime_error);
}

TEST(RandomRegular, RejectsDegreeTooLarge)
{
    Rng rng(6);
    EXPECT_THROW(randomRegular(4, 4, rng), std::runtime_error);
}

TEST(RandomRegular, ZeroDegree)
{
    Rng rng(6);
    Graph g = randomRegular(5, 0, rng);
    EXPECT_EQ(g.numEdges(), 0);
}

TEST(StructuredGraphs, Path)
{
    Graph g = pathGraph(4);
    EXPECT_EQ(g.numEdges(), 3);
    EXPECT_TRUE(g.isConnected());
    EXPECT_EQ(g.degree(0), 1);
    EXPECT_EQ(g.degree(1), 2);
}

TEST(StructuredGraphs, Cycle)
{
    Graph g = cycleGraph(6);
    EXPECT_EQ(g.numEdges(), 6);
    for (int u = 0; u < 6; ++u)
        EXPECT_EQ(g.degree(u), 2);
    EXPECT_THROW(cycleGraph(2), std::runtime_error);
}

TEST(StructuredGraphs, Complete)
{
    Graph g = completeGraph(5);
    EXPECT_EQ(g.numEdges(), 10);
    for (int u = 0; u < 5; ++u)
        EXPECT_EQ(g.degree(u), 4);
}

TEST(StructuredGraphs, Grid)
{
    Graph g = gridGraph(3, 4);
    EXPECT_EQ(g.numNodes(), 12);
    // 3 rows of 3 horizontal + 4 cols of 2 vertical = 9 + 8.
    EXPECT_EQ(g.numEdges(), 17);
    EXPECT_TRUE(g.isConnected());
    // Corner has degree 2, interior degree 4.
    EXPECT_EQ(g.degree(0), 2);
    EXPECT_EQ(g.degree(5), 4);
}

TEST(Generators, Reproducible)
{
    Rng a(123), b(123);
    Graph ga = erdosRenyi(15, 0.3, a);
    Graph gb = erdosRenyi(15, 0.3, b);
    ASSERT_EQ(ga.numEdges(), gb.numEdges());
    for (int i = 0; i < ga.numEdges(); ++i)
        EXPECT_TRUE(ga.edges()[static_cast<std::size_t>(i)] ==
                    gb.edges()[static_cast<std::size_t>(i)]);
}

} // namespace
} // namespace qaoa::graph
