/** @file
 * Tests for Instruction Parallelization (§IV-B), including the Fig. 4
 * worked example and bin-packing invariants.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "circuit/circuit.hpp"
#include "graph/generators.hpp"
#include "qaoa/ip.hpp"
#include "qaoa/profile_stats.hpp"
#include "verify/verifier.hpp"

namespace qaoa::core {
namespace {

/** The cost layer of @p ops as CPHASE gates in the listed order. */
circuit::Circuit
costCircuit(const std::vector<ZZOp> &ops, int n)
{
    circuit::Circuit c(n);
    for (const ZZOp &op : ops)
        c.add(circuit::Gate::cphase(op.a, op.b, 0.5 * op.weight));
    return c;
}

/**
 * Certifies @p order as a commuting reorder of @p ops via the verifier:
 * same gate multiset (QV004/QV005) and every exchanged pair commutes
 * (QV010).  Stronger than the multiset-equality spot-check it replaced.
 */
void
expectCommutingReorder(const std::vector<ZZOp> &ops,
                       const std::vector<ZZOp> &order, int n)
{
    verify::VerifyReport report;
    verify::checkReorder(costCircuit(ops, n), costCircuit(order, n),
                         report);
    EXPECT_TRUE(report.spotless()) << report.summary();
}

/** Same operation up to (a,b) orientation; weights ignored. */
bool
samePair(const ZZOp &x, const ZZOp &y)
{
    return std::minmax(x.a, x.b) == std::minmax(y.a, y.b);
}

TEST(ProfileStats, OpsPerQubitAndMoq)
{
    // Fig. 4(a,b): {(1,5), (2,3), (1,4), (2,4)}.
    std::vector<ZZOp> ops{{1, 5}, {2, 3}, {1, 4}, {2, 4}};
    std::vector<int> per = opsPerQubit(ops, 6);
    EXPECT_EQ(per[1], 2);
    EXPECT_EQ(per[2], 2);
    EXPECT_EQ(per[3], 1);
    EXPECT_EQ(per[4], 2);
    EXPECT_EQ(per[5], 1);
    EXPECT_EQ(maxOpsPerQubit(ops, 6), 2);
}

TEST(ProfileStats, OperationRanks)
{
    // Fig. 4(c): rank(1,5) = 3, rank(2,3) = 3, rank(1,4) = 4,
    // rank(2,4) = 4.
    std::vector<ZZOp> ops{{1, 5}, {2, 3}, {1, 4}, {2, 4}};
    std::vector<int> per = opsPerQubit(ops, 6);
    EXPECT_EQ(operationRank(ops[0], per), 3);
    EXPECT_EQ(operationRank(ops[1], per), 3);
    EXPECT_EQ(operationRank(ops[2], per), 4);
    EXPECT_EQ(operationRank(ops[3], per), 4);
}

TEST(Ip, Figure4ExampleReachesMoqLayers)
{
    std::vector<ZZOp> ops{{1, 5}, {2, 3}, {1, 4}, {2, 4}};
    Rng rng(17);
    IpResult r = ipOrder(ops, 6, rng);
    // Fig. 4(f): exactly MOQ = 2 layers, 2 operations each.
    ASSERT_EQ(r.layers.size(), 2u);
    EXPECT_EQ(r.layers[0].size(), 2u);
    EXPECT_EQ(r.layers[1].size(), 2u);
    expectCommutingReorder(ops, r.order, 6);

    // The two rank-4 operations share qubit 4, so they must be split
    // across the layers.
    auto layer_of = [&](const ZZOp &target) {
        for (std::size_t li = 0; li < r.layers.size(); ++li)
            for (const ZZOp &op : r.layers[li])
                if (samePair(op, target))
                    return static_cast<int>(li);
        return -1;
    };
    EXPECT_NE(layer_of({1, 4}), layer_of({2, 4}));
}

TEST(Ip, LayersHaveDisjointQubits)
{
    Rng inst_rng(5);
    for (int trial = 0; trial < 10; ++trial) {
        graph::Graph g = graph::erdosRenyi(12, 0.5, inst_rng);
        std::vector<ZZOp> ops;
        for (const auto &e : g.edges())
            ops.push_back({e.u, e.v});
        Rng rng(static_cast<std::uint64_t>(trial));
        IpResult r = ipOrder(ops, 12, rng);
        for (const auto &layer : r.layers) {
            std::set<int> used;
            for (const ZZOp &op : layer) {
                EXPECT_TRUE(used.insert(op.a).second);
                EXPECT_TRUE(used.insert(op.b).second);
            }
        }
        expectCommutingReorder(ops, r.order, 12);
    }
}

TEST(Ip, LayerCountAtLeastMoq)
{
    Rng inst_rng(6);
    for (int trial = 0; trial < 10; ++trial) {
        graph::Graph g = graph::randomRegular(12, 4, inst_rng);
        std::vector<ZZOp> ops;
        for (const auto &e : g.edges())
            ops.push_back({e.u, e.v});
        Rng rng(static_cast<std::uint64_t>(trial));
        IpResult r = ipOrder(ops, 12, rng);
        int moq = maxOpsPerQubit(ops, 12);
        EXPECT_GE(static_cast<int>(r.layers.size()), moq);
        // IP's whole point: far fewer layers than serial execution.
        EXPECT_LT(r.layers.size(), ops.size());
    }
}

TEST(Ip, PackingLimitRespected)
{
    Rng inst_rng(7);
    graph::Graph g = graph::randomRegular(16, 6, inst_rng);
    std::vector<ZZOp> ops;
    for (const auto &e : g.edges())
        ops.push_back({e.u, e.v});
    for (int limit : {1, 2, 3, 5}) {
        Rng rng(11);
        IpResult r = ipOrder(ops, 16, rng, limit);
        for (const auto &layer : r.layers)
            EXPECT_LE(static_cast<int>(layer.size()), limit);
        expectCommutingReorder(ops, r.order, 16);
    }
}

TEST(Ip, PackingLimitOneSerializes)
{
    std::vector<ZZOp> ops{{0, 1}, {2, 3}, {4, 5}};
    Rng rng(2);
    IpResult r = ipOrder(ops, 6, rng, 1);
    EXPECT_EQ(r.layers.size(), 3u);
}

TEST(Ip, EmptyInput)
{
    Rng rng(1);
    IpResult r = ipOrder({}, 4, rng);
    EXPECT_TRUE(r.layers.empty());
    EXPECT_TRUE(r.order.empty());
}

TEST(Ip, RejectsBadPackingLimit)
{
    Rng rng(1);
    EXPECT_THROW(ipOrder({{0, 1}}, 2, rng, 0), std::runtime_error);
}

TEST(Ip, HigherRankOpsComeFirstWithinRound)
{
    // With all ops placeable in round one, the flattened order follows
    // layer-major order and layer 0 starts with a maximal-rank op.
    std::vector<ZZOp> ops{{1, 5}, {2, 3}, {1, 4}, {2, 4}};
    std::vector<int> per = opsPerQubit(ops, 6);
    Rng rng(23);
    IpResult r = ipOrder(ops, 6, rng);
    ASSERT_FALSE(r.layers.empty());
    EXPECT_EQ(operationRank(r.layers[0][0], per), 4);
}

} // namespace
} // namespace qaoa::core
