/** @file
 * Tests for Misra–Gries edge-coloring layering: properness, the Vizing
 * Δ+1 bound, and comparison with IP's greedy packing.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>

#include "graph/generators.hpp"
#include "qaoa/edge_coloring.hpp"
#include "qaoa/ip.hpp"
#include "qaoa/profile_stats.hpp"

namespace qaoa::core {
namespace {

std::vector<ZZOp>
opsOf(const graph::Graph &g)
{
    std::vector<ZZOp> ops;
    for (const auto &e : g.edges())
        ops.push_back({e.u, e.v, e.weight});
    return ops;
}

void
expectProperColoring(const std::vector<std::vector<ZZOp>> &layers,
                     const std::vector<ZZOp> &ops, int delta)
{
    std::size_t total = 0;
    for (const auto &layer : layers) {
        std::set<int> used;
        for (const ZZOp &op : layer) {
            EXPECT_TRUE(used.insert(op.a).second)
                << "qubit " << op.a << " doubled in a layer";
            EXPECT_TRUE(used.insert(op.b).second);
            ++total;
        }
    }
    EXPECT_EQ(total, ops.size());
    // Vizing: at most Δ + 1 layers; MOQ = Δ is the lower bound.
    EXPECT_LE(static_cast<int>(layers.size()), delta + 1);
    EXPECT_GE(static_cast<int>(layers.size()), delta);
}

TEST(EdgeColoring, Triangle)
{
    // K3 has Δ = 2 and chromatic index 3 (odd cycle).
    graph::Graph g = graph::cycleGraph(3);
    auto layers = edgeColoringLayers(opsOf(g), 3);
    expectProperColoring(layers, opsOf(g), 2);
    EXPECT_EQ(layers.size(), 3u);
}

TEST(EdgeColoring, EvenCycleWithinVizingBound)
{
    // C8 is class 1 (χ' = Δ = 2) but Misra–Gries only certifies Δ+1;
    // either layer count is a proper coloring.
    graph::Graph g = graph::cycleGraph(8);
    auto layers = edgeColoringLayers(opsOf(g), 8);
    expectProperColoring(layers, opsOf(g), 2);
}

TEST(EdgeColoring, StarNeedsDeltaLayers)
{
    graph::Graph g(6);
    for (int v = 1; v < 6; ++v)
        g.addEdge(0, v);
    auto layers = edgeColoringLayers(opsOf(g), 6);
    expectProperColoring(layers, opsOf(g), 5);
    EXPECT_EQ(layers.size(), 5u);
}

/** Parameterized sweep over the paper's instance families. */
class EdgeColoringSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(EdgeColoringSweep, ProperAndWithinVizingBound)
{
    auto [n, k, seed] = GetParam();
    Rng rng(static_cast<std::uint64_t>(seed) * 31 + n);
    graph::Graph g = graph::randomRegular(n, k, rng);
    std::vector<ZZOp> ops = opsOf(g);
    auto layers = edgeColoringLayers(ops, n);
    expectProperColoring(layers, ops, k);
}

INSTANTIATE_TEST_SUITE_P(
    RegularFamilies, EdgeColoringSweep,
    ::testing::Combine(::testing::Values(12, 16, 20),
                       ::testing::Values(3, 4, 6, 8),
                       ::testing::Values(1, 2, 3, 4)));

TEST(EdgeColoring, ErdosRenyiSweep)
{
    Rng rng(99);
    for (int trial = 0; trial < 20; ++trial) {
        graph::Graph g = graph::erdosRenyi(14, 0.4, rng);
        std::vector<ZZOp> ops = opsOf(g);
        if (ops.empty())
            continue;
        auto layers = edgeColoringLayers(ops, 14);
        expectProperColoring(layers, ops, g.maxDegree());
    }
}

TEST(EdgeColoring, OrderPreservesMultiset)
{
    Rng rng(7);
    graph::Graph g = graph::randomRegular(12, 5, rng);
    std::vector<ZZOp> ops = opsOf(g);
    std::vector<ZZOp> order = edgeColoringOrder(ops, 12);
    ASSERT_EQ(order.size(), ops.size());
    auto norm = [](std::vector<ZZOp> v) {
        for (ZZOp &op : v)
            if (op.a > op.b)
                std::swap(op.a, op.b);
        std::sort(v.begin(), v.end(), [](const ZZOp &x, const ZZOp &y) {
            return std::tie(x.a, x.b) < std::tie(y.a, y.b);
        });
        return v;
    };
    EXPECT_EQ(norm(order), norm(ops));
}

TEST(EdgeColoring, NeverWorseThanIpByMoreThanOne)
{
    // IP has no approximation guarantee; Misra–Gries certifies Δ+1.
    Rng rng(8);
    for (int trial = 0; trial < 10; ++trial) {
        graph::Graph g = graph::randomRegular(16, 6, rng);
        std::vector<ZZOp> ops = opsOf(g);
        auto mg = edgeColoringLayers(ops, 16);
        Rng ip_rng(static_cast<std::uint64_t>(trial));
        IpResult ip = ipOrder(ops, 16, ip_rng);
        EXPECT_LE(mg.size(), ip.layers.size() + 1)
            << "trial " << trial;
        EXPECT_LE(static_cast<int>(mg.size()),
                  maxOpsPerQubit(ops, 16) + 1);
    }
}

TEST(EdgeColoring, EmptyAndErrors)
{
    EXPECT_TRUE(edgeColoringLayers({}, 4).empty());
    EXPECT_THROW(edgeColoringLayers({{0, 1}, {1, 0}}, 2),
                 std::runtime_error); // duplicate pair
}

} // namespace
} // namespace qaoa::core
