/** @file Tests for the common substrate: RNG, statistics, tables. */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/stopwatch.hpp"
#include "common/table.hpp"

namespace qaoa {
namespace {

TEST(Rng, SameSeedSameSequence)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.uniformInt(0, 1000), b.uniformInt(0, 1000));
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.uniformInt(0, 1 << 30) == b.uniformInt(0, 1 << 30))
            ++same;
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformIntRespectsBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        int v = rng.uniformInt(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
    }
}

TEST(Rng, UniformRealRespectsBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        double v = rng.uniformReal(2.0, 3.0);
        EXPECT_GE(v, 2.0);
        EXPECT_LT(v, 3.0);
    }
}

TEST(Rng, BernoulliExtremes)
{
    Rng rng(3);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(Rng, NormalHasApproximateMoments)
{
    Rng rng(11);
    std::vector<double> xs;
    for (int i = 0; i < 20000; ++i)
        xs.push_back(rng.normal(5.0, 2.0));
    EXPECT_NEAR(mean(xs), 5.0, 0.1);
    EXPECT_NEAR(stddev(xs), 2.0, 0.1);
}

TEST(Rng, SampleWithoutReplacementDistinct)
{
    Rng rng(5);
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<int> sample = rng.sampleWithoutReplacement(20, 12);
        ASSERT_EQ(sample.size(), 12u);
        std::set<int> unique(sample.begin(), sample.end());
        EXPECT_EQ(unique.size(), 12u);
        for (int v : sample) {
            EXPECT_GE(v, 0);
            EXPECT_LT(v, 20);
        }
    }
}

TEST(Rng, SampleWithoutReplacementFullPopulation)
{
    Rng rng(5);
    std::vector<int> sample = rng.sampleWithoutReplacement(8, 8);
    std::sort(sample.begin(), sample.end());
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(sample[static_cast<std::size_t>(i)], i);
}

TEST(Rng, SampleWithoutReplacementRejectsOversample)
{
    Rng rng(5);
    EXPECT_THROW(rng.sampleWithoutReplacement(3, 4), std::runtime_error);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(9);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
    std::vector<int> orig = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, orig);
}

TEST(Stats, MeanAndStddev)
{
    std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(mean(xs), 2.5);
    EXPECT_NEAR(stddev(xs), 1.2909944487, 1e-9);
}

TEST(Stats, EmptyVectorsAreZero)
{
    std::vector<double> xs;
    EXPECT_DOUBLE_EQ(mean(xs), 0.0);
    EXPECT_DOUBLE_EQ(stddev(xs), 0.0);
    EXPECT_DOUBLE_EQ(median(xs), 0.0);
    EXPECT_DOUBLE_EQ(minOf(xs), 0.0);
    EXPECT_DOUBLE_EQ(maxOf(xs), 0.0);
}

TEST(Stats, MedianOddEven)
{
    EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(Stats, MinMax)
{
    std::vector<double> xs{3.0, -1.0, 7.0};
    EXPECT_DOUBLE_EQ(minOf(xs), -1.0);
    EXPECT_DOUBLE_EQ(maxOf(xs), 7.0);
}

TEST(Stats, RatioOfMeans)
{
    EXPECT_DOUBLE_EQ(ratioOfMeans({2.0, 4.0}, {4.0, 8.0}), 0.5);
    EXPECT_DOUBLE_EQ(ratioOfMeans({1.0}, {0.0}), 0.0);
}

TEST(Stats, AccumulatorMatchesBatch)
{
    Rng rng(13);
    std::vector<double> xs;
    Accumulator acc;
    for (int i = 0; i < 500; ++i) {
        double x = rng.uniformReal(-10.0, 10.0);
        xs.push_back(x);
        acc.add(x);
    }
    EXPECT_EQ(acc.count(), xs.size());
    EXPECT_NEAR(acc.mean(), mean(xs), 1e-9);
    EXPECT_NEAR(acc.stddev(), stddev(xs), 1e-9);
    EXPECT_DOUBLE_EQ(acc.min(), minOf(xs));
    EXPECT_DOUBLE_EQ(acc.max(), maxOf(xs));
}

TEST(Stats, AccumulatorEmpty)
{
    Accumulator acc;
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
    EXPECT_DOUBLE_EQ(acc.stddev(), 0.0);
}

TEST(Table, AlignedOutputContainsCells)
{
    Table t({"name", "value"});
    t.addRow({"depth", Table::num(12LL)});
    t.addRow({"ratio", Table::num(0.5, 2)});
    std::ostringstream os;
    t.print(os);
    std::string s = os.str();
    EXPECT_NE(s.find("depth"), std::string::npos);
    EXPECT_NE(s.find("12"), std::string::npos);
    EXPECT_NE(s.find("0.50"), std::string::npos);
}

TEST(Table, CsvOutput)
{
    Table t({"a", "b"});
    t.addRow({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, RejectsMismatchedRow)
{
    Table t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), std::runtime_error);
}

TEST(Table, NumberFormatting)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(7LL), "7");
}

TEST(ErrorMacros, CheckThrowsRuntime)
{
    EXPECT_THROW(QAOA_CHECK(false, "user error " << 42),
                 std::runtime_error);
    EXPECT_NO_THROW(QAOA_CHECK(true, "fine"));
}

TEST(ErrorMacros, AssertThrowsLogic)
{
    EXPECT_THROW(QAOA_ASSERT(false, "bug"), std::logic_error);
    EXPECT_NO_THROW(QAOA_ASSERT(true, "fine"));
}

TEST(Stopwatch, MeasuresElapsedTime)
{
    Stopwatch sw;
    volatile double sink = 0.0;
    for (int i = 0; i < 100000; ++i)
        sink = sink + static_cast<double>(i);
    EXPECT_GE(sw.seconds(), 0.0);
    double before = sw.seconds();
    sw.reset();
    EXPECT_LE(sw.seconds(), before + 1.0);
}

} // namespace
} // namespace qaoa
