/** @file
 * Tests for the hardware fault model (hardware/faults.hpp) and the
 * graceful-degradation compile pipeline: degraded-map derivation,
 * largest-component extraction, calibration drift, determinism, the
 * retry ladder and the structured ok/degraded/failed statuses.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/qasm.hpp"
#include "graph/generators.hpp"
#include "hardware/devices.hpp"
#include "hardware/faults.hpp"
#include "qaoa/api.hpp"
#include "transpiler/router.hpp"

namespace qaoa {
namespace {

using hw::CalibrationData;
using hw::CouplingMap;
using hw::FaultInjector;
using hw::FaultSpec;

TEST(FaultSpec, EmptyMeansPerfectDevice)
{
    FaultSpec spec;
    EXPECT_TRUE(spec.empty());
    spec.drift_multiplier = 2.0;
    EXPECT_FALSE(spec.empty());
}

TEST(FaultInjector, RejectsInvalidSpecs)
{
    CouplingMap dev = hw::linearDevice(5);
    {
        FaultSpec spec;
        spec.edge_fault_rate = 1.5;
        EXPECT_THROW(FaultInjector(dev, spec), std::runtime_error);
    }
    {
        FaultSpec spec;
        spec.qubit_fault_rate = -0.1;
        EXPECT_THROW(FaultInjector(dev, spec), std::runtime_error);
    }
    {
        FaultSpec spec;
        spec.dead_qubits = {7}; // out of range on a 5-qubit device
        EXPECT_THROW(FaultInjector(dev, spec), std::runtime_error);
    }
    {
        FaultSpec spec;
        spec.disabled_edges = {{0, 2}}; // not a coupling of linear5
        EXPECT_THROW(FaultInjector(dev, spec), std::runtime_error);
    }
    {
        FaultSpec spec;
        spec.drift_multiplier = 0.0;
        EXPECT_THROW(FaultInjector(dev, spec), std::runtime_error);
    }
}

TEST(FaultInjector, NoFaultsKeepsDeviceIntact)
{
    CouplingMap dev = hw::ibmqTokyo20();
    FaultInjector inj(dev, FaultSpec{});
    EXPECT_FALSE(inj.fragmented());
    EXPECT_EQ(inj.usableCount(), dev.numQubits());
    EXPECT_EQ(inj.map().graph().numEdges(), dev.graph().numEdges());
    EXPECT_TRUE(inj.deadQubits().empty());
    EXPECT_TRUE(inj.disabledEdges().empty());
}

TEST(FaultInjector, DeadQubitDropsItsCouplings)
{
    // Killing the middle of linear5 splits {0,1} from {3,4}; the dead
    // qubit survives as an isolated node (original indexing preserved).
    CouplingMap dev = hw::linearDevice(5);
    FaultSpec spec;
    spec.dead_qubits = {2};
    FaultInjector inj(dev, spec);

    EXPECT_EQ(inj.map().numQubits(), 5);
    EXPECT_EQ(inj.map().graph().numEdges(), 2); // 0-1 and 3-4 survive
    EXPECT_TRUE(inj.fragmented());
    EXPECT_EQ(inj.usableCount(), 2);
    EXPECT_FALSE(inj.usable()[2]);
    EXPECT_TRUE(inj.supports(2));
    EXPECT_FALSE(inj.supports(3));
    EXPECT_FALSE(inj.notes().empty());
}

TEST(FaultInjector, DisabledEdgesAreOrderInsensitive)
{
    CouplingMap dev = hw::linearDevice(4);
    FaultSpec spec;
    spec.disabled_edges = {{2, 1}}; // edge stored as {1, 2}
    FaultInjector inj(dev, spec);
    EXPECT_EQ(inj.map().graph().numEdges(), 2);
    EXPECT_FALSE(inj.map().graph().hasEdge(1, 2));
    ASSERT_EQ(inj.disabledEdges().size(), 1u);
}

TEST(FaultInjector, UsableRegionIsLargestComponent)
{
    // Cut a 3x3 grid's corner (qubit 0) off by disabling its two
    // couplings; the other 8 qubits stay connected and usable.
    CouplingMap dev = hw::gridDevice(3, 3);
    FaultSpec spec;
    spec.disabled_edges = {{0, 1}, {0, 3}};
    FaultInjector inj(dev, spec);
    EXPECT_TRUE(inj.fragmented());
    EXPECT_EQ(inj.usableCount(), 8);
    EXPECT_FALSE(inj.usable()[0]);
    for (int q = 1; q < 9; ++q)
        EXPECT_TRUE(inj.usable()[static_cast<std::size_t>(q)])
            << "qubit " << q;
}

TEST(FaultInjector, DriftMultipliesSurvivingCnotErrors)
{
    CouplingMap dev = hw::linearDevice(4);
    CalibrationData base(dev, 0.01);
    base.setCnotError(1, 2, 0.02);
    FaultSpec spec;
    spec.drift_multiplier = 3.0;
    FaultInjector inj(dev, spec, &base);
    EXPECT_NEAR(inj.calibration().cnotError(0, 1), 0.03, 1e-12);
    EXPECT_NEAR(inj.calibration().cnotError(1, 2), 0.06, 1e-12);
}

TEST(FaultInjector, DriftClampsBelowOne)
{
    CouplingMap dev = hw::linearDevice(3);
    CalibrationData base(dev, 0.4);
    FaultSpec spec;
    spec.drift_multiplier = 10.0;
    FaultInjector inj(dev, spec, &base);
    EXPECT_LT(inj.calibration().cnotError(0, 1), 1.0);
}

TEST(FaultInjector, SameSeedSameFaults)
{
    CouplingMap dev = hw::gridDevice(6, 6);
    FaultSpec spec;
    spec.qubit_fault_rate = 0.08;
    spec.edge_fault_rate = 0.12;
    spec.seed = 41;
    FaultInjector a(dev, spec);
    FaultInjector b(dev, spec);
    EXPECT_EQ(a.deadQubits(), b.deadQubits());
    EXPECT_EQ(a.disabledEdges(), b.disabledEdges());
    EXPECT_EQ(a.usable(), b.usable());
    EXPECT_EQ(a.map().graph().numEdges(), b.map().graph().numEdges());
}

/** First fault seed whose 10% edge faults fragment the 6x6 grid while
 *  leaving a component of >= @p min_usable qubits; 0 when none found. */
std::uint64_t
findFragmentingSeed(const CouplingMap &dev, int min_usable)
{
    for (std::uint64_t s = 1; s <= 200; ++s) {
        FaultSpec spec;
        spec.edge_fault_rate = 0.10;
        spec.seed = s;
        FaultInjector probe(dev, spec);
        if (probe.fragmented() && probe.usableCount() >= min_usable)
            return s;
    }
    return 0;
}

// The headline acceptance scenario: a 6x6 grid with 10% of its
// couplings disabled must still compile a 16-node MaxCut instance with
// every methodology, reporting CompileStatus::Degraded and a
// hardware-compliant circuit — no exceptions anywhere.
TEST(GracefulDegradation, AllMethodsCompileOnDegradedGrid)
{
    CouplingMap grid = hw::gridDevice(6, 6);
    const std::uint64_t fault_seed = findFragmentingSeed(grid, 16);
    ASSERT_NE(fault_seed, 0u) << "no fragmenting fault seed found";

    FaultSpec spec;
    spec.edge_fault_rate = 0.10;
    spec.seed = fault_seed;
    FaultInjector inj(grid, spec);
    ASSERT_TRUE(inj.supports(16));

    Rng inst_rng(2020);
    graph::Graph problem = graph::erdosRenyi(16, 0.3, inst_rng);

    const core::Method methods[] = {
        core::Method::Naive, core::Method::GreedyV, core::Method::Qaim,
        core::Method::Ip,    core::Method::Ic,      core::Method::Vic};
    for (core::Method m : methods) {
        core::QaoaCompileOptions opts;
        opts.method = m;
        opts.seed = 9;
        opts.calibration = &inj.calibration();
        opts.allowed_qubits = &inj.usable();
        transpiler::CompileResult r;
        ASSERT_NO_THROW(r = core::compileQaoaMaxcut(problem, inj.map(),
                                                    opts))
            << core::methodName(m);
        EXPECT_TRUE(r.ok()) << core::methodName(m) << ": "
                            << r.failure_reason;
        EXPECT_EQ(r.status, transpiler::CompileStatus::Degraded)
            << core::methodName(m);
        EXPECT_FALSE(r.diagnostics.empty()) << core::methodName(m);
        EXPECT_TRUE(transpiler::satisfiesCoupling(r.compiled, inj.map()))
            << core::methodName(m);
        EXPECT_EQ(r.compiled.countType(circuit::GateType::MEASURE), 16)
            << core::methodName(m);
        EXPECT_GT(r.report.depth, 0) << core::methodName(m);
        // Placement never touched a masked-out qubit.
        for (int l = 0; l < 16; ++l)
            EXPECT_TRUE(
                inj.usable()[static_cast<std::size_t>(
                    r.initial_layout.physicalOf(l))])
                << core::methodName(m) << " placed q" << l << " on "
                << r.initial_layout.physicalOf(l);
    }
}

TEST(GracefulDegradation, DegradedCompileIsDeterministic)
{
    CouplingMap grid = hw::gridDevice(6, 6);
    FaultSpec spec;
    spec.edge_fault_rate = 0.10;
    spec.qubit_fault_rate = 0.05;
    spec.seed = 13;
    FaultInjector inj(grid, spec);
    ASSERT_TRUE(inj.supports(12));

    Rng inst_rng(8);
    graph::Graph problem = graph::erdosRenyi(12, 0.35, inst_rng);
    core::QaoaCompileOptions opts;
    opts.method = core::Method::Ic;
    opts.seed = 17;
    opts.allowed_qubits = &inj.usable();

    transpiler::CompileResult a =
        core::compileQaoaMaxcut(problem, inj.map(), opts);
    transpiler::CompileResult b =
        core::compileQaoaMaxcut(problem, inj.map(), opts);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.status, b.status);
    EXPECT_EQ(a.diagnostics, b.diagnostics);
    EXPECT_EQ(circuit::toQasm(a.compiled), circuit::toQasm(b.compiled));
}

TEST(GracefulDegradation, TooSmallUsableRegionFailsStructurally)
{
    // Disabling every coupling leaves 15 isolated qubits: no component
    // can host the program, so the compile reports Failed (never
    // throws) with a readable reason.
    CouplingMap dev = hw::ibmqMelbourne15();
    FaultSpec spec;
    spec.edge_fault_rate = 1.0;
    FaultInjector inj(dev, spec);
    EXPECT_TRUE(inj.fragmented());
    EXPECT_EQ(inj.usableCount(), 1);

    Rng inst_rng(4);
    graph::Graph problem = graph::erdosRenyi(8, 0.5, inst_rng);
    core::QaoaCompileOptions opts;
    opts.allowed_qubits = &inj.usable();
    transpiler::CompileResult r;
    ASSERT_NO_THROW(r = core::compileQaoaMaxcut(problem, inj.map(),
                                                opts));
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status, transpiler::CompileStatus::Failed);
    EXPECT_NE(r.failure_reason.find("usable"), std::string::npos)
        << r.failure_reason;
}

TEST(GracefulDegradation, ExhaustedLadderReportsEveryAttempt)
{
    // A mask spanning two fragments with no single fragment big enough
    // forces every rung to fail: 4 logical qubits cannot avoid crossing
    // the {0,1,2} / {3,4,5} cut of a severed linear6.
    graph::Graph g(6);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(3, 4);
    g.addEdge(4, 5);
    CouplingMap dev(std::move(g), "severed6",
                    /*require_connected=*/false);
    std::vector<char> allow(6, 1);

    graph::Graph problem = graph::completeGraph(4);
    core::QaoaCompileOptions opts;
    opts.method = core::Method::Ic;
    opts.allowed_qubits = &allow;
    transpiler::CompileResult r;
    ASSERT_NO_THROW(r = core::compileQaoaMaxcut(problem, dev, opts));
    EXPECT_EQ(r.status, transpiler::CompileStatus::Failed);
    // Requested config + relaxed router + QAIM fallback all recorded.
    EXPECT_GE(r.diagnostics.size(), 3u);
    EXPECT_NE(r.failure_reason.find("attempts failed"),
              std::string::npos)
        << r.failure_reason;

    // With fallbacks off, one attempt is made and reported.
    opts.allow_fallbacks = false;
    transpiler::CompileResult single =
        core::compileQaoaMaxcut(problem, dev, opts);
    EXPECT_EQ(single.status, transpiler::CompileStatus::Failed);
    EXPECT_EQ(single.diagnostics.size(), 1u);
}

TEST(GracefulDegradation, HealthyDeviceStaysOk)
{
    CouplingMap dev = hw::ibmqTokyo20();
    Rng inst_rng(6);
    graph::Graph problem = graph::erdosRenyi(10, 0.4, inst_rng);
    core::QaoaCompileOptions opts;
    opts.method = core::Method::Qaim;
    transpiler::CompileResult r =
        core::compileQaoaMaxcut(problem, dev, opts);
    EXPECT_EQ(r.status, transpiler::CompileStatus::Ok);
    EXPECT_TRUE(r.diagnostics.empty());
    EXPECT_TRUE(r.failure_reason.empty());
}

TEST(GracefulDegradation, DegradedHintDowngradesConnectedDevice)
{
    // Faults that only remove redundant couplings can leave the map
    // connected; the device_degraded hint still downgrades the status.
    CouplingMap grid = hw::gridDevice(4, 4);
    FaultSpec spec;
    spec.disabled_edges = {{0, 1}};
    FaultInjector inj(grid, spec);
    ASSERT_FALSE(inj.fragmented());

    Rng inst_rng(21);
    graph::Graph problem = graph::erdosRenyi(8, 0.4, inst_rng);
    core::QaoaCompileOptions opts;
    opts.allowed_qubits = &inj.usable();
    opts.device_degraded = true;
    transpiler::CompileResult r =
        core::compileQaoaMaxcut(problem, inj.map(), opts);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.status, transpiler::CompileStatus::Degraded);
}

TEST(GracefulDegradation, StatusNamesAreStable)
{
    EXPECT_EQ(transpiler::statusName(transpiler::CompileStatus::Ok),
              "ok");
    EXPECT_EQ(
        transpiler::statusName(transpiler::CompileStatus::Degraded),
        "degraded");
    EXPECT_EQ(transpiler::statusName(transpiler::CompileStatus::Failed),
              "failed");
}

} // namespace
} // namespace qaoa
