/**
 * @file
 * Tests for deterministic failpoint injection (common/failpoint.hpp)
 * and every consumer of it: the durable fs write path (ENOSPC, short
 * writes, rename/fsync/dirsync failures), cache emergency eviction and
 * errno-tagged quarantine, the integrity scrubber, checkpoint fault
 * surfacing, frame-level wire faults and server drain semantics.
 */

#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "circuit/qbin.hpp"
#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/fs.hpp"
#include "graph/generators.hpp"
#include "opt/checkpoint.hpp"
#include "serve/cache.hpp"
#include "serve/protocol.hpp"
#include "serve/request.hpp"
#include "serve/server.hpp"

namespace qaoa {
namespace {

using serve::CacheEntry;
using serve::CacheLimits;
using serve::CompileCache;
using serve::CompileRequest;
using serve::CompileServer;
using serve::ServeResponse;
using serve::ServerConfig;

/** Arms a spec for one test scope and guarantees a disarmed registry
 *  on exit, pass or fail — a leaked armed failpoint would poison every
 *  test that runs after it in the same process. */
class ScopedFailpoints
{
  public:
    ScopedFailpoints() = default;

    explicit ScopedFailpoints(const std::string &spec,
                              std::uint64_t seed = 0)
    {
        const Status st = failpoint::armFromSpec(spec, seed);
        EXPECT_TRUE(st.ok()) << st.toString();
    }

    ScopedFailpoints(const ScopedFailpoints &) = delete;
    ScopedFailpoints &operator=(const ScopedFailpoints &) = delete;

    ~ScopedFailpoints() { failpoint::disarmAll(); }
};

std::string
tempDir(const std::string &leaf)
{
    const std::string dir = ::testing::TempDir() + leaf;
    [[maybe_unused]] const int rc =
        ::system(("rm -rf '" + dir + "'").c_str());
    return dir;
}

std::string
makeDir(const std::string &leaf)
{
    const std::string dir = tempDir(leaf);
    EXPECT_EQ(0, ::system(("mkdir -p '" + dir + "'").c_str()));
    return dir;
}

bool
fileExists(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return in.good();
}

/** Names (not paths) of directory entries containing @p needle. */
std::vector<std::string>
entriesContaining(const std::string &dir, const std::string &needle)
{
    std::vector<std::string> out;
    const std::string cmd = "ls -1 '" + dir + "' 2>/dev/null";
    FILE *pipe = ::popen(cmd.c_str(), "r");
    if (pipe == nullptr)
        return out;
    char line[512];
    while (std::fgets(line, sizeof line, pipe) != nullptr) {
        std::string name(line);
        while (!name.empty() &&
               (name.back() == '\n' || name.back() == '\r'))
            name.pop_back();
        if (name.find(needle) != std::string::npos)
            out.push_back(name);
    }
    ::pclose(pipe);
    return out;
}

CacheEntry
makeEntry(const std::string &key, std::size_t payload_bytes = 16)
{
    circuit::Circuit payload(2);
    for (std::size_t i = 0; i < payload_bytes / 13 + 1; ++i)
        payload.add(circuit::Gate::rz(static_cast<int>(i % 2),
                                      0.5 + static_cast<double>(i)));
    CacheEntry entry;
    entry.key = key;
    entry.canonical = "canon:" + key;
    entry.status = "ok";
    entry.qbin = circuit::qbin::encodeCircuit(payload);
    entry.depth = 3;
    entry.gate_count = 7;
    entry.cx_count = 2;
    entry.swap_count = 1;
    entry.compile_ms = 1.5;
    return entry;
}

// -------------------------------------------------- spec parsing ----

TEST(FailpointSpecTest, DisarmedPollIsSilent)
{
    ASSERT_FALSE(failpoint::anyArmed());
    EXPECT_FALSE(failpoint::poll("fs.write").fires());
    EXPECT_TRUE(failpoint::armedList().empty());
}

TEST(FailpointSpecTest, ArmsAndReportsAndDisarms)
{
    ScopedFailpoints guard;
    ASSERT_TRUE(
        failpoint::armFromSpec("fs.write=errno:ENOSPC;fs.rename=abort")
            .ok());
    EXPECT_TRUE(failpoint::anyArmed());
    const auto armed = failpoint::armedList();
    ASSERT_EQ(armed.size(), 2u);
    // Sorted by name, and each line names its spec.
    EXPECT_NE(armed[0].find("fs.rename"), std::string::npos);
    EXPECT_NE(armed[1].find("fs.write"), std::string::npos);

    // 'off' disarms one point without touching the other.
    ASSERT_TRUE(failpoint::armFromSpec("fs.rename=off").ok());
    EXPECT_EQ(failpoint::armedList().size(), 1u);
    failpoint::disarmAll();
    EXPECT_FALSE(failpoint::anyArmed());
}

TEST(FailpointSpecTest, RejectsBadSpecsAtomically)
{
    ScopedFailpoints guard;
    EXPECT_FALSE(failpoint::armFromSpec("no.such.point=abort").ok());
    EXPECT_FALSE(failpoint::armFromSpec("fs.write=explode").ok());
    EXPECT_FALSE(failpoint::armFromSpec("fs.write=errno:EBOGUS").ok());
    EXPECT_FALSE(failpoint::armFromSpec("fs.write=abort@when=later").ok());
    EXPECT_FALSE(failpoint::armFromSpec("fs.write").ok());

    // One bad entry rejects the whole spec: the valid first entry must
    // NOT be armed (no half-armed registry).
    EXPECT_FALSE(
        failpoint::armFromSpec("fs.write=abort;no.such.point=abort").ok());
    EXPECT_FALSE(failpoint::anyArmed());
}

TEST(FailpointSpecTest, CatalogueIsSortedAndCoversTheStack)
{
    const auto names = failpoint::catalogue();
    ASSERT_GE(names.size(), 10u);
    for (std::size_t i = 1; i < names.size(); ++i)
        EXPECT_LT(names[i - 1], names[i]) << "catalogue must be sorted";
    const auto has = [&](const char *name) {
        for (const auto &n : names)
            if (n == name)
                return true;
        return false;
    };
    EXPECT_TRUE(has("fs.write"));
    EXPECT_TRUE(has("cache.persist"));
    EXPECT_TRUE(has("checkpoint.save"));
    EXPECT_TRUE(has("serve.frame_read"));
}

TEST(FailpointSpecTest, ErrnoTokensRoundTrip)
{
    EXPECT_EQ(failpoint::errnoFromToken("ENOSPC"), ENOSPC);
    EXPECT_EQ(failpoint::errnoFromToken("enospc"), ENOSPC);
    EXPECT_EQ(failpoint::errnoFromToken(std::to_string(EIO)), EIO);
    EXPECT_EQ(failpoint::errnoFromToken("EBOGUS"), 0);
    EXPECT_EQ(failpoint::errnoFromToken(""), 0);
    EXPECT_EQ(failpoint::errnoShortName(ENOSPC), "enospc");
    EXPECT_EQ(failpoint::errnoShortName(EIO), "eio");
    EXPECT_EQ(failpoint::errnoShortName(987654), "e987654");
}

// ------------------------------------------------------ triggers ----

TEST(FailpointTriggerTest, DefaultFiresEveryTime)
{
    ScopedFailpoints guard("fs.read=errno:EIO");
    for (int i = 0; i < 3; ++i) {
        const auto fp = failpoint::poll("fs.read");
        EXPECT_TRUE(fp.fires());
        EXPECT_EQ(fp.action, failpoint::Action::ReturnErrno);
        EXPECT_EQ(fp.error_number, EIO);
    }
}

TEST(FailpointTriggerTest, HitFiresOnExactlyTheNthEvaluation)
{
    ScopedFailpoints guard("fs.read=errno:EIO@hit=2");
    EXPECT_FALSE(failpoint::poll("fs.read").fires());
    EXPECT_TRUE(failpoint::poll("fs.read").fires());
    EXPECT_FALSE(failpoint::poll("fs.read").fires());
    EXPECT_FALSE(failpoint::poll("fs.read").fires());
}

TEST(FailpointTriggerTest, FromFiresOnEveryLaterEvaluation)
{
    ScopedFailpoints guard("fs.read=errno:EIO@from=3");
    EXPECT_FALSE(failpoint::poll("fs.read").fires());
    EXPECT_FALSE(failpoint::poll("fs.read").fires());
    EXPECT_TRUE(failpoint::poll("fs.read").fires());
    EXPECT_TRUE(failpoint::poll("fs.read").fires());
}

TEST(FailpointTriggerTest, ProbabilityEdgesAndSeededDeterminism)
{
    {
        ScopedFailpoints guard("fs.read=errno:EIO@p=1.0");
        EXPECT_TRUE(failpoint::poll("fs.read").fires());
    }
    {
        ScopedFailpoints guard("fs.read=errno:EIO@p=0.0");
        for (int i = 0; i < 8; ++i)
            EXPECT_FALSE(failpoint::poll("fs.read").fires());
    }
    // Same seed => identical firing schedule across re-arms.
    const auto schedule = [](std::uint64_t seed) {
        ScopedFailpoints guard("fs.read=errno:EIO@p=0.5", seed);
        std::string out;
        for (int i = 0; i < 32; ++i)
            out += failpoint::poll("fs.read").fires() ? '1' : '0';
        return out;
    };
    const std::string a = schedule(42);
    EXPECT_EQ(a, schedule(42));
    EXPECT_NE(a, std::string(32, '0'));
    EXPECT_NE(a, std::string(32, '1'));
    // An explicit seed= in the spec overrides the default seed.
    const auto pinned = [](std::uint64_t fallback) {
        ScopedFailpoints guard("fs.read=errno:EIO@p=0.5,seed=7",
                               fallback);
        std::string out;
        for (int i = 0; i < 32; ++i)
            out += failpoint::poll("fs.read").fires() ? '1' : '0';
        return out;
    };
    EXPECT_EQ(pinned(1), pinned(99));
}

// ---------------------------------------------- fs fault branches ----

TEST(FsFailpointTest, DurableWriteRoundTripsAndOverwrites)
{
    const std::string dir = makeDir("qaoa_fp_fs_ok");
    const std::string path = dir + "/target.bin";
    int err = -1;
    ASSERT_TRUE(fs::tryAtomicWriteFile(path, "v1", &err).ok());
    EXPECT_EQ(err, 0);
    std::string body;
    ASSERT_TRUE(fs::tryReadFile(path, body).ok());
    EXPECT_EQ(body, "v1");
    ASSERT_TRUE(fs::tryAtomicWriteFile(path, "v2", nullptr).ok());
    ASSERT_TRUE(fs::readFile(path, body));
    EXPECT_EQ(body, "v2");
    EXPECT_TRUE(entriesContaining(dir, ".tmp.").empty())
        << "no temp files may survive a successful write";
}

TEST(FsFailpointTest, OpenFailureSurfacesErrno)
{
    const std::string dir = makeDir("qaoa_fp_fs_open");
    ScopedFailpoints guard("fs.open=errno:EMFILE");
    int err = 0;
    const Status st =
        fs::tryAtomicWriteFile(dir + "/x.bin", "body", &err);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), ErrorCode::IoError);
    EXPECT_EQ(err, EMFILE);
    EXPECT_TRUE(entriesContaining(dir, ".tmp.").empty());
}

TEST(FsFailpointTest, WriteEnospcCleansTempAndKeepsOldContent)
{
    const std::string dir = makeDir("qaoa_fp_fs_enospc");
    const std::string path = dir + "/target.bin";
    ASSERT_TRUE(fs::tryAtomicWriteFile(path, "old", nullptr).ok());
    ScopedFailpoints guard("fs.write=errno:ENOSPC");
    int err = 0;
    const Status st = fs::tryAtomicWriteFile(path, "new", &err);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(err, ENOSPC);
    std::string body;
    ASSERT_TRUE(fs::readFile(path, body));
    EXPECT_EQ(body, "old") << "a failed write must not touch the target";
    EXPECT_TRUE(entriesContaining(dir, ".tmp.").empty())
        << "an errno-failed write unlinks its temp file";
}

TEST(FsFailpointTest, ShortWriteLeavesTornTempForTheSweeper)
{
    const std::string dir = makeDir("qaoa_fp_fs_short");
    const std::string path = dir + "/target.bin";
    ASSERT_TRUE(fs::tryAtomicWriteFile(path, "old", nullptr).ok());
    {
        ScopedFailpoints guard("fs.write=short");
        const Status st =
            fs::tryAtomicWriteFile(path, "0123456789", nullptr);
        ASSERT_FALSE(st.ok());
    }
    std::string body;
    ASSERT_TRUE(fs::readFile(path, body));
    EXPECT_EQ(body, "old");
    const auto temps = entriesContaining(dir, ".tmp.");
    ASSERT_EQ(temps.size(), 1u)
        << "a short write leaves its torn temp, exactly like a crash";
    std::string torn;
    ASSERT_TRUE(fs::readFile(dir + "/" + temps[0], torn));
    EXPECT_LT(torn.size(), 10u) << "the temp must be genuinely torn";
    EXPECT_EQ(fs::removeStaleTempFiles(dir), 1);
    EXPECT_TRUE(entriesContaining(dir, ".tmp.").empty());
    ASSERT_TRUE(fs::readFile(path, body));
    EXPECT_EQ(body, "old") << "the sweep must not touch real files";
}

TEST(FsFailpointTest, RenameAndFsyncFailuresKeepOldContent)
{
    const std::string dir = makeDir("qaoa_fp_fs_rename");
    const std::string path = dir + "/target.bin";
    ASSERT_TRUE(fs::tryAtomicWriteFile(path, "old", nullptr).ok());
    {
        ScopedFailpoints guard("fs.rename=errno:EACCES");
        int err = 0;
        ASSERT_FALSE(fs::tryAtomicWriteFile(path, "new", &err).ok());
        EXPECT_EQ(err, EACCES);
    }
    {
        ScopedFailpoints guard("fs.fsync=errno:EIO");
        int err = 0;
        ASSERT_FALSE(fs::tryAtomicWriteFile(path, "new", &err).ok());
        EXPECT_EQ(err, EIO);
    }
    std::string body;
    ASSERT_TRUE(fs::readFile(path, body));
    EXPECT_EQ(body, "old");
    EXPECT_TRUE(entriesContaining(dir, ".tmp.").empty());
}

TEST(FsFailpointTest, DirsyncFailurePublishesButReportsIoError)
{
    const std::string dir = makeDir("qaoa_fp_fs_dirsync");
    const std::string path = dir + "/target.bin";
    ScopedFailpoints guard("fs.dirsync=errno:EIO");
    int err = 0;
    const Status st = fs::tryAtomicWriteFile(path, "body", &err);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(err, EIO);
    // The rename already happened: the file is visible (and complete),
    // only its durability is unproven — the caller decides whether
    // that is fatal.
    std::string body;
    ASSERT_TRUE(fs::readFile(path, body));
    EXPECT_EQ(body, "body");
}

TEST(FsFailpointTest, ReadDistinguishesMissingFromFaulty)
{
    const std::string dir = makeDir("qaoa_fp_fs_read");
    const std::string path = dir + "/present.bin";
    ASSERT_TRUE(fs::tryAtomicWriteFile(path, "body", nullptr).ok());

    std::string out;
    const Status missing = fs::tryReadFile(dir + "/absent.bin", out);
    EXPECT_EQ(missing.code(), ErrorCode::NotFound);
    EXPECT_FALSE(fs::readFile(dir + "/absent.bin", out));

    ScopedFailpoints guard("fs.read=errno:EIO");
    int err = 0;
    const Status faulty = fs::tryReadFile(path, out, &err);
    EXPECT_EQ(faulty.code(), ErrorCode::IoError);
    EXPECT_EQ(err, EIO);
    EXPECT_THROW((void)fs::readFile(path, out), std::runtime_error);
}

TEST(FsFailpointTest, AtomicWriteFileRetriesPastATransientFault)
{
    const std::string dir = makeDir("qaoa_fp_fs_retry");
    const std::string path = dir + "/target.bin";
    // First attempt fails with EIO, the retry ladder's second attempt
    // succeeds — transient faults must not surface to the caller.
    ScopedFailpoints guard("fs.write=errno:EIO@hit=1");
    EXPECT_NO_THROW(fs::atomicWriteFile(path, "body"));
    std::string body;
    ASSERT_TRUE(fs::readFile(path, body));
    EXPECT_EQ(body, "body");
}

// --------------------------------------------- cache fault paths ----

TEST(CacheFailpointTest, EnospcTriggersEmergencyEvictionAndRetry)
{
    const std::string dir = tempDir("qaoa_fp_cache_enospc");
    CacheLimits limits;
    limits.max_entries = 64;
    CompileCache cache(limits, nullptr, dir);
    for (int i = 0; i < 4; ++i) {
        // Two-step concat dodges a GCC 12 -Wrestrict false positive on
        // operator+(const char*, string&&).
        std::string key = "k";
        key += std::to_string(i);
        cache.put(makeEntry(key));
    }
    ASSERT_EQ(cache.stats().entries, 4u);
    ASSERT_EQ(entriesContaining(dir, ".cce").size(), 4u);

    // The next persist's first temp write hits ENOSPC; the cache must
    // shed entries (unlinking their disk files — that is what actually
    // frees space) and the retry (hit=1 => second write is clean)
    // must land the new entry.
    ScopedFailpoints guard("fs.write=errno:ENOSPC@hit=1");
    cache.put(makeEntry("fresh"));

    const auto stats = cache.stats();
    EXPECT_GE(stats.emergency_evictions, 1u);
    EXPECT_LT(stats.entries, 5u);
    EXPECT_TRUE(cache.lastDiskError().empty())
        << "the retry after eviction must succeed";
    EXPECT_TRUE(cache.get("fresh", "canon:fresh").has_value());
    const auto files = entriesContaining(dir, ".cce");
    EXPECT_LT(files.size(), 5u)
        << "victims' disk files must be unlinked, or nothing was freed";
    bool fresh_on_disk = false;
    for (const auto &name : files)
        if (name.find("fresh") != std::string::npos)
            fresh_on_disk = true;
    EXPECT_TRUE(fresh_on_disk);
}

TEST(CacheFailpointTest, PersistFailpointDegradesToMemoryOnly)
{
    const std::string dir = tempDir("qaoa_fp_cache_persist");
    CompileCache cache({}, nullptr, dir);
    ScopedFailpoints guard("cache.persist=errno:EIO");
    cache.put(makeEntry("k1"));
    EXPECT_FALSE(cache.lastDiskError().empty());
    EXPECT_TRUE(cache.get("k1", "canon:k1").has_value())
        << "a disk fault must not lose the in-memory entry";
    EXPECT_TRUE(entriesContaining(dir, ".cce").empty());
}

TEST(CacheFailpointTest, ReloadQuarantinesReadFaultWithErrnoSidecar)
{
    const std::string dir = tempDir("qaoa_fp_cache_reload");
    {
        CompileCache cache({}, nullptr, dir);
        cache.put(makeEntry("k1"));
        cache.put(makeEntry("k2"));
    }
    ASSERT_EQ(entriesContaining(dir, ".cce").size(), 2u);

    CompileCache reloaded({}, nullptr, dir);
    {
        // One of the two reloads hits a transient EIO: that file must
        // be quarantined with the errno in its sidecar name — NOT
        // skipped as absent, NOT fatal to startup.
        ScopedFailpoints guard("cache.reload=errno:EIO@hit=1");
        reloaded.loadFromDir();
    }
    const auto stats = reloaded.stats();
    EXPECT_EQ(stats.loaded, 1u);
    EXPECT_EQ(stats.read_errors, 1u);
    EXPECT_EQ(stats.quarantined, 1u);
    EXPECT_EQ(entriesContaining(dir, ".corrupt.eio").size(), 1u)
        << "the sidecar name must record WHY the file was set aside";
    EXPECT_EQ(entriesContaining(dir, ".cce").size(), 2u)
        << "sidecars keep their .cce stem; exactly one plain file and "
           "one .cce.corrupt.eio";
}

TEST(CacheFailpointTest, ScrubHealsMissingAndCorruptDiskCopies)
{
    const std::string dir = tempDir("qaoa_fp_scrub_heal");
    CompileCache cache({}, nullptr, dir);
    cache.put(makeEntry("gone"));
    cache.put(makeEntry("mangled"));
    cache.put(makeEntry("fine"));
    const auto files = entriesContaining(dir, ".cce");
    ASSERT_EQ(files.size(), 3u);

    // Vandalize the disk behind the cache's back: delete one copy,
    // corrupt another.
    std::string gone_path;
    std::string mangled_path;
    for (const auto &name : files) {
        std::string body;
        ASSERT_TRUE(fs::readFile(dir + "/" + name, body));
        const CacheEntry entry = serve::parseCacheEntry(body);
        if (entry.key == "gone")
            gone_path = dir + "/" + name;
        else if (entry.key == "mangled")
            mangled_path = dir + "/" + name;
    }
    ASSERT_FALSE(gone_path.empty());
    ASSERT_FALSE(mangled_path.empty());
    ASSERT_EQ(std::remove(gone_path.c_str()), 0);
    {
        std::ofstream out(mangled_path, std::ios::binary);
        out << "garbage bytes, not a cache entry";
    }

    const serve::ScrubReport report = cache.scrub();
    EXPECT_EQ(report.checked, 3u);
    EXPECT_EQ(report.healed, 2u);
    EXPECT_EQ(report.quarantined, 1u) << "corrupt bytes are set aside "
                                         "before the heal rewrites";
    EXPECT_EQ(report.dropped, 0u);

    // Both damaged copies are back and byte-identical to memory.
    for (const std::string &path : {gone_path, mangled_path}) {
        std::string body;
        ASSERT_TRUE(fs::readFile(path, body)) << path;
        const CacheEntry entry = serve::parseCacheEntry(body);
        EXPECT_EQ(serve::serializeCacheEntry(entry), body);
    }
    EXPECT_EQ(entriesContaining(dir, ".corrupt").size(), 1u);
    const auto stats = cache.stats();
    EXPECT_EQ(stats.scrub_runs, 1u);
    EXPECT_EQ(stats.scrub_healed, 2u);
}

TEST(CacheFailpointTest, ScrubQuarantinesReadFaultWithErrnoSidecar)
{
    const std::string dir = tempDir("qaoa_fp_scrub_eio");
    CompileCache cache({}, nullptr, dir);
    cache.put(makeEntry("k1"));
    {
        ScopedFailpoints guard("cache.scrub=errno:EIO");
        const serve::ScrubReport report = cache.scrub();
        EXPECT_EQ(report.checked, 1u);
        EXPECT_EQ(report.healed, 1u);
        EXPECT_EQ(report.quarantined, 1u);
    }
    EXPECT_EQ(entriesContaining(dir, ".corrupt.eio").size(), 1u);
    // And the healed copy serves a clean scrub afterwards.
    const serve::ScrubReport clean = cache.scrub();
    EXPECT_EQ(clean.checked, 1u);
    EXPECT_EQ(clean.healed, 0u);
    EXPECT_EQ(clean.quarantined, 0u);
}

TEST(CacheFailpointTest, ScrubDropsEntryWhoseQbinNoLongerDecodes)
{
    // Memory-only cache: the decode gate alone must catch a poisoned
    // entry and drop it so the next request recompiles.
    CompileCache cache;
    CacheEntry poisoned = makeEntry("bad");
    poisoned.qbin = "definitely not a qbin document";
    cache.put(poisoned);
    cache.put(makeEntry("good"));
    ASSERT_EQ(cache.stats().entries, 2u);

    const serve::ScrubReport report = cache.scrub();
    EXPECT_EQ(report.checked, 2u);
    EXPECT_EQ(report.dropped, 1u);
    EXPECT_FALSE(cache.get("bad", "canon:bad").has_value());
    EXPECT_TRUE(cache.get("good", "canon:good").has_value());
    EXPECT_EQ(cache.stats().scrub_dropped, 1u);
}

// ------------------------------------------------ wire failpoints ----

TEST(ProtocolFailpointTest, FrameReadInjectionReturnsIoError)
{
    std::stringstream stream;
    serve::writeFrame(stream, "payload");
    ScopedFailpoints guard("serve.frame_read=errno:EIO");
    std::string payload;
    const Status st = serve::readFrame(stream, payload);
    EXPECT_EQ(st.code(), ErrorCode::IoError);
}

TEST(ProtocolFailpointTest, FrameWriteInjectionThrowsTypedIoError)
{
    std::stringstream stream;
    ScopedFailpoints guard("serve.frame_write=errno:EPIPE");
    try {
        serve::writeFrame(stream, "payload");
        FAIL() << "injected write fault must throw";
    } catch (const Error &e) {
        EXPECT_EQ(e.status().code(), ErrorCode::IoError);
    }
    EXPECT_TRUE(stream.str().empty())
        << "an errno fault fires before any byte goes out";
}

TEST(ProtocolFailpointTest, ShortFrameWriteTearsTheFrameOnTheWire)
{
    std::stringstream stream;
    {
        ScopedFailpoints guard("serve.frame_write=short");
        EXPECT_THROW(serve::writeFrame(stream, "payload"), Error);
    }
    EXPECT_EQ(stream.str().size(), 4u)
        << "header out, body never — the torn frame a dying daemon "
           "leaves behind";
    // A reader sees Truncated, not a phantom message.
    std::string payload;
    const Status st = serve::readFrame(stream, payload);
    EXPECT_EQ(st.code(), ErrorCode::Truncated);
}

// ------------------------------------------ checkpoint failpoints ----

TEST(CheckpointFailpointTest, SaveAndLoadFaultsThrowWithDetail)
{
    const std::string dir = makeDir("qaoa_fp_ckpt");
    const std::string path = dir + "/opt.ckpt";
    opt::OptCheckpoint cp;
    cp.problem_hash = "h1";
    {
        ScopedFailpoints guard("checkpoint.save=errno:ENOSPC");
        try {
            opt::saveCheckpointFile(path, cp);
            FAIL() << "injected save fault must throw";
        } catch (const std::runtime_error &e) {
            EXPECT_NE(std::string(e.what()).find("checkpoint"),
                      std::string::npos);
        }
        EXPECT_FALSE(fileExists(path));
    }
    opt::saveCheckpointFile(path, cp);
    {
        ScopedFailpoints guard("checkpoint.load=errno:EIO");
        opt::OptCheckpoint out;
        EXPECT_THROW((void)opt::loadCheckpointFile(path, out),
                     std::runtime_error);
    }
    opt::OptCheckpoint out;
    ASSERT_TRUE(opt::loadCheckpointFile(path, out));
    EXPECT_EQ(out.problem_hash, "h1");
    EXPECT_FALSE(opt::loadCheckpointFile(dir + "/absent.ckpt", out))
        << "ENOENT stays a quiet false, not an exception";
}

// --------------------------------------------------- server drain ----

struct ResponseSink
{
    std::mutex mutex;
    std::condition_variable cv;
    std::vector<ServeResponse> responses;

    CompileServer::ResponseFn
    fn()
    {
        return [this](const ServeResponse &r) {
            std::lock_guard<std::mutex> lock(mutex);
            responses.push_back(r);
            cv.notify_all();
        };
    }
};

CompileRequest
smallRequest(const std::string &id)
{
    CompileRequest request;
    request.id = id;
    request.problem = graph::cycleGraph(4);
    request.device = "linear6";
    request.method = "ic";
    return request;
}

TEST(ServerDrainTest, DrainAnswersEveryAdmittedRequestAtFullFidelity)
{
    ServerConfig config;
    config.workers = 2;
    ResponseSink sink;
    CompileServer server(config);
    server.start();
    for (int i = 0; i < 6; ++i) {
        std::string id = "d";
        id += std::to_string(i);
        CompileRequest request = smallRequest(id);
        request.seed = static_cast<std::uint64_t>(i);
        server.submit(request, sink.fn());
    }
    server.drain();
    std::lock_guard<std::mutex> lock(sink.mutex);
    ASSERT_EQ(sink.responses.size(), 6u)
        << "drain must answer every admitted request";
    for (const auto &r : sink.responses)
        EXPECT_EQ(r.type, "result")
            << "drain must not cancel or degrade in-flight work";
    EXPECT_TRUE(server.stats().draining);
    // Idempotent, and stop() after drain is a no-op.
    server.drain();
    server.stop();
}

TEST(ServerDrainTest, ScrubOnStartRepairsTheCacheDirectory)
{
    const std::string dir = tempDir("qaoa_fp_server_scrub");
    ServerConfig config;
    config.workers = 1;
    config.cache_dir = dir;
    std::string entry_path;
    {
        ResponseSink sink;
        CompileServer server(config);
        server.start();
        server.submit(smallRequest("warm"), sink.fn());
        {
            std::unique_lock<std::mutex> lock(sink.mutex);
            ASSERT_TRUE(sink.cv.wait_for(
                lock, std::chrono::seconds(10),
                [&] { return sink.responses.size() >= 1; }));
        }
        server.stop();
        const auto files = entriesContaining(dir, ".cce");
        ASSERT_EQ(files.size(), 1u);
        entry_path = dir + "/" + files[0];
    }
    {
        std::ofstream out(entry_path, std::ios::binary);
        out << "torn";
    }
    {
        // Restart: reload quarantines the torn file (nothing loads),
        // and the startup scrub runs on the emptied cache — the
        // service comes up either way, never refuses to start.
        CompileServer server(config);
        server.start();
        const auto stats = server.stats();
        EXPECT_EQ(stats.cache.loaded, 0u);
        EXPECT_EQ(stats.cache.quarantined, 1u);
        EXPECT_EQ(stats.cache.scrub_runs, 1u);
        server.stop();
    }
}

} // namespace
} // namespace qaoa
