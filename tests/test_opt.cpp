/** @file Tests for the Nelder–Mead and grid-search optimizers. */

#include <gtest/gtest.h>

#include <cmath>

#include "opt/grid_search.hpp"
#include "opt/nelder_mead.hpp"

namespace qaoa::opt {
namespace {

TEST(NelderMead, QuadraticBowl)
{
    Objective f = [](const std::vector<double> &x) {
        return (x[0] - 3.0) * (x[0] - 3.0) +
               (x[1] + 1.0) * (x[1] + 1.0);
    };
    OptResult r = nelderMead(f, {0.0, 0.0});
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(r.x[0], 3.0, 1e-3);
    EXPECT_NEAR(r.x[1], -1.0, 1e-3);
    EXPECT_NEAR(r.value, 0.0, 1e-5);
}

TEST(NelderMead, Rosenbrock)
{
    Objective f = [](const std::vector<double> &x) {
        double a = 1.0 - x[0];
        double b = x[1] - x[0] * x[0];
        return a * a + 100.0 * b * b;
    };
    NelderMeadOptions opts;
    opts.max_iterations = 5000;
    opts.tolerance = 1e-12;
    OptResult r = nelderMead(f, {-1.2, 1.0}, opts);
    EXPECT_NEAR(r.x[0], 1.0, 1e-2);
    EXPECT_NEAR(r.x[1], 1.0, 2e-2);
}

TEST(NelderMead, OneDimensional)
{
    Objective f = [](const std::vector<double> &x) {
        return std::cos(x[0]);
    };
    OptResult r = nelderMead(f, {2.5});
    EXPECT_NEAR(r.value, -1.0, 1e-5);
}

TEST(NelderMead, CountsEvaluations)
{
    int calls = 0;
    Objective f = [&calls](const std::vector<double> &x) {
        ++calls;
        return x[0] * x[0];
    };
    OptResult r = nelderMead(f, {5.0});
    EXPECT_EQ(r.evaluations, calls);
    EXPECT_GT(calls, 0);
}

TEST(NelderMead, RejectsEmptyStart)
{
    Objective f = [](const std::vector<double> &) { return 0.0; };
    EXPECT_THROW(nelderMead(f, {}), std::runtime_error);
}

TEST(NelderMead, RespectsIterationBudget)
{
    Objective f = [](const std::vector<double> &x) {
        return x[0] * x[0] + x[1] * x[1];
    };
    NelderMeadOptions opts;
    opts.max_iterations = 3;
    OptResult r = nelderMead(f, {100.0, 100.0}, opts);
    EXPECT_LE(r.iterations, 3);
}

TEST(GridSearch, FindsBestCell)
{
    Objective f = [](const std::vector<double> &x) {
        return std::abs(x[0] - 0.5);
    };
    OptResult r = gridSearch(f, {{0.0, 1.0, 11}});
    EXPECT_NEAR(r.x[0], 0.5, 1e-12);
    EXPECT_EQ(r.evaluations, 11);
}

TEST(GridSearch, TwoDimensionalOdometer)
{
    Objective f = [](const std::vector<double> &x) {
        return (x[0] - 1.0) * (x[0] - 1.0) + (x[1] - 2.0) * (x[1] - 2.0);
    };
    OptResult r = gridSearch(f, {{0.0, 2.0, 5}, {0.0, 4.0, 5}});
    EXPECT_EQ(r.evaluations, 25);
    EXPECT_NEAR(r.x[0], 1.0, 1e-12);
    EXPECT_NEAR(r.x[1], 2.0, 1e-12);
}

TEST(GridSearch, RejectsDegenerateAxes)
{
    Objective f = [](const std::vector<double> &) { return 0.0; };
    EXPECT_THROW(gridSearch(f, {}), std::runtime_error);
    EXPECT_THROW(gridSearch(f, {{0.0, 1.0, 1}}), std::runtime_error);
    EXPECT_THROW(gridSearch(f, {{1.0, 0.0, 4}}), std::runtime_error);
}

TEST(GridThenNelderMead, RefinesPastGridResolution)
{
    Objective f = [](const std::vector<double> &x) {
        return (x[0] - 0.337) * (x[0] - 0.337);
    };
    OptResult r = gridThenNelderMead(f, {{0.0, 1.0, 5}});
    EXPECT_NEAR(r.x[0], 0.337, 1e-3);
}

TEST(GridThenNelderMead, EscapesPeriodicTraps)
{
    // Multi-modal function; pure local search from 0 would stall on the
    // wrong basin.
    Objective f = [](const std::vector<double> &x) {
        return std::sin(3.0 * x[0]) + 0.1 * x[0] * x[0];
    };
    OptResult r = gridThenNelderMead(f, {{-4.0, 4.0, 17}});
    EXPECT_LT(r.value, -0.85);
}

} // namespace
} // namespace qaoa::opt
