/** @file Tests for the logical<->physical Layout. */

#include <gtest/gtest.h>

#include "transpiler/layout.hpp"

namespace qaoa::transpiler {
namespace {

TEST(Layout, IdentityMapping)
{
    Layout l = Layout::identity(3, 5);
    EXPECT_EQ(l.numLogical(), 3);
    EXPECT_EQ(l.numPhysical(), 5);
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(l.physicalOf(i), i);
        EXPECT_EQ(l.logicalAt(i), i);
    }
    EXPECT_EQ(l.logicalAt(3), -1);
    EXPECT_EQ(l.logicalAt(4), -1);
}

TEST(Layout, CustomMapping)
{
    Layout l({4, 0, 2}, 5);
    EXPECT_EQ(l.physicalOf(0), 4);
    EXPECT_EQ(l.logicalAt(4), 0);
    EXPECT_EQ(l.logicalAt(1), -1);
}

TEST(Layout, RejectsDuplicateOrOutOfRange)
{
    EXPECT_THROW(Layout({0, 0}, 3), std::runtime_error);
    EXPECT_THROW(Layout({0, 5}, 3), std::runtime_error);
    EXPECT_THROW(Layout({0, 1, 2}, 2), std::runtime_error);
}

TEST(Layout, SwapBothOccupied)
{
    Layout l({0, 1}, 3);
    l.swapPhysical(0, 1);
    EXPECT_EQ(l.physicalOf(0), 1);
    EXPECT_EQ(l.physicalOf(1), 0);
    EXPECT_EQ(l.logicalAt(0), 1);
    EXPECT_EQ(l.logicalAt(1), 0);
}

TEST(Layout, SwapWithEmptySlot)
{
    Layout l({0, 1}, 3);
    l.swapPhysical(1, 2); // physical 2 is empty
    EXPECT_EQ(l.physicalOf(1), 2);
    EXPECT_EQ(l.logicalAt(1), -1);
    EXPECT_EQ(l.logicalAt(2), 1);
}

TEST(Layout, SwapIsInvolution)
{
    Layout l({3, 1, 4}, 6);
    Layout before = l;
    l.swapPhysical(3, 1);
    l.swapPhysical(3, 1);
    EXPECT_EQ(l, before);
}

TEST(Layout, SwapRejectsBadOperands)
{
    Layout l({0, 1}, 3);
    EXPECT_THROW(l.swapPhysical(0, 0), std::runtime_error);
    EXPECT_THROW(l.swapPhysical(0, 3), std::runtime_error);
}

TEST(Layout, ConsistencyAfterManySwaps)
{
    Layout l({0, 2, 4}, 6);
    int swaps[][2] = {{0, 1}, {2, 3}, {4, 5}, {1, 2}, {3, 4}, {0, 5}};
    for (auto &s : swaps)
        l.swapPhysical(s[0], s[1]);
    // Both directions stay mutually consistent.
    for (int log = 0; log < 3; ++log)
        EXPECT_EQ(l.logicalAt(l.physicalOf(log)), log);
    int occupied = 0;
    for (int p = 0; p < 6; ++p)
        if (l.logicalAt(p) >= 0)
            ++occupied;
    EXPECT_EQ(occupied, 3);
}

TEST(Layout, ToStringShowsMapping)
{
    Layout l({2, 0}, 3);
    EXPECT_EQ(l.toString(), "l0->p2 l1->p0");
}

} // namespace
} // namespace qaoa::transpiler
