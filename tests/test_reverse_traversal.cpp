/** @file Tests for the reverse-traversal initial-mapping baseline
 *  ([57], §III). */

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "hardware/devices.hpp"
#include "qaoa/problem.hpp"
#include "transpiler/layout_passes.hpp"
#include "transpiler/reverse_traversal.hpp"

namespace qaoa::transpiler {
namespace {

using circuit::Circuit;
using circuit::Gate;

TEST(ReversedForMapping, ReversesGateOrderDropsMeasures)
{
    Circuit c(3);
    c.add(Gate::h(0));
    c.add(Gate::cnot(0, 1));
    c.add(Gate::cnot(1, 2));
    c.add(Gate::measure(2, 2));
    Circuit r = reversedForMapping(c);
    ASSERT_EQ(r.gateCount(), 3);
    EXPECT_EQ(r.gates()[0].type, circuit::GateType::CNOT);
    EXPECT_EQ(r.gates()[0].q0, 1);
    EXPECT_EQ(r.gates()[2].type, circuit::GateType::H);
}

TEST(ReverseTraversal, ProducesValidLayout)
{
    hw::CouplingMap tokyo = hw::ibmqTokyo20();
    Rng rng(5);
    graph::Graph g = graph::randomRegular(12, 3, rng);
    Circuit logical = core::buildQaoaCircuit(g, {0.7}, {0.35}, true);
    Layout seed = randomLayout(12, tokyo, rng);
    Layout refined = reverseTraversalLayout(logical, tokyo, seed, 3);
    EXPECT_EQ(refined.numLogical(), seed.numLogical());
    std::set<int> used;
    for (int l = 0; l < 12; ++l)
        EXPECT_TRUE(used.insert(refined.physicalOf(l)).second);
}

TEST(ReverseTraversal, ImprovesRoutingCostOnAverage)
{
    // Refined layouts should need no more SWAPs than the random seeds
    // when routing the same circuit (summed over instances).
    hw::CouplingMap tokyo = hw::ibmqTokyo20();
    Rng rng(6);
    int seed_swaps = 0, refined_swaps = 0;
    for (int trial = 0; trial < 6; ++trial) {
        graph::Graph g = graph::randomRegular(14, 3, rng);
        Circuit logical = core::buildQaoaCircuit(g, {0.7}, {0.35}, false);
        Layout seed = randomLayout(14, tokyo, rng);
        Layout refined =
            reverseTraversalLayout(logical, tokyo, seed, 3);
        seed_swaps += routeCircuit(logical, tokyo, seed).swap_count;
        refined_swaps +=
            routeCircuit(logical, tokyo, refined).swap_count;
    }
    EXPECT_LE(refined_swaps, seed_swaps);
}

TEST(ReverseTraversal, RejectsZeroTraversals)
{
    hw::CouplingMap lin = hw::linearDevice(4);
    Circuit c(3);
    c.add(Gate::cnot(0, 2));
    EXPECT_THROW(reverseTraversalLayout(c, lin,
                                        Layout::identity(3, 4), 0),
                 std::runtime_error);
}

TEST(VqaLayout, ValidAndPrefersReliableRegion)
{
    hw::CouplingMap melbourne = hw::ibmqMelbourne15();
    hw::CalibrationData calib(melbourne, 0.05);
    // Make the 7-8-9 corner clearly the most reliable region.
    calib.setCnotError(7, 8, 0.001);
    calib.setCnotError(8, 9, 0.002);
    calib.setCnotError(9, 10, 0.003);
    std::vector<int> ops{3, 2, 1};
    Layout l = vqaLayout(ops, melbourne, calib);
    std::set<int> used;
    for (int i = 0; i < 3; ++i)
        used.insert(l.physicalOf(i));
    EXPECT_EQ(used.size(), 3u);
    // The chosen region contains the most reliable edge {7, 8}.
    EXPECT_TRUE(used.count(7));
    EXPECT_TRUE(used.count(8));
}

TEST(VqaLayout, SubgraphIsConnected)
{
    hw::CouplingMap tokyo = hw::ibmqTokyo20();
    Rng rng(9);
    hw::CalibrationData calib = hw::randomCalibration(tokyo, rng);
    std::vector<int> ops(10, 1);
    Layout l = vqaLayout(ops, tokyo, calib);
    // Every chosen qubit has a chosen neighbor (greedy growth keeps the
    // region connected).
    std::set<int> chosen;
    for (int i = 0; i < 10; ++i)
        chosen.insert(l.physicalOf(i));
    for (int q : chosen) {
        bool linked = false;
        for (int nb : tokyo.neighbors(q))
            if (chosen.count(nb))
                linked = true;
        EXPECT_TRUE(linked) << "qubit " << q << " isolated";
    }
}

TEST(VqaLayout, SingleQubitProgram)
{
    hw::CouplingMap lin = hw::linearDevice(4);
    hw::CalibrationData calib(lin, 0.02);
    Layout l = vqaLayout({1}, lin, calib);
    EXPECT_EQ(l.numLogical(), 1);
}

TEST(VqaLayout, RejectsOversizedProgram)
{
    hw::CouplingMap lin = hw::linearDevice(3);
    hw::CalibrationData calib(lin);
    EXPECT_THROW(vqaLayout(std::vector<int>(4, 1), lin, calib),
                 std::runtime_error);
}

} // namespace
} // namespace qaoa::transpiler
