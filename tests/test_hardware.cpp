/** @file
 * Tests for the device library and hardware profiling, including the
 * Fig. 3(b) golden connectivity strengths of ibmq_20_tokyo.
 */

#include <gtest/gtest.h>

#include "hardware/devices.hpp"
#include "hardware/profile.hpp"

namespace qaoa::hw {
namespace {

TEST(Tokyo, BasicShape)
{
    CouplingMap tokyo = ibmqTokyo20();
    EXPECT_EQ(tokyo.numQubits(), 20);
    EXPECT_EQ(tokyo.graph().numEdges(), 43);
    EXPECT_EQ(tokyo.name(), "ibmq_20_tokyo");
    EXPECT_TRUE(tokyo.graph().isConnected());
}

TEST(Tokyo, Figure3aNeighborhoods)
{
    // §IV-A: qubit-0 has first neighbors {1, 5} and second neighbors
    // {2, 6, 7, 10, 11}.
    CouplingMap tokyo = ibmqTokyo20();
    EXPECT_EQ(tokyo.graph().degree(0), 2);
    EXPECT_TRUE(tokyo.coupled(0, 1));
    EXPECT_TRUE(tokyo.coupled(0, 5));
    for (int q : {2, 6, 7, 10, 11})
        EXPECT_EQ(tokyo.distance(0, q), 2) << "qubit " << q;
}

TEST(Tokyo, Figure3bGoldenConnectivityStrengths)
{
    // Strengths cited in the paper's text: qubit-0 -> 7 (= 2 + 5);
    // qubit-7 and qubit-12 are the maximum with 18 each (Example 1).
    CouplingMap tokyo = ibmqTokyo20();
    EXPECT_EQ(connectivityStrength(tokyo, 0), 7);
    EXPECT_EQ(connectivityStrength(tokyo, 7), 18);
    EXPECT_EQ(connectivityStrength(tokyo, 12), 18);
    // 7 and 12 are global maxima.
    std::vector<int> profile = connectivityProfile(tokyo);
    for (int q = 0; q < 20; ++q)
        EXPECT_LE(profile[static_cast<std::size_t>(q)], 18);
}

TEST(Melbourne, BasicShape)
{
    CouplingMap melbourne = ibmqMelbourne15();
    EXPECT_EQ(melbourne.numQubits(), 15);
    EXPECT_EQ(melbourne.graph().numEdges(), 20);
    EXPECT_TRUE(melbourne.graph().isConnected());
    // Ladder: top row chain exists.
    for (int q = 0; q + 1 <= 6; ++q)
        EXPECT_TRUE(melbourne.coupled(q, q + 1)) << q;
    // Rungs.
    EXPECT_TRUE(melbourne.coupled(0, 14));
    EXPECT_TRUE(melbourne.coupled(6, 8));
}

TEST(Melbourne, CalibrationSnapshotValues)
{
    CouplingMap melbourne = ibmqMelbourne15();
    CalibrationData calib = melbourneCalibration(melbourne);
    // Every edge carries one of the Fig. 10(a) rates; check range and a
    // couple of canonical-order assignments.
    double min_rate = 1.0, max_rate = 0.0;
    for (const auto &e : melbourne.graph().edges()) {
        double err = calib.cnotError(e.u, e.v);
        min_rate = std::min(min_rate, err);
        max_rate = std::max(max_rate, err);
    }
    EXPECT_DOUBLE_EQ(min_rate, 1.54e-2);
    EXPECT_DOUBLE_EQ(max_rate, 8.60e-2);
}

TEST(Melbourne, CalibrationRejectsWrongDevice)
{
    CouplingMap tokyo = ibmqTokyo20();
    EXPECT_THROW(melbourneCalibration(tokyo), std::runtime_error);
}

TEST(Poughkeepsie, BasicShape)
{
    CouplingMap pk = ibmqPoughkeepsie20();
    EXPECT_EQ(pk.numQubits(), 20);
    EXPECT_EQ(pk.graph().numEdges(), 23);
    EXPECT_TRUE(pk.graph().isConnected());
    // Sparse rungs: the middle row connects down at 10, 12 and 14.
    EXPECT_TRUE(pk.coupled(5, 10));
    EXPECT_TRUE(pk.coupled(7, 12));
    EXPECT_TRUE(pk.coupled(9, 14));
    EXPECT_FALSE(pk.coupled(6, 11));
}

TEST(HeavyHex, FalconShape)
{
    CouplingMap hh = heavyHexFalcon27();
    EXPECT_EQ(hh.numQubits(), 27);
    EXPECT_EQ(hh.graph().numEdges(), 28);
    EXPECT_TRUE(hh.graph().isConnected());
    // Heavy-hex invariant: no qubit has more than 3 couplings.
    EXPECT_LE(hh.graph().maxDegree(), 3);
    // Degree-1 endcaps exist (e.g. qubit 0 and 26).
    EXPECT_EQ(hh.graph().degree(0), 1);
    EXPECT_EQ(hh.graph().degree(26), 1);
}

TEST(SimpleDevices, LinearRingGrid)
{
    CouplingMap lin = linearDevice(4);
    EXPECT_EQ(lin.numQubits(), 4);
    EXPECT_EQ(lin.distance(0, 3), 3);

    CouplingMap ring = ringDevice(8);
    EXPECT_EQ(ring.graph().numEdges(), 8);
    EXPECT_EQ(ring.distance(0, 4), 4);
    EXPECT_EQ(ring.distance(0, 7), 1);

    CouplingMap grid = gridDevice(6, 6);
    EXPECT_EQ(grid.numQubits(), 36);
    EXPECT_EQ(grid.distance(0, 35), 10);
}

TEST(SimpleDevices, RejectDegenerateShapes)
{
    EXPECT_THROW(linearDevice(1), std::runtime_error);
    EXPECT_THROW(ringDevice(2), std::runtime_error);
    EXPECT_THROW(gridDevice(1, 1), std::runtime_error);
}

TEST(CouplingMap, DistanceAndNextHop)
{
    CouplingMap lin = linearDevice(5);
    EXPECT_EQ(lin.distance(0, 4), 4);
    EXPECT_EQ(lin.nextHopTowards(0, 4), 1);
    EXPECT_EQ(lin.nextHopTowards(4, 0), 3);
    EXPECT_EQ(lin.nextHopTowards(2, 2), 2);
}

TEST(CouplingMap, RejectsDisconnectedGraph)
{
    graph::Graph g(4);
    g.addEdge(0, 1);
    g.addEdge(2, 3);
    EXPECT_THROW(CouplingMap(g, "broken"), std::runtime_error);
}

TEST(Profile, RadiusOneEqualsDegree)
{
    CouplingMap tokyo = ibmqTokyo20();
    for (int q = 0; q < tokyo.numQubits(); ++q)
        EXPECT_EQ(connectivityStrength(tokyo, q, 1),
                  tokyo.graph().degree(q));
}

TEST(Profile, LargerRadiusNeverShrinks)
{
    CouplingMap grid = gridDevice(5, 5);
    for (int q = 0; q < grid.numQubits(); ++q) {
        int s2 = connectivityStrength(grid, q, 2);
        int s3 = connectivityStrength(grid, q, 3);
        EXPECT_GE(s3, s2);
    }
}

TEST(Profile, FullRadiusCoversEverything)
{
    CouplingMap ring = ringDevice(6);
    for (int q = 0; q < 6; ++q)
        EXPECT_EQ(connectivityStrength(ring, q, 3), 5);
}

TEST(Profile, InvalidArgumentsRejected)
{
    CouplingMap lin = linearDevice(3);
    EXPECT_THROW(connectivityStrength(lin, 0, 0), std::runtime_error);
    EXPECT_THROW(connectivityStrength(lin, 9, 2), std::runtime_error);
}

} // namespace
} // namespace qaoa::hw
