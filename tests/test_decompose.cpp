/** @file
 * Tests for basis translation: every decomposition must reproduce the
 * original unitary up to global phase (verified with the statevector
 * simulator on random input states).
 */

#include <gtest/gtest.h>

#include <numbers>

#include "circuit/decompose.hpp"
#include "common/rng.hpp"
#include "test_util.hpp"

namespace qaoa::circuit {
namespace {

constexpr double kPi = std::numbers::pi;

/** Builds a random-state preparation prefix so equivalence is checked on
 *  a generic input, not just |0...0>. */
Circuit
randomPrefix(int num_qubits, std::uint64_t seed)
{
    Rng rng(seed);
    Circuit c(num_qubits);
    for (int q = 0; q < num_qubits; ++q) {
        c.add(Gate::u3(q, rng.uniformReal(0.0, kPi),
                       rng.uniformReal(0.0, 2.0 * kPi),
                       rng.uniformReal(0.0, 2.0 * kPi)));
    }
    for (int q = 0; q + 1 < num_qubits; ++q)
        c.add(Gate::cnot(q, q + 1));
    return c;
}

/** Checks decomposeGate(g) against g itself on a random 3-qubit state. */
void
expectGateEquivalent(const Gate &g, std::uint64_t seed)
{
    Circuit original = randomPrefix(3, seed);
    Circuit decomposed = original;
    original.add(g);
    for (const Gate &bg : decomposeGate(g))
        decomposed.add(bg);
    EXPECT_TRUE(testutil::equivalentUpToGlobalPhase(original, decomposed))
        << "gate " << g.toString();
}

class GateDecomposition : public ::testing::TestWithParam<double>
{
};

TEST_P(GateDecomposition, ParametricGatesMatchUnitary)
{
    double theta = GetParam();
    expectGateEquivalent(Gate::rx(0, theta), 11);
    expectGateEquivalent(Gate::ry(1, theta), 12);
    expectGateEquivalent(Gate::rz(2, theta), 13);
    expectGateEquivalent(Gate::cphase(0, 2, theta), 14);
    expectGateEquivalent(Gate::cphase(2, 0, theta), 15);
}

INSTANTIATE_TEST_SUITE_P(AngleSweep, GateDecomposition,
                         ::testing::Values(0.0, 0.3, kPi / 2.0, 1.1, kPi,
                                           2.0, 3 * kPi / 2.0, 5.9));

TEST(Decompose, FixedGates)
{
    expectGateEquivalent(Gate::h(0), 21);
    expectGateEquivalent(Gate::x(1), 22);
    expectGateEquivalent(Gate::y(2), 23);
    expectGateEquivalent(Gate::z(0), 24);
    expectGateEquivalent(Gate::cz(1, 2), 25);
    expectGateEquivalent(Gate::cz(2, 1), 26);
    expectGateEquivalent(Gate::swap(0, 2), 27);
}

TEST(Decompose, BasisGatesPassThrough)
{
    for (const Gate &g : {Gate::u1(0, 0.5), Gate::u2(0, 0.1, 0.2),
                          Gate::u3(0, 0.1, 0.2, 0.3), Gate::cnot(0, 1)}) {
        auto out = decomposeGate(g);
        ASSERT_EQ(out.size(), 1u);
        EXPECT_EQ(out[0], g);
    }
}

TEST(Decompose, CphaseCostsTwoCnots)
{
    auto out = decomposeGate(Gate::cphase(0, 1, 0.7));
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0].type, GateType::CNOT);
    EXPECT_EQ(out[1].type, GateType::U1);
    EXPECT_EQ(out[2].type, GateType::CNOT);
}

TEST(Decompose, SwapCostsThreeCnots)
{
    auto out = decomposeGate(Gate::swap(0, 1));
    ASSERT_EQ(out.size(), 3u);
    for (const Gate &g : out)
        EXPECT_EQ(g.type, GateType::CNOT);
}

TEST(Decompose, FullCircuitBecomesBasis)
{
    Circuit c(4);
    c.add(Gate::h(0));
    c.add(Gate::cphase(0, 1, 0.4));
    c.add(Gate::swap(1, 2));
    c.add(Gate::rx(3, 1.2));
    c.add(Gate::measure(3, 3));
    EXPECT_FALSE(isBasisCircuit(c));
    Circuit basis = decomposeToBasis(c);
    EXPECT_TRUE(isBasisCircuit(basis));
    EXPECT_TRUE(testutil::equivalentUpToGlobalPhase(c, basis));
    // Measurements survive the translation.
    EXPECT_EQ(basis.countType(GateType::MEASURE), 1);
}

TEST(Inverse, GateTimesInverseIsIdentity)
{
    // U · U† must return any state to itself (up to global phase).
    Rng rng(41);
    std::vector<Gate> gates = {
        Gate::h(0),          Gate::x(1),
        Gate::y(2),          Gate::z(0),
        Gate::rx(1, 0.7),    Gate::ry(2, 1.3),
        Gate::rz(0, 2.1),    Gate::u1(1, 0.9),
        Gate::u2(2, 0.4, 1.8), Gate::u3(0, 1.2, 0.5, 2.6),
        Gate::cnot(0, 1),    Gate::cz(1, 2),
        Gate::cphase(0, 2, 1.5), Gate::swap(1, 2),
    };
    for (const Gate &g : gates) {
        Circuit with(3), without(3);
        Circuit prefix = randomPrefix(3, 77);
        with = prefix;
        without = prefix;
        with.add(g);
        with.add(inverseGate(g));
        EXPECT_TRUE(testutil::equivalentUpToGlobalPhase(with, without))
            << g.toString();
    }
}

TEST(Inverse, CircuitTimesInverseIsIdentity)
{
    Rng rng(42);
    for (int trial = 0; trial < 5; ++trial) {
        Circuit c(4);
        for (int i = 0; i < 25; ++i) {
            int a = rng.uniformInt(0, 3), b = rng.uniformInt(0, 3);
            if (a == b)
                c.add(Gate::u3(a, rng.uniformReal(0, 3),
                               rng.uniformReal(0, 3),
                               rng.uniformReal(0, 3)));
            else
                c.add(Gate::cphase(a, b, rng.uniformReal(0, 3)));
        }
        Circuit round_trip = c;
        round_trip.append(inverseCircuit(c));
        Circuit empty(4);
        EXPECT_TRUE(
            testutil::equivalentUpToGlobalPhase(round_trip, empty))
            << "trial " << trial;
    }
}

TEST(Inverse, MeasurementRejected)
{
    EXPECT_THROW(inverseGate(Gate::measure(0, 0)), std::runtime_error);
    Circuit c(1);
    c.add(Gate::measure(0, 0));
    EXPECT_THROW(inverseCircuit(c), std::runtime_error);
}

TEST(Decompose, WholeQaoaStyleCircuitEquivalence)
{
    Rng rng(31);
    for (int trial = 0; trial < 5; ++trial) {
        Circuit c(4);
        for (int q = 0; q < 4; ++q)
            c.add(Gate::h(q));
        for (int i = 0; i < 6; ++i) {
            int a = rng.uniformInt(0, 3), b = rng.uniformInt(0, 3);
            if (a != b)
                c.add(Gate::cphase(a, b, rng.uniformReal(0.0, 2 * kPi)));
        }
        for (int q = 0; q < 4; ++q)
            c.add(Gate::rx(q, rng.uniformReal(0.0, kPi)));
        Circuit basis = decomposeToBasis(c);
        EXPECT_TRUE(testutil::equivalentUpToGlobalPhase(c, basis));
    }
}

} // namespace
} // namespace qaoa::circuit
