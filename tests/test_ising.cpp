/** @file
 * Tests for the general Ising cost-Hamiltonian support (§VI
 * "Applicability beyond QAOA-MaxCut") and its canonical encodings.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "graph/maxcut.hpp"
#include "hardware/devices.hpp"
#include "metrics/harness.hpp"
#include "qaoa/api.hpp"
#include "qaoa/ising.hpp"
#include "sim/statevector.hpp"
#include "test_util.hpp"

namespace qaoa::core {
namespace {

TEST(IsingModel, CoefficientBookkeeping)
{
    IsingModel m(3);
    m.addLinear(0, 0.5);
    m.addLinear(0, 0.25);
    m.addQuadratic(0, 2, 1.0);
    m.addQuadratic(2, 0, 0.5); // accumulates onto the same pair
    m.addOffset(2.0);
    EXPECT_DOUBLE_EQ(m.linear(0), 0.75);
    EXPECT_DOUBLE_EQ(m.linear(1), 0.0);
    EXPECT_DOUBLE_EQ(m.quadratic(0, 2), 1.5);
    EXPECT_DOUBLE_EQ(m.quadratic(2, 0), 1.5);
    EXPECT_DOUBLE_EQ(m.quadratic(0, 1), 0.0);
    EXPECT_DOUBLE_EQ(m.offset(), 2.0);
}

TEST(IsingModel, EnergyEvaluation)
{
    // E = s0 + 2 s0 s1, s = +1 for bit 0.
    IsingModel m(2);
    m.addLinear(0, 1.0);
    m.addQuadratic(0, 1, 2.0);
    EXPECT_DOUBLE_EQ(m.energy(0b00), 3.0);  // s0=+1, s1=+1
    EXPECT_DOUBLE_EQ(m.energy(0b01), -3.0); // s0=-1
    EXPECT_DOUBLE_EQ(m.energy(0b10), -1.0); // s1=-1
    EXPECT_DOUBLE_EQ(m.energy(0b11), 1.0);
}

TEST(IsingModel, GroundStateExhaustive)
{
    IsingModel m(2);
    m.addLinear(0, 1.0);
    m.addQuadratic(0, 1, 2.0);
    auto gs = m.groundState();
    EXPECT_DOUBLE_EQ(gs.energy, -3.0);
    EXPECT_EQ(gs.assignment, 0b01u);
}

TEST(IsingModel, RejectsBadArguments)
{
    IsingModel m(2);
    EXPECT_THROW(m.addLinear(2, 1.0), std::runtime_error);
    EXPECT_THROW(m.addQuadratic(0, 0, 1.0), std::runtime_error);
    EXPECT_THROW(IsingModel(-1), std::runtime_error);
}

TEST(MaxcutEncoding, GroundEnergyIsMinusMaxcut)
{
    Rng rng(42);
    for (int trial = 0; trial < 8; ++trial) {
        graph::Graph g = graph::erdosRenyi(8, 0.5, rng);
        IsingModel m = maxcutToIsing(g);
        double maxcut = graph::maxCutBruteForce(g).value;
        EXPECT_NEAR(m.groundState().energy, -maxcut, 1e-9);
        // Every assignment satisfies E = -cut.
        for (std::uint64_t a = 0; a < 256; a += 37)
            EXPECT_NEAR(m.energy(a), -graph::cutValue(g, a), 1e-9);
    }
}

TEST(PartitionEncoding, PerfectPartitionHasZeroEnergy)
{
    // {1, 2, 3}: {1,2} vs {3} — difference 0, energy 0.
    IsingModel m = partitionToIsing({1.0, 2.0, 3.0});
    auto gs = m.groundState();
    EXPECT_NEAR(gs.energy, 0.0, 1e-9);
    // Energy is the squared difference of the two subset sums.
    EXPECT_NEAR(m.energy(0b000), 36.0, 1e-9); // all on one side
}

TEST(PartitionEncoding, ImbalancedSetMinimizesDifference)
{
    IsingModel m = partitionToIsing({5.0, 3.0, 1.0});
    // Best split: {5} vs {3,1} -> diff 1 -> energy 1.
    EXPECT_NEAR(m.groundState().energy, 1.0, 1e-9);
}

TEST(VertexCoverEncoding, TriangleNeedsTwoVertices)
{
    graph::Graph tri = graph::cycleGraph(3);
    IsingModel m = vertexCoverToIsing(tri, 4.0);
    auto gs = m.groundState();
    // Ground energy = cover size (penalty term vanishes on valid
    // covers).
    EXPECT_NEAR(gs.energy, 2.0, 1e-9);
    // The assignment covers every edge: bits set = chosen vertices.
    int chosen = 0;
    for (int i = 0; i < 3; ++i)
        chosen += (gs.assignment >> i) & 1ULL;
    EXPECT_EQ(chosen, 2);
}

TEST(VertexCoverEncoding, StarIsCoveredByCenter)
{
    graph::Graph star(5);
    for (int v = 1; v < 5; ++v)
        star.addEdge(0, v);
    IsingModel m = vertexCoverToIsing(star, 3.0);
    auto gs = m.groundState();
    EXPECT_NEAR(gs.energy, 1.0, 1e-9);
    EXPECT_EQ(gs.assignment, 1ULL); // only the hub selected
}

TEST(VertexCoverEncoding, RejectsWeakPenalty)
{
    EXPECT_THROW(vertexCoverToIsing(graph::cycleGraph(3), 1.0),
                 std::runtime_error);
}

TEST(IsingCircuit, MatchesMaxcutBuilderOnGraphs)
{
    // The Ising route and the direct MaxCut builder must produce the
    // same output state for the same (gamma, beta).
    Rng rng(7);
    graph::Graph g = graph::erdosRenyi(5, 0.6, rng);
    IsingModel m = maxcutToIsing(g);
    circuit::Circuit a =
        buildIsingQaoaCircuit(m, m.quadraticOps(), {0.7}, {0.3}, false);
    circuit::Circuit b = buildQaoaCircuit(g, {0.7}, {0.3}, false);
    EXPECT_TRUE(testutil::equivalentUpToGlobalPhase(a, b));
}

TEST(IsingCircuit, LinearTermsShiftPhases)
{
    IsingModel m(1);
    m.addLinear(0, 1.0);
    circuit::Circuit c =
        buildIsingQaoaCircuit(m, {}, {0.5}, {0.0}, false);
    // H then RZ(2*0.5) then RX(0): the RZ must appear.
    int rz = 0;
    for (const auto &g : c.gates())
        if (g.type == circuit::GateType::RZ) {
            ++rz;
            EXPECT_DOUBLE_EQ(g.params[0], 1.0);
        }
    EXPECT_EQ(rz, 1);
}

TEST(IsingCompile, AllMethodsPreserveDistribution)
{
    // Vertex cover on a 4-node path: linear + quadratic terms exercise
    // the full Ising path through compilation.
    graph::Graph path = graph::pathGraph(4);
    IsingModel m = vertexCoverToIsing(path, 2.5);
    hw::CouplingMap grid = hw::gridDevice(2, 3);
    hw::CalibrationData calib(grid, 0.02);

    circuit::Circuit logical = buildIsingQaoaCircuit(
        m, m.quadraticOps(), {0.6}, {0.25}, true);
    auto expected = testutil::exactClassicalDistribution(logical);

    for (Method method : {Method::Naive, Method::GreedyV, Method::Qaim,
                          Method::Ip, Method::Ic, Method::Vic}) {
        QaoaCompileOptions opts;
        opts.method = method;
        opts.calibration = &calib;
        opts.gammas = {0.6};
        opts.betas = {0.25};
        transpiler::CompileResult r = compileQaoaIsing(m, grid, opts);
        EXPECT_TRUE(transpiler::satisfiesCoupling(r.compiled, grid));
        auto actual = testutil::exactClassicalDistribution(r.compiled);
        EXPECT_LT(testutil::totalVariation(expected, actual), 1e-9)
            << methodName(method);
    }
}

TEST(IsingCompile, QaoaFindsVertexCoverGroundState)
{
    // End to end: optimize angles for the Ising expectation and check
    // the sampled mode is a valid minimum vertex cover.
    graph::Graph tri = graph::cycleGraph(3);
    IsingModel m = vertexCoverToIsing(tri, 4.0);

    auto expectation = [&](double gamma, double beta) {
        circuit::Circuit c = buildIsingQaoaCircuit(
            m, m.quadraticOps(), {gamma}, {beta}, false);
        sim::Statevector state(3);
        state.apply(c);
        std::vector<double> probs = state.probabilities();
        double e = 0.0;
        for (std::size_t a = 0; a < probs.size(); ++a)
            e += probs[a] * m.energy(a);
        return e;
    };
    // Coarse sweep is enough to find an improving angle pair.
    double best = expectation(0.0, 0.0);
    double uniform = best;
    for (double gamma = 0.1; gamma < 1.6; gamma += 0.15)
        for (double beta = 0.1; beta < 1.6; beta += 0.15)
            best = std::min(best, expectation(gamma, beta));
    EXPECT_LT(best, uniform - 0.2); // QAOA improves over uniform
}

TEST(IsingCompile, RejectsBadInput)
{
    hw::CouplingMap lin = hw::linearDevice(3);
    IsingModel tiny(1);
    QaoaCompileOptions opts;
    EXPECT_THROW(compileQaoaIsing(tiny, lin, opts), std::runtime_error);
    IsingModel big(4);
    EXPECT_THROW(compileQaoaIsing(big, lin, opts), std::runtime_error);
}

} // namespace
} // namespace qaoa::core
