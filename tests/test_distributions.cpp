/** @file Tests for distribution-distance metrics. */

#include <gtest/gtest.h>

#include <cmath>

#include "metrics/distributions.hpp"

namespace qaoa::metrics {
namespace {

sim::Counts
counts(std::initializer_list<std::pair<std::uint64_t, std::uint64_t>> kv)
{
    sim::Counts c;
    for (const auto &[k, v] : kv)
        c[k] = v;
    return c;
}

TEST(Distributions, Normalization)
{
    auto d = toDistribution(counts({{0, 30}, {1, 10}}));
    EXPECT_DOUBLE_EQ(d[0], 0.75);
    EXPECT_DOUBLE_EQ(d[1], 0.25);
    EXPECT_THROW(toDistribution({}), std::runtime_error);
}

TEST(Distributions, TotalVariationIdentical)
{
    auto a = counts({{0, 50}, {3, 50}});
    EXPECT_DOUBLE_EQ(totalVariationDistance(a, a), 0.0);
    // Scaling the shot count does not change the distribution.
    auto b = counts({{0, 5}, {3, 5}});
    EXPECT_DOUBLE_EQ(totalVariationDistance(a, b), 0.0);
}

TEST(Distributions, TotalVariationDisjoint)
{
    auto a = counts({{0, 10}});
    auto b = counts({{1, 10}});
    EXPECT_DOUBLE_EQ(totalVariationDistance(a, b), 1.0);
}

TEST(Distributions, TotalVariationPartialOverlap)
{
    auto a = counts({{0, 50}, {1, 50}});
    auto b = counts({{0, 100}});
    EXPECT_DOUBLE_EQ(totalVariationDistance(a, b), 0.5);
}

TEST(Distributions, HellingerBounds)
{
    auto a = counts({{0, 50}, {1, 50}});
    EXPECT_NEAR(hellingerFidelity(a, a), 1.0, 1e-12);
    auto b = counts({{2, 7}});
    EXPECT_NEAR(hellingerFidelity(a, b), 0.0, 1e-12);
}

TEST(Distributions, HellingerKnownValue)
{
    // P = {1/2, 1/2}, Q = {1, 0}: BC = sqrt(1/2), fidelity = 1/2.
    auto a = counts({{0, 1}, {1, 1}});
    auto b = counts({{0, 2}});
    EXPECT_NEAR(hellingerFidelity(a, b), 0.5, 1e-12);
}

TEST(Distributions, KlDivergenceProperties)
{
    auto a = counts({{0, 3}, {1, 1}});
    EXPECT_NEAR(klDivergence(a, a), 0.0, 1e-6);
    auto b = counts({{0, 1}, {1, 3}});
    EXPECT_GT(klDivergence(a, b), 0.0);
    // Asymmetric in general (mirror pairs like a/b are coincidentally
    // symmetric, so use a uniform comparator).
    auto u = counts({{0, 1}, {1, 1}});
    EXPECT_NE(klDivergence(a, u), klDivergence(u, a));
    EXPECT_THROW(klDivergence(a, b, 0.0), std::runtime_error);
}

TEST(Distributions, KlDivergenceKnownValue)
{
    // P = {3/4, 1/4}, Q = {1/4, 3/4}: D = 3/4 ln3 - 1/4 ln3 = ln3 / 2.
    auto a = counts({{0, 3}, {1, 1}});
    auto b = counts({{0, 1}, {1, 3}});
    EXPECT_NEAR(klDivergence(a, b), std::log(3.0) / 2.0, 1e-6);
}

} // namespace
} // namespace qaoa::metrics
