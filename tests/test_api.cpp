/** @file
 * End-to-end tests for the top-level compileQaoaMaxcut() API across all
 * six methodologies.
 */

#include <gtest/gtest.h>

#include "circuit/decompose.hpp"
#include "graph/generators.hpp"
#include "hardware/devices.hpp"
#include "qaoa/api.hpp"
#include "transpiler/router.hpp"

namespace qaoa::core {
namespace {

const Method kAllMethods[] = {Method::Naive, Method::GreedyV,
                              Method::Qaim,  Method::Ip,
                              Method::Ic,    Method::Vic};

TEST(Api, MethodNames)
{
    EXPECT_EQ(methodName(Method::Naive), "NAIVE");
    EXPECT_EQ(methodName(Method::GreedyV), "GreedyV");
    EXPECT_EQ(methodName(Method::Qaim), "QAIM");
    EXPECT_EQ(methodName(Method::Ip), "IP");
    EXPECT_EQ(methodName(Method::Ic), "IC");
    EXPECT_EQ(methodName(Method::Vic), "VIC");
}

class ApiMethodSweep : public ::testing::TestWithParam<Method>
{
};

TEST_P(ApiMethodSweep, CompiledCircuitIsHardwareCompliant)
{
    hw::CouplingMap melbourne = hw::ibmqMelbourne15();
    hw::CalibrationData calib = hw::melbourneCalibration(melbourne);
    Rng inst_rng(71);
    graph::Graph g = graph::erdosRenyi(8, 0.4, inst_rng);

    QaoaCompileOptions opts;
    opts.method = GetParam();
    opts.calibration = &calib;
    opts.seed = 5;
    transpiler::CompileResult r = compileQaoaMaxcut(g, melbourne, opts);

    EXPECT_TRUE(circuit::isBasisCircuit(r.compiled));
    EXPECT_TRUE(transpiler::satisfiesCoupling(r.compiled, melbourne));
    EXPECT_EQ(r.compiled.countType(circuit::GateType::MEASURE), 8);
    EXPECT_GT(r.report.depth, 0);
    EXPECT_GT(r.report.gate_count, 0);
    EXPECT_GE(r.report.compile_seconds, 0.0);
    EXPECT_EQ(r.report.depth, r.compiled.depth());
    EXPECT_EQ(r.report.gate_count, r.compiled.gateCount());
}

TEST_P(ApiMethodSweep, CphaseCountPreservedWithoutDecompose)
{
    hw::CouplingMap tokyo = hw::ibmqTokyo20();
    hw::CalibrationData calib(tokyo, 0.02);
    Rng inst_rng(72);
    graph::Graph g = graph::randomRegular(10, 3, inst_rng);

    QaoaCompileOptions opts;
    opts.method = GetParam();
    opts.calibration = &calib;
    opts.decompose_to_basis = false;
    transpiler::CompileResult r = compileQaoaMaxcut(g, tokyo, opts);
    EXPECT_EQ(r.compiled.countType(circuit::GateType::CPHASE),
              g.numEdges());
    EXPECT_EQ(r.compiled.countType(circuit::GateType::H), 10);
    EXPECT_EQ(r.compiled.countType(circuit::GateType::RX), 10);
}

TEST_P(ApiMethodSweep, MultiLevelScalesGateCount)
{
    hw::CouplingMap grid = hw::gridDevice(3, 3);
    hw::CalibrationData calib(grid, 0.02);
    Rng inst_rng(73);
    graph::Graph g = graph::randomRegular(6, 3, inst_rng);

    QaoaCompileOptions opts;
    opts.method = GetParam();
    opts.calibration = &calib;
    opts.decompose_to_basis = false;
    opts.gammas = {0.7, 0.4};
    opts.betas = {0.35, 0.2};
    transpiler::CompileResult r = compileQaoaMaxcut(g, grid, opts);
    EXPECT_EQ(r.compiled.countType(circuit::GateType::CPHASE),
              2 * g.numEdges());
    EXPECT_EQ(r.compiled.countType(circuit::GateType::RX), 2 * 6);
}

INSTANTIATE_TEST_SUITE_P(AllMethods, ApiMethodSweep,
                         ::testing::ValuesIn(kAllMethods));

TEST(Api, VicRequiresCalibration)
{
    hw::CouplingMap lin = hw::linearDevice(5);
    Rng inst_rng(74);
    graph::Graph g = graph::erdosRenyi(4, 0.6, inst_rng);
    QaoaCompileOptions opts;
    opts.method = Method::Vic;
    opts.calibration = nullptr;
    EXPECT_THROW(compileQaoaMaxcut(g, lin, opts), std::runtime_error);
}

TEST(Api, RejectsOversizedProblem)
{
    hw::CouplingMap lin = hw::linearDevice(3);
    graph::Graph g = graph::completeGraph(4);
    QaoaCompileOptions opts;
    opts.method = Method::Naive;
    EXPECT_THROW(compileQaoaMaxcut(g, lin, opts), std::runtime_error);
}

TEST(Api, RejectsMismatchedAngles)
{
    hw::CouplingMap lin = hw::linearDevice(4);
    graph::Graph g = graph::cycleGraph(3);
    QaoaCompileOptions opts;
    opts.gammas = {0.1, 0.2};
    opts.betas = {0.1};
    EXPECT_THROW(compileQaoaMaxcut(g, lin, opts), std::runtime_error);
}

TEST(Api, DeterministicForFixedSeed)
{
    hw::CouplingMap tokyo = hw::ibmqTokyo20();
    Rng inst_rng(75);
    graph::Graph g = graph::randomRegular(12, 3, inst_rng);
    for (Method m : {Method::Naive, Method::Qaim, Method::Ip, Method::Ic}) {
        QaoaCompileOptions opts;
        opts.method = m;
        opts.seed = 31;
        transpiler::CompileResult a = compileQaoaMaxcut(g, tokyo, opts);
        transpiler::CompileResult b = compileQaoaMaxcut(g, tokyo, opts);
        EXPECT_EQ(a.report.depth, b.report.depth) << methodName(m);
        EXPECT_EQ(a.report.gate_count, b.report.gate_count);
        EXPECT_EQ(a.initial_layout, b.initial_layout);
    }
}

TEST(Api, IcUsuallyShallowerThanNaive)
{
    // The paper's headline: IC reduces depth markedly vs NAIVE.  Compare
    // means over a few instances (not a per-instance guarantee).
    hw::CouplingMap tokyo = hw::ibmqTokyo20();
    Rng inst_rng(76);
    double naive_total = 0.0, ic_total = 0.0;
    for (int trial = 0; trial < 6; ++trial) {
        graph::Graph g = graph::randomRegular(14, 4, inst_rng);
        QaoaCompileOptions opts;
        opts.seed = static_cast<std::uint64_t>(trial);
        opts.method = Method::Naive;
        naive_total += compileQaoaMaxcut(g, tokyo, opts).report.depth;
        opts.method = Method::Ic;
        ic_total += compileQaoaMaxcut(g, tokyo, opts).report.depth;
    }
    EXPECT_LT(ic_total, naive_total);
}

TEST(Api, PeepholeNeverIncreasesGateCount)
{
    hw::CouplingMap tokyo = hw::ibmqTokyo20();
    hw::CalibrationData calib(tokyo, 0.02);
    Rng inst_rng(78);
    graph::Graph g = graph::randomRegular(12, 4, inst_rng);
    for (Method m : kAllMethods) {
        QaoaCompileOptions opts;
        opts.method = m;
        opts.calibration = &calib;
        opts.seed = 3;
        transpiler::CompileResult plain = compileQaoaMaxcut(g, tokyo,
                                                            opts);
        opts.peephole = true;
        transpiler::CompileResult tight = compileQaoaMaxcut(g, tokyo,
                                                            opts);
        EXPECT_LE(tight.report.gate_count, plain.report.gate_count)
            << methodName(m);
        EXPECT_TRUE(transpiler::satisfiesCoupling(tight.compiled, tokyo));
    }
}

TEST(Api, PackingLimitFlowsThroughIc)
{
    hw::CouplingMap grid = hw::gridDevice(3, 3);
    Rng inst_rng(77);
    graph::Graph g = graph::randomRegular(8, 3, inst_rng);
    QaoaCompileOptions opts;
    opts.method = Method::Ic;
    opts.decompose_to_basis = false;
    opts.packing_limit = 1;
    transpiler::CompileResult serial = compileQaoaMaxcut(g, grid, opts);
    opts.packing_limit = 1 << 30;
    transpiler::CompileResult packed = compileQaoaMaxcut(g, grid, opts);
    EXPECT_GE(serial.report.depth, packed.report.depth);
}

} // namespace
} // namespace qaoa::core
