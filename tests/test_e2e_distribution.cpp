/** @file
 * End-to-end semantic test: for every methodology, the compiled
 * hardware circuit must produce exactly the same classical output
 * distribution as the uncompiled logical circuit (infinite-shot limit,
 * computed from statevector probabilities).  This is the strongest
 * correctness property of the whole stack: layout, routing, measure
 * remapping and basis translation all have to be right at once.
 */

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/maxcut.hpp"
#include "hardware/devices.hpp"
#include "metrics/harness.hpp"
#include "qaoa/api.hpp"
#include "qaoa/problem.hpp"
#include "test_util.hpp"

namespace qaoa::core {
namespace {

class DistributionSweep
    : public ::testing::TestWithParam<std::tuple<Method, int>>
{
};

TEST_P(DistributionSweep, CompiledMatchesLogical)
{
    auto [method, seed] = GetParam();
    Rng inst_rng(static_cast<std::uint64_t>(seed) + 100);
    graph::Graph g = graph::erdosRenyi(5, 0.5, inst_rng);
    if (g.numEdges() == 0)
        g.addEdge(0, 1);

    hw::CouplingMap grid = hw::gridDevice(2, 3);
    hw::CalibrationData calib(grid, 0.02);

    QaoaCompileOptions opts;
    opts.method = method;
    opts.calibration = &calib;
    opts.seed = static_cast<std::uint64_t>(seed);
    opts.gammas = {0.8};
    opts.betas = {0.4};
    transpiler::CompileResult r = compileQaoaMaxcut(g, grid, opts);

    circuit::Circuit logical =
        buildQaoaCircuit(g, opts.gammas, opts.betas, /*measure=*/true);

    auto expected = testutil::exactClassicalDistribution(logical);
    auto actual = testutil::exactClassicalDistribution(r.compiled);
    EXPECT_LT(testutil::totalVariation(expected, actual), 1e-9)
        << methodName(method) << " seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(
    MethodsAndSeeds, DistributionSweep,
    ::testing::Combine(::testing::Values(Method::Naive, Method::GreedyV,
                                         Method::Qaim, Method::Ip,
                                         Method::Ic, Method::Vic),
                       ::testing::Values(1, 2, 3)));

TEST(Distribution, MultiLevelCompiledMatchesLogical)
{
    Rng inst_rng(500);
    graph::Graph g = graph::randomRegular(4, 3, inst_rng);
    hw::CouplingMap lin = hw::linearDevice(5);
    hw::CalibrationData calib(lin, 0.02);

    QaoaCompileOptions opts;
    opts.method = Method::Ic;
    opts.calibration = &calib;
    opts.gammas = {0.8, 0.3};
    opts.betas = {0.4, 0.2};
    transpiler::CompileResult r = compileQaoaMaxcut(g, lin, opts);

    circuit::Circuit logical =
        buildQaoaCircuit(g, opts.gammas, opts.betas, true);
    auto expected = testutil::exactClassicalDistribution(logical);
    auto actual = testutil::exactClassicalDistribution(r.compiled);
    EXPECT_LT(testutil::totalVariation(expected, actual), 1e-9);
}

TEST(Distribution, ExpectedCutInvariantUnderCompilation)
{
    // The quantity QAOA actually optimizes survives compilation intact.
    Rng inst_rng(501);
    graph::Graph g = graph::erdosRenyi(6, 0.5, inst_rng);
    hw::CouplingMap melbourne = hw::ibmqMelbourne15();
    hw::CalibrationData calib = hw::melbourneCalibration(melbourne);

    QaoaCompileOptions opts;
    opts.method = Method::Vic;
    opts.calibration = &calib;
    transpiler::CompileResult r = compileQaoaMaxcut(g, melbourne, opts);

    auto dist = testutil::exactClassicalDistribution(r.compiled);
    double compiled_cut = 0.0;
    for (const auto &[bits, p] : dist)
        compiled_cut += p * graph::cutValue(g, bits);
    double logical_cut =
        metrics::exactExpectedCut(g, opts.gammas, opts.betas);
    EXPECT_NEAR(compiled_cut, logical_cut, 1e-9);
}

TEST(Distribution, PeepholeDoesNotChangeSemantics)
{
    Rng inst_rng(503);
    graph::Graph g = graph::erdosRenyi(5, 0.6, inst_rng);
    if (g.numEdges() == 0)
        g.addEdge(0, 1);
    hw::CouplingMap grid = hw::gridDevice(2, 3);
    hw::CalibrationData calib(grid, 0.02);
    circuit::Circuit logical = buildQaoaCircuit(g, {0.8}, {0.4}, true);
    auto expected = testutil::exactClassicalDistribution(logical);
    for (Method m : {Method::Qaim, Method::Ip, Method::Ic, Method::Vic}) {
        QaoaCompileOptions opts;
        opts.method = m;
        opts.calibration = &calib;
        opts.gammas = {0.8};
        opts.betas = {0.4};
        opts.peephole = true;
        transpiler::CompileResult r = compileQaoaMaxcut(g, grid, opts);
        auto actual = testutil::exactClassicalDistribution(r.compiled);
        EXPECT_LT(testutil::totalVariation(expected, actual), 1e-9)
            << methodName(m);
    }
}

TEST(Distribution, PackingLimitDoesNotChangeSemantics)
{
    Rng inst_rng(502);
    graph::Graph g = graph::randomRegular(6, 3, inst_rng);
    hw::CouplingMap grid = hw::gridDevice(2, 3);
    circuit::Circuit logical = buildQaoaCircuit(g, {0.8}, {0.4}, true);
    auto expected = testutil::exactClassicalDistribution(logical);

    for (int limit : {1, 2, 3}) {
        QaoaCompileOptions opts;
        opts.method = Method::Ic;
        opts.packing_limit = limit;
        opts.gammas = {0.8};
        opts.betas = {0.4};
        transpiler::CompileResult r = compileQaoaMaxcut(g, grid, opts);
        auto actual = testutil::exactClassicalDistribution(r.compiled);
        EXPECT_LT(testutil::totalVariation(expected, actual), 1e-9)
            << "packing limit " << limit;
    }
}

} // namespace
} // namespace qaoa::core
