/** @file Tests for tensored readout-error mitigation. */

#include <gtest/gtest.h>

#include "hardware/devices.hpp"
#include "metrics/approx_ratio.hpp"
#include "sim/noise.hpp"
#include "sim/readout_mitigation.hpp"

namespace qaoa::sim {
namespace {

using circuit::Circuit;
using circuit::Gate;

TEST(ReadoutModel, Constructors)
{
    ReadoutModel m = ReadoutModel::uniform(3, 0.1);
    ASSERT_EQ(m.flip.size(), 3u);
    EXPECT_DOUBLE_EQ(m.flip[2], 0.1);
    EXPECT_THROW(ReadoutModel::uniform(0, 0.1), std::runtime_error);
    EXPECT_THROW(ReadoutModel::uniform(2, 0.5), std::runtime_error);
}

TEST(ReadoutModel, FromCircuitUsesMeasureMap)
{
    hw::CouplingMap lin = hw::linearDevice(3);
    hw::CalibrationData calib(lin);
    calib.setReadoutError(2, 0.07);
    Circuit c(3);
    c.add(Gate::measure(2, 0)); // physical 2 -> classical bit 0
    c.add(Gate::measure(0, 1));
    ReadoutModel m = ReadoutModel::fromCircuit(c, calib);
    ASSERT_EQ(m.flip.size(), 2u);
    EXPECT_DOUBLE_EQ(m.flip[0], 0.07);
    EXPECT_DOUBLE_EQ(m.flip[1], calib.readoutError(0));
}

TEST(Mitigation, ZeroNoiseIsIdentity)
{
    Counts counts;
    counts[0b00] = 600;
    counts[0b11] = 400;
    auto out = mitigateReadout(counts, ReadoutModel::uniform(2, 0.0));
    EXPECT_NEAR(out[0b00], 0.6, 1e-12);
    EXPECT_NEAR(out[0b11], 0.4, 1e-12);
}

TEST(Mitigation, ExactlyInvertsTheChannel)
{
    // Forward-apply the confusion channel analytically to a known
    // distribution, then mitigate: must recover the original.
    const double f = 0.12;
    // True distribution: P(00) = 0.7, P(11) = 0.3 over 2 bits.
    auto forward = [&](double p00, double p11) {
        // per-bit: P(read b' | true b).
        std::map<std::uint64_t, double> noisy;
        for (int read = 0; read < 4; ++read) {
            double total = 0.0;
            for (const auto &[truth, pt] :
                 std::map<std::uint64_t, double>{{0b00, p00},
                                                 {0b11, p11}}) {
                double prob = pt;
                for (int b = 0; b < 2; ++b) {
                    bool rb = (read >> b) & 1;
                    bool tb = (truth >> b) & 1ULL;
                    prob *= (rb == tb) ? (1.0 - f) : f;
                }
                total += prob;
            }
            noisy[static_cast<std::uint64_t>(read)] = total;
        }
        return noisy;
    };
    auto noisy = forward(0.7, 0.3);
    Counts counts;
    for (const auto &[bits, prob] : noisy)
        counts[bits] = static_cast<std::uint64_t>(prob * 1e9 + 0.5);
    auto out = mitigateReadout(counts, ReadoutModel::uniform(2, f));
    EXPECT_NEAR(out[0b00], 0.7, 1e-6);
    EXPECT_NEAR(out[0b11], 0.3, 1e-6);
    double others = 0.0;
    for (const auto &[bits, prob] : out)
        if (bits != 0b00 && bits != 0b11)
            others += prob;
    EXPECT_NEAR(others, 0.0, 1e-6);
}

TEST(Mitigation, ImprovesNoisySampledBell)
{
    hw::CouplingMap lin = hw::linearDevice(2);
    hw::CalibrationData calib(lin, 0.0, 0.0, 0.08);
    Circuit bell(2);
    bell.add(Gate::h(0));
    bell.add(Gate::cnot(0, 1));
    bell.add(Gate::measure(0, 0));
    bell.add(Gate::measure(1, 1));
    Rng rng(21);
    Counts noisy = noisySample(bell, calib, 40000, rng);

    auto raw_bad = [&](const std::map<std::uint64_t, double> &d) {
        double bad = 0.0;
        for (const auto &[bits, p] : d)
            if (bits == 0b01 || bits == 0b10)
                bad += p;
        return bad;
    };
    std::map<std::uint64_t, double> unmitigated;
    std::uint64_t total = 0;
    for (const auto &[b, n] : noisy)
        total += n;
    for (const auto &[b, n] : noisy)
        unmitigated[b] = static_cast<double>(n) / total;

    auto mitigated = mitigateReadout(
        noisy, ReadoutModel::fromCircuit(bell, calib));
    EXPECT_LT(raw_bad(mitigated), raw_bad(unmitigated));
    EXPECT_LT(raw_bad(mitigated), 0.02);
}

TEST(Mitigation, RejectsBadInputs)
{
    Counts counts;
    counts[0b10] = 5;
    EXPECT_THROW(mitigateReadout({}, ReadoutModel::uniform(2, 0.1)),
                 std::runtime_error);
    EXPECT_THROW(mitigateReadout(counts, ReadoutModel::uniform(1, 0.1)),
                 std::runtime_error); // key outside bit space
}

TEST(Mitigation, OutputIsNormalizedDistribution)
{
    Counts counts;
    counts[0] = 10;
    counts[5] = 20;
    counts[7] = 5;
    auto out = mitigateReadout(counts, ReadoutModel::uniform(3, 0.2));
    double sum = 0.0;
    for (const auto &[bits, p] : out) {
        EXPECT_GE(p, 0.0);
        sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
}

} // namespace
} // namespace qaoa::sim
