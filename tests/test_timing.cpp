/** @file Tests for the execution-time and decoherence models. */

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "hardware/devices.hpp"
#include "metrics/timing.hpp"
#include "qaoa/api.hpp"

namespace qaoa::metrics {
namespace {

using circuit::Circuit;
using circuit::Gate;

TEST(GateDurations, PerClassValues)
{
    GateDurations d;
    EXPECT_DOUBLE_EQ(d.of(Gate::h(0)), 50.0);
    EXPECT_DOUBLE_EQ(d.of(Gate::u3(0, 1, 2, 3)), 50.0);
    EXPECT_DOUBLE_EQ(d.of(Gate::u1(0, 1.0)), 0.0);
    EXPECT_DOUBLE_EQ(d.of(Gate::rz(0, 1.0)), 0.0);
    EXPECT_DOUBLE_EQ(d.of(Gate::cnot(0, 1)), 300.0);
    EXPECT_DOUBLE_EQ(d.of(Gate::cphase(0, 1, 0.5)), 600.0);
    EXPECT_DOUBLE_EQ(d.of(Gate::swap(0, 1)), 900.0);
    EXPECT_DOUBLE_EQ(d.of(Gate::measure(0, 0)), 1000.0);
    EXPECT_DOUBLE_EQ(d.of(Gate::barrier()), 0.0);
}

TEST(ExecutionTime, SequentialSums)
{
    Circuit c(1);
    c.add(Gate::h(0));       // 50
    c.add(Gate::h(0));       // 50
    c.add(Gate::measure(0, 0)); // 1000
    EXPECT_DOUBLE_EQ(executionTimeNs(c), 1100.0);
}

TEST(ExecutionTime, ParallelGatesOverlap)
{
    Circuit c(4);
    c.add(Gate::cnot(0, 1));
    c.add(Gate::cnot(2, 3));
    EXPECT_DOUBLE_EQ(executionTimeNs(c), 300.0);
    Circuit serial(3);
    serial.add(Gate::cnot(0, 1));
    serial.add(Gate::cnot(1, 2));
    EXPECT_DOUBLE_EQ(executionTimeNs(serial), 600.0);
}

TEST(ExecutionTime, VirtualGatesAreFree)
{
    Circuit c(1);
    for (int i = 0; i < 100; ++i)
        c.add(Gate::u1(0, 0.1));
    EXPECT_DOUBLE_EQ(executionTimeNs(c), 0.0);
}

TEST(ExecutionTime, BarrierSynchronizes)
{
    Circuit c(2);
    c.add(Gate::h(0)); // 0..50
    c.add(Gate::barrier());
    c.add(Gate::h(1)); // 50..100 after sync
    EXPECT_DOUBLE_EQ(executionTimeNs(c), 100.0);
}

TEST(ExecutionTime, CustomDurations)
{
    GateDurations d;
    d.two_qubit_ns = 100.0;
    Circuit c(2);
    c.add(Gate::cphase(0, 1, 0.3));
    EXPECT_DOUBLE_EQ(executionTimeNs(c, d), 200.0);
}

TEST(Decoherence, IdleQubitsDoNotDecay)
{
    Circuit c(3);
    c.add(Gate::h(0)); // qubits 1, 2 never used
    double f = decoherenceFactor(c, 1000.0);
    EXPECT_NEAR(f, std::exp(-50.0 / 1000.0), 1e-12);
}

TEST(Decoherence, DeeperCircuitsDecayMore)
{
    Circuit shallow(2), deep(2);
    shallow.add(Gate::cnot(0, 1));
    for (int i = 0; i < 10; ++i)
        deep.add(Gate::cnot(0, 1));
    EXPECT_GT(decoherenceFactor(shallow), decoherenceFactor(deep));
}

TEST(Decoherence, RejectsBadT2)
{
    Circuit c(1);
    EXPECT_THROW(decoherenceFactor(c, 0.0), std::runtime_error);
}

TEST(Timing, ShallowCompilationRunsFaster)
{
    // The depth reductions of IC translate to shorter execution time —
    // the §II claim that motivates the whole paper.
    hw::CouplingMap tokyo = hw::ibmqTokyo20();
    Rng rng(77);
    double naive_total = 0.0, ic_total = 0.0;
    for (int trial = 0; trial < 5; ++trial) {
        graph::Graph g = graph::randomRegular(14, 4, rng);
        core::QaoaCompileOptions opts;
        opts.seed = static_cast<std::uint64_t>(trial);
        opts.method = core::Method::Naive;
        naive_total += executionTimeNs(
            core::compileQaoaMaxcut(g, tokyo, opts).compiled);
        opts.method = core::Method::Ic;
        ic_total += executionTimeNs(
            core::compileQaoaMaxcut(g, tokyo, opts).compiled);
    }
    EXPECT_LT(ic_total, naive_total);
}

} // namespace
} // namespace qaoa::metrics
