/** @file
 * Tests for incremental compilation (IC, §IV-C) and its variation-aware
 * variant (VIC, §IV-D).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "graph/generators.hpp"
#include "hardware/devices.hpp"
#include "qaoa/incremental.hpp"
#include "qaoa/qaim.hpp"
#include "transpiler/router.hpp"
#include "verify/verifier.hpp"

namespace qaoa::core {
namespace {

using transpiler::Layout;

std::vector<ZZOp>
opsOf(const graph::Graph &g)
{
    std::vector<ZZOp> ops;
    for (const auto &e : g.edges())
        ops.push_back({e.u, e.v});
    return ops;
}

TEST(Ic, AllOperationsRoutedExactlyOnce)
{
    Rng inst_rng(44);
    hw::CouplingMap grid = hw::gridDevice(3, 4);
    for (int trial = 0; trial < 8; ++trial) {
        graph::Graph g = graph::erdosRenyi(10, 0.4, inst_rng);
        if (g.numEdges() == 0)
            continue;
        std::vector<ZZOp> ops = opsOf(g);
        IncrementalOptions opts;
        opts.seed = static_cast<std::uint64_t>(trial);
        IncrementalResult r = icCompileCostLayer(
            ops, grid, Layout::identity(10, 12), 0.7, opts);
        // Full translation validation replaces the old coupling/count
        // spot-checks: every op realized exactly once with the right
        // angle on an enabled edge, and the reported final layout equals
        // the SWAP replay.
        std::vector<verify::ZZTerm> terms;
        for (const ZZOp &op : ops)
            terms.push_back({op.a, op.b, 0.7 * op.weight});
        verify::VerifySpec spec;
        spec.map = &grid;
        spec.initial_log_to_phys = Layout::identity(10, 12).logToPhys();
        spec.expected_final = r.final_layout.logToPhys();
        spec.expected_interactions = &terms;
        spec.lift_basis = false;
        spec.lints = false;
        verify::VerifyReport report =
            verify::verifyCircuit(r.physical, spec);
        EXPECT_TRUE(report.spotless()) << report.summary();
        EXPECT_EQ(r.physical.countType(circuit::GateType::SWAP),
                  r.swap_count);
        EXPECT_GE(r.layer_count, 1);
    }
}

TEST(Ic, FinalLayoutTracksSwaps)
{
    hw::CouplingMap lin = hw::linearDevice(4);
    // Single far-apart op forces SWAPs; final layout must differ from the
    // initial and remain a valid placement.
    std::vector<ZZOp> ops{{0, 3}};
    IncrementalResult r = icCompileCostLayer(
        ops, lin, Layout::identity(4, 4), 0.5, {});
    EXPECT_GE(r.swap_count, 2);
    std::set<int> used;
    for (int l = 0; l < 4; ++l)
        EXPECT_TRUE(used.insert(r.final_layout.physicalOf(l)).second);
}

TEST(Ic, AdjacentLayerNeedsNoSwaps)
{
    hw::CouplingMap lin = hw::linearDevice(4);
    std::vector<ZZOp> ops{{0, 1}, {2, 3}};
    IncrementalResult r = icCompileCostLayer(
        ops, lin, Layout::identity(4, 4), 0.5, {});
    EXPECT_EQ(r.swap_count, 0);
    EXPECT_EQ(r.layer_count, 1);
}

TEST(Ic, PackingLimitControlsLayerCount)
{
    hw::CouplingMap lin = hw::linearDevice(6);
    std::vector<ZZOp> ops{{0, 1}, {2, 3}, {4, 5}};
    IncrementalOptions one;
    one.packing_limit = 1;
    IncrementalResult r1 = icCompileCostLayer(
        ops, lin, Layout::identity(6, 6), 0.5, one);
    EXPECT_EQ(r1.layer_count, 3);
    IncrementalResult r3 = icCompileCostLayer(
        ops, lin, Layout::identity(6, 6), 0.5, {});
    EXPECT_EQ(r3.layer_count, 1);
}

TEST(Ic, CloserOperationsRouteFirst)
{
    // Initial layout: logical i on physical i over a 5-qubit line.
    // Op (0,1) is at distance 1, op (0,4) at distance 4; the distance-1
    // op must appear in the stitched circuit before any SWAP.
    hw::CouplingMap lin = hw::linearDevice(5);
    std::vector<ZZOp> ops{{0, 4}, {0, 1}};
    IncrementalResult r = icCompileCostLayer(
        ops, lin, Layout::identity(5, 5), 0.5, {});
    const auto &gates = r.physical.gates();
    ASSERT_FALSE(gates.empty());
    EXPECT_EQ(gates[0].type, circuit::GateType::CPHASE);
    EXPECT_EQ(std::min(gates[0].q0, gates[0].q1), 0);
    EXPECT_EQ(std::max(gates[0].q0, gates[0].q1), 1);
}

TEST(Ic, GammaPropagatesToGates)
{
    hw::CouplingMap lin = hw::linearDevice(3);
    std::vector<ZZOp> ops{{0, 1, 2.0}}; // weighted edge
    IncrementalResult r = icCompileCostLayer(
        ops, lin, Layout::identity(3, 3), 0.4, {});
    ASSERT_EQ(r.physical.gateCount(), 1);
    EXPECT_DOUBLE_EQ(r.physical.gates()[0].params[0], 0.8);
}

TEST(Vic, PrefersReliableOperationFirst)
{
    // Fig. 6(e): Op1 (q0, q1) has success 0.90, Op2 (q0, q5) has 0.82;
    // both are hop-distance 1, but VIC must schedule Op1 first because
    // its weighted distance is smaller.  (Both ops share q0, so they land
    // in different layers and the order is observable.)
    graph::Graph g(6);
    g.addEdge(0, 1);
    g.addEdge(0, 5);
    g.addEdge(1, 2);
    g.addEdge(1, 4);
    g.addEdge(2, 3);
    g.addEdge(3, 4);
    g.addEdge(4, 5);
    hw::CouplingMap dev(std::move(g), "fig6");
    hw::CalibrationData calib(dev, 0.02);
    auto set_rate = [&](int a, int b, double cphase_rate) {
        calib.setCnotError(a, b, 1.0 - std::sqrt(cphase_rate));
    };
    set_rate(0, 1, 0.90);
    set_rate(0, 5, 0.82);
    set_rate(1, 2, 0.85);
    set_rate(1, 4, 0.81);
    set_rate(2, 3, 0.89);
    set_rate(3, 4, 0.88);
    set_rate(4, 5, 0.84);
    graph::DistanceMatrix weighted = hw::weightedDistances(dev, calib);

    std::vector<ZZOp> ops{{0, 5}, {0, 1}}; // unreliable listed first
    IncrementalOptions opts;
    opts.distances = &weighted;
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
        opts.seed = seed;
        IncrementalResult r = icCompileCostLayer(
            ops, dev, Layout::identity(6, 6), 0.5, opts);
        // First CPHASE in the stitched circuit is the reliable (0,1).
        const circuit::Gate *first = nullptr;
        for (const auto &gate : r.physical.gates())
            if (gate.type == circuit::GateType::CPHASE) {
                first = &gate;
                break;
            }
        ASSERT_NE(first, nullptr);
        EXPECT_EQ(std::min(first->q0, first->q1), 0);
        EXPECT_EQ(std::max(first->q0, first->q1), 1) << "seed " << seed;
    }
}

TEST(Ic, EmptyOpsYieldEmptyCircuit)
{
    hw::CouplingMap lin = hw::linearDevice(3);
    IncrementalResult r = icCompileCostLayer(
        {}, lin, Layout::identity(3, 3), 0.5, {});
    EXPECT_EQ(r.physical.gateCount(), 0);
    EXPECT_EQ(r.layer_count, 0);
}

TEST(Ic, RejectsBadPackingLimit)
{
    hw::CouplingMap lin = hw::linearDevice(3);
    IncrementalOptions opts;
    opts.packing_limit = 0;
    EXPECT_THROW(icCompileCostLayer({{0, 1}}, lin,
                                    Layout::identity(3, 3), 0.5, opts),
                 std::runtime_error);
}

} // namespace
} // namespace qaoa::core
