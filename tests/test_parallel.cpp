/** @file Tests for the common parallel-for / thread-pool substrate. */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/parallel.hpp"

namespace qaoa::par {
namespace {

/** Restores automatic thread resolution when a test exits. */
struct ThreadGuard
{
    ~ThreadGuard() { setThreadCount(0); }
};

TEST(Parallel, ThreadCountIsPositive)
{
    ThreadGuard guard;
    setThreadCount(0);
    EXPECT_GE(threadCount(), 1);
}

TEST(Parallel, SetThreadCountOverrides)
{
    ThreadGuard guard;
    setThreadCount(3);
    EXPECT_EQ(threadCount(), 3);
    setThreadCount(0);
    EXPECT_GE(threadCount(), 1);
}

TEST(Parallel, ParallelForCoversEveryIndexOnce)
{
    ThreadGuard guard;
    // Large enough to clear kSerialCutoff and spread over many chunks.
    const std::uint64_t n = kSerialCutoff * 4 + 123;
    for (int threads : {1, 2, 8}) {
        setThreadCount(threads);
        std::vector<std::atomic<int>> hits(n);
        parallelFor(0, n, [&](std::uint64_t b, std::uint64_t e) {
            for (std::uint64_t i = b; i < e; ++i)
                hits[i].fetch_add(1, std::memory_order_relaxed);
        });
        for (std::uint64_t i = 0; i < n; ++i)
            ASSERT_EQ(hits[i].load(), 1) << "index " << i << " at "
                                         << threads << " threads";
    }
}

TEST(Parallel, ParallelForHonorsSubrange)
{
    ThreadGuard guard;
    setThreadCount(4);
    const std::uint64_t n = kSerialCutoff * 2;
    std::vector<int> hits(2 * n, 0);
    parallelFor(n / 2, n / 2 + n, [&](std::uint64_t b, std::uint64_t e) {
        for (std::uint64_t i = b; i < e; ++i)
            ++hits[i];
    });
    for (std::uint64_t i = 0; i < hits.size(); ++i) {
        int expected = (i >= n / 2 && i < n / 2 + n) ? 1 : 0;
        ASSERT_EQ(hits[i], expected) << "index " << i;
    }
}

TEST(Parallel, ReduceSumIsBitIdenticalAcrossThreadCounts)
{
    ThreadGuard guard;
    const std::uint64_t n = kSerialCutoff * 8 + 7;
    // Values with non-associative rounding behavior.
    std::vector<double> values(n);
    for (std::uint64_t i = 0; i < n; ++i)
        values[i] = 1.0 / static_cast<double>(i + 1);
    auto chunk_sum = [&](std::uint64_t b, std::uint64_t e) {
        double s = 0.0;
        for (std::uint64_t i = b; i < e; ++i)
            s += values[i];
        return s;
    };
    setThreadCount(1);
    const double serial = parallelReduceSum(0, n, chunk_sum);
    for (int threads : {2, 3, 8}) {
        setThreadCount(threads);
        double parallel = parallelReduceSum(0, n, chunk_sum);
        // Bit-identical, not just close: fixed chunking + ordered
        // combine is the determinism contract the sampler relies on.
        EXPECT_EQ(serial, parallel) << "at " << threads << " threads";
    }
}

TEST(Parallel, TasksRunEachIndexOnce)
{
    ThreadGuard guard;
    setThreadCount(4);
    std::vector<std::atomic<int>> hits(37);
    parallelForTasks(hits.size(), [&](std::uint64_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < hits.size(); ++i)
        ASSERT_EQ(hits[i].load(), 1);
}

TEST(Parallel, ExceptionsPropagateToCaller)
{
    ThreadGuard guard;
    setThreadCount(4);
    EXPECT_THROW(
        parallelForTasks(16,
                         [&](std::uint64_t i) {
                             if (i == 7)
                                 throw std::runtime_error("boom");
                         }),
        std::runtime_error);
    // The pool survives a failed region.
    std::atomic<std::uint64_t> sum{0};
    parallelForTasks(16, [&](std::uint64_t i) {
        sum.fetch_add(i, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 120u);
}

TEST(Parallel, NestedRegionsRunInline)
{
    ThreadGuard guard;
    setThreadCount(4);
    std::atomic<std::uint64_t> total{0};
    parallelForTasks(8, [&](std::uint64_t) {
        EXPECT_TRUE(inParallelRegion());
        // A nested region must not deadlock; it degrades to serial.
        std::uint64_t local = 0;
        parallelFor(0, kSerialCutoff * 2,
                    [&](std::uint64_t b, std::uint64_t e) {
                        local += e - b;
                    });
        total.fetch_add(local, std::memory_order_relaxed);
    });
    EXPECT_EQ(total.load(), 8 * kSerialCutoff * 2);
    EXPECT_FALSE(inParallelRegion());
}

TEST(Parallel, ScopedInlineRegionMakesNestedWorkInline)
{
    ThreadGuard guard;
    setThreadCount(4);
    EXPECT_FALSE(inParallelRegion());
    {
        ScopedInlineRegion inline_region;
        EXPECT_TRUE(inParallelRegion());
        // Parallel calls under the marker degrade to serial inline
        // execution instead of taking the shared pool's region lock.
        std::uint64_t total = 0;
        parallelFor(0, 100,
                    [&](std::uint64_t b, std::uint64_t e) {
                        total += e - b;
                    });
        EXPECT_EQ(total, 100u);
    }
    EXPECT_FALSE(inParallelRegion());
}

TEST(Parallel, WorkerGroupRunsEveryBodyAndJoins)
{
    WorkerGroup group;
    std::atomic<int> mask{0};
    group.start(4, [&](int worker) {
        mask.fetch_or(1 << worker, std::memory_order_relaxed);
    });
    EXPECT_EQ(group.size(), 4);
    group.join();
    EXPECT_EQ(mask.load(), 0b1111);
    EXPECT_EQ(group.size(), 0);

    // The group is reusable after join().
    group.start(2, [&](int worker) {
        mask.fetch_or(1 << (4 + worker), std::memory_order_relaxed);
    });
    group.join();
    EXPECT_EQ(mask.load(), 0b111111);
}

TEST(Parallel, WorkerGroupRethrowsFirstWorkerException)
{
    WorkerGroup group;
    std::atomic<int> ran{0};
    group.start(3, [&](int worker) {
        ++ran;
        if (worker == 1)
            throw std::runtime_error("worker 1 exploded");
    });
    try {
        group.join();
        FAIL() << "join() must rethrow the captured worker exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "worker 1 exploded");
    }
    EXPECT_EQ(ran.load(), 3) << "other workers still ran to completion";
}

TEST(Parallel, EmptyRangesAreNoOps)
{
    ThreadGuard guard;
    setThreadCount(4);
    bool ran = false;
    parallelFor(5, 5, [&](std::uint64_t, std::uint64_t) { ran = true; });
    parallelForTasks(0, [&](std::uint64_t) { ran = true; });
    EXPECT_FALSE(ran);
    EXPECT_EQ(parallelReduceSum(9, 3,
                                [](std::uint64_t, std::uint64_t) {
                                    return 1.0;
                                }),
              0.0);
}

} // namespace
} // namespace qaoa::par
