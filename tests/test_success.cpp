/** @file Tests for the success-probability metric (§II). */

#include <gtest/gtest.h>

#include "hardware/devices.hpp"
#include "sim/success.hpp"

namespace qaoa::sim {
namespace {

using circuit::Circuit;
using circuit::Gate;

TEST(GateError, CostModel)
{
    hw::CouplingMap lin = hw::linearDevice(3);
    hw::CalibrationData calib(lin, 0.1, 0.01, 0.05);

    EXPECT_DOUBLE_EQ(gateErrorRate(Gate::u1(0, 0.3), calib), 0.0);
    EXPECT_DOUBLE_EQ(gateErrorRate(Gate::barrier(), calib), 0.0);
    EXPECT_DOUBLE_EQ(gateErrorRate(Gate::u2(1, 0.1, 0.2), calib), 0.01);
    EXPECT_DOUBLE_EQ(gateErrorRate(Gate::h(2), calib), 0.01);
    EXPECT_DOUBLE_EQ(gateErrorRate(Gate::cnot(0, 1), calib), 0.1);
    EXPECT_NEAR(gateErrorRate(Gate::cphase(0, 1, 0.5), calib),
                1.0 - 0.9 * 0.9, 1e-12);
    EXPECT_NEAR(gateErrorRate(Gate::swap(1, 2), calib),
                1.0 - 0.9 * 0.9 * 0.9, 1e-12);
    EXPECT_DOUBLE_EQ(gateErrorRate(Gate::measure(1, 1), calib), 0.05);
}

TEST(SuccessProbability, ProductFormula)
{
    hw::CouplingMap lin = hw::linearDevice(2);
    hw::CalibrationData calib(lin, 0.1, 0.01, 0.05);
    Circuit c(2);
    c.add(Gate::h(0));        // 0.99
    c.add(Gate::cnot(0, 1));  // 0.90
    c.add(Gate::measure(0, 0)); // 0.95
    EXPECT_NEAR(successProbability(c, calib), 0.99 * 0.90 * 0.95, 1e-12);
}

TEST(SuccessProbability, EmptyCircuitIsCertain)
{
    hw::CouplingMap lin = hw::linearDevice(2);
    hw::CalibrationData calib(lin);
    EXPECT_DOUBLE_EQ(successProbability(Circuit(2), calib), 1.0);
}

TEST(SuccessProbability, MoreGatesLowerSuccess)
{
    hw::CouplingMap lin = hw::linearDevice(3);
    hw::CalibrationData calib(lin, 0.05, 0.005, 0.02);
    Circuit small(3), large(3);
    for (int i = 0; i < 3; ++i)
        small.add(Gate::cnot(0, 1));
    for (int i = 0; i < 10; ++i)
        large.add(Gate::cnot(0, 1));
    EXPECT_GT(successProbability(small, calib),
              successProbability(large, calib));
}

TEST(SuccessProbability, ReliableEdgesBeatUnreliable)
{
    // Same circuit shape, different edge quality — the VIC motivation.
    hw::CouplingMap lin = hw::linearDevice(3);
    hw::CalibrationData calib(lin, 0.02);
    calib.setCnotError(1, 2, 0.2);
    Circuit good(3), bad(3);
    good.add(Gate::cphase(0, 1, 0.5));
    bad.add(Gate::cphase(1, 2, 0.5));
    EXPECT_GT(successProbability(good, calib),
              successProbability(bad, calib));
}

TEST(SuccessProbability, U1sAreFree)
{
    hw::CouplingMap lin = hw::linearDevice(2);
    hw::CalibrationData calib(lin, 0.1, 0.05, 0.1);
    Circuit c(2);
    for (int i = 0; i < 50; ++i)
        c.add(Gate::u1(0, 0.1));
    EXPECT_DOUBLE_EQ(successProbability(c, calib), 1.0);
}

} // namespace
} // namespace qaoa::sim
