/** @file Tests for the Circuit container and the §V-A depth metric. */

#include <gtest/gtest.h>

#include "circuit/circuit.hpp"

namespace qaoa::circuit {
namespace {

TEST(Circuit, EmptyCircuit)
{
    Circuit c(3);
    EXPECT_EQ(c.numQubits(), 3);
    EXPECT_EQ(c.gateCount(), 0);
    EXPECT_EQ(c.depth(), 0);
    EXPECT_TRUE(c.empty());
}

TEST(Circuit, AddAndCount)
{
    Circuit c(3);
    c.add(Gate::h(0));
    c.add(Gate::cnot(0, 1));
    c.add(Gate::cnot(1, 2));
    c.add(Gate::measure(2, 2));
    EXPECT_EQ(c.gateCount(), 4);
    EXPECT_EQ(c.twoQubitGateCount(), 2);
    EXPECT_EQ(c.countType(GateType::CNOT), 2);
    EXPECT_EQ(c.countType(GateType::H), 1);
}

TEST(Circuit, RejectsOutOfRangeOperands)
{
    Circuit c(2);
    EXPECT_THROW(c.add(Gate::h(2)), std::runtime_error);
    EXPECT_THROW(c.add(Gate::cnot(0, 5)), std::runtime_error);
}

TEST(Circuit, DepthSequentialVsParallel)
{
    // Two gates on disjoint qubits share one time step.
    Circuit parallel(4);
    parallel.add(Gate::cnot(0, 1));
    parallel.add(Gate::cnot(2, 3));
    EXPECT_EQ(parallel.depth(), 1);

    // Sharing a qubit serializes (the Fig. 1(b) motivation).
    Circuit serial(3);
    serial.add(Gate::cnot(0, 1));
    serial.add(Gate::cnot(1, 2));
    EXPECT_EQ(serial.depth(), 2);
}

TEST(Circuit, MeasurementCountsTowardDepth)
{
    Circuit c(1);
    c.add(Gate::h(0));
    c.add(Gate::measure(0, 0));
    EXPECT_EQ(c.depth(), 2);
}

TEST(Circuit, Figure1RandomVsIntelligentDepth)
{
    // Fig. 1(b) circ-1: random CPHASE order on the 4-node 3-regular
    // graph needs 9 time steps including measurement on all-to-all
    // hardware; Fig. 1(c) circ-2's re-ordering needs 6.
    auto build = [](const std::vector<std::pair<int, int>> &order) {
        Circuit c(4);
        for (int q = 0; q < 4; ++q)
            c.add(Gate::h(q));
        for (auto [a, b] : order)
            c.add(Gate::cphase(a, b, 0.7));
        for (int q = 0; q < 4; ++q)
            c.add(Gate::rx(q, 0.6));
        for (int q = 0; q < 4; ++q)
            c.add(Gate::measure(q, q));
        return c;
    };
    // circ-1 order (Fig. 1(b)): every consecutive pair shares a qubit.
    Circuit circ1 = build({{0, 1}, {1, 2}, {0, 2}, {2, 3}, {1, 3}, {0, 3}});
    // circ-2 order (Fig. 1(c)): three layers of two disjoint CPHASEs.
    Circuit circ2 = build({{0, 1}, {2, 3}, {0, 2}, {1, 3}, {0, 3}, {1, 2}});
    EXPECT_EQ(circ1.depth(), 9);
    EXPECT_EQ(circ2.depth(), 6);
}

TEST(Circuit, BarrierSynchronizesDepth)
{
    Circuit c(2);
    c.add(Gate::h(0));
    c.add(Gate::barrier());
    c.add(Gate::h(1));
    // Without the barrier the two H's would be parallel (depth 1).
    EXPECT_EQ(c.depth(), 2);
    EXPECT_EQ(c.gateCount(), 2); // barrier not counted
}

TEST(Circuit, OpCountsHistogram)
{
    Circuit c(2);
    c.add(Gate::h(0));
    c.add(Gate::h(1));
    c.add(Gate::cnot(0, 1));
    auto counts = c.opCounts();
    EXPECT_EQ(counts.at("h"), 2);
    EXPECT_EQ(counts.at("cx"), 1);
    EXPECT_EQ(counts.size(), 2u);
}

TEST(Circuit, AppendConcatenates)
{
    Circuit a(2);
    a.add(Gate::h(0));
    Circuit b(2);
    b.add(Gate::cnot(0, 1));
    a.append(b);
    EXPECT_EQ(a.gateCount(), 2);
    EXPECT_EQ(a.gates()[1].type, GateType::CNOT);
}

TEST(Circuit, AppendRejectsLargerRegister)
{
    Circuit a(2);
    Circuit b(3);
    EXPECT_THROW(a.append(b), std::runtime_error);
}

TEST(Circuit, ToStringMentionsGates)
{
    Circuit c(2);
    c.add(Gate::cphase(0, 1, 0.25));
    std::string s = c.toString();
    EXPECT_NE(s.find("cphase"), std::string::npos);
    EXPECT_NE(s.find("2 qubits"), std::string::npos);
}

} // namespace
} // namespace qaoa::circuit
