/** @file Tests for the gate unitary matrices: values and unitarity. */

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "sim/gate_matrix.hpp"

namespace qaoa::sim {
namespace {

using circuit::Gate;

constexpr double kPi = std::numbers::pi;

void
expectUnitary2(const Matrix2 &m)
{
    // m * m^dagger == I.
    for (int r = 0; r < 2; ++r) {
        for (int c = 0; c < 2; ++c) {
            Complex sum{0.0, 0.0};
            for (int k = 0; k < 2; ++k)
                sum += m[r * 2 + k] * std::conj(m[c * 2 + k]);
            EXPECT_NEAR(sum.real(), r == c ? 1.0 : 0.0, 1e-12);
            EXPECT_NEAR(sum.imag(), 0.0, 1e-12);
        }
    }
}

void
expectUnitary4(const Matrix4 &m)
{
    for (int r = 0; r < 4; ++r) {
        for (int c = 0; c < 4; ++c) {
            Complex sum{0.0, 0.0};
            for (int k = 0; k < 4; ++k)
                sum += m[r * 4 + k] * std::conj(m[c * 4 + k]);
            EXPECT_NEAR(sum.real(), r == c ? 1.0 : 0.0, 1e-12);
            EXPECT_NEAR(sum.imag(), 0.0, 1e-12);
        }
    }
}

class OneQubitUnitarity : public ::testing::TestWithParam<double>
{
};

TEST_P(OneQubitUnitarity, AllParametricGates)
{
    double theta = GetParam();
    expectUnitary2(gateMatrix1q(Gate::rx(0, theta)));
    expectUnitary2(gateMatrix1q(Gate::ry(0, theta)));
    expectUnitary2(gateMatrix1q(Gate::rz(0, theta)));
    expectUnitary2(gateMatrix1q(Gate::u1(0, theta)));
    expectUnitary2(gateMatrix1q(Gate::u2(0, theta, theta / 2)));
    expectUnitary2(gateMatrix1q(Gate::u3(0, theta, theta / 2, theta / 3)));
}

INSTANTIATE_TEST_SUITE_P(Angles, OneQubitUnitarity,
                         ::testing::Values(0.0, 0.1, kPi / 4, kPi / 2,
                                           1.0, kPi, 4.5, 2 * kPi));

TEST(GateMatrix, FixedOneQubitGates)
{
    expectUnitary2(gateMatrix1q(Gate::h(0)));
    expectUnitary2(gateMatrix1q(Gate::x(0)));
    expectUnitary2(gateMatrix1q(Gate::y(0)));
    expectUnitary2(gateMatrix1q(Gate::z(0)));

    Matrix2 h = gateMatrix1q(Gate::h(0));
    double s = 1.0 / std::sqrt(2.0);
    EXPECT_NEAR(h[0].real(), s, 1e-12);
    EXPECT_NEAR(h[3].real(), -s, 1e-12);

    Matrix2 z = gateMatrix1q(Gate::z(0));
    EXPECT_NEAR(z[3].real(), -1.0, 1e-12);
}

TEST(GateMatrix, TwoQubitUnitarity)
{
    expectUnitary4(gateMatrix2q(Gate::cnot(0, 1)));
    expectUnitary4(gateMatrix2q(Gate::cz(0, 1)));
    expectUnitary4(gateMatrix2q(Gate::swap(0, 1)));
    for (double g : {0.0, 0.5, kPi, 5.0})
        expectUnitary4(gateMatrix2q(Gate::cphase(0, 1, g)));
}

TEST(GateMatrix, CphaseDiagonal)
{
    // diag(1, e^ig, e^ig, 1) in |q1 q0> ordering.
    double g = 0.7;
    Matrix4 m = gateMatrix2q(Gate::cphase(0, 1, g));
    EXPECT_NEAR(m[0].real(), 1.0, 1e-12);
    EXPECT_NEAR(m[5].real(), std::cos(g), 1e-12);
    EXPECT_NEAR(m[5].imag(), std::sin(g), 1e-12);
    EXPECT_NEAR(m[10].real(), std::cos(g), 1e-12);
    EXPECT_NEAR(m[15].real(), 1.0, 1e-12);
    // Off-diagonals zero.
    for (int r = 0; r < 4; ++r) {
        for (int c = 0; c < 4; ++c) {
            if (r != c) {
                EXPECT_NEAR(std::abs(m[r * 4 + c]), 0.0, 1e-12);
            }
        }
    }
}

TEST(GateMatrix, CnotPermutation)
{
    // Control is the low bit: |b a> with a = 1 flips b.
    Matrix4 m = gateMatrix2q(Gate::cnot(0, 1));
    EXPECT_NEAR(m[0 * 4 + 0].real(), 1.0, 1e-12);  // 00 -> 00
    EXPECT_NEAR(m[3 * 4 + 1].real(), 1.0, 1e-12);  // 01 -> 11
    EXPECT_NEAR(m[2 * 4 + 2].real(), 1.0, 1e-12);  // 10 -> 10
    EXPECT_NEAR(m[1 * 4 + 3].real(), 1.0, 1e-12);  // 11 -> 01
}

TEST(GateMatrix, U1IsPhase)
{
    Matrix2 m = gateMatrix1q(Gate::u1(0, kPi));
    EXPECT_NEAR(m[0].real(), 1.0, 1e-12);
    EXPECT_NEAR(m[3].real(), -1.0, 1e-12);
}

TEST(GateMatrix, RejectsWrongArity)
{
    EXPECT_THROW(gateMatrix1q(Gate::cnot(0, 1)), std::runtime_error);
    EXPECT_THROW(gateMatrix2q(Gate::h(0)), std::runtime_error);
    EXPECT_THROW(gateMatrix1q(Gate::measure(0, 0)), std::runtime_error);
}

} // namespace
} // namespace qaoa::sim
