/** @file Tests for the ASCII circuit renderer. */

#include <gtest/gtest.h>

#include "circuit/draw.hpp"

namespace qaoa::circuit {
namespace {

int
countLines(const std::string &s)
{
    int lines = 0;
    for (char ch : s)
        if (ch == '\n')
            ++lines;
    return lines;
}

TEST(Draw, OneRowPerQubit)
{
    Circuit c(3);
    c.add(Gate::h(0));
    std::string art = drawCircuit(c);
    EXPECT_EQ(countLines(art), 3);
    EXPECT_NE(art.find("q0: "), std::string::npos);
    EXPECT_NE(art.find("q2: "), std::string::npos);
}

TEST(Draw, GateLabelsAppear)
{
    Circuit c(2);
    c.add(Gate::h(0));
    c.add(Gate::cnot(0, 1));
    c.add(Gate::cphase(0, 1, 0.7));
    c.add(Gate::swap(0, 1));
    c.add(Gate::measure(1, 1));
    std::string art = drawCircuit(c);
    EXPECT_NE(art.find("H"), std::string::npos);
    EXPECT_NE(art.find("*"), std::string::npos); // control
    EXPECT_NE(art.find("+"), std::string::npos); // CNOT target
    EXPECT_NE(art.find("Z0.70"), std::string::npos);
    EXPECT_NE(art.find("x"), std::string::npos);
    EXPECT_NE(art.find("M1"), std::string::npos);
}

TEST(Draw, ParamsCanBeHidden)
{
    Circuit c(1);
    c.add(Gate::rx(0, 1.234));
    DrawOptions opts;
    opts.show_params = false;
    std::string art = drawCircuit(c, opts);
    EXPECT_NE(art.find("Rx"), std::string::npos);
    EXPECT_EQ(art.find("1.23"), std::string::npos);
}

TEST(Draw, ParallelGatesShareColumn)
{
    Circuit parallel(2);
    parallel.add(Gate::h(0));
    parallel.add(Gate::h(1));
    Circuit serial(2);
    serial.add(Gate::h(0));
    serial.add(Gate::h(0));
    // Parallel drawing is narrower than the serial one.
    std::size_t wp = drawCircuit(parallel).find('\n');
    std::size_t ws = drawCircuit(serial).find('\n');
    EXPECT_LT(wp, ws);
}

TEST(Draw, WideCircuitsTruncate)
{
    Circuit c(1);
    for (int i = 0; i < 200; ++i)
        c.add(Gate::h(0));
    DrawOptions opts;
    opts.max_columns = 40;
    std::string art = drawCircuit(c, opts);
    EXPECT_NE(art.find("..."), std::string::npos);
    std::size_t first_line = art.find('\n');
    EXPECT_LE(first_line, 45u);
}

TEST(Draw, BarrierColumn)
{
    Circuit c(2);
    c.add(Gate::h(0));
    c.add(Gate::barrier());
    c.add(Gate::h(1));
    std::string art = drawCircuit(c);
    EXPECT_NE(art.find("|"), std::string::npos);
}

TEST(Draw, EmptyCircuit)
{
    Circuit c(2);
    std::string art = drawCircuit(c);
    EXPECT_EQ(countLines(art), 2);
}

} // namespace
} // namespace qaoa::circuit
