/**
 * @file
 * Tests for the compile-as-a-service stack: kv codec, crash-safe file
 * helpers, request fingerprints (hash-key completeness), wire framing,
 * the content-addressed cache (eviction, persistence, quarantine), the
 * tenant-fair admission queue and the server end to end.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <limits>
#include <mutex>
#include <random>
#include <sstream>
#include <thread>
#include <vector>

#include "circuit/qbin.hpp"
#include "common/fs.hpp"
#include "common/kv.hpp"
#include "common/parallel.hpp"
#include "graph/generators.hpp"
#include "opt/checkpoint.hpp"
#include "serve/cache.hpp"
#include "serve/protocol.hpp"
#include "serve/queue.hpp"
#include "serve/request.hpp"
#include "serve/server.hpp"

namespace qaoa {
namespace {

using serve::Admission;
using serve::AdmissionQueue;
using serve::CacheEntry;
using serve::CacheLimits;
using serve::CompileCache;
using serve::CompileRequest;
using serve::CompileServer;
using serve::ServeResponse;
using serve::ServerConfig;

std::string
tempDir(const std::string &leaf)
{
    const std::string dir = ::testing::TempDir() + leaf;
    // Fresh directory per test run: remove leftovers from a prior run
    // (std::remove cannot delete a non-empty directory, which would
    // leak stale cache entries into restart tests).
    [[maybe_unused]] const int rc =
        ::system(("rm -rf '" + dir + "'").c_str());
    return dir;
}

CompileRequest
smallRequest(const std::string &id = "r1")
{
    CompileRequest request;
    request.id = id;
    request.problem = graph::cycleGraph(4);
    request.device = "linear6";
    request.method = "ic";
    return request;
}

// ---------------------------------------------------------------- kv --

TEST(KvTest, RoundTripsEscapesAndOrder)
{
    kv::Record rec;
    rec.set("plain", "value");
    rec.set("qasm", "line1\nline2\t\"quoted\"\\end");
    rec.set("empty", "");
    const std::string text = kv::serialize(rec);
    EXPECT_EQ(text.find('\n'), std::string::npos)
        << "serialized record must be one line";
    const kv::Record back = kv::parse(text);
    EXPECT_EQ(back.get("plain"), "value");
    EXPECT_EQ(back.get("qasm"), "line1\nline2\t\"quoted\"\\end");
    EXPECT_EQ(back.get("empty"), "");
    EXPECT_EQ(back.fields().size(), 3u);
    EXPECT_EQ(back.fields()[0].first, "plain");
}

TEST(KvTest, RejectsMalformedDocuments)
{
    EXPECT_THROW(kv::parse(""), std::runtime_error);
    EXPECT_THROW(kv::parse("{\"a\":1}"), std::runtime_error);
    EXPECT_THROW(kv::parse("{\"a\":\"x\"} trailing"), std::runtime_error);
    EXPECT_THROW(kv::parse("{\"a\":\"x\",\"a\":\"y\"}"),
                 std::runtime_error);
    EXPECT_THROW(kv::parse("{\"a\":\"bad\\z\"}"), std::runtime_error);
}

// ------------------------------------------------- atomic writes (S3) --

TEST(FsTest, ConcurrentWritersNeverLeaveTornFile)
{
    const std::string dir = tempDir("qaoa_fs_hammer");
    ASSERT_EQ(0, ::system(("mkdir -p " + dir).c_str()));
    const std::string path = dir + "/slot.json";

    // Two (plus) writers hammer the same content-addressed path with
    // distinct parseable bodies; a reader samples concurrently.  Every
    // observed file must parse — rename(2) publication means no reader
    // can ever see a half-written mixture.
    constexpr int kWriters = 4;
    constexpr int kRounds = 60;
    std::atomic<bool> done{false};
    std::atomic<int> torn{0};

    std::thread reader([&] {
        while (!done.load()) {
            std::string body;
            if (fs::readFile(path, body)) {
                try {
                    const kv::Record rec = kv::parse(body);
                    if (rec.get("payload").size() !=
                        static_cast<std::size_t>(
                            std::stoi(rec.get("size"))))
                        ++torn;
                } catch (const std::exception &) {
                    ++torn;
                }
            }
            std::this_thread::yield();
        }
    });

    par::WorkerGroup writers;
    writers.start(kWriters, [&](int worker) {
        for (int round = 0; round < kRounds; ++round) {
            // Bodies differ per writer/round so a torn mixture of two
            // writes cannot accidentally look consistent.
            const std::string payload(
                static_cast<std::size_t>(64 + 97 * worker + round),
                static_cast<char>('a' + worker));
            kv::Record rec;
            rec.set("size", std::to_string(payload.size()));
            rec.set("payload", payload);
            fs::atomicWriteFile(path, kv::serialize(rec));
        }
    });
    writers.join();
    done.store(true);
    reader.join();

    EXPECT_EQ(torn.load(), 0);
    std::string final_body;
    ASSERT_TRUE(fs::readFile(path, final_body));
    EXPECT_NO_THROW(kv::parse(final_body));
}

TEST(FsTest, WriteFailureSurfacesErrnoDetail)
{
    const std::string path =
        "/nonexistent-qaoa-dir/sub/never/slot.json";
    try {
        fs::atomicWriteFile(path, "body");
        FAIL() << "writing into a missing directory must throw";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("o such file"),
                  std::string::npos)
            << "message should carry strerror(errno) detail, got: "
            << e.what();
    }

    // The checkpoint writer shares the same helper, so its failures
    // carry the same OS-level detail.
    opt::OptCheckpoint checkpoint;
    try {
        opt::saveCheckpointFile(path, checkpoint);
        FAIL() << "checkpoint save into a missing directory must throw";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("o such file"),
                  std::string::npos)
            << e.what();
    }
}

TEST(FsTest, RemoveStaleTempFilesSweepsOrphans)
{
    const std::string dir = tempDir("qaoa_fs_sweep");
    ASSERT_EQ(0, ::system(("mkdir -p " + dir).c_str()));
    std::ofstream(dir + "/x.cce.tmp.123.7") << "orphan";
    std::ofstream(dir + "/keep.cce") << "entry";
    EXPECT_EQ(fs::removeStaleTempFiles(dir), 1);
    std::string body;
    EXPECT_FALSE(fs::readFile(dir + "/x.cce.tmp.123.7", body));
    EXPECT_TRUE(fs::readFile(dir + "/keep.cce", body));
}

// ------------------------------------------- fingerprints (S4 + more) --

TEST(FingerprintTest, ServingMetadataDoesNotChangeTheKey)
{
    CompileRequest a = smallRequest("a");
    CompileRequest b = smallRequest("b");
    b.tenant = "other-tenant";
    b.timeout_ms = 1234.0;
    EXPECT_EQ(serve::requestFingerprint(a), serve::requestFingerprint(b));
}

TEST(FingerprintTest, FaultSpecChangesTheKey)
{
    const CompileRequest base = smallRequest();
    const std::string base_key = serve::requestFingerprint(base);

    CompileRequest dead = base;
    dead.faults.dead_qubits = {2};
    EXPECT_NE(serve::requestFingerprint(dead), base_key);

    CompileRequest edge = base;
    edge.faults.disabled_edges = {{0, 1}};
    EXPECT_NE(serve::requestFingerprint(edge), base_key);

    CompileRequest drift = base;
    drift.faults.drift_multiplier = 1.5;
    EXPECT_NE(serve::requestFingerprint(drift), base_key);

    CompileRequest fseed = base;
    fseed.faults.seed = base.faults.seed + 1;
    EXPECT_NE(serve::requestFingerprint(fseed), base_key);
}

TEST(FingerprintTest, RouterOptionsChangeTheKey)
{
    const CompileRequest base = smallRequest();
    const std::string base_key = serve::requestFingerprint(base);

    CompileRequest weight = base;
    weight.lookahead_weight = 0.75;
    EXPECT_NE(serve::requestFingerprint(weight), base_key);

    CompileRequest depth = base;
    depth.lookahead_depth = 5;
    EXPECT_NE(serve::requestFingerprint(depth), base_key);

    CompileRequest seed = base;
    seed.router_seed = base.router_seed + 1;
    EXPECT_NE(serve::requestFingerprint(seed), base_key);
}

TEST(FingerprintTest, EveryCompileFieldChangesTheKey)
{
    const CompileRequest base = smallRequest();
    const std::string base_key = serve::requestFingerprint(base);
    const auto differs = [&](const CompileRequest &r) {
        return serve::requestFingerprint(r) != base_key;
    };

    CompileRequest r = base;
    r.problem = graph::pathGraph(4);
    EXPECT_TRUE(differs(r)) << "problem graph";
    r = base;
    r.device = "ring6";
    EXPECT_TRUE(differs(r)) << "device";
    r = base;
    r.method = "qaim";
    EXPECT_TRUE(differs(r)) << "method";
    r = base;
    r.gammas = {0.9};
    EXPECT_TRUE(differs(r)) << "gammas";
    r = base;
    r.betas = {0.1};
    EXPECT_TRUE(differs(r)) << "betas";
    r = base;
    r.packing_limit = 2;
    EXPECT_TRUE(differs(r)) << "packing_limit";
    r = base;
    r.seed = base.seed + 1;
    EXPECT_TRUE(differs(r)) << "seed";
    r = base;
    r.decompose = !base.decompose;
    EXPECT_TRUE(differs(r)) << "decompose";
    r = base;
    r.peephole = !base.peephole;
    EXPECT_TRUE(differs(r)) << "peephole";
    r = base;
    r.allow_fallbacks = !base.allow_fallbacks;
    EXPECT_TRUE(differs(r)) << "allow_fallbacks";
    r = base;
    r.verify = !base.verify;
    EXPECT_TRUE(differs(r)) << "verify";
    r = base;
    r.analyze_quality = !base.analyze_quality;
    EXPECT_TRUE(differs(r)) << "analyze_quality";
    r = base;
    r.stage_budget_ms = 500.0;
    EXPECT_TRUE(differs(r)) << "stage_budget_ms";
}

TEST(FingerprintTest, WeightPerturbationBeyondSixDigitsChangesTheKey)
{
    // Default ostream precision renders both weights as "0.123457";
    // the canonical form must keep every bit so the collision guard
    // can never bless a stale circuit compiled for the other weight.
    CompileRequest a = smallRequest();
    a.problem = graph::Graph(2);
    a.problem.addEdge(0, 1, 0.1234567);
    CompileRequest b = smallRequest();
    b.problem = graph::Graph(2);
    b.problem.addEdge(0, 1, 0.1234568);
    EXPECT_NE(serve::requestFingerprint(a), serve::requestFingerprint(b));
    EXPECT_NE(serve::canonicalText(a), serve::canonicalText(b));
}

TEST(RequestTest, RecordRoundTripPreservesHighPrecisionWeights)
{
    CompileRequest request = smallRequest("hi-prec");
    request.problem = graph::Graph(2);
    request.problem.addEdge(0, 1, 0.1234567890123456);
    kv::Record rec;
    serve::requestToRecord(request, rec);
    const CompileRequest back =
        serve::requestFromRecord(rec, /*max_nodes=*/16);
    EXPECT_EQ(back.problem.edgeWeight(0, 1),
              request.problem.edgeWeight(0, 1))
        << "wire round trip must be bit-exact";
    EXPECT_EQ(serve::requestFingerprint(back),
              serve::requestFingerprint(request));
}

TEST(RequestTest, RecordRoundTripPreservesFingerprint)
{
    CompileRequest request = smallRequest("round-trip");
    request.tenant = "team-a";
    request.timeout_ms = 750.0;
    request.faults.dead_qubits = {1};
    request.faults.drift_multiplier = 1.25;
    request.lookahead_weight = 0.6;
    request.gammas = {0.7, 0.4};
    request.betas = {0.35, 0.2};

    kv::Record rec;
    serve::requestToRecord(request, rec);
    const CompileRequest back =
        serve::requestFromRecord(rec, /*max_nodes=*/16);
    EXPECT_EQ(back.id, "round-trip");
    EXPECT_EQ(back.tenant, "team-a");
    EXPECT_EQ(back.timeout_ms, 750.0);
    EXPECT_EQ(serve::requestFingerprint(back),
              serve::requestFingerprint(request));
}

TEST(RequestTest, DecoderRejectsBadRequests)
{
    CompileRequest request = smallRequest();
    {
        kv::Record rec;
        serve::requestToRecord(request, rec);
        EXPECT_THROW(serve::requestFromRecord(rec, /*max_nodes=*/3),
                     std::runtime_error)
            << "graph above the node limit";
    }
    {
        CompileRequest bad = request;
        bad.device = "no-such-device";
        kv::Record rec;
        serve::requestToRecord(bad, rec);
        EXPECT_THROW(serve::requestFromRecord(rec), std::runtime_error);
    }
    {
        CompileRequest bad = request;
        bad.method = "no-such-method";
        kv::Record rec;
        serve::requestToRecord(bad, rec);
        EXPECT_THROW(serve::requestFromRecord(rec), std::runtime_error);
    }
}

TEST(RequestTest, DecoderRejectsEmptyItemsInLists)
{
    const auto with_field = [](const std::string &key,
                               const std::string &value) {
        kv::Record rec;
        serve::requestToRecord(smallRequest(), rec);
        rec.set(key, value);
        return rec;
    };
    EXPECT_THROW(serve::requestFromRecord(with_field("dead_qubits", "1,,2")),
                 std::runtime_error)
        << "empty item inside an int list";
    EXPECT_THROW(serve::requestFromRecord(with_field("dead_qubits", "1,2,")),
                 std::runtime_error)
        << "trailing comma in an int list";
    EXPECT_THROW(
        serve::requestFromRecord(with_field("disabled_edges", "0-1,,1-2")),
        std::runtime_error)
        << "empty item inside an edge list";
}

// ---------------------------------------------------------- protocol --

TEST(ProtocolTest, FramesRoundTripAndEofIsClean)
{
    std::stringstream wire;
    serve::writeFrame(wire, "first");
    serve::writeFrame(wire, "");
    serve::writeFrame(wire, std::string(1000, 'x'));

    std::string payload;
    ASSERT_TRUE(serve::readFrame(wire, payload).ok());
    EXPECT_EQ(payload, "first");
    ASSERT_TRUE(serve::readFrame(wire, payload).ok());
    EXPECT_EQ(payload, "");
    ASSERT_TRUE(serve::readFrame(wire, payload).ok());
    EXPECT_EQ(payload, std::string(1000, 'x'));
    EXPECT_EQ(serve::readFrame(wire, payload).code(),
              qaoa::ErrorCode::EndOfStream)
        << "EOF at a frame boundary is a clean disconnect";
}

TEST(ProtocolTest, TruncationAndOversizeAreStructuredErrors)
{
    {
        std::stringstream wire;
        wire.write("\x00\x00", 2); // Half a length header.
        std::string payload;
        const auto status = serve::readFrame(wire, payload);
        EXPECT_EQ(status.code(), qaoa::ErrorCode::Truncated);
        EXPECT_EQ(status.offset(), 2) << "stopped after 2 header bytes";
    }
    {
        std::stringstream wire;
        serve::writeFrame(wire, "full-frame");
        std::string raw = wire.str();
        raw.resize(raw.size() - 3); // Cut the body short.
        std::stringstream cut(raw);
        std::string payload;
        const auto status = serve::readFrame(cut, payload);
        EXPECT_EQ(status.code(), qaoa::ErrorCode::Truncated);
        EXPECT_EQ(status.offset(), 4 + 10 - 3)
            << "offset counts header + body bytes actually read";
    }
    {
        std::stringstream wire;
        serve::writeFrame(wire, "abcdef");
        std::string payload;
        EXPECT_EQ(serve::readFrame(wire, payload, /*max_bytes=*/3).code(),
                  qaoa::ErrorCode::ResourceExhausted);
    }
    {
        // One truncated length byte: a torn header must surface as a
        // framing error, never read as a clean end-of-stream.
        std::stringstream wire;
        wire.write("\x00", 1);
        std::string payload;
        EXPECT_EQ(serve::readFrame(wire, payload).code(),
                  qaoa::ErrorCode::Truncated);
    }
}

TEST(ProtocolTest, StreamErrorBeforeHeaderIsNotCleanEof)
{
    // A stream that yields zero bytes for a reason other than EOF
    // (here: failbit already set, as after an upstream I/O error) must
    // report an I/O error, not masquerade as a clean disconnect.
    std::stringstream wire;
    serve::writeFrame(wire, "pending");
    wire.setstate(std::ios::failbit);
    std::string payload;
    EXPECT_EQ(serve::readFrame(wire, payload).code(),
              qaoa::ErrorCode::IoError);

    // Whereas repeated reads at a true EOF keep reporting clean
    // disconnect (idempotent for retry loops).
    std::stringstream empty;
    EXPECT_EQ(serve::readFrame(empty, payload).code(),
              qaoa::ErrorCode::EndOfStream);
    EXPECT_EQ(serve::readFrame(empty, payload).code(),
              qaoa::ErrorCode::EndOfStream);
}

TEST(ProtocolTest, ResponseRoundTrips)
{
    ServeResponse r;
    r.type = "result";
    r.id = "req-9";
    r.status = "degraded";
    r.cache_hit = true;
    r.pressure = "elevated";
    circuit::Circuit payload(2);
    payload.add(circuit::Gate::h(0));
    payload.add(circuit::Gate::rz(1, 0.1234567890123456789));
    r.qbin = circuit::qbin::encodeCircuit(payload);
    r.depth = 12;
    r.gate_count = 34;
    r.cx_count = 8;
    r.swap_count = 2;
    r.compile_ms = 4.5;
    r.diagnostics = {"fallback to IC", "admission: elevated"};
    const ServeResponse back =
        serve::decodeResponse(serve::encodeResponse(r));
    EXPECT_EQ(back.type, "result");
    EXPECT_EQ(back.id, "req-9");
    EXPECT_EQ(back.status, "degraded");
    EXPECT_TRUE(back.cache_hit);
    EXPECT_EQ(back.pressure, "elevated");
    EXPECT_EQ(back.qbin, r.qbin)
        << "the binary payload must survive the base64 wire hop "
           "byte-for-byte";
    EXPECT_EQ(back.depth, 12);
    EXPECT_EQ(back.gate_count, 34);
    EXPECT_EQ(back.cx_count, 8);
    EXPECT_EQ(back.swap_count, 2);
    EXPECT_DOUBLE_EQ(back.compile_ms, 4.5);
    ASSERT_EQ(back.diagnostics.size(), 2u);
    EXPECT_EQ(back.diagnostics[1], "admission: elevated");
}

TEST(ProtocolTest, ErrorDiagnosticsRoundTrip)
{
    // Error frames carry the machine-readable classification next to
    // the human-readable detail: the code name and (for framing/decode
    // rejections) the byte offset both survive the wire hop.
    ServeResponse err;
    err.type = "error";
    err.id = "req-3";
    err.error = "qbin: bad magic";
    err.error_code = "malformed";
    err.error_offset = 4;
    const ServeResponse back =
        serve::decodeResponse(serve::encodeResponse(err));
    EXPECT_EQ(back.type, "error");
    EXPECT_EQ(back.id, "req-3");
    EXPECT_EQ(back.error, "qbin: bad magic");
    EXPECT_EQ(back.error_code, "malformed");
    EXPECT_EQ(back.error_offset, 4);

    // Responses without diagnostics keep the fields absent/defaulted —
    // old readers must not trip over keys that are not there.
    ServeResponse ok;
    ok.type = "result";
    ok.id = "req-4";
    const ServeResponse plain =
        serve::decodeResponse(serve::encodeResponse(ok));
    EXPECT_EQ(plain.error_code, "");
    EXPECT_EQ(plain.error_offset, -1);
}

// ------------------------------------------------------------- cache --

CacheEntry
makeEntry(const std::string &key, std::size_t payload_bytes = 16)
{
    // payload_bytes is a sizing knob for the cap tests: build a real
    // circuit of roughly that many encoded bytes (an rz record is 13:
    // opcode + u32 qubit + u64 angle), since the binary persistence
    // path validates the payload as a circuit document.
    circuit::Circuit payload(2);
    for (std::size_t i = 0; i < payload_bytes / 13 + 1; ++i)
        payload.add(circuit::Gate::rz(static_cast<int>(i % 2),
                                      0.5 + static_cast<double>(i)));
    CacheEntry entry;
    entry.key = key;
    entry.canonical = "canon:" + key;
    entry.status = "ok";
    entry.qbin = circuit::qbin::encodeCircuit(payload);
    entry.depth = 3;
    entry.gate_count = 7;
    entry.cx_count = 2;
    entry.swap_count = 1;
    entry.compile_ms = 1.5;
    return entry;
}

TEST(CacheTest, BytesCountsStringHeaderOverhead)
{
    // Every std::string field costs its characters plus the string
    // object itself; the byte-cap accounting must include both for the
    // four top-level strings as well as the diagnostics.
    CacheEntry entry = makeEntry("k");
    entry.diagnostics = {"one", "two"};
    const std::uint64_t chars = entry.key.size() +
                                entry.canonical.size() +
                                entry.status.size() + entry.qbin.size() +
                                entry.diagnostics[0].size() +
                                entry.diagnostics[1].size();
    EXPECT_EQ(entry.bytes(),
              sizeof(CacheEntry) + chars + 6 * sizeof(std::string));
}

TEST(CacheTest, HitRequiresMatchingCanonicalText)
{
    CompileCache cache;
    cache.put(makeEntry("k1"));
    EXPECT_TRUE(cache.get("k1", "canon:k1").has_value());
    EXPECT_FALSE(cache.get("k1", "different canonical").has_value())
        << "a digest collision must degrade to a miss";
    EXPECT_FALSE(cache.get("k2", "canon:k2").has_value());
    const auto stats = cache.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 2u);
}

TEST(CacheTest, LruEvictsColdestAndHitsRefresh)
{
    CacheLimits limits;
    limits.max_entries = 2;
    CompileCache cache(limits, serve::makeLruPolicy());
    cache.put(makeEntry("a"));
    cache.put(makeEntry("b"));
    ASSERT_TRUE(cache.get("a", "canon:a").has_value()); // refresh a
    cache.put(makeEntry("c"));                          // evicts b
    EXPECT_TRUE(cache.get("a", "canon:a").has_value());
    EXPECT_FALSE(cache.get("b", "canon:b").has_value());
    EXPECT_TRUE(cache.get("c", "canon:c").has_value());
    EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(CacheTest, RefreshReenforcesTheByteCap)
{
    const CacheEntry small_a = makeEntry("a");
    const CacheEntry small_b = makeEntry("b");
    const CacheEntry big_a = makeEntry("a", /*qasm_bytes=*/4096);
    // Both small entries fit together; big_a alone fits, but big_a
    // plus small_b busts the cap — the refresh must evict, not let
    // bytes sit above the limit until the next new-key insert.
    CacheLimits limits;
    limits.max_bytes = big_a.bytes() + small_b.bytes() - 1;
    CompileCache cache(limits, serve::makeLruPolicy());
    cache.put(small_a);
    cache.put(small_b);
    ASSERT_EQ(cache.stats().entries, 2u);
    cache.put(big_a); // refresh of "a" with a larger artifact
    const auto stats = cache.stats();
    EXPECT_LE(stats.bytes, limits.max_bytes);
    EXPECT_EQ(stats.evictions, 1u);
    ASSERT_TRUE(cache.get("a", "canon:a").has_value());
    EXPECT_EQ(cache.get("a", "canon:a")->qbin, big_a.qbin);
    EXPECT_FALSE(cache.get("b", "canon:b").has_value());
}

TEST(CacheTest, FifoIgnoresHits)
{
    CacheLimits limits;
    limits.max_entries = 2;
    CompileCache cache(limits, serve::makeFifoPolicy());
    cache.put(makeEntry("a"));
    cache.put(makeEntry("b"));
    ASSERT_TRUE(cache.get("a", "canon:a").has_value()); // no refresh
    cache.put(makeEntry("c"));                          // evicts a
    EXPECT_FALSE(cache.get("a", "canon:a").has_value());
    EXPECT_TRUE(cache.get("b", "canon:b").has_value());
    EXPECT_TRUE(cache.get("c", "canon:c").has_value());
}

TEST(CacheTest, ByteCapEvictsAndOversizeEntryIsIgnored)
{
    CacheLimits limits;
    limits.max_entries = 100;
    limits.max_bytes = 4096;
    CompileCache cache(limits);
    cache.put(makeEntry("big1", 1500));
    cache.put(makeEntry("big2", 1500));
    cache.put(makeEntry("big3", 1500)); // byte cap evicts big1
    EXPECT_FALSE(cache.get("big1", "canon:big1").has_value());
    EXPECT_TRUE(cache.get("big3", "canon:big3").has_value());
    EXPECT_LE(cache.stats().bytes, limits.max_bytes);

    cache.put(makeEntry("whale", 10000)); // above the whole cap
    EXPECT_FALSE(cache.get("whale", "canon:whale").has_value());
}

TEST(CacheTest, PersistsAndReloadsAcrossInstances)
{
    const std::string dir = tempDir("qaoa_cache_reload");
    {
        CompileCache cache({}, nullptr, dir);
        cache.put(makeEntry("p1"));
        cache.put(makeEntry("p2"));
    }
    CompileCache reloaded({}, nullptr, dir);
    reloaded.loadFromDir();
    EXPECT_EQ(reloaded.stats().loaded, 2u);
    EXPECT_EQ(reloaded.stats().quarantined, 0u);
    const auto hit = reloaded.get("p1", "canon:p1");
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->qbin, makeEntry("p1").qbin)
        << "the reloaded payload must be byte-identical to what was put";
    EXPECT_EQ(hit->status, "ok");
}

TEST(CacheTest, QuarantinesCorruptEntriesInsteadOfFailing)
{
    const std::string dir = tempDir("qaoa_cache_corrupt");
    {
        CompileCache cache({}, nullptr, dir);
        cache.put(makeEntry("good"));
    }
    // A torn/garbage entry and a mismatched-filename entry.
    std::ofstream(dir + "/deadbeef00000000.cce") << "{\"format\":\"qa";
    std::ofstream(dir + "/wrongname.cce")
        << serve::serializeCacheEntry(makeEntry("other"));
    // And a stale temp file from a killed writer.
    std::ofstream(dir + "/x.cce.tmp.99.1") << "partial";

    CompileCache reloaded({}, nullptr, dir);
    reloaded.loadFromDir();
    EXPECT_EQ(reloaded.stats().loaded, 1u);
    EXPECT_EQ(reloaded.stats().quarantined, 2u);
    EXPECT_TRUE(reloaded.get("good", "canon:good").has_value());

    std::string body;
    EXPECT_TRUE(
        fs::readFile(dir + "/deadbeef00000000.cce.corrupt", body))
        << "corrupt entry should be renamed, not deleted";
    EXPECT_FALSE(fs::readFile(dir + "/x.cce.tmp.99.1", body))
        << "stale temp files are swept on load";
}

TEST(CacheTest, EntrySerializationRejectsWrongFormat)
{
    const CacheEntry entry = makeEntry("k");
    const std::string bytes = serve::serializeCacheEntry(entry);
    EXPECT_TRUE(circuit::qbin::looksLikeQbin(bytes))
        << "entries persist as qbin artifact documents";
    const CacheEntry back = serve::parseCacheEntry(bytes);
    EXPECT_EQ(back.key, "k");
    EXPECT_EQ(back.qbin, entry.qbin);
    // Not qbin at all (the retired v1 text format).
    EXPECT_THROW(
        serve::parseCacheEntry("{\"format\":\"qaoa-serve-cache-v0\"}"),
        std::runtime_error);
    // A valid artifact whose metadata names a different cache format.
    circuit::qbin::Artifact stranger;
    stranger.circuit = entry.qbin;
    stranger.meta.set("format", "qaoa-serve-cache-v999");
    EXPECT_THROW(
        serve::parseCacheEntry(circuit::qbin::encodeArtifact(stranger)),
        std::runtime_error);
    // Every truncation of a valid entry must fail to parse, never
    // yield a partial circuit (the never-load-torn guarantee).
    for (std::size_t len = 0; len < bytes.size(); ++len)
        EXPECT_THROW(serve::parseCacheEntry(bytes.substr(0, len)),
                     std::runtime_error)
            << "prefix of " << len << " bytes parsed";
}

TEST(CacheTest, RetiresLegacyTextEntriesOnLoad)
{
    const std::string dir = tempDir("qaoa_cache_legacy");
    {
        CompileCache cache({}, nullptr, dir);
        cache.put(makeEntry("fresh"));
    }
    // A healthy v1 text entry, as PR 6's cache would have written it:
    // readable, but its decimal angles can't honor the bit-exact
    // contract — it must be retired (not loaded, not quarantined).
    std::ofstream(dir + "/0123456789abcdef.cce")
        << "{\"format\":\"qaoa-serve-cache-v1\",\"key\":"
           "\"0123456789abcdef\",\"canonical\":\"canon:legacy\","
           "\"status\":\"ok\",\"qasm\":\"OPENQASM 2.0;\\n\","
           "\"depth\":\"1\",\"gate_count\":\"1\",\"cx_count\":\"0\","
           "\"swap_count\":\"0\",\"compile_ms\":\"0x1p+0\"}";

    CompileCache reloaded({}, nullptr, dir);
    reloaded.loadFromDir();
    const auto stats = reloaded.stats();
    EXPECT_EQ(stats.loaded, 1u);
    EXPECT_EQ(stats.retired, 1u);
    EXPECT_EQ(stats.quarantined, 0u)
        << "a readable old-format entry is not corruption";
    EXPECT_FALSE(
        reloaded.get("0123456789abcdef", "canon:legacy").has_value());

    std::string body;
    EXPECT_TRUE(
        fs::readFile(dir + "/0123456789abcdef.cce.legacy", body))
        << "legacy entry should be renamed aside, not deleted";
    EXPECT_FALSE(fs::readFile(dir + "/0123456789abcdef.cce", body));
}

TEST(CacheTest, ConcurrentHammerKeepsCapsAndCountersConsistent)
{
    // 8 threads × 200 deterministic (seeded mt19937) put/get ops over a
    // 24-key space against a 6-entry / 4 KiB cache, persisting to disk:
    // every structural invariant the mutex is supposed to protect must
    // hold afterwards, and the TSan lane (preset `tsan`) checks the
    // interleavings themselves.
    const std::string dir = tempDir("qaoa_cache_hammer");
    constexpr int kThreads = 8;
    constexpr int kOpsPerThread = 200;
    constexpr int kKeys = 24;
    CacheLimits limits;
    limits.max_entries = 6;
    limits.max_bytes = 4096;

    std::vector<CacheEntry> entries;
    for (int k = 0; k < kKeys; ++k)
        entries.push_back(makeEntry("hammer" + std::to_string(k),
                                    /*payload_bytes=*/16 + 13 * (k % 5)));

    std::atomic<std::uint64_t> gets{0};
    std::atomic<std::uint64_t> puts{0};
    {
        CompileCache cache(limits, nullptr, dir);
        par::WorkerGroup group;
        group.start(kThreads, [&](int worker) {
            std::mt19937 rng(static_cast<unsigned>(1234 + worker));
            for (int op = 0; op < kOpsPerThread; ++op) {
                const CacheEntry &e = entries[rng() % kKeys];
                if (rng() % 2 == 0) {
                    cache.put(e);
                    puts.fetch_add(1, std::memory_order_relaxed);
                } else {
                    const auto hit = cache.get(e.key, e.canonical);
                    if (hit.has_value()) {
                        EXPECT_EQ(hit->qbin, e.qbin)
                            << "a hit must return the stored bytes";
                    }
                    gets.fetch_add(1, std::memory_order_relaxed);
                }
            }
        });
        group.join();

        const auto stats = cache.stats();
        EXPECT_LE(stats.entries, limits.max_entries);
        EXPECT_LE(stats.bytes, limits.max_bytes);
        EXPECT_EQ(stats.hits + stats.misses, gets.load());
        EXPECT_GE(stats.insertions, stats.entries)
            << "every resident entry was inserted at some point";
        EXPECT_EQ(cache.lastDiskError(), "")
            << "concurrent persistence must not corrupt the writer";
    }

    // The surviving disk image must reload cleanly: unique temp names
    // + atomic rename mean a concurrent writer storm can never leave a
    // torn or quarantinable file.
    CompileCache reloaded(limits, nullptr, dir);
    reloaded.loadFromDir();
    const auto stats = reloaded.stats();
    EXPECT_EQ(stats.quarantined, 0u);
    EXPECT_EQ(stats.retired, 0u);
    EXPECT_LE(stats.entries, limits.max_entries);
    EXPECT_GE(puts.load(), 1u);
}

// ------------------------------------------------------------- queue --

TEST(QueueTest, ShedsWhenFullWithRetryAfter)
{
    AdmissionQueue<int> queue(2, /*workers=*/1, /*initial_ema_ms=*/10.0);
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_TRUE(queue.push(1, "t", inf).admitted);
    EXPECT_TRUE(queue.push(2, "t", inf).admitted);
    const Admission shed = queue.push(3, "t", inf);
    EXPECT_FALSE(shed.admitted);
    EXPECT_GT(shed.retry_after_ms, 0.0);
    EXPECT_EQ(queue.stats().shed, 1u);
}

TEST(QueueTest, TenantStormCannotStarveOthers)
{
    AdmissionQueue<std::string> queue(16);
    const double inf = std::numeric_limits<double>::infinity();
    for (int i = 0; i < 8; ++i)
        ASSERT_TRUE(
            queue.push("storm" + std::to_string(i), "storm", inf)
                .admitted);
    ASSERT_TRUE(queue.push("quiet0", "quiet", inf).admitted);

    // The quiet tenant's single request must pop within the first
    // rotation (second pop), not behind the whole storm.
    std::string first, second;
    ASSERT_TRUE(queue.pop(first));
    ASSERT_TRUE(queue.pop(second));
    EXPECT_TRUE(first == "quiet0" || second == "quiet0");
}

TEST(QueueTest, EarliestDeadlineFirstWithinTenant)
{
    AdmissionQueue<std::string> queue(8);
    ASSERT_TRUE(queue.push("patient", "t", 10'000.0).admitted);
    ASSERT_TRUE(queue.push("urgent", "t", 100.0).admitted);
    ASSERT_TRUE(
        queue.push("none", "t", std::numeric_limits<double>::infinity())
            .admitted);
    std::string out;
    ASSERT_TRUE(queue.pop(out));
    EXPECT_EQ(out, "urgent");
    ASSERT_TRUE(queue.pop(out));
    EXPECT_EQ(out, "patient");
    ASSERT_TRUE(queue.pop(out));
    EXPECT_EQ(out, "none") << "deadline-less requests order by FIFO seq";
}

TEST(QueueTest, CloseDrainsThenReleasesPoppers)
{
    AdmissionQueue<int> queue(4);
    const double inf = std::numeric_limits<double>::infinity();
    ASSERT_TRUE(queue.push(41, "t", inf).admitted);
    queue.close();
    EXPECT_FALSE(queue.push(42, "t", inf).admitted)
        << "a closed queue admits nothing";
    int out = 0;
    EXPECT_TRUE(queue.pop(out)) << "queued work still drains";
    EXPECT_EQ(out, 41);
    EXPECT_FALSE(queue.pop(out)) << "then pop() signals shutdown";
}

TEST(QueueTest, ConcurrentProducersAndConsumersLoseNothing)
{
    // 4 producers push 64 tagged items each through a small (depth-8)
    // queue while 3 consumers drain it; close() releases the
    // consumers once the producers finish.  Every admitted item must
    // be popped exactly once — tenant rotation and EDF selection under
    // contention may reorder, but never duplicate or drop.
    constexpr int kProducers = 4;
    constexpr int kConsumers = 3;
    constexpr int kPerProducer = 64;
    AdmissionQueue<int> queue(8, kConsumers);
    const double inf = std::numeric_limits<double>::infinity();

    std::atomic<std::uint64_t> admitted{0};
    std::vector<std::atomic<int>> popped_count(
        static_cast<std::size_t>(kProducers * kPerProducer));
    for (auto &c : popped_count)
        c.store(0);

    par::WorkerGroup consumers;
    consumers.start(kConsumers, [&](int) {
        int item = -1;
        while (queue.pop(item))
            popped_count[static_cast<std::size_t>(item)].fetch_add(1);
    });

    par::WorkerGroup producers;
    producers.start(kProducers, [&](int producer) {
        const std::string tenant = "t" + std::to_string(producer % 2);
        std::mt19937 rng(static_cast<unsigned>(99 + producer));
        for (int i = 0; i < kPerProducer; ++i) {
            const int tag = producer * kPerProducer + i;
            // Mixed deadlines exercise the EDF path under contention.
            const double deadline =
                (rng() % 3 == 0) ? inf : static_cast<double>(rng() % 1000);
            // A full queue sheds; retry until admitted so the
            // bookkeeping below is exact.
            while (!queue.push(tag, tenant, deadline).admitted)
                std::this_thread::yield();
            admitted.fetch_add(1, std::memory_order_relaxed);
        }
    });
    producers.join();
    queue.close();
    consumers.join();

    EXPECT_EQ(admitted.load(),
              static_cast<std::uint64_t>(kProducers * kPerProducer));
    for (std::size_t tag = 0; tag < popped_count.size(); ++tag)
        EXPECT_EQ(popped_count[tag].load(), 1)
            << "item " << tag << " popped wrong number of times";
    const auto stats = queue.stats();
    EXPECT_EQ(stats.admitted, admitted.load());
    EXPECT_EQ(stats.popped, admitted.load());
    EXPECT_EQ(stats.depth, 0u);
    EXPECT_EQ(stats.tenants, 0u);
}

// ------------------------------------------------------------ server --

/** Collects responses and lets tests await a given count. */
struct ResponseSink
{
    std::mutex mutex;
    std::condition_variable cv;
    std::vector<ServeResponse> responses;

    CompileServer::ResponseFn
    fn()
    {
        return [this](const ServeResponse &r) {
            std::lock_guard<std::mutex> lock(mutex);
            responses.push_back(r);
            cv.notify_all();
        };
    }

    bool
    await(std::size_t count, int timeout_ms = 10'000)
    {
        std::unique_lock<std::mutex> lock(mutex);
        return cv.wait_for(lock,
                           std::chrono::milliseconds(timeout_ms),
                           [&] { return responses.size() >= count; });
    }
};

TEST(ServerTest, CompilesAndServesSecondRequestFromCache)
{
    ServerConfig config;
    config.workers = 1;
    // Sink outlives the server: an early ASSERT return still destroys
    // the server (draining callbacks) before the sink.
    ResponseSink sink;
    CompileServer server(config);
    server.start();

    server.submit(smallRequest("cold"), sink.fn());
    ASSERT_TRUE(sink.await(1));
    {
        std::lock_guard<std::mutex> lock(sink.mutex);
        const ServeResponse &r = sink.responses[0];
        ASSERT_EQ(r.type, "result") << r.error;
        EXPECT_EQ(r.status, "ok");
        EXPECT_FALSE(r.cache_hit);
        ASSERT_TRUE(r.hasCircuit());
        // The served artifact decodes back into a circuit.
        EXPECT_GT(r.decodedCircuit().gates().size(), 0u);
    }

    server.submit(smallRequest("warm"), sink.fn());
    ASSERT_TRUE(sink.await(2));
    std::lock_guard<std::mutex> lock(sink.mutex);
    const ServeResponse &warm = sink.responses[1];
    ASSERT_EQ(warm.type, "result");
    EXPECT_TRUE(warm.cache_hit);
    EXPECT_EQ(warm.qbin, sink.responses[0].qbin);
    EXPECT_EQ(server.stats().cache_hits, 1u);
    server.stop();
}

TEST(ServerTest, WarmHitIsBitIdenticalToAFreshCompile)
{
    // The acceptance bar for the binary artifact path: a cache hit's
    // circuit must equal an independent cold compile of the same
    // request gate for gate, with every angle compared as raw u64
    // bits — not "to N significant digits".
    ServerConfig config;
    config.workers = 1;
    ResponseSink sink;
    CompileServer server(config);
    server.start();

    server.submit(smallRequest("cold"), sink.fn());
    ASSERT_TRUE(sink.await(1));
    server.submit(smallRequest("warm"), sink.fn());
    ASSERT_TRUE(sink.await(2));
    server.stop();

    std::lock_guard<std::mutex> lock(sink.mutex);
    ASSERT_EQ(sink.responses.size(), 2u);
    const ServeResponse &warm = sink.responses[1];
    ASSERT_TRUE(warm.cache_hit) << warm.error;
    ASSERT_TRUE(warm.hasCircuit());

    // Recompile from scratch exactly as the server's default CompileFn
    // does, outside the server.
    const CompileRequest request = smallRequest("reference");
    const auto env = serve::makeEnvironment(request);
    const core::QaoaCompileOptions opts =
        serve::makeOptions(request, *env);
    const transpiler::CompileResult fresh =
        core::compileQaoaMaxcut(request.problem, env->map(), opts);
    ASSERT_TRUE(fresh.ok());

    const circuit::Circuit served = warm.decodedCircuit();
    EXPECT_TRUE(circuit::qbin::bitIdentical(served, fresh.compiled))
        << "warm hit and fresh compile diverge";
    // Belt and braces: the encoded documents are byte-identical too.
    EXPECT_EQ(warm.qbin, circuit::qbin::encodeCircuit(fresh.compiled));
}

TEST(ServerTest, FaultSpecRequestsDoNotShareCacheEntries)
{
    ServerConfig config;
    config.workers = 1;
    ResponseSink sink;
    CompileServer server(config);
    server.start();

    server.submit(smallRequest("healthy"), sink.fn());
    CompileRequest faulty = smallRequest("faulty");
    faulty.faults.dead_qubits = {5};
    server.submit(faulty, sink.fn());
    ASSERT_TRUE(sink.await(2));

    std::lock_guard<std::mutex> lock(sink.mutex);
    EXPECT_FALSE(sink.responses[1].cache_hit)
        << "a fault-spec'd request must not reuse the healthy artifact";
    EXPECT_EQ(server.stats().cache_hits, 0u);
    server.stop();
}

TEST(ServerTest, ShedsAtCapacityWithInjectedSlowCompile)
{
    ServerConfig config;
    config.workers = 1;
    config.queue_capacity = 2;
    ResponseSink sink;
    CompileServer server(
        config, [](const CompileRequest &request,
                   const serve::RequestEnvironment &env,
                   const core::QaoaCompileOptions &opts) {
            std::this_thread::sleep_for(std::chrono::milliseconds(30));
            return core::compileQaoaMaxcut(request.problem, env.map(),
                                           opts);
        });
    server.start();

    // Distinct problems (no cache hits), one worker, capacity 2: some
    // of a burst of 8 must shed, and every request gets an answer.
    for (int i = 0; i < 8; ++i) {
        CompileRequest request = smallRequest("burst" + std::to_string(i));
        request.seed = static_cast<std::uint64_t>(i);
        server.submit(request, sink.fn());
    }
    ASSERT_TRUE(sink.await(8, 30'000));

    std::lock_guard<std::mutex> lock(sink.mutex);
    int shed = 0, served = 0;
    for (const ServeResponse &r : sink.responses) {
        if (r.type == "shed") {
            ++shed;
            EXPECT_GT(r.retry_after_ms, 0.0);
        } else if (r.type == "result") {
            ++served;
        }
    }
    EXPECT_GT(shed, 0) << "burst beyond capacity must shed";
    EXPECT_GT(served, 0);
    EXPECT_EQ(shed + served, 8);
    EXPECT_EQ(server.stats().shed, static_cast<std::uint64_t>(shed));
    server.stop();
}

TEST(ServerTest, WorkerThrowBecomesStructuredErrorAndServingContinues)
{
    // The worker-loop firewall: a CompileFn that throws — a typed
    // qaoa::Error, a plain std::exception, even a non-standard object —
    // must come back as a structured error frame carrying the
    // classification, with the worker thread alive and the server
    // still answering the next request.
    ServerConfig config;
    config.workers = 1;
    ResponseSink sink;
    CompileServer server(
        config, [](const CompileRequest &request,
                   const serve::RequestEnvironment &env,
                   const core::QaoaCompileOptions &opts)
                    -> transpiler::CompileResult {
            if (request.id == "fault-typed")
                qaoa::raiseError(qaoa::ErrorCode::Malformed,
                                 "injected: torn artifact", 42);
            if (request.id == "fault-plain")
                throw std::runtime_error("injected: plain exception");
            if (request.id == "fault-alien")
                throw 42; // not derived from std::exception
            return core::compileQaoaMaxcut(request.problem, env.map(),
                                           opts);
        });
    server.start();

    const char *faults[] = {"fault-typed", "fault-plain", "fault-alien"};
    int seed = 0;
    for (const char *id : faults) {
        CompileRequest request = smallRequest(id);
        request.seed = static_cast<std::uint64_t>(100 + seed++);
        server.submit(request, sink.fn());
    }
    ASSERT_TRUE(sink.await(3));
    {
        std::lock_guard<std::mutex> lock(sink.mutex);
        ASSERT_EQ(sink.responses.size(), 3u);
        for (const ServeResponse &r : sink.responses) {
            EXPECT_EQ(r.type, "error") << r.id;
            EXPECT_FALSE(r.error.empty()) << r.id;
        }
        const auto by_id = [&](const std::string &id) -> const ServeResponse & {
            for (const ServeResponse &r : sink.responses)
                if (r.id == id)
                    return r;
            static const ServeResponse none;
            return none;
        };
        // A typed Error keeps its code AND its byte offset end to end.
        EXPECT_EQ(by_id("fault-typed").error_code, "malformed");
        EXPECT_EQ(by_id("fault-typed").error_offset, 42);
        EXPECT_NE(by_id("fault-typed").error.find("torn artifact"),
                  std::string::npos);
        // A std::exception classifies as invalid_argument (the
        // QAOA_CHECK class); an alien object as internal.
        EXPECT_EQ(by_id("fault-plain").error_code, "invalid_argument");
        EXPECT_EQ(by_id("fault-alien").error_code, "internal");
    }
    EXPECT_EQ(server.stats().errors, 3u);

    // The same worker must still serve a healthy compile.
    server.submit(smallRequest("healthy-after-faults"), sink.fn());
    ASSERT_TRUE(sink.await(4));
    {
        std::lock_guard<std::mutex> lock(sink.mutex);
        const ServeResponse &r = sink.responses[3];
        EXPECT_EQ(r.type, "result") << r.error;
        EXPECT_TRUE(r.hasCircuit());
    }
    server.stop();
}

TEST(ServerTest, ThrowingResponseSinkDoesNotKillTheWorker)
{
    // The respond() firewall: a sink (client callback) that throws is
    // the CLIENT's bug; it must be contained, counted, and must not
    // take the serving thread down or starve later requests.
    ServerConfig config;
    config.workers = 1;
    ResponseSink sink;
    CompileServer server(config);
    server.start();

    CompileRequest hostile = smallRequest("hostile-sink");
    hostile.seed = 17;
    server.submit(hostile, [](const ServeResponse &) {
        throw std::runtime_error("sink exploded");
    });

    server.submit(smallRequest("after-hostile"), sink.fn());
    ASSERT_TRUE(sink.await(1));
    {
        std::lock_guard<std::mutex> lock(sink.mutex);
        EXPECT_EQ(sink.responses[0].type, "result")
            << sink.responses[0].error;
    }
    EXPECT_GE(server.stats().errors, 1u)
        << "a swallowed sink exception must still be counted";
    server.stop();
}

TEST(ServerTest, CancelKillsQueuedRequest)
{
    ServerConfig config;
    config.workers = 1;
    std::mutex gate;
    gate.lock(); // Hold the worker inside the first compile.
    ResponseSink sink;
    CompileServer server(
        config, [&](const CompileRequest &request,
                    const serve::RequestEnvironment &env,
                    const core::QaoaCompileOptions &opts) {
            if (request.id == "blocker") {
                gate.lock(); // Released by the test below.
                gate.unlock();
            }
            return core::compileQaoaMaxcut(request.problem, env.map(),
                                           opts);
        });
    server.start();

    server.submit(smallRequest("blocker"), sink.fn());
    CompileRequest victim = smallRequest("victim");
    victim.seed = 99; // distinct content => no cache interaction
    server.submit(victim, sink.fn());
    EXPECT_TRUE(server.cancel("victim"));
    EXPECT_FALSE(server.cancel("nobody-home"));
    gate.unlock();

    ASSERT_TRUE(sink.await(2, 30'000));
    std::lock_guard<std::mutex> lock(sink.mutex);
    bool victim_cancelled = false;
    for (const ServeResponse &r : sink.responses)
        if (r.id == "victim") {
            EXPECT_EQ(r.type, "error");
            EXPECT_EQ(r.status, "cancelled");
            victim_cancelled = true;
        }
    EXPECT_TRUE(victim_cancelled);
    EXPECT_GE(server.stats().cancelled, 1u);
    server.stop();
}

TEST(ServerTest, PressureDegradesInsteadOfTimingOut)
{
    ServerConfig config;
    config.workers = 1;
    config.queue_capacity = 4;
    config.elevated_occupancy = 0.25; // One queued request => elevated.
    config.critical_occupancy = 0.75;

    std::mutex gate;
    gate.lock();
    ResponseSink sink;
    std::mutex seen_mutex;
    std::vector<std::pair<std::string, bool>> analyze_seen;
    CompileServer server(
        config, [&](const CompileRequest &request,
                    const serve::RequestEnvironment &env,
                    const core::QaoaCompileOptions &opts) {
            if (request.id == "blocker") {
                gate.lock();
                gate.unlock();
            }
            {
                std::lock_guard<std::mutex> lock(seen_mutex);
                analyze_seen.emplace_back(request.id,
                                          opts.analyze_quality);
            }
            return core::compileQaoaMaxcut(request.problem, env.map(),
                                           opts);
        });
    server.start();

    CompileRequest blocker = smallRequest("blocker");
    blocker.analyze_quality = true;
    server.submit(blocker, sink.fn());
    for (int i = 0; i < 3; ++i) {
        CompileRequest request =
            smallRequest("queued" + std::to_string(i));
        request.analyze_quality = true;
        request.seed = static_cast<std::uint64_t>(100 + i);
        server.submit(request, sink.fn());
    }
    gate.unlock();
    ASSERT_TRUE(sink.await(4, 30'000));

    std::lock_guard<std::mutex> lock(sink.mutex);
    int degraded = 0;
    for (const ServeResponse &r : sink.responses) {
        ASSERT_EQ(r.type, "result") << r.error;
        if (r.status == "degraded") {
            ++degraded;
            bool admission_note = false;
            for (const std::string &d : r.diagnostics)
                admission_note |= d.rfind("admission:", 0) == 0;
            EXPECT_TRUE(admission_note)
                << "degraded responses carry the admission diagnostic";
        }
    }
    EXPECT_GT(degraded, 0)
        << "requests served under pressure report degraded, not ok";
    EXPECT_GE(server.stats().pressure_downgrades,
              static_cast<std::uint64_t>(degraded));
    {
        // The degradation ladder actually shed the optional work: at
        // least one queued request compiled with analysis off.
        std::lock_guard<std::mutex> seen_lock(seen_mutex);
        bool analysis_shed = false;
        for (const auto &[id, analyzed] : analyze_seen)
            if (id != "blocker" && !analyzed)
                analysis_shed = true;
        EXPECT_TRUE(analysis_shed);
    }
    server.stop();
}

TEST(ServerTest, PressureDegradedResultsAreNotCached)
{
    ServerConfig config;
    config.workers = 1;
    config.queue_capacity = 4;
    config.elevated_occupancy = 0.25;

    std::mutex gate;
    gate.lock();
    ResponseSink sink;
    CompileServer server(
        config, [&](const CompileRequest &request,
                    const serve::RequestEnvironment &env,
                    const core::QaoaCompileOptions &opts) {
            if (request.id == "blocker") {
                gate.lock();
                gate.unlock();
            }
            return core::compileQaoaMaxcut(request.problem, env.map(),
                                           opts);
        });
    server.start();

    server.submit(smallRequest("blocker"), sink.fn());
    // "queued" is handled while "filler" still occupies the queue
    // (occupancy 1/4 >= 0.25), so it is served under elevated pressure.
    // It requests quality analysis, giving the ladder work to shed.
    CompileRequest queued = smallRequest("queued");
    queued.seed = 123;
    queued.analyze_quality = true;
    server.submit(queued, sink.fn());
    CompileRequest filler = smallRequest("filler");
    filler.seed = 124;
    server.submit(filler, sink.fn());
    gate.unlock();
    ASSERT_TRUE(sink.await(3, 30'000));
    {
        std::lock_guard<std::mutex> lock(sink.mutex);
        bool queued_degraded = false;
        for (const ServeResponse &r : sink.responses)
            if (r.id == "queued")
                queued_degraded = r.status == "degraded";
        ASSERT_TRUE(queued_degraded)
            << "test setup: \"queued\" should have served under pressure";
    }

    // Re-submitting the degraded request's content must recompile.
    CompileRequest again = smallRequest("again");
    again.seed = 123;
    again.analyze_quality = true;
    server.submit(again, sink.fn());
    ASSERT_TRUE(sink.await(4, 30'000));
    std::lock_guard<std::mutex> lock(sink.mutex);
    for (const ServeResponse &r : sink.responses)
        if (r.id == "again") {
            EXPECT_FALSE(r.cache_hit)
                << "degraded artifacts must not be cached";
        }
    server.stop();
}

TEST(ServerTest, StopAnswersEveryAdmittedRequest)
{
    ServerConfig config;
    config.workers = 2;
    ResponseSink sink;
    CompileServer server(
        config, [](const CompileRequest &request,
                   const serve::RequestEnvironment &env,
                   const core::QaoaCompileOptions &opts) {
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
            return core::compileQaoaMaxcut(request.problem, env.map(),
                                           opts);
        });
    server.start();
    for (int i = 0; i < 6; ++i) {
        // Two-step concat dodges a GCC 12 -Wrestrict false positive on
        // operator+(const char*, string&&).
        std::string id = "s";
        id += std::to_string(i);
        CompileRequest request = smallRequest(id);
        request.seed = static_cast<std::uint64_t>(i);
        server.submit(request, sink.fn());
    }
    server.stop();
    // stop() drains: every admitted request got some response.
    std::lock_guard<std::mutex> lock(sink.mutex);
    EXPECT_EQ(sink.responses.size(), 6u);
}

TEST(ServerTest, WarmCacheSurvivesRestartViaDisk)
{
    const std::string dir = tempDir("qaoa_server_restart");
    ServerConfig config;
    config.workers = 1;
    config.cache_dir = dir;

    std::string first_qbin;
    {
        ResponseSink sink;
        CompileServer server(config);
        server.start();
        server.submit(smallRequest("persist"), sink.fn());
        ASSERT_TRUE(sink.await(1));
        std::lock_guard<std::mutex> lock(sink.mutex);
        ASSERT_EQ(sink.responses[0].type, "result");
        first_qbin = sink.responses[0].qbin;
        server.stop();
    }
    {
        ResponseSink sink;
        CompileServer server(config);
        server.start();
        EXPECT_EQ(server.stats().cache.loaded, 1u);
        server.submit(smallRequest("reheat"), sink.fn());
        ASSERT_TRUE(sink.await(1));
        std::lock_guard<std::mutex> lock(sink.mutex);
        EXPECT_TRUE(sink.responses[0].cache_hit)
            << "restart must reload the persisted cache";
        EXPECT_EQ(sink.responses[0].qbin, first_qbin)
            << "the artifact must survive the disk round trip "
               "byte-for-byte";
        server.stop();
    }
}

} // namespace
} // namespace qaoa
