/** @file Tests for MaxCut evaluation and brute-force search. */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "graph/maxcut.hpp"

namespace qaoa::graph {
namespace {

TEST(CutValue, SingleEdge)
{
    Graph g(2);
    g.addEdge(0, 1);
    EXPECT_DOUBLE_EQ(cutValue(g, 0b00), 0.0);
    EXPECT_DOUBLE_EQ(cutValue(g, 0b01), 1.0);
    EXPECT_DOUBLE_EQ(cutValue(g, 0b10), 1.0);
    EXPECT_DOUBLE_EQ(cutValue(g, 0b11), 0.0);
}

TEST(CutValue, WeightedEdges)
{
    Graph g(3);
    g.addEdge(0, 1, 2.5);
    g.addEdge(1, 2, 1.5);
    EXPECT_DOUBLE_EQ(cutValue(g, 0b010), 4.0); // node 1 alone
    EXPECT_DOUBLE_EQ(cutValue(g, 0b001), 2.5);
}

TEST(MaxCutBruteForce, Triangle)
{
    Graph g = cycleGraph(3);
    MaxCutResult r = maxCutBruteForce(g);
    EXPECT_DOUBLE_EQ(r.value, 2.0);
    EXPECT_DOUBLE_EQ(cutValue(g, r.assignment), 2.0);
}

TEST(MaxCutBruteForce, EvenCycleIsFullyCuttable)
{
    Graph g = cycleGraph(8);
    MaxCutResult r = maxCutBruteForce(g);
    EXPECT_DOUBLE_EQ(r.value, 8.0);
}

TEST(MaxCutBruteForce, CompleteGraph)
{
    // K5: best split 2/3 cuts 2*3 = 6 edges.
    Graph g = completeGraph(5);
    EXPECT_DOUBLE_EQ(maxCutBruteForce(g).value, 6.0);
}

TEST(MaxCutBruteForce, BipartiteCutsEverything)
{
    Graph g = gridGraph(3, 3); // grids are bipartite
    MaxCutResult r = maxCutBruteForce(g);
    EXPECT_DOUBLE_EQ(r.value, static_cast<double>(g.numEdges()));
}

TEST(MaxCutBruteForce, OptimumDominatesRandomAssignments)
{
    Rng rng(404);
    for (int trial = 0; trial < 10; ++trial) {
        Graph g = erdosRenyi(10, 0.5, rng);
        MaxCutResult best = maxCutBruteForce(g);
        for (int s = 0; s < 200; ++s) {
            std::uint64_t a = static_cast<std::uint64_t>(
                rng.uniformInt(0, (1 << 10) - 1));
            EXPECT_LE(cutValue(g, a), best.value);
        }
    }
}

TEST(MaxCutBruteForce, EmptyAndEdgelessGraphs)
{
    EXPECT_DOUBLE_EQ(maxCutBruteForce(Graph(0)).value, 0.0);
    EXPECT_DOUBLE_EQ(maxCutBruteForce(Graph(5)).value, 0.0);
}

TEST(MaxCutBruteForce, RejectsHugeGraphs)
{
    EXPECT_THROW(maxCutBruteForce(Graph(27)), std::runtime_error);
}

TEST(MaxCutBruteForce, AssignmentSymmetryFixed)
{
    // Node 0 is always on side 0 of the reported assignment.
    Rng rng(7);
    Graph g = erdosRenyi(8, 0.5, rng);
    MaxCutResult r = maxCutBruteForce(g);
    EXPECT_EQ(r.assignment & 1ULL, 0ULL);
}

} // namespace
} // namespace qaoa::graph
