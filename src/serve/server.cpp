#include "serve/server.hpp"

#include <limits>

#include "circuit/qbin.hpp"
#include "common/deadline.hpp"
#include "common/error.hpp"
#include "common/stopwatch.hpp"

namespace qaoa::serve {

namespace {

double
nowMs()
{
    using namespace std::chrono;
    return duration<double, std::milli>(
               steady_clock::now().time_since_epoch())
        .count();
}

constexpr double kNoDeadline = std::numeric_limits<double>::infinity();

} // namespace

std::string
pressureName(PressureLevel level)
{
    switch (level) {
      case PressureLevel::Normal: return "normal";
      case PressureLevel::Elevated: return "elevated";
      case PressureLevel::Critical: return "critical";
    }
    QAOA_ASSERT(false, "unknown pressure level");
    return {};
}

CompileServer::CompileServer(ServerConfig config, CompileFn compile)
    : config_(config),
      compile_(compile ? std::move(compile)
                       : [](const CompileRequest &request,
                            const RequestEnvironment &env,
                            const core::QaoaCompileOptions &opts) {
                             return core::compileQaoaMaxcut(
                                 request.problem, env.map(), opts);
                         }),
      cache_(config.cache_limits, makePolicyByName(config.cache_policy),
             config.cache_dir),
      queue_(config.queue_capacity, config.workers)
{
    QAOA_CHECK(config_.workers >= 1, "server: workers must be >= 1");
    QAOA_CHECK(config_.elevated_occupancy > 0.0 &&
                   config_.elevated_occupancy <=
                       config_.critical_occupancy,
               "server: want 0 < elevated_occupancy <= critical_occupancy");
}

CompileServer::~CompileServer()
{
    // A worker's escaped exception must not terminate() the process
    // during unwinding; stop() callers see it instead.
    destructorBoundary("CompileServer::~CompileServer", [this] { stop(); });
}

void
CompileServer::start()
{
    QAOA_CHECK(!started_.exchange(true), "server: start() called twice");
    cache_.loadFromDir();
    if (config_.scrub_on_start && !config_.cache_dir.empty())
        cache_.scrub();
    workers_.start(config_.workers, [this](int) { workerLoop(); });
    maintenance_token_ = root_token_.child();
    if (config_.scrub_interval_ms > 0.0) {
        maintenance_.start(1, [this](int) {
            for (;;) {
                try {
                    run::cancellableSleepMs(config_.scrub_interval_ms,
                                            maintenance_token_);
                } catch (const run::CancelledError &) {
                    return; // Normal shutdown path.
                }
                // Firewall: a scrub I/O surprise must not kill the
                // maintenance thread (join() rethrows), only log via
                // the cache's own disk-error channel.
                (void)exceptionBoundary("cache scrub", // qe-allow(QE104)
                                        [&] { cache_.scrub(); });
            }
        });
    }
}

void
CompileServer::stop()
{
    shutdownImpl(/*cancel_inflight=*/true);
}

void
CompileServer::drain()
{
    shutdownImpl(/*cancel_inflight=*/false);
}

void
CompileServer::shutdownImpl(bool cancel_inflight)
{
    if (!started_.load() || stopped_.exchange(true))
        return;
    if (!cancel_inflight)
        draining_.store(true);
    queue_.close();
    if (cancel_inflight) {
        // Abort in-flight compiles at their next guard poll; queued
        // requests still drain (handle() answers them as cancelled).
        root_token_.requestCancel();
    } else {
        // Graceful drain: stop the scrubber, leave compiles running —
        // pop() keeps yielding the backlog until the queue is empty,
        // so every admitted request gets its full-fidelity answer.
        maintenance_token_.requestCancel();
    }
    workers_.join();
    maintenance_.join();
}

void
CompileServer::workerLoop()
{
    // Mark the thread in-region: each request's nested parallelFor
    // runs inline instead of serializing workers on the shared pool.
    par::ScopedInlineRegion inline_region;
    Pending pending;
    while (queue_.pop(pending)) {
        // Firewall: whatever escapes a compile becomes a structured
        // error frame; the worker thread itself never unwinds.
        const Status handled =
            exceptionBoundary("worker", [&] { handle(pending); });
        if (!handled.ok()) {
            ServeResponse response;
            response.type = "error";
            response.id = pending.request.id;
            response.error = handled.message();
            response.error_code = errorCodeName(handled.code());
            response.error_offset = handled.offset();
            {
                sync::MutexLock lock(state_mutex_);
                ++errors_;
            }
            respond(pending, response);
        }
        pending = Pending{}; // Drop the callback/token promptly.
    }
}

PressureLevel
CompileServer::pressure() const
{
    const double occupancy = queue_.occupancy();
    if (occupancy >= config_.critical_occupancy)
        return PressureLevel::Critical;
    if (occupancy >= config_.elevated_occupancy)
        return PressureLevel::Elevated;
    return PressureLevel::Normal;
}

void
CompileServer::submit(CompileRequest request, ResponseFn done)
{
    QAOA_CHECK(started_, "server: submit() before start()");
    QAOA_CHECK(done != nullptr, "server: submit() without a sink");
    {
        sync::MutexLock lock(state_mutex_);
        ++received_;
    }

    Pending pending;
    pending.canonical = canonicalText(request);
    pending.fingerprint = requestFingerprint(request);
    pending.request = std::move(request);
    pending.done = std::move(done);

    // Cache first: a hit skips admission entirely, so a warm cache
    // keeps answering even when the queue is shedding.
    if (auto hit = cache_.get(pending.fingerprint, pending.canonical)) {
        {
            sync::MutexLock lock(state_mutex_);
            ++cache_hits_;
        }
        ServeResponse response;
        response.type = "result";
        response.id = pending.request.id;
        response.status = hit->status;
        response.cache_hit = true;
        response.pressure = pressureName(pressure());
        response.qbin = hit->qbin;
        response.depth = hit->depth;
        response.gate_count = hit->gate_count;
        response.cx_count = hit->cx_count;
        response.swap_count = hit->swap_count;
        response.compile_ms = hit->compile_ms;
        response.diagnostics = hit->diagnostics;
        pending.done(response);
        return;
    }

    pending.token = root_token_.child();
    pending.admitted_at = std::chrono::steady_clock::now();
    pending.deadline_abs_ms = pending.request.timeout_ms >= 0.0
                                  ? nowMs() + pending.request.timeout_ms
                                  : kNoDeadline;
    if (!pending.request.id.empty())
        registerToken(pending.request.id, pending.token);

    const std::string id = pending.request.id;
    const std::string tenant = pending.request.tenant;
    const double deadline = pending.deadline_abs_ms;
    ResponseFn done_copy = pending.done; // For the shed path below.

    const Admission admission =
        queue_.push(std::move(pending), tenant, deadline);
    if (!admission.admitted) {
        if (!id.empty())
            forgetToken(id);
        {
            sync::MutexLock lock(state_mutex_);
            ++shed_;
        }
        ServeResponse response;
        response.type = "shed";
        response.id = id;
        response.pressure = pressureName(pressure());
        response.retry_after_ms = admission.retry_after_ms;
        response.error = "queue full; retry after retry_after_ms";
        done_copy(response);
    }
}

bool
CompileServer::cancel(const std::string &id)
{
    sync::MutexLock lock(state_mutex_);
    const auto it = inflight_.find(id);
    if (it == inflight_.end())
        return false;
    it->second.requestCancel();
    return true;
}

void
CompileServer::handle(Pending &pending)
{
    const PressureLevel level = pressure();
    const std::string pressure_name = pressureName(level);

    ServeResponse response;
    response.id = pending.request.id;
    response.pressure = pressure_name;

    // A request whose client gave up (cancel frame or disconnect
    // sweep) dies here for free instead of occupying a worker.
    if (pending.token.cancelled()) {
        {
            sync::MutexLock lock(state_mutex_);
            ++cancelled_;
        }
        response.type = "error";
        response.status = transpiler::statusName(
            transpiler::CompileStatus::Cancelled);
        response.error = "request cancelled before compile";
        respond(pending, response);
        return;
    }

    const double remaining_ms =
        pending.deadline_abs_ms == kNoDeadline
            ? kNoDeadline
            : pending.deadline_abs_ms - nowMs();
    if (remaining_ms <= 0.0) {
        {
            sync::MutexLock lock(state_mutex_);
            ++cancelled_;
        }
        response.type = "error";
        response.status = transpiler::statusName(
            transpiler::CompileStatus::TimedOut);
        response.error = "deadline expired while queued";
        respond(pending, response);
        return;
    }

    const auto env = makeEnvironment(pending.request);
    core::QaoaCompileOptions opts = makeOptions(pending.request, *env);

    // Graceful-degradation ladder: shed optional work under pressure.
    std::vector<std::string> downgrades;
    if (level != PressureLevel::Normal) {
        if (opts.analyze_quality) {
            opts.analyze_quality = false;
            downgrades.push_back("quality analysis off");
        }
        if (opts.peephole) {
            opts.peephole = false;
            downgrades.push_back("peephole off");
        }
        if (opts.stage_budget_ms > 0.0) {
            opts.stage_budget_ms /= 2.0;
            downgrades.push_back("stage budget halved");
        }
    }
    if (level == PressureLevel::Critical) {
        if (opts.allow_fallbacks) {
            opts.allow_fallbacks = false;
            downgrades.push_back("retry ladder off");
        }
        if (opts.verify) {
            opts.verify = false;
            downgrades.push_back("verification off");
        }
        if (opts.stage_budget_ms > 0.0) {
            opts.stage_budget_ms /= 2.0;
            downgrades.push_back("stage budget quartered");
        }
    }
    if (opts.stage_budget_ms < 0.0 &&
        config_.default_stage_budget_ms > 0.0 &&
        remaining_ms != kNoDeadline)
        opts.stage_budget_ms = config_.default_stage_budget_ms;

    const run::Deadline deadline = remaining_ms == kNoDeadline
                                       ? run::Deadline::never()
                                       : run::Deadline::afterMs(remaining_ms);
    const run::RunGuard guard(pending.token, deadline);
    opts.guard = &guard;

    Stopwatch clock;
    transpiler::CompileResult result =
        compile_(pending.request, *env, opts);
    const double service_ms = clock.milliseconds();
    queue_.noteServiceMs(service_ms);

    const bool downgraded = !downgrades.empty();
    if (downgraded && result.ok()) {
        // Pressure-degraded serving is a first-class outcome: visible
        // in the status, the diagnostics and the stage trace.
        result.status = transpiler::CompileStatus::Degraded;
        std::string note = "admission: served under " + pressure_name +
                           " pressure (";
        for (std::size_t i = 0; i < downgrades.size(); ++i)
            note += (i ? ", " : "") + downgrades[i];
        note += ")";
        result.diagnostics.push_back(note);
        run::StageTrace trace;
        trace.stage = "admission";
        trace.outcome = run::StageOutcome::Completed;
        trace.detail = note;
        result.stages.push_back(trace);
    }

    {
        sync::MutexLock lock(state_mutex_);
        ++compiled_;
        if (downgraded)
            ++pressure_downgrades_;
        if (result.status == transpiler::CompileStatus::Cancelled)
            ++cancelled_;
    }

    response.type = "result";
    response.status = transpiler::statusName(result.status);
    response.compile_ms = service_ms;
    response.diagnostics = result.diagnostics;
    if (result.ok()) {
        // Encoded once here; the same bytes serve this response, the
        // cache entry, and every future hit — so a warm hit is
        // byte-identical to the compile that produced it.
        response.qbin = circuit::qbin::encodeCircuit(result.compiled);
        response.depth = result.report.depth;
        response.gate_count = result.report.gate_count;
        response.cx_count = result.report.cx_count;
        response.swap_count = result.report.swap_count;
    } else {
        response.error = result.failure_reason.empty()
                             ? "compile failed"
                             : result.failure_reason;
    }

    // Cache only full-fidelity artifacts whose run was untroubled:
    // pressure-downgraded or guard-disturbed results must not shadow
    // the real answer for future clients.
    bool cacheable = result.ok() && !downgraded;
    for (const run::StageTrace &stage : result.stages)
        if (stage.outcome != run::StageOutcome::Completed &&
            stage.outcome != run::StageOutcome::Failed)
            cacheable = false;
    if (cacheable) {
        CacheEntry entry;
        entry.key = pending.fingerprint;
        entry.canonical = pending.canonical;
        entry.status = transpiler::statusName(result.status);
        entry.qbin = response.qbin;
        entry.depth = response.depth;
        entry.gate_count = response.gate_count;
        entry.cx_count = response.cx_count;
        entry.swap_count = response.swap_count;
        entry.compile_ms = service_ms;
        entry.diagnostics = response.diagnostics;
        cache_.put(entry);
    }

    respond(pending, response);
}

void
CompileServer::respond(Pending &pending, const ServeResponse &response)
{
    if (!pending.request.id.empty())
        forgetToken(pending.request.id);
    if (pending.done) {
        // Firewall: the sink is caller code; a throwing sink must not
        // take the serving thread down with it.
        const Status delivered =
            exceptionBoundary("response sink", [&] { pending.done(response); });
        if (!delivered.ok()) {
            sync::MutexLock lock(state_mutex_);
            ++errors_;
        }
    }
}

void
CompileServer::registerToken(const std::string &id,
                             const run::CancelToken &token)
{
    sync::MutexLock lock(state_mutex_);
    inflight_.insert_or_assign(id, token); // Latest same-id wins.
}

void
CompileServer::forgetToken(const std::string &id)
{
    sync::MutexLock lock(state_mutex_);
    inflight_.erase(id);
}

ServerStats
CompileServer::stats() const
{
    ServerStats snapshot;
    {
        sync::MutexLock lock(state_mutex_);
        snapshot.received = received_;
        snapshot.cache_hits = cache_hits_;
        snapshot.compiled = compiled_;
        snapshot.shed = shed_;
        snapshot.cancelled = cancelled_;
        snapshot.errors = errors_;
        snapshot.pressure_downgrades = pressure_downgrades_;
    }
    snapshot.draining = draining_.load();
    snapshot.pressure = pressureName(pressure());
    snapshot.queue = queue_.stats();
    snapshot.cache = cache_.stats();
    return snapshot;
}

} // namespace qaoa::serve
