/**
 * @file
 * Wire protocol for the serve daemon: length-prefixed frames carrying
 * one flat-JSON record each.
 *
 * Framing: a 4-byte big-endian unsigned length followed by exactly that
 * many payload bytes.  The payload is a kv::Record (one-line flat JSON,
 * see common/kv.hpp) whose "type" field routes it:
 *
 *   client -> server: "compile" (request fields, serve/request.hpp),
 *                     "cancel" (id), "stats", "shutdown"
 *   server -> client: "result", "shed", "error", "stats"
 *
 * readFrame() distinguishes a clean EOF at a frame boundary (normal
 * disconnect, Status code EndOfStream) from truncation mid-frame
 * (Truncated), an oversize length (ResourceExhausted) and a stream
 * error (IoError), and enforces a maximum frame size so a hostile or
 * confused client cannot make the daemon buffer unbounded input.  The
 * Status is [[nodiscard]]: a dropped framing error is a build break.
 *
 * Result payloads carry the compiled circuit as a base64-encoded qbin
 * document (circuit/qbin.hpp) in the "qbin" field — bit-exact angles,
 * unlike the text QASM the protocol used before.
 */

#ifndef QAOA_SERVE_PROTOCOL_HPP
#define QAOA_SERVE_PROTOCOL_HPP

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/error.hpp"
#include "common/kv.hpp"
#include "serve/request.hpp"

namespace qaoa::serve {

/** Frames larger than this are a protocol violation. */
constexpr std::uint32_t kMaxFrameBytes = 4u << 20;

/**
 * Reads one length-prefixed frame into @p payload.
 *
 * @return Ok when a frame was read; EndOfStream on a clean EOF before
 *         a length byte; Truncated / ResourceExhausted / IoError (with
 *         the byte offset into the frame where reading stopped) on a
 *         torn header or body, an oversize length, or a stream error.
 */
[[nodiscard]] Status readFrame(std::istream &in, std::string &payload,
                               std::uint32_t max_bytes = kMaxFrameBytes);

/**
 * Writes @p payload as one length-prefixed frame (no flush).
 *
 * @throws qaoa::Error with ErrorCode::IoError when the stream goes bad
 *         mid-frame (client hung up; with SIGPIPE ignored this is how
 *         a vanished reader surfaces) — callers wrap the write in an
 *         exceptionBoundary and keep serving.
 */
void writeFrame(std::ostream &out, const std::string &payload);

/** One server -> client message. */
struct ServeResponse
{
    std::string type = "result"; ///< result | shed | error.
    std::string id;              ///< Echo of the request id.
    std::string status;          ///< transpiler statusName() string.
    bool cache_hit = false;
    std::string pressure = "normal"; ///< Admission pressure at serve time.
    double retry_after_ms = 0.0;     ///< Set on "shed".
    std::string error;               ///< Set on "error".

    /** Diagnostic taxonomy code (errorCodeName(); "error" only). */
    std::string error_code;
    /** Byte offset of the failure in the client's payload (framing /
     *  qbin / kv errors); -1 when not positional. */
    long long error_offset = -1;

    /** Compiled circuit as a qbin circuit document (raw bytes, not
     *  base64; result only).  Decode with circuit::qbin::decodeCircuit
     *  or the decodedCircuit() helper. */
    std::string qbin;
    int depth = 0;
    int gate_count = 0;
    int cx_count = 0;
    int swap_count = 0;
    double compile_ms = 0.0;
    std::vector<std::string> diagnostics;

    /** True when the compile produced a circuit. */
    [[nodiscard]] bool
    hasCircuit() const
    {
        return type == "result" && !qbin.empty();
    }

    /** Decodes the qbin payload; throws when hasCircuit() is false or
     *  the payload is malformed. */
    [[nodiscard]] circuit::Circuit decodedCircuit() const;
};

/** Encodes a compile request as a "compile" frame payload. */
[[nodiscard]] std::string encodeCompileMessage(const CompileRequest &request);

/** Encodes a "cancel" frame payload for @p id. */
[[nodiscard]] std::string encodeCancelMessage(const std::string &id);

/** Encodes an argument-less control payload ("stats" / "shutdown"). */
[[nodiscard]] std::string encodeControlMessage(const std::string &type);

/** Encodes a response as a frame payload. */
[[nodiscard]] std::string encodeResponse(const ServeResponse &response);

/** Decodes encodeResponse() output; throws on malformed payloads. */
[[nodiscard]] ServeResponse decodeResponse(const std::string &payload);

} // namespace qaoa::serve

#endif // QAOA_SERVE_PROTOCOL_HPP
