/**
 * @file
 * Compile requests: the unit of work the serve daemon accepts.
 *
 * A CompileRequest carries everything a compile depends on — problem
 * graph, device, method, angles, fault spec, router tunables, pipeline
 * flags — plus serving metadata (request id, tenant, client deadline)
 * that deliberately does NOT participate in the content address.
 *
 * canonicalText() renders the dependency-closure fields into one
 * versioned, order-fixed string; requestFingerprint() hashes it.  Two
 * requests share a fingerprint iff a compile for one is a valid answer
 * for the other, so the fingerprint is the compile cache's key
 * (serve/cache.hpp).  Every new option that can change the compiled
 * artifact MUST be added to canonicalText() — the hash-key
 * completeness tests in tests/test_serve.cpp guard the known fields.
 */

#ifndef QAOA_SERVE_REQUEST_HPP
#define QAOA_SERVE_REQUEST_HPP

#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/kv.hpp"
#include "graph/graph.hpp"
#include "hardware/devices.hpp"
#include "hardware/faults.hpp"
#include "qaoa/api.hpp"

namespace qaoa::serve {

/** One compile request as received over the wire (or built in-process). */
struct CompileRequest
{
    /** @name Serving metadata (not part of the content address) @{ */
    std::string id;        ///< Client-chosen id, echoed in the response.
    std::string tenant;    ///< Fairness bucket; "" = anonymous tenant.
    double timeout_ms = -1.0; ///< Client deadline; negative = none.
    /** @} */

    /** @name Compile inputs (the content address covers all of these) @{ */
    graph::Graph problem{0};           ///< MaxCut problem graph.
    std::string device = "melbourne";  ///< hw::deviceByName() name.
    std::string method = "ic";         ///< core::methodFromName() name.
    std::vector<double> gammas{0.7};   ///< Cost angles (p levels).
    std::vector<double> betas{0.35};   ///< Mixer angles.
    int packing_limit = 1 << 30;       ///< Max CPHASEs per layer.
    std::uint64_t seed = 7;            ///< Compile master seed.
    hw::FaultSpec faults;              ///< Device degradation to inject.
    double lookahead_weight = 0.5;     ///< Router lookahead weight.
    int lookahead_depth = 20;          ///< Router lookahead depth.
    std::uint64_t router_seed = 17;    ///< Router tie-break seed.
    bool decompose = true;             ///< Translate to the IBM basis.
    bool peephole = false;             ///< Run the peephole optimizer.
    bool allow_fallbacks = true;       ///< Retry-ladder fallbacks.
    bool verify = true;                ///< Per-rung translation validation.
    bool analyze_quality = false;      ///< Record the quality report.
    double stage_budget_ms = -1.0;     ///< Per-rung watchdog budget.
    /** @} */
};

/**
 * Canonical, versioned rendering of the compile-relevant fields.
 * Stored next to the digest in cache entries so a hash collision can
 * only cause a miss, never a stale answer.
 */
[[nodiscard]] std::string canonicalText(const CompileRequest &request);

/** 16-hex-char content address: FNV-1a of canonicalText(). */
[[nodiscard]] std::string requestFingerprint(const CompileRequest &request);

/** Encodes the request as a wire record (type field excluded). */
void requestToRecord(const CompileRequest &request, kv::Record &out);

/**
 * Decodes a wire record into a request.  Unknown device/method names
 * are rejected here (before the request is admitted), as are graphs
 * beyond @p max_nodes.
 *
 * @throws std::runtime_error on malformed or out-of-contract fields.
 */
[[nodiscard]] CompileRequest requestFromRecord(const kv::Record &record,
                                               int max_nodes = 64);

/**
 * Non-throwing requestFromRecord() for untrusted wire input: the
 * Status classifies the rejection (InvalidArgument for out-of-contract
 * fields, Malformed for unparseable ones).
 */
[[nodiscard]] StatusOr<CompileRequest>
tryRequestFromRecord(const kv::Record &record, int max_nodes = 64);

/**
 * The hardware view a request compiles against.  Owns the base device,
 * its calibration, and (when the request injects faults) the
 * FaultInjector holding the degraded map — kept alive together because
 * QaoaCompileOptions points into them.  Not copyable or movable (the
 * calibration points at the owned map); makeEnvironment() returns it
 * behind a unique_ptr.
 */
struct RequestEnvironment
{
    explicit RequestEnvironment(const CompileRequest &request);

    RequestEnvironment(const RequestEnvironment &) = delete;
    RequestEnvironment &operator=(const RequestEnvironment &) = delete;

    hw::CouplingMap base_map;
    hw::CalibrationData base_calib;
    std::unique_ptr<hw::FaultInjector> injector; ///< Null when no faults.

    /** The map to compile against (degraded view when faulty). */
    const hw::CouplingMap &
    map() const
    {
        return injector ? injector->map() : base_map;
    }

    /** Matching calibration data. */
    const hw::CalibrationData &
    calibration() const
    {
        return injector ? injector->calibration() : base_calib;
    }
};

/** Builds the hardware view of @p request (resolves device + faults). */
std::unique_ptr<RequestEnvironment>
makeEnvironment(const CompileRequest &request);

/**
 * Builds the QaoaCompileOptions encoding @p request against @p env.
 * The returned options point into @p env (calibration, usable mask) —
 * @p env must outlive them.  guard / stage budget are left for the
 * caller (the server attaches its per-request guard).
 */
core::QaoaCompileOptions makeOptions(const CompileRequest &request,
                                     const RequestEnvironment &env);

} // namespace qaoa::serve

#endif // QAOA_SERVE_REQUEST_HPP
