/**
 * @file
 * Admission control for the serve daemon: a bounded, tenant-fair queue
 * that sheds load instead of building unbounded backlog.
 *
 * Three properties, in priority order:
 *
 *  1. **Bounded**: at most `capacity` requests wait.  A push against a
 *     full queue is rejected with a retry-after estimate derived from
 *     the current backlog and the service-time EMA — the client learns
 *     *when* to come back instead of hanging.
 *
 *  2. **Tenant-fair**: requests are grouped per tenant and tenants are
 *     drained round-robin, so a single tenant's request storm occupies
 *     its own lane; other tenants still get every rotation's slot.
 *
 *  3. **Deadline-aware**: within a tenant, the earliest absolute
 *     deadline pops first (FIFO sequence number breaks ties and orders
 *     deadline-less requests), so a request about to expire is not
 *     stuck behind patient ones from the same tenant.
 *
 * The queue is a header-only template so tests can drive it with
 * trivial payloads; the server instantiates it with its pending-request
 * record.  All public methods are thread-safe: every mutable field is
 * QAOA_GUARDED_BY(mutex_) and clang's thread-safety analysis verifies
 * the discipline (see common/sync.hpp and DESIGN.md §13 — mutex_ is a
 * leaf in the lock hierarchy; no callback or foreign lock is ever
 * reached while holding it).
 */

#ifndef QAOA_SERVE_QUEUE_HPP
#define QAOA_SERVE_QUEUE_HPP

#include <cstdint>
#include <deque>
#include <limits>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/sync.hpp"

namespace qaoa::serve {

/** Outcome of AdmissionQueue::push(). */
struct Admission
{
    bool admitted = false;

    /** When shed: suggested client back-off (backlog / workers × EMA). */
    double retry_after_ms = 0.0;
};

/** Counters exposed by AdmissionQueue::stats(). */
struct QueueStats
{
    std::uint64_t admitted = 0;
    std::uint64_t shed = 0;
    std::uint64_t popped = 0;
    std::size_t depth = 0;
    std::size_t tenants = 0;         ///< Tenants currently queued.
    double ema_service_ms = 0.0;
};

/**
 * Bounded multi-tenant queue; see the file comment for the policy.
 *
 * @tparam Item  Moveable payload type; the queue never inspects it.
 */
template <typename Item>
class AdmissionQueue
{
  public:
    /**
     * @param capacity         Maximum queued items before shedding.
     * @param workers          Draining worker count (retry-after math).
     * @param initial_ema_ms   Service-time estimate before any sample.
     */
    explicit AdmissionQueue(std::size_t capacity, int workers = 1,
                            double initial_ema_ms = 50.0)
        : capacity_(capacity),
          workers_(workers < 1 ? 1 : workers),
          ema_ms_(initial_ema_ms)
    {
        QAOA_CHECK(capacity_ >= 1, "queue: capacity must be >= 1");
    }

    /**
     * Admits or sheds @p item.  @p deadline_abs_ms is an absolute
     * steady-clock timestamp in ms (use infinity() for "no deadline");
     * earlier deadlines pop first within @p tenant.
     */
    [[nodiscard]] Admission
    push(Item item, const std::string &tenant, double deadline_abs_ms)
    {
        sync::MutexLock lock(mutex_);
        if (closed_ || depth_ >= capacity_) {
            ++stats_.shed;
            return {false, retryAfterLocked()};
        }
        Lane &lane = lanes_[tenant];
        if (lane.waiting.empty())
            rotation_.push_back(tenant);
        lane.waiting.push_back(
            Entry{std::move(item), deadline_abs_ms, next_seq_++});
        ++depth_;
        ++stats_.admitted;
        lock.unlock();
        ready_.notifyOne();
        return {true, 0.0};
    }

    /**
     * Blocks for the next item (round-robin across tenants, earliest
     * deadline within a tenant).  Returns false when the queue was
     * closed and drained — the worker-loop exit signal.
     */
    [[nodiscard]] bool
    pop(Item &out)
    {
        sync::MutexLock lock(mutex_);
        // Caller-owned predicate loop (common/sync.hpp): the guarded
        // reads stay in a scope the analysis can see is locked.
        while (depth_ == 0 && !closed_)
            ready_.wait(lock);
        if (depth_ == 0)
            return false;
        QAOA_ASSERT(!rotation_.empty(), "queue: depth>0 but no tenants");
        const std::string tenant = rotation_.front();
        rotation_.pop_front();
        Lane &lane = lanes_[tenant];
        std::size_t best = 0;
        for (std::size_t i = 1; i < lane.waiting.size(); ++i)
            if (earlier(lane.waiting[i], lane.waiting[best]))
                best = i;
        out = std::move(lane.waiting[best].item);
        lane.waiting.erase(lane.waiting.begin() +
                           static_cast<std::ptrdiff_t>(best));
        if (lane.waiting.empty())
            lanes_.erase(tenant);
        else
            rotation_.push_back(tenant);
        --depth_;
        ++stats_.popped;
        return true;
    }

    /** Feeds a completed request's service time into the EMA. */
    void
    noteServiceMs(double ms)
    {
        sync::MutexLock lock(mutex_);
        constexpr double kAlpha = 0.2;
        ema_ms_ = ema_ms_ <= 0.0 ? ms : kAlpha * ms + (1 - kAlpha) * ema_ms_;
    }

    /** Stops admissions and wakes blocked pop() callers; queued items
     *  still drain (pop() returns false only when empty AND closed). */
    void
    close()
    {
        {
            sync::MutexLock lock(mutex_);
            closed_ = true;
        }
        ready_.notifyAll();
    }

    /** Queued-item count. */
    [[nodiscard]] std::size_t
    size() const
    {
        sync::MutexLock lock(mutex_);
        return depth_;
    }

    [[nodiscard]] std::size_t
    capacity() const
    {
        return capacity_;
    }

    /** Occupancy in [0, 1] — the server's pressure signal. */
    [[nodiscard]] double
    occupancy() const
    {
        sync::MutexLock lock(mutex_);
        return static_cast<double>(depth_) /
               static_cast<double>(capacity_);
    }

    [[nodiscard]] QueueStats
    stats() const
    {
        sync::MutexLock lock(mutex_);
        QueueStats snapshot = stats_;
        snapshot.depth = depth_;
        snapshot.tenants = lanes_.size();
        snapshot.ema_service_ms = ema_ms_;
        return snapshot;
    }

  private:
    struct Entry
    {
        Item item;
        double deadline_abs_ms;
        std::uint64_t seq;
    };

    struct Lane
    {
        std::vector<Entry> waiting;
    };

    static bool
    earlier(const Entry &a, const Entry &b)
    {
        if (a.deadline_abs_ms != b.deadline_abs_ms)
            return a.deadline_abs_ms < b.deadline_abs_ms;
        return a.seq < b.seq;
    }

    double
    retryAfterLocked() const QAOA_REQUIRES(mutex_)
    {
        const double waves =
            static_cast<double>(depth_ + 1) /
            static_cast<double>(workers_);
        const double ms = waves * (ema_ms_ > 0.0 ? ema_ms_ : 1.0);
        return ms < 1.0 ? 1.0 : ms;
    }

    mutable sync::Mutex mutex_;
    sync::CondVar ready_;

    // Immutable after construction (no guard needed).
    std::size_t capacity_;
    int workers_;

    double ema_ms_ QAOA_GUARDED_BY(mutex_);
    bool closed_ QAOA_GUARDED_BY(mutex_) = false;
    std::size_t depth_ QAOA_GUARDED_BY(mutex_) = 0;
    std::uint64_t next_seq_ QAOA_GUARDED_BY(mutex_) = 0;
    std::unordered_map<std::string, Lane> lanes_ QAOA_GUARDED_BY(mutex_);
    std::deque<std::string> rotation_ QAOA_GUARDED_BY(mutex_);
    QueueStats stats_ QAOA_GUARDED_BY(mutex_);
};

} // namespace qaoa::serve

#endif // QAOA_SERVE_QUEUE_HPP
