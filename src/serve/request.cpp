#include "serve/request.hpp"

#include <sstream>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "graph/io.hpp"
#include "opt/checkpoint.hpp"

namespace qaoa::serve {

namespace {

constexpr const char *kCanonicalVersion = "qaoa-serve-req-v2";

/**
 * Lossless graph rendering for the canonical form.  writeEdgeList()
 * prints weights at default ostream precision (6 significant digits),
 * which would collapse weights differing only beyond that into the
 * same fingerprint — and the canonical-match collision guard would
 * pass, serving the wrong cached circuit.  Hexfloat weights keep the
 * fingerprint faithful to every bit the compiled rz angles depend on.
 */
std::string
canonicalGraph(const graph::Graph &g)
{
    std::string out = std::to_string(g.numNodes());
    for (const graph::Edge &e : g.edges()) {
        out += ';';
        out += std::to_string(e.u) + "-" + std::to_string(e.v) + "@" +
               opt::formatHexDouble(e.weight);
    }
    return out;
}

std::string
joinDoubles(const std::vector<double> &v)
{
    std::string out;
    for (std::size_t i = 0; i < v.size(); ++i) {
        if (i)
            out += ',';
        out += opt::formatHexDouble(v[i]);
    }
    return out;
}

std::vector<double>
splitDoubles(const std::string &text)
{
    std::vector<double> out;
    std::size_t start = 0;
    while (start <= text.size() && !text.empty()) {
        const std::size_t pos = text.find(',', start);
        const std::string item =
            pos == std::string::npos ? text.substr(start)
                                     : text.substr(start, pos - start);
        out.push_back(opt::parseHexDouble(item));
        if (pos == std::string::npos)
            break;
        start = pos + 1;
    }
    return out;
}

std::string
joinInts(const std::vector<int> &v)
{
    std::string out;
    for (std::size_t i = 0; i < v.size(); ++i) {
        if (i)
            out += ',';
        out += std::to_string(v[i]);
    }
    return out;
}

std::vector<int>
splitInts(const std::string &text)
{
    std::vector<int> out;
    std::size_t start = 0;
    while (start <= text.size() && !text.empty()) {
        const std::size_t pos = text.find(',', start);
        const std::string item =
            pos == std::string::npos ? text.substr(start)
                                     : text.substr(start, pos - start);
        QAOA_CHECK(!item.empty(),
                   "request: empty item in int list: " << text);
        out.push_back(std::stoi(item));
        if (pos == std::string::npos)
            break;
        start = pos + 1;
    }
    return out;
}

std::string
joinEdges(const std::vector<std::pair<int, int>> &edges)
{
    std::string out;
    for (std::size_t i = 0; i < edges.size(); ++i) {
        if (i)
            out += ',';
        out += std::to_string(edges[i].first) + "-" +
               std::to_string(edges[i].second);
    }
    return out;
}

std::vector<std::pair<int, int>>
splitEdges(const std::string &text)
{
    std::vector<std::pair<int, int>> out;
    std::stringstream ss(text);
    std::string item;
    while (std::getline(ss, item, ',')) {
        QAOA_CHECK(!item.empty(),
                   "request: empty item in edge list: " << text);
        const std::size_t dash = item.find('-');
        QAOA_CHECK(dash != std::string::npos && dash > 0 &&
                       dash + 1 < item.size(),
                   "request: bad edge (want a-b): " << item);
        out.emplace_back(std::stoi(item.substr(0, dash)),
                         std::stoi(item.substr(dash + 1)));
    }
    return out;
}

bool
parseBool(const std::string &text, const char *what)
{
    QAOA_CHECK(text == "0" || text == "1",
               "request: " << what << " must be 0 or 1, got: " << text);
    return text == "1";
}

} // namespace

std::string
canonicalText(const CompileRequest &r)
{
    // One field per line, fixed order, versioned.  Everything the
    // compiled artifact depends on appears here; serving metadata
    // (id, tenant, timeout) deliberately does not.
    std::ostringstream os;
    os << kCanonicalVersion << "\n"
       << "graph=" << canonicalGraph(r.problem) << "\n"
       << "device=" << r.device << "\n"
       << "method=" << r.method << "\n"
       << "gammas=" << joinDoubles(r.gammas) << "\n"
       << "betas=" << joinDoubles(r.betas) << "\n"
       << "packing=" << r.packing_limit << "\n"
       << "seed=" << r.seed << "\n"
       << "fault.dead=" << joinInts(r.faults.dead_qubits) << "\n"
       << "fault.edges=" << joinEdges(r.faults.disabled_edges) << "\n"
       << "fault.qubit_rate="
       << opt::formatHexDouble(r.faults.qubit_fault_rate) << "\n"
       << "fault.edge_rate="
       << opt::formatHexDouble(r.faults.edge_fault_rate) << "\n"
       << "fault.drift="
       << opt::formatHexDouble(r.faults.drift_multiplier) << "\n"
       << "fault.seed=" << r.faults.seed << "\n"
       << "router.lookahead_weight="
       << opt::formatHexDouble(r.lookahead_weight) << "\n"
       << "router.lookahead_depth=" << r.lookahead_depth << "\n"
       << "router.seed=" << r.router_seed << "\n"
       << "decompose=" << (r.decompose ? 1 : 0) << "\n"
       << "peephole=" << (r.peephole ? 1 : 0) << "\n"
       << "fallbacks=" << (r.allow_fallbacks ? 1 : 0) << "\n"
       << "verify=" << (r.verify ? 1 : 0) << "\n"
       << "analyze=" << (r.analyze_quality ? 1 : 0) << "\n"
       << "stage_budget=" << opt::formatHexDouble(r.stage_budget_ms)
       << "\n";
    return os.str();
}

std::string
requestFingerprint(const CompileRequest &request)
{
    Fnv1a h;
    h.str(canonicalText(request));
    return h.hex();
}

void
requestToRecord(const CompileRequest &r, kv::Record &out)
{
    out.set("id", r.id);
    if (!r.tenant.empty())
        out.set("tenant", r.tenant);
    if (r.timeout_ms >= 0.0)
        out.set("timeout_ms", opt::formatHexDouble(r.timeout_ms));
    out.set("graph", graph::writeEdgeList(r.problem));
    out.set("device", r.device);
    out.set("method", r.method);
    out.set("gammas", joinDoubles(r.gammas));
    out.set("betas", joinDoubles(r.betas));
    out.set("packing", std::to_string(r.packing_limit));
    out.set("seed", std::to_string(r.seed));
    if (!r.faults.dead_qubits.empty())
        out.set("dead_qubits", joinInts(r.faults.dead_qubits));
    if (!r.faults.disabled_edges.empty())
        out.set("disabled_edges", joinEdges(r.faults.disabled_edges));
    if (r.faults.qubit_fault_rate != 0.0)
        out.set("fault_qubit_rate",
                opt::formatHexDouble(r.faults.qubit_fault_rate));
    if (r.faults.edge_fault_rate != 0.0)
        out.set("fault_edge_rate",
                opt::formatHexDouble(r.faults.edge_fault_rate));
    if (r.faults.drift_multiplier != 1.0)
        out.set("fault_drift",
                opt::formatHexDouble(r.faults.drift_multiplier));
    out.set("fault_seed", std::to_string(r.faults.seed));
    out.set("lookahead_weight", opt::formatHexDouble(r.lookahead_weight));
    out.set("lookahead_depth", std::to_string(r.lookahead_depth));
    out.set("router_seed", std::to_string(r.router_seed));
    out.set("decompose", r.decompose ? "1" : "0");
    out.set("peephole", r.peephole ? "1" : "0");
    out.set("fallbacks", r.allow_fallbacks ? "1" : "0");
    out.set("verify", r.verify ? "1" : "0");
    out.set("analyze", r.analyze_quality ? "1" : "0");
    if (r.stage_budget_ms >= 0.0)
        out.set("stage_budget_ms",
                opt::formatHexDouble(r.stage_budget_ms));
}

CompileRequest
requestFromRecord(const kv::Record &record, int max_nodes)
{
    CompileRequest r;
    r.id = record.get("id", "");
    r.tenant = record.get("tenant", "");
    if (record.has("timeout_ms"))
        r.timeout_ms = opt::parseHexDouble(record.get("timeout_ms"));
    r.problem = graph::parseEdgeList(record.get("graph"));
    QAOA_CHECK(r.problem.numNodes() >= 1 &&
                   r.problem.numNodes() <= max_nodes,
               "request: graph has " << r.problem.numNodes()
                                     << " nodes, limit is " << max_nodes);
    r.device = record.get("device", r.device);
    r.method = record.get("method", r.method);
    // Validate names at admission time, not deep inside a worker.
    // qe-allow(QE104): lookup-as-validation — only the throw matters.
    (void)hw::deviceByName(r.device);
    // qe-allow(QE104): lookup-as-validation — only the throw matters.
    (void)core::methodFromName(r.method);
    if (record.has("gammas"))
        r.gammas = splitDoubles(record.get("gammas"));
    if (record.has("betas"))
        r.betas = splitDoubles(record.get("betas"));
    QAOA_CHECK(!r.gammas.empty() && r.gammas.size() == r.betas.size(),
               "request: gammas/betas must be non-empty and equal-length");
    if (record.has("packing"))
        r.packing_limit = std::stoi(record.get("packing"));
    if (record.has("seed"))
        r.seed = std::stoull(record.get("seed"));
    if (record.has("dead_qubits"))
        r.faults.dead_qubits = splitInts(record.get("dead_qubits"));
    if (record.has("disabled_edges"))
        r.faults.disabled_edges = splitEdges(record.get("disabled_edges"));
    if (record.has("fault_qubit_rate"))
        r.faults.qubit_fault_rate =
            opt::parseHexDouble(record.get("fault_qubit_rate"));
    if (record.has("fault_edge_rate"))
        r.faults.edge_fault_rate =
            opt::parseHexDouble(record.get("fault_edge_rate"));
    if (record.has("fault_drift"))
        r.faults.drift_multiplier =
            opt::parseHexDouble(record.get("fault_drift"));
    if (record.has("fault_seed"))
        r.faults.seed = std::stoull(record.get("fault_seed"));
    if (record.has("lookahead_weight"))
        r.lookahead_weight =
            opt::parseHexDouble(record.get("lookahead_weight"));
    if (record.has("lookahead_depth"))
        r.lookahead_depth = std::stoi(record.get("lookahead_depth"));
    if (record.has("router_seed"))
        r.router_seed = std::stoull(record.get("router_seed"));
    if (record.has("decompose"))
        r.decompose = parseBool(record.get("decompose"), "decompose");
    if (record.has("peephole"))
        r.peephole = parseBool(record.get("peephole"), "peephole");
    if (record.has("fallbacks"))
        r.allow_fallbacks =
            parseBool(record.get("fallbacks"), "fallbacks");
    if (record.has("verify"))
        r.verify = parseBool(record.get("verify"), "verify");
    if (record.has("analyze"))
        r.analyze_quality = parseBool(record.get("analyze"), "analyze");
    if (record.has("stage_budget_ms"))
        r.stage_budget_ms =
            opt::parseHexDouble(record.get("stage_budget_ms"));
    return r;
}

StatusOr<CompileRequest>
tryRequestFromRecord(const kv::Record &record, int max_nodes)
{
    try {
        return requestFromRecord(record, max_nodes);
    } catch (const Error &e) {
        return e.status();
    } catch (const std::invalid_argument &e) {
        // std::sto* rejects an unparseable numeric field this way; it
        // derives from logic_error but describes the CLIENT's input.
        return Status(ErrorCode::Malformed,
                      std::string("request: unparseable numeric field: ") +
                          e.what());
    } catch (const std::out_of_range &e) {
        return Status(ErrorCode::Malformed,
                      std::string("request: numeric field out of range: ") +
                          e.what());
    } catch (const std::exception &e) {
        return Status(ErrorCode::InvalidArgument, e.what());
    }
}

RequestEnvironment::RequestEnvironment(const CompileRequest &request)
    : base_map(hw::deviceByName(request.device)),
      base_calib(hw::defaultCalibration(base_map))
{
    if (!request.faults.empty())
        injector = std::make_unique<hw::FaultInjector>(
            base_map, request.faults, &base_calib);
}

std::unique_ptr<RequestEnvironment>
makeEnvironment(const CompileRequest &request)
{
    return std::make_unique<RequestEnvironment>(request);
}

core::QaoaCompileOptions
makeOptions(const CompileRequest &r, const RequestEnvironment &env)
{
    core::QaoaCompileOptions opts;
    opts.method = core::methodFromName(r.method);
    opts.gammas = r.gammas;
    opts.betas = r.betas;
    opts.packing_limit = r.packing_limit;
    opts.seed = r.seed;
    opts.calibration = &env.calibration();
    opts.router.lookahead_weight = r.lookahead_weight;
    opts.router.lookahead_depth = r.lookahead_depth;
    opts.router.seed = r.router_seed;
    opts.decompose_to_basis = r.decompose;
    opts.peephole = r.peephole;
    opts.allow_fallbacks = r.allow_fallbacks;
    opts.verify = r.verify;
    opts.analyze_quality = r.analyze_quality;
    opts.stage_budget_ms = r.stage_budget_ms;
    if (env.injector) {
        opts.allowed_qubits = &env.injector->usable();
        opts.device_degraded = !env.injector->deadQubits().empty() ||
                               !env.injector->disabledEdges().empty();
    }
    return opts;
}

} // namespace qaoa::serve
