/**
 * @file
 * Content-addressed compile cache: the cheapest compile is the one you
 * never redo.
 *
 * Entries are keyed by serve::requestFingerprint() and hold everything
 * a cache hit needs to answer a request without recompiling: the
 * compiled circuit as a qbin document (circuit/qbin.hpp — bit-exact
 * angles, so a hit is byte-identical to the compile that produced it),
 * the §V-A metrics, the status and the diagnostics.  Each entry also
 * stores its canonical request text; lookups compare it against the
 * requester's canonical text, so an FNV collision degrades to a miss
 * instead of serving a stale artifact.
 *
 * Capacity is bounded by entries AND bytes; the victim on overflow is
 * chosen by a pluggable ReplacementPolicy (LRU by default, FIFO as the
 * scan-resistant alternative), modeled on quicksilver's
 * replacement-policy suite.
 *
 * Persistence is crash-safe and durable by construction: one file per
 * entry (`<key>.cce`, a versioned qbin artifact document), written
 * atomically + fsync'ed through fs::tryAtomicWriteFile().  A persist
 * that fails with ENOSPC triggers an emergency eviction pass (victims'
 * disk files are unlinked to actually free space) and one retry before
 * degrading to memory-only.  loadFromDir() quarantines entries that
 * fail to decode (renamed to `<name>.corrupt`; unreadable files —
 * transient EIO, not ENOENT — get `<name>.corrupt.<errno>`) instead of
 * refusing to start — a half-written cache after kill -9 costs warm-up
 * time, never availability, and never a wrong answer.  scrub()
 * re-verifies resident entries on demand and self-heals drifted or
 * vanished disk copies from memory.  Entries from
 * the retired v1 text format are set aside as `<name>.legacy` and
 * counted separately (CacheStats::retired): their 12-digit decimal
 * angles cannot honor the bit-exact contract, so they are recompiled
 * rather than trusted.
 *
 * All public methods are thread-safe.
 */

#ifndef QAOA_SERVE_CACHE_HPP
#define QAOA_SERVE_CACHE_HPP

#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/sync.hpp"

namespace qaoa::serve {

/** What a cache hit restores (subset of transpiler::CompileResult). */
struct CacheEntry
{
    std::string key;       ///< requestFingerprint() of the request.
    std::string canonical; ///< canonicalText() — collision guard.
    std::string status;    ///< "ok" or "degraded" (only ok() cached).

    /** Compiled circuit as a qbin circuit document (raw bytes; see
     *  circuit::qbin::encodeCircuit).  Kept encoded so a hit serves
     *  the stored bytes without re-encoding. */
    std::string qbin;
    int depth = 0;
    int gate_count = 0;
    int cx_count = 0;
    int swap_count = 0;
    double compile_ms = 0.0; ///< Original compile's wall time.
    std::vector<std::string> diagnostics;

    /** Approximate memory footprint used for the byte cap. */
    [[nodiscard]] std::uint64_t bytes() const;
};

/** Serializes an entry to the versioned on-disk format (a qbin
 *  artifact document: binary circuit + kv metadata). */
[[nodiscard]] std::string serializeCacheEntry(const CacheEntry &entry);

/** Parses serializeCacheEntry() output; throws on malformed input or a
 *  format-version mismatch (including the retired v1 text format). */
[[nodiscard]] CacheEntry parseCacheEntry(const std::string &bytes);

/**
 * Replacement policy: tracks key recency/insertion order and names the
 * eviction victim.  Implementations are NOT thread-safe; CompileCache
 * calls them under its lock.
 */
class ReplacementPolicy
{
  public:
    virtual ~ReplacementPolicy() = default;

    /** A new key entered the cache. */
    virtual void onInsert(const std::string &key) = 0;

    /** An existing key was served. */
    virtual void onHit(const std::string &key) = 0;

    /** A key left the cache (evicted or invalidated). */
    virtual void onErase(const std::string &key) = 0;

    /** The key to evict next; cache must be non-empty. */
    [[nodiscard]] virtual std::string victim() const = 0;

    /** Policy name for stats/logs ("lru", "fifo"). */
    [[nodiscard]] virtual std::string name() const = 0;
};

/** Least-recently-used: hits refresh recency. */
std::unique_ptr<ReplacementPolicy> makeLruPolicy();

/** Insertion-order FIFO: scan-resistant, hits do not refresh. */
std::unique_ptr<ReplacementPolicy> makeFifoPolicy();

/** Policy by name ("lru" / "fifo"); throws on unknown names. */
std::unique_ptr<ReplacementPolicy>
makePolicyByName(const std::string &name);

/** Capacity limits; an entry larger than max_bytes is never cached. */
struct CacheLimits
{
    std::size_t max_entries = 256;
    std::uint64_t max_bytes = 64ULL << 20;
};

/** Counters exposed by CompileCache::stats(). */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::uint64_t loaded = 0;      ///< Entries restored by loadFromDir().
    std::uint64_t quarantined = 0; ///< Corrupt files set aside (load+scrub).
    std::uint64_t retired = 0;     ///< Readable v1 text entries set aside.
    std::uint64_t read_errors = 0; ///< Transient I/O failures quarantined.
    std::uint64_t emergency_evictions = 0; ///< ENOSPC-driven evictions.
    std::uint64_t scrub_runs = 0;
    std::uint64_t scrub_checked = 0; ///< Entries verified across all scrubs.
    std::uint64_t scrub_healed = 0;  ///< Disk files rewritten from memory.
    std::uint64_t scrub_dropped = 0; ///< Memory entries a scrub discarded.
    std::size_t entries = 0;
    std::uint64_t bytes = 0;

    /** hits / (hits + misses); 0 when idle. */
    [[nodiscard]] double hitRate() const;
};

/** What one CompileCache::scrub() pass found and repaired. */
struct ScrubReport
{
    std::uint64_t checked = 0;     ///< Entries examined.
    std::uint64_t healed = 0;      ///< Disk files rewritten from memory.
    std::uint64_t quarantined = 0; ///< Corrupt disk bytes set aside first.
    std::uint64_t dropped = 0;     ///< Memory entries discarded (qbin bad).
};

/** Thread-safe content-addressed cache with optional disk backing. */
class CompileCache
{
  public:
    /**
     * @param limits  Entry/byte caps.
     * @param policy  Eviction policy; nullptr selects LRU.
     * @param dir     Persistence directory ("" = memory-only).  Created
     *                on first put if missing.
     */
    explicit CompileCache(CacheLimits limits = {},
                          std::unique_ptr<ReplacementPolicy> policy = {},
                          std::string dir = "");

    /**
     * Looks up @p key; @p canonical must match the stored entry's
     * canonical text or the lookup counts as a miss (collision guard).
     */
    [[nodiscard]] std::optional<CacheEntry> get(const std::string &key,
                                                const std::string &canonical);

    /**
     * Inserts (or refreshes) an entry, evicting victims as needed;
     * write-through to disk when a directory is configured.  An entry
     * larger than the byte cap is ignored.  Disk-write failures
     * degrade to memory-only operation (the error is remembered in
     * lastDiskError()) — caching must never take the service down.
     */
    void put(const CacheEntry &entry);

    /**
     * Loads persisted entries (oldest file first, so the policy sees
     * a deterministic insertion order).  Files that fail to decode are
     * renamed to `<name>.corrupt` and counted; readable entries in the
     * retired v1 text format are renamed to `<name>.legacy` and
     * counted as retired (never loaded — their decimal angles are not
     * bit-exact); stale temp files from a killed writer are swept.
     * No-op when memory-only.
     */
    void loadFromDir();

    /**
     * Integrity scrub: verifies every resident entry still decodes
     * (undecodable qbin drops the entry so the next request
     * recompiles) and, when disk-backed, that the on-disk copy exists
     * and is byte-identical to memory.  Corrupt disk bytes are
     * quarantined (`.corrupt`, or `.corrupt.<errno>` for read faults)
     * and the file is rewritten from the validated in-memory copy.
     * Run at startup and periodically by CompileServer.
     */
    ScrubReport scrub();

    /** Counters snapshot. */
    [[nodiscard]] CacheStats stats() const;

    /** Last disk-persistence error ("" when none). */
    [[nodiscard]] std::string lastDiskError() const;

    /** Eviction policy name. */
    [[nodiscard]] std::string policyName() const;

  private:
    void evictLocked() QAOA_REQUIRES(mutex_);
    void eraseEntryLocked(const std::string &key, bool unlink_disk)
        QAOA_REQUIRES(mutex_);
    void emergencyEvictLocked(const std::string &protect)
        QAOA_REQUIRES(mutex_);
    void persistLocked(const CacheEntry &entry) QAOA_REQUIRES(mutex_);
    std::string entryPath(const std::string &key) const;

    mutable sync::Mutex mutex_;

    // Immutable after construction.
    CacheLimits limits_;
    std::string dir_;

    // The policy object itself never changes, but its recency state
    // mutates on every hit/insert/erase — all of which must happen
    // under the cache lock (ReplacementPolicy implementations are not
    // thread-safe by contract).
    std::unique_ptr<ReplacementPolicy> policy_ QAOA_PT_GUARDED_BY(mutex_);

    std::unordered_map<std::string, CacheEntry> entries_
        QAOA_GUARDED_BY(mutex_);
    std::uint64_t bytes_ QAOA_GUARDED_BY(mutex_) = 0;
    CacheStats stats_ QAOA_GUARDED_BY(mutex_);
    std::string disk_error_ QAOA_GUARDED_BY(mutex_);
};

} // namespace qaoa::serve

#endif // QAOA_SERVE_CACHE_HPP
