#include "serve/protocol.hpp"

#include <cerrno>
#include <istream>
#include <ostream>

#include "circuit/qbin.hpp"
#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/fs.hpp"
#include "opt/checkpoint.hpp"

namespace qaoa::serve {

namespace {

std::string
joinLines(const std::vector<std::string> &lines)
{
    std::string out;
    for (std::size_t i = 0; i < lines.size(); ++i) {
        if (i)
            out += '\n';
        out += lines[i];
    }
    return out;
}

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start < text.size()) {
        const std::size_t pos = text.find('\n', start);
        if (pos == std::string::npos) {
            out.push_back(text.substr(start));
            break;
        }
        out.push_back(text.substr(start, pos - start));
        start = pos + 1;
    }
    return out;
}

} // namespace

Status
readFrame(std::istream &in, std::string &payload, std::uint32_t max_bytes)
{
    if (const auto fp = failpoint::poll("serve.frame_read"); fp.fires()) {
        errno = fp.error_number != 0 ? fp.error_number : EIO;
        return {ErrorCode::IoError,
                fs::errnoDetail("protocol: injected read fault"), 0};
    }
    unsigned char header[4];
    in.read(reinterpret_cast<char *>(header), 4);
    const std::streamsize got = in.gcount();
    if (got == 0) {
        // Zero header bytes is a clean disconnect only when the stream
        // actually hit EOF; a read that produced nothing for any other
        // reason (I/O error, stream already failed) is a framing error,
        // not end-of-stream.
        if (!in.eof() || in.bad())
            return {ErrorCode::IoError,
                    "protocol: stream error before a frame header", 0};
        return {ErrorCode::EndOfStream,
                "protocol: clean disconnect at a frame boundary"};
    }
    if (got != 4)
        return {ErrorCode::Truncated,
                "protocol: truncated frame header (got " +
                    std::to_string(got) + " of 4 length bytes)",
                got};
    const std::uint32_t length =
        (static_cast<std::uint32_t>(header[0]) << 24) |
        (static_cast<std::uint32_t>(header[1]) << 16) |
        (static_cast<std::uint32_t>(header[2]) << 8) |
        static_cast<std::uint32_t>(header[3]);
    if (length > max_bytes)
        return {ErrorCode::ResourceExhausted,
                "protocol: frame of " + std::to_string(length) +
                    " bytes exceeds cap of " + std::to_string(max_bytes),
                0};
    payload.resize(length);
    if (length > 0) {
        in.read(payload.data(), static_cast<std::streamsize>(length));
        if (static_cast<std::uint32_t>(in.gcount()) != length)
            return {ErrorCode::Truncated,
                    "protocol: truncated frame body (got " +
                        std::to_string(in.gcount()) + " of " +
                        std::to_string(length) + " bytes)",
                    4 + in.gcount()};
    }
    return Status();
}

void
writeFrame(std::ostream &out, const std::string &payload)
{
    QAOA_CHECK(payload.size() <= kMaxFrameBytes,
               "protocol: refusing to write a "
                   << payload.size() << "-byte frame (cap "
                   << kMaxFrameBytes << ")");
    const auto length = static_cast<std::uint32_t>(payload.size());
    const unsigned char header[4] = {
        static_cast<unsigned char>((length >> 24) & 0xff),
        static_cast<unsigned char>((length >> 16) & 0xff),
        static_cast<unsigned char>((length >> 8) & 0xff),
        static_cast<unsigned char>(length & 0xff),
    };
    const auto fp = failpoint::poll("serve.frame_write");
    if (fp.fires() && fp.action != failpoint::Action::ShortWrite) {
        errno = fp.error_number != 0 ? fp.error_number : EPIPE;
        raiseError(ErrorCode::IoError,
                   fs::errnoDetail("protocol: injected write fault"));
    }
    out.write(reinterpret_cast<const char *>(header), 4);
    if (fp.fires()) {
        // ShortWrite: the header went out, the body never does — the
        // torn frame a daemon dying mid-response leaves on the wire.
        out.flush();
        errno = fp.error_number != 0 ? fp.error_number : EPIPE;
        raiseError(ErrorCode::IoError,
                   fs::errnoDetail("protocol: injected short frame write"));
    }
    out.write(payload.data(),
              static_cast<std::streamsize>(payload.size()));
    if (!out.good()) {
        // EPIPE/closed-pipe territory: with SIGPIPE ignored, a client
        // that vanished mid-response surfaces here as a stream error —
        // a structured IoError the caller can log and survive, never a
        // process-killing signal or an assertion.
        raiseError(ErrorCode::IoError,
                   "protocol: frame write failed (client gone?)");
    }
}

std::string
encodeCompileMessage(const CompileRequest &request)
{
    kv::Record rec;
    rec.set("type", "compile");
    requestToRecord(request, rec);
    return kv::serialize(rec);
}

std::string
encodeCancelMessage(const std::string &id)
{
    kv::Record rec;
    rec.set("type", "cancel");
    rec.set("id", id);
    return kv::serialize(rec);
}

std::string
encodeControlMessage(const std::string &type)
{
    QAOA_CHECK(type == "stats" || type == "shutdown",
               "protocol: unknown control message: " << type);
    kv::Record rec;
    rec.set("type", type);
    return kv::serialize(rec);
}

std::string
encodeResponse(const ServeResponse &r)
{
    kv::Record rec;
    rec.set("type", r.type);
    rec.set("id", r.id);
    if (!r.status.empty())
        rec.set("status", r.status);
    rec.set("cache_hit", r.cache_hit ? "1" : "0");
    rec.set("pressure", r.pressure);
    if (r.type == "shed")
        rec.set("retry_after_ms", opt::formatHexDouble(r.retry_after_ms));
    if (!r.error.empty())
        rec.set("error", r.error);
    if (!r.error_code.empty())
        rec.set("error_code", r.error_code);
    if (r.error_offset >= 0)
        rec.set("error_offset", std::to_string(r.error_offset));
    if (!r.qbin.empty()) {
        // kv records are text-only (flat JSON with a restricted escape
        // set), so the binary circuit document travels base64-encoded.
        rec.set("qbin", circuit::qbin::toBase64(r.qbin));
        rec.set("depth", std::to_string(r.depth));
        rec.set("gate_count", std::to_string(r.gate_count));
        rec.set("cx_count", std::to_string(r.cx_count));
        rec.set("swap_count", std::to_string(r.swap_count));
    }
    rec.set("compile_ms", opt::formatHexDouble(r.compile_ms));
    if (!r.diagnostics.empty())
        rec.set("diagnostics", joinLines(r.diagnostics));
    return kv::serialize(rec);
}

ServeResponse
decodeResponse(const std::string &payload)
{
    const kv::Record rec = kv::parse(payload);
    ServeResponse r;
    r.type = rec.get("type");
    QAOA_CHECK(r.type == "result" || r.type == "shed" ||
                   r.type == "error" || r.type == "stats",
               "protocol: unknown response type: " << r.type);
    r.id = rec.get("id", "");
    r.status = rec.get("status", "");
    r.cache_hit = rec.get("cache_hit", "0") == "1";
    r.pressure = rec.get("pressure", "normal");
    if (rec.has("retry_after_ms"))
        r.retry_after_ms = opt::parseHexDouble(rec.get("retry_after_ms"));
    r.error = rec.get("error", "");
    r.error_code = rec.get("error_code", "");
    if (rec.has("error_offset"))
        r.error_offset = std::stoll(rec.get("error_offset"));
    if (rec.has("qbin"))
        r.qbin = circuit::qbin::fromBase64(rec.get("qbin"));
    if (rec.has("depth"))
        r.depth = std::stoi(rec.get("depth"));
    if (rec.has("gate_count"))
        r.gate_count = std::stoi(rec.get("gate_count"));
    if (rec.has("cx_count"))
        r.cx_count = std::stoi(rec.get("cx_count"));
    if (rec.has("swap_count"))
        r.swap_count = std::stoi(rec.get("swap_count"));
    if (rec.has("compile_ms"))
        r.compile_ms = opt::parseHexDouble(rec.get("compile_ms"));
    if (rec.has("diagnostics"))
        r.diagnostics = splitLines(rec.get("diagnostics"));
    return r;
}

circuit::Circuit
ServeResponse::decodedCircuit() const
{
    QAOA_CHECK(hasCircuit(),
               "protocol: response carries no circuit payload");
    return circuit::qbin::decodeCircuit(qbin);
}

} // namespace qaoa::serve
