#include "serve/cache.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <dirent.h>
#include <sys/stat.h>
#include <sys/types.h>

#include "circuit/qbin.hpp"
#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/fs.hpp"
#include "common/kv.hpp"
#include "opt/checkpoint.hpp"

namespace qaoa::serve {

namespace {

constexpr const char *kCacheFormat = "qaoa-serve-cache-v2";
constexpr const char *kLegacyCacheFormat = "qaoa-serve-cache-v1";
constexpr const char *kEntrySuffix = ".cce";

/** True when @p body is a readable entry in the retired v1 flat-JSON
 *  text format (as opposed to garbage, which quarantines). */
bool
isLegacyTextEntry(const std::string &body)
{
    try {
        return kv::parse(body).get("format", "") == kLegacyCacheFormat;
    } catch (const std::exception &) {
        return false;
    }
}

std::string
joinLines(const std::vector<std::string> &lines)
{
    std::string out;
    for (std::size_t i = 0; i < lines.size(); ++i) {
        if (i)
            out += '\n';
        out += lines[i];
    }
    return out;
}

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start < text.size()) {
        const std::size_t pos = text.find('\n', start);
        if (pos == std::string::npos) {
            out.push_back(text.substr(start));
            break;
        }
        out.push_back(text.substr(start, pos - start));
        start = pos + 1;
    }
    return out;
}

void
ensureDir(const std::string &dir)
{
    if (::mkdir(dir.c_str(), 0775) == 0 || errno == EEXIST)
        return;
    throw std::runtime_error(
        fs::errnoDetail("cache: cannot create directory " + dir));
}

/** LRU: a recency list front=oldest; hits splice to the back. */
class LruPolicy final : public ReplacementPolicy
{
  public:
    void
    onInsert(const std::string &key) override
    {
        order_.push_back(key);
        where_[key] = std::prev(order_.end());
    }

    void
    onHit(const std::string &key) override
    {
        const auto it = where_.find(key);
        QAOA_ASSERT(it != where_.end(), "lru: hit on untracked key");
        order_.splice(order_.end(), order_, it->second);
    }

    void
    onErase(const std::string &key) override
    {
        const auto it = where_.find(key);
        QAOA_ASSERT(it != where_.end(), "lru: erase of untracked key");
        order_.erase(it->second);
        where_.erase(it);
    }

    std::string
    victim() const override
    {
        QAOA_ASSERT(!order_.empty(), "lru: victim() on empty cache");
        return order_.front();
    }

    std::string
    name() const override
    {
        return "lru";
    }

  private:
    std::list<std::string> order_;
    std::unordered_map<std::string, std::list<std::string>::iterator>
        where_;
};

/** FIFO: insertion order only; hits are ignored (scan resistance). */
class FifoPolicy final : public ReplacementPolicy
{
  public:
    void
    onInsert(const std::string &key) override
    {
        order_.push_back(key);
        where_[key] = std::prev(order_.end());
    }

    void
    onHit(const std::string &) override
    {
    }

    void
    onErase(const std::string &key) override
    {
        const auto it = where_.find(key);
        QAOA_ASSERT(it != where_.end(), "fifo: erase of untracked key");
        order_.erase(it->second);
        where_.erase(it);
    }

    std::string
    victim() const override
    {
        QAOA_ASSERT(!order_.empty(), "fifo: victim() on empty cache");
        return order_.front();
    }

    std::string
    name() const override
    {
        return "fifo";
    }

  private:
    std::list<std::string> order_;
    std::unordered_map<std::string, std::list<std::string>::iterator>
        where_;
};

} // namespace

std::uint64_t
CacheEntry::bytes() const
{
    // Each std::string costs its character storage plus the string
    // object itself (pointer/size/capacity header) — count both for
    // the top-level fields and the diagnostics alike, so the byte cap
    // doesn't systematically undercount string-heavy entries.
    const auto strBytes = [](const std::string &s) {
        return static_cast<std::uint64_t>(s.size() + sizeof(std::string));
    };
    std::uint64_t total = sizeof(CacheEntry);
    total += strBytes(key) + strBytes(canonical) + strBytes(status) +
             strBytes(qbin);
    for (const std::string &d : diagnostics)
        total += strBytes(d);
    return total;
}

std::string
serializeCacheEntry(const CacheEntry &entry)
{
    circuit::qbin::Artifact artifact;
    artifact.circuit = entry.qbin;
    kv::Record &rec = artifact.meta;
    rec.set("format", kCacheFormat);
    rec.set("key", entry.key);
    rec.set("canonical", entry.canonical);
    rec.set("status", entry.status);
    rec.set("depth", std::to_string(entry.depth));
    rec.set("gate_count", std::to_string(entry.gate_count));
    rec.set("cx_count", std::to_string(entry.cx_count));
    rec.set("swap_count", std::to_string(entry.swap_count));
    rec.set("compile_ms", opt::formatHexDouble(entry.compile_ms));
    if (!entry.diagnostics.empty())
        rec.set("diagnostics", joinLines(entry.diagnostics));
    return circuit::qbin::encodeArtifact(artifact);
}

CacheEntry
parseCacheEntry(const std::string &bytes)
{
    // decodeArtifact() fully validates the embedded circuit document,
    // so an entry that parses here can never serve a torn circuit.
    const circuit::qbin::Artifact artifact =
        circuit::qbin::decodeArtifact(bytes);
    const kv::Record &rec = artifact.meta;
    QAOA_CHECK(rec.get("format", "") == kCacheFormat,
               "cache entry: unsupported format: "
                   << rec.get("format", "<missing>"));
    CacheEntry entry;
    entry.key = rec.get("key");
    entry.canonical = rec.get("canonical");
    entry.status = rec.get("status");
    QAOA_CHECK(entry.status == "ok" || entry.status == "degraded",
               "cache entry: unexpected status: " << entry.status);
    entry.qbin = artifact.circuit;
    QAOA_CHECK(!entry.key.empty() && !entry.canonical.empty(),
               "cache entry: missing key/canonical");
    entry.depth = std::stoi(rec.get("depth"));
    entry.gate_count = std::stoi(rec.get("gate_count"));
    entry.cx_count = std::stoi(rec.get("cx_count"));
    entry.swap_count = std::stoi(rec.get("swap_count"));
    entry.compile_ms = opt::parseHexDouble(rec.get("compile_ms"));
    if (rec.has("diagnostics"))
        entry.diagnostics = splitLines(rec.get("diagnostics"));
    return entry;
}

std::unique_ptr<ReplacementPolicy>
makeLruPolicy()
{
    return std::make_unique<LruPolicy>();
}

std::unique_ptr<ReplacementPolicy>
makeFifoPolicy()
{
    return std::make_unique<FifoPolicy>();
}

std::unique_ptr<ReplacementPolicy>
makePolicyByName(const std::string &name)
{
    if (name == "lru")
        return makeLruPolicy();
    if (name == "fifo")
        return makeFifoPolicy();
    throw std::runtime_error("cache: unknown eviction policy: " + name +
                             " (want lru or fifo)");
}

double
CacheStats::hitRate() const
{
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) /
                            static_cast<double>(total);
}

CompileCache::CompileCache(CacheLimits limits,
                           std::unique_ptr<ReplacementPolicy> policy,
                           std::string dir)
    : limits_(limits),
      dir_(std::move(dir)),
      policy_(policy ? std::move(policy) : makeLruPolicy())
{
    QAOA_CHECK(limits_.max_entries >= 1,
               "cache: max_entries must be >= 1");
}

std::optional<CacheEntry>
CompileCache::get(const std::string &key, const std::string &canonical)
{
    sync::MutexLock lock(mutex_);
    const auto it = entries_.find(key);
    if (it == entries_.end() || it->second.canonical != canonical) {
        ++stats_.misses;
        return std::nullopt;
    }
    ++stats_.hits;
    policy_->onHit(key);
    return it->second;
}

void
CompileCache::put(const CacheEntry &entry)
{
    QAOA_CHECK(!entry.key.empty(), "cache: entry without a key");
    sync::MutexLock lock(mutex_);
    if (entry.bytes() > limits_.max_bytes)
        return; // Would evict the whole cache for one entry.
    const auto it = entries_.find(entry.key);
    if (it != entries_.end()) {
        bytes_ -= it->second.bytes();
        it->second = entry;
        bytes_ += entry.bytes();
        policy_->onHit(entry.key);
    } else {
        entries_.emplace(entry.key, entry);
        bytes_ += entry.bytes();
        policy_->onInsert(entry.key);
        ++stats_.insertions;
    }
    // Re-enforce the caps on refreshes too: replacing an entry with a
    // larger one must not leave bytes_ above the limit.  The entry
    // itself fits (checked above) and sits at the back of an LRU, but
    // a FIFO may legitimately pick it as victim — persist only if it
    // survived, so disk never holds an entry memory already dropped.
    evictLocked();
    if (entries_.count(entry.key) != 0)
        persistLocked(entry);
}

void
CompileCache::eraseEntryLocked(const std::string &key, bool unlink_disk)
{
    const auto it = entries_.find(key);
    QAOA_ASSERT(it != entries_.end(),
                "cache: erase of untracked key");
    bytes_ -= it->second.bytes();
    entries_.erase(it);
    policy_->onErase(key);
    if (unlink_disk && !dir_.empty()) {
        if (const auto fp = failpoint::poll("cache.evict"); fp.fires()) {
            disk_error_ =
                "cache: evict fault injected for " + entryPath(key);
            return;
        }
        // Best-effort eviction unlink; a leftover file is re-read
        // (and re-validated) on the next load. qe-allow(QE104)
        (void)std::remove(entryPath(key).c_str());
    }
}

void
CompileCache::evictLocked()
{
    while (entries_.size() > limits_.max_entries ||
           bytes_ > limits_.max_bytes) {
        const std::string key = policy_->victim();
        eraseEntryLocked(key, /*unlink_disk=*/true);
        ++stats_.evictions;
    }
}

void
CompileCache::emergencyEvictLocked(const std::string &protect)
{
    // ENOSPC recovery: shed about a quarter of the resident entries
    // (at least one), unlinking their disk files so space is actually
    // freed, then the caller retries the persist.  The entry being
    // persisted is never its own victim.
    std::size_t budget =
        std::max<std::size_t>(1, entries_.size() / 4);
    while (budget > 0 && entries_.size() > 1) {
        const std::string key = policy_->victim();
        if (key == protect)
            break; // The policy would evict the newcomer itself; stop.
        eraseEntryLocked(key, /*unlink_disk=*/true);
        ++stats_.evictions;
        ++stats_.emergency_evictions;
        --budget;
    }
}

void
CompileCache::persistLocked(const CacheEntry &entry)
{
    if (dir_.empty())
        return;
    try {
        ensureDir(dir_);
        if (const auto fp = failpoint::poll("cache.persist"); fp.fires()) {
            disk_error_ =
                "cache: persist fault injected for " + entry.key;
            return;
        }
        const std::string body = serializeCacheEntry(entry);
        int err = 0;
        Status st = fs::tryAtomicWriteFile(entryPath(entry.key), body, &err);
        if (!st.ok() && err == ENOSPC) {
            // Full disk: make room by evicting (files included), then
            // retry once.  Failing that we degrade to memory-only.
            emergencyEvictLocked(entry.key);
            st = fs::tryAtomicWriteFile(entryPath(entry.key), body, &err);
        }
        disk_error_ = st.ok() ? "" : st.message();
    } catch (const std::exception &e) {
        // Keep serving from memory; surface the error via stats.
        disk_error_ = e.what();
    }
}

void
CompileCache::loadFromDir()
{
    if (dir_.empty())
        return;
    struct Candidate
    {
        std::string name;
        long mtime = 0;
    };
    std::vector<Candidate> found;
    {
        DIR *dir = ::opendir(dir_.c_str());
        if (dir == nullptr) {
            if (errno == ENOENT)
                return; // Nothing persisted yet.
            throw std::runtime_error(
                fs::errnoDetail("cache: cannot open directory " + dir_));
        }
        // The DIR* stream is created, walked and closed by this one
        // thread; readdir's thread-unsafety is per-stream, so sharing
        // never happens here.
        while (const dirent *ent = ::readdir(dir)) { // NOLINT(concurrency-mt-unsafe)
            const std::string name = ent->d_name;
            if (name.size() <= std::strlen(kEntrySuffix) ||
                name.rfind(kEntrySuffix) !=
                    name.size() - std::strlen(kEntrySuffix))
                continue;
            struct stat st = {};
            if (::stat((dir_ + "/" + name).c_str(), &st) != 0)
                continue;
            found.push_back({name, static_cast<long>(st.st_mtime)});
        }
        ::closedir(dir);
    }
    // Oldest first: the policy then sees the same order the entries
    // were originally inserted in, so post-restart eviction behaves
    // like the pre-crash cache's.
    std::sort(found.begin(), found.end(),
              [](const Candidate &a, const Candidate &b) {
                  return a.mtime != b.mtime ? a.mtime < b.mtime
                                            : a.name < b.name;
              });

    // Best-effort GC of temp droppings; failure only leaves garbage
    // behind, never affects correctness. qe-allow(QE104)
    (void)fs::removeStaleTempFiles(dir_);

    sync::MutexLock lock(mutex_);
    for (const Candidate &c : found) {
        const std::string path = dir_ + "/" + c.name;
        std::string body;
        int read_errno = 0;
        Status read;
        if (const auto fp = failpoint::poll("cache.reload"); fp.fires()) {
            read_errno = fp.error_number != 0 ? fp.error_number : EIO;
            errno = read_errno;
            read = Status(ErrorCode::IoError,
                          fs::errnoDetail("cache: reload fault injected "
                                          "reading " +
                                          path));
        } else {
            read = fs::tryReadFile(path, body, &read_errno);
        }
        if (read.code() == ErrorCode::NotFound)
            continue; // Vanished between listing and read.
        if (!read.ok()) {
            // Transient I/O fault (EIO and friends), NOT a missing
            // file: the bytes may be fine once the medium recovers, so
            // set the file aside with the errno in the sidecar name
            // and keep starting up instead of aborting.
            // qe-allow(QE104): best-effort quarantine rename.
            (void)fs::renameFile(
                path, path + ".corrupt." +
                          failpoint::errnoShortName(read_errno));
            ++stats_.read_errors;
            ++stats_.quarantined;
            disk_error_ = read.message();
            continue;
        }
        CacheEntry entry;
        bool ok = false;
        try {
            entry = parseCacheEntry(body);
            // The filename must agree with the content address.
            ok = c.name == entry.key + kEntrySuffix;
        } catch (const std::exception &) {
            ok = false;
        }
        if (!ok) {
            if (isLegacyTextEntry(body)) {
                // A healthy entry from the retired v1 text format: its
                // 12-digit decimal angles cannot honor the bit-exact
                // contract, so retire it (recompute on next request)
                // rather than trust it or call it corrupt.
                // qe-allow(QE104): best-effort quarantine rename.
                (void)fs::renameFile(path, path + ".legacy");
                ++stats_.retired;
            } else {
                // qe-allow(QE104): best-effort quarantine rename.
                (void)fs::renameFile(path, path + ".corrupt");
                ++stats_.quarantined;
            }
            continue;
        }
        if (entries_.count(entry.key) != 0 ||
            entry.bytes() > limits_.max_bytes)
            continue;
        entries_.emplace(entry.key, entry);
        bytes_ += entry.bytes();
        policy_->onInsert(entry.key);
        ++stats_.loaded;
        evictLocked();
    }
}

ScrubReport
CompileCache::scrub()
{
    sync::MutexLock lock(mutex_);
    ScrubReport report;
    ++stats_.scrub_runs;
    std::vector<std::string> drop;
    for (const auto &[key, entry] : entries_) {
        ++report.checked;
        // 1. The in-memory artifact must still decode; anything else
        //    would eventually be served.  Drop it — the next request
        //    recompiles — and discard the matching disk file, which
        //    was serialized from the same bad bytes.
        if (!circuit::qbin::tryDecodeCircuit(entry.qbin).ok()) {
            drop.push_back(key);
            continue;
        }
        if (dir_.empty())
            continue;
        // 2. The disk copy must exist and match memory byte-for-byte.
        const std::string path = entryPath(key);
        std::string body;
        int read_errno = 0;
        Status read;
        if (const auto fp = failpoint::poll("cache.scrub"); fp.fires()) {
            read_errno = fp.error_number != 0 ? fp.error_number : EIO;
            errno = read_errno;
            read = Status(ErrorCode::IoError,
                          fs::errnoDetail("cache: scrub fault injected "
                                          "reading " +
                                          path));
        } else {
            read = fs::tryReadFile(path, body, &read_errno);
        }
        const std::string want = serializeCacheEntry(entry);
        if (read.ok() && body == want)
            continue;
        if (!read.ok() && read.code() != ErrorCode::NotFound) {
            // qe-allow(QE104): best-effort quarantine rename.
            (void)fs::renameFile(
                path, path + ".corrupt." +
                          failpoint::errnoShortName(read_errno));
            ++stats_.read_errors;
            ++stats_.quarantined;
            ++report.quarantined;
        } else if (read.ok()) {
            // Readable but drifted from memory: preserve the evidence.
            // qe-allow(QE104): best-effort quarantine rename.
            (void)fs::renameFile(path, path + ".corrupt");
            ++stats_.quarantined;
            ++report.quarantined;
        }
        // Self-heal from the validated in-memory copy (also covers the
        // NotFound case: the file simply vanished).
        int write_errno = 0;
        const Status wrote =
            fs::tryAtomicWriteFile(path, want, &write_errno);
        if (wrote.ok())
            ++report.healed;
        else
            disk_error_ = wrote.message();
    }
    for (const std::string &key : drop) {
        if (!dir_.empty()) {
            // The disk copy encodes the same undecodable circuit;
            // quarantine it for the postmortem rather than let a
            // reload resurrect the entry.
            if (fs::renameFile(entryPath(key),
                               entryPath(key) + ".corrupt")
                    .ok()) {
                ++stats_.quarantined;
                ++report.quarantined;
            }
        }
        eraseEntryLocked(key, /*unlink_disk=*/false);
        ++report.dropped;
    }
    stats_.scrub_checked += report.checked;
    stats_.scrub_healed += report.healed;
    stats_.scrub_dropped += report.dropped;
    return report;
}

CacheStats
CompileCache::stats() const
{
    sync::MutexLock lock(mutex_);
    CacheStats snapshot = stats_;
    snapshot.entries = entries_.size();
    snapshot.bytes = bytes_;
    return snapshot;
}

std::string
CompileCache::lastDiskError() const
{
    sync::MutexLock lock(mutex_);
    return disk_error_;
}

std::string
CompileCache::policyName() const
{
    // name() is stateless, but the policy pointee is lock-guarded as a
    // whole (QAOA_PT_GUARDED_BY) — take the lock rather than carve out
    // an exception the analysis would have to trust.
    sync::MutexLock lock(mutex_);
    return policy_->name();
}

std::string
CompileCache::entryPath(const std::string &key) const
{
    return dir_ + "/" + key + kEntrySuffix;
}

} // namespace qaoa::serve
