/**
 * @file
 * CompileServer: the serve daemon's engine — cache in front, admission
 * queue behind it, a worker group draining compiles.
 *
 * Request lifecycle:
 *
 *   submit() ── cache hit ──────────────────────▶ respond (result, hit)
 *      │
 *      ├── queue full ───────────────────────────▶ respond (shed,
 *      │                                            retry_after_ms)
 *      └── admitted ──▶ worker pops (tenant-fair, ──▶ compile under a
 *                       EDF within tenant)            RunGuard derived
 *                                                     from the client
 *                                                     deadline, at the
 *                                                     current pressure
 *                                                     level ─▶ respond,
 *                                                     maybe cache
 *
 * Overload degrades gracefully instead of timing out: queue occupancy
 * maps to a pressure level (normal / elevated / critical) and each
 * level sheds optional work — quality analysis and peephole first,
 * then fallbacks and verification with tighter stage budgets.  A
 * pressure-downgraded compile reports CompileStatus::Degraded, carries
 * an "admission: ..." diagnostic plus a synthetic "admission" entry in
 * CompileResult::stages, and is never cached (the cache only holds
 * full-fidelity artifacts).
 *
 * Cancellation: every admitted request gets a child of the server's
 * root CancelToken, registered by id.  cancel(id) trips it — a queued
 * request dies cheaply when popped, a running one aborts at the
 * compiler's next poll.  stop() cancels the root, so shutdown never
 * waits for a long compile; drain() is the graceful variant — it
 * closes admissions but leaves the root token alone, so every
 * admitted request is answered at full fidelity first (SIGTERM
 * semantics for a deploy).
 *
 * The compile function is injectable so tests can serve deterministic
 * fakes (fixed latency, forced statuses) through the full admission /
 * cache / cancellation machinery.
 */

#ifndef QAOA_SERVE_SERVER_HPP
#define QAOA_SERVE_SERVER_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/cancel.hpp"
#include "common/parallel.hpp"
#include "common/sync.hpp"
#include "serve/cache.hpp"
#include "serve/protocol.hpp"
#include "serve/queue.hpp"
#include "serve/request.hpp"

namespace qaoa::serve {

/** Load-shedding pressure derived from queue occupancy. */
enum class PressureLevel {
    Normal,   ///< Full-fidelity compiles.
    Elevated, ///< Analysis/peephole off, stage budget halved.
    Critical, ///< Also fallbacks/verify off, stage budget quartered.
};

/** Lowercase pressure name ("normal", "elevated", "critical"). */
std::string pressureName(PressureLevel level);

/** Server tunables. */
struct ServerConfig
{
    int workers = 2;                  ///< Compile worker threads.
    std::size_t queue_capacity = 64;  ///< Bounded backlog before shed.
    double elevated_occupancy = 0.5;  ///< Occupancy => Elevated.
    double critical_occupancy = 0.85; ///< Occupancy => Critical.
    int max_nodes = 64;               ///< Largest admissible problem.

    /** Stage budget (ms) applied when a request has a deadline but no
     *  explicit stage budget; negative disables the default. */
    double default_stage_budget_ms = -1.0;

    CacheLimits cache_limits;        ///< Entry/byte caps.
    std::string cache_dir;           ///< "" = memory-only cache.
    std::string cache_policy = "lru"; ///< makePolicyByName() name.

    /** Run a cache integrity scrub right after loadFromDir(). */
    bool scrub_on_start = true;

    /** Periodic scrub cadence; <= 0 disables the maintenance thread. */
    double scrub_interval_ms = 0.0;
};

/** Aggregate counters from stats(). */
struct ServerStats
{
    std::uint64_t received = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t compiled = 0;  ///< Compiles run to completion (any status).
    std::uint64_t shed = 0;
    std::uint64_t cancelled = 0; ///< Requests dead before/while compiling.
    std::uint64_t errors = 0;    ///< Malformed / throwing requests.
    std::uint64_t pressure_downgrades = 0;
    bool draining = false;           ///< drain() in progress/finished.
    std::string pressure = "normal"; ///< Level at snapshot time.
    QueueStats queue;
    CacheStats cache;
};

/** The serve daemon's engine; see the file comment. */
class CompileServer
{
  public:
    /** Response sink: runs on the submitting thread for inline
     *  responses (hit/shed/error) and on a worker thread otherwise —
     *  must be thread-safe against other callbacks. */
    using ResponseFn = std::function<void(const ServeResponse &)>;

    /** Compile implementation; the default runs
     *  core::compileQaoaMaxcut() against the request's environment. */
    using CompileFn = std::function<transpiler::CompileResult(
        const CompileRequest &, const RequestEnvironment &,
        const core::QaoaCompileOptions &)>;

    explicit CompileServer(ServerConfig config = {},
                           CompileFn compile = {});

    /** Stops (cancelling in-flight compiles) and joins workers. */
    ~CompileServer();

    CompileServer(const CompileServer &) = delete;
    CompileServer &operator=(const CompileServer &) = delete;

    /** Loads the persisted cache and launches the worker group. */
    void start();

    /** Closes admissions, cancels in-flight work, drains the queue
     *  (every admitted request still gets a response) and joins
     *  workers.  Idempotent (shared with drain(): first caller wins). */
    void stop();

    /**
     * Graceful drain (SIGTERM semantics): closes admissions and joins
     * workers like stop(), but does NOT cancel in-flight compiles —
     * every admitted request is answered at full fidelity before this
     * returns.  Idempotent, and a no-op after stop().
     */
    void drain();

    /**
     * Serves @p request: cache hits, sheds and admission errors are
     * answered inline on this thread; admitted requests are answered
     * from a worker via @p done exactly once.
     */
    void submit(CompileRequest request, ResponseFn done);

    /** Cancels the request registered under @p id.
     *  @return true when an in-flight request with that id existed. */
    bool cancel(const std::string &id);

    /** Counters snapshot. */
    ServerStats stats() const;

    /** Current pressure level (queue occupancy mapped to thresholds). */
    PressureLevel pressure() const;

    /** The content-addressed cache (exposed for tests/tools). */
    CompileCache &cacheRef() { return cache_; }

  private:
    struct Pending
    {
        CompileRequest request;
        ResponseFn done;
        run::CancelToken token;
        std::string fingerprint;
        std::string canonical;
        std::chrono::steady_clock::time_point admitted_at{};
        double deadline_abs_ms = 0.0;
    };

    void workerLoop();
    void shutdownImpl(bool cancel_inflight);
    void handle(Pending &pending);
    void respond(Pending &pending, const ServeResponse &response);
    void registerToken(const std::string &id,
                       const run::CancelToken &token);
    void forgetToken(const std::string &id);

    ServerConfig config_;
    CompileFn compile_;

    // cache_ and queue_ are internally synchronized (each owns a leaf
    // mutex); see DESIGN.md §13 for the server → queue/cache ordering:
    // state_mutex_ may be held while *neither* of their locks is
    // taken, and vice versa — the hierarchy has no nesting between
    // them, which is what makes the stats() triple-snapshot safe.
    CompileCache cache_;
    AdmissionQueue<Pending> queue_;
    run::CancelToken root_token_;
    par::WorkerGroup workers_;

    // The periodic cache scrubber.  Its token is a child of the root,
    // so stop() cancels it transitively; drain() cancels it directly
    // (maintenance must not outlive admissions, but in-flight compiles
    // keep running).
    run::CancelToken maintenance_token_;
    par::WorkerGroup maintenance_;

    // Atomic: submit()/stop()/drain() may race from different threads
    // (the ResponseFn contract documents submit as thread-safe).
    std::atomic<bool> started_{false};
    std::atomic<bool> stopped_{false};
    std::atomic<bool> draining_{false};

    /** Counters + token registry.  Leaf lock: never held across a
     *  compile, a response callback, or another component's lock. */
    mutable sync::Mutex state_mutex_;
    std::unordered_map<std::string, run::CancelToken> inflight_
        QAOA_GUARDED_BY(state_mutex_);
    std::uint64_t received_ QAOA_GUARDED_BY(state_mutex_) = 0;
    std::uint64_t cache_hits_ QAOA_GUARDED_BY(state_mutex_) = 0;
    std::uint64_t compiled_ QAOA_GUARDED_BY(state_mutex_) = 0;
    std::uint64_t shed_ QAOA_GUARDED_BY(state_mutex_) = 0;
    std::uint64_t cancelled_ QAOA_GUARDED_BY(state_mutex_) = 0;
    std::uint64_t errors_ QAOA_GUARDED_BY(state_mutex_) = 0;
    std::uint64_t pressure_downgrades_ QAOA_GUARDED_BY(state_mutex_) = 0;
};

} // namespace qaoa::serve

#endif // QAOA_SERVE_SERVER_HPP
