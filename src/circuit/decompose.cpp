#include "circuit/decompose.hpp"

#include <numbers>

#include "common/error.hpp"

namespace qaoa::circuit {

namespace {

constexpr double kPi = std::numbers::pi;

} // namespace

std::vector<Gate>
decomposeGate(const Gate &g)
{
    switch (g.type) {
      case GateType::U1:
      case GateType::U2:
      case GateType::U3:
      case GateType::CNOT:
      case GateType::MEASURE:
      case GateType::BARRIER:
        return {g};
      case GateType::H:
        return {Gate::u2(g.q0, 0.0, kPi)};
      case GateType::X:
        return {Gate::u3(g.q0, kPi, 0.0, kPi)};
      case GateType::Y:
        return {Gate::u3(g.q0, kPi, kPi / 2.0, kPi / 2.0)};
      case GateType::Z:
        return {Gate::u1(g.q0, kPi)};
      case GateType::RX:
        return {Gate::u3(g.q0, g.params[0], -kPi / 2.0, kPi / 2.0)};
      case GateType::RY:
        return {Gate::u3(g.q0, g.params[0], 0.0, 0.0)};
      case GateType::RZ:
        return {Gate::u1(g.q0, g.params[0])};
      case GateType::CPHASE:
        // diag(1, e^iγ, e^iγ, 1) = e^{-iγ/2} · CX · RZ_b(γ) · CX.
        return {Gate::cnot(g.q0, g.q1), Gate::u1(g.q1, g.params[0]),
                Gate::cnot(g.q0, g.q1)};
      case GateType::CZ:
        // CZ = (I⊗H) · CX · (I⊗H).
        return {Gate::u2(g.q1, 0.0, kPi), Gate::cnot(g.q0, g.q1),
                Gate::u2(g.q1, 0.0, kPi)};
      case GateType::SWAP:
        return {Gate::cnot(g.q0, g.q1), Gate::cnot(g.q1, g.q0),
                Gate::cnot(g.q0, g.q1)};
    }
    QAOA_ASSERT(false, "unknown gate type in decomposition");
    return {};
}

Circuit
decomposeToBasis(const Circuit &circuit)
{
    Circuit out(circuit.numQubits());
    for (const Gate &g : circuit.gates())
        for (const Gate &bg : decomposeGate(g))
            out.add(bg);
    return out;
}

Gate
inverseGate(const Gate &g)
{
    switch (g.type) {
      case GateType::H:
      case GateType::X:
      case GateType::Y:
      case GateType::Z:
      case GateType::CNOT:
      case GateType::CZ:
      case GateType::SWAP:
      case GateType::BARRIER:
        return g; // self-inverse (barrier is order-only)
      case GateType::RX:
        return Gate::rx(g.q0, -g.params[0]);
      case GateType::RY:
        return Gate::ry(g.q0, -g.params[0]);
      case GateType::RZ:
        return Gate::rz(g.q0, -g.params[0]);
      case GateType::U1:
        return Gate::u1(g.q0, -g.params[0]);
      case GateType::U2:
        // U2(φ, λ) = U3(π/2, φ, λ); U3(θ, φ, λ)† = U3(-θ, -λ, -φ).
        return Gate::u3(g.q0, -kPi / 2.0, -g.params[1], -g.params[0]);
      case GateType::U3:
        return Gate::u3(g.q0, -g.params[0], -g.params[2], -g.params[1]);
      case GateType::CPHASE:
        return Gate::cphase(g.q0, g.q1, -g.params[0]);
      case GateType::MEASURE:
        QAOA_CHECK(false, "measurement has no unitary inverse");
    }
    QAOA_ASSERT(false, "unknown gate type in inverse");
    return g;
}

Circuit
inverseCircuit(const Circuit &circuit)
{
    Circuit out(circuit.numQubits());
    const auto &gates = circuit.gates();
    for (auto it = gates.rbegin(); it != gates.rend(); ++it)
        out.add(inverseGate(*it));
    return out;
}

bool
isBasisCircuit(const Circuit &circuit)
{
    for (const Gate &g : circuit.gates()) {
        switch (g.type) {
          case GateType::U1:
          case GateType::U2:
          case GateType::U3:
          case GateType::CNOT:
          case GateType::MEASURE:
          case GateType::BARRIER:
            break;
          default:
            return false;
        }
    }
    return true;
}

} // namespace qaoa::circuit
