#include "circuit/qbin.hpp"

#include <bit>
#include <cstring>
#include <limits>

#include "common/error.hpp"

namespace qaoa::circuit::qbin {

namespace {

// Stable wire opcodes.  Grouped by operand layout so the table reads
// as the format spec: 0x0x single-qubit no-angle, 0x1x single-qubit
// with angles, 0x2x two-qubit, 0x3x non-unitary.  Never renumber a
// shipped opcode — add new ones and bump kVersion if the layout moves.
constexpr std::uint8_t kOpH = 0x01;
constexpr std::uint8_t kOpX = 0x02;
constexpr std::uint8_t kOpY = 0x03;
constexpr std::uint8_t kOpZ = 0x04;
constexpr std::uint8_t kOpRX = 0x10;
constexpr std::uint8_t kOpRY = 0x11;
constexpr std::uint8_t kOpRZ = 0x12;
constexpr std::uint8_t kOpU1 = 0x13;
constexpr std::uint8_t kOpU2 = 0x14;
constexpr std::uint8_t kOpU3 = 0x15;
constexpr std::uint8_t kOpCnot = 0x20;
constexpr std::uint8_t kOpCz = 0x21;
constexpr std::uint8_t kOpCphase = 0x22;
constexpr std::uint8_t kOpSwap = 0x23;
constexpr std::uint8_t kOpMeasure = 0x30;
constexpr std::uint8_t kOpBarrier = 0x31;

void appendU8(std::string &out, std::uint8_t v)
{
    out.push_back(static_cast<char>(v));
}

void appendU32(std::string &out, std::uint32_t v)
{
    for (int shift = 0; shift < 32; shift += 8)
        out.push_back(static_cast<char>((v >> shift) & 0xFFu));
}

void appendU64(std::string &out, std::uint64_t v)
{
    for (int shift = 0; shift < 64; shift += 8)
        out.push_back(static_cast<char>((v >> shift) & 0xFFu));
}

void appendHeader(std::string &out, std::uint8_t kind)
{
    out.append(kMagic, sizeof kMagic);
    appendU8(out, kind);
    appendU8(out, kVersion);
    appendU8(out, 0); // reserved
    appendU8(out, 0); // reserved
}

/** Bounds-checked little-endian cursor over an encoded document. */
class Reader
{
  public:
    explicit Reader(const std::string &bytes) : bytes_(bytes) {}

    std::size_t offset() const { return pos_; }
    std::size_t remaining() const { return bytes_.size() - pos_; }
    bool done() const { return pos_ == bytes_.size(); }

    std::uint8_t u8(const char *what)
    {
        need(1, what);
        return static_cast<std::uint8_t>(bytes_[pos_++]);
    }

    std::uint32_t u32(const char *what)
    {
        need(4, what);
        std::uint32_t v = 0;
        for (int shift = 0; shift < 32; shift += 8)
            v |= static_cast<std::uint32_t>(
                     static_cast<unsigned char>(bytes_[pos_++]))
                 << shift;
        return v;
    }

    std::uint64_t u64(const char *what)
    {
        need(8, what);
        std::uint64_t v = 0;
        for (int shift = 0; shift < 64; shift += 8)
            v |= static_cast<std::uint64_t>(
                     static_cast<unsigned char>(bytes_[pos_++]))
                 << shift;
        return v;
    }

    std::string blob(std::size_t n, const char *what)
    {
        need(n, what);
        std::string out = bytes_.substr(pos_, n);
        pos_ += n;
        return out;
    }

  private:
    void need(std::size_t n, const char *what)
    {
        if (remaining() < n)
            raiseError(ErrorCode::Truncated,
                       "qbin: truncated document: need " +
                           std::to_string(n) + " byte(s) for " + what +
                           ", have " + std::to_string(remaining()),
                       static_cast<long long>(pos_));
    }

    const std::string &bytes_;
    std::size_t pos_ = 0;
};

/** raiseError() anchored at the byte the Reader just consumed. */
[[noreturn]] void
failAt(ErrorCode code, const Reader &in, std::size_t field_bytes,
       const std::string &message)
{
    raiseError(code, message,
               static_cast<long long>(in.offset() - field_bytes));
}

/** Parses and validates the 8-byte header, returning the kind byte. */
std::uint8_t readHeader(Reader &in, std::uint8_t expected_kind)
{
    const std::string magic = in.blob(sizeof kMagic, "magic");
    if (std::memcmp(magic.data(), kMagic, sizeof kMagic) != 0)
        failAt(ErrorCode::Malformed, in, sizeof kMagic,
               "qbin: bad magic (not a qbin document)");
    const std::uint8_t kind = in.u8("kind");
    if (kind != kKindCircuit && kind != kKindArtifact)
        failAt(ErrorCode::Unsupported, in, 1,
               "qbin: unknown document kind " + std::to_string(kind));
    if (kind != expected_kind)
        failAt(ErrorCode::Malformed, in, 1,
               "qbin: wrong document kind " + std::to_string(kind) +
                   " (expected " + std::to_string(expected_kind) + ")");
    const std::uint8_t version = in.u8("version");
    if (version != kVersion)
        failAt(ErrorCode::Unsupported, in, 1,
               "qbin: unsupported format version " +
                   std::to_string(version) +
                   " (supported: " + std::to_string(kVersion) + ")");
    const std::uint8_t r0 = in.u8("reserved");
    const std::uint8_t r1 = in.u8("reserved");
    if (r0 != 0 || r1 != 0)
        failAt(ErrorCode::Malformed, in, 2,
               "qbin: nonzero reserved header bytes");
    return kind;
}

const char kB64Alphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

} // namespace

std::uint8_t opcodeOf(GateType type)
{
    switch (type) {
    case GateType::H: return kOpH;
    case GateType::X: return kOpX;
    case GateType::Y: return kOpY;
    case GateType::Z: return kOpZ;
    case GateType::RX: return kOpRX;
    case GateType::RY: return kOpRY;
    case GateType::RZ: return kOpRZ;
    case GateType::U1: return kOpU1;
    case GateType::U2: return kOpU2;
    case GateType::U3: return kOpU3;
    case GateType::CNOT: return kOpCnot;
    case GateType::CZ: return kOpCz;
    case GateType::CPHASE: return kOpCphase;
    case GateType::SWAP: return kOpSwap;
    case GateType::MEASURE: return kOpMeasure;
    case GateType::BARRIER: return kOpBarrier;
    }
    QAOA_ASSERT(false, "qbin: unencodable gate type " << int(type));
    return 0;
}

GateType gateTypeOf(std::uint8_t opcode)
{
    switch (opcode) {
    case kOpH: return GateType::H;
    case kOpX: return GateType::X;
    case kOpY: return GateType::Y;
    case kOpZ: return GateType::Z;
    case kOpRX: return GateType::RX;
    case kOpRY: return GateType::RY;
    case kOpRZ: return GateType::RZ;
    case kOpU1: return GateType::U1;
    case kOpU2: return GateType::U2;
    case kOpU3: return GateType::U3;
    case kOpCnot: return GateType::CNOT;
    case kOpCz: return GateType::CZ;
    case kOpCphase: return GateType::CPHASE;
    case kOpSwap: return GateType::SWAP;
    case kOpMeasure: return GateType::MEASURE;
    case kOpBarrier: return GateType::BARRIER;
    default:
        QAOA_CHECK(false,
                   "qbin: unknown opcode 0x" << std::hex << int(opcode));
        return GateType::H; // unreachable
    }
}

std::string encodeCircuit(const Circuit &circuit)
{
    const auto &gates = circuit.gates();
    std::string out;
    // Worst case per gate: opcode + two u32 operands + three u64 angles.
    out.reserve(kHeaderBytes + 8 + gates.size() * 33);
    appendHeader(out, kKindCircuit);
    appendU32(out, static_cast<std::uint32_t>(circuit.numQubits()));
    appendU32(out, static_cast<std::uint32_t>(gates.size()));
    for (const Gate &g : gates) {
        appendU8(out, opcodeOf(g.type));
        const int arity = gateArity(g.type);
        if (g.type == GateType::BARRIER) {
            // BARRIER is register-wide; no operands on the wire.
        } else {
            appendU32(out, static_cast<std::uint32_t>(g.q0));
            if (arity == 2)
                appendU32(out, static_cast<std::uint32_t>(g.q1));
        }
        if (g.type == GateType::MEASURE)
            appendU32(out, static_cast<std::uint32_t>(g.cbit));
        const int params = gateParamCount(g.type);
        for (int p = 0; p < params; ++p)
            appendU64(out, std::bit_cast<std::uint64_t>(g.params[p]));
    }
    return out;
}

Circuit decodeCircuit(const std::string &bytes)
{
    Reader in(bytes);
    readHeader(in, kKindCircuit);
    const std::uint32_t num_qubits = in.u32("qubit count");
    if (num_qubits > std::uint32_t{1} << 24)
        failAt(ErrorCode::Malformed, in, 4,
               "qbin: implausible qubit count " +
                   std::to_string(num_qubits));
    const std::uint32_t num_gates = in.u32("gate count");
    // A gate record is at least one opcode byte, so a hostile count
    // can't force a huge reserve() on a tiny document.
    if (num_gates > in.remaining())
        failAt(ErrorCode::Malformed, in, 4,
               "qbin: gate count " + std::to_string(num_gates) +
                   " exceeds the " + std::to_string(in.remaining()) +
                   " byte(s) left in the document");
    Circuit circuit(static_cast<int>(num_qubits));
    circuit.reserve(num_gates);
    const auto qubit = [&](const char *what) {
        const std::uint32_t q = in.u32(what);
        if (q >= num_qubits)
            failAt(ErrorCode::Malformed, in, 4,
                   std::string("qbin: ") + what + " " + std::to_string(q) +
                       " outside register of " + std::to_string(num_qubits) +
                       " qubit(s)");
        return static_cast<int>(q);
    };
    const auto opcode = [&] {
        const std::uint8_t op = in.u8("opcode");
        switch (op) {
        case kOpH: case kOpX: case kOpY: case kOpZ:
        case kOpRX: case kOpRY: case kOpRZ:
        case kOpU1: case kOpU2: case kOpU3:
        case kOpCnot: case kOpCz: case kOpCphase: case kOpSwap:
        case kOpMeasure: case kOpBarrier:
            return gateTypeOf(op);
        default:
            failAt(ErrorCode::Unsupported, in, 1,
                   "qbin: unknown opcode " + std::to_string(op));
        }
    };
    for (std::uint32_t i = 0; i < num_gates; ++i) {
        const GateType type = opcode();
        Gate g;
        g.type = type;
        if (type == GateType::BARRIER) {
            g.q0 = -1; // Matches Gate::barrier(): no qubit operand.
        } else {
            g.q0 = qubit("qubit operand");
            if (gateArity(type) == 2)
                g.q1 = qubit("qubit operand");
        }
        if (type == GateType::MEASURE)
            g.cbit = static_cast<int>(in.u32("classical bit"));
        const int params = gateParamCount(type);
        for (int p = 0; p < params; ++p)
            g.params[p] = std::bit_cast<double>(in.u64("angle"));
        circuit.add(g);
    }
    if (!in.done())
        raiseError(ErrorCode::Malformed,
                   "qbin: " + std::to_string(in.remaining()) +
                       " trailing byte(s) after the last gate record",
                   static_cast<long long>(in.offset()));
    return circuit;
}

StatusOr<Circuit> tryDecodeCircuit(const std::string &bytes)
{
    try {
        return decodeCircuit(bytes);
    } catch (const Error &e) {
        return e.status();
    }
}

std::string encodeArtifact(const Artifact &artifact)
{
    // Fully decode (and discard) the embedded document so a torn or
    // non-circuit payload can never be committed to disk or the wire.
    // qe-allow(QE104): decode-as-validation — only the throw matters.
    (void)decodeCircuit(artifact.circuit);
    const std::string meta = kv::serialize(artifact.meta);
    QAOA_CHECK(artifact.circuit.size() <=
                   std::numeric_limits<std::uint32_t>::max(),
               "qbin: circuit document too large for an artifact");
    QAOA_CHECK(meta.size() <= std::numeric_limits<std::uint32_t>::max(),
               "qbin: metadata record too large for an artifact");
    std::string out;
    out.reserve(kHeaderBytes + 8 + artifact.circuit.size() + meta.size());
    appendHeader(out, kKindArtifact);
    appendU32(out, static_cast<std::uint32_t>(artifact.circuit.size()));
    out += artifact.circuit;
    appendU32(out, static_cast<std::uint32_t>(meta.size()));
    out += meta;
    return out;
}

Artifact decodeArtifact(const std::string &bytes)
{
    Reader in(bytes);
    readHeader(in, kKindArtifact);
    Artifact artifact;
    const std::uint32_t circuit_len = in.u32("circuit length");
    artifact.circuit = in.blob(circuit_len, "circuit document");
    const std::uint32_t meta_len = in.u32("metadata length");
    const std::string meta = in.blob(meta_len, "metadata record");
    if (!in.done())
        raiseError(ErrorCode::Malformed,
                   "qbin: " + std::to_string(in.remaining()) +
                       " trailing byte(s) after the artifact metadata",
                   static_cast<long long>(in.offset()));
    // Validate both sections now so a decoded artifact can never hold
    // a torn payload: a truncated or bit-flipped inner document throws
    // here, not at first use.
    // Decode-as-validation — the circuit is rebuilt lazily by
    // consumers; only the throw-on-corrupt matters. qe-allow(QE104)
    (void)decodeCircuit(artifact.circuit);
    artifact.meta = kv::parse(meta);
    return artifact;
}

StatusOr<Artifact> tryDecodeArtifact(const std::string &bytes)
{
    try {
        return decodeArtifact(bytes);
    } catch (const Error &e) {
        return e.status();
    }
}

bool looksLikeQbin(const std::string &bytes)
{
    return bytes.size() >= sizeof kMagic &&
           std::memcmp(bytes.data(), kMagic, sizeof kMagic) == 0;
}

bool bitIdentical(const Circuit &a, const Circuit &b)
{
    if (a.numQubits() != b.numQubits() ||
        a.gates().size() != b.gates().size())
        return false;
    for (std::size_t i = 0; i < a.gates().size(); ++i) {
        const Gate &x = a.gates()[i];
        const Gate &y = b.gates()[i];
        if (x.type != y.type || x.q0 != y.q0 || x.q1 != y.q1 ||
            x.cbit != y.cbit)
            return false;
        for (int p = 0; p < 3; ++p)
            if (std::bit_cast<std::uint64_t>(x.params[p]) !=
                std::bit_cast<std::uint64_t>(y.params[p]))
                return false;
    }
    return true;
}

std::string toBase64(const std::string &bytes)
{
    std::string out;
    out.reserve((bytes.size() + 2) / 3 * 4);
    std::size_t i = 0;
    for (; i + 3 <= bytes.size(); i += 3) {
        const std::uint32_t v =
            (static_cast<std::uint32_t>(
                 static_cast<unsigned char>(bytes[i]))
             << 16) |
            (static_cast<std::uint32_t>(
                 static_cast<unsigned char>(bytes[i + 1]))
             << 8) |
            static_cast<std::uint32_t>(
                static_cast<unsigned char>(bytes[i + 2]));
        out.push_back(kB64Alphabet[(v >> 18) & 0x3F]);
        out.push_back(kB64Alphabet[(v >> 12) & 0x3F]);
        out.push_back(kB64Alphabet[(v >> 6) & 0x3F]);
        out.push_back(kB64Alphabet[v & 0x3F]);
    }
    const std::size_t rest = bytes.size() - i;
    if (rest == 1) {
        const auto b0 =
            static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[i]));
        out.push_back(kB64Alphabet[(b0 >> 2) & 0x3F]);
        out.push_back(kB64Alphabet[(b0 << 4) & 0x3F]);
        out += "==";
    } else if (rest == 2) {
        const std::uint32_t v =
            (static_cast<std::uint32_t>(
                 static_cast<unsigned char>(bytes[i]))
             << 8) |
            static_cast<std::uint32_t>(
                static_cast<unsigned char>(bytes[i + 1]));
        out.push_back(kB64Alphabet[(v >> 10) & 0x3F]);
        out.push_back(kB64Alphabet[(v >> 4) & 0x3F]);
        out.push_back(kB64Alphabet[(v << 2) & 0x3F]);
        out.push_back('=');
    }
    return out;
}

std::string fromBase64(const std::string &text)
{
    if (text.size() % 4 != 0)
        raiseError(ErrorCode::Malformed,
                   "base64: length " + std::to_string(text.size()) +
                       " is not a multiple of 4",
                   static_cast<long long>(text.size()));
    const auto value = [](char c) -> int {
        if (c >= 'A' && c <= 'Z')
            return c - 'A';
        if (c >= 'a' && c <= 'z')
            return c - 'a' + 26;
        if (c >= '0' && c <= '9')
            return c - '0' + 52;
        if (c == '+')
            return 62;
        if (c == '/')
            return 63;
        return -1;
    };
    std::string out;
    out.reserve(text.size() / 4 * 3);
    for (std::size_t i = 0; i < text.size(); i += 4) {
        const bool last = i + 4 == text.size();
        int pad = 0;
        std::uint32_t v = 0;
        for (int j = 0; j < 4; ++j) {
            const char c = text[i + j];
            if (c == '=') {
                if (!last || j < 2)
                    raiseError(ErrorCode::Malformed,
                               "base64: padding before the final group",
                               static_cast<long long>(i + j));
                ++pad;
                v <<= 6;
                continue;
            }
            if (pad != 0)
                raiseError(ErrorCode::Malformed,
                           "base64: data after padding",
                           static_cast<long long>(i + j));
            const int bits = value(c);
            if (bits < 0)
                raiseError(ErrorCode::Malformed,
                           std::string("base64: invalid character '") + c +
                               "'",
                           static_cast<long long>(i + j));
            v = (v << 6) | static_cast<std::uint32_t>(bits);
        }
        out.push_back(static_cast<char>((v >> 16) & 0xFF));
        if (pad < 2)
            out.push_back(static_cast<char>((v >> 8) & 0xFF));
        if (pad < 1)
            out.push_back(static_cast<char>(v & 0xFF));
    }
    return out;
}

StatusOr<std::string> tryFromBase64(const std::string &text)
{
    try {
        return fromBase64(text);
    } catch (const Error &e) {
        return e.status();
    }
}

} // namespace qaoa::circuit::qbin
