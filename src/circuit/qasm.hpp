/**
 * @file
 * OpenQASM 2.0 export.
 *
 * Lets compiled circuits be inspected with external tooling; the dialect
 * covers exactly the gate set of this library.
 */

#ifndef QAOA_CIRCUIT_QASM_HPP
#define QAOA_CIRCUIT_QASM_HPP

#include <string>

#include "circuit/circuit.hpp"

namespace qaoa::circuit {

/**
 * Serializes the circuit as OpenQASM 2.0.
 *
 * CPHASE is emitted as `cu1` (its diag(1,e^iγ,e^iγ,1) form differs from
 * cu1 only by a global phase after the RZ framing; the comment header
 * records the convention).
 */
std::string toQasm(const Circuit &circuit);

} // namespace qaoa::circuit

#endif // QAOA_CIRCUIT_QASM_HPP
