#include "circuit/qasm_parser.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <numbers>
#include <sstream>
#include <vector>

#include "common/error.hpp"

namespace qaoa::circuit {

namespace {

/** Strips surrounding whitespace. */
std::string
trim(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
}

/**
 * Converts a whole token to a non-negative integer, rejecting anything
 * std::stoi would silently truncate ("3x") or throw on ("abc", "",
 * numbers past INT_MAX).  All parser integer conversions funnel through
 * here so malformed input surfaces as a QAOA_CHECK diagnostic with the
 * offending line, never as an escaped std::invalid_argument.
 */
int
parseIndexChecked(const std::string &text, int line, const char *what)
{
    std::string t = trim(text);
    bool all_digits = !t.empty() &&
                      std::all_of(t.begin(), t.end(), [](unsigned char c) {
                          return std::isdigit(c) != 0;
                      });
    QAOA_CHECK(all_digits, "line " << line << ": bad " << what << " '"
                                   << text << "'");
    try {
        return std::stoi(t);
    } catch (const std::out_of_range &) {
        QAOA_CHECK(false, "line " << line << ": " << what
                                  << " out of range '" << text << "'");
    }
    return -1; // unreachable
}

/**
 * Checked strtod starting at @p pos: returns the value and advances
 * @p pos past the consumed characters, or raises a line-numbered
 * diagnostic when no number can be read there.  Unlike std::stod this
 * accepts subnormal literals — strtod flags them ERANGE but still
 * returns the nearest representable value, and the bit-exact text
 * round trip needs them — while genuine overflow is still rejected.
 */
double
parseRealChecked(const std::string &s, std::size_t &pos, int line,
                 const std::string &expr)
{
    const char *start = s.c_str() + pos;
    char *end = nullptr;
    errno = 0;
    const double value = std::strtod(start, &end);
    QAOA_CHECK(end != start, "line " << line << ": bad angle '" << expr
                                     << "'");
    QAOA_CHECK(errno != ERANGE || std::fabs(value) != HUGE_VAL,
               "line " << line << ": angle out of range '" << expr
                       << "'");
    pos += static_cast<std::size_t>(end - start);
    return value;
}

/**
 * Evaluates a simple angle expression: decimal literals and `pi`
 * combined with unary minus, `*` and `/` (left to right, matching the
 * forms qelib headers use).
 */
double
evalAngle(const std::string &expr, int line)
{
    std::string s = trim(expr);
    QAOA_CHECK(!s.empty(), "line " << line << ": empty angle");
    double value = 1.0;
    char op = '*';
    std::size_t i = 0;
    bool first = true;
    while (i < s.size()) {
        while (i < s.size() && std::isspace(s[i]))
            ++i;
        if (i >= s.size())
            break;
        double sign = 1.0;
        while (i < s.size() && (s[i] == '+' || s[i] == '-')) {
            if (s[i] == '-')
                sign = -sign;
            ++i;
        }
        double factor = 0.0;
        if (s.compare(i, 2, "pi") == 0) {
            factor = std::numbers::pi;
            i += 2;
        } else {
            factor = parseRealChecked(s, i, line, expr);
        }
        factor *= sign;
        if (first) {
            value = factor;
            first = false;
        } else if (op == '*') {
            value *= factor;
        } else {
            QAOA_CHECK(factor != 0.0,
                       "line " << line << ": division by zero in angle");
            value /= factor;
        }
        while (i < s.size() && std::isspace(s[i]))
            ++i;
        if (i < s.size()) {
            QAOA_CHECK(s[i] == '*' || s[i] == '/',
                       "line " << line << ": unsupported operator '"
                               << s[i] << "' in angle '" << expr << "'");
            op = s[i];
            ++i;
        }
    }
    QAOA_CHECK(!first, "line " << line << ": empty angle '" << expr
                               << "'");
    return value;
}

/** Parses `q[3]` into 3 (register name must match @p reg). */
int
parseOperand(const std::string &token, const std::string &reg, int line)
{
    std::string t = trim(token);
    std::size_t lb = t.find('['), rb = t.find(']');
    QAOA_CHECK(lb != std::string::npos && rb != std::string::npos &&
                   rb > lb + 1 && trim(t.substr(0, lb)) == reg,
               "line " << line << ": bad operand '" << token << "'");
    return parseIndexChecked(t.substr(lb + 1, rb - lb - 1), line,
                             "qubit index");
}

/** Splits on commas at top level (no nesting in this dialect). */
std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> parts;
    std::string current;
    for (char ch : s) {
        if (ch == ',') {
            parts.push_back(current);
            current.clear();
        } else {
            current += ch;
        }
    }
    parts.push_back(current);
    return parts;
}

} // namespace

Circuit
parseQasm(const std::string &text, const QasmParseOptions &options)
{
    QAOA_CHECK(options.max_qubits >= 1,
               "QasmParseOptions::max_qubits must be >= 1");
    std::istringstream in(text);
    std::string raw_line;
    int line_no = 0;
    bool header_seen = false;
    int num_qubits = -1;
    std::string qreg_name = "q";
    Circuit circuit(0);

    auto checkQubit = [&](int q) {
        QAOA_CHECK(q >= 0 && q < num_qubits,
                   "line " << line_no << ": qubit index " << q
                           << " outside qreg of size " << num_qubits);
        return q;
    };

    while (std::getline(in, raw_line)) {
        ++line_no;
        std::string line = raw_line;
        std::size_t comment = line.find("//");
        if (comment != std::string::npos)
            line = line.substr(0, comment);
        line = trim(line);
        if (line.empty())
            continue;

        if (line.rfind("OPENQASM", 0) == 0) {
            QAOA_CHECK(line.find("2.0") != std::string::npos,
                       "line " << line_no
                               << ": only OPENQASM 2.0 supported");
            header_seen = true;
            continue;
        }
        if (line.rfind("include", 0) == 0)
            continue;
        QAOA_CHECK(header_seen,
                   "line " << line_no << ": missing OPENQASM header");
        QAOA_CHECK(line.back() == ';',
                   "line " << line_no << ": missing ';'");
        line.pop_back();
        line = trim(line);

        if (line.rfind("qreg", 0) == 0) {
            std::size_t lb = line.find('['), rb = line.find(']');
            QAOA_CHECK(lb != std::string::npos && rb != std::string::npos,
                       "line " << line_no << ": bad qreg");
            qreg_name = trim(line.substr(4, lb - 4));
            num_qubits = parseIndexChecked(
                line.substr(lb + 1, rb - lb - 1), line_no, "qreg size");
            QAOA_CHECK(num_qubits >= 1,
                       "line " << line_no << ": empty qreg");
            QAOA_CHECK(num_qubits <= options.max_qubits,
                       "line " << line_no << ": qreg declares "
                               << num_qubits
                               << " qubits, exceeding the limit of "
                               << options.max_qubits
                               << " (QasmParseOptions::max_qubits)");
            circuit = Circuit(num_qubits);
            continue;
        }
        if (line.rfind("creg", 0) == 0)
            continue;
        QAOA_CHECK(num_qubits >= 1,
                   "line " << line_no << ": statement before qreg");

        if (line.rfind("barrier", 0) == 0) {
            circuit.add(Gate::barrier());
            continue;
        }
        if (line.rfind("measure", 0) == 0) {
            std::size_t arrow = line.find("->");
            QAOA_CHECK(arrow != std::string::npos,
                       "line " << line_no << ": measure needs '->'");
            int q = checkQubit(parseOperand(line.substr(7, arrow - 7),
                                            qreg_name, line_no));
            std::string target = trim(line.substr(arrow + 2));
            std::size_t lb = target.find('['), rb = target.find(']');
            QAOA_CHECK(lb != std::string::npos && rb != std::string::npos,
                       "line " << line_no << ": bad classical target");
            int cb = parseIndexChecked(target.substr(lb + 1, rb - lb - 1),
                                       line_no, "classical index");
            circuit.add(Gate::measure(q, cb));
            continue;
        }

        // General gate: name [ '(' params ')' ] operands.
        std::size_t name_end = 0;
        while (name_end < line.size() &&
               (std::isalnum(line[name_end]) || line[name_end] == '_'))
            ++name_end;
        std::string name = line.substr(0, name_end);
        std::string rest = trim(line.substr(name_end));

        std::vector<double> params;
        if (!rest.empty() && rest.front() == '(') {
            std::size_t close = rest.find(')');
            QAOA_CHECK(close != std::string::npos,
                       "line " << line_no << ": unbalanced '('");
            for (const std::string &p :
                 splitCommas(rest.substr(1, close - 1)))
                params.push_back(evalAngle(p, line_no));
            rest = trim(rest.substr(close + 1));
        }
        std::vector<int> qubits;
        for (const std::string &tok : splitCommas(rest))
            qubits.push_back(
                checkQubit(parseOperand(tok, qreg_name, line_no)));

        auto need = [&](std::size_t nq, std::size_t np) {
            QAOA_CHECK(qubits.size() == nq && params.size() == np,
                       "line " << line_no << ": '" << name
                               << "' expects " << nq << " qubits / "
                               << np << " params");
        };
        if (name == "h") {
            need(1, 0);
            circuit.add(Gate::h(qubits[0]));
        } else if (name == "x") {
            need(1, 0);
            circuit.add(Gate::x(qubits[0]));
        } else if (name == "y") {
            need(1, 0);
            circuit.add(Gate::y(qubits[0]));
        } else if (name == "z") {
            need(1, 0);
            circuit.add(Gate::z(qubits[0]));
        } else if (name == "rx") {
            need(1, 1);
            circuit.add(Gate::rx(qubits[0], params[0]));
        } else if (name == "ry") {
            need(1, 1);
            circuit.add(Gate::ry(qubits[0], params[0]));
        } else if (name == "rz") {
            need(1, 1);
            circuit.add(Gate::rz(qubits[0], params[0]));
        } else if (name == "u1") {
            need(1, 1);
            circuit.add(Gate::u1(qubits[0], params[0]));
        } else if (name == "u2") {
            need(1, 2);
            circuit.add(Gate::u2(qubits[0], params[0], params[1]));
        } else if (name == "u3") {
            need(1, 3);
            circuit.add(Gate::u3(qubits[0], params[0], params[1],
                                 params[2]));
        } else if (name == "cx") {
            need(2, 0);
            circuit.add(Gate::cnot(qubits[0], qubits[1]));
        } else if (name == "cz") {
            need(2, 0);
            circuit.add(Gate::cz(qubits[0], qubits[1]));
        } else if (name == "swap") {
            need(2, 0);
            circuit.add(Gate::swap(qubits[0], qubits[1]));
        } else {
            QAOA_CHECK(false, "line " << line_no << ": unsupported gate '"
                                      << name << "'");
        }
    }
    QAOA_CHECK(num_qubits >= 1, "no qreg declaration found");
    return circuit;
}

} // namespace qaoa::circuit
