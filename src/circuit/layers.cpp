#include "circuit/layers.hpp"

#include <algorithm>

namespace qaoa::circuit {

std::vector<std::vector<std::size_t>>
asapLayers(const Circuit &circuit)
{
    std::vector<std::vector<std::size_t>> layers;
    // Earliest free layer per qubit.
    std::vector<std::size_t> ready(
        static_cast<std::size_t>(circuit.numQubits()), 0);

    const auto &gates = circuit.gates();
    for (std::size_t gi = 0; gi < gates.size(); ++gi) {
        const Gate &g = gates[gi];
        if (g.type == GateType::BARRIER) {
            std::size_t frontier = layers.size();
            std::fill(ready.begin(), ready.end(), frontier);
            continue;
        }
        std::size_t slot = ready[static_cast<std::size_t>(g.q0)];
        if (g.arity() == 2)
            slot = std::max(slot, ready[static_cast<std::size_t>(g.q1)]);
        if (slot >= layers.size())
            layers.resize(slot + 1);
        layers[slot].push_back(gi);
        ready[static_cast<std::size_t>(g.q0)] = slot + 1;
        if (g.arity() == 2)
            ready[static_cast<std::size_t>(g.q1)] = slot + 1;
    }
    return layers;
}

int
layerCount(const Circuit &circuit)
{
    return static_cast<int>(asapLayers(circuit).size());
}

Circuit
withLayerBarriers(const Circuit &circuit)
{
    Circuit out(circuit.numQubits());
    const auto layers = asapLayers(circuit);
    for (std::size_t li = 0; li < layers.size(); ++li) {
        if (li > 0)
            out.add(Gate::barrier());
        for (std::size_t gi : layers[li])
            out.add(circuit.gates()[gi]);
    }
    return out;
}

} // namespace qaoa::circuit
