/**
 * @file
 * Quantum circuit container and the paper's circuit-quality metrics.
 *
 * Depth is the length of the critical path counting every gate (including
 * measurements) as one time step — the definition of §V-A.  Gate count is
 * the total number of operations (BARRIERs excluded).
 */

#ifndef QAOA_CIRCUIT_CIRCUIT_HPP
#define QAOA_CIRCUIT_CIRCUIT_HPP

#include <map>
#include <string>
#include <vector>

#include "circuit/gate.hpp"

namespace qaoa::circuit {

/**
 * Ordered list of gates over a fixed qubit register.
 *
 * The same type represents logical circuits (operands are program qubits)
 * and physical circuits (operands are hardware qubits); the transpiler
 * documents which one each function produces.
 */
class Circuit
{
  public:
    /** Creates an empty circuit over @p num_qubits qubits. */
    explicit Circuit(int num_qubits = 0);

    /** Number of qubits in the register. */
    int numQubits() const { return num_qubits_; }

    /** Appends a gate; operands must be inside the register. */
    void add(const Gate &g);

    /** Pre-allocates storage for @p num_gates gates (used by bulk
     *  loaders such as the qbin decoder for a single-allocation fill). */
    void reserve(std::size_t num_gates) { gates_.reserve(num_gates); }

    /** Appends every gate of @p other (registers must match in size). */
    void append(const Circuit &other);

    /** All gates in program order. */
    const std::vector<Gate> &gates() const { return gates_; }

    /** Number of gates, BARRIERs excluded. */
    int gateCount() const;

    /** Number of two-qubit gates. */
    int twoQubitGateCount() const;

    /** Number of gates of the given type. */
    int countType(GateType type) const;

    /** Histogram of gate mnemonics -> counts (BARRIERs excluded). */
    std::map<std::string, int> opCounts() const;

    /**
     * Critical-path depth.
     *
     * Each gate (including MEASURE) occupies one time step on every qubit
     * it touches; BARRIER synchronizes all qubits without consuming a
     * step.  Matches the §V-A definition used for all reported numbers.
     */
    int depth() const;

    /** True when the circuit has no gates. */
    bool empty() const { return gates_.empty(); }

    /** Multi-line dump (one gate per line) for debugging. */
    std::string toString() const;

  private:
    int num_qubits_;
    std::vector<Gate> gates_;
};

} // namespace qaoa::circuit

#endif // QAOA_CIRCUIT_CIRCUIT_HPP
