#include "circuit/qasm.hpp"

#include <iomanip>
#include <sstream>

#include "common/error.hpp"

namespace qaoa::circuit {

namespace {

std::string
fmt(double v)
{
    std::ostringstream os;
    os << std::setprecision(12) << v;
    return os.str();
}

} // namespace

std::string
toQasm(const Circuit &circuit)
{
    std::ostringstream os;
    os << "OPENQASM 2.0;\n"
       << "include \"qelib1.inc\";\n"
       << "// cphase(g) == diag(1, e^ig, e^ig, 1); exported via rz framing\n"
       << "qreg q[" << circuit.numQubits() << "];\n"
       << "creg c[" << circuit.numQubits() << "];\n";

    for (const Gate &g : circuit.gates()) {
        switch (g.type) {
          case GateType::H:
            os << "h q[" << g.q0 << "];\n";
            break;
          case GateType::X:
            os << "x q[" << g.q0 << "];\n";
            break;
          case GateType::Y:
            os << "y q[" << g.q0 << "];\n";
            break;
          case GateType::Z:
            os << "z q[" << g.q0 << "];\n";
            break;
          case GateType::RX:
            os << "rx(" << fmt(g.params[0]) << ") q[" << g.q0 << "];\n";
            break;
          case GateType::RY:
            os << "ry(" << fmt(g.params[0]) << ") q[" << g.q0 << "];\n";
            break;
          case GateType::RZ:
            os << "rz(" << fmt(g.params[0]) << ") q[" << g.q0 << "];\n";
            break;
          case GateType::U1:
            os << "u1(" << fmt(g.params[0]) << ") q[" << g.q0 << "];\n";
            break;
          case GateType::U2:
            os << "u2(" << fmt(g.params[0]) << "," << fmt(g.params[1])
               << ") q[" << g.q0 << "];\n";
            break;
          case GateType::U3:
            os << "u3(" << fmt(g.params[0]) << "," << fmt(g.params[1]) << ","
               << fmt(g.params[2]) << ") q[" << g.q0 << "];\n";
            break;
          case GateType::CNOT:
            os << "cx q[" << g.q0 << "],q[" << g.q1 << "];\n";
            break;
          case GateType::CZ:
            os << "cz q[" << g.q0 << "],q[" << g.q1 << "];\n";
            break;
          case GateType::CPHASE:
            // Exact decomposition in qelib1 terms (global phase dropped).
            os << "cx q[" << g.q0 << "],q[" << g.q1 << "];\n"
               << "rz(" << fmt(g.params[0]) << ") q[" << g.q1 << "];\n"
               << "cx q[" << g.q0 << "],q[" << g.q1 << "];\n";
            break;
          case GateType::SWAP:
            os << "swap q[" << g.q0 << "],q[" << g.q1 << "];\n";
            break;
          case GateType::MEASURE:
            os << "measure q[" << g.q0 << "] -> c[" << g.cbit << "];\n";
            break;
          case GateType::BARRIER:
            os << "barrier q;\n";
            break;
        }
    }
    return os.str();
}

} // namespace qaoa::circuit
