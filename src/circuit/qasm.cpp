#include "circuit/qasm.hpp"

#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/error.hpp"

namespace qaoa::circuit {

namespace {

// Shortest decimal form that parses back to the identical double: try
// 15..17 significant digits (max_digits10 == 17 always suffices for
// IEEE-754 binary64) and take the first that round-trips bit-exactly.
// Keeps common angles short ("0.5", not "0.50000000000000000") while
// guaranteeing write -> parse -> write is a fixed point.
std::string
fmt(double v)
{
    char buf[40];
    for (int prec = 15; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof buf, "%.*g", prec, v);
        if (std::bit_cast<std::uint64_t>(std::strtod(buf, nullptr)) ==
            std::bit_cast<std::uint64_t>(v))
            break;
    }
    return buf;
}

} // namespace

std::string
toQasm(const Circuit &circuit)
{
    std::ostringstream os;
    os << "OPENQASM 2.0;\n"
       << "include \"qelib1.inc\";\n"
       << "// cphase(g) == diag(1, e^ig, e^ig, 1); exported via rz framing\n"
       << "qreg q[" << circuit.numQubits() << "];\n"
       << "creg c[" << circuit.numQubits() << "];\n";

    for (const Gate &g : circuit.gates()) {
        switch (g.type) {
          case GateType::H:
            os << "h q[" << g.q0 << "];\n";
            break;
          case GateType::X:
            os << "x q[" << g.q0 << "];\n";
            break;
          case GateType::Y:
            os << "y q[" << g.q0 << "];\n";
            break;
          case GateType::Z:
            os << "z q[" << g.q0 << "];\n";
            break;
          case GateType::RX:
            os << "rx(" << fmt(g.params[0]) << ") q[" << g.q0 << "];\n";
            break;
          case GateType::RY:
            os << "ry(" << fmt(g.params[0]) << ") q[" << g.q0 << "];\n";
            break;
          case GateType::RZ:
            os << "rz(" << fmt(g.params[0]) << ") q[" << g.q0 << "];\n";
            break;
          case GateType::U1:
            os << "u1(" << fmt(g.params[0]) << ") q[" << g.q0 << "];\n";
            break;
          case GateType::U2:
            os << "u2(" << fmt(g.params[0]) << "," << fmt(g.params[1])
               << ") q[" << g.q0 << "];\n";
            break;
          case GateType::U3:
            os << "u3(" << fmt(g.params[0]) << "," << fmt(g.params[1]) << ","
               << fmt(g.params[2]) << ") q[" << g.q0 << "];\n";
            break;
          case GateType::CNOT:
            os << "cx q[" << g.q0 << "],q[" << g.q1 << "];\n";
            break;
          case GateType::CZ:
            os << "cz q[" << g.q0 << "],q[" << g.q1 << "];\n";
            break;
          case GateType::CPHASE:
            // Exact decomposition in qelib1 terms (global phase dropped).
            os << "cx q[" << g.q0 << "],q[" << g.q1 << "];\n"
               << "rz(" << fmt(g.params[0]) << ") q[" << g.q1 << "];\n"
               << "cx q[" << g.q0 << "],q[" << g.q1 << "];\n";
            break;
          case GateType::SWAP:
            os << "swap q[" << g.q0 << "],q[" << g.q1 << "];\n";
            break;
          case GateType::MEASURE:
            os << "measure q[" << g.q0 << "] -> c[" << g.cbit << "];\n";
            break;
          case GateType::BARRIER:
            os << "barrier q;\n";
            break;
        }
    }
    return os.str();
}

} // namespace qaoa::circuit
