/**
 * @file
 * ASCII circuit rendering for debugging and documentation.
 *
 * Draws one row per qubit, one column per ASAP layer:
 *
 *     q0: -H---●---------M0-
 *     q1: -----Z0.70--x--M1-
 *     q2: -H----------x--M2-
 *
 * Single-qubit gates print their mnemonic (plus the first parameter for
 * rotations); CPHASE prints `●`/`Zγ`, CNOT `●`/`⊕` (ASCII `*`/`+`),
 * SWAP `x`/`x`, measurements `M<cbit>`.
 */

#ifndef QAOA_CIRCUIT_DRAW_HPP
#define QAOA_CIRCUIT_DRAW_HPP

#include <string>

#include "circuit/circuit.hpp"

namespace qaoa::circuit {

/** Options for the renderer. */
struct DrawOptions
{
    int max_columns = 120;   ///< Wrap-off guard: wider drawings are
                             ///< truncated with an ellipsis marker.
    bool show_params = true; ///< Print rotation angles (2 decimals).
};

/** Renders the circuit as multi-line ASCII art. */
std::string drawCircuit(const Circuit &circuit,
                        const DrawOptions &options = {});

} // namespace qaoa::circuit

#endif // QAOA_CIRCUIT_DRAW_HPP
