/**
 * @file
 * Basis translation to the IBM native gate set {U1, U2, U3, CNOT}.
 *
 * Matches the paper's execution model (§II "Basis Gates and Coupling
 * Constraints"): CPHASE is non-native and decomposes into two CNOTs plus a
 * virtual RZ; SWAP costs three CNOTs.  Single-qubit gates map to U1/U2/U3
 * where U1 is the zero-duration virtual Z rotation.
 */

#ifndef QAOA_CIRCUIT_DECOMPOSE_HPP
#define QAOA_CIRCUIT_DECOMPOSE_HPP

#include <vector>

#include "circuit/circuit.hpp"

namespace qaoa::circuit {

/**
 * Expands one gate into basis gates {U1, U2, U3, CNOT, MEASURE}.
 *
 * Identities used (all exact up to global phase):
 *  - H           = U2(0, π)
 *  - X           = U3(π, 0, π);   Y = U3(π, π/2, π/2);   Z = U1(π)
 *  - RX(θ)       = U3(θ, -π/2, π/2);  RY(θ) = U3(θ, 0, 0);  RZ(θ) = U1(θ)
 *  - CPHASE(γ)   = CX(a,b) · U1_b(γ) · CX(a,b)      (diag(1,e^iγ,e^iγ,1)
 *                  up to the global phase e^{-iγ/2})
 *  - CZ          = CPHASE(π) expansion
 *  - SWAP(a,b)   = CX(a,b) · CX(b,a) · CX(a,b)
 */
std::vector<Gate> decomposeGate(const Gate &g);

/** Applies decomposeGate() to every gate; BARRIERs pass through. */
Circuit decomposeToBasis(const Circuit &circuit);

/** True when the circuit only contains {U1, U2, U3, CNOT, MEASURE,
 *  BARRIER}. */
bool isBasisCircuit(const Circuit &circuit);

/**
 * Adjoint (inverse) of a unitary gate.
 *
 * Self-inverse gates return themselves; rotations negate their angle;
 * U2/U3 use U2(φ,λ)† = U3(-π/2, -λ, -φ) and U3(θ,φ,λ)† = U3(-θ,-λ,-φ).
 * @throws std::runtime_error for MEASURE (not unitary).
 */
Gate inverseGate(const Gate &g);

/**
 * Adjoint circuit: gates reversed and inverted (BARRIERs kept in their
 * reversed positions).  Appending it to the original yields the
 * identity — the reversibility property reverse-traversal mapping [57]
 * relies on.
 *
 * @throws std::runtime_error when the circuit contains measurements.
 */
Circuit inverseCircuit(const Circuit &circuit);

} // namespace qaoa::circuit

#endif // QAOA_CIRCUIT_DECOMPOSE_HPP
