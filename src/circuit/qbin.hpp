/**
 * @file
 * qbin: versioned binary encoding for circuits and compile artifacts.
 *
 * Text QASM is the library's interchange format, but it is slow to
 * parse, fat to store, and — decimal rendering being what it is — easy
 * to make lossy.  qbin is the storage/wire format for everything that
 * must round-trip *bit-exactly*: rotation angles are serialized as the
 * raw IEEE-754 bits of the double, so an encode/decode cycle returns
 * the identical circuit by construction, not "to N significant
 * digits".  The serve cache, the serve wire protocol and the compile
 * tools all store circuits in this format (DESIGN.md §12).
 *
 * Layout (all integers little-endian):
 *
 *   header   "QBIN" magic, u8 kind (circuit|artifact), u8 version,
 *            u16 reserved (zero)
 *   circuit  u32 num_qubits, u32 num_gates, then per gate: one opcode
 *            byte followed by the opcode's fixed operand layout —
 *            u32 qubit operand(s), u32 classical bit (MEASURE only),
 *            and one u64 per angle parameter (raw double bits)
 *   artifact u32-length-prefixed circuit document followed by a
 *            u32-length-prefixed flat-JSON metadata record
 *            (common/kv.hpp) for status/metrics/diagnostics
 *
 * Decoding is strict: bad magic, unknown kind/version/opcode, operand
 * indices outside the register, truncation at any byte, or trailing
 * bytes all throw.  A prefix of a valid document never decodes, which
 * is what lets the cache treat "decoded" as "never torn".  The load
 * path is single-allocation per section: the gate vector is reserved
 * from the header count and filled in one pass.
 */

#ifndef QAOA_CIRCUIT_QBIN_HPP
#define QAOA_CIRCUIT_QBIN_HPP

#include <cstdint>
#include <string>

#include "circuit/circuit.hpp"
#include "common/error.hpp"
#include "common/kv.hpp"

namespace qaoa::circuit::qbin {

/** First bytes of every qbin document. */
inline constexpr char kMagic[4] = {'Q', 'B', 'I', 'N'};

/** Document kinds (header byte 4). */
inline constexpr std::uint8_t kKindCircuit = 0x01;
inline constexpr std::uint8_t kKindArtifact = 0x02;

/** Current format version (header byte 5); bump on layout changes. */
inline constexpr std::uint8_t kVersion = 1;

/** Total header size in bytes (magic + kind + version + reserved). */
inline constexpr std::size_t kHeaderBytes = 8;

/** Stable opcode for @p type; independent of the GateType enum order. */
[[nodiscard]] std::uint8_t opcodeOf(GateType type);

/** GateType for @p opcode; throws on an unknown opcode byte. */
[[nodiscard]] GateType gateTypeOf(std::uint8_t opcode);

/** Encodes @p circuit as a kind=circuit document. */
[[nodiscard]] std::string encodeCircuit(const Circuit &circuit);

/**
 * Decodes an encodeCircuit() document.
 *
 * @throws qaoa::Error (code Malformed/Truncated/Unsupported, byte
 *         offset set) on bad magic, an unsupported kind/version, an
 *         unknown opcode, an operand outside the register, truncation,
 *         or trailing bytes.
 */
[[nodiscard]] Circuit decodeCircuit(const std::string &bytes);

/**
 * Non-throwing decode for untrusted input: the Status carries the
 * diagnostic code and the byte offset the Reader computed.
 */
[[nodiscard]] StatusOr<Circuit> tryDecodeCircuit(const std::string &bytes);

/**
 * A compiled circuit plus its serving metadata: the payload stored by
 * the compile cache and written by `qaoa_compile --qbin`.  The
 * metadata record carries whatever the producer needs (status,
 * metrics, diagnostics); qbin itself only guarantees it round-trips.
 */
struct Artifact
{
    std::string circuit; ///< An encodeCircuit() document.
    kv::Record meta;     ///< Flat string metadata (common/kv.hpp).
};

/** Encodes @p artifact as a kind=artifact document.  The circuit
 *  field must carry a plausible circuit document (magic checked). */
[[nodiscard]] std::string encodeArtifact(const Artifact &artifact);

/**
 * Decodes an encodeArtifact() document, fully validating the embedded
 * circuit document (it is decoded and discarded) and metadata record,
 * so a successfully decoded artifact can never hold a torn payload.
 *
 * @throws qaoa::Error as decodeCircuit(), plus on malformed metadata.
 */
[[nodiscard]] Artifact decodeArtifact(const std::string &bytes);

/** Non-throwing decodeArtifact() for untrusted input. */
[[nodiscard]] StatusOr<Artifact> tryDecodeArtifact(const std::string &bytes);

/** True when @p bytes starts with the qbin magic (any kind). */
[[nodiscard]] bool looksLikeQbin(const std::string &bytes);

/**
 * Bit-exact circuit equality: same register, same gate sequence, and
 * every angle identical as raw u64 bits (so -0.0 != 0.0 and two NaN
 * payloads compare by bits, unlike operator==).
 */
[[nodiscard]] bool bitIdentical(const Circuit &a, const Circuit &b);

/** Standard base64 (padded); for shuttling qbin bytes through the
 *  text-only kv wire records. */
[[nodiscard]] std::string toBase64(const std::string &bytes);

/** Strict base64 decode; throws qaoa::Error (code Malformed, byte
 *  offset set) on bad characters, length, or misplaced padding. */
[[nodiscard]] std::string fromBase64(const std::string &text);

/** Non-throwing fromBase64() for untrusted input. */
[[nodiscard]] StatusOr<std::string> tryFromBase64(const std::string &text);

} // namespace qaoa::circuit::qbin

#endif // QAOA_CIRCUIT_QBIN_HPP
