#include "circuit/gate.hpp"

#include <sstream>

#include "common/error.hpp"

namespace qaoa::circuit {

std::string
gateName(GateType type)
{
    switch (type) {
      case GateType::H: return "h";
      case GateType::X: return "x";
      case GateType::Y: return "y";
      case GateType::Z: return "z";
      case GateType::RX: return "rx";
      case GateType::RY: return "ry";
      case GateType::RZ: return "rz";
      case GateType::U1: return "u1";
      case GateType::U2: return "u2";
      case GateType::U3: return "u3";
      case GateType::CNOT: return "cx";
      case GateType::CZ: return "cz";
      case GateType::CPHASE: return "cphase";
      case GateType::SWAP: return "swap";
      case GateType::MEASURE: return "measure";
      case GateType::BARRIER: return "barrier";
    }
    QAOA_ASSERT(false, "unknown gate type");
    return {};
}

int
gateArity(GateType type)
{
    switch (type) {
      case GateType::BARRIER:
        return 0;
      case GateType::CNOT:
      case GateType::CZ:
      case GateType::CPHASE:
      case GateType::SWAP:
        return 2;
      default:
        return 1;
    }
}

int
gateParamCount(GateType type)
{
    switch (type) {
      case GateType::RX:
      case GateType::RY:
      case GateType::RZ:
      case GateType::U1:
      case GateType::CPHASE:
        return 1;
      case GateType::U2:
        return 2;
      case GateType::U3:
        return 3;
      default:
        return 0;
    }
}

bool
isTwoQubit(GateType type)
{
    return gateArity(type) == 2;
}

bool
isSymmetricTwoQubit(GateType type)
{
    return type == GateType::CZ || type == GateType::CPHASE ||
           type == GateType::SWAP;
}

namespace {

Gate
make1q(GateType type, int q, double p0 = 0.0, double p1 = 0.0,
       double p2 = 0.0)
{
    QAOA_CHECK(q >= 0, "negative qubit index " << q);
    Gate g;
    g.type = type;
    g.q0 = q;
    g.params = {p0, p1, p2};
    return g;
}

Gate
make2q(GateType type, int a, int b, double p0 = 0.0)
{
    QAOA_CHECK(a >= 0 && b >= 0, "negative qubit index");
    QAOA_CHECK(a != b, "two-qubit gate with identical operands q" << a);
    Gate g;
    g.type = type;
    g.q0 = a;
    g.q1 = b;
    g.params = {p0, 0.0, 0.0};
    return g;
}

} // namespace

Gate Gate::h(int q) { return make1q(GateType::H, q); }
Gate Gate::x(int q) { return make1q(GateType::X, q); }
Gate Gate::y(int q) { return make1q(GateType::Y, q); }
Gate Gate::z(int q) { return make1q(GateType::Z, q); }

Gate
Gate::rx(int q, double theta)
{
    return make1q(GateType::RX, q, theta);
}

Gate
Gate::ry(int q, double theta)
{
    return make1q(GateType::RY, q, theta);
}

Gate
Gate::rz(int q, double theta)
{
    return make1q(GateType::RZ, q, theta);
}

Gate
Gate::u1(int q, double lambda)
{
    return make1q(GateType::U1, q, lambda);
}

Gate
Gate::u2(int q, double phi, double lambda)
{
    return make1q(GateType::U2, q, phi, lambda);
}

Gate
Gate::u3(int q, double theta, double phi, double lambda)
{
    return make1q(GateType::U3, q, theta, phi, lambda);
}

Gate Gate::cnot(int control, int target)
{
    return make2q(GateType::CNOT, control, target);
}

Gate Gate::cz(int a, int b) { return make2q(GateType::CZ, a, b); }

Gate
Gate::cphase(int a, int b, double gamma)
{
    return make2q(GateType::CPHASE, a, b, gamma);
}

Gate Gate::swap(int a, int b) { return make2q(GateType::SWAP, a, b); }

Gate
Gate::measure(int q, int cbit)
{
    QAOA_CHECK(q >= 0 && cbit >= 0, "negative measure operand");
    Gate g;
    g.type = GateType::MEASURE;
    g.q0 = q;
    g.cbit = cbit;
    return g;
}

Gate
Gate::barrier()
{
    Gate g;
    g.type = GateType::BARRIER;
    g.q0 = -1;
    return g;
}

bool
Gate::actsOn(int q) const
{
    if (type == GateType::BARRIER)
        return true;
    return q0 == q || (arity() == 2 && q1 == q);
}

std::string
Gate::toString() const
{
    std::ostringstream os;
    os << gateName(type);
    int np = gateParamCount(type);
    if (np > 0) {
        os << "(";
        for (int i = 0; i < np; ++i)
            os << (i ? ", " : "") << params[static_cast<std::size_t>(i)];
        os << ")";
    }
    if (type == GateType::BARRIER)
        return os.str();
    os << " q" << q0;
    if (arity() == 2)
        os << ", q" << q1;
    if (type == GateType::MEASURE)
        os << " -> c" << cbit;
    return os.str();
}

} // namespace qaoa::circuit
