/**
 * @file
 * OpenQASM 2.0 parser for the dialect emitted by toQasm().
 *
 * Supports: the 2.0 header, one `qreg`/`creg` pair, comments, and the
 * gate set {h, x, y, z, rx, ry, rz, u1, u2, u3, cx, cz, swap, measure,
 * barrier}.  Enough to round-trip every circuit this library produces
 * and to load externally written QAOA circuits of the same dialect.
 */

#ifndef QAOA_CIRCUIT_QASM_PARSER_HPP
#define QAOA_CIRCUIT_QASM_PARSER_HPP

#include <string>

#include "circuit/circuit.hpp"

namespace qaoa::circuit {

/** Limits applied while parsing untrusted QASM input. */
struct QasmParseOptions
{
    /**
     * Maximum qreg size accepted.  A hostile or mistaken declaration
     * like `qreg q[4000000];` would otherwise commit the process to a
     * huge allocation before a single gate parses; 30 covers every
     * device and study in this library (ibmq_20_tokyo = 20 qubits,
     * the 5x5/6x6 grid studies reach 25/36 — pass a larger cap
     * explicitly for the latter).
     */
    int max_qubits = 30;
};

/**
 * Parses OpenQASM 2.0 text into a Circuit.
 *
 * Angle expressions may be plain decimals or use `pi` (e.g. `pi/2`,
 * `3*pi/4`, `-pi`).
 *
 * @throws std::runtime_error with a line number on malformed input,
 *         unsupported statements, a qreg larger than
 *         options.max_qubits, or an operand index outside the declared
 *         qreg.
 */
[[nodiscard]] Circuit parseQasm(const std::string &text,
                                const QasmParseOptions &options = {});

} // namespace qaoa::circuit

#endif // QAOA_CIRCUIT_QASM_PARSER_HPP
