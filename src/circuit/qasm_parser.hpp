/**
 * @file
 * OpenQASM 2.0 parser for the dialect emitted by toQasm().
 *
 * Supports: the 2.0 header, one `qreg`/`creg` pair, comments, and the
 * gate set {h, x, y, z, rx, ry, rz, u1, u2, u3, cx, cz, swap, measure,
 * barrier}.  Enough to round-trip every circuit this library produces
 * and to load externally written QAOA circuits of the same dialect.
 */

#ifndef QAOA_CIRCUIT_QASM_PARSER_HPP
#define QAOA_CIRCUIT_QASM_PARSER_HPP

#include <string>

#include "circuit/circuit.hpp"

namespace qaoa::circuit {

/**
 * Parses OpenQASM 2.0 text into a Circuit.
 *
 * Angle expressions may be plain decimals or use `pi` (e.g. `pi/2`,
 * `3*pi/4`, `-pi`).
 *
 * @throws std::runtime_error with a line number on malformed input or
 *         unsupported statements.
 */
Circuit parseQasm(const std::string &text);

} // namespace qaoa::circuit

#endif // QAOA_CIRCUIT_QASM_PARSER_HPP
