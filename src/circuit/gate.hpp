/**
 * @file
 * Quantum gate representation.
 *
 * The gate set covers everything the paper's flow touches: the QAOA-native
 * gates (H, RX, CPHASE), the IBM basis gates (U1, U2, U3, CNOT), routing
 * SWAPs, and measurement.  CPHASE(γ) is diag(1, e^{iγ}, e^{iγ}, 1) — the
 * MaxCut ZZ-interaction up to global phase (see DESIGN.md §5).
 */

#ifndef QAOA_CIRCUIT_GATE_HPP
#define QAOA_CIRCUIT_GATE_HPP

#include <array>
#include <string>

namespace qaoa::circuit {

/** Supported gate kinds. */
enum class GateType {
    H,       ///< Hadamard.
    X,       ///< Pauli-X.
    Y,       ///< Pauli-Y.
    Z,       ///< Pauli-Z.
    RX,      ///< Rotation about X by param.
    RY,      ///< Rotation about Y by param.
    RZ,      ///< Rotation about Z by param.
    U1,      ///< Phase gate diag(1, e^{i λ}); param = λ.
    U2,      ///< IBM U2(φ, λ); params = {φ, λ}.
    U3,      ///< IBM U3(θ, φ, λ); params = {θ, φ, λ}.
    CNOT,    ///< Controlled-X; qubits = {control, target}.
    CZ,      ///< Controlled-Z (symmetric).
    CPHASE,  ///< diag(1, e^{iγ}, e^{iγ}, 1); param = γ (symmetric).
    SWAP,    ///< Qubit exchange.
    MEASURE, ///< Z-basis measurement into classical bit `cbit`.
    BARRIER, ///< Scheduling barrier across all qubits.
};

/** Human-readable lowercase mnemonic ("h", "cphase", ...). */
std::string gateName(GateType type);

/** Number of qubit operands (0 for BARRIER, 1 or 2 otherwise). */
int gateArity(GateType type);

/** Number of angle parameters the gate carries (0..3). */
int gateParamCount(GateType type);

/** True for two-qubit gates (CNOT, CZ, CPHASE, SWAP). */
bool isTwoQubit(GateType type);

/** True when swapping the two operands leaves the unitary unchanged. */
bool isSymmetricTwoQubit(GateType type);

/**
 * One circuit operation.
 *
 * Plain value type; use the named factory functions rather than aggregate
 * initialization so operand order and parameter meaning stay obvious at
 * call sites.
 */
struct Gate
{
    GateType type = GateType::H;
    int q0 = 0;               ///< First (or only) qubit operand.
    int q1 = -1;              ///< Second qubit operand; -1 when unused.
    int cbit = -1;            ///< Classical bit for MEASURE; -1 otherwise.
    std::array<double, 3> params{0.0, 0.0, 0.0};

    /** @name Factories
     * @{ */
    static Gate h(int q);
    static Gate x(int q);
    static Gate y(int q);
    static Gate z(int q);
    static Gate rx(int q, double theta);
    static Gate ry(int q, double theta);
    static Gate rz(int q, double theta);
    static Gate u1(int q, double lambda);
    static Gate u2(int q, double phi, double lambda);
    static Gate u3(int q, double theta, double phi, double lambda);
    static Gate cnot(int control, int target);
    static Gate cz(int a, int b);
    static Gate cphase(int a, int b, double gamma);
    static Gate swap(int a, int b);
    static Gate measure(int q, int cbit);
    static Gate barrier();
    /** @} */

    /** Number of qubit operands of this gate. */
    int arity() const { return gateArity(type); }

    /** True when the gate acts on qubit @p q. */
    bool actsOn(int q) const;

    /** Textual form for debugging, e.g. "cphase(0.500) q3, q7". */
    std::string toString() const;

    bool operator==(const Gate &other) const = default;
};

} // namespace qaoa::circuit

#endif // QAOA_CIRCUIT_GATE_HPP
