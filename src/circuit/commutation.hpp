/**
 * @file
 * Gate commutation analysis.
 *
 * The paper's premise (§I) is that the CPHASE gates of a QAOA cost
 * Hamiltonian mutually commute, so their order is free.  This module
 * makes that knowledge first-class: a pairwise commutation test (rule
 * based for the common cases, numeric fallback for the rest) and a
 * commutation-aware layering that may reorder commuting gates — the
 * upper bound on what any order-exploiting pass like IP can achieve.
 */

#ifndef QAOA_CIRCUIT_COMMUTATION_HPP
#define QAOA_CIRCUIT_COMMUTATION_HPP

#include <vector>

#include "circuit/circuit.hpp"

namespace qaoa::circuit {

/**
 * True when the two gates commute as operators.
 *
 * Fast paths: disjoint qubit sets always commute; diagonal gates
 * (Z, RZ, U1, CZ, CPHASE) always commute with each other — this covers
 * the QAOA cost layer.  Everything else falls back to a numeric check
 * of U_a U_b == U_b U_a on the joint register (exact up to 1e-9).
 * MEASURE and BARRIER never commute with anything sharing a qubit.
 */
bool gatesCommute(const Gate &a, const Gate &b);

/**
 * Commutation-aware ASAP layering: a gate may hop over earlier gates it
 * commutes with, landing in the earliest layer whose qubits are free.
 * For a QAOA cost layer (mutually commuting CPHASEs) this reaches layer
 * counts at or near the MOQ lower bound *regardless of input order* —
 * the reordering freedom IP exploits, exposed as a generic analysis.
 *
 * @return Layers of indices into circuit.gates(); concatenating them
 *         yields a valid, semantically equal gate order.
 */
std::vector<std::vector<std::size_t>>
commutationAwareLayers(const Circuit &circuit);

/** Number of commutation-aware layers. */
int commutationAwareLayerCount(const Circuit &circuit);

} // namespace qaoa::circuit

#endif // QAOA_CIRCUIT_COMMUTATION_HPP
