/**
 * @file
 * ASAP layer partitioning.
 *
 * Conventional routers (§III, SWAP Insertion) partition the circuit into
 * layers of concurrently executable gates — gates in one layer touch
 * disjoint qubit sets.  This is also how we measure "number of layers" in
 * the IP/IC discussions.
 */

#ifndef QAOA_CIRCUIT_LAYERS_HPP
#define QAOA_CIRCUIT_LAYERS_HPP

#include <vector>

#include "circuit/circuit.hpp"

namespace qaoa::circuit {

/**
 * Greedy ASAP (as-soon-as-possible) layering.
 *
 * Each gate is placed in the earliest layer after the layers of all gates
 * it depends on (shares a qubit with).  BARRIERs close all open layers and
 * are not emitted themselves.
 *
 * @return Layers in time order; each layer holds indices into
 *         circuit.gates().
 */
std::vector<std::vector<std::size_t>> asapLayers(const Circuit &circuit);

/** Number of ASAP layers (equals asapLayers(c).size()). */
int layerCount(const Circuit &circuit);

/**
 * Rebuilds the circuit as its ASAP layers separated by BARRIERs.
 *
 * This reproduces the execution model of conventional layer-partitioning
 * backends (§III "SWAP Insertion", qiskit/Zulehner-style): the router
 * must satisfy one layer completely before starting the next, so the
 * *order* of commuting gates — the knob IP and IC turn — directly
 * controls layer count, SWAP pressure and depth.  Semantics are
 * unchanged (barriers are scheduling-only).
 */
Circuit withLayerBarriers(const Circuit &circuit);

} // namespace qaoa::circuit

#endif // QAOA_CIRCUIT_LAYERS_HPP
