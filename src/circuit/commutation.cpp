#include "circuit/commutation.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "sim/statevector.hpp"

namespace qaoa::circuit {

namespace {

/** Z-basis diagonal gates: mutually commuting by construction. */
bool
isDiagonal(GateType t)
{
    switch (t) {
      case GateType::Z:
      case GateType::RZ:
      case GateType::U1:
      case GateType::CZ:
      case GateType::CPHASE:
        return true;
      default:
        return false;
    }
}

/** Qubits a gate touches (empty marker for BARRIER handled upstream). */
std::vector<int>
operands(const Gate &g)
{
    if (g.arity() == 2)
        return {g.q0, g.q1};
    return {g.q0};
}

bool
shareQubit(const Gate &a, const Gate &b)
{
    for (int qa : operands(a))
        for (int qb : operands(b))
            if (qa == qb)
                return true;
    return false;
}

/**
 * Numeric commutation test on the joint (<= 3 qubit) register: compares
 * U_a U_b |psi> with U_b U_a |psi> for a few pseudo-random states.
 */
bool
numericallyCommute(const Gate &a, const Gate &b)
{
    // Map global qubits to a compact local register.
    std::vector<int> qubits = operands(a);
    for (int q : operands(b))
        if (std::find(qubits.begin(), qubits.end(), q) == qubits.end())
            qubits.push_back(q);
    auto local = [&](int q) {
        return static_cast<int>(
            std::find(qubits.begin(), qubits.end(), q) - qubits.begin());
    };
    auto relabel = [&](const Gate &g) {
        Gate out = g;
        out.q0 = local(g.q0);
        if (g.arity() == 2)
            out.q1 = local(g.q1);
        return out;
    };
    Gate la = relabel(a), lb = relabel(b);
    const int n = static_cast<int>(qubits.size());

    Rng rng(0xC0117E57ULL);
    for (int trial = 0; trial < 3; ++trial) {
        // Pseudo-random product state + entangler.
        sim::Statevector ab(n), ba(n);
        std::vector<Gate> prep;
        for (int q = 0; q < n; ++q)
            prep.push_back(Gate::u3(q, rng.uniformReal(0.0, 3.0),
                                    rng.uniformReal(0.0, 6.0),
                                    rng.uniformReal(0.0, 6.0)));
        for (int q = 0; q + 1 < n; ++q)
            prep.push_back(Gate::cnot(q, q + 1));
        for (const Gate &p : prep) {
            ab.apply(p);
            ba.apply(p);
        }
        ab.apply(la);
        ab.apply(lb);
        ba.apply(lb);
        ba.apply(la);
        // Exact state comparison (not just up to phase): [A, B] = 0
        // means the full operators match.
        for (std::uint64_t i = 0; i < (1ULL << n); ++i)
            if (std::abs(ab.amplitude(i) - ba.amplitude(i)) > 1e-9)
                return false;
    }
    return true;
}

} // namespace

bool
gatesCommute(const Gate &a, const Gate &b)
{
    // Scheduling primitives pin their position.
    if (a.type == GateType::BARRIER || b.type == GateType::BARRIER)
        return false;
    if (a.type == GateType::MEASURE || b.type == GateType::MEASURE)
        return !shareQubit(a, b);
    if (!shareQubit(a, b))
        return true;
    if (isDiagonal(a.type) && isDiagonal(b.type))
        return true;
    return numericallyCommute(a, b);
}

std::vector<std::vector<std::size_t>>
commutationAwareLayers(const Circuit &circuit)
{
    std::vector<std::vector<std::size_t>> layers;
    const auto &gates = circuit.gates();

    auto qubits_free_in = [&](const Gate &g, std::size_t layer) {
        for (std::size_t gi : layers[layer])
            if (shareQubit(g, gates[gi]) ||
                gates[gi].type == GateType::BARRIER ||
                g.type == GateType::BARRIER)
                return false;
        return true;
    };
    auto commutes_with_layer = [&](const Gate &g, std::size_t layer) {
        for (std::size_t gi : layers[layer])
            if (!gatesCommute(g, gates[gi]))
                return false;
        return true;
    };

    for (std::size_t gi = 0; gi < gates.size(); ++gi) {
        const Gate &g = gates[gi];
        // Scan backwards from the end: the gate can sit in the earliest
        // layer whose qubits are free, provided it commutes with every
        // already-placed gate it would jump over (layers at or after its
        // slot).
        std::size_t slot = layers.size();
        for (std::size_t l = layers.size(); l-- > 0;) {
            if (!commutes_with_layer(g, l)) {
                // Cannot jump over layer l: earliest legal slot is l+1
                // (if its qubits are free there) — handled below.
                break;
            }
            if (qubits_free_in(g, l))
                slot = l;
        }
        if (slot == layers.size())
            layers.emplace_back();
        layers[slot].push_back(gi);
    }
    return layers;
}

int
commutationAwareLayerCount(const Circuit &circuit)
{
    return static_cast<int>(commutationAwareLayers(circuit).size());
}

} // namespace qaoa::circuit
