#include "circuit/circuit.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"

namespace qaoa::circuit {

Circuit::Circuit(int num_qubits) : num_qubits_(num_qubits)
{
    QAOA_CHECK(num_qubits >= 0, "negative register size");
}

void
Circuit::add(const Gate &g)
{
    if (g.type != GateType::BARRIER) {
        QAOA_CHECK(g.q0 >= 0 && g.q0 < num_qubits_,
                   "operand q" << g.q0 << " outside register of size "
                               << num_qubits_);
        if (g.arity() == 2)
            QAOA_CHECK(g.q1 >= 0 && g.q1 < num_qubits_,
                       "operand q" << g.q1 << " outside register of size "
                                   << num_qubits_);
    }
    gates_.push_back(g);
}

void
Circuit::append(const Circuit &other)
{
    QAOA_CHECK(other.num_qubits_ <= num_qubits_,
               "cannot append a circuit over " << other.num_qubits_
                                               << " qubits onto "
                                               << num_qubits_);
    gates_.insert(gates_.end(), other.gates_.begin(), other.gates_.end());
}

int
Circuit::gateCount() const
{
    int n = 0;
    for (const Gate &g : gates_)
        if (g.type != GateType::BARRIER)
            ++n;
    return n;
}

int
Circuit::twoQubitGateCount() const
{
    int n = 0;
    for (const Gate &g : gates_)
        if (isTwoQubit(g.type))
            ++n;
    return n;
}

int
Circuit::countType(GateType type) const
{
    int n = 0;
    for (const Gate &g : gates_)
        if (g.type == type)
            ++n;
    return n;
}

std::map<std::string, int>
Circuit::opCounts() const
{
    std::map<std::string, int> counts;
    for (const Gate &g : gates_)
        if (g.type != GateType::BARRIER)
            ++counts[gateName(g.type)];
    return counts;
}

int
Circuit::depth() const
{
    std::vector<int> level(static_cast<std::size_t>(num_qubits_), 0);
    int max_level = 0;
    for (const Gate &g : gates_) {
        if (g.type == GateType::BARRIER) {
            // Synchronize: every qubit advances to the current frontier.
            int frontier = 0;
            for (int l : level)
                frontier = std::max(frontier, l);
            std::fill(level.begin(), level.end(), frontier);
            continue;
        }
        int start = level[static_cast<std::size_t>(g.q0)];
        if (g.arity() == 2)
            start = std::max(start, level[static_cast<std::size_t>(g.q1)]);
        int finish = start + 1;
        level[static_cast<std::size_t>(g.q0)] = finish;
        if (g.arity() == 2)
            level[static_cast<std::size_t>(g.q1)] = finish;
        max_level = std::max(max_level, finish);
    }
    return max_level;
}

std::string
Circuit::toString() const
{
    std::ostringstream os;
    os << "circuit(" << num_qubits_ << " qubits, " << gateCount()
       << " gates)\n";
    for (const Gate &g : gates_)
        os << "  " << g.toString() << "\n";
    return os.str();
}

} // namespace qaoa::circuit
