#include "circuit/draw.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <vector>

#include "circuit/layers.hpp"

namespace qaoa::circuit {

namespace {

std::string
angle(double v, bool show)
{
    if (!show)
        return "";
    std::ostringstream os;
    os << std::fixed << std::setprecision(2) << v;
    return os.str();
}

/** @p prefix followed by the (optional) rotation angle. */
std::string
tagged(const char *prefix, double v, bool show)
{
    std::string out(prefix);
    out += angle(v, show);
    return out;
}

/** Cell labels for one gate: {label on q0, label on q1 (or empty)}. */
std::pair<std::string, std::string>
labels(const Gate &g, bool show_params)
{
    switch (g.type) {
      case GateType::H: return {"H", ""};
      case GateType::X: return {"X", ""};
      case GateType::Y: return {"Y", ""};
      case GateType::Z: return {"Z", ""};
      case GateType::RX:
        return {tagged("Rx", g.params[0], show_params), ""};
      case GateType::RY:
        return {tagged("Ry", g.params[0], show_params), ""};
      case GateType::RZ:
        return {tagged("Rz", g.params[0], show_params), ""};
      case GateType::U1:
        return {tagged("U1", g.params[0], show_params), ""};
      case GateType::U2: return {"U2", ""};
      case GateType::U3: return {"U3", ""};
      case GateType::CNOT: return {"*", "+"};
      case GateType::CZ: return {"*", "*"};
      case GateType::CPHASE:
        return {"*", tagged("Z", g.params[0], show_params)};
      case GateType::SWAP: return {"x", "x"};
      case GateType::MEASURE: {
        std::string m("M");
        m += std::to_string(g.cbit);
        return {m, ""};
      }
      case GateType::BARRIER: return {"|", "|"};
    }
    return {"?", ""};
}

} // namespace

std::string
drawCircuit(const Circuit &circuit, const DrawOptions &options)
{
    const int n = circuit.numQubits();
    std::vector<std::string> rows(static_cast<std::size_t>(n));
    for (int q = 0; q < n; ++q) {
        std::ostringstream head;
        head << "q" << q << ": ";
        rows[static_cast<std::size_t>(q)] = head.str();
    }
    // Left-align the headers.
    std::size_t head_width = 0;
    for (const auto &r : rows)
        head_width = std::max(head_width, r.size());
    for (auto &r : rows)
        r.resize(head_width, ' ');

    // ASAP-style column assignment done locally so BARRIERs become their
    // own full-height column (asapLayers() consumes them).
    std::vector<std::vector<std::string>> columns;
    {
        std::vector<std::size_t> ready(static_cast<std::size_t>(n), 0);
        for (const Gate &g : circuit.gates()) {
            if (g.type == GateType::BARRIER) {
                columns.emplace_back(static_cast<std::size_t>(n), "|");
                std::fill(ready.begin(), ready.end(), columns.size());
                continue;
            }
            std::size_t slot = ready[static_cast<std::size_t>(g.q0)];
            if (g.arity() == 2)
                slot = std::max(slot,
                                ready[static_cast<std::size_t>(g.q1)]);
            if (slot >= columns.size())
                columns.resize(slot + 1,
                               std::vector<std::string>(
                                   static_cast<std::size_t>(n)));
            auto [l0, l1] = labels(g, options.show_params);
            columns[slot][static_cast<std::size_t>(g.q0)] = l0;
            ready[static_cast<std::size_t>(g.q0)] = slot + 1;
            if (g.arity() == 2) {
                columns[slot][static_cast<std::size_t>(g.q1)] = l1;
                ready[static_cast<std::size_t>(g.q1)] = slot + 1;
            }
        }
    }

    bool truncated = false;
    for (const auto &cells : columns) {
        std::size_t width = 1;
        for (const auto &cell : cells)
            width = std::max(width, cell.size());
        if (rows[0].size() + width + 2 >
            static_cast<std::size_t>(options.max_columns)) {
            truncated = true;
            break;
        }
        for (int q = 0; q < n; ++q) {
            const std::string &cell = cells[static_cast<std::size_t>(q)];
            std::string &row = rows[static_cast<std::size_t>(q)];
            row += '-';
            row += cell;
            row.append(width - cell.size(), '-');
            row += '-';
        }
    }
    std::ostringstream out;
    for (auto &r : rows) {
        out << r;
        if (truncated)
            out << "...";
        out << "\n";
    }
    return out.str();
}

} // namespace qaoa::circuit
