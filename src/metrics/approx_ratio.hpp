/**
 * @file
 * Approximation ratio and the paper's proposed ARG metric (§IV, §V-A).
 *
 * Approximation ratio r = (mean sampled cut value) / (exact MaxCut).
 * ARG = 100 * (r0 - rh) / r0, where r0 comes from noiseless simulation
 * and rh from (noisy) hardware execution; lower ARG = closer to the
 * noiseless behaviour.
 */

#ifndef QAOA_METRICS_APPROX_RATIO_HPP
#define QAOA_METRICS_APPROX_RATIO_HPP

#include "graph/graph.hpp"
#include "graph/maxcut.hpp"
#include "sim/statevector.hpp"

namespace qaoa::metrics {

/** Mean cut value over a sampled bitstring histogram. */
double expectedCutValue(const graph::Graph &problem,
                        const sim::Counts &counts);

/**
 * Approximation ratio of a sample set.
 *
 * @param problem The MaxCut instance.
 * @param counts  Sampled bitstrings (classical-bit convention: bit i =
 *        partition side of node i).
 * @param optimum Exact MaxCut value (maxCutBruteForce(problem).value).
 */
double approximationRatio(const graph::Graph &problem,
                          const sim::Counts &counts, double optimum);

/** Approximation Ratio Gap: 100 * (r0 - rh) / r0. */
double approximationRatioGap(double r0, double rh);

} // namespace qaoa::metrics

#endif // QAOA_METRICS_APPROX_RATIO_HPP
