/**
 * @file
 * Gate-duration execution-time model and decoherence estimate.
 *
 * §II and §V-A connect circuit depth to execution time and decoherence:
 * "a higher-depth circuit is more susceptible to decoherence errors".
 * This module makes that connection quantitative: an ASAP schedule under
 * per-gate-class durations yields the critical-path execution time, and
 * exp(-T_active / T2) per qubit gives a decoherence-limited fidelity
 * factor that complements the gate-error success probability.
 */

#ifndef QAOA_METRICS_TIMING_HPP
#define QAOA_METRICS_TIMING_HPP

#include "circuit/circuit.hpp"

namespace qaoa::metrics {

/** Per-gate-class durations in nanoseconds (IBM-era defaults). */
struct GateDurations
{
    double one_qubit_ns = 50.0;    ///< U2/U3 and other 1q pulses.
    double virtual_ns = 0.0;       ///< U1/RZ (frame change, free).
    double two_qubit_ns = 300.0;   ///< CNOT and other 2q pulses.
    double measure_ns = 1000.0;    ///< Readout.

    /** Duration of one gate under this model (BARRIER = 0). */
    double of(const circuit::Gate &g) const;
};

/**
 * Critical-path execution time of the circuit in nanoseconds (ASAP
 * schedule under the duration model; barriers synchronize).
 */
double executionTimeNs(const circuit::Circuit &circuit,
                       const GateDurations &durations = {});

/**
 * Decoherence-limited fidelity estimate: product over qubits of
 * exp(-t_q / T2), where t_q is the qubit's busy-window (first gate to
 * last gate on that qubit in the ASAP schedule).
 *
 * @param t2_ns Dephasing time constant, default 70 us.
 */
double decoherenceFactor(const circuit::Circuit &circuit,
                         double t2_ns = 70000.0,
                         const GateDurations &durations = {});

} // namespace qaoa::metrics

#endif // QAOA_METRICS_TIMING_HPP
