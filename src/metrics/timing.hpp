/**
 * @file
 * Backwards-compatibility shim over the analysis/ timing pass.
 *
 * The execution-time and decoherence models used to live here; they are
 * now part of the static circuit-quality analyzer (analysis/timing.hpp),
 * which computes the same numbers plus critical paths, idle windows and
 * per-qubit coherence in one sweep.  Existing callers keep the
 * qaoa::metrics names through these aliases.
 */

#ifndef QAOA_METRICS_TIMING_HPP
#define QAOA_METRICS_TIMING_HPP

#include "analysis/timing.hpp"

namespace qaoa::metrics {

using GateDurations = analysis::GateDurations;

using analysis::decoherenceFactor;
using analysis::executionTimeNs;

} // namespace qaoa::metrics

#endif // QAOA_METRICS_TIMING_HPP
