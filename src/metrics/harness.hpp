/**
 * @file
 * Evaluation harness shared by the figure/table benches: instance-set
 * generation (§V-B), batched compilation metrics, and noiseless QAOA
 * parameter optimization for the ARG experiments (§V-G).
 */

#ifndef QAOA_METRICS_HARNESS_HPP
#define QAOA_METRICS_HARNESS_HPP

#include <cstdint>
#include <vector>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "hardware/coupling_map.hpp"
#include "qaoa/api.hpp"

namespace qaoa::metrics {

/** Generates @p count connected Erdős–Rényi G(n, p) instances. */
std::vector<graph::Graph> erdosRenyiInstances(int n, double p, int count,
                                              std::uint64_t seed);

/** Generates @p count random k-regular instances. */
std::vector<graph::Graph> regularInstances(int n, int k, int count,
                                           std::uint64_t seed);

/** Per-instance metric vectors for one (method, instance set) run. */
struct MetricSeries
{
    std::vector<double> depth;
    std::vector<double> gate_count;
    std::vector<double> compile_seconds;
    std::vector<double> swap_count;
};

/**
 * Compiles every instance with the given method and collects the §V-A
 * metrics.  A fresh per-instance seed is derived from opts.seed so each
 * instance is independent but the whole sweep is reproducible.
 *
 * Instances compile concurrently (qaoa::par::parallelForTasks, sized
 * by QAOA_THREADS); per-instance seeds are forked up front in the
 * serial iteration order, so depth/gate/SWAP metrics are identical at
 * 1 and N threads.
 */
MetricSeries compileSeries(const std::vector<graph::Graph> &instances,
                           const hw::CouplingMap &map,
                           core::QaoaCompileOptions opts);

/**
 * Exact (noiseless, infinite-shot) expected cut value of the level-p
 * QAOA circuit on the logical problem — computed from statevector
 * probabilities, no sampling error.
 */
double exactExpectedCut(const graph::Graph &problem,
                        const std::vector<double> &gammas,
                        const std::vector<double> &betas);

/** Optimal p=1 parameters found by grid seeding + Nelder–Mead. */
struct P1Parameters
{
    double gamma = 0.0;
    double beta = 0.0;
    double expected_cut = 0.0; ///< Noiseless expected cut at the optimum.
};

/**
 * Finds (γ, β) maximizing the noiseless expected cut at p = 1 —
 * the "optimal parameter values found in simulation" step of §V-G.
 */
P1Parameters optimizeP1(const graph::Graph &problem);

} // namespace qaoa::metrics

#endif // QAOA_METRICS_HARNESS_HPP
