/**
 * @file
 * Evaluation harness shared by the figure/table benches: instance-set
 * generation (§V-B), batched compilation metrics, and noiseless QAOA
 * parameter optimization for the ARG experiments (§V-G).
 */

#ifndef QAOA_METRICS_HARNESS_HPP
#define QAOA_METRICS_HARNESS_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "hardware/coupling_map.hpp"
#include "qaoa/api.hpp"

namespace qaoa::metrics {

/** Generates @p count connected Erdős–Rényi G(n, p) instances. */
std::vector<graph::Graph> erdosRenyiInstances(int n, double p, int count,
                                              std::uint64_t seed);

/** Generates @p count random k-regular instances. */
std::vector<graph::Graph> regularInstances(int n, int k, int count,
                                           std::uint64_t seed);

/** Per-instance metric vectors for one (method, instance set) run. */
struct MetricSeries
{
    std::vector<double> depth;
    std::vector<double> gate_count;
    std::vector<double> compile_seconds;
    std::vector<double> swap_count;

    /** Per-instance terminal status (parallel to the vectors above). */
    std::vector<transpiler::CompileStatus> status;
};

/**
 * Compiles every instance with the given method and collects the §V-A
 * metrics.  A fresh per-instance seed is derived from opts.seed so each
 * instance is independent but the whole sweep is reproducible.
 *
 * Instances compile concurrently (qaoa::par::parallelForTasks, sized
 * by QAOA_THREADS); per-instance seeds are forked up front in the
 * serial iteration order, so depth/gate/SWAP metrics are identical at
 * 1 and N threads.
 *
 * Resilience: every instance runs under a child of opts.guard's token
 * (when set) and shares its total deadline, so one cancellation or an
 * expired batch deadline stops the whole sweep instead of burning the
 * remaining instances; the stragglers report Cancelled / TimedOut
 * statuses.  An instance that *throws* (contract violation, internal
 * error) cancels its siblings before the exception is rethrown.
 */
MetricSeries compileSeries(const std::vector<graph::Graph> &instances,
                           const hw::CouplingMap &map,
                           core::QaoaCompileOptions opts);

/**
 * Exact (noiseless, infinite-shot) expected cut value of the level-p
 * QAOA circuit on the logical problem — computed from statevector
 * probabilities, no sampling error.
 *
 * A non-null @p guard caps the statevector allocation
 * (max_statevector_bytes) and bounds cancellation latency to one gate
 * application.
 */
double exactExpectedCut(const graph::Graph &problem,
                        const std::vector<double> &gammas,
                        const std::vector<double> &betas,
                        const run::RunGuard *guard = nullptr);

/** Optimal p=1 parameters found by grid seeding + Nelder–Mead. */
struct P1Parameters
{
    double gamma = 0.0;
    double beta = 0.0;
    double expected_cut = 0.0; ///< Noiseless expected cut at the optimum.
};

/**
 * Finds (γ, β) maximizing the noiseless expected cut at p = 1 —
 * the "optimal parameter values found in simulation" step of §V-G.
 */
P1Parameters optimizeP1(const graph::Graph &problem);

/** Structural hash of a problem graph (nodes + weighted edge list);
 *  guards checkpoints against cross-instance resume. */
std::string problemHash(const graph::Graph &problem);

/** Resilience knobs for optimizeP1Checkpointed(). */
struct OptimizeP1Options
{
    /** Optional cancellation/deadline guard polled once per committed
     *  optimizer step.  Non-owning. */
    const run::RunGuard *guard = nullptr;

    /** Checkpoint file; empty = no checkpointing.  The file is
     *  (re)written atomically after every committed step. */
    std::string checkpoint_path;

    /** Load checkpoint_path before starting when it exists.  A
     *  checkpoint for a different problem (hash mismatch) throws. */
    bool resume = false;
};

/** Outcome of a checkpointed p=1 optimization. */
struct P1Run
{
    P1Parameters params;
    int evaluations = 0;  ///< Objective evaluations (incl. pre-kill).
    bool resumed = false; ///< Continued from an on-disk checkpoint.
};

/**
 * optimizeP1() with cooperative cancellation and crash-safe
 * checkpoint/resume.
 *
 * With no checkpoint and no guard this is exactly optimizeP1().  A run
 * killed at any point (including SIGKILL) and restarted with
 * resume = true continues from the last committed optimizer step and
 * produces bit-identical final parameters, value and evaluation count
 * to an uninterrupted run: optimizer state round-trips through
 * hexfloat serialization and steps only commit at iteration
 * boundaries (see opt/checkpoint.hpp).
 *
 * @throws run::CancelledError / run::TimedOutError from the guard; the
 *         checkpoint then holds the last committed step and the run
 *         can be resumed.
 */
P1Run optimizeP1Checkpointed(const graph::Graph &problem,
                             const OptimizeP1Options &options);

} // namespace qaoa::metrics

#endif // QAOA_METRICS_HARNESS_HPP
