#include "metrics/timing.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace qaoa::metrics {

double
GateDurations::of(const circuit::Gate &g) const
{
    using circuit::GateType;
    switch (g.type) {
      case GateType::BARRIER:
        return 0.0;
      case GateType::U1:
      case GateType::RZ:
      case GateType::Z:
        return virtual_ns;
      case GateType::MEASURE:
        return measure_ns;
      case GateType::CNOT:
        return two_qubit_ns;
      case GateType::CZ:
      case GateType::CPHASE:
        return 2.0 * two_qubit_ns; // two CNOTs (RZ is virtual)
      case GateType::SWAP:
        return 3.0 * two_qubit_ns;
      default:
        return one_qubit_ns;
    }
}

namespace {

/** Per-qubit (start, finish) of the ASAP schedule under durations. */
struct Schedule
{
    std::vector<double> first_busy; ///< Start of first gate per qubit.
    std::vector<double> last_busy;  ///< End of last gate per qubit.
    double makespan = 0.0;
};

Schedule
schedule(const circuit::Circuit &circuit, const GateDurations &durations)
{
    const std::size_t n = static_cast<std::size_t>(circuit.numQubits());
    Schedule s;
    s.first_busy.assign(n, -1.0);
    s.last_busy.assign(n, 0.0);
    std::vector<double> ready(n, 0.0);
    for (const circuit::Gate &g : circuit.gates()) {
        if (g.type == circuit::GateType::BARRIER) {
            double frontier = 0.0;
            for (double r : ready)
                frontier = std::max(frontier, r);
            std::fill(ready.begin(), ready.end(), frontier);
            continue;
        }
        double start = ready[static_cast<std::size_t>(g.q0)];
        if (g.arity() == 2)
            start = std::max(start,
                             ready[static_cast<std::size_t>(g.q1)]);
        double finish = start + durations.of(g);
        for (int q : {g.q0, g.arity() == 2 ? g.q1 : g.q0}) {
            auto qi = static_cast<std::size_t>(q);
            ready[qi] = finish;
            if (s.first_busy[qi] < 0.0)
                s.first_busy[qi] = start;
            s.last_busy[qi] = finish;
        }
        s.makespan = std::max(s.makespan, finish);
    }
    return s;
}

} // namespace

double
executionTimeNs(const circuit::Circuit &circuit,
                const GateDurations &durations)
{
    return schedule(circuit, durations).makespan;
}

double
decoherenceFactor(const circuit::Circuit &circuit, double t2_ns,
                  const GateDurations &durations)
{
    QAOA_CHECK(t2_ns > 0.0, "non-positive T2");
    Schedule s = schedule(circuit, durations);
    double factor = 1.0;
    for (std::size_t q = 0; q < s.first_busy.size(); ++q) {
        if (s.first_busy[q] < 0.0)
            continue; // idle qubit, never entangled
        double busy = s.last_busy[q] - s.first_busy[q];
        factor *= std::exp(-busy / t2_ns);
    }
    return factor;
}

} // namespace qaoa::metrics
