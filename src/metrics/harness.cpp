#include "metrics/harness.hpp"

#include <numbers>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "graph/maxcut.hpp"
#include "opt/grid_search.hpp"
#include "qaoa/problem.hpp"
#include "sim/statevector.hpp"

namespace qaoa::metrics {

namespace {

/** Rejects disconnected or edgeless draws (a MaxCut instance needs
 *  edges; connectivity keeps every qubit active as in the paper's
 *  randomly chosen instances). */
template <typename Generator>
std::vector<graph::Graph>
generateConnected(int count, std::uint64_t seed, Generator make)
{
    Rng rng(seed);
    std::vector<graph::Graph> out;
    int guard = 0;
    while (static_cast<int>(out.size()) < count) {
        QAOA_CHECK(++guard < count * 1000,
                   "could not generate enough connected instances");
        graph::Graph g = make(rng);
        if (g.numEdges() >= 1 && g.isConnected())
            out.push_back(std::move(g));
    }
    return out;
}

} // namespace

std::vector<graph::Graph>
erdosRenyiInstances(int n, double p, int count, std::uint64_t seed)
{
    return generateConnected(count, seed, [&](Rng &rng) {
        return graph::erdosRenyi(n, p, rng);
    });
}

std::vector<graph::Graph>
regularInstances(int n, int k, int count, std::uint64_t seed)
{
    return generateConnected(count, seed, [&](Rng &rng) {
        return graph::randomRegular(n, k, rng);
    });
}

MetricSeries
compileSeries(const std::vector<graph::Graph> &instances,
              const hw::CouplingMap &map, core::QaoaCompileOptions opts)
{
    // Derive every per-instance seed up front, in the serial iteration
    // order — the seed sequence (and hence each compiled circuit) is
    // identical no matter how many threads run the compiles below.
    Rng seeder(opts.seed);
    std::vector<std::uint64_t> seeds(instances.size());
    for (std::uint64_t &s : seeds)
        s = seeder.fork();

    std::vector<transpiler::CompileResult> results(instances.size());
    par::parallelForTasks(instances.size(), [&](std::uint64_t i) {
        core::QaoaCompileOptions inst_opts = opts;
        inst_opts.seed = seeds[i];
        results[i] = core::compileQaoaMaxcut(instances[i], map, inst_opts);
    });

    MetricSeries series;
    for (const transpiler::CompileResult &r : results) {
        series.depth.push_back(static_cast<double>(r.report.depth));
        series.gate_count.push_back(
            static_cast<double>(r.report.gate_count));
        series.compile_seconds.push_back(r.report.compile_seconds);
        series.swap_count.push_back(
            static_cast<double>(r.report.swap_count));
    }
    return series;
}

double
exactExpectedCut(const graph::Graph &problem,
                 const std::vector<double> &gammas,
                 const std::vector<double> &betas)
{
    circuit::Circuit logical = core::buildQaoaCircuit(
        problem, gammas, betas, /*measure=*/false);
    sim::Statevector state(problem.numNodes());
    state.apply(logical);
    std::vector<double> probs = state.probabilities();
    double expectation = 0.0;
    for (std::size_t bits = 0; bits < probs.size(); ++bits)
        if (probs[bits] > 0.0)
            expectation += probs[bits] *
                           graph::cutValue(problem,
                                           static_cast<std::uint64_t>(bits));
    return expectation;
}

P1Parameters
optimizeP1(const graph::Graph &problem)
{
    constexpr double pi = std::numbers::pi;
    // Maximize expected cut == minimize its negation.  CPHASE(γ) and the
    // RX(2β) mixer make the landscape 2π-periodic in γ and π-periodic in
    // β.
    opt::Objective objective = [&](const std::vector<double> &x) {
        return -exactExpectedCut(problem, {x[0]}, {x[1]});
    };
    opt::OptResult best = opt::gridThenNelderMead(
        objective,
        {{0.0, 2.0 * pi, 13}, {0.0, pi, 9}});
    P1Parameters params;
    params.gamma = best.x[0];
    params.beta = best.x[1];
    params.expected_cut = -best.value;
    return params;
}

} // namespace qaoa::metrics
