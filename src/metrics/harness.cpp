#include "metrics/harness.hpp"

#include <cstdio>
#include <cstring>
#include <numbers>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "common/parallel.hpp"
#include "graph/maxcut.hpp"
#include "opt/checkpoint.hpp"
#include "opt/grid_search.hpp"
#include "qaoa/problem.hpp"
#include "sim/statevector.hpp"

namespace qaoa::metrics {

namespace {

/** Rejects disconnected or edgeless draws (a MaxCut instance needs
 *  edges; connectivity keeps every qubit active as in the paper's
 *  randomly chosen instances). */
template <typename Generator>
std::vector<graph::Graph>
generateConnected(int count, std::uint64_t seed, Generator make)
{
    Rng rng(seed);
    std::vector<graph::Graph> out;
    int guard = 0;
    while (static_cast<int>(out.size()) < count) {
        QAOA_CHECK(++guard < count * 1000,
                   "could not generate enough connected instances");
        graph::Graph g = make(rng);
        if (g.numEdges() >= 1 && g.isConnected())
            out.push_back(std::move(g));
    }
    return out;
}

} // namespace

std::vector<graph::Graph>
erdosRenyiInstances(int n, double p, int count, std::uint64_t seed)
{
    return generateConnected(count, seed, [&](Rng &rng) {
        return graph::erdosRenyi(n, p, rng);
    });
}

std::vector<graph::Graph>
regularInstances(int n, int k, int count, std::uint64_t seed)
{
    return generateConnected(count, seed, [&](Rng &rng) {
        return graph::randomRegular(n, k, rng);
    });
}

MetricSeries
compileSeries(const std::vector<graph::Graph> &instances,
              const hw::CouplingMap &map, core::QaoaCompileOptions opts)
{
    // Derive every per-instance seed up front, in the serial iteration
    // order — the seed sequence (and hence each compiled circuit) is
    // identical no matter how many threads run the compiles below.
    Rng seeder(opts.seed);
    std::vector<std::uint64_t> seeds(instances.size());
    for (std::uint64_t &s : seeds)
        s = seeder.fork();

    // One child token for the whole sweep: an external cancel on the
    // caller's guard propagates in, a throwing instance trips it for
    // its siblings, and per-instance guards all share it.  The total
    // deadline and resource limits are the caller's, unchanged.
    const run::CancelToken series_token = opts.guard
                                              ? opts.guard->token().child()
                                              : run::CancelToken();
    const run::Deadline series_deadline =
        opts.guard ? opts.guard->deadline() : run::Deadline::never();
    const run::ResourceLimits series_limits =
        opts.guard ? opts.guard->limits() : run::ResourceLimits();
    std::vector<run::RunGuard> guards;
    guards.reserve(instances.size());
    for (std::size_t i = 0; i < instances.size(); ++i)
        guards.emplace_back(series_token, series_deadline, series_limits);

    std::vector<transpiler::CompileResult> results(instances.size());
    // Pre-mark every slot Cancelled: an instance the cancel-aware
    // parallel loop never starts (token tripped first) must not
    // surface as a default-constructed Ok result.  Instances that do
    // run overwrite their slot wholesale.
    for (transpiler::CompileResult &r : results) {
        r.status = transpiler::CompileStatus::Cancelled;
        r.failure_reason = "batch cancelled before this instance started";
    }
    par::parallelForTasks(
        instances.size(), series_token, [&](std::uint64_t i) {
            core::QaoaCompileOptions inst_opts = opts;
            inst_opts.seed = seeds[i];
            inst_opts.guard = &guards[i];
            results[i] =
                core::compileQaoaMaxcut(instances[i], map, inst_opts);
        });

    MetricSeries series;
    for (const transpiler::CompileResult &r : results) {
        series.depth.push_back(static_cast<double>(r.report.depth));
        series.gate_count.push_back(
            static_cast<double>(r.report.gate_count));
        series.compile_seconds.push_back(r.report.compile_seconds);
        series.swap_count.push_back(
            static_cast<double>(r.report.swap_count));
        series.status.push_back(r.status);
    }
    return series;
}

double
exactExpectedCut(const graph::Graph &problem,
                 const std::vector<double> &gammas,
                 const std::vector<double> &betas,
                 const run::RunGuard *guard)
{
    circuit::Circuit logical = core::buildQaoaCircuit(
        problem, gammas, betas, /*measure=*/false);
    sim::Statevector state(problem.numNodes(), guard);
    state.apply(logical);
    std::vector<double> probs = state.probabilities();
    double expectation = 0.0;
    for (std::size_t bits = 0; bits < probs.size(); ++bits)
        if (probs[bits] > 0.0)
            expectation += probs[bits] *
                           graph::cutValue(problem,
                                           static_cast<std::uint64_t>(bits));
    return expectation;
}

P1Parameters
optimizeP1(const graph::Graph &problem)
{
    return optimizeP1Checkpointed(problem, {}).params;
}

std::string
problemHash(const graph::Graph &problem)
{
    // FNV-1a over node count and the weighted edge list.  Same byte
    // stream as before the common/hash.hpp refactor, so pre-existing
    // checkpoints keep their hashes.
    Fnv1a h;
    h.u64(static_cast<std::uint64_t>(problem.numNodes()));
    for (const graph::Edge &e : problem.edges()) {
        h.u64(static_cast<std::uint64_t>(e.u));
        h.u64(static_cast<std::uint64_t>(e.v));
        h.f64(e.weight);
    }
    return h.hex();
}

P1Run
optimizeP1Checkpointed(const graph::Graph &problem,
                       const OptimizeP1Options &options)
{
    constexpr double pi = std::numbers::pi;
    // Maximize expected cut == minimize its negation.  CPHASE(γ) and the
    // RX(2β) mixer make the landscape 2π-periodic in γ and π-periodic in
    // β.
    opt::Objective objective = [&](const std::vector<double> &x) {
        return -exactExpectedCut(problem, {x[0]}, {x[1]},
                                 options.guard);
    };
    const std::vector<opt::GridAxis> axes{{0.0, 2.0 * pi, 13},
                                          {0.0, pi, 9}};
    const std::string hash = problemHash(problem);

    opt::OptCheckpoint cp;
    bool resumed = false;
    if (options.resume && !options.checkpoint_path.empty() &&
        opt::loadCheckpointFile(options.checkpoint_path, cp)) {
        QAOA_CHECK(cp.problem_hash == hash,
                   "checkpoint " << options.checkpoint_path
                                 << " belongs to problem "
                                 << cp.problem_hash << ", not " << hash);
        resumed = true;
    } else {
        cp = opt::OptCheckpoint{};
        cp.problem_hash = hash;
    }

    auto save = [&]() {
        if (!options.checkpoint_path.empty())
            opt::saveCheckpointFile(options.checkpoint_path, cp);
    };
    opt::OptHooks hooks;
    hooks.guard = options.guard;
    hooks.on_progress = save;

    // Same sequence as opt::gridThenNelderMead(), phase by phase, so
    // an unguarded, checkpoint-free run is arithmetically identical to
    // optimizeP1()'s historical behavior.
    if (cp.phase == opt::OptPhase::Grid) {
        opt::gridSearchResume(objective, axes, cp.grid, hooks);
        cp.phase = opt::OptPhase::Nm;
        save();
    }
    if (cp.phase == opt::OptPhase::Nm) {
        opt::OptResult refined = opt::nelderMeadResume(
            objective, cp.grid.best_x, {}, cp.nm, hooks);
        refined.evaluations += cp.grid.evaluations;
        if (cp.grid.best_value < refined.value) {
            // Guard against a pathological refinement step.
            refined.x = cp.grid.best_x;
            refined.value = cp.grid.best_value;
        }
        cp.final_x = refined.x;
        cp.final_value = refined.value;
        cp.final_evaluations = refined.evaluations;
        cp.phase = opt::OptPhase::Done;
        save();
    }

    QAOA_CHECK(cp.final_x.size() == 2,
               "p=1 checkpoint finished with " << cp.final_x.size()
                                               << " parameters");
    P1Run run;
    run.params.gamma = cp.final_x[0];
    run.params.beta = cp.final_x[1];
    run.params.expected_cut = -cp.final_value;
    run.evaluations = cp.final_evaluations;
    run.resumed = resumed;
    return run;
}

} // namespace qaoa::metrics
