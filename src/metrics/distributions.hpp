/**
 * @file
 * Distances between sampled output distributions.
 *
 * Complements the ARG metric: total variation and Hellinger fidelity
 * quantify *how* the noisy output distribution departs from the
 * noiseless one, independent of the cost function.
 */

#ifndef QAOA_METRICS_DISTRIBUTIONS_HPP
#define QAOA_METRICS_DISTRIBUTIONS_HPP

#include "sim/statevector.hpp"

namespace qaoa::metrics {

/** Normalizes a histogram into probabilities (throws when empty). */
std::map<std::uint64_t, double> toDistribution(const sim::Counts &counts);

/** Total-variation distance in [0, 1] between two histograms. */
double totalVariationDistance(const sim::Counts &a, const sim::Counts &b);

/**
 * Hellinger fidelity in [0, 1]: (sum_i sqrt(p_i q_i))^2 — qiskit's
 * standard counts-similarity measure; 1 means identical distributions.
 */
double hellingerFidelity(const sim::Counts &a, const sim::Counts &b);

/**
 * Kullback–Leibler divergence D(P||Q) in nats with additive smoothing
 * @p epsilon on Q to keep it finite when supports differ.
 */
double klDivergence(const sim::Counts &p, const sim::Counts &q,
                    double epsilon = 1e-9);

} // namespace qaoa::metrics

#endif // QAOA_METRICS_DISTRIBUTIONS_HPP
