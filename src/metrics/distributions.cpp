#include "metrics/distributions.hpp"

#include <cmath>
#include <set>

#include "common/error.hpp"

namespace qaoa::metrics {

std::map<std::uint64_t, double>
toDistribution(const sim::Counts &counts)
{
    std::uint64_t total = 0;
    for (const auto &[bits, n] : counts)
        total += n;
    QAOA_CHECK(total > 0, "empty histogram");
    std::map<std::uint64_t, double> dist;
    for (const auto &[bits, n] : counts)
        dist[bits] = static_cast<double>(n) / static_cast<double>(total);
    return dist;
}

namespace {

std::set<std::uint64_t>
jointSupport(const std::map<std::uint64_t, double> &p,
             const std::map<std::uint64_t, double> &q)
{
    std::set<std::uint64_t> keys;
    for (const auto &[k, v] : p)
        keys.insert(k);
    for (const auto &[k, v] : q)
        keys.insert(k);
    return keys;
}

double
probOf(const std::map<std::uint64_t, double> &d, std::uint64_t k)
{
    auto it = d.find(k);
    return it == d.end() ? 0.0 : it->second;
}

} // namespace

double
totalVariationDistance(const sim::Counts &a, const sim::Counts &b)
{
    auto p = toDistribution(a);
    auto q = toDistribution(b);
    double tv = 0.0;
    for (std::uint64_t k : jointSupport(p, q))
        tv += std::abs(probOf(p, k) - probOf(q, k));
    return tv / 2.0;
}

double
hellingerFidelity(const sim::Counts &a, const sim::Counts &b)
{
    auto p = toDistribution(a);
    auto q = toDistribution(b);
    double bc = 0.0; // Bhattacharyya coefficient
    for (std::uint64_t k : jointSupport(p, q))
        bc += std::sqrt(probOf(p, k) * probOf(q, k));
    return bc * bc;
}

double
klDivergence(const sim::Counts &p_counts, const sim::Counts &q_counts,
             double epsilon)
{
    QAOA_CHECK(epsilon > 0.0, "non-positive smoothing epsilon");
    auto p = toDistribution(p_counts);
    auto q = toDistribution(q_counts);
    double kl = 0.0;
    for (const auto &[k, pv] : p) {
        if (pv <= 0.0)
            continue;
        kl += pv * std::log(pv / (probOf(q, k) + epsilon));
    }
    return kl;
}

} // namespace qaoa::metrics
