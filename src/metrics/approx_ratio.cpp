#include "metrics/approx_ratio.hpp"

#include "common/error.hpp"

namespace qaoa::metrics {

double
expectedCutValue(const graph::Graph &problem, const sim::Counts &counts)
{
    double total = 0.0;
    std::uint64_t shots = 0;
    for (const auto &[bits, count] : counts) {
        total += graph::cutValue(problem, bits) *
                 static_cast<double>(count);
        shots += count;
    }
    QAOA_CHECK(shots > 0, "empty sample set");
    return total / static_cast<double>(shots);
}

double
approximationRatio(const graph::Graph &problem, const sim::Counts &counts,
                   double optimum)
{
    QAOA_CHECK(optimum > 0.0, "non-positive MaxCut optimum");
    return expectedCutValue(problem, counts) / optimum;
}

double
approximationRatioGap(double r0, double rh)
{
    QAOA_CHECK(r0 != 0.0, "zero noiseless approximation ratio");
    return 100.0 * (r0 - rh) / r0;
}

} // namespace qaoa::metrics
