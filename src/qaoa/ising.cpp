#include "qaoa/ising.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace qaoa::core {

IsingModel::IsingModel(int num_spins)
{
    QAOA_CHECK(num_spins >= 0, "negative spin count");
    linear_.assign(static_cast<std::size_t>(num_spins), 0.0);
}

void
IsingModel::checkSpin(int i) const
{
    QAOA_CHECK(i >= 0 && i < numSpins(),
               "spin " << i << " out of range [0, " << numSpins() << ")");
}

void
IsingModel::addLinear(int i, double h)
{
    checkSpin(i);
    linear_[static_cast<std::size_t>(i)] += h;
}

void
IsingModel::addQuadratic(int i, int k, double j)
{
    checkSpin(i);
    checkSpin(k);
    QAOA_CHECK(i != k, "quadratic term needs two distinct spins");
    if (i > k)
        std::swap(i, k);
    for (ZZOp &op : quadratic_) {
        if (op.a == i && op.b == k) {
            op.weight += j;
            return;
        }
    }
    quadratic_.push_back({i, k, j});
}

double
IsingModel::linear(int i) const
{
    checkSpin(i);
    return linear_[static_cast<std::size_t>(i)];
}

double
IsingModel::quadratic(int i, int k) const
{
    checkSpin(i);
    checkSpin(k);
    if (i > k)
        std::swap(i, k);
    for (const ZZOp &op : quadratic_)
        if (op.a == i && op.b == k)
            return op.weight;
    return 0.0;
}

std::vector<ZZOp>
IsingModel::quadraticOps() const
{
    std::vector<ZZOp> ops;
    for (const ZZOp &op : quadratic_)
        if (op.weight != 0.0)
            ops.push_back(op);
    return ops;
}

double
IsingModel::energy(std::uint64_t assignment) const
{
    auto spin = [assignment](int i) {
        return ((assignment >> i) & 1ULL) ? -1.0 : 1.0;
    };
    double e = offset_;
    for (int i = 0; i < numSpins(); ++i)
        e += linear_[static_cast<std::size_t>(i)] * spin(i);
    for (const ZZOp &op : quadratic_)
        e += op.weight * spin(op.a) * spin(op.b);
    return e;
}

IsingModel::GroundState
IsingModel::groundState() const
{
    QAOA_CHECK(numSpins() >= 1 && numSpins() <= 26,
               "exhaustive ground state limited to 1..26 spins");
    GroundState best;
    best.energy = energy(0);
    const std::uint64_t count = 1ULL << numSpins();
    for (std::uint64_t a = 1; a < count; ++a) {
        double e = energy(a);
        if (e < best.energy) {
            best.energy = e;
            best.assignment = a;
        }
    }
    return best;
}

circuit::Circuit
buildIsingQaoaCircuit(const IsingModel &model,
                      const std::vector<ZZOp> &quad_order,
                      const std::vector<double> &gammas,
                      const std::vector<double> &betas, bool measure)
{
    QAOA_CHECK(gammas.size() == betas.size() && !gammas.empty(),
               "need one (gamma, beta) pair per level");
    const int n = model.numSpins();
    circuit::Circuit c(n);
    for (int q = 0; q < n; ++q)
        c.add(circuit::Gate::h(q));
    for (std::size_t level = 0; level < gammas.size(); ++level) {
        double gamma = gammas[level];
        // Quadratic terms: e^{-i gamma J ZZ} == CPHASE(2 gamma J) up to
        // global phase.
        for (const ZZOp &op : quad_order)
            c.add(circuit::Gate::cphase(op.a, op.b,
                                        2.0 * gamma * op.weight));
        // Linear terms: e^{-i gamma h Z} == RZ(2 gamma h).
        for (int q = 0; q < n; ++q) {
            double h = model.linear(q);
            if (h != 0.0)
                c.add(circuit::Gate::rz(q, 2.0 * gamma * h));
        }
        for (int q = 0; q < n; ++q)
            c.add(circuit::Gate::rx(q, 2.0 * betas[level]));
    }
    if (measure)
        for (int q = 0; q < n; ++q)
            c.add(circuit::Gate::measure(q, q));
    return c;
}

IsingModel
maxcutToIsing(const graph::Graph &problem)
{
    // cut(x) = sum w (1 - s_i s_j) / 2, so minimizing
    // sum (w/2) s_i s_j - sum w/2 equals maximizing the cut and the
    // ground energy is exactly -MaxCut.
    IsingModel model(problem.numNodes());
    for (const graph::Edge &e : problem.edges()) {
        model.addQuadratic(e.u, e.v, e.weight / 2.0);
        model.addOffset(-e.weight / 2.0);
    }
    return model;
}

IsingModel
partitionToIsing(const std::vector<double> &numbers)
{
    QAOA_CHECK(!numbers.empty(), "empty number set");
    // (sum a_i s_i)^2 = sum a_i^2 + 2 sum_{i<j} a_i a_j s_i s_j.
    IsingModel model(static_cast<int>(numbers.size()));
    double sq = 0.0;
    for (double a : numbers)
        sq += a * a;
    model.addOffset(sq);
    for (std::size_t i = 0; i < numbers.size(); ++i)
        for (std::size_t j = i + 1; j < numbers.size(); ++j)
            model.addQuadratic(static_cast<int>(i), static_cast<int>(j),
                               2.0 * numbers[i] * numbers[j]);
    return model;
}

IsingModel
vertexCoverToIsing(const graph::Graph &problem, double penalty)
{
    QAOA_CHECK(penalty > 1.0, "vertex-cover penalty must exceed 1");
    // minimize sum x_i + P sum_(i,j) (1-x_i)(1-x_j), x = (1-s)/2.
    const int n = problem.numNodes();
    IsingModel model(n);
    for (int i = 0; i < n; ++i) {
        model.addLinear(i, -0.5);
        model.addOffset(0.5);
    }
    for (const graph::Edge &e : problem.edges()) {
        model.addOffset(penalty / 4.0);
        model.addLinear(e.u, penalty / 4.0);
        model.addLinear(e.v, penalty / 4.0);
        model.addQuadratic(e.u, e.v, penalty / 4.0);
    }
    return model;
}

} // namespace qaoa::core
