/**
 * @file
 * Preset pipelines — qiskit-style optimization levels.
 *
 * §VI's "usage of methodologies" directives as a one-call API: pick the
 * effort level, get the corresponding stack.
 *
 *  - O0: random layout, random order (the NAIVE baseline);
 *  - O1: QAIM layout, random order — free quality, no new costs;
 *  - O2: QAIM + IP — minimal compile time, strong depth cuts;
 *  - O3: QAIM + IC (or VIC when calibration data is supplied) with the
 *        peephole pass — best circuit quality.
 */

#ifndef QAOA_QAOA_PRESETS_HPP
#define QAOA_QAOA_PRESETS_HPP

#include "qaoa/api.hpp"

namespace qaoa::core {

/** Effort levels mirroring conventional-compiler conventions. */
enum class OptimizationLevel { O0, O1, O2, O3 };

/**
 * One-call QAOA-MaxCut transpilation at the chosen effort level.
 *
 * @param problem     MaxCut instance.
 * @param map         Target device.
 * @param level       Preset (see file comment).
 * @param gammas      Cost angles (one per level), default {0.7}.
 * @param betas       Mixer angles, default {0.35}.
 * @param seed        Determinism seed.
 * @param calibration Optional; upgrades O3 from IC to VIC.
 */
transpiler::CompileResult transpileQaoa(
    const graph::Graph &problem, const hw::CouplingMap &map,
    OptimizationLevel level, const std::vector<double> &gammas = {0.7},
    const std::vector<double> &betas = {0.35}, std::uint64_t seed = 7,
    const hw::CalibrationData *calibration = nullptr);

/** The Method a preset resolves to (O3 depends on calibration). */
Method presetMethod(OptimizationLevel level, bool has_calibration);

} // namespace qaoa::core

#endif // QAOA_QAOA_PRESETS_HPP
