/**
 * @file
 * IC — Incremental Compilation, and its variation-aware variant VIC
 * (§IV-C, §IV-D, Fig. 5 and Fig. 6).
 *
 * CPHASE layers are formed one at a time: remaining operations are sorted
 * ascending by the distance between their operands *under the current
 * mapping*, a single layer is packed greedily, routed, and the updated
 * mapping feeds the next layer's sort.  VIC is the same loop with
 * distances from the reliability-weighted Floyd–Warshall matrix
 * (edge weight 1/R), so reliable couplings are preferred and unreliable
 * operations drift to later layers.
 */

#ifndef QAOA_QAOA_INCREMENTAL_HPP
#define QAOA_QAOA_INCREMENTAL_HPP

#include <cstdint>

#include "circuit/circuit.hpp"
#include "graph/shortest_paths.hpp"
#include "hardware/coupling_map.hpp"
#include "qaoa/problem.hpp"
#include "transpiler/layout.hpp"
#include "transpiler/router.hpp"

namespace qaoa::core {

/** Options for one incremental cost-layer compilation. */
struct IncrementalOptions
{
    /** Maximum CPHASE operations per formed layer (§V-H). */
    int packing_limit = 1 << 30;

    /** Router tunables (the per-layer backend compile). */
    transpiler::RouterOptions router;

    /**
     * Distance matrix for the layer-formation sort and router scoring.
     * nullptr = hop distances (IC); a weightedDistances() matrix = VIC.
     */
    const graph::DistanceMatrix *distances = nullptr;

    /**
     * Optional separate matrix for router SWAP scoring only; when set,
     * `distances` drives layer ordering and this drives routing.  Lets
     * ablations split VIC's two mechanisms (reliability-aware gate
     * ordering vs reliability-aware SWAP paths, the VQM idea of [50]).
     * nullptr = use `distances` for both.
     */
    const graph::DistanceMatrix *router_distances = nullptr;

    /** Seed for random tie-breaking among equidistant operations. */
    std::uint64_t seed = 29;
};

/** Output of icCompileCostLayer(). */
struct IncrementalResult
{
    circuit::Circuit physical{0};      ///< Stitched cost circuit (physical
                                       ///< CPHASEs + SWAPs).
    transpiler::Layout final_layout;   ///< Mapping after the last layer.
    int swap_count = 0;                ///< SWAPs inserted in total.
    int layer_count = 0;               ///< CPHASE layers formed.
    double gamma = 0.0;                ///< Angle the CPHASEs carry.
};

/**
 * Incrementally compiles one cost layer (all CPHASEs of one QAOA level).
 *
 * @param ops     The level's cost operations.
 * @param map     Target device.
 * @param initial Layout at the start of the level.
 * @param gamma   Cost angle (CPHASE parameter = gamma * op.weight).
 * @param options IC/VIC options.
 */
IncrementalResult icCompileCostLayer(const std::vector<ZZOp> &ops,
                                     const hw::CouplingMap &map,
                                     const transpiler::Layout &initial,
                                     double gamma,
                                     const IncrementalOptions &options = {});

} // namespace qaoa::core

#endif // QAOA_QAOA_INCREMENTAL_HPP
