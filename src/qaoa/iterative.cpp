#include "qaoa/iterative.hpp"

#include "common/error.hpp"
#include "common/rng.hpp"

namespace qaoa::core {

namespace {

double
objectiveValue(const transpiler::CompileReport &report,
               IterativeObjective objective)
{
    switch (objective) {
      case IterativeObjective::Depth:
        return static_cast<double>(report.depth);
      case IterativeObjective::GateCount:
        return static_cast<double>(report.gate_count);
    }
    QAOA_ASSERT(false, "unknown objective");
    return 0.0;
}

} // namespace

IterativeResult
iterativeCompile(const graph::Graph &problem, const hw::CouplingMap &map,
                 const IterativeOptions &options)
{
    QAOA_CHECK(options.patience >= 1, "patience must be >= 1");
    QAOA_CHECK(options.max_rounds >= 1, "max_rounds must be >= 1");

    Rng seeder(options.compile.seed);
    IterativeResult result;
    double best_value = 0.0;
    int since_improvement = 0;

    while (result.rounds < options.max_rounds &&
           since_improvement < options.patience) {
        QaoaCompileOptions opts = options.compile;
        // Round 1 replays the caller's seed exactly (so the search is
        // never worse than single-shot compilation); later rounds fork
        // fresh orders / tie-breaks.
        if (result.rounds > 0)
            opts.seed = seeder.fork();
        transpiler::CompileResult candidate =
            compileQaoaMaxcut(problem, map, opts);
        result.total_compile_seconds +=
            candidate.report.compile_seconds;
        ++result.rounds;

        double value = objectiveValue(candidate.report,
                                      options.objective);
        if (result.rounds == 1 || value < best_value) {
            best_value = value;
            result.best = std::move(candidate);
            since_improvement = 0;
        } else {
            ++since_improvement;
        }
    }
    return result;
}

} // namespace qaoa::core
