/**
 * @file
 * Linear SWAP-network QAOA compilation.
 *
 * §V-C observes that all placement heuristics tie on dense graphs: every
 * qubit has more logical neighbors than any physical qubit has couplings,
 * so qubit movement is unavoidable.  The known structured answer is the
 * odd-even transposition SWAP network (Kivlichan et al. / O'Gorman et
 * al.): on a Hamiltonian path through the device, n rounds of
 * alternating adjacent SWAPs bring *every* pair of logical qubits
 * adjacent exactly once — so a complete-graph cost layer executes in
 * depth Θ(n) with zero routing search.  Sparse edges simply skip their
 * CPHASE when the pair meets.
 *
 * This module provides the network builder, a Hamiltonian-path finder
 * for arbitrary coupling maps, and a compile entry point comparable to
 * compileQaoaMaxcut().
 */

#ifndef QAOA_QAOA_SWAP_NETWORK_HPP
#define QAOA_QAOA_SWAP_NETWORK_HPP

#include <vector>

#include "graph/graph.hpp"
#include "hardware/coupling_map.hpp"
#include "qaoa/problem.hpp"
#include "transpiler/compiler.hpp"

namespace qaoa::core {

/**
 * Finds a simple path of @p length physical qubits in the coupling
 * graph (DFS with backtracking; devices have <= ~40 qubits so this is
 * instant).
 *
 * @return Path as a qubit sequence, or empty when none exists.
 */
std::vector<int> findLinearPath(const hw::CouplingMap &map, int length);

/**
 * Compiles a QAOA-MaxCut circuit with the odd-even SWAP network.
 *
 * @param problem MaxCut instance on n nodes.
 * @param map     Target device; must contain a simple path of n qubits.
 * @param gammas  Cost angles (one per level).
 * @param betas   Mixer angles.
 * @param decompose_to_basis Translate to {U1,U2,U3,CNOT}.
 * @param path    Optional explicit physical path (size n); when empty a
 *                path is searched with findLinearPath().
 *
 * Within a level, round r (r = 0..n-1) applies, at every adjacent
 * position pair of parity r%2: CPHASE (if the meeting logical pair is a
 * problem edge) followed by SWAP.  After n rounds every pair has met
 * exactly once and the qubit order along the path is reversed; the
 * returned final layout accounts for this.
 *
 * @throws std::runtime_error when no n-qubit path exists in the device.
 */
transpiler::CompileResult swapNetworkCompile(
    const graph::Graph &problem, const hw::CouplingMap &map,
    const std::vector<double> &gammas, const std::vector<double> &betas,
    bool decompose_to_basis = true, std::vector<int> path = {});

} // namespace qaoa::core

#endif // QAOA_QAOA_SWAP_NETWORK_HPP
