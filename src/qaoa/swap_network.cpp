#include "qaoa/swap_network.hpp"

#include <algorithm>

#include "circuit/decompose.hpp"
#include "common/error.hpp"
#include "common/stopwatch.hpp"
#include "transpiler/peephole.hpp"

namespace qaoa::core {

namespace {

/** DFS with backtracking for a simple path of the requested length. */
bool
extendPath(const hw::CouplingMap &map, std::vector<int> &path,
           std::vector<bool> &used, int length)
{
    if (static_cast<int>(path.size()) == length)
        return true;
    // Prefer low-degree neighbors first: endpoints of the eventual path
    // should burn the hard-to-reach corners early.
    std::vector<int> next = map.neighbors(path.back());
    std::sort(next.begin(), next.end(), [&](int a, int b) {
        return map.graph().degree(a) < map.graph().degree(b);
    });
    for (int nb : next) {
        if (used[static_cast<std::size_t>(nb)])
            continue;
        used[static_cast<std::size_t>(nb)] = true;
        path.push_back(nb);
        if (extendPath(map, path, used, length))
            return true;
        path.pop_back();
        used[static_cast<std::size_t>(nb)] = false;
    }
    return false;
}

} // namespace

std::vector<int>
findLinearPath(const hw::CouplingMap &map, int length)
{
    QAOA_CHECK(length >= 1 && length <= map.numQubits(),
               "path length " << length << " impossible on "
                              << map.name());
    // Try low-degree starts first (path endpoints want corners).
    std::vector<int> starts(static_cast<std::size_t>(map.numQubits()));
    for (int q = 0; q < map.numQubits(); ++q)
        starts[static_cast<std::size_t>(q)] = q;
    std::sort(starts.begin(), starts.end(), [&](int a, int b) {
        return map.graph().degree(a) < map.graph().degree(b);
    });
    for (int start : starts) {
        std::vector<int> path{start};
        std::vector<bool> used(static_cast<std::size_t>(map.numQubits()),
                               false);
        used[static_cast<std::size_t>(start)] = true;
        if (extendPath(map, path, used, length))
            return path;
    }
    return {};
}

transpiler::CompileResult
swapNetworkCompile(const graph::Graph &problem, const hw::CouplingMap &map,
                   const std::vector<double> &gammas,
                   const std::vector<double> &betas,
                   bool decompose_to_basis, std::vector<int> path)
{
    const int n = problem.numNodes();
    QAOA_CHECK(n >= 2, "problem graph too small");
    QAOA_CHECK(gammas.size() == betas.size() && !gammas.empty(),
               "need one (gamma, beta) pair per level");

    Stopwatch clock;
    if (path.empty())
        path = findLinearPath(map, n);
    QAOA_CHECK(static_cast<int>(path.size()) == n,
               "no simple path of " << n << " qubits in " << map.name());
    for (std::size_t i = 0; i + 1 < path.size(); ++i)
        QAOA_CHECK(map.coupled(path[i], path[i + 1]),
                   "supplied path is not a chain at position " << i);

    // O(1) edge-weight lookup.
    std::vector<std::vector<double>> weight(
        static_cast<std::size_t>(n),
        std::vector<double>(static_cast<std::size_t>(n), 0.0));
    std::vector<std::vector<bool>> has_edge(
        static_cast<std::size_t>(n),
        std::vector<bool>(static_cast<std::size_t>(n), false));
    for (const graph::Edge &e : problem.edges()) {
        weight[e.u][e.v] = weight[e.v][e.u] = e.weight;
        has_edge[e.u][e.v] = has_edge[e.v][e.u] = true;
    }

    // pos_to_log[p]: logical qubit currently at path position p.
    std::vector<int> pos_to_log(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        pos_to_log[static_cast<std::size_t>(i)] = i;

    circuit::Circuit physical(map.numQubits());
    for (int i = 0; i < n; ++i)
        physical.add(circuit::Gate::h(path[static_cast<std::size_t>(i)]));

    int swaps = 0;
    for (std::size_t level = 0; level < gammas.size(); ++level) {
        // Odd-even transposition: n rounds; every logical pair meets at
        // an adjacent position pair exactly once per level.
        for (int round = 0; round < n; ++round) {
            for (int i = round % 2; i + 1 < n; i += 2) {
                int la = pos_to_log[static_cast<std::size_t>(i)];
                int lb = pos_to_log[static_cast<std::size_t>(i + 1)];
                int pa = path[static_cast<std::size_t>(i)];
                int pb = path[static_cast<std::size_t>(i + 1)];
                if (has_edge[la][lb])
                    physical.add(circuit::Gate::cphase(
                        pa, pb, gammas[level] * weight[la][lb]));
                physical.add(circuit::Gate::swap(pa, pb));
                std::swap(pos_to_log[static_cast<std::size_t>(i)],
                          pos_to_log[static_cast<std::size_t>(i + 1)]);
                ++swaps;
            }
        }
        for (int i = 0; i < n; ++i)
            physical.add(circuit::Gate::rx(
                path[static_cast<std::size_t>(i)], 2.0 * betas[level]));
    }
    for (int i = 0; i < n; ++i)
        physical.add(circuit::Gate::measure(
            path[static_cast<std::size_t>(i)],
            pos_to_log[static_cast<std::size_t>(i)]));

    // Layouts: initial = positions before round 1; final after all
    // levels.
    std::vector<int> init_l2p(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        init_l2p[static_cast<std::size_t>(i)] =
            path[static_cast<std::size_t>(i)];
    std::vector<int> final_l2p(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        final_l2p[static_cast<std::size_t>(
            pos_to_log[static_cast<std::size_t>(i)])] =
            path[static_cast<std::size_t>(i)];

    transpiler::CompileResult result;
    result.compiled = decompose_to_basis
                          ? circuit::decomposeToBasis(physical)
                          : std::move(physical);
    // The CX(a,b)·CX(a,b) boundary between each CPHASE and its SWAP
    // cancels — peephole realizes the fused 3-CNOT "swap with phase"
    // block the SWAP-network literature quotes.
    result.compiled = transpiler::peepholeOptimize(result.compiled);
    result.initial_layout =
        transpiler::Layout(std::move(init_l2p), map.numQubits());
    result.final_layout =
        transpiler::Layout(std::move(final_l2p), map.numQubits());
    result.report.depth = result.compiled.depth();
    result.report.gate_count = result.compiled.gateCount();
    result.report.cx_count =
        result.compiled.countType(circuit::GateType::CNOT);
    result.report.swap_count = swaps;
    result.report.compile_seconds = clock.seconds();
    return result;
}

} // namespace qaoa::core
