/**
 * @file
 * Top-level QAOA compilation API — the Fig. 2 workflow in one call.
 *
 * Selects the initial mapping (NAIVE / GreedyV / QAIM), the CPHASE
 * ordering strategy (random / IP / IC / VIC) and drives the backend
 * compiler, returning the hardware-compliant circuit and the §V-A quality
 * metrics.
 */

#ifndef QAOA_QAOA_API_HPP
#define QAOA_QAOA_API_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/guard.hpp"
#include "graph/graph.hpp"
#include "hardware/calibration.hpp"
#include "hardware/coupling_map.hpp"
#include "qaoa/incremental.hpp"
#include "qaoa/problem.hpp"
#include "transpiler/compiler.hpp"

namespace qaoa::core {

class IsingModel;

/** Compilation methodology (§IV; NAIVE and GreedyV are the baselines). */
enum class Method {
    Naive,   ///< Random initial mapping + random CPHASE order.
    GreedyV, ///< GreedyV initial mapping + random CPHASE order.
    Qaim,    ///< QAIM initial mapping + random CPHASE order.
    Ip,      ///< QAIM + instruction-parallelized order, one-shot compile.
    Ic,      ///< QAIM + incremental per-layer compile.
    Vic,     ///< QAIM + variation-aware incremental compile.
};

/** Human-readable method name ("NAIVE", "QAIM", ...). */
std::string methodName(Method m);

/**
 * Method by lowercase CLI/wire name ("naive", "greedyv", "qaim", "ip",
 * "ic", "vic"); shared by the tools and the serve request decoder.
 *
 * @throws std::runtime_error on an unknown name.
 */
Method methodFromName(const std::string &name);

/** Options for compileQaoaMaxcut(). */
struct QaoaCompileOptions
{
    Method method = Method::Ic;

    /** Cost angles, one per QAOA level (p = gammas.size()). */
    std::vector<double> gammas{0.7};

    /** Mixer angles, one per level. */
    std::vector<double> betas{0.35};

    /** Maximum CPHASE operations per layer for IP/IC/VIC (§V-H). */
    int packing_limit = 1 << 30;

    /** Master seed (instance-level determinism). */
    std::uint64_t seed = 7;

    /** Calibration data; required for VIC, optional otherwise. */
    const hw::CalibrationData *calibration = nullptr;

    /** Backend router tunables. */
    transpiler::RouterOptions router;

    /**
     * Usable-qubit mask of a degraded device
     * (hw::FaultInjector::usable()); nullptr treats every qubit as
     * usable.  With a mask, placement never touches dead or
     * off-component qubits and the result is at best
     * CompileStatus::Degraded when any qubit is masked out.
     */
    const std::vector<char> *allowed_qubits = nullptr;

    /**
     * Marks the device as a degraded view even when it happens to stay
     * connected (e.g. compiling against hw::FaultInjector::map() after
     * faults that only removed redundant couplings).  A successful
     * compile then reports CompileStatus::Degraded instead of Ok.
     */
    bool device_degraded = false;

    /**
     * Run the bounded retry ladder on failure: retry the requested
     * method with a relaxed router, then fall back (VIC -> IC -> QAIM,
     * others -> QAIM), recording each rung in the diagnostics.  When
     * false a single failed attempt yields CompileStatus::Failed.
     */
    bool allow_fallbacks = true;

    /**
     * Statically verify every retry-ladder rung through verify/: coupling
     * conformance against the (possibly degraded) map, SWAP-replay of the
     * reported mapping, and ZZ-interaction equivalence with the source
     * problem.  A rung whose output fails verification is treated like a
     * failed compile, so the ladder falls back instead of returning a
     * miscompiled circuit.  Costs one linear walk per rung.
     */
    bool verify = true;

    /** Translate the result to the {U1,U2,U3,CNOT} basis. */
    bool decompose_to_basis = true;

    /** Run the peephole optimizer on the compiled circuit (off by
     *  default to match the paper's un-optimized backend metrics). */
    bool peephole = false;

    /** Append measurements (logical qubit l -> classical bit l). */
    bool measure = true;

    /**
     * Run the static quality analyzer on the successful result's
     * physical circuit and record the report (timing, ESP when
     * `calibration` is set, QL findings) in CompileResult::quality.
     * One linear pass; never changes the compiled circuit.
     */
    bool analyze_quality = true;

    /** Crosstalk-prone coupling pairs for the analyzer's QL111 rule. */
    std::vector<analysis::CrosstalkPair> crosstalk_pairs;

    /**
     * Optional resilience guard (cancellation token + total deadline +
     * resource limits) threaded through every routing/search loop of
     * the compile.  Cancellation or total-deadline expiry aborts the
     * retry ladder with status Cancelled / TimedOut; resource-guard
     * trips are degradable (the ladder falls to the next rung).
     * nullptr (default) compiles unguarded with zero overhead.
     * Non-owning — must outlive the call.
     */
    const run::RunGuard *guard = nullptr;

    /**
     * Per-stage watchdog budget in milliseconds: each retry-ladder
     * rung runs under min(total deadline, now + stage budget), so one
     * stuck rung falls through to the next instead of eating the whole
     * compile's time.  Negative (default) = no per-stage budget.
     * Only takes effect when `guard` is set.
     */
    double stage_budget_ms = -1.0;
};

/**
 * Compiles the QAOA-MaxCut circuit of @p problem for @p map with the
 * chosen methodology.
 *
 * Hardware-state failures never throw: routing dead ends and
 * too-small usable regions surface as CompileStatus::Failed with a
 * human-readable failure_reason, after the bounded retry ladder (see
 * QaoaCompileOptions::allow_fallbacks) has been exhausted.  Compiles
 * that needed a fallback, or that ran on a degraded device, return
 * CompileStatus::Degraded with the fallbacks listed in diagnostics.
 *
 * @throws std::runtime_error only for argument-contract violations:
 *         VIC without calibration data, a problem larger than the whole
 *         device, or mismatched angle vectors.
 */
transpiler::CompileResult compileQaoaMaxcut(const graph::Graph &problem,
                                            const hw::CouplingMap &map,
                                            const QaoaCompileOptions &opts);

/**
 * Compiles the QAOA circuit of an arbitrary Ising cost Hamiltonian
 * (§VI "Applicability beyond QAOA-MaxCut") with the chosen methodology.
 *
 * The quadratic (CPHASE) terms flow through the same QAIM / IP / IC /
 * VIC machinery as MaxCut; linear terms compile to virtual RZ rotations
 * at the qubits' post-cost-layer positions.
 */
transpiler::CompileResult compileQaoaIsing(const IsingModel &model,
                                           const hw::CouplingMap &map,
                                           const QaoaCompileOptions &opts);

} // namespace qaoa::core

#endif // QAOA_QAOA_API_HPP
