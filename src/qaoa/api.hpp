/**
 * @file
 * Top-level QAOA compilation API — the Fig. 2 workflow in one call.
 *
 * Selects the initial mapping (NAIVE / GreedyV / QAIM), the CPHASE
 * ordering strategy (random / IP / IC / VIC) and drives the backend
 * compiler, returning the hardware-compliant circuit and the §V-A quality
 * metrics.
 */

#ifndef QAOA_QAOA_API_HPP
#define QAOA_QAOA_API_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "hardware/calibration.hpp"
#include "hardware/coupling_map.hpp"
#include "qaoa/incremental.hpp"
#include "qaoa/problem.hpp"
#include "transpiler/compiler.hpp"

namespace qaoa::core {

class IsingModel;

/** Compilation methodology (§IV; NAIVE and GreedyV are the baselines). */
enum class Method {
    Naive,   ///< Random initial mapping + random CPHASE order.
    GreedyV, ///< GreedyV initial mapping + random CPHASE order.
    Qaim,    ///< QAIM initial mapping + random CPHASE order.
    Ip,      ///< QAIM + instruction-parallelized order, one-shot compile.
    Ic,      ///< QAIM + incremental per-layer compile.
    Vic,     ///< QAIM + variation-aware incremental compile.
};

/** Human-readable method name ("NAIVE", "QAIM", ...). */
std::string methodName(Method m);

/** Options for compileQaoaMaxcut(). */
struct QaoaCompileOptions
{
    Method method = Method::Ic;

    /** Cost angles, one per QAOA level (p = gammas.size()). */
    std::vector<double> gammas{0.7};

    /** Mixer angles, one per level. */
    std::vector<double> betas{0.35};

    /** Maximum CPHASE operations per layer for IP/IC/VIC (§V-H). */
    int packing_limit = 1 << 30;

    /** Master seed (instance-level determinism). */
    std::uint64_t seed = 7;

    /** Calibration data; required for VIC, optional otherwise. */
    const hw::CalibrationData *calibration = nullptr;

    /** Backend router tunables. */
    transpiler::RouterOptions router;

    /** Translate the result to the {U1,U2,U3,CNOT} basis. */
    bool decompose_to_basis = true;

    /** Run the peephole optimizer on the compiled circuit (off by
     *  default to match the paper's un-optimized backend metrics). */
    bool peephole = false;

    /** Append measurements (logical qubit l -> classical bit l). */
    bool measure = true;
};

/**
 * Compiles the QAOA-MaxCut circuit of @p problem for @p map with the
 * chosen methodology.
 *
 * @throws std::runtime_error when VIC is requested without calibration
 *         data or the device is too small for the problem.
 */
transpiler::CompileResult compileQaoaMaxcut(const graph::Graph &problem,
                                            const hw::CouplingMap &map,
                                            const QaoaCompileOptions &opts);

/**
 * Compiles the QAOA circuit of an arbitrary Ising cost Hamiltonian
 * (§VI "Applicability beyond QAOA-MaxCut") with the chosen methodology.
 *
 * The quadratic (CPHASE) terms flow through the same QAIM / IP / IC /
 * VIC machinery as MaxCut; linear terms compile to virtual RZ rotations
 * at the qubits' post-cost-layer positions.
 */
transpiler::CompileResult compileQaoaIsing(const IsingModel &model,
                                           const hw::CouplingMap &map,
                                           const QaoaCompileOptions &opts);

} // namespace qaoa::core

#endif // QAOA_QAOA_API_HPP
