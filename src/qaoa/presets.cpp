#include "qaoa/presets.hpp"

#include "common/error.hpp"

namespace qaoa::core {

Method
presetMethod(OptimizationLevel level, bool has_calibration)
{
    switch (level) {
      case OptimizationLevel::O0:
        return Method::Naive;
      case OptimizationLevel::O1:
        return Method::Qaim;
      case OptimizationLevel::O2:
        return Method::Ip;
      case OptimizationLevel::O3:
        return has_calibration ? Method::Vic : Method::Ic;
    }
    QAOA_ASSERT(false, "unknown optimization level");
    return Method::Naive;
}

transpiler::CompileResult
transpileQaoa(const graph::Graph &problem, const hw::CouplingMap &map,
              OptimizationLevel level, const std::vector<double> &gammas,
              const std::vector<double> &betas, std::uint64_t seed,
              const hw::CalibrationData *calibration)
{
    QaoaCompileOptions opts;
    opts.method = presetMethod(level, calibration != nullptr);
    opts.gammas = gammas;
    opts.betas = betas;
    opts.seed = seed;
    opts.calibration = calibration;
    opts.peephole = level == OptimizationLevel::O3;
    return compileQaoaMaxcut(problem, map, opts);
}

} // namespace qaoa::core
