/**
 * @file
 * Edge-coloring CPHASE layering — the theoretical complement to IP.
 *
 * Forming CPHASE layers is exactly edge coloring of the problem graph:
 * a layer is a matching, MOQ (= max degree Δ) is the trivial lower
 * bound, and Vizing's theorem guarantees Δ+1 layers suffice.  IP's
 * first-fit-decreasing bin packing (§IV-B) is the fast greedy
 * approximation; this module implements the Misra–Gries constructive
 * proof, giving a certified Δ+1 layering to measure IP against.
 */

#ifndef QAOA_QAOA_EDGE_COLORING_HPP
#define QAOA_QAOA_EDGE_COLORING_HPP

#include <vector>

#include "qaoa/problem.hpp"

namespace qaoa::core {

/**
 * Misra–Gries edge coloring of the CPHASE list.
 *
 * @param ops        Cost operations (the problem graph's edges; parallel
 *                   operations on the same pair are rejected).
 * @param num_qubits Number of logical qubits.
 * @return Layers (color classes) of operations; at most
 *         maxOpsPerQubit(ops) + 1 of them, each touching every qubit at
 *         most once.
 */
std::vector<std::vector<ZZOp>> edgeColoringLayers(
    const std::vector<ZZOp> &ops, int num_qubits);

/** Flattened layer-major order (drop-in alternative to ipOrder). */
std::vector<ZZOp> edgeColoringOrder(const std::vector<ZZOp> &ops,
                                    int num_qubits);

} // namespace qaoa::core

#endif // QAOA_QAOA_EDGE_COLORING_HPP
