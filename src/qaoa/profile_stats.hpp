/**
 * @file
 * Program profiling for QAOA circuits (§IV-A "Program Profiling" and the
 * IP ranking of Fig. 4(b,c)).
 */

#ifndef QAOA_QAOA_PROFILE_STATS_HPP
#define QAOA_QAOA_PROFILE_STATS_HPP

#include <vector>

#include "qaoa/problem.hpp"

namespace qaoa::core {

/** CPHASE operations per logical qubit (the GreedyV-style profile). */
std::vector<int> opsPerQubit(const std::vector<ZZOp> &ops, int num_qubits);

/**
 * Maximum Operations on a Qubit (MOQ) — the lower bound on the number of
 * CPHASE layers (Fig. 4(b)); equals the max degree of the problem graph.
 */
int maxOpsPerQubit(const std::vector<ZZOp> &ops, int num_qubits);

/**
 * Cumulative rank of a CPHASE operation: ops-per-qubit of its control
 * plus ops-per-qubit of its target (Fig. 4(c)).
 */
int operationRank(const ZZOp &op, const std::vector<int> &per_qubit);

} // namespace qaoa::core

#endif // QAOA_QAOA_PROFILE_STATS_HPP
