#include "qaoa/problem.hpp"

#include "common/error.hpp"

namespace qaoa::core {

std::vector<ZZOp>
costOperations(const graph::Graph &problem)
{
    std::vector<ZZOp> ops;
    ops.reserve(static_cast<std::size_t>(problem.numEdges()));
    for (const graph::Edge &e : problem.edges())
        ops.push_back({e.u, e.v, e.weight});
    return ops;
}

circuit::Circuit
buildQaoaCircuit(int num_qubits, const std::vector<ZZOp> &cost_ops,
                 const std::vector<double> &gammas,
                 const std::vector<double> &betas, bool measure)
{
    QAOA_CHECK(gammas.size() == betas.size(),
               "need one (gamma, beta) pair per level; got "
                   << gammas.size() << " gammas and " << betas.size()
                   << " betas");
    QAOA_CHECK(!gammas.empty(), "QAOA needs at least one level");

    circuit::Circuit c(num_qubits);
    for (int q = 0; q < num_qubits; ++q)
        c.add(circuit::Gate::h(q));
    for (std::size_t level = 0; level < gammas.size(); ++level) {
        for (const ZZOp &op : cost_ops)
            c.add(circuit::Gate::cphase(op.a, op.b,
                                        gammas[level] * op.weight));
        for (int q = 0; q < num_qubits; ++q)
            c.add(circuit::Gate::rx(q, 2.0 * betas[level]));
    }
    if (measure)
        for (int q = 0; q < num_qubits; ++q)
            c.add(circuit::Gate::measure(q, q));
    return c;
}

circuit::Circuit
buildQaoaCircuit(const graph::Graph &problem,
                 const std::vector<double> &gammas,
                 const std::vector<double> &betas, bool measure)
{
    return buildQaoaCircuit(problem.numNodes(), costOperations(problem),
                            gammas, betas, measure);
}

} // namespace qaoa::core
