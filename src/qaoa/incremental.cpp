#include "qaoa/incremental.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace qaoa::core {

IncrementalResult
icCompileCostLayer(const std::vector<ZZOp> &ops, const hw::CouplingMap &map,
                   const transpiler::Layout &initial, double gamma,
                   const IncrementalOptions &options)
{
    QAOA_CHECK(options.packing_limit >= 1, "packing limit must be >= 1");
    const graph::DistanceMatrix &dist =
        options.distances ? *options.distances : map.distances();

    Rng rng(options.seed);
    IncrementalResult result;
    result.physical = circuit::Circuit(map.numQubits());
    result.final_layout = initial;
    result.gamma = gamma;

    const int num_logical = initial.numLogical();
    std::vector<ZZOp> remaining = ops;

    // Router options for the per-layer backend compile: share the caller's
    // settings but score SWAPs against the same distance matrix used for
    // layer formation (hop for IC, 1/R-weighted for VIC) unless the
    // caller split the two (ablation hook).
    transpiler::RouterOptions router = options.router;
    router.distances =
        options.router_distances ? options.router_distances : &dist;

    while (!remaining.empty()) {
        // Cooperative check point: one poll per formed layer bounds the
        // cancellation latency of IC/VIC compiles to a single layer's
        // routing time.
        if (options.router.guard)
            options.router.guard->poll("incremental layer formation");
        // Step 1: sort ascending by current operand distance; equidistant
        // operations in random order (shuffle before the stable sort).
        auto op_distance = [&](const ZZOp &op) {
            int pa = result.final_layout.physicalOf(op.a);
            int pb = result.final_layout.physicalOf(op.b);
            return dist[static_cast<std::size_t>(pa)]
                       [static_cast<std::size_t>(pb)];
        };
        rng.shuffle(remaining);
        std::stable_sort(remaining.begin(), remaining.end(),
                         [&](const ZZOp &x, const ZZOp &y) {
                             return op_distance(x) < op_distance(y);
                         });

        // Greedy single-layer packing (same bin discipline as IP).
        std::vector<bool> used(static_cast<std::size_t>(num_logical),
                               false);
        std::vector<ZZOp> layer;
        std::vector<ZZOp> next_round;
        for (const ZZOp &op : remaining) {
            if (static_cast<int>(layer.size()) < options.packing_limit &&
                !used[static_cast<std::size_t>(op.a)] &&
                !used[static_cast<std::size_t>(op.b)]) {
                layer.push_back(op);
                used[static_cast<std::size_t>(op.a)] = true;
                used[static_cast<std::size_t>(op.b)] = true;
            } else {
                next_round.push_back(op);
            }
        }
        QAOA_ASSERT(!layer.empty(), "IC formed an empty layer");

        // Step 2: compile the partial circuit holding just this layer.
        circuit::Circuit partial(num_logical);
        for (const ZZOp &op : layer)
            partial.add(circuit::Gate::cphase(op.a, op.b,
                                              gamma * op.weight));
        router.seed = rng.fork();
        transpiler::RoutedCircuit routed = transpiler::routeCircuit(
            partial, map, result.final_layout, router);

        // Step 3 (incremental): stitch and carry the mapping forward.
        result.physical.append(routed.physical);
        result.final_layout = routed.final_layout;
        result.swap_count += routed.swap_count;
        ++result.layer_count;

        remaining = std::move(next_round);
    }
    return result;
}

} // namespace qaoa::core
