#include "qaoa/api.hpp"

#include <utility>

#include "circuit/decompose.hpp"
#include "common/error.hpp"
#include "common/guard.hpp"
#include "common/stopwatch.hpp"
#include "qaoa/ip.hpp"
#include "qaoa/ising.hpp"
#include "qaoa/profile_stats.hpp"
#include "qaoa/qaim.hpp"
#include "transpiler/layout_passes.hpp"
#include "transpiler/peephole.hpp"
#include "verify/verifier.hpp"

namespace qaoa::core {

std::string
methodName(Method m)
{
    switch (m) {
      case Method::Naive: return "NAIVE";
      case Method::GreedyV: return "GreedyV";
      case Method::Qaim: return "QAIM";
      case Method::Ip: return "IP";
      case Method::Ic: return "IC";
      case Method::Vic: return "VIC";
    }
    QAOA_ASSERT(false, "unknown method");
    return {};
}

Method
methodFromName(const std::string &name)
{
    if (name == "naive")
        return Method::Naive;
    if (name == "greedyv")
        return Method::GreedyV;
    if (name == "qaim")
        return Method::Qaim;
    if (name == "ip")
        return Method::Ip;
    if (name == "ic")
        return Method::Ic;
    if (name == "vic")
        return Method::Vic;
    QAOA_CHECK(false, "unknown method: " << name);
    return Method::Ic; // unreachable
}

namespace {

using transpiler::CompileOptions;
using transpiler::CompileResult;
using transpiler::CompileStatus;
using transpiler::Layout;

/** Initial mapping per method (Fig. 2 "QAIM" box or a baseline). */
Layout
chooseLayout(Method method, const std::vector<ZZOp> &ops, int num_logical,
             const hw::CouplingMap &map, Rng &rng,
             const std::vector<char> *allowed)
{
    switch (method) {
      case Method::Naive:
        return transpiler::randomLayout(num_logical, map, rng, allowed);
      case Method::GreedyV:
        return transpiler::greedyVLayout(opsPerQubit(ops, num_logical),
                                         map, allowed);
      default: {
        QaimOptions qopts;
        qopts.allowed_qubits = allowed;
        return qaimLayout(ops, num_logical, map, rng, qopts);
      }
    }
}

/**
 * One-shot path (NAIVE / GreedyV / QAIM / IP): build the complete logical
 * circuit in the chosen gate order and hand it to the backend compiler.
 *
 * @p method and @p router are explicit (instead of read from @p opts)
 * so the retry ladder can substitute fallback rungs.
 */
CompileResult
compileOneShot(const graph::Graph &problem, const hw::CouplingMap &map,
               const QaoaCompileOptions &opts, Method method,
               const transpiler::RouterOptions &router,
               const std::vector<ZZOp> &ops, const Layout &initial,
               Rng &rng)
{
    std::vector<ZZOp> ordered = ops;
    if (method == Method::Ip) {
        ordered = ipOrder(ops, problem.numNodes(), rng,
                          opts.packing_limit)
                      .order;
    } else {
        rng.shuffle(ordered); // random CPHASE sequence
    }

    circuit::Circuit logical = buildQaoaCircuit(
        problem.numNodes(), ordered, opts.gammas, opts.betas, opts.measure);

    CompileOptions copts;
    copts.router = router;
    copts.router.seed = rng.fork();
    copts.decompose_to_basis = opts.decompose_to_basis;
    // Conventional backends partition the circuit into layers of
    // concurrently executable gates and route layer by layer (§III) —
    // this is what makes the CPHASE order matter for NAIVE/QAIM/IP.
    copts.layered_routing = true;
    copts.peephole = opts.peephole;
    return transpiler::compileCircuit(logical, map, initial, copts);
}

/**
 * Incremental path (IC / VIC): H wall, then per level an incrementally
 * routed cost layer followed by the mixer, stitched on physical qubits.
 */
CompileResult
compileIncremental(const graph::Graph &problem, const hw::CouplingMap &map,
                   const QaoaCompileOptions &opts, Method method,
                   const transpiler::RouterOptions &router,
                   const std::vector<ZZOp> &ops, const Layout &initial,
                   Rng &rng)
{
    graph::DistanceMatrix weighted;
    IncrementalOptions iopts;
    iopts.packing_limit = opts.packing_limit;
    iopts.router = router;
    if (method == Method::Vic) {
        QAOA_CHECK(opts.calibration != nullptr,
                   "VIC requires calibration data");
        weighted = hw::weightedDistances(map, *opts.calibration);
        iopts.distances = &weighted;
    }

    const int n = problem.numNodes();
    circuit::Circuit physical(map.numQubits());
    Layout layout = initial;

    // H wall on the initially mapped physical qubits.
    for (int l = 0; l < n; ++l)
        physical.add(circuit::Gate::h(layout.physicalOf(l)));

    int swaps = 0;
    for (std::size_t level = 0; level < opts.gammas.size(); ++level) {
        iopts.seed = rng.fork();
        IncrementalResult inc = icCompileCostLayer(
            ops, map, layout, opts.gammas[level], iopts);
        physical.append(inc.physical);
        layout = inc.final_layout;
        swaps += inc.swap_count;
        for (int l = 0; l < n; ++l)
            physical.add(circuit::Gate::rx(layout.physicalOf(l),
                                           2.0 * opts.betas[level]));
    }
    if (opts.measure)
        for (int l = 0; l < n; ++l)
            physical.add(circuit::Gate::measure(layout.physicalOf(l), l));

    if (opts.peephole)
        physical = transpiler::peepholeOptimize(physical);
    CompileResult result;
    result.physical = physical;
    result.compiled = opts.decompose_to_basis
                          ? circuit::decomposeToBasis(physical)
                          : std::move(physical);
    if (opts.peephole)
        result.compiled = transpiler::peepholeOptimize(result.compiled);
    result.initial_layout = initial;
    result.final_layout = layout;
    result.report.depth = result.compiled.depth();
    result.report.gate_count = result.compiled.gateCount();
    result.report.cx_count =
        result.compiled.countType(circuit::GateType::CNOT);
    result.report.swap_count = swaps;
    return result;
}

/**
 * The logical ZZ multiset a compiled circuit must realize: one term per
 * cost operation per level, angle = scale * gamma_level * weight (scale
 * is 1 for MaxCut, 2 for Ising quadratic terms).
 */
std::vector<verify::ZZTerm>
expectedInteractions(const std::vector<ZZOp> &ops,
                     const std::vector<double> &gammas, double scale)
{
    std::vector<verify::ZZTerm> terms;
    terms.reserve(ops.size() * gammas.size());
    for (double gamma : gammas)
        for (const ZZOp &op : ops)
            terms.push_back({op.a, op.b, scale * gamma * op.weight});
    return terms;
}

/**
 * Per-rung translation validation: checks result.physical against the
 * (possibly degraded) map and the expected ZZ multiset.  A dirty rung is
 * downgraded to CompileStatus::Failed so runLadder() falls back instead
 * of returning a miscompiled circuit.
 */
void
verifyRung(CompileResult &result, const hw::CouplingMap &map,
           const QaoaCompileOptions &opts,
           const std::vector<verify::ZZTerm> &expected)
{
    if (!opts.verify || !result.ok())
        return;
    verify::VerifySpec spec;
    spec.map = &map;
    spec.allowed_qubits = opts.allowed_qubits;
    spec.initial_log_to_phys = result.initial_layout.logToPhys();
    spec.expected_final = result.final_layout.logToPhys();
    spec.expected_interactions = &expected;
    spec.lift_basis = false; // result.physical holds high-level gates
    // The peephole optimizer legally deletes CPHASEs whose angle is a
    // multiple of 2pi; don't flag those as missing interactions.
    spec.ignore_zero_interactions = opts.peephole;
    verify::VerifyReport report =
        verify::verifyCircuit(result.physical, spec);
    if (!report.clean()) {
        result.status = CompileStatus::Failed;
        result.failure_reason =
            "verifier rejected the compiled circuit: " + report.summary();
        result.diagnostics.push_back(result.failure_reason);
    }
}

/**
 * checkQuality hook: records the static quality report of a successful
 * compile in result.quality.  Analysis only — the circuit, layouts and
 * §V-A report are untouched, and no rng state is consumed.
 */
void
checkQuality(CompileResult &result, const hw::CouplingMap &map,
             const QaoaCompileOptions &opts)
{
    if (!opts.analyze_quality || !result.ok())
        return;
    analysis::QualityOptions qopts;
    qopts.lint.map = &map;
    qopts.lint.calibration = opts.calibration;
    qopts.lint.crosstalk_pairs = opts.crosstalk_pairs;
    result.quality = analysis::analyzeCircuit(result.physical, qopts);
}

/** One rung of the retry ladder. */
struct Attempt
{
    Method method;
    transpiler::RouterOptions router;
    std::string label;
};

/**
 * The bounded retry ladder (§IV-D spirit: adapt to the hardware instead
 * of dying).  Rung 0 is the caller's exact request; on failure the same
 * method retries with a relaxed (lookahead-free) router, then the method
 * falls back towards plain QAIM ordering: VIC -> IC -> QAIM, everything
 * else -> QAIM.
 */
std::vector<Attempt>
buildLadder(const QaoaCompileOptions &opts)
{
    std::vector<Attempt> ladder;
    ladder.push_back({opts.method, opts.router, "requested configuration"});
    if (!opts.allow_fallbacks)
        return ladder;
    transpiler::RouterOptions relaxed = opts.router;
    relaxed.lookahead_weight = 0.0;
    relaxed.lookahead_depth = 0;
    ladder.push_back({opts.method, relaxed,
                      methodName(opts.method) + " with relaxed router"});
    if (opts.method == Method::Vic)
        ladder.push_back({Method::Ic, relaxed, "fallback to IC"});
    if (opts.method != Method::Qaim)
        ladder.push_back({Method::Qaim, relaxed, "fallback to QAIM"});
    return ladder;
}

/** True when the caller marked the device degraded or qubits unusable,
 *  or the map is fragmented. */
bool
deviceDegraded(const hw::CouplingMap &map, const QaoaCompileOptions &opts)
{
    if (opts.device_degraded || !map.connected())
        return true;
    if (!opts.allowed_qubits)
        return false;
    for (int q = 0; q < map.numQubits(); ++q)
        if (!(*opts.allowed_qubits)[static_cast<std::size_t>(q)])
            return true;
    return false;
}

/** Count of usable qubits under @p allowed (all when nullptr). */
int
usableCount(const hw::CouplingMap &map, const std::vector<char> *allowed)
{
    if (!allowed)
        return map.numQubits();
    int count = 0;
    for (char c : *allowed)
        if (c)
            ++count;
    return count;
}

/**
 * Checks that the usable region can host an @p n qubit program.  On
 * failure fills @p out with a structured Failed result (no attempt can
 * succeed, so the ladder is skipped entirely) and returns false.
 */
bool
supportsProgram(const hw::CouplingMap &map, const QaoaCompileOptions &opts,
                int n, CompileResult *out)
{
    const int usable = usableCount(map, opts.allowed_qubits);
    if (usable >= n)
        return true;
    out->compiled = circuit::Circuit(map.numQubits());
    out->status = CompileStatus::Failed;
    out->failure_reason =
        "no connected component large enough: program needs " +
        std::to_string(n) + " qubits, device " + map.name() + " has " +
        std::to_string(usable) + " usable of " +
        std::to_string(map.numQubits());
    out->diagnostics.push_back(out->failure_reason);
    return false;
}

/** Stage-trace outcome class of a rung's terminal status. */
run::StageOutcome
outcomeOf(CompileStatus s)
{
    switch (s) {
      case CompileStatus::Ok:
      case CompileStatus::Degraded: return run::StageOutcome::Completed;
      case CompileStatus::Failed: return run::StageOutcome::Failed;
      case CompileStatus::TimedOut: return run::StageOutcome::TimedOut;
      case CompileStatus::Cancelled: return run::StageOutcome::Cancelled;
      case CompileStatus::ResourceExceeded:
        return run::StageOutcome::GuardTripped;
    }
    QAOA_ASSERT(false, "unknown compile status");
    return run::StageOutcome::Failed;
}

/**
 * Drives @p attempt_fn down the retry ladder until one rung compiles.
 *
 * @p attempt_fn runs one full pipeline attempt (placement + ordering +
 * routing) for a given method/router/seed; it may throw or return a
 * non-ok result.  Rung 0 uses opts.seed unchanged — healthy-device
 * compiles are bit-identical to the ladder-free pipeline — and every
 * retry derives its seed from one Rng stream, so identical seeds give
 * identical degraded compiles.
 *
 * Resilience semantics (when opts.guard is set): every rung runs under
 * a stage guard whose deadline is min(total deadline, now + stage
 * budget).  Cancellation aborts the ladder immediately; a timeout
 * aborts only when the *total* deadline is spent (a stage-budget
 * timeout is degradable — the next rung gets a fresh budget); a
 * resource-guard trip is degradable like a routing failure.  One
 * StageTrace per rung is recorded in CompileResult::stages.
 */
template <typename AttemptFn>
CompileResult
runLadder(const hw::CouplingMap &map, const QaoaCompileOptions &opts,
          AttemptFn attempt_fn)
{
    const bool degraded = deviceDegraded(map, opts);
    const std::vector<Attempt> ladder = buildLadder(opts);
    Rng retry_rng(opts.seed);
    std::vector<std::string> notes;
    std::vector<run::StageTrace> traces;
    int timed_out_rungs = 0;
    int guard_tripped_rungs = 0;

    // Terminal non-ok result: no partial circuit, full flight record.
    auto interrupted = [&](CompileStatus status,
                           const std::string &reason) {
        CompileResult out;
        out.compiled = circuit::Circuit(map.numQubits());
        out.status = status;
        out.diagnostics = notes;
        out.stages = traces;
        out.failure_reason = reason;
        return out;
    };

    // A deadline that expired before the first rung (e.g. earlier
    // instances of a batch burned it) must not start new work.
    if (opts.guard) {
        try {
            opts.guard->pollStrict("compile start");
        } catch (const run::CancelledError &e) {
            return interrupted(CompileStatus::Cancelled, e.what());
        } catch (const run::TimedOutError &e) {
            return interrupted(CompileStatus::TimedOut, e.what());
        }
    }

    for (std::size_t i = 0; i < ladder.size(); ++i) {
        const Attempt &attempt = ladder[i];
        const std::uint64_t seed = i == 0 ? opts.seed : retry_rng.fork();

        // Stage guard for this rung; rung router options point at it,
        // which is how the routers, the incremental layer loop and the
        // resource limits see it.
        run::RunGuard stage_guard;
        transpiler::RouterOptions rung_router = attempt.router;
        if (opts.guard) {
            stage_guard = opts.guard->stageGuard(opts.stage_budget_ms);
            rung_router.guard = &stage_guard;
        }

        run::StageTrace trace;
        trace.stage = attempt.label;
        trace.retries = static_cast<int>(i);
        Stopwatch stage_clock;

        CompileResult result;
        try {
            result = attempt_fn(attempt.method, rung_router, seed);
        } catch (const run::CancelledError &e) {
            result.status = CompileStatus::Cancelled;
            result.failure_reason = e.what();
        } catch (const run::TimedOutError &e) {
            result.status = CompileStatus::TimedOut;
            result.failure_reason = e.what();
        } catch (const run::ResourceExceededError &e) {
            result.status = CompileStatus::ResourceExceeded;
            result.failure_reason = e.what();
        } catch (const std::exception &e) {
            result.status = CompileStatus::Failed;
            result.failure_reason = e.what();
        }
        trace.elapsed_ms = stage_clock.seconds() * 1e3;
        trace.outcome = outcomeOf(result.status);
        if (!result.ok())
            trace.detail = result.failure_reason;
        traces.push_back(trace);

        if (result.ok()) {
            // Success — annotate how we got here.
            result.diagnostics.insert(result.diagnostics.begin(),
                                      notes.begin(), notes.end());
            if (i > 0)
                result.diagnostics.push_back("succeeded via " +
                                             attempt.label);
            if (degraded) {
                const int usable = usableCount(map, opts.allowed_qubits);
                result.diagnostics.push_back(
                    usable < map.numQubits()
                        ? "device degraded: " + std::to_string(usable) +
                              "/" + std::to_string(map.numQubits()) +
                              " qubits usable on " + map.name()
                        : "device degraded: " + map.name() +
                              " lost couplings (all qubits still "
                              "usable)");
            }
            if (i > 0 || degraded)
                result.status = CompileStatus::Degraded;
            result.stages = traces;
            return result;
        }

        notes.push_back(attempt.label + " " +
                        run::stageOutcomeName(trace.outcome) + ": " +
                        result.failure_reason);

        if (result.status == CompileStatus::Cancelled)
            return interrupted(CompileStatus::Cancelled,
                               result.failure_reason);
        if (result.status == CompileStatus::TimedOut) {
            ++timed_out_rungs;
            if (!opts.guard || opts.guard->deadline().expired())
                return interrupted(CompileStatus::TimedOut,
                                   result.failure_reason);
        }
        if (result.status == CompileStatus::ResourceExceeded)
            ++guard_tripped_rungs;
    }

    // Ladder exhausted.  When every rung died the same resilience
    // death, surface that class instead of a generic failure.
    const int rungs = static_cast<int>(ladder.size());
    CompileStatus final_status = CompileStatus::Failed;
    if (guard_tripped_rungs == rungs)
        final_status = CompileStatus::ResourceExceeded;
    else if (timed_out_rungs == rungs)
        final_status = CompileStatus::TimedOut;
    return interrupted(final_status,
                       "all " + std::to_string(ladder.size()) +
                           " compile attempts failed; last error: " +
                           (notes.empty() ? std::string("none")
                                          : notes.back()));
}

} // namespace

namespace {

/**
 * Incremental (IC/VIC) compile of an Ising circuit: per level, route the
 * quadratic terms layer-by-layer, then emit the linear RZ terms and the
 * mixer at the updated physical positions.
 */
CompileResult
compileIsingIncremental(const IsingModel &model,
                        const hw::CouplingMap &map,
                        const QaoaCompileOptions &opts, Method method,
                        const transpiler::RouterOptions &router,
                        const std::vector<ZZOp> &quad, const Layout &initial,
                        Rng &rng)
{
    graph::DistanceMatrix weighted;
    IncrementalOptions iopts;
    iopts.packing_limit = opts.packing_limit;
    iopts.router = router;
    if (method == Method::Vic) {
        QAOA_CHECK(opts.calibration != nullptr,
                   "VIC requires calibration data");
        weighted = hw::weightedDistances(map, *opts.calibration);
        iopts.distances = &weighted;
    }

    const int n = model.numSpins();
    circuit::Circuit physical(map.numQubits());
    Layout layout = initial;
    for (int l = 0; l < n; ++l)
        physical.add(circuit::Gate::h(layout.physicalOf(l)));

    int swaps = 0;
    for (std::size_t level = 0; level < opts.gammas.size(); ++level) {
        iopts.seed = rng.fork();
        // CPHASE angle per term is 2*gamma*J — pass 2*gamma as the layer
        // angle so icCompileCostLayer's gamma*weight product matches
        // buildIsingQaoaCircuit().
        IncrementalResult inc = icCompileCostLayer(
            quad, map, layout, 2.0 * opts.gammas[level], iopts);
        physical.append(inc.physical);
        layout = inc.final_layout;
        swaps += inc.swap_count;
        for (int l = 0; l < n; ++l) {
            double h = model.linear(l);
            if (h != 0.0)
                physical.add(circuit::Gate::rz(
                    layout.physicalOf(l), 2.0 * opts.gammas[level] * h));
        }
        for (int l = 0; l < n; ++l)
            physical.add(circuit::Gate::rx(layout.physicalOf(l),
                                           2.0 * opts.betas[level]));
    }
    if (opts.measure)
        for (int l = 0; l < n; ++l)
            physical.add(circuit::Gate::measure(layout.physicalOf(l), l));

    if (opts.peephole)
        physical = transpiler::peepholeOptimize(physical);
    CompileResult result;
    result.physical = physical;
    result.compiled = opts.decompose_to_basis
                          ? circuit::decomposeToBasis(physical)
                          : std::move(physical);
    if (opts.peephole)
        result.compiled = transpiler::peepholeOptimize(result.compiled);
    result.initial_layout = initial;
    result.final_layout = layout;
    result.report.depth = result.compiled.depth();
    result.report.gate_count = result.compiled.gateCount();
    result.report.cx_count =
        result.compiled.countType(circuit::GateType::CNOT);
    result.report.swap_count = swaps;
    return result;
}

} // namespace

CompileResult
compileQaoaIsing(const IsingModel &model, const hw::CouplingMap &map,
                 const QaoaCompileOptions &opts)
{
    const int n = model.numSpins();
    QAOA_CHECK(n >= 2, "Ising model too small");
    QAOA_CHECK(n <= map.numQubits(),
               "model has " << n << " spins, device " << map.name()
                            << " has " << map.numQubits() << " qubits");
    QAOA_CHECK(opts.gammas.size() == opts.betas.size() &&
                   !opts.gammas.empty(),
               "need one (gamma, beta) pair per level");
    QAOA_CHECK(opts.method != Method::Vic || opts.calibration != nullptr,
               "VIC requires calibration data");

    Stopwatch clock;
    CompileResult result;
    if (!supportsProgram(map, opts, n, &result))
        return result;

    const std::vector<ZZOp> quad = model.quadraticOps();
    // CPHASE angle per quadratic term is 2*gamma*J (see
    // compileIsingIncremental), hence scale 2.
    const std::vector<verify::ZZTerm> expected =
        expectedInteractions(quad, opts.gammas, 2.0);
    result = runLadder(
        map, opts,
        [&](Method method, const transpiler::RouterOptions &router,
            std::uint64_t seed) {
            Rng rng(seed);
            const Layout initial = chooseLayout(method, quad, n, map, rng,
                                                opts.allowed_qubits);
            CompileResult attempt;
            if (method == Method::Ic || method == Method::Vic) {
                attempt = compileIsingIncremental(
                    model, map, opts, method, router, quad, initial, rng);
            } else {
                std::vector<ZZOp> ordered = quad;
                if (method == Method::Ip)
                    ordered =
                        ipOrder(quad, n, rng, opts.packing_limit).order;
                else
                    rng.shuffle(ordered);
                circuit::Circuit logical = buildIsingQaoaCircuit(
                    model, ordered, opts.gammas, opts.betas, opts.measure);
                CompileOptions copts;
                copts.router = router;
                copts.router.seed = rng.fork();
                copts.decompose_to_basis = opts.decompose_to_basis;
                copts.layered_routing = true;
                copts.peephole = opts.peephole;
                attempt = transpiler::compileCircuit(logical, map, initial,
                                                     copts);
            }
            verifyRung(attempt, map, opts, expected);
            return attempt;
        });
    checkQuality(result, map, opts);
    result.report.compile_seconds = clock.seconds();
    if (opts.analyze_quality && result.ok())
        result.quality.summary.compile_ms =
            result.report.compile_seconds * 1e3;
    return result;
}

CompileResult
compileQaoaMaxcut(const graph::Graph &problem, const hw::CouplingMap &map,
                  const QaoaCompileOptions &opts)
{
    QAOA_CHECK(problem.numNodes() >= 2, "problem graph too small");
    QAOA_CHECK(problem.numNodes() <= map.numQubits(),
               "problem has " << problem.numNodes() << " nodes, device "
                              << map.name() << " has " << map.numQubits()
                              << " qubits");
    QAOA_CHECK(opts.gammas.size() == opts.betas.size() &&
                   !opts.gammas.empty(),
               "need one (gamma, beta) pair per level");
    QAOA_CHECK(opts.method != Method::Vic || opts.calibration != nullptr,
               "VIC requires calibration data");

    Stopwatch clock;
    const int n = problem.numNodes();
    CompileResult result;
    if (!supportsProgram(map, opts, n, &result))
        return result;

    const std::vector<ZZOp> ops = costOperations(problem);
    const std::vector<verify::ZZTerm> expected =
        expectedInteractions(ops, opts.gammas, 1.0);
    result = runLadder(
        map, opts,
        [&](Method method, const transpiler::RouterOptions &router,
            std::uint64_t seed) {
            Rng rng(seed);
            const Layout initial = chooseLayout(method, ops, n, map, rng,
                                                opts.allowed_qubits);
            CompileResult attempt =
                method == Method::Ic || method == Method::Vic
                    ? compileIncremental(problem, map, opts, method,
                                         router, ops, initial, rng)
                    : compileOneShot(problem, map, opts, method, router,
                                     ops, initial, rng);
            verifyRung(attempt, map, opts, expected);
            return attempt;
        });
    checkQuality(result, map, opts);
    result.report.compile_seconds = clock.seconds();
    if (opts.analyze_quality && result.ok())
        result.quality.summary.compile_ms =
            result.report.compile_seconds * 1e3;
    return result;
}

} // namespace qaoa::core
