#include "qaoa/api.hpp"

#include <utility>

#include "circuit/decompose.hpp"
#include "common/error.hpp"
#include "common/stopwatch.hpp"
#include "qaoa/ip.hpp"
#include "qaoa/ising.hpp"
#include "qaoa/profile_stats.hpp"
#include "qaoa/qaim.hpp"
#include "transpiler/layout_passes.hpp"
#include "transpiler/peephole.hpp"

namespace qaoa::core {

std::string
methodName(Method m)
{
    switch (m) {
      case Method::Naive: return "NAIVE";
      case Method::GreedyV: return "GreedyV";
      case Method::Qaim: return "QAIM";
      case Method::Ip: return "IP";
      case Method::Ic: return "IC";
      case Method::Vic: return "VIC";
    }
    QAOA_ASSERT(false, "unknown method");
    return {};
}

namespace {

using transpiler::CompileOptions;
using transpiler::CompileResult;
using transpiler::Layout;

/** Initial mapping per method (Fig. 2 "QAIM" box or a baseline). */
Layout
chooseLayout(Method method, const std::vector<ZZOp> &ops, int num_logical,
             const hw::CouplingMap &map, Rng &rng)
{
    switch (method) {
      case Method::Naive:
        return transpiler::randomLayout(num_logical, map, rng);
      case Method::GreedyV:
        return transpiler::greedyVLayout(opsPerQubit(ops, num_logical),
                                         map);
      default:
        return qaimLayout(ops, num_logical, map, rng);
    }
}

/**
 * One-shot path (NAIVE / GreedyV / QAIM / IP): build the complete logical
 * circuit in the chosen gate order and hand it to the backend compiler.
 */
CompileResult
compileOneShot(const graph::Graph &problem, const hw::CouplingMap &map,
               const QaoaCompileOptions &opts, const std::vector<ZZOp> &ops,
               const Layout &initial, Rng &rng)
{
    std::vector<ZZOp> ordered = ops;
    if (opts.method == Method::Ip) {
        ordered = ipOrder(ops, problem.numNodes(), rng,
                          opts.packing_limit)
                      .order;
    } else {
        rng.shuffle(ordered); // random CPHASE sequence
    }

    circuit::Circuit logical = buildQaoaCircuit(
        problem.numNodes(), ordered, opts.gammas, opts.betas, opts.measure);

    CompileOptions copts;
    copts.router = opts.router;
    copts.router.seed = rng.fork();
    copts.decompose_to_basis = opts.decompose_to_basis;
    // Conventional backends partition the circuit into layers of
    // concurrently executable gates and route layer by layer (§III) —
    // this is what makes the CPHASE order matter for NAIVE/QAIM/IP.
    copts.layered_routing = true;
    copts.peephole = opts.peephole;
    return transpiler::compileCircuit(logical, map, initial, copts);
}

/**
 * Incremental path (IC / VIC): H wall, then per level an incrementally
 * routed cost layer followed by the mixer, stitched on physical qubits.
 */
CompileResult
compileIncremental(const graph::Graph &problem, const hw::CouplingMap &map,
                   const QaoaCompileOptions &opts,
                   const std::vector<ZZOp> &ops, const Layout &initial,
                   Rng &rng)
{
    graph::DistanceMatrix weighted;
    IncrementalOptions iopts;
    iopts.packing_limit = opts.packing_limit;
    iopts.router = opts.router;
    if (opts.method == Method::Vic) {
        QAOA_CHECK(opts.calibration != nullptr,
                   "VIC requires calibration data");
        weighted = hw::weightedDistances(map, *opts.calibration);
        iopts.distances = &weighted;
    }

    const int n = problem.numNodes();
    circuit::Circuit physical(map.numQubits());
    Layout layout = initial;

    // H wall on the initially mapped physical qubits.
    for (int l = 0; l < n; ++l)
        physical.add(circuit::Gate::h(layout.physicalOf(l)));

    int swaps = 0;
    for (std::size_t level = 0; level < opts.gammas.size(); ++level) {
        iopts.seed = rng.fork();
        IncrementalResult inc = icCompileCostLayer(
            ops, map, layout, opts.gammas[level], iopts);
        physical.append(inc.physical);
        layout = inc.final_layout;
        swaps += inc.swap_count;
        for (int l = 0; l < n; ++l)
            physical.add(circuit::Gate::rx(layout.physicalOf(l),
                                           2.0 * opts.betas[level]));
    }
    if (opts.measure)
        for (int l = 0; l < n; ++l)
            physical.add(circuit::Gate::measure(layout.physicalOf(l), l));

    if (opts.peephole)
        physical = transpiler::peepholeOptimize(physical);
    CompileResult result;
    result.compiled = opts.decompose_to_basis
                          ? circuit::decomposeToBasis(physical)
                          : std::move(physical);
    if (opts.peephole)
        result.compiled = transpiler::peepholeOptimize(result.compiled);
    result.initial_layout = initial;
    result.final_layout = layout;
    result.report.depth = result.compiled.depth();
    result.report.gate_count = result.compiled.gateCount();
    result.report.cx_count =
        result.compiled.countType(circuit::GateType::CNOT);
    result.report.swap_count = swaps;
    return result;
}

} // namespace

namespace {

/**
 * Incremental (IC/VIC) compile of an Ising circuit: per level, route the
 * quadratic terms layer-by-layer, then emit the linear RZ terms and the
 * mixer at the updated physical positions.
 */
CompileResult
compileIsingIncremental(const IsingModel &model,
                        const hw::CouplingMap &map,
                        const QaoaCompileOptions &opts,
                        const std::vector<ZZOp> &quad, const Layout &initial,
                        Rng &rng)
{
    graph::DistanceMatrix weighted;
    IncrementalOptions iopts;
    iopts.packing_limit = opts.packing_limit;
    iopts.router = opts.router;
    if (opts.method == Method::Vic) {
        QAOA_CHECK(opts.calibration != nullptr,
                   "VIC requires calibration data");
        weighted = hw::weightedDistances(map, *opts.calibration);
        iopts.distances = &weighted;
    }

    const int n = model.numSpins();
    circuit::Circuit physical(map.numQubits());
    Layout layout = initial;
    for (int l = 0; l < n; ++l)
        physical.add(circuit::Gate::h(layout.physicalOf(l)));

    int swaps = 0;
    for (std::size_t level = 0; level < opts.gammas.size(); ++level) {
        iopts.seed = rng.fork();
        // CPHASE angle per term is 2*gamma*J — pass 2*gamma as the layer
        // angle so icCompileCostLayer's gamma*weight product matches
        // buildIsingQaoaCircuit().
        IncrementalResult inc = icCompileCostLayer(
            quad, map, layout, 2.0 * opts.gammas[level], iopts);
        physical.append(inc.physical);
        layout = inc.final_layout;
        swaps += inc.swap_count;
        for (int l = 0; l < n; ++l) {
            double h = model.linear(l);
            if (h != 0.0)
                physical.add(circuit::Gate::rz(
                    layout.physicalOf(l), 2.0 * opts.gammas[level] * h));
        }
        for (int l = 0; l < n; ++l)
            physical.add(circuit::Gate::rx(layout.physicalOf(l),
                                           2.0 * opts.betas[level]));
    }
    if (opts.measure)
        for (int l = 0; l < n; ++l)
            physical.add(circuit::Gate::measure(layout.physicalOf(l), l));

    if (opts.peephole)
        physical = transpiler::peepholeOptimize(physical);
    CompileResult result;
    result.compiled = opts.decompose_to_basis
                          ? circuit::decomposeToBasis(physical)
                          : std::move(physical);
    if (opts.peephole)
        result.compiled = transpiler::peepholeOptimize(result.compiled);
    result.initial_layout = initial;
    result.final_layout = layout;
    result.report.depth = result.compiled.depth();
    result.report.gate_count = result.compiled.gateCount();
    result.report.cx_count =
        result.compiled.countType(circuit::GateType::CNOT);
    result.report.swap_count = swaps;
    return result;
}

} // namespace

CompileResult
compileQaoaIsing(const IsingModel &model, const hw::CouplingMap &map,
                 const QaoaCompileOptions &opts)
{
    const int n = model.numSpins();
    QAOA_CHECK(n >= 2, "Ising model too small");
    QAOA_CHECK(n <= map.numQubits(),
               "model has " << n << " spins, device " << map.name()
                            << " has " << map.numQubits() << " qubits");
    QAOA_CHECK(opts.gammas.size() == opts.betas.size() &&
                   !opts.gammas.empty(),
               "need one (gamma, beta) pair per level");

    Stopwatch clock;
    Rng rng(opts.seed);
    const std::vector<ZZOp> quad = model.quadraticOps();
    const Layout initial = chooseLayout(opts.method, quad, n, map, rng);

    CompileResult result;
    if (opts.method == Method::Ic || opts.method == Method::Vic) {
        result = compileIsingIncremental(model, map, opts, quad, initial,
                                         rng);
    } else {
        std::vector<ZZOp> ordered = quad;
        if (opts.method == Method::Ip)
            ordered = ipOrder(quad, n, rng, opts.packing_limit).order;
        else
            rng.shuffle(ordered);
        circuit::Circuit logical = buildIsingQaoaCircuit(
            model, ordered, opts.gammas, opts.betas, opts.measure);
        CompileOptions copts;
        copts.router = opts.router;
        copts.router.seed = rng.fork();
        copts.decompose_to_basis = opts.decompose_to_basis;
        copts.layered_routing = true;
        copts.peephole = opts.peephole;
        result = transpiler::compileCircuit(logical, map, initial, copts);
    }
    result.report.compile_seconds = clock.seconds();
    return result;
}

CompileResult
compileQaoaMaxcut(const graph::Graph &problem, const hw::CouplingMap &map,
                  const QaoaCompileOptions &opts)
{
    QAOA_CHECK(problem.numNodes() >= 2, "problem graph too small");
    QAOA_CHECK(problem.numNodes() <= map.numQubits(),
               "problem has " << problem.numNodes() << " nodes, device "
                              << map.name() << " has " << map.numQubits()
                              << " qubits");
    QAOA_CHECK(opts.gammas.size() == opts.betas.size() &&
                   !opts.gammas.empty(),
               "need one (gamma, beta) pair per level");

    Stopwatch clock;
    Rng rng(opts.seed);
    const std::vector<ZZOp> ops = costOperations(problem);
    const Layout initial =
        chooseLayout(opts.method, ops, problem.numNodes(), map, rng);

    CompileResult result;
    if (opts.method == Method::Ic || opts.method == Method::Vic)
        result = compileIncremental(problem, map, opts, ops, initial, rng);
    else
        result = compileOneShot(problem, map, opts, ops, initial, rng);
    result.report.compile_seconds = clock.seconds();
    return result;
}

} // namespace qaoa::core
