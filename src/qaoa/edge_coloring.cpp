#include "qaoa/edge_coloring.hpp"

#include <algorithm>
#include <array>

#include "common/error.hpp"
#include "qaoa/profile_stats.hpp"

namespace qaoa::core {

namespace {

/**
 * Misra–Gries working state: colors are 0..max_colors-1 (Δ+1 of them);
 * -1 means uncolored.  color_at[v][c] = neighbor of v joined by the
 * c-colored edge, or -1.
 */
class MisraGries
{
  public:
    MisraGries(int num_vertices, int max_colors)
        : max_colors_(max_colors),
          color_at_(static_cast<std::size_t>(num_vertices),
                    std::vector<int>(static_cast<std::size_t>(max_colors),
                                     -1))
    {
    }

    /** Smallest color unused at vertex v. */
    int
    freeColor(int v) const
    {
        for (int c = 0; c < max_colors_; ++c)
            if (color_at_[static_cast<std::size_t>(v)]
                         [static_cast<std::size_t>(c)] < 0)
                return c;
        QAOA_ASSERT(false, "no free color at vertex " << v);
        return -1;
    }

    bool
    isFree(int v, int c) const
    {
        return color_at_[static_cast<std::size_t>(v)]
                        [static_cast<std::size_t>(c)] < 0;
    }

    int
    neighborAt(int v, int c) const
    {
        return color_at_[static_cast<std::size_t>(v)]
                        [static_cast<std::size_t>(c)];
    }

    void
    setColor(int u, int v, int c)
    {
        QAOA_ASSERT(isFree(u, c) && isFree(v, c),
                    "coloring would double-book color " << c);
        color_at_[static_cast<std::size_t>(u)]
                 [static_cast<std::size_t>(c)] = v;
        color_at_[static_cast<std::size_t>(v)]
                 [static_cast<std::size_t>(c)] = u;
    }

    void
    clearColor(int u, int v, int c)
    {
        QAOA_ASSERT(neighborAt(u, c) == v && neighborAt(v, c) == u,
                    "clearing a non-existent colored edge");
        color_at_[static_cast<std::size_t>(u)]
                 [static_cast<std::size_t>(c)] = -1;
        color_at_[static_cast<std::size_t>(v)]
                 [static_cast<std::size_t>(c)] = -1;
    }

    /**
     * Kempe-chain inversion: collects the maximal path starting at u
     * whose edges alternate colors first_color, other_color, then swaps
     * the two colors along it.  Afterwards `first_color` is free at u.
     */
    void
    invertPath(int u, int first_color, int other_color)
    {
        std::vector<std::array<int, 3>> path; // {x, y, color}
        int cur = u;
        int col = first_color;
        while (true) {
            int nxt = neighborAt(cur, col);
            if (nxt < 0)
                break;
            path.push_back({cur, nxt, col});
            cur = nxt;
            col = col == first_color ? other_color : first_color;
        }
        for (const auto &e : path)
            clearColor(e[0], e[1], e[2]);
        for (const auto &e : path)
            setColor(e[0], e[1],
                     e[2] == first_color ? other_color : first_color);
    }

  private:
    int max_colors_;
    std::vector<std::vector<int>> color_at_;
};

} // namespace

std::vector<std::vector<ZZOp>>
edgeColoringLayers(const std::vector<ZZOp> &ops, int num_qubits)
{
    // Validate: simple graph (no repeated pairs).
    {
        std::vector<std::pair<int, int>> seen;
        for (const ZZOp &op : ops) {
            auto key = std::minmax(op.a, op.b);
            std::pair<int, int> p{key.first, key.second};
            QAOA_CHECK(std::find(seen.begin(), seen.end(), p) ==
                           seen.end(),
                       "duplicate operation {" << op.a << ", " << op.b
                                               << "}");
            seen.push_back(p);
        }
    }
    const int delta = maxOpsPerQubit(ops, num_qubits);
    if (ops.empty())
        return {};
    const int max_colors = delta + 1;
    MisraGries mg(num_qubits, max_colors);

    for (std::size_t ei = 0; ei < ops.size(); ++ei) {
        int u = ops[ei].a;
        int v = ops[ei].b;

        // Build a maximal fan of u starting at v.
        std::vector<int> fan{v};
        std::vector<bool> in_fan(static_cast<std::size_t>(num_qubits),
                                 false);
        in_fan[static_cast<std::size_t>(v)] = true;
        bool extended = true;
        while (extended) {
            extended = false;
            // Extend with any u-neighbor whose connecting color is free
            // on the current fan tail.
            for (int cc = 0; cc < max_colors && !extended; ++cc) {
                if (!mg.isFree(fan.back(), cc))
                    continue;
                int w = mg.neighborAt(u, cc);
                if (w >= 0 && !in_fan[static_cast<std::size_t>(w)]) {
                    fan.push_back(w);
                    in_fan[static_cast<std::size_t>(w)] = true;
                    extended = true;
                }
            }
        }

        int c = mg.freeColor(u);
        int d = mg.freeColor(fan.back());
        if (c != d)
            mg.invertPath(u, d, c);
        // After inversion d is free on u (u had no d... standard MG:
        // invert the cd-path from u so that d becomes free at u).

        // Find the first fan vertex with d free whose prefix is still a
        // valid fan after the inversion (rotation step i needs
        // color(u, fan[i+1]) free on fan[i]).
        auto color_of = [&](int x, int y) {
            for (int cc = 0; cc < max_colors; ++cc)
                if (mg.neighborAt(x, cc) == y)
                    return cc;
            return -1;
        };
        std::size_t w_idx = fan.size(); // sentinel: not found
        for (std::size_t i = 0; i < fan.size(); ++i) {
            if (i > 0) {
                int col = color_of(u, fan[i]);
                QAOA_ASSERT(col >= 0, "interior fan edge uncolored");
                if (!mg.isFree(fan[i - 1], col))
                    break; // prefix fan broken; no later w is usable
            }
            if (mg.isFree(fan[i], d)) {
                w_idx = i;
                break;
            }
        }
        QAOA_CHECK(w_idx < fan.size(),
                   "Misra-Gries: no rotatable fan vertex (edge " << ei
                                                                 << ")");
        // Rotate: shift colors down the fan prefix.
        for (std::size_t i = 0; i + 1 <= w_idx; ++i) {
            int next_color = -1;
            // color of edge (u, fan[i+1]) moves to edge (u, fan[i]).
            for (int cc = 0; cc < max_colors; ++cc)
                if (mg.neighborAt(u, cc) == fan[i + 1])
                    next_color = cc;
            QAOA_ASSERT(next_color >= 0, "fan edge lost its color");
            mg.clearColor(u, fan[i + 1], next_color);
            mg.setColor(u, fan[i], next_color);
        }
        QAOA_CHECK(mg.isFree(u, d) && mg.isFree(fan[w_idx], d),
                   "Misra-Gries invariant violated at edge " << ei);
        mg.setColor(u, fan[w_idx], d);
    }

    // Read the final coloring back off the structure.
    std::vector<std::vector<ZZOp>> layers(
        static_cast<std::size_t>(max_colors));
    for (const ZZOp &op : ops) {
        int assigned = -1;
        for (int cc = 0; cc < max_colors; ++cc)
            if (mg.neighborAt(op.a, cc) == op.b)
                assigned = cc;
        QAOA_CHECK(assigned >= 0, "edge left uncolored");
        layers[static_cast<std::size_t>(assigned)].push_back(op);
    }
    layers.erase(std::remove_if(layers.begin(), layers.end(),
                                [](const std::vector<ZZOp> &l) {
                                    return l.empty();
                                }),
                 layers.end());
    return layers;
}

std::vector<ZZOp>
edgeColoringOrder(const std::vector<ZZOp> &ops, int num_qubits)
{
    std::vector<ZZOp> order;
    for (const auto &layer : edgeColoringLayers(ops, num_qubits))
        for (const ZZOp &op : layer)
            order.push_back(op);
    return order;
}

} // namespace qaoa::core
