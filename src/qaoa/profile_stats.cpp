#include "qaoa/profile_stats.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace qaoa::core {

std::vector<int>
opsPerQubit(const std::vector<ZZOp> &ops, int num_qubits)
{
    std::vector<int> per_qubit(static_cast<std::size_t>(num_qubits), 0);
    for (const ZZOp &op : ops) {
        QAOA_CHECK(op.a >= 0 && op.a < num_qubits && op.b >= 0 &&
                       op.b < num_qubits,
                   "operation endpoint out of range");
        ++per_qubit[static_cast<std::size_t>(op.a)];
        ++per_qubit[static_cast<std::size_t>(op.b)];
    }
    return per_qubit;
}

int
maxOpsPerQubit(const std::vector<ZZOp> &ops, int num_qubits)
{
    std::vector<int> per_qubit = opsPerQubit(ops, num_qubits);
    if (per_qubit.empty())
        return 0;
    return *std::max_element(per_qubit.begin(), per_qubit.end());
}

int
operationRank(const ZZOp &op, const std::vector<int> &per_qubit)
{
    return per_qubit[static_cast<std::size_t>(op.a)] +
           per_qubit[static_cast<std::size_t>(op.b)];
}

} // namespace qaoa::core
