/**
 * @file
 * QAOA-MaxCut problem construction.
 *
 * The cost Hamiltonian of a MaxCut instance is one ZZ-interaction per
 * problem-graph edge, executed as a CPHASE gate (§II "QAOA-circuits").
 * The full level-p circuit is: H on every qubit, then p repetitions of
 * (cost layer with angle γ_i, mixer RX(2·β_i) on every qubit), then
 * measurement.
 */

#ifndef QAOA_QAOA_PROBLEM_HPP
#define QAOA_QAOA_PROBLEM_HPP

#include <vector>

#include "circuit/circuit.hpp"
#include "graph/graph.hpp"

namespace qaoa::core {

/** One ZZ-interaction (CPHASE) between two logical qubits. */
struct ZZOp
{
    int a = 0;           ///< First logical qubit.
    int b = 0;           ///< Second logical qubit (b != a).
    double weight = 1.0; ///< Problem-edge weight (scales the angle).

    bool operator==(const ZZOp &other) const = default;
};

/** Cost-Hamiltonian operations of a MaxCut instance (one per edge). */
std::vector<ZZOp> costOperations(const graph::Graph &problem);

/**
 * Builds the logical level-p QAOA-MaxCut circuit.
 *
 * @param num_qubits Number of logical qubits (problem-graph nodes).
 * @param cost_ops   Cost operations; applied in the given order in every
 *                   level (the order is the knob IP/IC exploit).
 * @param gammas     Cost angles, one per level.
 * @param betas      Mixer angles, one per level.
 * @param measure    Append measurements (qubit l -> classical bit l).
 */
circuit::Circuit buildQaoaCircuit(int num_qubits,
                                  const std::vector<ZZOp> &cost_ops,
                                  const std::vector<double> &gammas,
                                  const std::vector<double> &betas,
                                  bool measure = true);

/** Convenience overload taking the problem graph directly. */
circuit::Circuit buildQaoaCircuit(const graph::Graph &problem,
                                  const std::vector<double> &gammas,
                                  const std::vector<double> &betas,
                                  bool measure = true);

} // namespace qaoa::core

#endif // QAOA_QAOA_PROBLEM_HPP
