#include "qaoa/qaim.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "hardware/profile.hpp"
#include "qaoa/profile_stats.hpp"

namespace qaoa::core {

namespace {

/** Picks a uniformly random element among those maximizing @p score. */
template <typename Score>
int
argmaxRandomTie(const std::vector<int> &candidates, Score score, Rng &rng)
{
    QAOA_ASSERT(!candidates.empty(), "argmax over empty candidate set");
    double best = -1.0;
    std::vector<int> ties;
    for (int c : candidates) {
        double s = score(c);
        if (s > best + 1e-12) {
            best = s;
            ties = {c};
        } else if (s >= best - 1e-12) {
            ties.push_back(c);
        }
    }
    return ties[rng.index(ties.size())];
}

} // namespace

transpiler::Layout
qaimLayout(const std::vector<ZZOp> &cost_ops, int num_logical,
           const hw::CouplingMap &map, Rng &rng, const QaimOptions &options)
{
    QAOA_CHECK(num_logical >= 1, "empty program");
    const std::vector<char> *mask = options.allowed_qubits;
    QAOA_CHECK(mask == nullptr ||
                   static_cast<int>(mask->size()) == map.numQubits(),
               "usable mask size mismatch on " << map.name());
    auto usable = [&](int p) {
        return !mask || (*mask)[static_cast<std::size_t>(p)];
    };
    int usable_count = map.numQubits();
    if (mask)
        usable_count = static_cast<int>(
            std::count(mask->begin(), mask->end(), 1));
    QAOA_CHECK(num_logical <= usable_count,
               "program needs " << num_logical << " qubits, device "
                                << map.name() << " has " << usable_count
                                << " usable of " << map.numQubits());

    // Profiles.  Hardware strengths are device-static (§IV-A notes they
    // can be computed once per device); distances come from the coupling
    // map's precomputed Floyd–Warshall matrix.
    const std::vector<int> strength =
        hw::connectivityProfile(map, options.strength_radius);
    const std::vector<int> per_qubit = opsPerQubit(cost_ops, num_logical);

    // Program connectivity: logical neighbors of each logical qubit.
    std::vector<std::vector<int>> logical_neighbors(
        static_cast<std::size_t>(num_logical));
    for (const ZZOp &op : cost_ops) {
        auto &na = logical_neighbors[static_cast<std::size_t>(op.a)];
        auto &nb = logical_neighbors[static_cast<std::size_t>(op.b)];
        if (std::find(na.begin(), na.end(), op.b) == na.end())
            na.push_back(op.b);
        if (std::find(nb.begin(), nb.end(), op.a) == nb.end())
            nb.push_back(op.a);
    }

    // Step 1: logical qubits in descending CPHASE-count order.
    std::vector<int> order(static_cast<std::size_t>(num_logical));
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return per_qubit[static_cast<std::size_t>(a)] >
               per_qubit[static_cast<std::size_t>(b)];
    });

    std::vector<int> log_to_phys(static_cast<std::size_t>(num_logical), -1);
    std::vector<bool> allocated(static_cast<std::size_t>(map.numQubits()),
                                false);

    auto unallocated = [&]() {
        std::vector<int> free_qubits;
        for (int p = 0; p < map.numQubits(); ++p)
            if (!allocated[static_cast<std::size_t>(p)] && usable(p))
                free_qubits.push_back(p);
        return free_qubits;
    };

    for (std::size_t i = 0; i < order.size(); ++i) {
        int l = order[i];

        // Placed logical neighbors of l.
        std::vector<int> placed;
        for (int nb : logical_neighbors[static_cast<std::size_t>(l)])
            if (log_to_phys[static_cast<std::size_t>(nb)] >= 0)
                placed.push_back(nb);

        int chosen = -1;
        if (placed.empty()) {
            // Steps 2/3 (no placed neighbor): highest connectivity
            // strength among unallocated physical qubits.
            chosen = argmaxRandomTie(
                unallocated(),
                [&](int p) {
                    return static_cast<double>(
                        strength[static_cast<std::size_t>(p)]);
                },
                rng);
        } else {
            // Step 3: unallocated physical neighbors of the placed
            // neighbors, scored strength / cumulative distance.
            std::vector<int> candidates;
            for (int nb : placed) {
                int p = log_to_phys[static_cast<std::size_t>(nb)];
                for (int pn : map.neighbors(p))
                    if (!allocated[static_cast<std::size_t>(pn)] &&
                        usable(pn) &&
                        std::find(candidates.begin(), candidates.end(),
                                  pn) == candidates.end())
                        candidates.push_back(pn);
            }
            if (candidates.empty())
                candidates = unallocated(); // dense-region fallback
            auto score = [&](int p) {
                double cum = 0.0;
                for (int nb : placed)
                    cum += static_cast<double>(map.distance(
                        p, log_to_phys[static_cast<std::size_t>(nb)]));
                QAOA_ASSERT(cum > 0.0, "candidate collides with neighbor");
                return static_cast<double>(
                           strength[static_cast<std::size_t>(p)]) /
                       cum;
            };
            chosen = argmaxRandomTie(candidates, score, rng);
        }
        log_to_phys[static_cast<std::size_t>(l)] = chosen;
        allocated[static_cast<std::size_t>(chosen)] = true;
    }

    return transpiler::Layout(std::move(log_to_phys), map.numQubits());
}

} // namespace qaoa::core
