/**
 * @file
 * QAIM — integrated Qubit Allocation and Initial Mapping (§IV-A).
 *
 * Combines topology selection and initial placement in one pass driven by
 * two profiles:
 *  - hardware: connectivity strength = #first + #second neighbors of each
 *    physical qubit (Fig. 3(b));
 *  - program: CPHASE operations per logical qubit (Fig. 3(c)).
 *
 * Logical qubits are placed heaviest-first; each subsequent qubit goes to
 * the unallocated physical neighbor of its already-placed logical
 * neighbors that maximizes
 *     connectivity strength / cumulative distance to placed neighbors
 * (Fig. 3(d,e)).
 */

#ifndef QAOA_QAOA_QAIM_HPP
#define QAOA_QAOA_QAIM_HPP

#include "common/rng.hpp"
#include "hardware/coupling_map.hpp"
#include "qaoa/problem.hpp"
#include "transpiler/layout.hpp"

namespace qaoa::core {

/** Tunables for QAIM. */
struct QaimOptions
{
    /** Neighborhood radius of the connectivity-strength metric. */
    int strength_radius = 2;

    /**
     * Optional usable-qubit mask (hw::FaultInjector::usable()); when
     * set, only physical qubits with a non-zero entry are allocation
     * candidates, so QAIM never places on dead or off-component qubits.
     */
    const std::vector<char> *allowed_qubits = nullptr;
};

/**
 * Runs QAIM and returns the initial layout.
 *
 * @param cost_ops    The program's CPHASE list.
 * @param num_logical Number of logical qubits.
 * @param map         Target device.
 * @param rng         Breaks ties (the paper picks randomly among equals).
 * @param options     See QaimOptions.
 */
transpiler::Layout qaimLayout(const std::vector<ZZOp> &cost_ops,
                              int num_logical, const hw::CouplingMap &map,
                              Rng &rng, const QaimOptions &options = {});

} // namespace qaoa::core

#endif // QAOA_QAOA_QAIM_HPP
