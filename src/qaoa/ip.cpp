#include "qaoa/ip.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "qaoa/profile_stats.hpp"

namespace qaoa::core {

IpResult
ipOrder(const std::vector<ZZOp> &ops, int num_qubits, Rng &rng,
        int packing_limit)
{
    QAOA_CHECK(packing_limit >= 1, "packing limit must be >= 1");
    IpResult result;
    std::vector<ZZOp> remaining = ops;

    while (!remaining.empty()) {
        // Step 1: MOQ empty layers for this round, computed from the
        // operations still unassigned.
        const std::vector<int> per_qubit =
            opsPerQubit(remaining, num_qubits);
        const int moq = maxOpsPerQubit(remaining, num_qubits);
        QAOA_ASSERT(moq >= 1, "non-empty op list with MOQ 0");

        // Rank descending; equal ranks shuffled (the paper orders ties
        // randomly).  Shuffle first, then stable sort by rank.
        rng.shuffle(remaining);
        std::stable_sort(remaining.begin(), remaining.end(),
                         [&](const ZZOp &x, const ZZOp &y) {
                             return operationRank(x, per_qubit) >
                                    operationRank(y, per_qubit);
                         });

        // Steps 2-3: first-fit decreasing into the MOQ layers.
        std::vector<std::vector<ZZOp>> layers(
            static_cast<std::size_t>(moq));
        std::vector<std::vector<bool>> occupied(
            static_cast<std::size_t>(moq),
            std::vector<bool>(static_cast<std::size_t>(num_qubits), false));
        std::vector<ZZOp> unassigned;

        for (const ZZOp &op : remaining) {
            bool placed = false;
            for (std::size_t li = 0; li < layers.size(); ++li) {
                if (static_cast<int>(layers[li].size()) >= packing_limit)
                    continue;
                if (occupied[li][static_cast<std::size_t>(op.a)] ||
                    occupied[li][static_cast<std::size_t>(op.b)])
                    continue;
                layers[li].push_back(op);
                occupied[li][static_cast<std::size_t>(op.a)] = true;
                occupied[li][static_cast<std::size_t>(op.b)] = true;
                placed = true;
                break;
            }
            if (!placed)
                unassigned.push_back(op);
        }

        for (auto &layer : layers)
            if (!layer.empty())
                result.layers.push_back(std::move(layer));

        QAOA_ASSERT(unassigned.size() < remaining.size(),
                    "IP round made no progress");
        remaining = std::move(unassigned); // Step 4
    }

    for (const auto &layer : result.layers)
        for (const ZZOp &op : layer)
            result.order.push_back(op);
    QAOA_ASSERT(result.order.size() == ops.size(),
                "IP lost or duplicated operations");
    return result;
}

} // namespace qaoa::core
