/**
 * @file
 * Iterative re-compilation — the contemporary-work comparator of §VII
 * ([70], [71]).
 *
 * Those works repeatedly re-compile the QAOA circuit with updated gate
 * orders until quality stops improving, paying a 10x-600x compile-time
 * penalty over single-shot compilation.  This module implements that
 * search loop (random-restart order perturbation with a patience
 * criterion, standing in for their branch-and-bound guide) so the
 * quality/compile-time trade-off against IP/IC can be reproduced.
 */

#ifndef QAOA_QAOA_ITERATIVE_HPP
#define QAOA_QAOA_ITERATIVE_HPP

#include "qaoa/api.hpp"

namespace qaoa::core {

/** Objective minimized across re-compilation rounds. */
enum class IterativeObjective {
    Depth,     ///< Compiled circuit depth (the [70] default).
    GateCount, ///< Total compiled gates.
};

/** Options for iterativeCompile(). */
struct IterativeOptions
{
    /** Give up after this many rounds without improvement. */
    int patience = 8;

    /** Hard cap on total re-compilation rounds. */
    int max_rounds = 64;

    /** What "better" means. */
    IterativeObjective objective = IterativeObjective::Depth;

    /** Base compile options; `method` selects the inner compile path
     *  (Qaim re-shuffles orders; Ic perturbs seeds). */
    QaoaCompileOptions compile;
};

/** Result of the search. */
struct IterativeResult
{
    transpiler::CompileResult best;  ///< Best compile found.
    int rounds = 0;                  ///< Re-compilations performed.
    double total_compile_seconds = 0.0; ///< Summed compile time.
};

/**
 * Repeatedly compiles @p problem with fresh gate orders/seeds, keeping
 * the best circuit under the chosen objective, until `patience` rounds
 * pass without improvement or `max_rounds` is hit.
 */
IterativeResult iterativeCompile(const graph::Graph &problem,
                                 const hw::CouplingMap &map,
                                 const IterativeOptions &options = {});

} // namespace qaoa::core

#endif // QAOA_QAOA_ITERATIVE_HPP
